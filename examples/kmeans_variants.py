"""The k-means variant zoo: exact pruners and Section 9 extensions.

Run:  python examples/kmeans_variants.py

One workload, every algorithm in the library:

* the three *exact* accelerations -- MTI (knor's contribution), full
  Elkan TI, and Yinyang -- all guaranteed to output the same
  clustering as plain Lloyd's, differing only in computation pruned
  and memory paid;
* the approximate competitor (mini-batch);
* the Section 9 extensions: spherical k-means on directional data and
  semi-supervised k-means++ with a handful of labels.
"""

import numpy as np

import repro
from repro.baselines import minibatch_kmeans
from repro.core import init_centroids
from repro.extensions import (
    semisupervised_kmeanspp,
    spherical_kmeans,
    yinyang_kmeans,
)


def main() -> None:
    rng = np.random.default_rng(11)
    centers = rng.normal(scale=3.0, size=(20, 12))
    x = np.vstack(
        [rng.normal(loc=c, scale=1.5, size=(500, 12)) for c in centers]
    )
    rng.shuffle(x)
    k = 20
    c0 = init_centroids(x, k, "kmeans++", seed=1)
    crit = repro.ConvergenceCriteria(max_iters=100)

    print("exact algorithms (identical clustering, different costs):")
    ref = repro.lloyd(x, k, init=c0, criteria=crit)
    full = ref.iterations * x.shape[0] * k
    rows = [("lloyd (reference)", full, "-", ref)]
    for label, res in [
        ("knori + MTI", repro.knori(x, k, init=c0, criteria=crit)),
        ("knori + Elkan TI",
         repro.knori(x, k, pruning="elkan", init=c0, criteria=crit)),
        ("yinyang", yinyang_kmeans(x, k, init=c0, criteria=crit)),
    ]:
        assert np.array_equal(res.assignment, ref.assignment), label
        mem = res.peak_memory_bytes / 1e6
        rows.append(
            (label, res.total_dist_computations, f"{mem:.1f} MB", res)
        )
    for label, dist, mem, _ in rows:
        print(f"  {label:<18} {dist:>12,} distance comps   "
              f"state {mem}")

    mb = minibatch_kmeans(x, k, batch_size=512, n_steps=60, seed=1)
    print(
        f"\nmini-batch (approximate): inertia {mb.inertia:,.0f} vs "
        f"exact {ref.inertia:,.0f} "
        f"({mb.inertia / ref.inertia - 1:+.1%}) for "
        f"{mb.total_dist_computations:,} distance comps"
    )

    # Spherical: cluster directions, ignore magnitudes.
    axes = np.eye(4)[:3]
    dirs = np.vstack(
        [a + rng.normal(scale=0.05, size=(300, 4)) for a in axes]
    ) * rng.uniform(0.5, 10.0, size=(900, 1))
    sph = spherical_kmeans(dirs, 3, seed=0)
    print(
        f"\nspherical k-means on 3 direction bundles: sizes "
        f"{sorted(sph.cluster_sizes.tolist())} (magnitude-invariant)"
    )

    # Semi-supervised: 1% labels pin the clusters to known classes.
    labels = np.full(x.shape[0], -1)
    true = np.argmin(
        ((x[:, None, :] - centers[None]) ** 2).sum(-1), axis=1
    )
    for c in range(k):
        idx = np.nonzero(true == c)[0][:5]
        labels[idx] = c
    ss = semisupervised_kmeanspp(x, k, labels, seed=0)
    agree = (ss.assignment == true).mean()
    print(
        f"semi-supervised k-means++ with {int((labels >= 0).sum())} "
        f"labels: {agree:.1%} agreement with the generating classes"
    )


if __name__ == "__main__":
    main()
