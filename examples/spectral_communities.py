"""Spectral community detection on a social-graph embedding.

Run:  python examples/spectral_communities.py

The paper's flagship workload: cluster the leading eigenvectors of a
power-law social graph (their Friendster top-8/top-32 datasets). This
example builds the same kind of object at laptop scale -- an R-MAT
graph's normalized-adjacency spectral embedding -- and shows why such
data is knor's best case: points sit in "strongly rooted" clusters, so
MTI's clause 1 skips almost every row after a few iterations.

Also demonstrates the scheduler choice from Figure 5: under pruning
skew the NUMA-aware partitioned queue beats static assignment.
"""

import numpy as np

import repro
from repro.data import friendster_like


def main() -> None:
    print("building a 65,536-vertex power-law graph embedding "
          "(top-8 eigenvectors)...")
    x = friendster_like(65536, d=8)

    k = 10
    result = repro.knori(x, k, seed=4)
    print(result.summary())

    n = x.shape[0]
    print("\nMTI clause-1 skip rate by iteration (the 'strongly "
          "rooted clusters' effect):")
    for rec in result.records:
        bar = "#" * int(40 * rec.clause1_rows / n)
        print(
            f"  iter {rec.iteration:2d}: "
            f"{rec.clause1_rows / n:6.1%} {bar}"
        )

    sizes = np.sort(result.cluster_sizes)[::-1]
    print(f"\ncommunity sizes (desc): {sizes.tolist()}")
    print("power-law graphs give a heavy-tailed community profile -- "
          "a few giant communities plus a fringe.")

    from repro.metrics import davies_bouldin_index, silhouette_score

    sil = silhouette_score(x, result.assignment, sample=2000, seed=0)
    db = davies_bouldin_index(x, result.assignment)
    print(f"quality: silhouette={sil:.3f}, davies-bouldin={db:.3f}")

    # Scheduler ablation under pruning skew (k=100 amplifies it).
    print("\nscheduler comparison at k=100 (simulated seconds):")
    for scheduler in ("numa_aware", "fifo", "static"):
        res = repro.knori(
            x, 100, seed=4, scheduler=scheduler,
            criteria=repro.ConvergenceCriteria(max_iters=10),
        )
        busy = sum(r.busy_fraction for r in res.records) / len(
            res.records
        )
        print(
            f"  {scheduler:>10}: {res.sim_seconds:.4f} s "
            f"(mean thread utilization {busy:.2f})"
        )


if __name__ == "__main__":
    main()
