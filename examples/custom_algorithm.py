"""Bring your own algorithm to the NUMA substrate (Section 9's goal).

Run:  python examples/custom_algorithm.py

The paper's future-work endgame is a generalized framework where users
"implement custom algorithms and benefit from our NUMA and external
memory optimizations". This example does exactly that twice:

1. runs EM for a Gaussian mixture on the simulated NUMA machine via
   the built-in :class:`GmmAlgorithm` adapter; and
2. defines a brand-new algorithm -- per-cluster trimmed k-means, which
   ignores the farthest 5% of points when updating centroids -- in
   ~40 lines, and runs it both in memory and semi-externally without
   writing any driver code.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.core.distance import nearest_centroid
from repro.core.init import init_centroids
from repro.data import rand_multivariate, write_matrix
from repro.framework import GmmAlgorithm, RowWork, run_numa, run_sem


class TrimmedKmeans:
    """k-means that trims the farthest fraction of points per update.

    Rows in the trimmed tail still pay assignment compute but are
    excluded from the centroid means -- a simple robust-clustering
    variant, here only to show the framework contract.
    """

    def __init__(self, k, trim=0.05, seed=0):
        self.k = k
        self.trim = trim
        self.seed = seed
        self.centroids = None
        self._changed = -1
        self._assign = None

    def begin(self, x):
        self.centroids = init_centroids(
            np.asarray(x), self.k, "kmeans++", seed=self.seed
        )

    def iteration(self, x):
        x = np.asarray(x)
        assign, dist = nearest_centroid(x, self.centroids)
        cutoff = np.quantile(dist, 1.0 - self.trim)
        keep = dist <= cutoff
        new = self.centroids.copy()
        for c in range(self.k):
            members = x[keep & (assign == c)]
            if members.shape[0]:
                new[c] = members.mean(axis=0)
        changed = (
            int((assign != self._assign).sum())
            if self._assign is not None
            else x.shape[0]
        )
        self._assign = assign
        self.centroids = new
        self._changed = changed
        return RowWork(
            compute_units=np.full(x.shape[0], self.k, dtype=np.int64),
            needs_data=np.ones(x.shape[0], dtype=bool),
            n_changed=changed,
        )

    def converged(self):
        return self._changed == 0


def main() -> None:
    x = rand_multivariate(60_000, 8, n_components=5, seed=3)
    # Inject 2% gross outliers for the trimmed variant to shrug off.
    rng = np.random.default_rng(0)
    out_idx = rng.choice(x.shape[0], x.shape[0] // 50, replace=False)
    x[out_idx] += rng.normal(scale=50.0, size=(out_idx.size, 8))

    print("1) EM for a 5-component GMM on the simulated NUMA machine:")
    gmm = GmmAlgorithm(5, seed=1)
    res = run_numa(gmm, x, reduction_k=5, max_iters=50)
    print(
        f"   {res.iterations} EM iterations, converged={res.converged},"
        f" sim {res.sim_seconds:.4f}s, final mean log-likelihood "
        f"{gmm.ll_history[-1]:.3f}"
    )

    print("\n2) custom TrimmedKmeans, in memory and semi-external:")
    tk = TrimmedKmeans(5, trim=0.05, seed=1)
    res_mem = run_numa(tk, x, reduction_k=5, max_iters=50)
    print(
        f"   in-memory: {res_mem.iterations} iters, sim "
        f"{res_mem.sim_seconds:.4f}s"
    )
    with tempfile.TemporaryDirectory() as td:
        path = Path(td) / "x.knor"
        write_matrix(path, x)
        tk2 = TrimmedKmeans(5, trim=0.05, seed=1)
        res_sem = run_sem(tk2, path, reduction_k=5, max_iters=50)
    read_mb = sum(r.bytes_read for r in res_sem.records) / 1e6
    print(
        f"   semi-external: {res_sem.iterations} iters, sim "
        f"{res_sem.sim_seconds:.4f}s, {read_mb:.0f} MB read from SSD"
    )
    print(
        "\nSame algorithm object, three substrates, zero driver code -- "
        "the Section 9 generalized-framework claim, demonstrated."
    )


if __name__ == "__main__":
    main()
