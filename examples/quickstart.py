"""Quickstart: cluster a synthetic dataset with knori.

Run:  python examples/quickstart.py

Demonstrates the minimal public-API path: generate data, call
``repro.knori`` (the NUMA-optimized in-memory module with MTI pruning),
and read the results -- cluster sizes, convergence, the k-means
objective, pruning statistics and the simulated performance summary.
"""

import numpy as np

import repro


def main() -> None:
    # Four well-separated Gaussian blobs in 16 dimensions.
    rng = np.random.default_rng(0)
    centers = rng.normal(scale=12.0, size=(4, 16))
    x = np.vstack(
        [rng.normal(loc=c, scale=1.0, size=(5000, 16)) for c in centers]
    )
    rng.shuffle(x)

    result = repro.knori(x, k=4, init="kmeans++", seed=1)

    print(result.summary())
    print(f"cluster sizes: {sorted(result.cluster_sizes.tolist())}")
    print(f"iterations to convergence: {result.iterations}")
    print(f"inertia (k-means objective): {result.inertia:.1f}")

    total_possible = result.params["n"] * result.params["k"]
    for rec in result.records:
        print(
            f"  iter {rec.iteration}: sim {rec.sim_ns / 1e6:.3f} ms, "
            f"{rec.n_changed} points moved, "
            f"{rec.dist_computations}/{total_possible} distances "
            f"computed ({rec.clause1_rows} rows skipped by MTI "
            "clause 1)"
        )

    # Compare against the unpruned run: identical clustering, more work.
    unpruned = repro.knori(x, k=4, init="kmeans++", seed=1, pruning=None)
    assert np.array_equal(result.assignment, unpruned.assignment)
    saved = 1 - (
        result.total_dist_computations
        / unpruned.total_dist_computations
    )
    print(
        f"\nMTI pruned {saved:.0%} of distance computations with zero "
        "change to the clustering."
    )


if __name__ == "__main__":
    main()
