"""Hardware sizing: scale up (knors), scale out (knord), or a
framework cluster?

Run:  python examples/cloud_sizing.py

Reproduces the decision the paper's Figure 13 argues for: before
renting a cluster, check whether one SSD-backed machine running
semi-external knors already beats it. We compare, on the same
workload:

* knors on a single i3.16xlarge (32 cores + NVMe),
* knord on 3x c4.8xlarge (48 cores total, 10 GbE),
* pure MPI on the same cluster (no NUMA optimizations), and
* an MLlib-style framework on the same cluster.

All four run the same exact numerics and converge to the same
clustering; the difference is purely architectural.
"""

import tempfile
from pathlib import Path

import repro
from repro.baselines import framework_kmeans, mpi_lloyd
from repro.data import rand_multivariate, write_matrix
from repro.simhw import EC2_I3_16XLARGE
from repro.simhw.ssd import I3_NVME_ARRAY


def main() -> None:
    n, d, k = 250_000, 32, 10
    print(f"workload: n={n:,}, d={d}, k={k} "
          f"({n * d * 8 / 1e6:.0f} MB)\n")
    x = rand_multivariate(n, d, seed=1)
    crit = repro.ConvergenceCriteria(max_iters=15)
    data_bytes = n * d * 8

    with tempfile.TemporaryDirectory() as td:
        path = Path(td) / "data.knor"
        write_matrix(path, x)
        sem = repro.knors(
            path, k, seed=4, criteria=crit,
            cost_model=EC2_I3_16XLARGE, ssd=I3_NVME_ARRAY,
            n_threads=48,
            row_cache_bytes=data_bytes // 8,
            page_cache_bytes=data_bytes // 16,
            cache_update_interval=8,
        )

    dist = repro.knord(x, k, n_machines=3, seed=4, criteria=crit)
    mpi = mpi_lloyd(x, k, n_machines=3, seed=4, criteria=crit)
    mllib = framework_kmeans(
        x, k, "mllib", n_machines=3, seed=4, criteria=crit
    )

    rows = [
        ("knors  (1x i3.16xlarge)", sem, 1),
        ("knord  (3x c4.8xlarge)", dist, 3),
        ("MPI    (3x c4.8xlarge)", mpi, 3),
        ("MLlib  (3x c4.8xlarge)", mllib, 3),
    ]
    print(f"{'configuration':<26} {'sim s':>9} {'machines':>9} "
          f"{'s x machines':>13}")
    for label, res, machines in rows:
        print(
            f"{label:<26} {res.sim_seconds:>9.4f} {machines:>9} "
            f"{res.sim_seconds * machines:>13.4f}"
        )

    assert (sem.assignment == dist.assignment).all()
    print(
        "\nAll four produce the identical clustering. The last column "
        "is a crude cost proxy (time x machines): one SSD machine is "
        "competitive with the MPI cluster and far cheaper than the "
        "framework cluster -- the paper's 'consider SEM scale-up "
        "before scaling out' conclusion."
    )


if __name__ == "__main__":
    main()
