"""Hardware sizing: scale up (knors), scale out (knord), or a
framework cluster? And once sized -- spot or on-demand?

Run:  python examples/cloud_sizing.py

Part 1 reproduces the decision the paper's Figure 13 argues for:
before renting a cluster, check whether one SSD-backed machine running
semi-external knors already beats it. We compare, on the same
workload:

* knors on a single i3.16xlarge (32 cores + NVMe),
* knord on 3x c4.8xlarge (48 cores total, 10 GbE),
* pure MPI on the same cluster (no NUMA optimizations), and
* an MLlib-style framework on the same cluster.

All four run the same exact numerics and converge to the same
clustering; the difference is purely architectural.

Part 2 prices the distributed option under **spot churn**: the same
knord run, but machines get preempted mid-run (with and without the
two-iteration warning real spot markets give) and an autoscaler
back-fills capacity after an honest provisioning delay. Dollars per
converged run = EC2 machine-seconds actually held x the hourly rate
(x the spot discount); the SLO axis is total simulated time to
convergence. The clustering itself is asserted bit-identical in every
row -- churn moves cost and latency, never results.
"""

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.baselines import framework_kmeans, mpi_lloyd
from repro.data import rand_multivariate, write_matrix
from repro.elastic import (
    Autoscaler,
    AutoscalerPolicy,
    MembershipEvent,
    MembershipPlan,
)
from repro.simhw import (
    EC2_C4_8XLARGE_USD_HOUR,
    EC2_I3_16XLARGE,
    SPOT_DISCOUNT,
    run_cost_usd,
)
from repro.simhw.ssd import I3_NVME_ARRAY


def main() -> None:
    n, d, k = 250_000, 32, 10
    print(f"workload: n={n:,}, d={d}, k={k} "
          f"({n * d * 8 / 1e6:.0f} MB)\n")
    x = rand_multivariate(n, d, seed=1)
    crit = repro.ConvergenceCriteria(max_iters=15)
    data_bytes = n * d * 8

    with tempfile.TemporaryDirectory() as td:
        path = Path(td) / "data.knor"
        write_matrix(path, x)
        sem = repro.knors(
            path, k, seed=4, criteria=crit,
            cost_model=EC2_I3_16XLARGE, ssd=I3_NVME_ARRAY,
            n_threads=48,
            row_cache_bytes=data_bytes // 8,
            page_cache_bytes=data_bytes // 16,
            cache_update_interval=8,
        )

    dist = repro.knord(x, k, n_machines=3, seed=4, criteria=crit)
    mpi = mpi_lloyd(x, k, n_machines=3, seed=4, criteria=crit)
    mllib = framework_kmeans(
        x, k, "mllib", n_machines=3, seed=4, criteria=crit
    )

    rows = [
        ("knors  (1x i3.16xlarge)", sem, 1),
        ("knord  (3x c4.8xlarge)", dist, 3),
        ("MPI    (3x c4.8xlarge)", mpi, 3),
        ("MLlib  (3x c4.8xlarge)", mllib, 3),
    ]
    print(f"{'configuration':<26} {'sim s':>9} {'machines':>9} "
          f"{'s x machines':>13}")
    for label, res, machines in rows:
        print(
            f"{label:<26} {res.sim_seconds:>9.4f} {machines:>9} "
            f"{res.sim_seconds * machines:>13.4f}"
        )

    assert (sem.assignment == dist.assignment).all()
    print(
        "\nAll four produce the identical clustering. The last column "
        "is a crude cost proxy (time x machines): one SSD machine is "
        "competitive with the MPI cluster and far cheaper than the "
        "framework cluster -- the paper's 'consider SEM scale-up "
        "before scaling out' conclusion."
    )

    cost_vs_slo()


def _run_usd(result, *, spot: bool) -> float:
    """Dollars for one run: machine-seconds actually held, priced at
    the c4.8xlarge rate. ``machines_alive`` is stamped per record, so
    a preempted machine stops costing the moment it leaves."""
    machine_seconds = sum(
        r.sim_ns / 1e9 * r.machines_alive for r in result.records
    )
    return run_cost_usd(
        machine_seconds, 1,
        usd_per_hour=EC2_C4_8XLARGE_USD_HOUR, spot=spot,
    )


def cost_vs_slo(n_machines: int = 6) -> None:
    """Part 2: dollars per converged run under spot churn.

    Uses its own workload: unstructured noise converges slowly, so the
    mid-run reclaims actually land (Part 1's separated clusters
    converge before any spot market would blink).
    """
    print(
        f"\ncost vs SLO under spot churn "
        f"({n_machines}x c4.8xlarge, spot discount "
        f"{SPOT_DISCOUNT:.0%} of ${EC2_C4_8XLARGE_USD_HOUR}/h):\n"
    )
    x = np.random.default_rng(7).normal(size=(60_000, 32))
    k = 12
    crit = repro.ConvergenceCriteria(max_iters=40)

    def preempt_plan(notice):
        # Two spot reclaims mid-run; fresh plan per run (stateful).
        return MembershipPlan.from_schedule([
            MembershipEvent(
                "preempt", 2, machine=n_machines - 1, notice=notice
            ),
            MembershipEvent(
                "preempt", 5, machine=n_machines - 2, notice=notice
            ),
        ])

    fixed = repro.knord(
        x, k, n_machines=n_machines, seed=4, criteria=crit
    )
    balanced_iter_s = float(
        np.mean([r.sim_ns for r in fixed.records])
    ) / 1e9

    def scaler():
        return Autoscaler(AutoscalerPolicy(
            target_iter_s=1.2 * balanced_iter_s,
            provision_s=4.0 * balanced_iter_s,
            cooldown_iters=2, warmup_iters=2, step=2,
            max_machines=n_machines,
        ))

    # A strict SLA treats a surprise node loss as fatal; a planned,
    # noticed drain is not a failure and sails through the same policy.
    from repro.errors import NodeFailureError
    from repro.faults import parse_retry_policy

    strict = parse_retry_policy("node_failure=abort")
    try:
        repro.knord(
            x, k, n_machines=n_machines, seed=4, criteria=crit,
            membership=preempt_plan(0), retry_policy=strict,
        )
        strict_row = "completed (unexpected)"
    except NodeFailureError as exc:
        strict_row = f"ABORTED ({type(exc).__name__})"
    strict_notice = repro.knord(
        x, k, n_machines=n_machines, seed=4, criteria=crit,
        membership=preempt_plan(2), retry_policy=strict,
    )

    rows = [
        ("on-demand, no churn", fixed, False),
        ("spot, zero-notice churn",
         repro.knord(x, k, n_machines=n_machines, seed=4,
                     criteria=crit, membership=preempt_plan(0)),
         True),
        ("spot, 2-iter notice", strict_notice, True),
        ("spot, notice + autoscaler",
         repro.knord(x, k, n_machines=n_machines, seed=4,
                     criteria=crit, membership=preempt_plan(2),
                     autoscaler=scaler()),
         True),
    ]
    print(f"{'configuration':<28} {'sim s (SLO)':>12} {'usd/run':>9}")
    for label, res, spot in rows:
        assert (res.assignment == fixed.assignment).all(), (
            "churn changed the clustering"
        )
        print(f"{label:<28} {res.sim_seconds:>12.4f} "
              f"{_run_usd(res, spot=spot):>9.6f}")
    print(f"{'spot, zero-notice + strict SLA':<28} {strict_row:>22}")
    print(
        "\nSame clustering on every completed row. Spot churn trades "
        "latency (the SLO column) for the spot discount; the "
        "autoscaler back-fills the reclaimed capacity and buys most "
        "of the latency back for a few extra machine-seconds. Notice "
        "pays a small drain charge over the wire -- its real value is "
        "that a *planned* loss never aborts a strict-SLA run (last "
        "row) and, on checkpointing substrates, never loses a "
        "committed iteration."
    )


if __name__ == "__main__":
    main()
