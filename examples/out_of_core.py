"""Semi-external-memory clustering of a dataset that 'does not fit'.

Run:  python examples/out_of_core.py

The knors workflow: write the matrix to disk in knor's binary layout,
then cluster it while holding only O(n) state in memory -- the row
data streams from the (simulated) SSD array through SAFS and the
partitioned row cache. The rows really are read back from the file;
only the device timing is modeled.

Shows the memory budget next to the in-memory footprint, the
requested-vs-read I/O gap that motivates the row cache, and the cache
warming up at the lazy refresh.
"""

import tempfile
from pathlib import Path

import repro
from repro.data import rand_multivariate, write_matrix


def main() -> None:
    n, d, k = 200_000, 16, 10
    print(f"generating RM-style data: n={n:,}, d={d} "
          f"({n * d * 8 / 1e6:.0f} MB)...")
    x = rand_multivariate(n, d, seed=856)

    with tempfile.TemporaryDirectory() as td:
        path = Path(td) / "rm.knor"
        write_matrix(path, x)
        print(f"wrote {path.stat().st_size / 1e6:.0f} MB to {path}")

        data_bytes = n * d * 8
        result = repro.knors(
            path,
            k,
            seed=4,
            row_cache_bytes=data_bytes // 8,
            page_cache_bytes=data_bytes // 16,
            cache_update_interval=8,
            criteria=repro.ConvergenceCriteria(max_iters=25),
        )

    print(result.summary())
    in_memory = repro.knori(
        x, k, seed=4, criteria=repro.ConvergenceCriteria(max_iters=25)
    )
    print(
        f"\nmemory: knors holds {result.peak_memory_bytes / 1e6:.1f} MB"
        f" vs knori's {in_memory.peak_memory_bytes / 1e6:.1f} MB "
        f"(data alone is {data_bytes / 1e6:.0f} MB)"
    )

    print("\nper-iteration I/O (requested vs actually read from SSD):")
    for rec in result.records:
        flag = " <- row cache warm" if rec.cache_hits else ""
        print(
            f"  iter {rec.iteration:2d}: requested "
            f"{rec.bytes_requested / 1e6:7.1f} MB, read "
            f"{rec.bytes_read / 1e6:7.1f} MB, "
            f"{rec.cache_hits:6d} row-cache hits{flag}"
        )

    total_req = result.total_bytes_requested / 1e6
    total_read = result.total_bytes_read / 1e6
    print(
        f"\ntotals: {total_req:.0f} MB requested, {total_read:.0f} MB "
        "read -- page-granular reads plus pruning fragmentation "
        "explain the gap; the row cache is what keeps it bounded."
    )


if __name__ == "__main__":
    main()
