"""Figure 4: speedup of NUMA-aware knori vs a NUMA-oblivious routine.

Friendster-8, k=10, T = 1..64 on the simulated 4-socket Xeon. The
paper's claims to reproduce: near-linear speedup to 48 physical cores,
extra gains from SMT at 64, and a ~6x gap to the oblivious routine at
high thread counts.
"""

import pytest

from repro import ConvergenceCriteria, knori
from repro.metrics import render_series
from repro.simhw import BindPolicy

from conftest import report

THREADS = [1, 2, 4, 8, 16, 32, 48, 64]
CRIT = ConvergenceCriteria(max_iters=8)


def run_series(x):
    aware = {}
    oblivious = {}
    for t in THREADS:
        aware[t] = knori(
            x, 10, pruning=None, n_threads=t, seed=4, criteria=CRIT
        ).sim_seconds_per_iter
        oblivious[t] = knori(
            x, 10, pruning=None, n_threads=t, seed=4, criteria=CRIT,
            bind_policy=BindPolicy.OBLIVIOUS,
        ).sim_seconds_per_iter
    return aware, oblivious


def test_fig4_numa_speedup(fr8, benchmark):
    aware, oblivious = run_series(fr8)
    base_a = aware[1]
    base_o = oblivious[1]
    series = {
        "speedup NUMA-aware": {t: base_a / v for t, v in aware.items()},
        "speedup oblivious": {
            t: base_o / v for t, v in oblivious.items()
        },
        "aware s/iter (sim)": aware,
        "oblivious s/iter (sim)": oblivious,
        "gap (obl/aware)": {
            t: oblivious[t] / aware[t] for t in THREADS
        },
    }
    report(
        "Figure 4: NUMA-aware vs NUMA-oblivious speedup "
        "(Friendster-8-like, k=10)",
        render_series("T", series),
    )

    speedup48 = base_a / aware[48]
    speedup64 = base_a / aware[64]
    # Near-linear to the physical core count.
    assert speedup48 > 0.75 * 48
    # SMT yields additional speedup beyond 48 cores (paper: "additional
    # speedup beyond 48 cores comes from hyperthreading").
    assert speedup64 > speedup48
    # The oblivious gap approaches the paper's ~6x at 64 threads.
    gap64 = oblivious[64] / aware[64]
    assert 3.0 < gap64 < 9.0
    # Oblivious still speeds up (lower linear constant, same shape).
    assert base_o / oblivious[48] > 5.0

    benchmark.pedantic(
        lambda: knori(
            fr8, 10, pruning=None, n_threads=48, seed=4, criteria=CRIT
        ),
        rounds=1, iterations=1,
    )
