"""Figure 13: knors on ONE i3.16xlarge vs distributed packages.

knors runs on a single 32-core NVMe machine with 48 threads (extra
parallelism from SMT, as in the paper); knord, MPI and MLlib-EC2 run
on a 3x c4.8xlarge cluster (48 physical cores total).

Claims to reproduce: single-machine semi-external knors often beats
MLlib running on a whole cluster and stays within a small factor of
knord/MPI -- "the SEM scale-up model should be considered prior to
moving to the distributed setting."
"""

import pytest

from repro import ConvergenceCriteria, knord, knors
from repro.baselines import framework_kmeans, mpi_lloyd
from repro.data import write_matrix
from repro.metrics import render_table
from repro.simhw import EC2_I3_16XLARGE
from repro.simhw.ssd import I3_NVME_ARRAY

from conftest import report

CRIT = ConvergenceCriteria(max_iters=8)
MACHINES = 3


def test_fig13_sem_vs_cloud(fr32, rm856, tmp_path_factory, benchmark):
    td = tmp_path_factory.mktemp("fig13")
    rows = []
    checks = {}
    for name, x, k in (
        ("Friendster-32", fr32, 10),
        ("RM_856M", rm856, 10),
    ):
        path = write_matrix(td / f"{name}.knor", x)
        db = x.size * 8
        runs = {
            "knors @ 1x i3.16xlarge": knors(
                path, k, seed=4, criteria=CRIT,
                cost_model=EC2_I3_16XLARGE, ssd=I3_NVME_ARRAY,
                n_threads=48,  # SMT oversubscription, as in the paper
                row_cache_bytes=db // 8, page_cache_bytes=db // 16,
                cache_update_interval=8,
            ),
            "knord @ 3x c4.8xlarge": knord(
                x, k, n_machines=MACHINES, seed=4, criteria=CRIT
            ),
            "MPI @ 3x c4.8xlarge": mpi_lloyd(
                x, k, n_machines=MACHINES, seed=4, criteria=CRIT
            ),
            "MLlib-EC2 @ 3x c4.8xlarge": framework_kmeans(
                x, k, "mllib", n_machines=MACHINES, seed=4,
                criteria=CRIT,
            ),
        }
        checks[name] = runs
        for label, res in runs.items():
            rows.append([name, label, f"{res.sim_seconds:.4f}"])

    report(
        "Figure 13: semi-external memory on one machine vs the "
        "distributed packages (sim s)",
        render_table(["dataset", "configuration", "sim s"], rows),
    )

    for name, runs in checks.items():
        sem = runs["knors @ 1x i3.16xlarge"].sim_seconds
        # One SEM machine beats MLlib on a whole cluster.
        assert sem < runs["MLlib-EC2 @ 3x c4.8xlarge"].sim_seconds, name
        # And stays within a small factor of the MPI cluster runs.
        assert sem < 4 * runs["knord @ 3x c4.8xlarge"].sim_seconds, name
        assert sem < 4 * runs["MPI @ 3x c4.8xlarge"].sim_seconds, name

    benchmark.pedantic(
        lambda: knord(fr32, 10, n_machines=MACHINES, seed=4,
                      criteria=CRIT),
        rounds=1, iterations=1,
    )
