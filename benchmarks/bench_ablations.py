"""Ablations for the design choices DESIGN.md calls out.

Not a paper figure -- these isolate the individual contributions the
paper claims but does not plot separately:

1. ||Lloyd's vs naive locked two-phase parallel Lloyd's (Section 3's
   motivation).
2. Row-cache refresh interval sweep (the laziness trade-off of
   Section 6.2.2).
3. Task granularity sweep (the 8192-row minimum of Section 8.4).
4. MTI vs full Elkan TI: computation pruned vs memory paid
   (Section 4's trade-off).
5. Funnel merge vs serial merge of per-thread centroids.
"""

import pytest

from repro import ConvergenceCriteria, knori, knors
from repro.baselines import naive_parallel_lloyd
from repro.metrics import render_table
from repro.simhw import FOUR_SOCKET_XEON

from conftest import report

CRIT = ConvergenceCriteria(max_iters=15)


def test_ablation_pll_vs_naive(fr8, benchmark):
    rows = []
    for t in (8, 16, 48):
        pll = knori(fr8, 10, pruning=None, n_threads=t, seed=4,
                    criteria=CRIT)
        naive = naive_parallel_lloyd(fr8, 10, n_threads=t, seed=4,
                                     criteria=CRIT)
        rows.append(
            [
                t,
                f"{pll.sim_seconds:.4f}",
                f"{naive.sim_seconds:.4f}",
                f"{naive.sim_seconds / pll.sim_seconds:.2f}x",
            ]
        )
        assert naive.sim_seconds > pll.sim_seconds
    # The locking penalty grows with T (k fixed at 10).
    assert float(rows[-1][3][:-1]) > float(rows[0][3][:-1])
    report(
        "Ablation 1: ||Lloyd's (per-thread centroids, one barrier) vs "
        "naive locked two-phase Lloyd's (Friendster-8-like, k=10)",
        render_table(["T", "||Lloyd's s", "naive s", "naive/pll"],
                     rows),
    )
    benchmark.pedantic(
        lambda: naive_parallel_lloyd(fr8, 10, n_threads=48, seed=4,
                                     criteria=CRIT),
        rounds=1, iterations=1,
    )


def test_ablation_cache_interval(fr32, fr32_file, benchmark):
    db = fr32.size * 8
    rows = []
    results = {}
    for interval in (2, 4, 8, 12):
        res = knors(
            fr32_file, 100, seed=4,
            criteria=ConvergenceCriteria(max_iters=20),
            row_cache_bytes=db // 8, page_cache_bytes=db // 16,
            cache_update_interval=interval,
        )
        hits = sum(r.cache_hits for r in res.records)
        results[interval] = res
        rows.append(
            [
                interval,
                f"{res.total_bytes_read / 1e6:.1f}",
                hits,
                f"{res.sim_seconds:.4f}",
            ]
        )
    report(
        "Ablation 2: row-cache refresh interval I_cache "
        "(Friendster-32-like, k=100)",
        render_table(
            ["I_cache", "total read MB", "total RC hits", "sim s"],
            rows,
        )
        + "\nToo-early refreshes cache a transient activation pattern;"
        "\ntoo-late ones leave the cache cold for most of the run.",
    )
    # Some interval must beat the extremes on bytes read.
    read = {i: r.total_bytes_read for i, r in results.items()}
    assert min(read.values()) < read[2] or min(read.values()) < read[12]
    benchmark.pedantic(
        lambda: knors(
            fr32_file, 100, seed=4,
            criteria=ConvergenceCriteria(max_iters=10),
            row_cache_bytes=db // 8, page_cache_bytes=db // 16,
        ),
        rounds=1, iterations=1,
    )


def test_ablation_task_granularity(fr8, benchmark):
    rows = []
    times = {}
    for task_rows in (64, 256, 1024, 8192):
        res = knori(fr8, 100, seed=4, criteria=CRIT,
                    task_rows=task_rows, n_threads=48)
        times[task_rows] = res.sim_seconds
        busy = sum(r.busy_fraction for r in res.records) / len(
            res.records
        )
        rows.append(
            [task_rows, f"{res.sim_seconds:.4f}", f"{busy:.3f}"]
        )
    report(
        "Ablation 3: task granularity under MTI skew "
        "(Friendster-8-like, k=100, T=48)",
        render_table(["task rows", "sim s", "mean utilization"], rows)
        + "\nOversized tasks (8192 rows = 21 tasks for 48 threads) "
        "starve threads outright.",
    )
    assert times[8192] > times[256]
    benchmark.pedantic(
        lambda: knori(fr8, 100, seed=4, criteria=CRIT, task_rows=256),
        rounds=1, iterations=1,
    )


def test_ablation_mti_vs_elkan(fr8, benchmark):
    from repro.extensions import yinyang_kmeans

    rows = []
    runs = {}
    for pruning in (None, "mti", "elkan"):
        res = knori(fr8, 50, pruning=pruning, seed=4, criteria=CRIT)
        runs[pruning] = res
        rows.append(
            [
                str(pruning),
                res.total_dist_computations,
                f"{res.peak_memory_bytes / 1e6:.2f}",
                f"{res.sim_seconds:.4f}",
            ]
        )
    yy = yinyang_kmeans(fr8, 50, seed=4, criteria=CRIT)
    rows.append(
        [
            "yinyang (O(nt))",
            yy.total_dist_computations,
            f"{yy.memory_breakdown['yinyang_bounds'] / 1e6:.2f}*",
            "-",
        ]
    )
    report(
        "Ablation 4: pruning strategy trade-off "
        "(Friendster-8-like, k=50)",
        render_table(
            ["pruning", "distance comps", "peak MB", "sim s"], rows
        )
        + "\nElkan prunes more but pays O(nk) memory; MTI keeps most "
        "of the pruning at O(n) -- the paper's core trade-off."
        "\n(* yinyang row shows bound-state bytes only; its run is "
        "pure numerics, no machine simulation.)",
    )
    assert (
        runs["elkan"].total_dist_computations
        <= runs["mti"].total_dist_computations
        < runs[None].total_dist_computations
    )
    assert (
        runs[None].peak_memory_bytes
        < runs["mti"].peak_memory_bytes
        < runs["elkan"].peak_memory_bytes
    )
    # MTI retains a large share of Elkan's pruning benefit.
    saved_mti = (
        runs[None].total_dist_computations
        - runs["mti"].total_dist_computations
    )
    saved_elkan = (
        runs[None].total_dist_computations
        - runs["elkan"].total_dist_computations
    )
    assert saved_mti > 0.5 * saved_elkan
    benchmark.pedantic(
        lambda: knori(fr8, 50, pruning="elkan", seed=4, criteria=CRIT),
        rounds=1, iterations=1,
    )


def test_ablation_reduction_cost(benchmark):
    """Funnel (tree) merge vs a serial merge of T partials."""
    cm = FOUR_SOCKET_XEON
    rows = []
    for t in (2, 8, 48, 96):
        tree = cm.reduction_ns(100, 32, t)
        serial = t * (100 * 32 + 100) * cm.merge_elem_ns
        rows.append(
            [t, f"{tree / 1e3:.2f}", f"{serial / 1e3:.2f}",
             f"{serial / tree:.2f}x"]
        )
        if t >= 48:
            assert tree < serial
    report(
        "Ablation 5: funnel (tree) reduction vs serial merge of "
        "per-thread centroids (k=100, d=32; sim us)",
        render_table(["T", "tree us", "serial us", "serial/tree"],
                     rows),
    )
    benchmark.pedantic(
        lambda: cm.reduction_ns(100, 32, 48), rounds=10, iterations=100
    )
