"""Seeded chaos soak: randomized multi-fault plans vs two invariants.

Each plan draws a random fault mix (SSD errors, crashes, corruption,
stragglers, drops...) from ``default_rng([master_seed, plan_index])``
and runs knors or knord under it. Exactly two outcomes are legal:

1. The run completes -- then its centroids and assignment must be
   **bit-identical** to the fault-free ground truth, and every injected
   corruption must have been detected (``detection_recall == 1.0``).
2. The run aborts -- then the exception must be a typed
   :class:`~repro.errors.KnorError`.

Anything else (wrong numbers, partial detection, a bare ``Exception``)
is a violation; the script reports all of them in a JSON artifact and
exits non-zero if any occurred. ``pytest -m chaos`` drives the same
plan generator through :mod:`tests.test_chaos_soak`.

Usage::

    python benchmarks/chaos_soak.py            # 60 plans
    python benchmarks/chaos_soak.py --quick    # 12 plans (CI smoke)
    python benchmarks/chaos_soak.py --seeds 200 --master-seed 7
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import FaultPlan, knord, knors  # noqa: E402
from repro.core import init_centroids  # noqa: E402
from repro.data import write_matrix  # noqa: E402
from repro.errors import KnorError  # noqa: E402
from repro.faults import FaultSpec  # noqa: E402
from repro.metrics import ResilienceObserver  # noqa: E402

K = 6
N_MACHINES = 4
KNORS_KW = dict(row_cache_bytes=1 << 20, page_cache_bytes=1 << 20)


def make_dataset(master_seed):
    """Deterministic overlapping blobs (~600 x 5), plus centroids."""
    rng = np.random.default_rng(master_seed)
    centers = rng.normal(scale=2.5, size=(K, 5))
    x = np.vstack(
        [rng.normal(loc=c, scale=1.6, size=(100, 5)) for c in centers]
    )
    rng.shuffle(x)
    return x, init_centroids(x, K, "random", seed=3)


def draw_spec(rng, backend):
    """One randomized multi-fault mix for the given backend."""
    u = rng.random
    if backend == "knors":
        spec = dict(
            ssd_error_rate=round(float(u() * 0.25), 3),
            ssd_slow_rate=round(float(u() * 0.2), 3),
            worker_crash_rate=round(float(u() * 0.15), 3),
            corruption_page_rate=round(float(u() * 0.25), 3),
            corruption_cache_rate=round(float(u() * 0.25), 3),
            straggler_rate=round(float(u() * 0.2), 3),
        )
    else:
        spec = dict(
            node_failure_rate=round(float(u() * 0.1), 3),
            msg_drop_rate=round(float(u() * 0.25), 3),
            corruption_msg_rate=round(float(u() * 0.25), 3),
            straggler_rate=round(float(u() * 0.2), 3),
            straggler_factor=8.0,
        )
    # One plan in five is sabotaged: repairs always fail, so any
    # corruption that fires MUST surface as a typed abort.
    if u() < 0.2:
        spec["corruption_repair_fail_rate"] = 1.0
    return spec


def run_plan(i, master_seed, dataset, centroids, path, workdir):
    """Run one chaos plan; return its JSON-ready record."""
    rng = np.random.default_rng([master_seed, i])
    backend = "knors" if i % 2 == 0 else "knord"
    spec_kw = draw_spec(rng, backend)
    plan = FaultPlan(FaultSpec(**spec_kw), seed=int(rng.integers(2**31)))
    res = ResilienceObserver()
    checkpointed = backend == "knors" and i % 4 == 0
    record = {
        "plan": i,
        "backend": backend,
        "spec": spec_kw,
        "checkpointed": checkpointed,
    }
    try:
        if backend == "knors":
            kw = dict(KNORS_KW)
            if checkpointed:
                ck = Path(workdir) / f"ck-{i}"
                kw.update(checkpoint_dir=ck, checkpoint_interval=2)
            result = knors(
                path, K, init=centroids, seed=3, faults=plan,
                observers=(res,), **kw,
            )
        else:
            result = knord(
                dataset, K, init=centroids, seed=3,
                n_machines=N_MACHINES, faults=plan, observers=(res,),
            )
    except KnorError as exc:
        record["outcome"] = "aborted"
        record["error"] = type(exc).__name__
        record["counters"] = res.counters.as_dict()
        return record, None
    except Exception as exc:  # noqa: BLE001 -- untyped escape = violation
        record["outcome"] = "untyped-error"
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["counters"] = res.counters.as_dict()
        return record, f"plan {i}: untyped exception {record['error']}"
    record["outcome"] = "completed"
    record["counters"] = res.counters.as_dict()
    return record, result


def check_completed(record, result, truth):
    """Invariants for a completed run; returns a violation or None."""
    i = record["plan"]
    c = record["counters"]
    if not (
        np.array_equal(result.centroids, truth.centroids)
        and np.array_equal(result.assignment, truth.assignment)
        and result.iterations == truth.iterations
    ):
        return f"plan {i}: completed run diverged from fault-free truth"
    if c["detection_recall"] != 1.0:
        return (
            f"plan {i}: detection recall {c['detection_recall']} "
            f"({c['corruptions_detected']}/{c['corruptions_injected']})"
        )
    return None


def soak(n_plans, master_seed, workdir):
    """Run the full soak; returns the report dict."""
    dataset, centroids = make_dataset(master_seed)
    path = str(write_matrix(Path(workdir) / "chaos.knor", dataset))
    truth = {
        "knors": knors(path, K, init=centroids, seed=3, **KNORS_KW),
        "knord": knord(dataset, K, init=centroids, seed=3,
                       n_machines=N_MACHINES),
    }
    plans, violations = [], []
    for i in range(n_plans):
        record, result = run_plan(
            i, master_seed, dataset, centroids, path, workdir
        )
        if record["outcome"] == "untyped-error":
            violations.append(result)
        elif record["outcome"] == "completed":
            bad = check_completed(record, result, truth[record["backend"]])
            if bad:
                violations.append(bad)
        plans.append(record)
    n_done = sum(1 for p in plans if p["outcome"] == "completed")
    n_abort = sum(1 for p in plans if p["outcome"] == "aborted")
    return {
        "master_seed": master_seed,
        "n_plans": n_plans,
        "completed": n_done,
        "aborted": n_abort,
        "violations": violations,
        "plans": plans,
    }


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seeds", type=int, default=60,
                    help="number of chaos plans (default 60)")
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: 12 plans")
    ap.add_argument("--master-seed", type=int, default=0)
    ap.add_argument("--out", default="CHAOS_soak.json")
    args = ap.parse_args(argv)
    n_plans = 12 if args.quick else args.seeds

    with tempfile.TemporaryDirectory() as workdir:
        report = soak(n_plans, args.master_seed, workdir)

    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"chaos soak: {report['n_plans']} plans, "
        f"{report['completed']} completed bit-identical, "
        f"{report['aborted']} typed aborts, "
        f"{len(report['violations'])} violations -> {args.out}"
    )
    for v in report["violations"]:
        print(f"VIOLATION: {v}", file=sys.stderr)
    return 1 if report["violations"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
