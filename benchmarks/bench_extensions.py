"""Cross-algorithm benchmark for the MM plane (PR 6, Figure 9 analog).

Runs every registered MM algorithm (k-means, GMM, spherical,
semisupervised, yinyang) through all three backends, asserts the
models are **bit-identical** across InMemory / Sem / Distributed
first, then records the deterministic simulated-time profile of each
substrate, writing ``BENCH_extensions.json`` at the repo root:

* **algorithms.<name>** -- one entry per algorithm: simulated seconds
  on each backend (informational; at bench sizes a single 4-socket
  NUMA box beats 4 networked c4.8xlarge machines, exactly the paper's
  "NUMA first" argument).
* **scaling.kmeans_1_vs_4_machines** -- the gated Figure 11 shape:
  distributed ``speedup`` of 4 machines over 1 machine of the same
  type at a size where compute amortizes the allreduce.
* **pruning.yinyang_vs_lloyd** -- simulated-time ``speedup`` of the
  yinyang triangle-inequality port over unpruned Lloyd's on the same
  in-memory substrate (the Figure 8/9 pruning story surviving the MM
  generalization).

All speedups are ratios of *simulated* time, so they are exactly
reproducible run-to-run and ``check_bench_regression.py`` gates them
without wall-clock noise.

Usage::

    PYTHONPATH=src python benchmarks/bench_extensions.py [--quick]

``--quick`` shrinks problem sizes so CI can smoke-test the harness in
seconds; the committed JSON comes from a full run.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import ConvergenceCriteria  # noqa: E402
from repro.extensions import MM_ALGORITHMS, make_mm_algorithm  # noqa: E402
from repro.runtime import (  # noqa: E402
    KmeansMM,
    run_mm_distributed,
    run_mm_inmemory,
    run_mm_sem,
)

OUT_PATH = REPO_ROOT / "BENCH_extensions.json"
N_MACHINES = 4
SEED = 3


def make_data(n: int, d: int, k: int, seed: int = 4):
    """Blobby data so pruning bites and every algorithm iterates."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=6.0, size=(k, d))
    x = centers[rng.integers(k, size=n)] + rng.normal(size=(n, d))
    labels = np.full(n, -1)
    labels[:: max(1, n // (4 * k))] = rng.integers(k, size=len(
        labels[:: max(1, n // (4 * k))]
    ))
    return np.ascontiguousarray(x), labels


def _algo_kwargs(name: str, max_iters: int) -> dict:
    if name == "gmm":
        return {"seed": SEED, "max_iters": max_iters}
    return {
        "seed": SEED,
        "criteria": ConvergenceCriteria(max_iters=max_iters),
    }


def bench_algorithm(name, x, labels, k, max_iters):
    """Run one algorithm on all three backends, assert bit-identity,
    return its deterministic sim-time entry."""
    lab = labels if name == "semisupervised" else None
    kwargs = _algo_kwargs(name, max_iters)

    def build():
        return make_mm_algorithm(name, x, k, labels=lab, **kwargs)

    ri = run_mm_inmemory(build())
    rs = run_mm_sem(build())
    rd = run_mm_distributed(build(), n_machines=N_MACHINES)

    for other in (rs, rd):
        assert np.array_equal(ri.centroids, other.centroids), name
        assert np.array_equal(ri.assignment, other.assignment), name
        assert other.iterations == ri.iterations, name
    assert ri.iterations > 1, f"{name} finished without iterating"

    return {
        "n": x.shape[0], "d": x.shape[1], "k": k,
        "iterations": ri.iterations,
        "bit_identical_across_backends": True,
        "inmemory_sim_s": ri.sim_seconds,
        "sem_sim_s": rs.sim_seconds,
        "distributed_sim_s": rd.sim_seconds,
        "n_machines": N_MACHINES,
    }


def bench_scaling(x, k, max_iters):
    """Distributed scaling, Figure 11's definition: N machines vs one
    machine of the same type."""
    kwargs = _algo_kwargs("kmeans", max_iters)

    def build():
        return make_mm_algorithm("kmeans", x, k, **kwargs)

    r1 = run_mm_distributed(build(), n_machines=1)
    r4 = run_mm_distributed(build(), n_machines=N_MACHINES)
    assert np.array_equal(r1.centroids, r4.centroids)
    assert r1.iterations == r4.iterations
    return {
        "n": x.shape[0], "d": x.shape[1], "k": k,
        "iterations": r4.iterations,
        "bit_identical_across_fleet_sizes": True,
        "one_machine_sim_s": r1.sim_seconds,
        "four_machine_sim_s": r4.sim_seconds,
        "speedup": r1.sim_seconds / r4.sim_seconds,
    }


def bench_pruning(x, k, max_iters):
    """Yinyang's TI pruning vs unpruned Lloyd's, same substrate."""
    crit = ConvergenceCriteria(max_iters=max_iters)
    rl = run_mm_inmemory(
        KmeansMM(x, k, pruning=None, init="random", seed=SEED,
                 criteria=crit)
    )
    ry = run_mm_inmemory(
        make_mm_algorithm("yinyang", x, k, init="random", seed=SEED,
                          criteria=crit)
    )
    # Same init mode and seed => same trajectory; pruning must not
    # change the answer, only the cost.
    assert np.array_equal(rl.assignment, ry.assignment)
    assert rl.iterations == ry.iterations
    pruned = sum(r.clause1_rows for r in ry.records)
    assert pruned > 0, "yinyang never pruned a row"
    return {
        "n": x.shape[0], "d": x.shape[1], "k": k,
        "iterations": ry.iterations,
        "assignments_identical": True,
        "rows_globally_filtered": int(pruned),
        "lloyd_sim_s": rl.sim_seconds,
        "yinyang_sim_s": ry.sim_seconds,
        "speedup": rl.sim_seconds / ry.sim_seconds,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small sizes (CI smoke test)",
    )
    ap.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output JSON path (default: {OUT_PATH})",
    )
    args = ap.parse_args(argv)

    if args.quick:
        n, d, k, max_iters = 3_000, 8, 8, 12
        sn, sit = 200_000, 6
        pn, pk, pit = 4_000, 16, 15
    else:
        n, d, k, max_iters = 20_000, 16, 12, 30
        sn, sit = 400_000, 12
        pn, pk, pit = 30_000, 24, 30

    x, labels = make_data(n, d, k)
    sx, _ = make_data(sn, 16, k, seed=6)
    px, _ = make_data(pn, d, pk, seed=9)

    results = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "note": (
                "simulated seconds per backend for every MM-plane "
                "algorithm; bit-identity across InMemory/Sem/"
                "Distributed asserted before timing. 'speedup' "
                "entries are deterministic sim-time ratios "
                "(distributed 1-machine over 4-machine for the "
                "scaling entry; unpruned Lloyd's over yinyang for "
                "the pruning entry), so the regression gate is "
                "wall-clock-noise-free."
            ),
        },
        "algorithms": {
            name: bench_algorithm(name, x, labels, k, max_iters)
            for name in sorted(MM_ALGORITHMS)
        },
        "scaling": {
            "kmeans_1_vs_4_machines": bench_scaling(sx, k, sit),
        },
        "pruning": {
            "yinyang_vs_lloyd": bench_pruning(px, pk, pit),
        },
    }

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    for name, r in results["algorithms"].items():
        print(
            f"  {name:16s} {r['iterations']:3d} iters  "
            f"inmem {r['inmemory_sim_s']:.4f}s  "
            f"sem {r['sem_sim_s']:.4f}s  "
            f"dist {r['distributed_sim_s']:.4f}s"
        )
    s = results["scaling"]["kmeans_1_vs_4_machines"]
    print(
        f"  {'kmeans scaling':16s} {s['iterations']:3d} iters  "
        f"{s['speedup']:.2f}x on {N_MACHINES} machines "
        f"(n={s['n']})"
    )
    p = results["pruning"]["yinyang_vs_lloyd"]
    print(
        f"  {'yinyang_vs_lloyd':16s} {p['iterations']:3d} iters  "
        f"{p['speedup']:.2f}x over unpruned Lloyd's "
        f"({p['rows_globally_filtered']} rows filtered)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
