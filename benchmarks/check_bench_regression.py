"""Regression guard over committed benchmark baselines.

Compares a freshly produced benchmark JSON (``bench_wallclock.py`` /
``bench_sem.py`` output) against a committed baseline of the *same
mode* (quick vs quick, full vs full -- speedup ratios are only
comparable within a mode) and fails when any kernel's before/after
speedup fell more than the tolerance below its baseline.

Rules:

* Only ``speedup`` entries are compared, matched by their JSON path
  (e.g. ``kernels.fetch_rows``). The ``meta`` and ``end_to_end``
  sections are skipped -- end-to-end wall clock is too noisy to gate
  (crash/bit-identity assertions inside the harness still guard it).
* Baseline entries with speedup < 1.0 are informational, not gated: a
  kernel that was never a win on that machine/size cannot "regress".
* A kernel present in the baseline but missing from the fresh run
  fails (coverage loss is a regression too).

Usage::

    python benchmarks/check_bench_regression.py BASELINE FRESH \
        [--tolerance 0.2]

Exit code 0 when everything holds, 1 on any regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SKIP_SECTIONS = {"meta", "end_to_end"}


def _speedup_paths(node, prefix=()):
    """Yield (path, speedup) for every dict holding a ``speedup``."""
    if not isinstance(node, dict):
        return
    if "speedup" in node and isinstance(
        node["speedup"], (int, float)
    ):
        yield ".".join(prefix), float(node["speedup"])
        return
    for key, child in node.items():
        if not prefix and key in SKIP_SECTIONS:
            continue
        yield from _speedup_paths(child, prefix + (key,))


def compare(baseline: dict, fresh: dict, tolerance: float) -> list[str]:
    """Return a list of human-readable regression messages."""
    base = dict(_speedup_paths(baseline))
    new = dict(_speedup_paths(fresh))
    problems = []
    for path, base_speedup in sorted(base.items()):
        if path not in new:
            problems.append(f"{path}: missing from fresh run")
            continue
        fresh_speedup = new[path]
        floor = base_speedup * (1.0 - tolerance)
        status = "ok"
        if base_speedup < 1.0:
            status = "info (baseline < 1x, not gated)"
        elif fresh_speedup < floor:
            status = "REGRESSION"
            problems.append(
                f"{path}: speedup {fresh_speedup:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_speedup:.2f}x "
                f"- {tolerance:.0%})"
            )
        print(
            f"  {path:40s} baseline {base_speedup:5.2f}x  "
            f"fresh {fresh_speedup:5.2f}x  {status}"
        )
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", type=Path)
    ap.add_argument("fresh", type=Path)
    ap.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional speedup drop (default 0.2 = 20%%)",
    )
    args = ap.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    if baseline.get("meta", {}).get("quick") != fresh.get(
        "meta", {}
    ).get("quick"):
        print(
            "warning: comparing across modes (quick vs full); "
            "speedup ratios may not be comparable",
            file=sys.stderr,
        )

    print(f"{args.baseline} vs {args.fresh} "
          f"(tolerance {args.tolerance:.0%}):")
    problems = compare(baseline, fresh, args.tolerance)
    if problems:
        print("\nregressions:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
