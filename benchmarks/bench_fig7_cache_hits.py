"""Figure 7: row cache hits per iteration vs the maximum achievable.

Friendster-32, k=100, RC=data/8, I_cache=8 (see bench_fig6 for the
scale-substitution rationale). Claims reproduced: before the first
lazy refresh the cache is cold; after it, hits track the achievable
maximum (active rows) at near-100%, so knors "operates at in-memory
speeds for the vast majority of iterations" despite the cache staying
static between refreshes.
"""

import pytest

from repro import ConvergenceCriteria, knors
from repro.metrics import render_series

from conftest import report

CRIT = ConvergenceCriteria(max_iters=30)
K = 100
I_CACHE = 8


def test_fig7_cache_hits(fr32, fr32_file, benchmark):
    data_bytes = fr32.size * 8
    res = knors(
        fr32_file,
        K,
        pruning="mti",
        row_cache_bytes=data_bytes // 8,
        page_cache_bytes=data_bytes // 16,
        cache_update_interval=I_CACHE,
        seed=4,
        criteria=CRIT,
    )

    series = {
        "cache hits": {r.iteration: r.cache_hits for r in res.records},
        "max achievable (active rows)": {
            r.iteration: r.rows_active for r in res.records
        },
        "hit rate": {
            r.iteration: (
                r.cache_hits / r.rows_active if r.rows_active else 1.0
            )
            for r in res.records
        },
    }
    report(
        f"Figure 7: row cache hits vs maximum achievable "
        f"(Friendster-32-like, k={K}, I_cache={I_CACHE})",
        render_series("iter", series),
    )

    # Cold before the first refresh.
    for r in res.records[:I_CACHE]:
        assert r.cache_hits == 0
    # Warm after: the hit rate approaches the achievable maximum.
    warm = [
        r for r in res.records
        if r.iteration > I_CACHE and r.rows_active > 0
    ]
    assert warm, "run converged before the cache warmed"
    late = warm[-1]
    assert late.cache_hits / late.rows_active > 0.9
    # Hits never exceed the achievable maximum.
    for r in res.records:
        assert r.cache_hits <= r.rows_active

    benchmark.pedantic(
        lambda: knors(
            fr32_file, K, row_cache_bytes=data_bytes // 8,
            page_cache_bytes=data_bytes // 16,
            cache_update_interval=I_CACHE, seed=4, criteria=CRIT,
        ),
        rounds=1, iterations=1,
    )
