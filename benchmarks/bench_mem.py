"""Memory-manager plane benchmark.

Three sections, written to ``BENCH_mem.json`` at the repo root:

* **churn** -- wall-clock alloc+write+free cycles of the three hot
  allocation patterns (per-iteration partial-centroid blocks, the
  allreduce staging ladder, and varying-size distance-buffer batches)
  under the numpy manager (fresh allocations each cycle) vs the arena
  manager (size-class pools). ``np.zeros`` is lazy calloc, so every
  cycle *writes* the full buffer on both sides -- the numbers measure
  real allocate-and-touch cost, not mmap bookkeeping.
* **budget** -- deterministic peak-resident-bytes vs byte-cap curve
  and the simulated spill-time-vs-cap sweep for a knori hot loop,
  with bit-identity asserted against the numpy-manager run at every
  cap. Simulated ns, immune to runner noise; informational.
* **tracemalloc** -- peak interpreter bytes of a quick knori run,
  gated separately by ``check_mem_peak.py`` (fails CI if it grows
  more than 20% over the committed baseline).

Usage::

    PYTHONPATH=src python benchmarks/bench_mem.py [--quick]

``--quick`` shrinks sizes/repeats for the CI smoke job; the committed
JSON comes from a full run.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import ConvergenceCriteria  # noqa: E402
from repro.drivers.knori import knori  # noqa: E402
from repro.mem import (  # noqa: E402
    ArenaManager,
    BudgetedManager,
    NumpyManager,
)
from repro.perf import before_after, time_callable  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_mem.json"


def _ba(before_fn, after_fn, repeats):
    return before_after(
        time_callable(before_fn, label="before", repeats=repeats),
        time_callable(after_fn, label="after", repeats=repeats),
    )


# -- allocation churn -------------------------------------------------


def _churn_cycle(mem, shapes, cycles):
    """One timed body: alloc + full write + free, ``cycles`` times."""
    for _ in range(cycles):
        bufs = [
            mem.alloc(s, np.float64, tag="bench/churn") for s in shapes
        ]
        for b in bufs:
            b.fill(1.0)  # touch every byte (np.zeros is lazy calloc)
        for b in bufs:
            mem.free(b)


def bench_partials(k, d, n_threads, cycles, repeats):
    """knord/pll's per-iteration pattern: one (k, d) sums block and a
    (k,) counts block per thread, freed after the funnel merge."""
    shapes = [(k, d)] * n_threads + [(k,)] * n_threads
    numpy_m, arena_m = NumpyManager(), ArenaManager()

    def before():
        _churn_cycle(numpy_m, shapes, cycles)

    def after():
        _churn_cycle(arena_m, shapes, cycles)

    after()  # prime the pool: steady state is what iterations 2+ see
    out = _ba(before, after, repeats)
    out |= {"k": k, "d": d, "n_threads": n_threads, "cycles": cycles,
            "arena_backing_allocs": arena_m.counters().backing_allocs}
    return out


def bench_staging(k, d, p, cycles, repeats):
    """The allreduce staging ladder: p staged contributions, pairwise
    in-place adds, every rung freed on the way up."""
    shape = (k, d)
    src = [np.full(shape, float(i + 1)) for i in range(p)]

    def ladder(mem):
        for _ in range(cycles):
            level = []
            for a in src:
                buf = mem.alloc(shape, np.float64, tag="bench/stage")
                np.copyto(buf, a, casting="unsafe")
                level.append(buf)
            while len(level) > 1:
                nxt = []
                for i in range(0, len(level) - 1, 2):
                    np.add(level[i], level[i + 1], out=level[i])
                    mem.free(level[i + 1])
                    nxt.append(level[i])
                if len(level) % 2 == 1:
                    nxt.append(level[-1])
                level = nxt
            mem.free(level[0])

    numpy_m, arena_m = NumpyManager(), ArenaManager()

    def before():
        ladder(numpy_m)

    def after():
        ladder(arena_m)

    after()
    return _ba(before, after, repeats) | {
        "k": k, "d": d, "p": p, "cycles": cycles,
    }


def bench_varying_batches(k, batches, repeats):
    """The serve/knors fetch pattern: distance buffers for batches of
    varying row counts. Fresh allocation pays every batch; the
    capacity-preserving ``ensure_capacity`` grow-guard pays once."""
    arena_m = ArenaManager()

    def before():
        for m in batches:
            buf = np.empty((m, k))
            buf.fill(1.0)

    def after():
        buf = None
        for m in batches:
            buf = arena_m.ensure_capacity(
                buf, (m, k), np.float64, tag="bench/dist"
            )
            buf[:m].fill(1.0)

    after()
    return _ba(before, after, repeats) | {
        "k": k, "n_batches": len(batches),
        "max_rows": int(max(batches)),
    }


# -- budget curve -----------------------------------------------------


def make_data(n, d, k, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=8.0, size=(k, d))
    x = centers[rng.integers(k, size=n)] + rng.normal(size=(n, d))
    return np.ascontiguousarray(x)


def bench_budget_curve(n, d, k, iters, fractions):
    """Peak resident bytes and simulated spill time vs byte cap, with
    bit-identity asserted against the numpy-manager reference."""
    x = make_data(n, d, k)
    crit = ConvergenceCriteria(max_iters=iters)
    ref = knori(x, k, seed=1, criteria=crit)

    free_m = ArenaManager()
    knori(x, k, seed=1, criteria=crit, mem=free_m)
    uncapped = free_m.counters().peak_bytes
    largest = max(
        b.size_class for b in free_m._live.values()
    ) if free_m._live else 0

    points = []
    for frac in fractions:
        cap = max(int(uncapped * frac), largest)
        m = BudgetedManager(cap)
        got = knori(x, k, seed=1, criteria=crit, mem=m)
        assert np.array_equal(ref.centroids, got.centroids), (
            f"budget cap {cap} changed the centroids"
        )
        assert ref.inertia == got.inertia
        c = m.counters()
        assert c.peak_bytes <= cap, "resident peak exceeded the cap"
        points.append({
            "cap_fraction": frac,
            "cap_bytes": cap,
            "peak_resident_bytes": c.peak_bytes,
            "spill_count": c.spill_count,
            "spill_bytes": c.spill_bytes,
            "spill_ns": c.spill_ns,
        })
    return {
        "n": n, "d": d, "k": k, "iters": iters,
        "uncapped_peak_bytes": uncapped,
        "largest_block_bytes": largest,
        "bit_identical_at_every_cap": True,
        "points": points,
    }


# -- interpreter peak -------------------------------------------------


def bench_tracemalloc(n, d, k, iters):
    """Peak interpreter bytes of one knori run (CI smoke gate)."""
    x = make_data(n, d, k)
    tracemalloc.start()
    knori(x, k, seed=1,
          criteria=ConvergenceCriteria(max_iters=iters))
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"n": n, "d": d, "k": k, "iters": iters,
            "peak_bytes": int(peak)}


# -- driver ----------------------------------------------------------


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small sizes / few repeats (CI smoke test)",
    )
    ap.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output JSON path (default: {OUT_PATH})",
    )
    args = ap.parse_args(argv)

    # Block sizes sit above the allocator's mmap threshold (~128 KiB):
    # that is the regime where fresh allocation pays page faults every
    # cycle and pooling wins. Sub-threshold blocks are pool-neutral
    # (malloc already recycles them) and are not what the gate tracks.
    if args.quick:
        repeats = 3
        partials = dict(k=128, d=256, n_threads=8, cycles=20)
        staging = dict(k=64, d=1024, p=16, cycles=10)
        batch_rng = np.random.default_rng(9)
        batches = batch_rng.integers(1024, 16384, size=60)
        budget = dict(n=4000, d=16, k=10, iters=4,
                      fractions=[1.0, 0.8, 0.6, 0.5])
        tm = dict(n=4000, d=16, k=10, iters=4)
    else:
        repeats = 5
        partials = dict(k=128, d=256, n_threads=48, cycles=60)
        staging = dict(k=64, d=1024, p=64, cycles=30)
        batch_rng = np.random.default_rng(9)
        batches = batch_rng.integers(4096, 65536, size=300)
        budget = dict(n=50_000, d=32, k=16, iters=6,
                      fractions=[1.0, 0.8, 0.6, 0.5, 0.4])
        tm = dict(n=50_000, d=32, k=16, iters=6)

    results = {
        "meta": {
            "quick": args.quick,
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "note": (
                "churn: wall-clock seconds, best-of-N; 'before' is "
                "the numpy manager (fresh allocation every cycle), "
                "'after' is the arena manager (size-class pools). "
                "Every cycle writes the full buffer on both sides. "
                "budget: deterministic simulated spill charges; "
                "results asserted bit-identical at every cap. "
                "tracemalloc: peak interpreter bytes, gated by "
                "check_mem_peak.py at +20%."
            ),
        },
        "churn": {
            "partials": bench_partials(repeats=repeats, **partials),
            "allreduce_staging": bench_staging(
                repeats=repeats, **staging
            ),
            "varying_batches": bench_varying_batches(
                k=16, batches=batches, repeats=repeats
            ),
        },
        "budget": bench_budget_curve(**budget),
        "tracemalloc": bench_tracemalloc(**tm),
    }

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    for name, r in results["churn"].items():
        print(f"  churn/{name:20s} {r['speedup']:.2f}x "
              f"({r['before_s']:.4f}s -> {r['after_s']:.4f}s)")
    b = results["budget"]
    for p in b["points"]:
        print(f"  cap {p['cap_fraction']:.0%}: resident "
              f"{p['peak_resident_bytes'] / 1e6:.2f} MB, "
              f"{p['spill_count']} spills, "
              f"{p['spill_ns'] / 1e6:.3f} ms simulated")
    print(f"  tracemalloc peak "
          f"{results['tracemalloc']['peak_bytes'] / 1e6:.2f} MB")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
