"""Elastic-plane benchmark: what notice, autoscaling and fair share buy.

Three sections, written to ``BENCH_elastic.json`` at the repo root.
Everything here is **simulated time** -- deterministic, immune to
runner noise -- and every run is asserted bit-identical to its fixed,
event-free twin before any timing is reported.

* **preemption** -- semi-external knors hit by a spot preemption, with
  notice vs without. The metric is *executed* simulated work (every
  iteration boundary the engine ran, including ones a recovery later
  replayed -- the final record stream hides redone work by design).
  With notice the victim flushes a checkpoint inside the grace window
  and recovery resumes at the next iteration; with zero notice it
  replays from the last periodic checkpoint (here: from scratch).
  ``speedup`` = zero-notice executed time / noticed executed time.
* **autoscale** -- knord under a leave-heavy membership plan (spot
  churn drains shards onto survivors, doubling some machines' load)
  with and without the feedback autoscaler. Requested capacity lands
  only after the policy's simulated provisioning latency, then the
  joiners take the doubled shards back. ``speedup`` = fixed-fleet
  total simulated time / autoscaled total simulated time.
* **fair_share** -- informational (no gate): two tenants at 3:1
  weights interleaved over one simulated cluster; reports the grant
  interleaving, its determinism across a re-run, and the observed
  boundary ratio inside the window where both tenants were active.

Usage::

    PYTHONPATH=src python benchmarks/bench_elastic.py [--quick]

``--quick`` shrinks sizes for the CI smoke job; the committed JSON
comes from a full run. Gate: ``check_bench_regression.py`` against
``benchmarks/baselines/BENCH_elastic.quick.json``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import ConvergenceCriteria  # noqa: E402
from repro.drivers.knord import knord, knord_loop  # noqa: E402
from repro.drivers.knors import knors  # noqa: E402
from repro.elastic import (  # noqa: E402
    Autoscaler,
    AutoscalerPolicy,
    FairShareScheduler,
    MembershipEvent,
    MembershipPlan,
    TenantJob,
    TenantSpec,
)
from repro.runtime import RunObserver  # noqa: E402
from repro.simhw import run_cost_usd  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_elastic.json"


class ExecutedWork(RunObserver):
    """Totals every boundary the engine actually ran.

    Recovery rewinds the record list, so the final stream hides
    replayed iterations; ``on_iteration_end`` fires once per executed
    boundary and sees them all.
    """

    def __init__(self) -> None:
        self.boundaries = 0
        self.sim_ns = 0.0

    def on_iteration_end(self, iteration, record):
        self.boundaries += 1
        self.sim_ns += record.sim_ns


def make_data(n, d, seed=0):
    # Unstructured noise converges slowly, leaving room for the
    # elastic events to land mid-run.
    return np.random.default_rng(seed).normal(size=(n, d))


# -- preemption: notice vs zero notice --------------------------------


def bench_preemption(n, d, k, max_iters, preempt_at, notice):
    x = make_data(n, d)
    crit = ConvergenceCriteria(max_iters=max_iters)

    def run(plan):
        work = ExecutedWork()
        with tempfile.TemporaryDirectory() as td:
            result = knors(
                x, k, seed=1, criteria=crit,
                checkpoint_dir=td, checkpoint_interval=10 * max_iters,
                membership=plan, observers=[work],
            )
        return result, work

    clean, _ = run(None)
    zero, zero_work = run(MembershipPlan.from_schedule(
        [MembershipEvent("preempt", preempt_at, notice=0)]
    ))
    noticed, noticed_work = run(MembershipPlan.from_schedule(
        [MembershipEvent("preempt", preempt_at, notice=notice)]
    ))
    for res in (zero, noticed):
        assert np.array_equal(clean.centroids, res.centroids), (
            "preemption changed the clustering"
        )
        assert np.array_equal(clean.assignment, res.assignment)
    return {
        "n": n, "d": d, "k": k, "max_iters": max_iters,
        "preempt_at": preempt_at, "notice": notice,
        "committed_iters": noticed.iterations,
        "zero_notice_boundaries": zero_work.boundaries,
        "noticed_boundaries": noticed_work.boundaries,
        "before_s": zero_work.sim_ns / 1e9,
        "after_s": noticed_work.sim_ns / 1e9,
        "speedup": zero_work.sim_ns / noticed_work.sim_ns,
        "bit_identical": True,
    }


# -- autoscale: spot churn with and without the feedback loop ---------


def bench_autoscale(n, d, k, n_machines, max_iters, leave_at):
    x = make_data(n, d)
    crit = ConvergenceCriteria(max_iters=max_iters)

    def churn_plan():
        # Stateful: a fresh instance per run.
        return MembershipPlan.from_schedule([
            MembershipEvent("leave", leave_at, machine=n_machines - 1),
            MembershipEvent("leave", leave_at, machine=n_machines - 2),
        ])

    clean = knord(x, k, n_machines=n_machines, seed=1, criteria=crit)
    balanced_iter_s = float(
        np.mean([r.sim_ns for r in clean.records])
    ) / 1e9

    fixed = knord(
        x, k, n_machines=n_machines, seed=1, criteria=crit,
        membership=churn_plan(),
    )
    policy = AutoscalerPolicy(
        target_iter_s=1.2 * balanced_iter_s,
        provision_s=3.0 * balanced_iter_s,
        cooldown_iters=2, warmup_iters=2, step=2,
        max_machines=n_machines,
    )
    scaler = Autoscaler(policy)
    scaled = knord(
        x, k, n_machines=n_machines, seed=1, criteria=crit,
        membership=churn_plan(), autoscaler=scaler,
    )
    for res in (fixed, scaled):
        assert np.array_equal(clean.centroids, res.centroids), (
            "churn/autoscale changed the clustering"
        )
    fixed_s = sum(r.sim_ns for r in fixed.records) / 1e9
    scaled_s = sum(r.sim_ns for r in scaled.records) / 1e9
    machine_hours = {
        label: sum(
            r.sim_ns / 1e9 * r.machines_alive for r in res.records
        ) / 3600.0
        for label, res in (("fixed", fixed), ("autoscaled", scaled))
    }
    return {
        "n": n, "d": d, "k": k, "n_machines": n_machines,
        "max_iters": max_iters, "leave_at": leave_at,
        "balanced_iter_s": balanced_iter_s,
        "target_iter_s": policy.target_iter_s,
        "provision_s": policy.provision_s,
        "scale_decisions": len(scaler.decisions),
        "before_s": fixed_s,
        "after_s": scaled_s,
        "speedup": fixed_s / scaled_s,
        "cost": {
            label: {
                "machine_hours": hours,
                "on_demand_usd": run_cost_usd(
                    hours * 3600.0, 1
                ),
                "spot_usd": run_cost_usd(hours * 3600.0, 1, spot=True),
            }
            for label, hours in machine_hours.items()
        },
        "bit_identical": True,
    }


# -- fair share: deterministic 3:1 interleave -------------------------


def bench_fair_share(n, d, k, n_machines, max_iters):
    x = make_data(n, d)
    crit = ConvergenceCriteria(max_iters=max_iters)
    specs = [
        TenantSpec("prod", weight=3.0),
        TenantSpec("batch", weight=1.0),
    ]

    def run_once():
        jobs = []
        for spec in specs:
            loop, _ = knord_loop(
                x, k, n_machines=n_machines, seed=1, criteria=crit
            )
            jobs.append(TenantJob(spec, loop))
        scheduler = FairShareScheduler(jobs)
        outcomes = scheduler.run()
        return scheduler.grants, outcomes

    grants, outcomes = run_once()
    grants2, _ = run_once()
    # The window where both tenants are still active is where the
    # weights bind; after one finishes, the other gets every slot.
    last = {name: max(
        i for i, (g, _) in enumerate(grants) if g == name
    ) for name in ("prod", "batch")}
    window = min(last.values()) + 1
    in_window = [g for g, _ in grants[:window]]
    prod_share = in_window.count("prod") / window
    return {
        "n": n, "d": d, "k": k, "n_machines": n_machines,
        "weights": {s.name: s.weight for s in specs},
        "boundaries": {
            name: o.boundaries for name, o in outcomes.items()
        },
        "sim_s": {
            name: o.sim_ns / 1e9 for name, o in outcomes.items()
        },
        "contended_window": window,
        "prod_share_in_window": prod_share,
        "deterministic_interleave": grants == grants2,
    }


# -- driver ----------------------------------------------------------


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small sizes (CI smoke test)",
    )
    ap.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output JSON path (default: {OUT_PATH})",
    )
    args = ap.parse_args(argv)

    # The autoscale workload must be compute-dominated: with tiny
    # shards the allreduce latency dwarfs per-machine compute and
    # losing ranks makes iterations *faster*, so nothing triggers.
    if args.quick:
        preempt = dict(n=2000, d=8, k=6, max_iters=12,
                       preempt_at=6, notice=2)
        autoscale = dict(n=24000, d=32, k=12, n_machines=6,
                         max_iters=24, leave_at=2)
        fair = dict(n=1500, d=8, k=5, n_machines=4, max_iters=10)
    else:
        preempt = dict(n=12000, d=16, k=10, max_iters=20,
                       preempt_at=12, notice=2)
        autoscale = dict(n=48000, d=32, k=16, n_machines=8,
                         max_iters=30, leave_at=3)
        fair = dict(n=8000, d=16, k=8, n_machines=6, max_iters=15)

    results = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "note": (
                "All sections are deterministic simulated time; every "
                "elastic run is asserted bit-identical to its "
                "event-free twin first. preemption/autoscale carry "
                "gated speedups; fair_share is informational."
            ),
        },
        "preemption": bench_preemption(**preempt),
        "autoscale": bench_autoscale(**autoscale),
        "fair_share": bench_fair_share(**fair),
    }

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    p = results["preemption"]
    print(f"  preemption: notice saves "
          f"{p['zero_notice_boundaries'] - p['noticed_boundaries']} "
          f"replayed boundaries -> {p['speedup']:.2f}x")
    a = results["autoscale"]
    print(f"  autoscale:  churned fleet {a['before_s']:.4f}s -> "
          f"{a['after_s']:.4f}s with scaler ({a['speedup']:.2f}x, "
          f"{a['scale_decisions']} decisions)")
    f = results["fair_share"]
    print(f"  fair share: prod got {f['prod_share_in_window']:.0%} of "
          f"the contended window (weights 3:1), deterministic="
          f"{f['deterministic_interleave']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
