"""Table 2: the datasets under evaluation (paper scale vs repro scale).

Materializes every registry dataset at its scaled default and prints
the paper-vs-reproduction inventory; benchmarks generator throughput.
"""

from repro.data import DATASETS
from repro.metrics import render_table

from conftest import report


def test_table2_datasets(benchmark):
    rows = []
    for spec in DATASETS.values():
        x = spec.load()
        size_mb = x.nbytes / 1e6
        rows.append(
            [
                spec.name,
                f"{spec.paper_n:,}" if spec.paper_n else "n/a",
                spec.paper_d,
                spec.paper_size,
                f"{x.shape[0]:,}",
                x.shape[1],
                f"{size_mb:.1f} MB",
            ]
        )
        assert x.shape[1] == spec.d

    report(
        "Table 2: datasets (paper vs reproduction scale)",
        render_table(
            [
                "dataset", "paper n", "paper d", "paper size",
                "repro n", "repro d", "repro size",
            ],
            rows,
        ),
    )

    benchmark.pedantic(
        lambda: DATASETS["rm-856m"].load(65536), rounds=1, iterations=1
    )
