"""Generalized-framework benchmarks (Section 9's endgame).

Not a paper figure: validates that (a) the generic drivers reproduce
the hand-written knori/knors timings exactly for the same work, and
(b) a foreign algorithm (EM for a GMM) inherits the substrate's NUMA
scaling -- the claim Section 9 stakes on the design.
"""

import pytest

from repro import ConvergenceCriteria, knori
from repro.framework import GmmAlgorithm, KmeansAlgorithm, run_numa
from repro.metrics import render_table

from conftest import report


def test_framework_fidelity_and_gmm_scaling(fr8_small, benchmark):
    # (a) fidelity: same algorithm, same work -> same simulated time.
    crit = ConvergenceCriteria(max_iters=15)
    builtin = knori(fr8_small, 10, seed=3, criteria=crit)
    algo = KmeansAlgorithm(10, seed=3)
    generic = run_numa(algo, fr8_small, reduction_k=10, max_iters=15)
    fidelity = generic.sim_seconds / builtin.sim_seconds
    assert fidelity == pytest.approx(1.0, rel=1e-9)

    # (b) a GMM scales with threads on the same substrate.
    rows = [["knori (builtin)", f"{builtin.sim_seconds:.5f}", "-"],
            ["knori (via framework)", f"{generic.sim_seconds:.5f}",
             f"{fidelity:.3f}x"]]
    times = {}
    for t in (1, 8, 48):
        g = GmmAlgorithm(8, seed=1)
        res = run_numa(
            g, fr8_small, n_threads=t, reduction_k=8, max_iters=10
        )
        times[t] = res.sim_seconds
        rows.append(
            [f"GMM/EM via framework, T={t}", f"{res.sim_seconds:.5f}",
             f"{times[1] / res.sim_seconds:.1f}x speedup"]
        )
    report(
        "Framework: generic-driver fidelity + GMM on the NUMA "
        "substrate (sim s)",
        render_table(["configuration", "sim s", "note"], rows),
    )
    assert times[1] / times[8] > 6.0
    assert times[8] > times[48]

    benchmark.pedantic(
        lambda: run_numa(
            GmmAlgorithm(8, seed=1), fr8_small, n_threads=48,
            reduction_k=8, max_iters=5,
        ),
        rounds=1, iterations=1,
    )
