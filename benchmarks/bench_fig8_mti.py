"""Figure 8: MTI on/off performance and memory for knori and knors.

Friendster-8 and Friendster-32, k=10 and k=100. Claims to reproduce:

(a/b) MTI gives a few factors of runtime improvement over the
      MTI-disabled counterparts, for both the in-memory and the
      semi-external module;
(c)   MTI increases memory by a negligible amount, while the row
      cache accounts for knors's (bounded, user-chosen) increase.
"""

import pytest

from repro import ConvergenceCriteria, knori, knors
from repro.metrics import render_table

from conftest import report

CRIT = ConvergenceCriteria(max_iters=20)


def test_fig8_mti(fr8, fr32, fr8_file, fr32_file, benchmark):
    rows = []
    checks = []
    for name, data, path in (
        ("Friendster-8", fr8, fr8_file),
        ("Friendster-32", fr32, fr32_file),
    ):
        db = data.size * 8
        for k in (10, 100):
            im = knori(data, k, seed=4, criteria=CRIT)
            im_minus = knori(data, k, pruning=None, seed=4,
                             criteria=CRIT)
            sem = knors(path, k, seed=4, criteria=CRIT,
                        row_cache_bytes=db // 8,
                        page_cache_bytes=db // 16,
                        cache_update_interval=8)
            sem_mm = knors(path, k, pruning=None, row_cache_bytes=0,
                           page_cache_bytes=db // 16, seed=4,
                           criteria=CRIT)
            for res in (im, im_minus, sem, sem_mm):
                rows.append(
                    [
                        name,
                        k,
                        res.algorithm,
                        f"{res.sim_seconds:.4f}",
                        f"{res.peak_memory_bytes / 1e6:.2f}",
                    ]
                )
            checks.append((name, k, im, im_minus, sem, sem_mm))

    report(
        "Figure 8: MTI enabled vs disabled -- runtime (sim s) and "
        "peak memory (MB)",
        render_table(
            ["dataset", "k", "routine", "sim s", "peak MB"], rows
        ),
    )

    for name, k, im, im_minus, sem, sem_mm in checks:
        # (a/b) MTI speeds both modules up.
        assert im.sim_seconds < im_minus.sim_seconds, (name, k)
        assert sem.sim_seconds < sem_mm.sim_seconds, (name, k)
        # (c) the MTI state itself is a negligible memory increment
        # over knori- (the paper's Fig 8c claim)...
        mti_state = (
            im.memory_breakdown["mti_bounds"]
        )
        assert mti_state / im_minus.peak_memory_bytes < 0.2, (name, k)
        # ...and knors with all its caches still sits far below the
        # in-memory footprint at d=32.
        if name == "Friendster-32":
            assert sem.peak_memory_bytes < im.peak_memory_bytes

    im, im_minus = checks[0][2], checks[0][3]
    benchmark.pedantic(
        lambda: knori(fr8, 10, seed=4, criteria=CRIT),
        rounds=1, iterations=1,
    )
