"""Table 3: serial per-iteration performance of k-means strategies.

Two real, wall-clock-timed strategies run here (iterative blocked and
GEMM-formulated -- the axes along which MATLAB/BLAS vs R/sklearn/MLpack
differ), plus the calibrated cost model's paper-scale projection for
knori. Paper numbers are printed beside ours for the shape comparison.

Honesty note: both of our strategies ultimately call BLAS through
NumPy, so the iterative-vs-GEMM gap here reflects blocking and
intermediate-materialization overheads, not language differences; the
paper's 2.7x MATLAB-vs-knori gap includes MATLAB's own overheads.
"""

import pytest

from repro.baselines import time_serial_iteration
from repro.metrics import render_table
from repro.simhw import FOUR_SOCKET_XEON

from conftest import report

PAPER = {
    "knori (C++ iterative)": 7.49,
    "MATLAB (GEMM)": 20.68,
    "BLAS (GEMM)": 20.70,
    "R (iterative)": 8.63,
    "Scikit-learn (Cython iterative)": 12.84,
    "MLpack (C++ iterative)": 13.09,
}


def test_table3_serial(fr8, benchmark):
    n, d = fr8.shape
    k = 10
    t_iter = time_serial_iteration(fr8, k, "iterative", repeats=3)
    t_gemm = time_serial_iteration(fr8, k, "gemm", repeats=3)

    # Cost-model projection of knori- at paper scale (the Table 3 row).
    cm = FOUR_SOCKET_XEON
    paper_n = 66_000_000
    knori_proj = (
        cm.dist_comp_ns(d, paper_n * k) + cm.rows_overhead_ns(paper_n)
    ) / 1e9

    scale = paper_n / n
    rows = [
        ["our iterative (NumPy, wall-clock)", f"{t_iter:.4f}",
         f"{t_iter * scale:.2f}"],
        ["our GEMM (NumPy, wall-clock)", f"{t_gemm:.4f}",
         f"{t_gemm * scale:.2f}"],
        ["knori- (cost model, calibrated)", "-",
         f"{knori_proj:.2f}"],
    ]
    paper_rows = [[name, f"{secs:.2f}"] for name, secs in PAPER.items()]

    report(
        "Table 3: serial per-iteration time, Friendster-8, k=10 "
        "(measured at n=65536, extrapolated to n=66M)",
        render_table(
            ["implementation", "s/iter @65K", "s/iter @66M (extrap)"],
            rows,
        )
        + "\n\npaper's Table 3 (for shape comparison):\n"
        + render_table(["implementation", "s/iter"], paper_rows),
    )

    # Shape checks: the calibrated model lands on the paper's knori
    # row; the iterative strategy is competitive with GEMM.
    assert knori_proj == pytest.approx(7.49, rel=0.10)
    assert t_iter < 3 * t_gemm

    benchmark.pedantic(
        lambda: time_serial_iteration(fr8, k, "iterative", repeats=1),
        rounds=3, iterations=1,
    )
