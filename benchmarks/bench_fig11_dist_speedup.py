"""Figure 11: distributed speedup vs cluster size.

(a) Friendster-32 and (b) the King stand-in, knord / knord- / MPI /
MLlib-EC2, machines = 1..16, each normalized to its own
single-machine time (the paper normalizes to each implementation's
serial performance).

Claims to reproduce: knord scales within a constant factor of linear;
MLlib's centralized driver scales worst.
"""

import pytest

from repro import ConvergenceCriteria, knord
from repro.baselines import framework_kmeans, mpi_lloyd
from repro.data import king_like, load_dataset
from repro.metrics import render_series

from conftest import report

MACHINES = [1, 2, 4, 8, 16]
CRIT = ConvergenceCriteria(max_iters=3)
K = 10
N = 262_144  # compute-heavy enough that collectives don't dominate


def run_all(x, p):
    return {
        "knord": knord(x, K, n_machines=p, seed=4, criteria=CRIT),
        "knord-": knord(x, K, n_machines=p, pruning=None, seed=4,
                        criteria=CRIT),
        "MPI": mpi_lloyd(x, K, n_machines=p, seed=4, criteria=CRIT),
        "MLlib-EC2": framework_kmeans(
            x, K, "mllib", n_machines=max(p, 2), seed=4, criteria=CRIT
        ),
    }


def test_fig11_dist_speedup(benchmark):
    datasets = {
        "Friendster-32": load_dataset("friendster-32", n=N),
        "King": king_like(N, 32),
    }
    all_series = {}
    for dsname, x in datasets.items():
        times: dict[str, dict[int, float]] = {}
        for p in MACHINES:
            for name, res in run_all(x, p).items():
                times.setdefault(name, {})[p] = res.sim_seconds
        speedup = {
            name: {p: ts[1] / ts[p] for p in MACHINES}
            for name, ts in times.items()
        }
        all_series[dsname] = (times, speedup)
        report(
            f"Figure 11: distributed speedup on {dsname}-like "
            f"(n={N}, k={K}; normalized to each implementation's "
            "1-machine time)",
            render_series("machines", speedup)
            + "\n\nabsolute sim s:\n"
            + render_series("machines", times),
        )

    for dsname, (times, speedup) in all_series.items():
        # knord scales within a constant factor of linear.
        assert speedup["knord-"][16] > 6.0, dsname
        assert speedup["knord-"][8] > 4.0, dsname
        # knord is the fastest absolute implementation at every size.
        for p in MACHINES:
            assert (
                times["knord"][p]
                <= min(times[n][p] for n in times)
            ), (dsname, p)
        # MLlib scales worse than knord- (centralized driver).
        assert speedup["knord-"][16] > speedup["MLlib-EC2"][16], dsname

    benchmark.pedantic(
        lambda: knord(
            datasets["Friendster-32"], K, n_machines=8, pruning=None,
            seed=4, criteria=CRIT,
        ),
        rounds=1, iterations=1,
    )
