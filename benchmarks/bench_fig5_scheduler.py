"""Figure 5: partitioned NUMA-aware scheduler vs FIFO and static.

Friendster-8, MTI enabled, k in {10, 50, 100}. The paper's claims: at
k=10 the NUMA-aware scheduler is no worse than the others; as k grows,
pruning skew grows, and the NUMA-aware queue wins -- by more than 40%
at k=100 over static.
"""

import pytest

from repro import ConvergenceCriteria, knori
from repro.metrics import render_series

from conftest import report

KS = [10, 50, 100]
SCHEDULERS = ["numa_aware", "fifo", "static"]
CRIT = ConvergenceCriteria(max_iters=12)


def test_fig5_scheduler(fr8, benchmark):
    times: dict[str, dict[int, float]] = {s: {} for s in SCHEDULERS}
    busy: dict[str, dict[int, float]] = {s: {} for s in SCHEDULERS}
    for k in KS:
        for s in SCHEDULERS:
            res = knori(
                fr8, k, pruning="mti", scheduler=s, seed=4,
                criteria=CRIT, n_threads=48,
            )
            # Skew lives in the pruned iterations. The headline
            # comparison uses the first pruned iteration -- the one
            # whose work volume is closest to paper-scale conditions;
            # late near-empty iterations are all barrier cost at repro
            # scale and would dilute the gap the figure is about.
            first_pruned = res.records[1]
            times[s][k] = first_pruned.sim_ns / 1e9
            pruned = res.records[1:]
            busy[s][k] = (
                sum(r.busy_fraction for r in pruned) / len(pruned)
            )

    report(
        "Figure 5: scheduler comparison with MTI pruning "
        "(Friendster-8-like, T=48; first pruned iteration, sim s)",
        render_series(
            "k", {s: times[s] for s in SCHEDULERS}
        )
        + "\n\nmean thread utilization (1.0 = no skew):\n"
        + render_series("k", {s: busy[s] for s in SCHEDULERS}),
    )

    # Skew grows with k; stealing schedulers beat static at k=100.
    assert times["numa_aware"][100] < times["static"][100]
    assert times["fifo"][100] < times["static"][100]
    # The paper reports >40% improvement at k=100; at repro scale
    # (1000x less work per iteration) we require >=30%.
    gain = 1 - times["numa_aware"][100] / times["static"][100]
    assert gain > 0.30
    # NUMA-aware stays within noise of FIFO while keeping steals
    # node-local (its memory-traffic advantage; see the report).
    assert times["numa_aware"][100] < 1.05 * times["fifo"][100]
    # At k=10 the three are comparable (within 2x).
    k10 = [times[s][10] for s in SCHEDULERS]
    assert max(k10) / min(k10) < 2.0
    # Work stealing repairs utilization.
    assert busy["numa_aware"][100] > busy["static"][100]

    benchmark.pedantic(
        lambda: knori(
            fr8, 100, scheduler="numa_aware", seed=4, criteria=CRIT,
            n_threads=48,
        ),
        rounds=1, iterations=1,
    )
