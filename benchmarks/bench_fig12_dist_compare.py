"""Figure 12: distributed per-iteration time, knord vs MPI vs MLlib.

(a) Friendster-8 / Friendster-32 at k=100, (b) RM_856M / RM_1B at
k=10; a fixed cluster of c4.8xlarge machines.

Claims to reproduce: knord(-) outperforms MLlib-EC2 by >= 5x; knord
beats the NUMA-oblivious pure-MPI routine by 20-50%; MTI keeps paying
in the distributed setting.
"""

import pytest

from repro import ConvergenceCriteria, knord
from repro.baselines import framework_kmeans, mpi_lloyd
from repro.metrics import render_table

from conftest import report

CRIT = ConvergenceCriteria(max_iters=6)
MACHINES = 3


def per_iter(res):
    return res.sim_seconds_per_iter


def test_fig12_dist_compare(fr8, fr32, rm856, rm1b, benchmark):
    cases = [
        ("Friendster-8", fr8, 100),
        ("Friendster-32", fr32, 100),
        ("RM_856M", rm856, 10),
        ("RM_1B", rm1b, 10),
    ]
    rows = []
    checks = {}
    for name, x, k in cases:
        runs = {
            "knord": knord(x, k, n_machines=MACHINES, seed=4,
                           criteria=CRIT),
            "knord-": knord(x, k, n_machines=MACHINES, pruning=None,
                            seed=4, criteria=CRIT),
            "MPI": mpi_lloyd(x, k, n_machines=MACHINES, seed=4,
                             criteria=CRIT),
            "MPI-": mpi_lloyd(x, k, n_machines=MACHINES, pruning=None,
                              seed=4, criteria=CRIT),
            "MLlib-EC2": framework_kmeans(
                x, k, "mllib", n_machines=MACHINES, seed=4,
                criteria=CRIT,
            ),
        }
        checks[name] = runs
        for label, res in runs.items():
            rows.append(
                [name, k, label, f"{per_iter(res) * 1e3:.3f}"]
            )

    report(
        f"Figure 12: distributed per-iteration time "
        f"({MACHINES}x c4.8xlarge; sim ms/iter)",
        render_table(["dataset", "k", "implementation", "ms/iter"],
                     rows),
    )

    for name, runs in checks.items():
        # knord- (no pruning) still beats MLlib by >= 5x.
        assert per_iter(runs["MLlib-EC2"]) > 5 * per_iter(
            runs["knord-"]
        ), name
        # NUMA optimizations beat pure MPI by 20-50% (>= 15% asserted;
        # unpruned comparison isolates the NUMA effect).
        assert per_iter(runs["MPI-"]) > 1.15 * per_iter(
            runs["knord-"]
        ), name
        # MTI still helps in the distributed setting.
        assert per_iter(runs["knord"]) < per_iter(runs["knord-"]), name
        assert per_iter(runs["MPI"]) <= per_iter(runs["MPI-"]), name

    benchmark.pedantic(
        lambda: knord(fr8, 100, n_machines=MACHINES, pruning=None,
                      seed=4, criteria=CRIT),
        rounds=1, iterations=1,
    )
