"""Wall-clock + simulated-time benchmark for the SEM I/O rework (PR 4).

Times the vectorized SEM cache hierarchy against its frozen pre-change
counterparts (:mod:`repro.perf.legacy`) and compares knors' sync vs
async simulated I/O accounting, writing ``BENCH_sem.json`` at the repo
root:

* **page_cache** -- interleaved lookup/admit streams through the
  array-based batch LRU vs the per-page OrderedDict cache (contents,
  tallies and LRU order asserted identical first).
* **row_cache_refresh** -- the vectorized partition admission pass vs
  the per-partition Python loop (admitted sets asserted identical).
* **fetch_rows** -- the full SAFS fetch path (page resolution, batch
  cache probe, request merging, admission) vs the legacy
  list-comprehension path (every IoBatch counter asserted identical).
* **end_to_end** -- one knors run per I/O mode on the standard
  synthetic workload: assignments, centroids, iteration counts and all
  cache hit/miss/request counters asserted bit-identical; async
  simulated wall time must land strictly below sync (the Figure 6-7
  overlap story), with the in-memory knori time for reference.

Usage::

    PYTHONPATH=src python benchmarks/bench_sem.py [--quick]

``--quick`` shrinks problem sizes and repeat counts so CI can smoke-test
the harness in seconds; the committed JSON comes from a full run.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import knori, knors  # noqa: E402
from repro.core import ConvergenceCriteria  # noqa: E402
from repro.perf import before_after, time_callable  # noqa: E402
from repro.perf.legacy import (  # noqa: E402
    LegacyPageCache,
    LegacyRowCache,
    LegacySafs,
)
from repro.sem.pagecache import PageCache  # noqa: E402
from repro.sem.rowcache import RowCache  # noqa: E402
from repro.sem.safs import Safs  # noqa: E402
from repro.simhw.ssd import OCZ_INTREPID_ARRAY  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_sem.json"


def _ba(before_fn, after_fn, repeats):
    """Time both sides and produce the before/after JSON fragment."""
    return before_after(
        time_callable(before_fn, label="before", repeats=repeats),
        time_callable(after_fn, label="after", repeats=repeats),
    )


def make_data(n: int, d: int, k: int, seed: int = 4):
    """Blobby data so MTI actually prunes and iterations do real work."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=8.0, size=(k, d))
    x = centers[rng.integers(k, size=n)] + rng.normal(size=(n, d))
    c0 = x[rng.choice(n, size=k, replace=False)].copy()
    return np.ascontiguousarray(x), c0


# -- page cache ------------------------------------------------------


def _page_streams(n_pages, n_batches, batch, seed):
    """Sorted-unique page batches, like ``pages_of_rows`` produces."""
    rng = np.random.default_rng(seed)
    return [
        np.unique(rng.integers(n_pages, size=batch))
        for _ in range(n_batches)
    ]


def _drive_legacy_cache(cache, streams):
    for pages in streams:
        miss = [p for p in pages.tolist() if not cache.lookup(p)]
        for p in miss:
            cache.admit(p)


def _drive_batch_cache(cache, streams):
    for pages in streams:
        hit = cache.lookup_batch(pages)
        cache.admit_batch(pages[~hit])


def bench_page_cache(n_pages, n_batches, batch, capacity_pages, repeats):
    streams = _page_streams(n_pages, n_batches, batch, seed=11)
    cap = capacity_pages * 4096

    def before():
        cache = LegacyPageCache(cap, 4096)
        _drive_legacy_cache(cache, streams)
        return cache

    def after():
        cache = PageCache(cap, 4096)
        _drive_batch_cache(cache, streams)
        return cache

    cb, ca = before(), after()
    assert (cb.hits, cb.misses, len(cb)) == (ca.hits, ca.misses, len(ca))
    assert cb.pages_lru_order() == ca.pages_lru_order()
    return _ba(before, after, repeats) | {
        "n_pages": n_pages, "batches": n_batches,
        "batch_size": batch, "capacity_pages": capacity_pages,
        "semantics_identical": True,
    }


# -- row cache -------------------------------------------------------


def _refresh_schedule(cache, active_sets):
    """Run each active set through the cache's scheduled refreshes."""
    it = cache.update_interval
    admitted = []
    for active in active_sets:
        admitted.append(cache.refresh(it, active))
        it = cache._next_refresh
    return admitted


def bench_row_cache(n_rows, n_parts, refreshes, active, repeats):
    rng = np.random.default_rng(13)
    # Capacity divisible by partitions: the remainder-distribution fix
    # is a no-op there, so legacy and new admit identical sets.
    cap_rows = (n_rows // (2 * n_parts)) * n_parts
    active_sets = [
        np.unique(rng.integers(n_rows, size=active))
        for _ in range(refreshes)
    ]

    def before():
        cache = LegacyRowCache(cap_rows * 8, 8, n_rows,
                               n_partitions=n_parts)
        return cache, _refresh_schedule(cache, active_sets)

    def after():
        cache = RowCache(cap_rows * 8, 8, n_rows, n_partitions=n_parts)
        return cache, _refresh_schedule(cache, active_sets)

    (cb, ab), (ca, aa) = before(), after()
    assert ab == aa
    assert np.array_equal(cb._cached, ca._cached)
    return _ba(before, after, repeats) | {
        "n_rows": n_rows, "partitions": n_parts,
        "refreshes": refreshes, "active_rows": active,
        "semantics_identical": True,
    }


# -- fetch_rows ------------------------------------------------------


def _batch_digest(b):
    return (
        b.rows_requested, b.bytes_requested, b.pages_needed,
        b.page_cache_hits, b.pages_from_ssd, b.merged_requests,
        b.bytes_read, b.service_ns,
    )


def bench_fetch_rows(n_rows, row_bytes, iters, rows_per_iter,
                     cache_mb, repeats):
    rng = np.random.default_rng(7)
    streams = [
        np.unique(rng.choice(n_rows, size=rows_per_iter, replace=False))
        for _ in range(iters)
    ]

    def run(cls):
        safs = cls(OCZ_INTREPID_ARRAY, page_cache_bytes=cache_mb << 20)
        return [
            _batch_digest(safs.fetch_rows(rows, row_bytes, iteration=i))
            for i, rows in enumerate(streams)
        ]

    def before():
        return run(LegacySafs)

    def after():
        return run(Safs)

    assert before() == after(), "fetch_rows counters diverged"
    return _ba(before, after, repeats) | {
        "n_rows": n_rows, "row_bytes": row_bytes,
        "iterations": iters, "rows_per_iter": rows_per_iter,
        "page_cache_mb": cache_mb,
        "counters_identical": True,
    }


# -- end to end ------------------------------------------------------


def _io_digest(res):
    """Every per-iteration counter that must match across I/O modes."""
    return [
        (r.cache_hits, r.cache_misses, r.io_requests,
         r.bytes_requested, r.bytes_read, r.rows_active)
        for r in res.records
    ]


def bench_end_to_end(n, d, k, max_iters, repeats):
    x, c0 = make_data(n, d, k)
    crit = ConvergenceCriteria(max_iters=max_iters)

    def run_sync():
        return knors(x, k, pruning="mti", init=c0, criteria=crit,
                     io_mode="sync")

    def run_async():
        return knors(x, k, pruning="mti", init=c0, criteria=crit,
                     io_mode="async")

    rs, ra = run_sync(), run_async()
    identical = (
        np.array_equal(rs.assignment, ra.assignment)
        and np.array_equal(rs.centroids, ra.centroids)
        and rs.iterations == ra.iterations
        and _io_digest(rs) == _io_digest(ra)
    )
    assert identical, "sync and async knors runs diverged"
    assert ra.sim_seconds < rs.sim_seconds, (
        f"async sim time {ra.sim_seconds} not strictly below "
        f"sync {rs.sim_seconds}"
    )
    ri = knori(x, k, pruning="mti", init=c0, criteria=crit)

    wall = _ba(run_sync, run_async, repeats)
    return wall | {
        "n": n, "d": d, "k": k, "max_iters": max_iters,
        "outputs_bit_identical": identical,
        "sync_sim_s": rs.sim_seconds,
        "async_sim_s": ra.sim_seconds,
        "in_memory_sim_s": ri.sim_seconds,
        "sim_speedup": rs.sim_seconds / ra.sim_seconds,
        "async_strictly_below_sync": bool(
            ra.sim_seconds < rs.sim_seconds
        ),
    }


# -- driver ----------------------------------------------------------


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small sizes / few repeats (CI smoke test)",
    )
    ap.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output JSON path (default: {OUT_PATH})",
    )
    args = ap.parse_args(argv)

    if args.quick:
        repeats = 2
        pc = dict(n_pages=4_000, n_batches=20, batch=1_500,
                  capacity_pages=1_000)
        rc = dict(n_rows=100_000, n_parts=16, refreshes=4,
                  active=40_000)
        fr = dict(n_rows=80_000, row_bytes=512, iters=4,
                  rows_per_iter=50_000, cache_mb=8)
        e2e = dict(n=8_000, d=16, k=8, max_iters=8)
    else:
        repeats = 5
        pc = dict(n_pages=40_000, n_batches=40, batch=15_000,
                  capacity_pages=12_000)
        rc = dict(n_rows=1_000_000, n_parts=48, refreshes=5,
                  active=400_000)
        fr = dict(n_rows=400_000, row_bytes=512, iters=6,
                  rows_per_iter=250_000, cache_mb=64)
        e2e = dict(n=40_000, d=16, k=16, max_iters=30)

    results = {
        "meta": {
            "quick": args.quick,
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "note": (
                "wall-clock seconds, best-of-N; 'before' is the frozen "
                "pre-rework SEM cache stack (repro.perf.legacy), "
                "'after' is the shipped batch-LRU/vectorized path; "
                "counters asserted identical before timing. End-to-end "
                "also compares simulated seconds across --sync-io / "
                "--async-io (identical numerics, async strictly "
                "faster in simulated time)."
            ),
        },
        "kernels": {
            "page_cache": bench_page_cache(repeats=repeats, **pc),
            "row_cache_refresh": bench_row_cache(repeats=repeats, **rc),
            "fetch_rows": bench_fetch_rows(repeats=repeats, **fr),
        },
        "end_to_end": {
            "knors_sync_vs_async": bench_end_to_end(
                repeats=max(1, repeats - 3), **e2e
            ),
        },
    }

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    for name, r in results["kernels"].items():
        print(f"  {name:24s} {r['speedup']:.2f}x "
              f"({r['before_s']:.4f}s -> {r['after_s']:.4f}s)")
    r = results["end_to_end"]["knors_sync_vs_async"]
    print(f"  {'knors sim (sync/async)':24s} {r['sim_speedup']:.3f}x "
          f"({r['sync_sim_s']:.6f}s -> {r['async_sim_s']:.6f}s, "
          f"in-memory {r['in_memory_sim_s']:.6f}s, "
          f"bit-identical={r['outputs_bit_identical']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
