"""Wall-clock before/after benchmark for the PR 3 kernel rework.

Times the interpreter-side hot paths against their frozen pre-change
counterparts (:mod:`repro.perf.legacy`) and writes the results to
``BENCH_kernels.json`` at the repo root:

* **Kernel layer** -- accumulation (flat-index bincount vs per-dim
  loop), blocked ``nearest_centroid`` (workspace vs fresh temporaries),
  the clause-1 threshold, and a full MTI pipeline (init + iterations).
* **Engine replay** -- the optimized event loop vs the verbatim
  reference loop on an identical task stream.
* **End-to-end** -- one knori run before (legacy kernels + reference
  engine loop, monkeypatched in) and after, asserted bit-identical;
  one knors and one knord run timed on the optimized path.

Usage::

    PYTHONPATH=src python benchmarks/bench_wallclock.py [--quick]

``--quick`` shrinks problem sizes and repeat counts so CI can smoke-test
the harness in seconds; the committed JSON comes from a full run.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import knord, knori, knors  # noqa: E402
from repro.core import ConvergenceCriteria  # noqa: E402
from repro.core.centroids import AccumScratch, add_block  # noqa: E402
from repro.core.distance import nearest_centroid  # noqa: E402
from repro.core.mti import mti_init, mti_iteration  # noqa: E402
from repro.core.workspace import DistanceWorkspace  # noqa: E402
from repro.perf import before_after, time_callable  # noqa: E402
from repro.perf import legacy  # noqa: E402
from repro.sched import NumaAwareScheduler  # noqa: E402
from repro.simhw import (  # noqa: E402
    BindPolicy,
    FOUR_SOCKET_XEON,
    IterationEngine,
    TaskWork,
)
from repro.simhw.engine import IterationTrace  # noqa: E402
from repro.simhw.thread import spawn_threads  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_kernels.json"


def _ba(before_fn, after_fn, repeats):
    """Time both sides and produce the before/after JSON fragment."""
    return before_after(
        time_callable(before_fn, label="before", repeats=repeats),
        time_callable(after_fn, label="after", repeats=repeats),
    )


def make_data(n: int, d: int, k: int, seed: int = 0):
    """Blobby data so MTI actually prunes and iterations do real work."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=8.0, size=(k, d))
    x = centers[rng.integers(k, size=n)] + rng.normal(size=(n, d))
    c0 = x[rng.choice(n, size=k, replace=False)].copy()
    return np.ascontiguousarray(x), c0


# -- kernel microbenchmarks -----------------------------------------


def bench_accumulation(n, d, k, repeats):
    x, _ = make_data(n, d, k)
    rng = np.random.default_rng(1)
    assign = rng.integers(k, size=n).astype(np.int32)
    scratch = AccumScratch()

    def before():
        sums = np.zeros((k, d))
        counts = np.zeros(k, dtype=np.int64)
        legacy.add_block(sums, counts, x, assign)
        return sums, counts

    def after():
        sums = np.zeros((k, d))
        counts = np.zeros(k, dtype=np.int64)
        add_block(sums, counts, x, assign, scratch=scratch)
        return sums, counts

    sb, cb = before()
    sa, ca = after()
    assert np.array_equal(sb, sa) and np.array_equal(cb, ca)
    return _ba(before, after, repeats) | {"n": n, "d": d, "k": k}


def bench_nearest_centroid(n, d, k, repeats):
    x, c = make_data(n, d, k)
    ws = DistanceWorkspace(k, d, block_rows=legacy.BLOCK_ROWS)

    def before():
        return legacy.nearest_centroid(x, c)

    def after():
        return nearest_centroid(x, c, workspace=ws)

    ab, mb = before()
    aa, ma = after()
    assert np.array_equal(ab, aa) and np.array_equal(mb, ma)
    return _ba(before, after, repeats) | {
        "n": n, "d": d, "k": k
    }


def bench_half_min(k, d, calls, repeats):
    _, c = make_data(4 * k, d, k, seed=2)
    cc = legacy.pairwise_centroid_distances(c)
    ws = DistanceWorkspace(k, d)
    ws.ensure(c)

    def before():
        for _ in range(calls):
            legacy.half_min_inter_centroid(cc)

    def after():
        for _ in range(calls):
            ws.half_min()

    assert np.array_equal(
        legacy.half_min_inter_centroid(cc), ws.half_min()
    )
    return _ba(before, after, repeats) | {
        "k": k, "d": d, "calls_per_repeat": calls
    }


def bench_mti_pipeline(n, d, k, iters, repeats):
    x, c0 = make_data(n, d, k, seed=3)

    def run_legacy():
        centroids = c0.copy()
        state, res = legacy.mti_init(x, centroids)
        for _ in range(iters):
            prev, centroids = centroids, res.new_centroids
            res = legacy.mti_iteration(x, centroids, prev, state)
        return state, res

    def run_new():
        ws = DistanceWorkspace(k, d)
        centroids = c0.copy()
        state, res = mti_init(x, centroids, workspace=ws)
        for _ in range(iters):
            prev, centroids = centroids, res.new_centroids
            res = mti_iteration(x, centroids, prev, state, workspace=ws)
        return state, res

    st_b, res_b = run_legacy()
    st_a, res_a = run_new()
    assert np.array_equal(st_b.assignment, st_a.assignment)
    assert np.array_equal(res_b.new_centroids, res_a.new_centroids)
    assert res_b.clause2_pruned == res_a.clause2_pruned
    return _ba(run_legacy, run_new, repeats) | {
        "n": n, "d": d, "k": k, "iterations": 1 + iters
    }


# -- engine replay ---------------------------------------------------


def bench_engine_replay(n_tasks, n_threads, repeats):
    cm = FOUR_SOCKET_XEON
    tasks = [
        TaskWork(
            task_id=i,
            n_rows=8192,
            n_dist=8192 * (1 + i % 10),
            data_bytes=8192 * 64,
            state_bytes=8192 * 16,
            home_node=i % cm.topology.n_nodes,
        )
        for i in range(n_tasks)
    ]
    engine = IterationEngine(cm, bind_policy=BindPolicy.NUMA_BIND)

    def before() -> IterationTrace:
        threads = spawn_threads(cm.topology, n_threads,
                                BindPolicy.NUMA_BIND)
        return engine.run_reference(
            NumaAwareScheduler(), tasks, threads, d=8, k=10
        )

    def after() -> IterationTrace:
        threads = spawn_threads(cm.topology, n_threads,
                                BindPolicy.NUMA_BIND)
        return engine.run(
            NumaAwareScheduler(), tasks, threads, d=8, k=10
        )

    t_b, t_a = before(), after()
    assert t_b.thread_clocks_ns == t_a.thread_clocks_ns
    assert t_b.total_ns == t_a.total_ns
    return _ba(before, after, repeats) | {
        "n_tasks": n_tasks, "n_threads": n_threads
    }


# -- end-to-end ------------------------------------------------------


class _LegacyKernels:
    """Context manager swapping the drivers onto the pre-change path.

    ``repro.drivers.common`` binds the kernel functions at import, so
    rebinding its module globals (plus the engine's ``run``) replays a
    run exactly as it executed before this PR.
    """

    def __enter__(self):
        import repro.drivers.common as common

        self._common = common
        self._saved = (common.mti_init, common.mti_iteration)
        self._saved_run = IterationEngine.run

        def legacy_mti_init(x, centroids, *, workspace=None):
            return legacy.mti_init(x, centroids)

        def legacy_mti_iteration(x, c, prev, state, *, workspace=None):
            return legacy.mti_iteration(x, c, prev, state)

        common.mti_init = legacy_mti_init
        common.mti_iteration = legacy_mti_iteration
        IterationEngine.run = IterationEngine.run_reference
        return self

    def __exit__(self, *exc):
        self._common.mti_init, self._common.mti_iteration = self._saved
        IterationEngine.run = self._saved_run
        return False


def _run_digest(res):
    """Everything that must stay bit-identical across the rework."""
    return {
        "iterations": res.iterations,
        "inertia": res.inertia,
        "sim_seconds": res.sim_seconds,
        "assignment_sha": int(np.int64(res.assignment).sum()),
        "centroids_sum": float(res.centroids.sum()),
        "clause1_rows": sum(r.clause1_rows for r in res.records),
        "clause2_pruned": sum(r.clause2_pruned for r in res.records),
        "clause3_pruned": sum(r.clause3_pruned for r in res.records),
        "dist_computations": res.total_dist_computations,
    }


def _identical(a, b) -> bool:
    return (
        np.array_equal(a.assignment, b.assignment)
        and np.array_equal(a.centroids, b.centroids)
        and a.inertia == b.inertia
        and a.iterations == b.iterations
        and [r.sim_ns for r in a.records] == [r.sim_ns for r in b.records]
        and [r.clause1_rows for r in a.records]
        == [r.clause1_rows for r in b.records]
        and [r.clause2_pruned for r in a.records]
        == [r.clause2_pruned for r in b.records]
        and [r.clause3_pruned for r in a.records]
        == [r.clause3_pruned for r in b.records]
    )


def bench_end_to_end(n, d, k, max_iters, repeats):
    x, c0 = make_data(n, d, k, seed=4)
    crit = ConvergenceCriteria(max_iters=max_iters)

    def run_knori():
        return knori(x, k, pruning="mti", init=c0, criteria=crit)

    def run_knori_before():
        with _LegacyKernels():
            return knori(x, k, pruning="mti", init=c0, criteria=crit)

    res_after = run_knori()
    res_before = run_knori_before()
    identical = _identical(res_before, res_after)
    assert identical, "legacy and optimized knori runs diverged"

    knori_times = _ba(run_knori_before, run_knori, repeats)

    knors_t = time_callable(
        lambda: knors(x, k, pruning="mti", init=c0, criteria=crit),
        label="knors", repeats=max(1, repeats - 1),
    )
    knord_t = time_callable(
        lambda: knord(x, k, n_machines=2, pruning="mti", init=c0,
                      criteria=crit),
        label="knord", repeats=max(1, repeats - 1),
    )
    return {
        "knori": knori_times | {
            "n": n, "d": d, "k": k, "max_iters": max_iters,
            "outputs_bit_identical": identical,
            "digest": _run_digest(res_after),
        },
        "knors": knors_t.as_dict(),
        "knord": knord_t.as_dict(),
    }


# -- driver ----------------------------------------------------------


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small sizes / few repeats (CI smoke test)",
    )
    ap.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output JSON path (default: {OUT_PATH})",
    )
    args = ap.parse_args(argv)

    if args.quick:
        repeats = 2
        acc = dict(n=20_000, d=16, k=32)
        nc = dict(n=20_000, d=16, k=32)
        hm = dict(k=64, d=16, calls=50)
        mti = dict(n=10_000, d=8, k=16, iters=3)
        eng = dict(n_tasks=64, n_threads=16)
        e2e = dict(n=6_000, d=8, k=8, max_iters=6)
    else:
        repeats = 5
        acc = dict(n=100_000, d=32, k=64)
        nc = dict(n=100_000, d=32, k=64)
        hm = dict(k=64, d=32, calls=200)
        mti = dict(n=60_000, d=16, k=32, iters=5)
        eng = dict(n_tasks=512, n_threads=48)
        e2e = dict(n=40_000, d=16, k=16, max_iters=10)

    results = {
        "meta": {
            "quick": args.quick,
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "note": (
                "wall-clock seconds, best-of-N; 'before' is the frozen "
                "pre-rework kernel (repro.perf.legacy) or the engine's "
                "reference loop, 'after' is the shipped code; outputs "
                "asserted bit-identical before timing"
            ),
        },
        "kernels": {
            "accumulation": bench_accumulation(repeats=repeats, **acc),
            "nearest_centroid": bench_nearest_centroid(
                repeats=repeats, **nc
            ),
            "half_min_inter_centroid": bench_half_min(
                repeats=repeats, **hm
            ),
            "mti_pipeline": bench_mti_pipeline(repeats=repeats, **mti),
        },
        "engine": {
            "replay": bench_engine_replay(repeats=repeats, **eng),
        },
        "end_to_end": bench_end_to_end(repeats=repeats, **e2e),
    }

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    for name, r in results["kernels"].items():
        print(f"  {name:28s} {r['speedup']:.2f}x "
              f"({r['before_s']:.4f}s -> {r['after_s']:.4f}s)")
    r = results["engine"]["replay"]
    print(f"  {'engine replay':28s} {r['speedup']:.2f}x "
          f"({r['before_s']:.4f}s -> {r['after_s']:.4f}s)")
    r = results["end_to_end"]["knori"]
    print(f"  {'knori end-to-end':28s} {r['speedup']:.2f}x "
          f"({r['before_s']:.4f}s -> {r['after_s']:.4f}s, "
          f"bit-identical={r['outputs_bit_identical']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
