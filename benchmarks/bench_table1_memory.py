"""Table 1: asymptotic memory complexity of knor routines.

Prints the analytic byte counts for every routine at the paper's
Friendster-32 parameters alongside the *measured* component breakdown
of actual runs at reproduction scale, verifying the two agree.
"""

import pytest

from repro import ConvergenceCriteria, knori, knors
from repro.metrics import render_table, table1_bytes
from repro.metrics.memory import elkan_ti_bytes

from conftest import report

CRIT = ConvergenceCriteria(max_iters=5)


def test_table1_memory(fr32, fr32_file, benchmark):
    n, d = fr32.shape
    k, t = 10, 48

    runs = {
        "knori": knori(fr32, k, seed=0, criteria=CRIT),
        "knori-": knori(fr32, k, pruning=None, seed=0, criteria=CRIT),
        "elkan_ti": knori(fr32, k, pruning="elkan", seed=0, criteria=CRIT),
        "knors": knors(fr32_file, k, seed=0, criteria=CRIT),
        "knors--": knors(
            fr32_file, k, pruning=None, row_cache_bytes=0, seed=0,
            criteria=CRIT,
        ),
    }

    rows = []
    for name, res in runs.items():
        kwargs = {}
        if name == "knors":
            kwargs["row_cache_bytes"] = res.params["row_cache_bytes"]
        predicted = table1_bytes(name, n, d, k, t, **kwargs)
        measured = res.peak_memory_bytes
        # Measured excludes the page cache (an I/O-layer budget, not
        # algorithm state in Table 1).
        measured -= res.memory_breakdown.get("page_cache", 0)
        rows.append(
            [
                name,
                f"{predicted / 1e6:.2f} MB",
                f"{measured / 1e6:.2f} MB",
                f"{measured / predicted:.2f}",
            ]
        )
        assert 0.5 < measured / predicted < 2.0

    # Paper-scale projection (n = 66M) for the same routines.
    paper_rows = []
    for name in ("knori-", "knori", "elkan_ti", "knors--", "knors"):
        b = table1_bytes(name, 66_000_000, 32, 100, 48)
        paper_rows.append([name, f"{b / 1e9:.1f} GB"])

    report(
        "Table 1: memory complexity (measured vs predicted at repro "
        "scale; projection at paper scale n=66M, d=32, k=100)",
        render_table(
            ["routine", "predicted", "measured", "ratio"], rows
        )
        + "\n\n"
        + render_table(["routine", "paper-scale bytes"], paper_rows)
        + "\nNote: elkan_ti at n=1B, k=100 would need "
        f"{elkan_ti_bytes(10**9, 32, 100, 48) / 1e12:.1f} TB -- the "
        "scalability cliff MTI avoids.",
    )

    # The MTI increment must be small relative to the data (Fig 8c).
    inc = (
        runs["knori"].peak_memory_bytes
        - runs["knori-"].peak_memory_bytes
    )
    assert inc / (n * d * 8) < 0.1

    benchmark.pedantic(
        lambda: knori(fr32, k, seed=0, criteria=CRIT),
        rounds=1, iterations=1,
    )
