"""Shared fixtures and reporting helpers for the benchmark harness.

Every bench regenerates one of the paper's tables or figures at
reproduction scale, prints it (visible with ``pytest -s`` and in the
captured output), and appends it to ``results/benchmark_report.txt`` so
a full ``pytest benchmarks/ --benchmark-only`` run leaves a complete
report on disk. EXPERIMENTS.md records paper-vs-measured per figure.

Scale note: datasets run at ~1/1000 of the paper's n (Table 2 registry
defaults). Simulated times are labelled sim; Table 3 rows are real
wall-clock.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.data import friendster_like, load_dataset

RESULTS = Path(__file__).resolve().parent.parent / "results"


def report(title: str, body: str) -> None:
    """Print a figure/table and append it to the on-disk report."""
    text = f"\n{'#' * 70}\n# {title}\n{'#' * 70}\n{body}\n"
    print(text)
    RESULTS.mkdir(exist_ok=True)
    with open(RESULTS / "benchmark_report.txt", "a") as fh:
        fh.write(text)


@pytest.fixture(scope="session")
def fr8():
    """Friendster-8 at reproduction scale (66M -> 64K rows)."""
    return friendster_like(65536, 8)


@pytest.fixture(scope="session")
def fr32():
    """Friendster-32 at reproduction scale."""
    return friendster_like(65536, 32)


@pytest.fixture(scope="session")
def fr8_small():
    """Smaller Friendster-8 cut for sweep-heavy benches."""
    return friendster_like(16384, 8)


@pytest.fixture(scope="session")
def rm856():
    return load_dataset("rm-856m", n=131072)


@pytest.fixture(scope="session")
def rm1b():
    return load_dataset("rm-1b", n=131072)


@pytest.fixture(scope="session")
def ru2b():
    return load_dataset("ru-2b", n=131072)


@pytest.fixture(scope="session")
def fr32_file(tmp_path_factory, fr32):
    from repro.data import write_matrix

    path = tmp_path_factory.mktemp("data") / "fr32.knor"
    write_matrix(path, fr32)
    return path


@pytest.fixture(scope="session")
def fr8_file(tmp_path_factory, fr8):
    from repro.data import write_matrix

    path = tmp_path_factory.mktemp("data") / "fr8.knor"
    write_matrix(path, fr8)
    return path
