"""Interpreter-peak smoke gate for the memory plane.

Compares the ``tracemalloc.peak_bytes`` of a fresh ``bench_mem.py``
run against the committed baseline of the same mode and fails when the
peak grew more than the tolerance (default 20%). This is the guard
against silent allocation creep in the knori hot path: a change that
starts holding an extra copy of the data, or leaks workspace buffers
across iterations, moves this number immediately.

Shrinking peaks are fine (and should be re-baselined to lock them in).

Usage::

    python benchmarks/check_mem_peak.py BASELINE FRESH [--tolerance 0.2]

Exit code 0 when the peak holds, 1 on growth past tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", type=Path)
    ap.add_argument("fresh", type=Path)
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="allowed fractional growth (default: 0.2)")
    args = ap.parse_args(argv)

    base = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())
    try:
        b = int(base["tracemalloc"]["peak_bytes"])
        f = int(fresh["tracemalloc"]["peak_bytes"])
    except KeyError as exc:
        print(f"missing tracemalloc.peak_bytes: {exc}", file=sys.stderr)
        return 1
    if base.get("meta", {}).get("quick") != fresh.get("meta", {}).get(
        "quick"
    ):
        print("baseline and fresh runs are different modes "
              "(quick vs full); peaks are not comparable",
              file=sys.stderr)
        return 1

    growth = (f - b) / b
    status = "ok" if growth <= args.tolerance else "REGRESSION"
    print(f"interpreter peak: baseline {b / 1e6:.2f} MB, fresh "
          f"{f / 1e6:.2f} MB ({growth:+.1%}, tolerance "
          f"+{args.tolerance:.0%}) {status}")
    return 0 if growth <= args.tolerance else 1


if __name__ == "__main__":
    raise SystemExit(main())
