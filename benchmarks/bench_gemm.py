"""Kernel-strategy and allreduce-schedule benchmark.

Two halves, written to ``BENCH_gemm.json`` at the repo root:

* **Kernels** -- wall-clock ``nearest_centroid`` with
  ``kernel="blocked"`` (the bit-exact reference) vs ``kernel="gemm"``
  (norm-caching GEMM expansion, winner-only clamp+sqrt) at
  k in {10, 64, 256}, each through a workspace exactly as the drivers
  deploy them. Assignments are asserted identical and the squared
  distances checked against the pinned :data:`GEMM_ULP_BOUND` before
  any timing.
* **Allreduce** -- the tree-vs-rect schedule charge from the network
  model. These are *simulated* nanoseconds (deterministic, immune to
  runner noise): the per-payload ratio sweep locates the crossover
  where the rectangular schedule's fewer full-payload rounds stop
  paying for themselves against the ring's pipelined chunks.

Usage::

    PYTHONPATH=src python benchmarks/bench_gemm.py [--quick]

``--quick`` shrinks sizes/repeats for the CI smoke job; the committed
JSON comes from a full run.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.distance import (  # noqa: E402
    GEMM_ULP_BOUND,
    nearest_centroid,
    row_norms,
)
from repro.core.workspace import DistanceWorkspace  # noqa: E402
from repro.dist import SimComm, TEN_GBE, rect_grid  # noqa: E402
from repro.perf import before_after, time_callable  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_gemm.json"


def _ba(before_fn, after_fn, repeats):
    """Time both sides and produce the before/after JSON fragment."""
    return before_after(
        time_callable(before_fn, label="before", repeats=repeats),
        time_callable(after_fn, label="after", repeats=repeats),
    )


def make_data(n: int, d: int, k: int, seed: int = 0):
    """Blobby data with real cluster structure."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=8.0, size=(k, d))
    x = centers[rng.integers(k, size=n)] + rng.normal(size=(n, d))
    c = x[rng.choice(n, size=k, replace=False)].copy()
    return np.ascontiguousarray(x), c


# -- kernel strategies ------------------------------------------------


def bench_kernel(n, d, k, repeats):
    x, c = make_data(n, d, k, seed=k)
    ws_blocked = DistanceWorkspace(k, d, kernel="blocked")
    ws_gemm = DistanceWorkspace(k, d, kernel="gemm")

    def before():
        return nearest_centroid(x, c, workspace=ws_blocked)

    def after():
        return nearest_centroid(x, c, workspace=ws_gemm)

    ab, db = before()
    ag, dg = after()
    assert np.array_equal(ab, ag), "strategies disagreed on assignments"
    x_sq = row_norms(x)
    c_sq = row_norms(c)
    tol = GEMM_ULP_BOUND * np.spacing(x_sq + c_sq[ab]) + 2 * np.spacing(
        db**2
    )
    assert np.all(np.abs(db**2 - dg**2) <= tol), "ULP bound violated"
    return _ba(before, after, repeats) | {"n": n, "d": d, "k": k}


# -- allreduce schedules ----------------------------------------------


def bench_allreduce(p, k, d, sweep_exponents):
    """Deterministic tree-vs-rect charges from the network model."""
    comm = SimComm(p, TEN_GBE)
    r, c = rect_grid(p)
    rounds = SimComm._rect_rounds(r, c)

    payload = 8 * k * d  # one float64 centroid accumulator
    tree_ns = comm.allreduce_ns(payload, mode="tree")
    rect_ns = comm.allreduce_ns(payload, mode="rect")

    sweep = []
    crossover = None
    for e in sweep_exponents:
        nbytes = 2**e
        t = comm.allreduce_ns(nbytes, mode="tree")
        rc = comm.allreduce_ns(nbytes, mode="rect")
        if crossover is None and rc >= t:
            crossover = nbytes
        sweep.append({
            "payload_bytes": nbytes,
            "tree_ns": t,
            "rect_ns": rc,
            "rect_over_tree": rc / t,
        })
    return {
        "centroid_payload": {
            "p": p, "k": k, "d": d,
            "payload_bytes": payload,
            "grid": [r, c],
            "rect_rounds": rounds,
            "tree_ns": tree_ns,
            "rect_ns": rect_ns,
            # Deterministic sim-time ratio; gated like a speedup.
            "speedup": tree_ns / rect_ns,
        },
        "crossover": {
            "p": p,
            "first_payload_where_tree_wins": crossover,
            "sweep": sweep,
        },
    }


# -- driver ----------------------------------------------------------


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small sizes / few repeats (CI smoke test)",
    )
    ap.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output JSON path (default: {OUT_PATH})",
    )
    args = ap.parse_args(argv)

    if args.quick:
        repeats = 2
        sizes = [dict(n=20_000, d=16, k=10),
                 dict(n=20_000, d=16, k=64),
                 dict(n=8_000, d=16, k=256)]
    else:
        repeats = 5
        sizes = [dict(n=200_000, d=32, k=10),
                 dict(n=200_000, d=32, k=64),
                 dict(n=100_000, d=32, k=256)]

    results = {
        "meta": {
            "quick": args.quick,
            "repeats": repeats,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "note": (
                "kernels: wall-clock seconds, best-of-N; 'before' is "
                "kernel='blocked' (bit-exact reference), 'after' is "
                "kernel='gemm'; assignments asserted identical and "
                "distances ULP-checked before timing. allreduce: "
                "deterministic simulated ns from the 10 GbE network "
                "model, no wall clock involved."
            ),
        },
        "kernels": {
            f"nearest_centroid_k{s['k']}": bench_kernel(
                repeats=repeats, **s
            )
            for s in sizes
        },
        "allreduce": bench_allreduce(
            p=16, k=64, d=32, sweep_exponents=range(6, 28)
        ),
    }

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    for name, r in results["kernels"].items():
        print(f"  {name:24s} {r['speedup']:.2f}x "
              f"({r['before_s']:.4f}s -> {r['after_s']:.4f}s)")
    ar = results["allreduce"]["centroid_payload"]
    print(f"  {'allreduce k=64 d=32':24s} {ar['speedup']:.2f}x "
          f"(tree {ar['tree_ns']:.0f}ns -> rect {ar['rect_ns']:.0f}ns)")
    cx = results["allreduce"]["crossover"]
    print(f"  tree reclaims the win at "
          f"{cx['first_payload_where_tree_wins']} bytes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
