"""Figure 6: the effect of the row cache and MTI on I/O.

Friendster-32, k=100, row cache = data/8, page cache = data/16.

Scale substitutions (documented in EXPERIMENTS.md): the paper runs
k=10 on 66M rows with a 512 MB (1/32) row cache and I_cache=5 over a
long convergence horizon; at 65K rows our run converges in ~13
iterations and the persistently-active set is a larger *fraction* of
n, so the cache budget (1/8) and refresh point (I_cache=8) are scaled
to keep the same mechanism engaged: refresh after activation
stabilizes, capacity covering the persistent active set.

(a) per-iteration data requested vs data read, RC on vs off (MTI on);
(b) total requested vs read for knors--, knors- (MTI only), knors.

Claims reproduced: reads exceed requests under pruning (fragmentation);
after the cache warms, per-iteration reads drop by an order of
magnitude; without pruning, all data are requested and read every
iteration.
"""

import pytest

from repro import ConvergenceCriteria, knors
from repro.metrics import render_series, render_table

from conftest import report

CRIT = ConvergenceCriteria(max_iters=20)
K = 100
I_CACHE = 8


def run(fr32_file, data_bytes, *, pruning, rc):
    return knors(
        fr32_file,
        K,
        pruning=pruning,
        row_cache_bytes=data_bytes // 8 if rc else 0,
        page_cache_bytes=data_bytes // 16,
        cache_update_interval=I_CACHE,
        seed=4,
        criteria=CRIT,
    )


def test_fig6_row_cache_io(fr32, fr32_file, benchmark):
    data_bytes = fr32.size * 8

    with_rc = run(fr32_file, data_bytes, pruning="mti", rc=True)
    no_rc = run(fr32_file, data_bytes, pruning="mti", rc=False)
    knors_mm = run(fr32_file, data_bytes, pruning=None, rc=False)

    series = {
        "req RC-on (MB)": {
            r.iteration: r.bytes_requested / 1e6 for r in with_rc.records
        },
        "read RC-on (MB)": {
            r.iteration: r.bytes_read / 1e6 for r in with_rc.records
        },
        "req RC-off (MB)": {
            r.iteration: r.bytes_requested / 1e6 for r in no_rc.records
        },
        "read RC-off (MB)": {
            r.iteration: r.bytes_read / 1e6 for r in no_rc.records
        },
    }
    totals = [
        [
            name,
            f"{res.total_bytes_requested / 1e6:.1f}",
            f"{res.total_bytes_read / 1e6:.1f}",
        ]
        for name, res in [
            ("knors-- (no MTI, no RC)", knors_mm),
            ("knors[MTI, no RC]", no_rc),
            ("knors   (MTI + RC)", with_rc),
        ]
    ]
    report(
        "Figure 6: row cache and MTI effect on I/O "
        f"(Friendster-32-like, k={K}, RC=data/8, PC=data/16, "
        f"I_cache={I_CACHE})",
        "(a) per-iteration requested vs read:\n"
        + render_series("iter", series)
        + "\n\n(b) totals:\n"
        + render_table(["variant", "req MB", "read MB"], totals),
    )

    # Without pruning, all data are requested every iteration.
    assert (
        knors_mm.total_bytes_requested
        == knors_mm.iterations * data_bytes
    )
    # Pruning requests less than the full pass...
    assert no_rc.total_bytes_requested < knors_mm.total_bytes_requested
    # ...but fragmentation makes reads exceed requests (the 6a gap).
    assert no_rc.total_bytes_read > no_rc.total_bytes_requested
    # Once the row cache warms, per-iteration reads collapse by an
    # order of magnitude vs the RC-off run at the same iteration.
    warm_iter = min(I_CACHE + 2, with_rc.iterations - 1,
                    no_rc.iterations - 1)
    warm_rc = with_rc.records[warm_iter].bytes_read
    warm_no = no_rc.records[warm_iter].bytes_read
    assert warm_rc < warm_no / 5
    # And run totals shrink too.
    assert with_rc.total_bytes_read < no_rc.total_bytes_read

    benchmark.pedantic(
        lambda: run(fr32_file, data_bytes, pruning="mti", rc=True),
        rounds=1, iterations=1,
    )
