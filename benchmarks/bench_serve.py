"""Serving-plane benchmark: latency percentiles under user traffic.

The north star's "heavy traffic from millions of users" made
measurable: fit a streaming mini-batch model, then drive >= 1e5 seeded
open-loop arrivals through the serve path and report p50/p99/p999
query latency in *simulated* time, writing ``BENCH_serve.json`` at the
repo root:

* **latency.query_only** -- the headline artifact: tail latency of a
  pure query stream at the default cache hierarchy, with the full
  counter rollup (row-cache hits, SSD pages, bytes). Asserted
  byte-identical across two fresh serve runs before being recorded --
  percentiles are a pure function of the arrival seed.
* **latency.mixed_ingest** -- the same traffic with 20% streaming
  ingests folded into the centroids mid-serve (informational).
* **caching.row_cache_on_vs_off** -- gated ``speedup``: total
  simulated service time (I/O + compute) with the RowCache/PageCache
  hierarchy disabled over the default hierarchy. The serving-cache
  claim, wall-clock-noise-free.
* **batching.batched_vs_solo** -- gated ``speedup``: per-arrival
  dispatch (max_batch=1, no window) over coalesced dispatch -- what
  sharing one DistanceWorkspace pass across concurrent queries buys.

All ratios are deterministic sim-time ratios, so
``check_bench_regression.py`` gates them without wall-clock noise.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime import run_mm_inmemory  # noqa: E402
from repro.serve import MiniBatchMM, ServePlane  # noqa: E402
from repro.simhw import ArrivalProcess  # noqa: E402

OUT_PATH = REPO_ROOT / "BENCH_serve.json"
SEED = 3
ARRIVAL_SEED = 17


def make_data(n: int, d: int, k: int, seed: int = 4):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=6.0, size=(k, d))
    x = centers[rng.integers(k, size=n)] + rng.normal(size=(n, d))
    return np.ascontiguousarray(x)


def fit_model(x, k, steps):
    algo = MiniBatchMM(
        x, k, batch_size=1024, n_steps=steps, seed=SEED
    )
    fit = run_mm_inmemory(algo)
    return fit, algo


def serve_once(x, centroids, proc, **plane_kw):
    return ServePlane(x, centroids, **plane_kw).serve(proc)


def entry(res):
    """One scenario's JSON entry from a ServeResult."""
    out = res.to_dict()
    out["sim_service_ns"] = res.io_service_ns + res.compute_ns
    return out


def bench_latency(x, centroids, counts, n_arrivals, rate_qps):
    proc = ArrivalProcess(
        n_arrivals=n_arrivals, rate_qps=rate_qps,
        seed=ARRIVAL_SEED, skew=3.0,
    )
    r1 = serve_once(x, centroids, proc)
    r2 = serve_once(x, centroids, proc)
    assert r1.to_dict() == r2.to_dict(), (
        "serve latency rollup not deterministic"
    )
    assert np.array_equal(r1.latency_ns, r2.latency_ns)

    mixed = serve_once(
        x, centroids,
        ArrivalProcess(
            n_arrivals=n_arrivals, rate_qps=rate_qps,
            seed=ARRIVAL_SEED, skew=3.0, ingest_fraction=0.2,
        ),
        counts=counts.copy(),
    )
    assert mixed.n_ingested > 0
    return {"query_only": entry(r1), "mixed_ingest": entry(mixed)}


def bench_caching(x, centroids, n_arrivals, rate_qps):
    """Gated: the cache hierarchy as a serving cache."""
    proc = ArrivalProcess(
        n_arrivals=n_arrivals, rate_qps=rate_qps,
        seed=ARRIVAL_SEED, skew=5.0,
    )
    warm = serve_once(x, centroids, proc)
    cold = serve_once(
        x, centroids, proc, row_cache_bytes=0, page_cache_bytes=0
    )
    assert np.array_equal(warm.assignments, cold.assignments), (
        "caches changed answers"
    )
    assert warm.row_cache_hits > 0 and cold.row_cache_hits == 0
    warm_ns = warm.io_service_ns + warm.compute_ns
    cold_ns = cold.io_service_ns + cold.compute_ns
    return {
        "row_cache_on_vs_off": {
            "n_arrivals": n_arrivals,
            "row_cache_hits": warm.row_cache_hits,
            "cold_pages_from_ssd": cold.pages_from_ssd,
            "warm_sim_service_ns": warm_ns,
            "cold_sim_service_ns": cold_ns,
            "answers_identical": True,
            "speedup": cold_ns / warm_ns,
        }
    }


def bench_batching(x, centroids, n_arrivals, rate_qps):
    """Gated: coalescing concurrent queries through one workspace."""
    proc = ArrivalProcess(
        n_arrivals=n_arrivals, rate_qps=rate_qps,
        seed=ARRIVAL_SEED, skew=3.0,
    )
    batched = serve_once(x, centroids, proc)
    solo = serve_once(
        x, centroids, proc, max_batch=1, batch_window_ns=0.0
    )
    assert np.array_equal(batched.assignments, solo.assignments), (
        "batching changed answers"
    )
    batched_ns = batched.io_service_ns + batched.compute_ns
    solo_ns = solo.io_service_ns + solo.compute_ns
    return {
        "batched_vs_solo": {
            "n_arrivals": n_arrivals,
            "batched_batches": batched.n_batches,
            "solo_batches": solo.n_batches,
            "batched_sim_service_ns": batched_ns,
            "solo_sim_service_ns": solo_ns,
            "answers_identical": True,
            "speedup": solo_ns / batched_ns,
        }
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--quick", action="store_true",
        help="small sizes (CI smoke test)",
    )
    ap.add_argument(
        "--out", type=Path, default=OUT_PATH,
        help=f"output JSON path (default: {OUT_PATH})",
    )
    args = ap.parse_args(argv)

    if args.quick:
        n, d, k, steps = 4_000, 8, 8, 20
        n_arrivals, side = 20_000, 6_000
        rate_qps = 200_000.0
    else:
        n, d, k, steps = 20_000, 16, 12, 60
        n_arrivals, side = 100_000, 20_000
        rate_qps = 200_000.0

    x = make_data(n, d, k)
    fit, algo = fit_model(x, k, steps)

    results = {
        "meta": {
            "quick": args.quick,
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "n": n, "d": d, "k": k,
            "arrival_seed": ARRIVAL_SEED,
            "note": (
                "simulated-time latency percentiles for seeded "
                "open-loop arrivals through repro.serve; rollups "
                "asserted byte-identical across two fresh runs "
                "before recording. 'speedup' entries are "
                "deterministic sim-service-time ratios (caches off "
                "over on; per-arrival dispatch over coalesced), so "
                "the regression gate is wall-clock-noise-free."
            ),
        },
        "latency": bench_latency(
            x, fit.centroids, algo.counts, n_arrivals, rate_qps
        ),
        "caching": bench_caching(
            x, fit.centroids, side, rate_qps
        ),
        "batching": bench_batching(
            x, fit.centroids, side, rate_qps
        ),
    }

    args.out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {args.out}")
    q = results["latency"]["query_only"]
    lat = q["latency"]
    print(
        f"  query-only      {q['n_queries']} queries in "
        f"{q['n_batches']} batches: p50={lat['p50'] / 1e3:.1f}us "
        f"p99={lat['p99'] / 1e3:.1f}us p999={lat['p999'] / 1e3:.1f}us"
    )
    m = results["latency"]["mixed_ingest"]
    print(
        f"  mixed-ingest    {m['n_ingested']} ingests folded "
        f"mid-serve, p999={m['latency']['p999'] / 1e3:.1f}us"
    )
    c = results["caching"]["row_cache_on_vs_off"]
    print(
        f"  cache on/off    {c['speedup']:.2f}x sim service "
        f"({c['row_cache_hits']} hits vs "
        f"{c['cold_pages_from_ssd']} cold SSD pages)"
    )
    b = results["batching"]["batched_vs_solo"]
    print(
        f"  batched/solo    {b['speedup']:.2f}x sim service "
        f"({b['batched_batches']} vs {b['solo_batches']} batches)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
