"""Figure 9: knori/knors vs MLlib, H2O and Turi on one machine.

Friendster-8 and Friendster-32, k=10. Claims to reproduce:

* knori is >= an order of magnitude faster than every framework;
* knori- (algorithmically identical to the frameworks' k-means) is
  still ~10x faster -- the ||Lloyd's + NUMA dividend alone;
* knors is competitive with (typically >= 2x faster than) the
  frameworks' *in-memory* runs while using a fraction of the memory;
* (c) peak memory: knor modules sit far below the JVM frameworks.
"""

import pytest

from repro import ConvergenceCriteria, knori, knors
from repro.baselines import framework_kmeans
from repro.metrics import render_table

from conftest import report

CRIT = ConvergenceCriteria(max_iters=20)
K = 10


def test_fig9_frameworks(fr8, fr32, fr8_file, fr32_file, benchmark):
    rows = []
    results = {}
    for name, data, path in (
        ("Friendster-8", fr8, fr8_file),
        ("Friendster-32", fr32, fr32_file),
    ):
        db = data.size * 8
        runs = {
            "knori": knori(data, K, seed=4, criteria=CRIT),
            "knori-": knori(data, K, pruning=None, seed=4,
                            criteria=CRIT),
            "knors": knors(path, K, seed=4, criteria=CRIT,
                           row_cache_bytes=db // 8,
                           page_cache_bytes=db // 16,
                           cache_update_interval=8),
            "knors--": knors(path, K, pruning=None, row_cache_bytes=0,
                             page_cache_bytes=db // 16, seed=4,
                             criteria=CRIT),
            "MLlib": framework_kmeans(data, K, "mllib", seed=4,
                                      criteria=CRIT),
            "H2O": framework_kmeans(data, K, "h2o", seed=4,
                                    criteria=CRIT),
            "Turi": framework_kmeans(data, K, "turi", seed=4,
                                     criteria=CRIT),
        }
        results[name] = runs
        for label, res in runs.items():
            rows.append(
                [
                    name,
                    label,
                    f"{res.sim_seconds:.4f}",
                    f"{res.sim_seconds / runs['knori'].sim_seconds:.1f}x",
                    f"{res.peak_memory_bytes / 1e6:.1f}",
                ]
            )

    report(
        "Figure 9: single-machine comparison vs frameworks "
        "(k=10; sim s; slowdown vs knori; peak MB per machine)",
        render_table(
            ["dataset", "implementation", "sim s", "vs knori",
             "peak MB"],
            rows,
        )
        + "\nNote: framework rows are calibrated cost-model "
        "comparators running identical numerics (see "
        "repro.baselines.frameworks).",
    )

    for name, runs in results.items():
        for fw in ("MLlib", "H2O", "Turi"):
            # knori is >= an order of magnitude faster.
            assert runs[fw].sim_seconds > 10 * runs["knori"].sim_seconds
            # knori- alone is ~10x faster (>=5x asserted).
            assert runs[fw].sim_seconds > 5 * runs["knori-"].sim_seconds
            # knors beats the in-memory frameworks by >= 2x.
            assert runs[fw].sim_seconds > 2 * runs["knors"].sim_seconds
            # (c) memory: frameworks dwarf every knor module.
            assert (
                runs[fw].peak_memory_bytes
                > runs["knori"].peak_memory_bytes
            )
        # knors uses less memory than knori (no O(nd) resident data).
        assert (
            runs["knors--"].peak_memory_bytes
            < runs["knori-"].peak_memory_bytes
        )

    benchmark.pedantic(
        lambda: framework_kmeans(fr8, K, "mllib", seed=4, criteria=CRIT),
        rounds=1, iterations=1,
    )
