"""Figure 10: single-node scalability on RM_856M, RM_1B and RU_2B.

Scaled to 131K-262K rows with the paper's dimensionalities, k=10.
Claims to reproduce:

* knori beats the frameworks by 7-20x, knors by 3-6x, on the random
  100 GB+ class datasets;
* as data grows, knors closes on knori (I/O latency masked; the SEM
  module turns compute-bound) -- knors lands within 3-4x of knori;
* the largest dataset (RU_2B stand-in) runs in SEM while the paper's
  in-memory competitors fail at that scale (here: we show the memory
  requirement exceeding the machine rather than crashing).
"""

import pytest

from repro import ConvergenceCriteria, knori, knors
from repro.baselines import framework_kmeans
from repro.data import write_matrix
from repro.metrics import render_table

from conftest import report

CRIT = ConvergenceCriteria(max_iters=12)
K = 10


def test_fig10_scalability(rm856, rm1b, ru2b, tmp_path_factory,
                           benchmark):
    td = tmp_path_factory.mktemp("fig10")
    rows = []
    ratios = {}
    for name, data in (
        ("RM_856M", rm856), ("RM_1B", rm1b), ("RU_2B", ru2b),
    ):
        path = write_matrix(td / f"{name}.knor", data)
        db = data.size * 8
        im = knori(data, K, seed=4, criteria=CRIT)
        sem = knors(path, K, seed=4, criteria=CRIT,
                    row_cache_bytes=db // 8, page_cache_bytes=db // 16,
                    cache_update_interval=8)
        ml = framework_kmeans(data, K, "mllib", seed=4, criteria=CRIT)
        h2o = framework_kmeans(data, K, "h2o", seed=4, criteria=CRIT)
        turi = framework_kmeans(data, K, "turi", seed=4, criteria=CRIT)
        for res in (im, sem, ml, h2o, turi):
            rows.append(
                [
                    name,
                    res.algorithm,
                    f"{res.sim_seconds:.4f}",
                    f"{res.peak_memory_bytes / 1e6:.1f}",
                ]
            )
        ratios[name] = dict(im=im, sem=sem, ml=ml, h2o=h2o, turi=turi)

    # Paper-scale memory projection: who even fits in 1 TB?
    from repro.metrics import table1_bytes

    proj = []
    for dsname, n, d in (
        ("RM_856M", 856_000_000, 16),
        ("RM_1B", 1_100_000_000, 32),
        ("RU_2B", 2_100_000_000, 64),
    ):
        im_b = table1_bytes("knori", n, d, K, 48)
        sem_b = table1_bytes(
            "knors", n, d, K, 48, row_cache_bytes=2 << 30
        )
        proj.append(
            [
                dsname,
                f"{im_b / 1e9:.0f} GB",
                "yes" if im_b < 1e12 else "NO (exceeds 1 TB)",
                f"{sem_b / 1e9:.1f} GB",
                "yes",
            ]
        )

    report(
        "Figure 10: scalability on RM/RU datasets (k=10; sim s; "
        "peak MB at repro scale) + paper-scale fit-in-1TB projection",
        render_table(
            ["dataset", "implementation", "sim s", "peak MB"], rows
        )
        + "\n\npaper-scale memory projection (1 TB machine):\n"
        + render_table(
            ["dataset", "in-memory bytes", "knori fits?",
             "SEM bytes", "knors fits?"],
            proj,
        ),
    )

    for name, r in ratios.items():
        # knori beats every framework by a wide margin (paper: 7-20x;
        # uniform RU data is the stated worst case for pruning, so its
        # floor is lower -- the gain is the ||Lloyd's dividend alone).
        floor = 3 if name == "RU_2B" else 5
        for fw in ("ml", "h2o", "turi"):
            assert r[fw].sim_seconds > floor * r["im"].sim_seconds, (
                name, fw,
            )
        # knors beats the in-memory frameworks (paper: 3-6x).
        assert r["ml"].sim_seconds > 2 * r["sem"].sim_seconds, name
        # knors is within a small factor of knori (paper: 3-4x at
        # scale; uniform data prunes worst so allow up to 6x).
        assert r["sem"].sim_seconds < 6 * r["im"].sim_seconds, name

    # RU_2B at paper scale: in-memory needs >1 TB, SEM does not.
    assert table1_bytes("knori", 2_100_000_000, 64, K, 48) > 1e12
    assert (
        table1_bytes(
            "knors", 2_100_000_000, 64, K, 48,
            row_cache_bytes=2 << 30,
        )
        < 100e9
    )

    benchmark.pedantic(
        lambda: knori(rm856, K, seed=4, criteria=CRIT),
        rounds=1, iterations=1,
    )
