"""Serial Lloyd's and the unpruned ||Lloyd's super-phase."""

import numpy as np
import pytest

from repro.core import (
    ConvergenceCriteria,
    full_iteration,
    init_centroids,
    lloyd,
)
from repro.errors import ConfigError, DatasetError


def test_lloyd_recovers_blobs(blobs):
    res = lloyd(blobs, 4, init="kmeans++", seed=0)
    assert res.converged
    assert sorted(res.cluster_sizes.tolist()) == [250, 250, 250, 250]
    # Each centroid sits inside its blob (scale 0.5 noise).
    assert res.inertia / blobs.shape[0] < 1.5


def test_lloyd_deterministic(blobs):
    a = lloyd(blobs, 4, seed=5)
    b = lloyd(blobs, 4, seed=5)
    np.testing.assert_array_equal(a.assignment, b.assignment)
    np.testing.assert_array_equal(a.centroids, b.centroids)


def test_lloyd_objective_nonincreasing(overlapping):
    """The k-means objective never increases across iterations."""
    from repro.core.distance import nearest_centroid

    c = init_centroids(overlapping, 8, "random", seed=2)
    last = np.inf
    for _ in range(15):
        res = full_iteration(overlapping, c)
        obj = float((res.mindist**2).sum())
        assert obj <= last + 1e-6
        last = obj
        c = res.new_centroids
        if res.n_changed == 0:
            break


def test_lloyd_max_iters_respected(overlapping):
    res = lloyd(
        overlapping, 10, seed=1, criteria=ConvergenceCriteria(max_iters=3)
    )
    assert res.iterations <= 3


def test_lloyd_explicit_init_array(blobs):
    c0 = init_centroids(blobs, 4, "kmeans++", seed=1)
    res = lloyd(blobs, 4, init=c0)
    assert res.converged


def test_lloyd_init_shape_mismatch(blobs):
    with pytest.raises(ValueError):
        lloyd(blobs, 4, init=np.zeros((3, 3)))


def test_lloyd_k1(blobs):
    res = lloyd(blobs, 1, seed=0)
    assert res.converged
    np.testing.assert_allclose(
        res.centroids[0], blobs.mean(axis=0), atol=1e-9
    )


def test_lloyd_k_equals_n():
    x = np.arange(10, dtype=float).reshape(5, 2) * 10
    res = lloyd(x, 5, seed=0)
    assert res.converged
    assert res.inertia == pytest.approx(0.0, abs=1e-12)


def test_lloyd_constant_data():
    x = np.ones((50, 3))
    res = lloyd(x, 3, seed=0)
    assert res.converged
    assert np.isfinite(res.centroids).all()


def test_lloyd_changed_history_monotone_end(overlapping):
    res = lloyd(overlapping, 6, seed=3)
    assert res.changed_history[-1] == 0 or not res.converged


def test_full_iteration_partition_count_invariance(overlapping):
    """Funnel-merged per-thread partials match a single partition."""
    c = init_centroids(overlapping, 5, "random", seed=1)
    r1 = full_iteration(overlapping, c, n_partitions=1)
    r8 = full_iteration(overlapping, c, n_partitions=8)
    r48 = full_iteration(overlapping, c, n_partitions=48)
    np.testing.assert_array_equal(r1.assignment, r8.assignment)
    np.testing.assert_allclose(
        r1.new_centroids, r8.new_centroids, atol=1e-9
    )
    np.testing.assert_allclose(
        r1.new_centroids, r48.new_centroids, atol=1e-9
    )


def test_full_iteration_stats(overlapping):
    c = init_centroids(overlapping, 5, "random", seed=1)
    r = full_iteration(overlapping, c)
    assert (r.dist_per_row == 5).all()
    assert r.needs_data.all()
    assert r.n_changed == overlapping.shape[0]  # first iteration


def test_full_iteration_changed_counts(overlapping):
    c = init_centroids(overlapping, 5, "random", seed=1)
    r1 = full_iteration(overlapping, c)
    r2 = full_iteration(
        overlapping, r1.new_centroids, r1.assignment
    )
    manual = int(np.count_nonzero(r2.assignment != r1.assignment))
    assert r2.n_changed == manual


def test_full_iteration_bad_partitions(overlapping):
    c = init_centroids(overlapping, 5, "random", seed=1)
    with pytest.raises(DatasetError):
        full_iteration(overlapping, c, n_partitions=0)


def test_criteria_validation():
    with pytest.raises(ConfigError):
        ConvergenceCriteria(max_iters=0)
    with pytest.raises(ConfigError):
        ConvergenceCriteria(tol_changed_frac=1.5)
    with pytest.raises(ConfigError):
        ConvergenceCriteria(tol_centroid_motion=-1)


def test_criteria_motion_tolerance(overlapping):
    crit = ConvergenceCriteria(max_iters=100, tol_centroid_motion=1.0)
    res = lloyd(overlapping, 5, seed=0, criteria=crit)
    loose_iters = res.iterations
    strict = lloyd(overlapping, 5, seed=0)
    assert loose_iters <= strict.iterations


def test_criteria_changed_fraction():
    crit = ConvergenceCriteria(tol_changed_frac=0.5)
    assert crit.converged(100, 50)
    assert not crit.converged(100, 51)
