"""Shared fixtures for the knor-repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import friendster_like, write_matrix


@pytest.fixture(scope="session")
def blobs():
    """Well-separated Gaussian blobs: k-means ground truth is obvious."""
    rng = np.random.default_rng(42)
    centers = np.array(
        [[0.0, 0.0, 0.0], [10.0, 0.0, 0.0], [0.0, 10.0, 0.0],
         [10.0, 10.0, 10.0]]
    )
    x = np.vstack(
        [rng.normal(loc=c, scale=0.5, size=(250, 3)) for c in centers]
    )
    rng.shuffle(x)
    return x


@pytest.fixture(scope="session")
def overlapping():
    """Ten overlapping clusters in 8-D: many iterations, real pruning."""
    rng = np.random.default_rng(7)
    centers = rng.normal(scale=3.0, size=(10, 8))
    x = np.vstack(
        [rng.normal(loc=c, scale=1.8, size=(300, 8)) for c in centers]
    )
    rng.shuffle(x)
    return x


@pytest.fixture(scope="session")
def friendster_small():
    """A small Friendster-like spectral embedding (cached per session)."""
    return friendster_like(4096, 8)


@pytest.fixture()
def matrix_path(tmp_path, overlapping):
    """The overlapping dataset written to a real knor binary file."""
    path = tmp_path / "overlap.knor"
    write_matrix(path, overlapping)
    return path
