"""Later-phase extensions: GMM, kNN, agglomerative clustering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import euclidean
from repro.errors import ConvergenceError, DatasetError
from repro.extensions import (
    agglomerative,
    gmm_em,
    knn_brute,
    knn_pruned,
)


@pytest.fixture(scope="module")
def two_blobs():
    rng = np.random.default_rng(0)
    a = rng.normal(loc=[0, 0], scale=0.6, size=(300, 2))
    b = rng.normal(loc=[6, 6], scale=0.6, size=(300, 2))
    x = np.vstack([a, b])
    true = np.repeat([0, 1], 300)
    perm = rng.permutation(600)
    return x[perm], true[perm]


class TestGmm:
    def test_recovers_mixture(self, two_blobs):
        x, true = two_blobs
        res = gmm_em(x, 2, seed=1)
        assert res.converged
        labels = res.assignment
        # Labels up to permutation.
        agree = max(
            (labels == true).mean(), (labels != true).mean()
        )
        assert agree > 0.99
        means = res.means[np.argsort(res.means[:, 0])]
        np.testing.assert_allclose(means[0], [0, 0], atol=0.2)
        np.testing.assert_allclose(means[1], [6, 6], atol=0.2)
        np.testing.assert_allclose(res.weights.sum(), 1.0)

    def test_log_likelihood_monotone(self, two_blobs):
        x, _ = two_blobs
        res = gmm_em(x, 3, seed=2)
        ll = np.array(res.ll_history)
        assert (np.diff(ll) >= -1e-9).all()

    def test_responsibilities_are_distributions(self, two_blobs):
        x, _ = two_blobs
        res = gmm_em(x, 4, seed=0, max_iters=10)
        np.testing.assert_allclose(
            res.responsibilities.sum(axis=1), 1.0, atol=1e-9
        )
        assert (res.responsibilities >= 0).all()

    def test_variance_floor_holds(self):
        x = np.vstack([np.zeros((50, 2)), np.ones((50, 2))])
        res = gmm_em(x, 2, seed=0, var_floor=1e-4)
        assert (res.variances >= 1e-4).all()

    def test_validation(self, two_blobs):
        x, _ = two_blobs
        with pytest.raises(ConvergenceError):
            gmm_em(x, 0)
        with pytest.raises(DatasetError):
            gmm_em(x, 2, init=np.zeros((3, 3)))
        with pytest.raises(DatasetError):
            gmm_em(np.zeros(5), 2)


class TestKnn:
    def test_brute_matches_naive(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(200, 5))
        q = rng.normal(size=(20, 5))
        res = knn_brute(data, q, 7, block_rows=37)
        full = euclidean(q, data)
        want = np.argsort(full, axis=1, kind="stable")[:, :7]
        got_d = res.distances
        want_d = np.sort(full, axis=1)[:, :7]
        np.testing.assert_allclose(got_d, want_d, atol=1e-12)
        # Indices agree where distances are unique (everywhere, here).
        np.testing.assert_array_equal(res.indices, want)

    def test_pruned_matches_brute(self):
        rng = np.random.default_rng(2)
        centers = rng.normal(scale=8.0, size=(6, 4))
        data = np.vstack(
            [rng.normal(loc=c, size=(150, 4)) for c in centers]
        )
        q = rng.normal(scale=8.0, size=(25, 4))
        brute = knn_brute(data, q, 5)
        pruned = knn_pruned(data, q, 5, seed=3)
        np.testing.assert_allclose(
            pruned.distances, brute.distances, atol=1e-9
        )

    def test_pruning_saves_computation_on_clustered_data(self):
        rng = np.random.default_rng(3)
        centers = rng.normal(scale=20.0, size=(8, 4))
        data = np.vstack(
            [rng.normal(loc=c, size=(250, 4)) for c in centers]
        )
        q = data[rng.choice(2000, 30, replace=False)]
        brute = knn_brute(data, q, 3)
        pruned = knn_pruned(data, q, 3, seed=1)
        assert pruned.blocks_pruned > 0
        assert pruned.dist_computations < brute.dist_computations

    def test_self_query_returns_self_first(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(50, 3))
        res = knn_brute(data, data[:5], 1)
        np.testing.assert_array_equal(
            res.indices[:, 0], np.arange(5)
        )
        np.testing.assert_allclose(res.distances, 0.0, atol=1e-6)

    def test_validation(self):
        with pytest.raises(ConvergenceError):
            knn_brute(np.zeros((5, 2)), np.zeros((1, 2)), 6)
        with pytest.raises(DatasetError):
            knn_brute(np.zeros((5, 2)), np.zeros((1, 3)), 2)


class TestAgglomerative:
    def test_separates_blobs(self, two_blobs):
        x, true = two_blobs
        for linkage in ("single", "complete", "average", "ward"):
            res = agglomerative(x[:200], 2, linkage=linkage)
            t = true[:200]
            agree = max(
                (res.assignment == t).mean(),
                (res.assignment != t).mean(),
            )
            assert agree == 1.0, linkage

    def test_merge_history_shape(self):
        x = np.arange(10, dtype=float).reshape(5, 2)
        res = agglomerative(x, 2)
        assert res.merges.shape == (3, 3)
        # Merge distances never negative.
        assert (res.merges[:, 2] >= 0).all()

    def test_single_linkage_chains(self):
        # A chain of close points plus one far point: single linkage
        # keeps the chain together.
        x = np.array([[0.0], [1.0], [2.0], [3.0], [100.0]])
        res = agglomerative(x, 2, linkage="single")
        assert len(set(res.assignment[:4].tolist())) == 1
        assert res.assignment[4] != res.assignment[0]

    def test_n_clusters_equals_n(self):
        x = np.random.default_rng(0).normal(size=(6, 2))
        res = agglomerative(x, 6)
        assert sorted(res.assignment.tolist()) == list(range(6))
        assert res.merges.shape == (0, 3)

    def test_validation(self):
        x = np.zeros((5, 2))
        with pytest.raises(ConvergenceError):
            agglomerative(x, 0)
        with pytest.raises(ConvergenceError):
            agglomerative(x, 2, linkage="centroid")
        with pytest.raises(DatasetError):
            agglomerative(np.zeros((5000, 2)), 2)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(4, 40),
        k=st.integers(1, 4),
        seed=st.integers(0, 500),
        linkage=st.sampled_from(["single", "complete", "average"]),
    )
    def test_produces_exactly_k_clusters(self, n, k, seed, linkage):
        k = min(k, n)
        x = np.random.default_rng(seed).normal(size=(n, 3))
        res = agglomerative(x, k, linkage=linkage)
        assert len(np.unique(res.assignment)) == k

    def test_ward_merge_distances_monotone(self, two_blobs):
        x, _ = two_blobs
        res = agglomerative(x[:120], 1, linkage="ward")
        d = res.merges[:, 2]
        assert (np.diff(d) >= -1e-9).all()
