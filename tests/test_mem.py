"""Unit tests for the pluggable memory-manager plane (repro.mem).

Covers the manager protocol itself: arena pooling and size classes,
capacity-preserving ``ensure_capacity``, the budgeted manager's hard
cap + LRU spill, the manager stack, observer events, and the
weakref-observed x_sq cache in DistanceWorkspace.
"""

from __future__ import annotations

import gc
import weakref

import numpy as np
import pytest

from repro.core.workspace import DistanceWorkspace
from repro.errors import ConfigError, MemoryBudgetError
from repro.mem import (
    ArenaManager,
    BudgetedManager,
    DEFAULT_MANAGER,
    MANAGER_NAMES,
    NumpyManager,
    build_manager,
    check_manager,
    current_manager,
    use_manager,
)
from repro.runtime import RecordingObserver


class TestNumpyManager:
    def test_alloc_shapes_and_dtype(self):
        m = NumpyManager()
        a = m.alloc((3, 4), np.float64, tag="t")
        assert a.shape == (3, 4) and a.dtype == np.float64

    def test_zero_fill(self):
        m = NumpyManager()
        a = m.alloc((64,), np.int64, tag="t", zero=True)
        assert not a.any()

    def test_accounting(self):
        m = NumpyManager()
        a = m.alloc((128,), np.float64, tag="t")
        c = m.counters()
        assert c.live_bytes == a.nbytes
        assert c.peak_bytes == a.nbytes
        assert c.n_allocs == 1
        m.free(a)
        c = m.counters()
        assert c.live_bytes == 0 and c.n_frees == 1
        # Peak is monotone.
        assert c.peak_bytes == a.nbytes

    def test_pool_stats(self):
        m = NumpyManager()
        a = m.alloc((16,), np.float64, tag="t")
        s = m.pool_stats()
        assert s.live_blocks == 1 and s.live_bytes == a.nbytes
        assert s.pooled_blocks == 0


class TestArenaManager:
    def test_reuse_same_size_class(self):
        m = ArenaManager()
        a = m.alloc((100,), np.float64, tag="t")
        m.free(a)
        b = m.alloc((100,), np.float64, tag="t")
        c = m.counters()
        assert c.n_reuses == 1
        assert c.backing_allocs == 1
        assert b.shape == (100,)

    def test_reuse_across_shapes_in_class(self):
        # 90*8=720 B and 100*8=800 B share the 1024 B class.
        m = ArenaManager()
        a = m.alloc((100,), np.float64, tag="t")
        m.free(a)
        m.alloc((90,), np.float64, tag="t")
        assert m.counters().backing_allocs == 1

    def test_no_reuse_across_classes(self):
        m = ArenaManager()
        a = m.alloc((100,), np.float64, tag="t")
        m.free(a)
        m.alloc((1000,), np.float64, tag="t")
        assert m.counters().backing_allocs == 2

    def test_zero_requested_is_zeroed_on_reuse(self):
        m = ArenaManager()
        a = m.alloc((32,), np.float64, tag="t")
        a.fill(7.0)
        m.free(a)
        b = m.alloc((32,), np.float64, tag="t", zero=True)
        assert not b.any()

    def test_owns(self):
        m = ArenaManager()
        a = m.alloc((8,), np.float64, tag="t")
        assert m.owns(a)
        assert not m.owns(np.zeros(8))

    def test_trim_empties_pool(self):
        m = ArenaManager()
        a = m.alloc((100,), np.float64, tag="t")
        m.free(a)
        assert m.pool_stats().pooled_blocks == 1
        freed = m.trim()
        assert freed > 0
        assert m.pool_stats().pooled_blocks == 0
        # Post-trim allocation needs fresh backing.
        m.alloc((100,), np.float64, tag="t")
        assert m.counters().backing_allocs == 2

    def test_free_foreign_array_is_counted_noop(self):
        # Foreign frees are tolerated (escaping buffers change hands)
        # but tracked, and never pollute the pool.
        m = ArenaManager()
        m.free(np.zeros(8))
        assert m.unknown_frees == 1
        assert m.pool_stats().pooled_blocks == 0
        assert m.counters().n_frees == 0


class TestEnsureCapacity:
    @pytest.mark.parametrize("mgr", [NumpyManager, ArenaManager])
    def test_first_call_allocates(self, mgr):
        m = mgr()
        a = m.ensure_capacity(None, (10,), np.float64, tag="t")
        assert a.shape[0] >= 10

    @pytest.mark.parametrize("mgr", [NumpyManager, ArenaManager])
    def test_no_realloc_when_capacity_sufficient(self, mgr):
        m = mgr()
        a = m.ensure_capacity(None, (100,), np.float64, tag="t")
        b = m.ensure_capacity(a, (50,), np.float64, tag="t")
        assert b is a
        assert m.counters().n_allocs == 1

    def test_growth_reallocates(self):
        m = ArenaManager()
        a = m.ensure_capacity(None, (10,), np.float64, tag="t")
        b = m.ensure_capacity(a, (1000,), np.float64, tag="t")
        assert b.shape[0] >= 1000
        assert b is not a

    def test_dtype_change_reallocates(self):
        m = ArenaManager()
        a = m.ensure_capacity(None, (10,), np.float64, tag="t")
        b = m.ensure_capacity(a, (10,), np.int64, tag="t")
        assert b.dtype == np.int64

    def test_steady_state_zero_backing_allocs(self):
        # The grow-guard contract: a repeating alloc/ensure cycle
        # stops hitting the OS after the first round.
        m = ArenaManager()
        buf = None
        for _ in range(50):
            buf = m.ensure_capacity(buf, (257,), np.float64, tag="t")
        assert m.counters().backing_allocs == 1


class TestBudgetedManager:
    def test_within_budget_behaves_like_arena(self):
        m = BudgetedManager(1 << 20)
        a = m.alloc((100,), np.float64, tag="t")
        m.free(a)
        m.alloc((100,), np.float64, tag="t")
        c = m.counters()
        assert c.n_reuses == 1 and c.spill_count == 0

    def test_spill_under_pressure(self):
        # Budget fits one 4 KiB block; the second forces a spill.
        m = BudgetedManager(6 * 1024)
        a = m.alloc((512,), np.float64, tag="a")
        a.fill(1.0)
        b = m.alloc((512,), np.float64, tag="b")
        c = m.counters()
        assert c.spill_count >= 1
        assert c.spill_ns > 0
        # Spill is accounting + simulated time only: data intact.
        assert (a == 1.0).all()
        b.fill(2.0)
        assert (b == 2.0).all()

    def test_touch_spills_back_in(self):
        m = BudgetedManager(6 * 1024)
        a = m.alloc((512,), np.float64, tag="a")
        m.alloc((512,), np.float64, tag="b")  # spills a out
        spills_out = m.counters().spill_count
        m.touch(a)  # must spill b out and a back in
        assert m.counters().spill_count > spills_out

    def test_request_larger_than_budget_raises(self):
        m = BudgetedManager(1024)
        with pytest.raises(MemoryBudgetError):
            m.alloc((1 << 20,), np.float64, tag="t")

    def test_budget_never_silently_grows(self):
        m = BudgetedManager(32 * 1024)
        live = [m.alloc((512,), np.float64, tag=f"t{i}")
                for i in range(8)]
        # Resident stays under cap even with more live than budget.
        for i in range(8, 16):
            live.append(m.alloc((512,), np.float64, tag=f"t{i}"))
        c = m.counters()
        assert c.spill_count > 0
        assert c.budget_bytes == 32 * 1024

    def test_free_spilled_block_has_no_io_charge(self):
        m = BudgetedManager(6 * 1024)
        a = m.alloc((512,), np.float64, tag="a")
        m.alloc((512,), np.float64, tag="b")
        ns_before = m.counters().spill_ns
        m.free(a)  # a is spilled; dropping it costs nothing
        assert m.counters().spill_ns == ns_before


class TestManagerStack:
    def test_default_is_numpy(self):
        assert current_manager() is DEFAULT_MANAGER
        assert isinstance(DEFAULT_MANAGER, NumpyManager)

    def test_use_manager_pushes_and_pops(self):
        m = ArenaManager()
        with use_manager(m):
            assert current_manager() is m
        assert current_manager() is DEFAULT_MANAGER

    def test_use_manager_none_is_noop(self):
        before = current_manager()
        with use_manager(None) as got:
            assert current_manager() is before
            assert got is before

    def test_nesting(self):
        a, b = ArenaManager(), NumpyManager()
        with use_manager(a):
            with use_manager(b):
                assert current_manager() is b
            assert current_manager() is a

    def test_pop_on_exception(self):
        m = ArenaManager()
        with pytest.raises(RuntimeError):
            with use_manager(m):
                raise RuntimeError("boom")
        assert current_manager() is DEFAULT_MANAGER


class TestBuildManager:
    def test_names(self):
        assert MANAGER_NAMES == ("numpy", "arena", "budget")

    def test_build_numpy_and_arena(self):
        assert isinstance(build_manager("numpy"), NumpyManager)
        assert isinstance(build_manager("arena"), ArenaManager)

    def test_build_budget_needs_bytes(self):
        with pytest.raises(ConfigError):
            build_manager("budget")
        m = build_manager("budget", budget_bytes=1 << 20)
        assert isinstance(m, BudgetedManager)

    def test_instance_passthrough(self):
        m = ArenaManager()
        assert build_manager(m) is m

    def test_none_passthrough(self):
        assert build_manager(None) is None

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            build_manager("slab")

    def test_check_manager(self):
        assert check_manager("arena") == "arena"
        with pytest.raises(ConfigError):
            check_manager("slab")


class TestObserverEvents:
    def test_alloc_free_events(self):
        m = ArenaManager()
        rec = RecordingObserver()
        m.attach_observer(rec)
        a = m.alloc((100,), np.float64, tag="ws/test")
        m.free(a)
        m.alloc((100,), np.float64, tag="ws/test")
        names = [e.name for e in rec.events]
        assert names == ["alloc", "free", "alloc"]
        first, _, again = rec.events
        assert first.payload["tag"] == "ws/test"
        assert first.payload["reused"] is False
        assert again.payload["reused"] is True

    def test_spill_events(self):
        m = BudgetedManager(6 * 1024)
        rec = RecordingObserver()
        m.attach_observer(rec)
        a = m.alloc((512,), np.float64, tag="a")
        m.alloc((512,), np.float64, tag="b")
        m.touch(a)
        spills = [e for e in rec.events if e.name == "spill"]
        assert len(spills) >= 2
        dirs = {e.payload["direction"] for e in spills}
        assert dirs == {"out", "in"}
        assert all(e.payload["ns"] > 0 for e in spills)


class TestWorkspaceIntegration:
    def test_workspace_release_drains_manager(self):
        m = ArenaManager()
        ws = DistanceWorkspace(4, 8, mem=m)
        x = np.random.default_rng(0).normal(size=(64, 8))
        c = np.random.default_rng(1).normal(size=(4, 8))
        ws.ensure(c)
        ws.x_sq(x)
        ws.dist_buffer(64)
        assert m.counters().live_bytes > 0
        ws.release()
        assert m.counters().live_bytes == 0

    def test_x_sq_cache_is_weakref_observed(self):
        # Satellite 1: the norm cache must not pin the data matrix.
        m = ArenaManager()
        ws = DistanceWorkspace(4, 8, mem=m)
        x = np.random.default_rng(0).normal(size=(64, 8))
        ws.x_sq(x)
        wr = weakref.ref(x)
        live_with_cache = m.counters().live_bytes
        del x
        gc.collect()
        assert wr() is None, "workspace must not keep x alive"
        # The norms buffer was handed back to the manager too.
        assert m.counters().live_bytes < live_with_cache

    def test_x_sq_cache_hit(self):
        m = ArenaManager()
        ws = DistanceWorkspace(4, 8, mem=m)
        x = np.random.default_rng(0).normal(size=(64, 8))
        n1 = ws.x_sq(x)
        n2 = ws.x_sq(x)
        assert n1 is n2
        np.testing.assert_array_equal(
            n1, np.einsum("ij,ij->i", x, x)
        )

    def test_workspace_dead_finalizer_does_not_crash(self):
        m = ArenaManager()
        ws = DistanceWorkspace(4, 8, mem=m)
        x = np.random.default_rng(0).normal(size=(16, 8))
        ws.x_sq(x)
        del ws
        gc.collect()
        del x
        gc.collect()  # finalizer fires with the workspace gone


class TestPageCacheRelease:
    def test_clear_keeps_backing_release_frees(self):
        from repro.sem.pagecache import PageCache

        m = ArenaManager()
        pc = PageCache(1 << 16, 4096, mem=m)
        pc.admit_batch(np.array([1, 5, 9], dtype=np.int64))
        assert m.counters().live_bytes > 0
        pc.clear()
        # clear() keeps pooled backing for the next epoch...
        assert m.counters().live_bytes > 0
        pc.release()
        # ...release() hands everything back.
        assert m.counters().live_bytes == 0


def test_default_manager_untouched_by_suite():
    """Nothing in the codebase may leave a manager pushed."""
    assert current_manager() is DEFAULT_MANAGER
