"""Crash-matrix: {fault site x iteration x backend} recovery tests.

Every cell injects a scheduled fault into one backend at one iteration
and asserts the recovered run reproduces the fault-free run's final
centroids and assignment *bit-for-bit*, with a well-ordered observer
event stream (every recoverable fault is eventually answered by a
recovery at the expected site).

Run with ``pytest -m faults`` (CI runs this file with ``-p
no:randomly`` so cell ordering is stable).
"""

import numpy as np
import pytest

from repro import ConvergenceCriteria, FaultPlan, RetryPolicy, knord, knori, knors
from repro.baselines.mpi_pure import mpi_lloyd
from repro.core import init_centroids
from repro.data import write_matrix
from repro.errors import NodeFailureError
from repro.faults import FaultEvent
from repro.runtime import RecordingObserver

pytestmark = pytest.mark.faults

CRASH_ITERATIONS = (0, 2, 5)

#: fault site -> the site(s) whose on_recovery answers it. A mid-save
#: checkpoint crash surfaces as a worker crash, so the worker site
#: recovers it; a corrupted *checkpoint* is likewise only discovered
#: (and quarantined) during worker-crash recovery.
RECOVERY_SITE = {
    "ssd": "ssd",
    "worker": "worker",
    "checkpoint": "worker",
    "node": "node",
    "net": "net",
    "corruption": ("corruption", "worker"),
    "straggler": "straggler",
}


@pytest.fixture(scope="module")
def dataset():
    """Overlapping clusters: enough iterations for late crash cells."""
    rng = np.random.default_rng(11)
    centers = rng.normal(scale=2.5, size=(6, 5))
    x = np.vstack(
        [rng.normal(loc=c, scale=1.6, size=(150, 5)) for c in centers]
    )
    rng.shuffle(x)
    return x


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory, dataset):
    path = tmp_path_factory.mktemp("faultmat") / "data.knor"
    write_matrix(path, dataset)
    return path


@pytest.fixture(scope="module")
def centroids0(dataset):
    return init_centroids(dataset, 6, "random", seed=3)


def assert_well_ordered(events):
    """Every recoverable fault is followed by its site's recovery."""
    assert events, "expected a non-empty fault trace"
    for i, ev in enumerate(events):
        if ev.name != "fault":
            continue
        want = RECOVERY_SITE[ev.payload["site"]]
        if isinstance(want, str):
            want = (want,)
        assert any(
            later.name == "recovery" and later.payload["site"] in want
            for later in events[i + 1:]
        ), f"fault at {ev.payload['site']} never recovered"


def assert_matches(baseline, faulty, events):
    np.testing.assert_array_equal(baseline.centroids, faulty.centroids)
    np.testing.assert_array_equal(
        baseline.assignment, faulty.assignment
    )
    assert faulty.iterations == baseline.iterations
    assert faulty.converged == baseline.converged
    assert_well_ordered(events)


# -- knori ---------------------------------------------------------------


class TestKnoriMatrix:
    @pytest.fixture(scope="class")
    def baseline(self, dataset, centroids0):
        return knori(dataset, 6, init=centroids0, seed=3)

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    def test_worker_crash(self, dataset, centroids0, baseline, crash_it):
        assert baseline.iterations > max(CRASH_ITERATIONS)
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="worker", iteration=crash_it, kind="crash")]
        )
        rec = RecordingObserver()
        faulty = knori(
            dataset, 6, init=centroids0, seed=3, faults=plan,
            observers=(rec,),
        )
        assert_matches(baseline, faulty, rec.fault_events())

    def test_thread_straggler(self, dataset, centroids0, baseline):
        """A slowed thread is EWMA-flagged and its queue drains to
        healthy threads; numerics never notice."""
        from repro.faults import FaultSpec

        plan = FaultPlan(FaultSpec(), schedule=[
            FaultEvent(site="straggler", iteration=1, kind="slow",
                       machine=2),
        ])
        rec = RecordingObserver()
        faulty = knori(
            dataset, 6, init=centroids0, seed=3, faults=plan,
            observers=(rec,),
        )
        assert_matches(baseline, faulty, rec.fault_events())
        assert any(
            e.name == "straggler" for e in rec.fault_events()
        )


# -- knors ---------------------------------------------------------------


class TestKnorsMatrix:
    KW = dict(row_cache_bytes=0, page_cache_bytes=0)

    @pytest.fixture(scope="class")
    def baseline(self, dataset_path, centroids0):
        return knors(dataset_path, 6, init=centroids0, seed=3, **self.KW)

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    @pytest.mark.parametrize("checkpointed", [False, True])
    def test_worker_crash(
        self, dataset_path, centroids0, baseline, tmp_path,
        crash_it, checkpointed,
    ):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="worker", iteration=crash_it, kind="crash")]
        )
        rec = RecordingObserver()
        kw = dict(self.KW)
        if checkpointed:
            kw.update(checkpoint_dir=tmp_path / "ck",
                      checkpoint_interval=2)
        faulty = knors(
            dataset_path, 6, init=centroids0, seed=3, faults=plan,
            observers=(rec,), **kw,
        )
        assert_matches(baseline, faulty, rec.fault_events())
        if checkpointed and crash_it >= 2:
            # Recovery restored the checkpoint instead of rerunning
            # from scratch: resume_at is the checkpoint's iteration.
            recoveries = [
                e for e in rec.fault_events()
                if e.name == "recovery" and e.payload["site"] == "worker"
            ]
            assert recoveries[0].payload["detail"]["resume_at"] > 0

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    @pytest.mark.parametrize("kind", ["read_error", "slow"])
    def test_ssd_fault(
        self, dataset_path, centroids0, baseline, crash_it, kind
    ):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="ssd", iteration=crash_it, kind=kind)]
        )
        rec = RecordingObserver()
        faulty = knors(
            dataset_path, 6, init=centroids0, seed=3, faults=plan,
            observers=(rec,), **self.KW,
        )
        assert_matches(baseline, faulty, rec.fault_events())
        # The fault costs simulated time but never changes numerics.
        base_ns = {r.iteration: r.sim_ns for r in baseline.records}
        faulty_ns = {r.iteration: r.sim_ns for r in faulty.records}
        assert faulty_ns[crash_it] >= base_ns[crash_it]

    @pytest.mark.parametrize(
        "crash_point",
        ["arrays-written", "manifest-tmp-written", "committed-no-gc"],
    )
    def test_mid_checkpoint_crash(
        self, dataset_path, centroids0, baseline, tmp_path, crash_point
    ):
        """Kill save_checkpoint at each protocol stage; the run still
        recovers onto the bit-identical trajectory."""
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="checkpoint", iteration=3,
                        kind=crash_point)]
        )
        rec = RecordingObserver()
        faulty = knors(
            dataset_path, 6, init=centroids0, seed=3, faults=plan,
            observers=(rec,), checkpoint_dir=tmp_path / "ck",
            checkpoint_interval=2, **self.KW,
        )
        assert_matches(baseline, faulty, rec.fault_events())

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    def test_page_corruption(
        self, dataset_path, centroids0, baseline, crash_it
    ):
        """A corrupted device page is CRC-caught, quarantined, and
        re-read: time moves, numbers do not."""
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="corruption", iteration=crash_it,
                        kind="page")]
        )
        rec = RecordingObserver()
        faulty = knors(
            dataset_path, 6, init=centroids0, seed=3, faults=plan,
            observers=(rec,), **self.KW,
        )
        assert_matches(baseline, faulty, rec.fault_events())
        assert any(
            e.name == "quarantine" for e in rec.fault_events()
        )

    @pytest.mark.parametrize("crash_it", (6, 7))
    def test_cache_line_corruption(
        self, dataset_path, centroids0, crash_it
    ):
        """A corrupted DRAM-cached row is evicted and re-fetched
        through the clean SSD path. Cache *hits* first appear at
        iteration 6 here (the refresh admits the active set at 5), so
        earlier cells have no resident line to corrupt."""
        kw = dict(row_cache_bytes=1 << 20, page_cache_bytes=1 << 20)
        baseline = knors(
            dataset_path, 6, init=centroids0, seed=3, **kw
        )
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="corruption", iteration=crash_it,
                        kind="cache")]
        )
        rec = RecordingObserver()
        faulty = knors(
            dataset_path, 6, init=centroids0, seed=3, faults=plan,
            observers=(rec,), **kw,
        )
        assert_matches(baseline, faulty, rec.fault_events())

    def test_checkpoint_corruption(
        self, dataset_path, centroids0, baseline, tmp_path
    ):
        """Corrupt the saved checkpoint, then crash: recovery must
        CRC-fail the load, quarantine it, and replay from scratch."""
        plan = FaultPlan.from_schedule([
            FaultEvent(site="corruption", iteration=3,
                       kind="checkpoint"),
            FaultEvent(site="worker", iteration=4, kind="crash"),
        ])
        rec = RecordingObserver()
        faulty = knors(
            dataset_path, 6, init=centroids0, seed=3, faults=plan,
            observers=(rec,), checkpoint_dir=tmp_path / "ck",
            checkpoint_interval=2, **self.KW,
        )
        assert_matches(baseline, faulty, rec.fault_events())
        quarantined = [
            e for e in rec.fault_events() if e.name == "quarantine"
        ]
        assert any(
            e.payload["where"] == "checkpoint" for e in quarantined
        )


# -- knord ---------------------------------------------------------------


class TestKnordMatrix:
    N_MACHINES = 4

    @pytest.fixture(scope="class")
    def baseline(self, dataset, centroids0):
        return knord(
            dataset, 6, init=centroids0, seed=3,
            n_machines=self.N_MACHINES,
        )

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    def test_worker_crash(self, dataset, centroids0, baseline, crash_it):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="worker", iteration=crash_it, kind="crash")]
        )
        rec = RecordingObserver()
        faulty = knord(
            dataset, 6, init=centroids0, seed=3,
            n_machines=self.N_MACHINES, faults=plan, observers=(rec,),
        )
        assert_matches(baseline, faulty, rec.fault_events())

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    def test_node_failure_degraded(
        self, dataset, centroids0, baseline, crash_it
    ):
        """Losing a machine reshards its work onto survivors; the
        surviving fleet is slower but numerically identical."""
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="node", iteration=crash_it, kind="fail",
                        machine=1)]
        )
        rec = RecordingObserver()
        faulty = knord(
            dataset, 6, init=centroids0, seed=3,
            n_machines=self.N_MACHINES, faults=plan, observers=(rec,),
        )
        assert_matches(baseline, faulty, rec.fault_events())
        base_ns = {r.iteration: r.sim_ns for r in baseline.records}
        faulty_ns = {r.iteration: r.sim_ns for r in faulty.records}
        assert faulty_ns[crash_it] > base_ns[crash_it]

    def test_node_failure_abort(self, dataset, centroids0):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="node", iteration=1, kind="fail")]
        )
        with pytest.raises(NodeFailureError):
            knord(
                dataset, 6, init=centroids0, seed=3,
                n_machines=self.N_MACHINES, faults=plan,
                retry_policy=RetryPolicy(node_failure_mode="abort"),
            )

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    def test_dropped_allreduce(
        self, dataset, centroids0, baseline, crash_it
    ):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="net", iteration=crash_it, kind="drop")]
        )
        rec = RecordingObserver()
        faulty = knord(
            dataset, 6, init=centroids0, seed=3,
            n_machines=self.N_MACHINES, faults=plan, observers=(rec,),
        )
        assert_matches(baseline, faulty, rec.fault_events())
        base = {r.iteration: r.allreduce_ns for r in baseline.records}
        fl = {r.iteration: r.allreduce_ns for r in faulty.records}
        assert fl[crash_it] > base[crash_it]

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    def test_message_corruption(
        self, dataset, centroids0, baseline, crash_it
    ):
        """A bit-flipped allreduce payload is CRC-caught and
        retransmitted; the merged sums stay exact."""
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="corruption", iteration=crash_it,
                        kind="message")]
        )
        rec = RecordingObserver()
        faulty = knord(
            dataset, 6, init=centroids0, seed=3,
            n_machines=self.N_MACHINES, faults=plan, observers=(rec,),
        )
        assert_matches(baseline, faulty, rec.fault_events())
        base = {r.iteration: r.allreduce_ns for r in baseline.records}
        fl = {r.iteration: r.allreduce_ns for r in faulty.records}
        assert fl[crash_it] > base[crash_it]

    def test_machine_straggler_resharded(
        self, dataset, centroids0, baseline
    ):
        """A machine slowed 8x is flagged against the fleet median and
        its shard moves to a healthy machine (factor 4 hides inside
        the fixed reduction overhead, so the matrix pins 8)."""
        from repro.faults import FaultSpec

        plan = FaultPlan(
            FaultSpec(straggler_factor=8.0),
            schedule=[FaultEvent(site="straggler", iteration=1,
                                 kind="slow", machine=1)],
        )
        rec = RecordingObserver()
        faulty = knord(
            dataset, 6, init=centroids0, seed=3,
            n_machines=self.N_MACHINES, faults=plan, observers=(rec,),
        )
        assert_matches(baseline, faulty, rec.fault_events())
        rebalances = [
            e for e in rec.fault_events()
            if e.name == "rebalance"
            and e.payload.get("scope") == "machine"
        ]
        assert rebalances
        moves = rebalances[0].payload["detail"]["moves"]
        assert all(src == 1 and dst != 1 for _, src, dst in moves)


# -- async I/O checkpoint restore (satellite d) ---------------------------


class TestAsyncCheckpointRestore:
    """Worker crashes under ``io_mode="async"``: recovery must reset
    the prefetch-credit ledger so the resumed run cannot hide I/O
    behind credit earned before the crash."""

    KW = dict(
        row_cache_bytes=1 << 20, page_cache_bytes=1 << 20,
        io_mode="async",
    )

    @pytest.fixture(scope="class")
    def baseline(self, dataset_path, centroids0):
        return knors(dataset_path, 6, init=centroids0, seed=3, **self.KW)

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    def test_crash_restore_resets_prefetch_credit(
        self, dataset_path, centroids0, baseline, tmp_path, crash_it
    ):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="worker", iteration=crash_it, kind="crash")]
        )
        rec = RecordingObserver()
        faulty = knors(
            dataset_path, 6, init=centroids0, seed=3, faults=plan,
            observers=(rec,), checkpoint_dir=tmp_path / "ck",
            checkpoint_interval=2, **self.KW,
        )
        assert_matches(baseline, faulty, rec.fault_events())
        # The first I/O after recovery starts with an empty credit
        # ledger: nothing can be hidden behind pre-crash prefetches.
        events = rec.events
        rec_idx = next(
            i for i, e in enumerate(events)
            if e.name == "recovery" and e.payload["site"] == "worker"
        )
        first_io = next(
            (e for e in events[rec_idx + 1:] if e.name == "io_complete"),
            None,
        )
        assert first_io is not None
        assert first_io.payload["hidden_ns"] == 0.0


# -- pure MPI baseline ---------------------------------------------------


class TestPureMpiMatrix:
    KW = dict(n_machines=2, ranks_per_machine=4)

    @pytest.fixture(scope="class")
    def baseline(self, dataset, centroids0):
        return mpi_lloyd(dataset, 6, init=centroids0, seed=3, **self.KW)

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    def test_worker_crash(self, dataset, centroids0, baseline, crash_it):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="worker", iteration=crash_it, kind="crash")]
        )
        rec = RecordingObserver()
        faulty = mpi_lloyd(
            dataset, 6, init=centroids0, seed=3, faults=plan,
            observers=(rec,), **self.KW,
        )
        assert_matches(baseline, faulty, rec.fault_events())

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    def test_dropped_allreduce(
        self, dataset, centroids0, baseline, crash_it
    ):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="net", iteration=crash_it, kind="drop")]
        )
        rec = RecordingObserver()
        faulty = mpi_lloyd(
            dataset, 6, init=centroids0, seed=3, faults=plan,
            observers=(rec,), **self.KW,
        )
        assert_matches(baseline, faulty, rec.fault_events())


# -- cross-backend determinism -------------------------------------------


class TestFaultTraceReproducibility:
    """Same fault seed => byte-for-byte identical fault trace."""

    SPEC_KW = dict(
        ssd_error_rate=0.15, ssd_slow_rate=0.15, worker_crash_rate=0.1,
        max_worker_crashes=2,
    )

    def _run(self, dataset_path, centroids0, seed):
        from repro.faults import FaultSpec

        rec = RecordingObserver()
        knors(
            dataset_path, 6, init=centroids0, seed=3,
            faults=FaultPlan(FaultSpec(**self.SPEC_KW), seed=seed),
            observers=(rec,), row_cache_bytes=0, page_cache_bytes=0,
        )
        return rec.fault_events()

    def test_same_seed_identical_trace(self, dataset_path, centroids0):
        a = self._run(dataset_path, centroids0, seed=99)
        b = self._run(dataset_path, centroids0, seed=99)
        assert a == b
        assert a, "expected faults to fire at these rates"

    def test_different_seed_different_trace(
        self, dataset_path, centroids0
    ):
        a = self._run(dataset_path, centroids0, seed=99)
        b = self._run(dataset_path, centroids0, seed=100)
        assert a != b
