"""The communication-avoiding allreduce schedule (``tree`` vs ``rect``).

The contract mirrors the kernel-strategy suite's: the schedule changes
*charged time and wire traffic only*. ``allreduce_sum`` runs the same
deterministic binary-tree pairing under every mode, so summed values
-- and therefore every downstream centroid, assignment and iteration
count -- are bit-identical; what moves is ``sim_ns`` (fewer,
full-payload rounds) and ``bytes_on_wire`` (the replication those
rounds cost, charged honestly). The crossover is deterministic from
the network model: rect wins latency-dominated small payloads, the
ring's pipelined chunks win bandwidth-dominated large ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConvergenceCriteria, knord
from repro.baselines.mpi_pure import mpi_lloyd
from repro.dist import (
    ALLREDUCE_MODES,
    NetworkModel,
    SimComm,
    check_allreduce,
    rect_grid,
)
from repro.errors import CommunicatorError, ConfigError
from repro.runtime.mm import KmeansMM, run_mm_distributed

CRIT = ConvergenceCriteria(max_iters=20)


class TestRectGrid:
    @pytest.mark.parametrize("p,expected", [
        (1, (1, 1)),
        (2, (1, 2)),
        (4, (2, 2)),
        (6, (2, 3)),
        (12, (3, 4)),
        (16, (4, 4)),
    ])
    def test_grid_shapes(self, p, expected):
        r, c = rect_grid(p)
        assert (r, c) == expected
        assert r * c >= p  # the grid covers every rank

    def test_invalid_p(self):
        with pytest.raises(CommunicatorError):
            rect_grid(0)

    @pytest.mark.parametrize("r,c,rounds", [
        (1, 1, 0),
        (1, 2, 1),
        (2, 2, 2),
        (2, 3, 3),
        (4, 4, 4),
    ])
    def test_round_count(self, r, c, rounds):
        assert SimComm._rect_rounds(r, c) == rounds


class TestMode:
    def test_modes_tuple(self):
        assert ALLREDUCE_MODES == ("tree", "rect")

    @pytest.mark.parametrize("mode", ALLREDUCE_MODES)
    def test_check_passthrough(self, mode):
        assert check_allreduce(mode) == mode

    def test_check_rejects(self):
        with pytest.raises(ConfigError, match="allreduce"):
            check_allreduce("butterfly")

    def test_allreduce_ns_rejects(self):
        with pytest.raises(ConfigError):
            SimComm(4).allreduce_ns(1024, mode="butterfly")

    def test_allreduce_sum_rejects(self):
        with pytest.raises(ConfigError):
            SimComm(2).allreduce_sum([np.ones(2)] * 2, mode="butterfly")


class TestTiming:
    def test_single_rank_free_in_every_mode(self):
        comm = SimComm(1)
        assert comm.allreduce_ns(10**6, mode="tree") == 0.0
        assert comm.allreduce_ns(10**6, mode="rect") == 0.0

    def test_rect_formula(self):
        net = NetworkModel(latency_ns=1000, bandwidth=1e9)
        comm = SimComm(16, net)
        rounds = SimComm._rect_rounds(*rect_grid(16))  # 4 x 4 -> 4
        assert comm.allreduce_ns(4096, mode="rect") == pytest.approx(
            rounds * net.message_ns(4096)
        )

    def test_tree_default_unchanged(self):
        """The legacy best-of-tree-and-ring charge is byte-for-byte
        what mode="tree" (and the default) returns."""
        comm = SimComm(16)
        for nbytes in (64, 4096, 10**7):
            legacy = min(comm._tree_ns(nbytes), comm._ring_ns(nbytes))
            assert comm.allreduce_ns(nbytes) == legacy
            assert comm.allreduce_ns(nbytes, mode="tree") == legacy

    def test_rect_wins_small_payloads(self):
        """Latency-dominated regime: ceil(log2 r) + ceil(log2 c)
        rounds beat the tree's 2 ceil(log2 P)."""
        comm = SimComm(16)
        small = 8 * 10 * 64  # a k=10, d=64 centroid payload
        assert comm.allreduce_ns(small, mode="rect") < comm.allreduce_ns(
            small, mode="tree"
        )

    def test_ring_wins_large_payloads(self):
        """Bandwidth-dominated regime: the ring moves 1/P chunks per
        round; rect pays full-payload rounds and loses."""
        comm = SimComm(16)
        big = 64 * 1024 * 1024
        assert comm.allreduce_ns(big, mode="tree") < comm.allreduce_ns(
            big, mode="rect"
        )

    def test_crossover_exists(self):
        """Sweeping payloads crosses from rect-wins to tree-wins."""
        comm = SimComm(16)
        sizes = [2**e for e in range(6, 28)]
        verdicts = [
            comm.allreduce_ns(s, mode="rect") < comm.allreduce_ns(s, mode="tree")
            for s in sizes
        ]
        assert verdicts[0] and not verdicts[-1]


class TestValuesIdentical:
    @pytest.mark.parametrize("p", [2, 4, 6, 16])
    def test_sum_bit_identical_across_modes(self, p):
        rng = np.random.default_rng(p)
        parts = [rng.normal(size=(5, 3)) for _ in range(p)]
        comm = SimComm(p)
        rt = comm.allreduce_sum(parts, mode="tree")
        rr = comm.allreduce_sum(parts, mode="rect")
        np.testing.assert_array_equal(rt.value, rr.value)
        assert rt.sim_ns != rr.sim_ns

    def test_rect_wire_charge(self):
        """rect replicates: nbytes * P * rounds on the wire, vs the
        tree's nbytes * (P - 1)."""
        p = 16
        comm = SimComm(p)
        parts = [np.ones((4, 2)) for _ in range(p)]
        nbytes = parts[0].nbytes
        rounds = SimComm._rect_rounds(*rect_grid(p))
        rt = comm.allreduce_sum(parts, mode="tree")
        rr = comm.allreduce_sum(parts, mode="rect")
        assert rt.bytes_on_wire == nbytes * (p - 1)
        assert rr.bytes_on_wire == nbytes * p * rounds
        assert rr.bytes_on_wire > rt.bytes_on_wire


class TestEndToEnd:
    def test_knord_rect_matches_tree(self, overlapping):
        rt = knord(overlapping, 6, n_machines=4, seed=1, criteria=CRIT)
        rr = knord(overlapping, 6, n_machines=4, seed=1, criteria=CRIT,
                   allreduce="rect")
        np.testing.assert_array_equal(rt.assignment, rr.assignment)
        np.testing.assert_array_equal(rt.centroids, rr.centroids)
        assert rt.iterations == rr.iterations
        assert rt.params["allreduce"] == "tree"
        assert rr.params["allreduce"] == "rect"
        # The schedule swap shows up only in the charged accounting.
        for rec_t, rec_r in zip(rt.records, rr.records):
            assert rec_r.network_bytes > rec_t.network_bytes
            assert rec_r.allreduce_ns != rec_t.allreduce_ns

    def test_knord_rect_saves_latency_at_small_k(self, overlapping):
        """A k=6, d=8 payload is latency-dominated on 10 GbE: the
        rectangular schedule's fewer rounds must charge less."""
        rt = knord(overlapping, 6, n_machines=4, seed=1, criteria=CRIT)
        rr = knord(overlapping, 6, n_machines=4, seed=1, criteria=CRIT,
                   allreduce="rect")
        assert sum(r.allreduce_ns for r in rr.records) < sum(
            r.allreduce_ns for r in rt.records
        )

    def test_knord_rejects_bad_mode(self, overlapping):
        with pytest.raises(ConfigError):
            knord(overlapping, 4, allreduce="butterfly", criteria=CRIT)

    def test_mpi_lloyd_rejects_rect(self, overlapping):
        """The pure-MPI baseline's flat one-rank-per-core space has no
        one-rank-per-machine grid; rect is a typed configuration
        error, not a silent fallback."""
        with pytest.raises(ConfigError, match="tree"):
            mpi_lloyd(overlapping, 4, n_machines=2, ranks_per_machine=4,
                      allreduce="rect", criteria=CRIT)

    def test_mpi_lloyd_tree_still_runs(self, overlapping):
        res = mpi_lloyd(overlapping, 4, n_machines=2, ranks_per_machine=4,
                        allreduce="tree", criteria=CRIT)
        assert res.iterations >= 1

    def test_mm_distributed_rect(self, overlapping):
        rt = run_mm_distributed(
            KmeansMM(overlapping, 6, seed=1, criteria=CRIT), n_machines=4
        )
        rr = run_mm_distributed(
            KmeansMM(overlapping, 6, seed=1, criteria=CRIT), n_machines=4,
            allreduce="rect",
        )
        np.testing.assert_array_equal(rt.assignment, rr.assignment)
        np.testing.assert_array_equal(rt.centroids, rr.centroids)
        assert rr.params["allreduce"] == "rect"
        assert rt.params["allreduce"] == "tree"

    def test_mm_distributed_rejects_bad_mode(self, overlapping):
        with pytest.raises(ConfigError):
            run_mm_distributed(
                KmeansMM(overlapping, 6, seed=1, criteria=CRIT),
                n_machines=4, allreduce="butterfly",
            )
