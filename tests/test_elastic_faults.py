"""Crash-matrix rows where the elastic plane and the fault plane
collide: the fault fires exactly at an elastic transition.

Three rows, each asserted bit-identical to the fault-free fixed-fleet
run (the same contract as ``test_faults_crash_matrix.py``):

* a checkpoint save **crashes mid-flush** while it is the one a
  preemption notice is flushing inside its grace window;
* a **worker crash** lands on the same boundary a joiner is being
  reshard-ed onto;
* the **first allreduce a freshly joined machine participates in**
  carries a corrupted payload.

Run with ``pytest -m faults``.
"""

import numpy as np
import pytest

from repro import ConvergenceCriteria, FaultPlan, knord, knors
from repro.elastic import MembershipEvent, MembershipPlan
from repro.faults import CHECKPOINT_CRASH_POINTS, FaultEvent
from repro.runtime import RecordingObserver

pytestmark = pytest.mark.faults

CRIT = ConvergenceCriteria(max_iters=10)
K = 5


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(31)
    centers = rng.normal(scale=2.5, size=(5, 5))
    x = np.vstack(
        [rng.normal(loc=c, scale=1.6, size=(120, 5)) for c in centers]
    )
    rng.shuffle(x)
    return x


def assert_matches(baseline, faulty):
    np.testing.assert_array_equal(baseline.centroids, faulty.centroids)
    np.testing.assert_array_equal(baseline.assignment, faulty.assignment)
    assert faulty.iterations == baseline.iterations
    assert faulty.converged == baseline.converged


class TestPreemptionNoticeCheckpointCrash:
    """The grace-window flush is itself a checkpoint save; crashing it
    at any durability point must not lose a committed iteration: the
    recovery falls back to the newest *intact* checkpoint and replays
    forward to the identical clustering."""

    PREEMPT_AT, NOTICE = 2, 2  # deadline = 3, flush fires there

    @pytest.mark.parametrize("crash_point", CHECKPOINT_CRASH_POINTS)
    def test_cell(self, dataset, tmp_path, crash_point):
        baseline = knors(dataset, K, seed=3, criteria=CRIT)
        deadline = self.PREEMPT_AT + self.NOTICE - 1
        plan = MembershipPlan.from_schedule([
            MembershipEvent("preempt", self.PREEMPT_AT,
                            notice=self.NOTICE),
        ])
        faults = FaultPlan.from_schedule([
            FaultEvent(site="checkpoint", iteration=deadline,
                       kind=crash_point),
        ])
        rec = RecordingObserver()
        faulty = knors(
            dataset, K, seed=3, criteria=CRIT,
            checkpoint_dir=tmp_path / "ck", checkpoint_interval=2,
            membership=plan, faults=faults, observers=(rec,),
        )
        assert_matches(baseline, faulty)
        # The notice was announced, and the crashed flush was answered
        # by a worker-site recovery (the mid-save crash surfaces as a
        # worker crash).
        assert any(e.name == "preempt_notice" for e in rec.events)
        assert any(
            e.name == "recovery" and e.payload["site"] == "worker"
            for e in rec.events
        )
        # The record stream is continuous: no committed index missing.
        assert [r.iteration for r in faulty.records] == list(
            range(faulty.iterations)
        )


class TestWorkerCrashMidReshardOntoJoiner:
    """A join reshard-s shards onto the new machine at the boundary,
    then the whole fleet's driver crashes on that same boundary. knord
    keeps no checkpoints, so recovery is a from-scratch replay on the
    *post-join* fleet -- and must land on the identical clustering."""

    JOIN_AT = 2

    def test_cell(self, dataset):
        baseline = knord(dataset, K, n_machines=4, seed=3, criteria=CRIT)
        plan = MembershipPlan.from_schedule([
            MembershipEvent("join", self.JOIN_AT),
        ])
        faults = FaultPlan.from_schedule([
            FaultEvent(site="worker", iteration=self.JOIN_AT,
                       kind="crash"),
        ])
        rec = RecordingObserver()
        faulty = knord(
            dataset, K, n_machines=4, seed=3, criteria=CRIT,
            membership=plan, faults=faults, observers=(rec,),
        )
        assert_matches(baseline, faulty)
        names = [e.name for e in rec.events]
        up = names.index("scale_up")
        crash = next(
            i for i, e in enumerate(rec.events)
            if e.name == "fault" and e.payload["site"] == "worker"
        )
        assert up < crash, "the reshard must precede the crash it eats"
        assert any(
            e.name == "recovery" and e.payload["site"] == "worker"
            for e in rec.events
        )
        # The joiner survives the crash: the replay runs on 5 machines.
        assert faulty.records[-1].machines_alive == 5


class TestCorruptionOnJoinersFirstAllreduce:
    """The first collective after a join carries a flipped payload.
    CRC detection must catch it, charge the retransmission, and keep
    the reduced values -- and therefore the clustering -- untouched."""

    JOIN_AT = 2

    def test_cell(self, dataset):
        baseline = knord(dataset, K, n_machines=4, seed=3, criteria=CRIT)
        plan = MembershipPlan.from_schedule([
            MembershipEvent("join", self.JOIN_AT),
        ])
        faults = FaultPlan.from_schedule([
            FaultEvent(site="corruption", iteration=self.JOIN_AT,
                       kind="message"),
        ])
        rec = RecordingObserver()
        faulty = knord(
            dataset, K, n_machines=4, seed=3, criteria=CRIT,
            membership=plan, faults=faults, observers=(rec,),
        )
        assert_matches(baseline, faulty)
        corrupt = [
            e for e in rec.events
            if e.name == "corruption" and e.iteration == self.JOIN_AT
        ]
        assert corrupt, "the corrupted collective was never detected"
        assert any(e.name == "scale_up" for e in rec.events)
        # Detection costs simulated retransmission time on that
        # iteration, never numerics: sim time grew, results did not.
        clean_rec = baseline.records[self.JOIN_AT]
        faulty_rec = faulty.records[self.JOIN_AT]
        assert faulty_rec.sim_ns > clean_rec.sim_ns
