"""Elastic-plane tests: membership churn, preemption, autoscaling,
fair share, and the CLI spec round-trips.

The plane's contract is the same as the fault plane's: elastic events
move simulated time and shard ownership, **never** the clustering. So
every churned run here is compared bit-for-bit against its fixed
twin, and the elastic trace is pinned as a pure function of the plan
seed.

Run with ``pytest -m elastic`` (CI uses ``-p no:randomly``). The
20-plan soak additionally carries the ``chaos`` marker.
"""

import numpy as np
import pytest

from repro import ConvergenceCriteria, FaultPlan, knord, knori, knors
from repro.baselines.mpi_pure import mpi_lloyd
from repro.drivers.knord import knord_loop
from repro.elastic import (
    Autoscaler,
    AutoscalerPolicy,
    FairShareScheduler,
    MembershipEvent,
    MembershipPlan,
    MembershipSpec,
    TenantJob,
    TenantSpec,
    parse_autoscaler,
    parse_membership_spec,
    parse_tenants,
)
from repro.elastic.plan import MEMBERSHIP_SPEC_KEYS, format_membership_spec
from repro.errors import ConfigError, KnorError, NodeFailureError
from repro.faults import (
    FAULT_SPEC_KEYS,
    RETRY_POLICY_KEYS,
    FaultEvent,
    FaultSpec,
    RetryPolicy,
    format_fault_spec,
    format_retry_policy,
    parse_fault_spec,
    parse_retry_policy,
)
from repro.runtime import IterationLoop, RecordingObserver

pytestmark = pytest.mark.elastic


@pytest.fixture(scope="module")
def dataset():
    """Overlapping clusters: enough iterations for mid-run events."""
    rng = np.random.default_rng(23)
    centers = rng.normal(scale=2.5, size=(5, 5))
    x = np.vstack(
        [rng.normal(loc=c, scale=1.6, size=(120, 5)) for c in centers]
    )
    rng.shuffle(x)
    return x


CRIT = ConvergenceCriteria(max_iters=10)
K = 5


def trace_tuples(rec):
    """Hashable view of a run's elastic trace (order-sensitive)."""
    return [
        (e.name, e.iteration, sorted(e.payload.items(), key=str))
        for e in rec.elastic_events()
    ]


# -- spec parsing round-trips (the generated-help satellite) -----------


class TestSpecRoundTrips:
    def test_membership_spec_round_trips(self):
        spec = MembershipSpec(
            join_rate=0.1, leave_rate=0.05, preempt_rate=0.2,
            preempt_notice=3, max_joins=2, max_leaves=1,
            max_preempts=3, min_machines=2, max_machines=8,
        )
        assert parse_membership_spec(format_membership_spec(spec)) == spec

    def test_membership_format_names_every_key(self):
        text = format_membership_spec(MembershipSpec())
        for key in MEMBERSHIP_SPEC_KEYS:
            assert f"{key}=" in text

    def test_membership_unknown_key(self):
        with pytest.raises(ConfigError, match="unknown membership key"):
            parse_membership_spec("join=0.1,banana=2")

    def test_membership_event_validation(self):
        with pytest.raises(ConfigError, match="unknown membership kind"):
            MembershipEvent("reboot", 0)
        with pytest.raises(ConfigError, match="count"):
            MembershipEvent("join", 0, count=0)
        with pytest.raises(ConfigError, match="notice"):
            MembershipEvent("preempt", 0, notice=-1)
        with pytest.raises(ConfigError, match="count=1"):
            MembershipEvent("leave", 0, count=2)

    def test_membership_spec_validation(self):
        with pytest.raises(ConfigError, match="join_rate"):
            MembershipSpec(join_rate=1.5)
        with pytest.raises(ConfigError, match="min_machines"):
            MembershipSpec(min_machines=0)
        with pytest.raises(ConfigError, match="max_machines"):
            MembershipSpec(min_machines=4, max_machines=2)

    def test_autoscaler_spec_parses_every_key(self):
        pol = parse_autoscaler(
            "target_s=0.5,down_s=0.1,alpha=0.5,provision_s=30,"
            "cooldown=4,min=2,max=8,step=2,mem_util=0.8,warmup=1"
        )
        assert pol == AutoscalerPolicy(
            target_iter_s=0.5, scale_down_iter_s=0.1, alpha=0.5,
            provision_s=30.0, cooldown_iters=4, min_machines=2,
            max_machines=8, step=2, mem_utilization=0.8, warmup_iters=1,
        )

    def test_autoscaler_requires_target(self):
        with pytest.raises(ConfigError, match="target_s"):
            parse_autoscaler("max=8")
        with pytest.raises(ConfigError, match="unknown autoscaler key"):
            parse_autoscaler("target_s=1,velocity=9")

    def test_tenants_spec(self):
        specs = parse_tenants("prod=3,batch=1@512")
        assert specs == [
            TenantSpec("prod", weight=3.0),
            TenantSpec("batch", weight=1.0, budget_mb=512.0),
        ]
        with pytest.raises(ConfigError, match="duplicate"):
            parse_tenants("a=1,a=2")
        with pytest.raises(ConfigError, match="malformed"):
            parse_tenants("just-a-name")

    def test_fault_spec_round_trips(self):
        spec = FaultSpec(
            ssd_error_rate=0.05, worker_crash_rate=0.1,
            max_worker_crashes=3, corruption_msg_rate=0.02,
            straggler_factor=6.0,
        )
        assert parse_fault_spec(format_fault_spec(spec)) == spec
        assert parse_fault_spec(format_fault_spec(FaultSpec())) == FaultSpec()

    def test_retry_policy_round_trips(self):
        policy = RetryPolicy(
            max_retries=5, backoff_ns=2e6, timeout_ns=50e6,
            node_failure_mode="abort",
        )
        assert parse_retry_policy(format_retry_policy(policy)) == policy

    def test_key_tuples_are_sorted_and_public(self):
        for keys in (FAULT_SPEC_KEYS, RETRY_POLICY_KEYS,
                     MEMBERSHIP_SPEC_KEYS):
            assert list(keys) == sorted(keys)


# -- plan determinism --------------------------------------------------


def _simulate_poll(plan, iterations=60, start_machines=4):
    """Drive poll() with a locally maintained alive set."""
    alive = list(range(start_machines))
    next_id = start_machines
    fired = []
    for it in range(iterations):
        for ev in plan.poll(it, list(alive)):
            fired.append((ev.kind, it, ev.machine, ev.count, ev.notice))
            if ev.kind == "join":
                for _ in range(ev.count):
                    alive.append(next_id)
                    next_id += 1
            elif ev.machine in alive:
                alive.remove(ev.machine)
    return fired


class TestPlanDeterminism:
    SPEC = MembershipSpec(
        join_rate=0.1, leave_rate=0.1, preempt_rate=0.1,
        max_joins=4, max_leaves=4, max_preempts=4, max_machines=10,
    )

    def test_same_seed_same_events(self):
        a = _simulate_poll(MembershipPlan(self.SPEC, seed=7))
        b = _simulate_poll(MembershipPlan(self.SPEC, seed=7))
        assert a == b
        assert a, "rates this high should fire at least one event"

    def test_different_seed_different_events(self):
        a = _simulate_poll(MembershipPlan(self.SPEC, seed=0))
        b = _simulate_poll(MembershipPlan(self.SPEC, seed=1))
        assert a != b

    def test_worker_preemption_stream_deterministic(self):
        spec = MembershipSpec(preempt_rate=0.2, max_preempts=3)

        def stream(seed):
            plan = MembershipPlan(spec, seed=seed)
            return [
                (it, ev.notice)
                for it in range(50)
                if (ev := plan.worker_preemption(it)) is not None
            ]

        assert stream(5) == stream(5)
        assert stream(5), "preempt_rate=0.2 over 50 draws should fire"

    def test_schedule_is_consumed_once(self):
        plan = MembershipPlan.from_schedule(
            [MembershipEvent("leave", 2, machine=1)]
        )
        assert [e.kind for e in plan.poll(2, [0, 1, 2])] == ["leave"]
        assert plan.poll(2, [0, 2]) == []

    def test_zero_event_plan_reports_disabled(self):
        assert not MembershipPlan.from_schedule([]).any_enabled
        assert MembershipPlan(self.SPEC).any_enabled


# -- zero-event and return-to-initial equivalence ----------------------


class TestZeroEventEquivalence:
    """An event-free plan must leave every backend byte-identical --
    records (simulated time included), centroids, assignment."""

    def assert_identical(self, clean, churned):
        np.testing.assert_array_equal(clean.centroids, churned.centroids)
        np.testing.assert_array_equal(clean.assignment, churned.assignment)
        assert clean.iterations == churned.iterations
        assert [r.sim_ns for r in clean.records] == [
            r.sim_ns for r in churned.records
        ]

    def test_knori(self, dataset):
        clean = knori(dataset, K, seed=3, criteria=CRIT)
        churned = knori(
            dataset, K, seed=3, criteria=CRIT,
            membership=MembershipPlan.from_schedule([]),
        )
        self.assert_identical(clean, churned)

    def test_knors(self, dataset):
        clean = knors(dataset, K, seed=3, criteria=CRIT)
        churned = knors(
            dataset, K, seed=3, criteria=CRIT,
            membership=MembershipPlan.from_schedule([]),
        )
        self.assert_identical(clean, churned)

    def test_knord(self, dataset):
        clean = knord(dataset, K, n_machines=4, seed=3, criteria=CRIT)
        churned = knord(
            dataset, K, n_machines=4, seed=3, criteria=CRIT,
            membership=MembershipPlan.from_schedule([]),
        )
        self.assert_identical(clean, churned)
        assert all(r.machines_alive == 4 for r in churned.records)

    def test_return_to_initial_membership(self, dataset):
        """Leave then join back to the starting fleet size: results
        stay bit-identical (they always do; the point is the fleet
        trace really dipped and recovered)."""
        clean = knord(dataset, K, n_machines=4, seed=3, criteria=CRIT)
        plan = MembershipPlan.from_schedule([
            MembershipEvent("leave", 1, machine=3),
            MembershipEvent("join", 3),
        ])
        churned = knord(
            dataset, K, n_machines=4, seed=3, criteria=CRIT,
            membership=plan,
        )
        np.testing.assert_array_equal(clean.centroids, churned.centroids)
        np.testing.assert_array_equal(clean.assignment, churned.assignment)
        alive = [r.machines_alive for r in churned.records]
        assert min(alive) == 3 and alive[-1] == 4


# -- single-machine preemption (knors / knori) -------------------------


class TestWorkerPreemption:
    def test_noticed_preemption_loses_no_committed_iteration(
        self, dataset, tmp_path
    ):
        """Notice n at iteration t: the loop computes through the
        grace window, flushes a checkpoint after iteration t+n-1, and
        recovery resumes at t+n -- zero replayed boundaries."""
        clean = knors(dataset, K, seed=3, criteria=CRIT)
        rec = RecordingObserver()
        plan = MembershipPlan.from_schedule(
            [MembershipEvent("preempt", 2, notice=2)]
        )
        faulty = knors(
            dataset, K, seed=3, criteria=CRIT,
            checkpoint_dir=tmp_path / "ck", checkpoint_interval=100,
            membership=plan, observers=(rec,),
        )
        np.testing.assert_array_equal(clean.centroids, faulty.centroids)
        np.testing.assert_array_equal(clean.assignment, faulty.assignment)
        # deadline = 2 + 2 - 1 = 3; recovery resumes at 4.
        notices = [e for e in rec.events if e.name == "preempt_notice"]
        assert [e.payload["deadline"] for e in notices] == [3]
        resumes = [
            e for e in rec.events
            if e.name == "recovery" and e.payload["action"] == "resume"
        ]
        assert [e.payload["detail"]["resume_at"] for e in resumes] == [4]
        # One executed boundary per committed record: nothing replayed.
        executed = sum(1 for e in rec.events if e.name == "iteration_end")
        assert executed == faulty.iterations
        assert [r.iteration for r in faulty.records] == list(
            range(faulty.iterations)
        )

    def test_zero_notice_replays_from_checkpoint(self, dataset, tmp_path):
        clean = knors(dataset, K, seed=3, criteria=CRIT)
        rec = RecordingObserver()
        plan = MembershipPlan.from_schedule(
            [MembershipEvent("preempt", 5, notice=0)]
        )
        faulty = knors(
            dataset, K, seed=3, criteria=CRIT,
            checkpoint_dir=tmp_path / "ck", checkpoint_interval=2,
            membership=plan, observers=(rec,),
        )
        np.testing.assert_array_equal(clean.centroids, faulty.centroids)
        np.testing.assert_array_equal(clean.assignment, faulty.assignment)
        preempts = [
            e for e in rec.events
            if e.name == "fault" and e.payload["kind"] == "preempt"
        ]
        assert preempts and preempts[0].payload["detail"]["notice"] == 0
        # Replayed the boundaries after the last periodic checkpoint.
        executed = sum(1 for e in rec.events if e.name == "iteration_end")
        assert executed > faulty.iterations

    def test_knori_preemption_replays_from_scratch(self, dataset):
        """knori keeps no checkpoints: even a noticed preemption has
        nothing to flush, so recovery restarts at iteration 0 -- and
        still lands on the identical clustering."""
        clean = knori(dataset, K, seed=3, criteria=CRIT)
        rec = RecordingObserver()
        plan = MembershipPlan.from_schedule(
            [MembershipEvent("preempt", 2, notice=2)]
        )
        faulty = knori(
            dataset, K, seed=3, criteria=CRIT,
            membership=plan, observers=(rec,),
        )
        np.testing.assert_array_equal(clean.centroids, faulty.centroids)
        resumes = [
            e for e in rec.events
            if e.name == "recovery" and e.payload["action"] == "resume"
        ]
        assert [e.payload["detail"]["resume_at"] for e in resumes] == [0]


# -- distributed membership (knord) ------------------------------------


class TestDistributedMembership:
    @pytest.fixture(scope="class")
    def clean(self, dataset):
        return knord(dataset, K, n_machines=4, seed=3, criteria=CRIT)

    def run_plan(self, dataset, schedule, **kwargs):
        rec = RecordingObserver()
        result = knord(
            dataset, K, n_machines=4, seed=3, criteria=CRIT,
            membership=MembershipPlan.from_schedule(schedule),
            observers=(rec,), **kwargs,
        )
        return result, rec

    def test_join_reshards_onto_new_machine(self, dataset, clean):
        result, rec = self.run_plan(
            dataset, [MembershipEvent("join", 2, count=2)]
        )
        np.testing.assert_array_equal(clean.centroids, result.centroids)
        ups = [e for e in rec.events if e.name == "scale_up"]
        assert [e.payload["machine"] for e in ups] == [4, 5]
        assert [r.machines_alive for r in result.records][-1] == 6

    def test_leave_drains_before_departing(self, dataset, clean):
        result, rec = self.run_plan(
            dataset, [MembershipEvent("leave", 2, machine=1)]
        )
        np.testing.assert_array_equal(clean.centroids, result.centroids)
        downs = [e for e in rec.events if e.name == "scale_down"]
        assert len(downs) == 1 and downs[0].payload["machine"] == 1
        assert downs[0].payload["detail"]["kind"] == "leave"
        assert downs[0].payload["detail"]["drain_ns"] > 0.0
        assert result.records[-1].machines_alive == 3

    def test_noticed_preemption_drains_at_deadline(self, dataset, clean):
        result, rec = self.run_plan(
            dataset, [MembershipEvent("preempt", 2, machine=3, notice=2)]
        )
        np.testing.assert_array_equal(clean.centroids, result.centroids)
        trace = rec.elastic_events()
        assert [e.name for e in trace] == ["preempt_notice", "scale_down"]
        notice, down = trace
        assert notice.iteration == 2 and notice.payload["deadline"] == 3
        # The victim computes through its grace window and drains at
        # the first boundary past the deadline.
        assert down.iteration == 4
        assert down.payload["detail"]["kind"] == "preempt"
        alive = [r.machines_alive for r in result.records]
        assert alive[3] == 4 and alive[4] == 3

    def test_zero_notice_preemption_is_a_node_failure(self, dataset, clean):
        result, rec = self.run_plan(
            dataset, [MembershipEvent("preempt", 2, machine=3, notice=0)]
        )
        np.testing.assert_array_equal(clean.centroids, result.centroids)
        faults = [
            e for e in rec.events
            if e.name == "fault" and e.payload["site"] == "node"
        ]
        assert faults and faults[0].payload["kind"] == "preempt"

    def test_zero_notice_aborts_under_strict_sla(self, dataset):
        strict = parse_retry_policy("node_failure=abort")
        with pytest.raises(NodeFailureError):
            self.run_plan(
                dataset,
                [MembershipEvent("preempt", 2, machine=3, notice=0)],
                retry_policy=strict,
            )

    def test_noticed_preemption_survives_strict_sla(self, dataset, clean):
        strict = parse_retry_policy("node_failure=abort")
        result, _ = self.run_plan(
            dataset,
            [MembershipEvent("preempt", 2, machine=3, notice=2)],
            retry_policy=strict,
        )
        np.testing.assert_array_equal(clean.centroids, result.centroids)

    def test_elastic_trace_is_deterministic(self, dataset):
        spec = MembershipSpec(
            join_rate=0.15, leave_rate=0.15, preempt_rate=0.15,
            max_machines=8,
        )

        def run(seed):
            rec = RecordingObserver()
            result = knord(
                dataset, K, n_machines=4, seed=3, criteria=CRIT,
                membership=MembershipPlan(spec, seed=seed),
                observers=(rec,),
            )
            return result, trace_tuples(rec)

        r1, t1 = run(11)
        r2, t2 = run(11)
        assert t1 == t2
        assert [r.sim_ns for r in r1.records] == [
            r.sim_ns for r in r2.records
        ]


# -- autoscaler unit behavior ------------------------------------------


class TestAutoscaler:
    def test_grants_land_after_provisioning_latency(self):
        pol = AutoscalerPolicy(
            target_iter_s=1.0, provision_s=2.5, cooldown_iters=10,
            warmup_iters=0, step=2, max_machines=8,
        )
        sc = Autoscaler(pol)
        sc.observe(0, 2e9, n_machines=4)   # clock 2s; ready at 4.5s
        assert len(sc.decisions) == 1
        assert sc.decisions[0]["action"] == "request"
        assert sc.decisions[0]["count"] == 2
        assert sc.take_grants() == 0
        sc.observe(1, 2e9, n_machines=4)   # clock 4s: still baking
        assert sc.take_grants() == 0
        sc.observe(2, 2e9, n_machines=4)   # clock 6s: granted
        assert sc.take_grants() == 2
        assert sc.take_grants() == 0
        assert len(sc.decisions) == 1      # cooldown held

    def test_warmup_suppresses_early_decisions(self):
        pol = AutoscalerPolicy(
            target_iter_s=1.0, warmup_iters=3, cooldown_iters=0,
        )
        sc = Autoscaler(pol)
        for it in range(3):
            sc.observe(it, 5e9, n_machines=2)
        assert sc.decisions == []
        sc.observe(3, 5e9, n_machines=2)
        assert len(sc.decisions) == 1

    def test_scale_down_fires_once_per_decision(self):
        pol = AutoscalerPolicy(
            target_iter_s=10.0, scale_down_iter_s=1.0,
            warmup_iters=0, cooldown_iters=5, min_machines=1,
        )
        sc = Autoscaler(pol)
        sc.observe(0, 0.5e9, n_machines=4)
        assert sc.decisions[0]["action"] == "release"
        assert sc.take_scale_down() is True
        assert sc.take_scale_down() is False

    def test_respects_max_machines(self):
        pol = AutoscalerPolicy(
            target_iter_s=1.0, warmup_iters=0, cooldown_iters=0,
            step=4, max_machines=5, provision_s=0.0,
        )
        sc = Autoscaler(pol)
        sc.observe(0, 9e9, n_machines=4)
        assert sc.decisions[0]["count"] == 1

    def test_policy_validation(self):
        with pytest.raises(ConfigError, match="target_iter_s"):
            AutoscalerPolicy(target_iter_s=0.0)
        with pytest.raises(ConfigError, match="scale_down_iter_s"):
            AutoscalerPolicy(target_iter_s=1.0, scale_down_iter_s=2.0)
        with pytest.raises(ConfigError, match="alpha"):
            AutoscalerPolicy(target_iter_s=1.0, alpha=0.0)
        with pytest.raises(ConfigError, match="step"):
            AutoscalerPolicy(target_iter_s=1.0, step=0)

    def test_autoscaled_run_backfills_churn(self):
        """End to end on the distributed backend: after two leaves the
        autoscaler requests capacity, and the grant lands only after
        its simulated provisioning latency.

        Needs its own compute-dominated workload: on the module's tiny
        dataset the allreduce latency dominates, so *losing* ranks
        makes iterations faster and nothing ever trips the target.
        """
        dataset = np.random.default_rng(5).normal(size=(6000, 32))
        clean = knord(dataset, K, n_machines=4, seed=3, criteria=CRIT)
        balanced = float(np.mean([r.sim_ns for r in clean.records])) / 1e9

        def churn():
            return MembershipPlan.from_schedule([
                MembershipEvent("leave", 1, machine=3),
                MembershipEvent("leave", 1, machine=2),
            ])

        sc = Autoscaler(AutoscalerPolicy(
            target_iter_s=1.05 * balanced,
            provision_s=2.0 * balanced,
            cooldown_iters=2, warmup_iters=2, step=2, max_machines=4,
        ))
        rec = RecordingObserver()
        scaled = knord(
            dataset, K, n_machines=4, seed=3, criteria=CRIT,
            membership=churn(), autoscaler=sc, observers=(rec,),
        )
        np.testing.assert_array_equal(clean.centroids, scaled.centroids)
        requests = [
            d for d in sc.decisions if d["action"] == "request"
        ]
        assert requests, "halving the fleet must trip the target"
        ups = [e for e in rec.events if e.name == "scale_up"]
        assert ups and all(
            e.iteration > requests[0]["iteration"] for e in ups
        ), "grants cannot land before the request that bought them"


# -- fair share --------------------------------------------------------


def _tenant_jobs(dataset, specs, **kwargs):
    jobs = []
    for spec in specs:
        loop, _ = knord_loop(
            dataset, K, n_machines=2, seed=3, criteria=CRIT, **kwargs
        )
        jobs.append(TenantJob(spec, loop))
    return jobs


class TestFairShare:
    def test_interleave_is_deterministic_and_weighted(self, dataset):
        specs = [TenantSpec("prod", 3.0), TenantSpec("batch", 1.0)]

        def run():
            sched = FairShareScheduler(_tenant_jobs(dataset, specs))
            outcomes = sched.run()
            return sched.grants, outcomes

        grants1, outcomes = run()
        grants2, _ = run()
        assert grants1 == grants2
        assert all(o.error is None for o in outcomes.values())
        # In the window where both tenants contend, the 3:1 weights
        # bind; identical jobs make the share exact.
        last = {
            name: max(i for i, (g, _) in enumerate(grants1) if g == name)
            for name in ("prod", "batch")
        }
        window = grants1[: min(last.values()) + 1]
        prod = sum(1 for g, _ in window if g == "prod")
        assert prod / len(window) == pytest.approx(0.75, abs=0.05)

    def test_solo_equivalence(self, dataset):
        """A tenant's record stream under interleaving is exactly its
        standalone run's -- the scheduler adds no simulated time."""
        solo_loop, _ = knord_loop(
            dataset, K, n_machines=2, seed=3, criteria=CRIT
        )
        solo = solo_loop.run()
        sched = FairShareScheduler(_tenant_jobs(
            dataset, [TenantSpec("a", 2.0), TenantSpec("b", 1.0)]
        ))
        outcomes = sched.run()
        for out in outcomes.values():
            assert out.result.converged == solo.converged
            assert [r.sim_ns for r in out.result.records] == [
                r.sim_ns for r in solo.records
            ]

    def test_abort_isolation(self, dataset):
        """A tenant whose strict policy aborts on node failure is
        removed from the rotation; the neighbour finishes untouched."""
        flaky_jobs = _tenant_jobs(
            dataset, [TenantSpec("flaky", 1.0)],
            faults=FaultPlan.from_schedule(
                [FaultEvent(site="node", iteration=1, kind="fail")]
            ),
            retry_policy=parse_retry_policy("node_failure=abort"),
        )
        steady_jobs = _tenant_jobs(dataset, [TenantSpec("steady", 1.0)])
        sched = FairShareScheduler(flaky_jobs + steady_jobs)
        outcomes = sched.run()
        assert outcomes["flaky"].error is not None
        assert "NodeFailureError" in outcomes["flaky"].error
        assert outcomes["steady"].error is None
        assert outcomes["steady"].result is not None
        assert outcomes["steady"].result.iterations == CRIT.max_iters

    def test_scheduler_validation(self, dataset):
        with pytest.raises(ConfigError, match=">= 1 tenant"):
            FairShareScheduler([])
        jobs = _tenant_jobs(
            dataset, [TenantSpec("a", 1.0)]
        ) + _tenant_jobs(dataset, [TenantSpec("a", 1.0)])
        with pytest.raises(ConfigError, match="duplicate"):
            FairShareScheduler(jobs)


# -- wiring guards -----------------------------------------------------


class TestWiring:
    def test_loop_refuses_double_wired_plan(self, dataset):
        loop, _ = knord_loop(
            dataset, K, n_machines=2, seed=3, criteria=CRIT,
            membership=MembershipPlan.from_schedule([]),
        )
        with pytest.raises(ConfigError, match="exactly one consumer"):
            IterationLoop(
                loop.backend, criteria=CRIT,
                membership=MembershipPlan.from_schedule([]),
            )

    def test_pure_mpi_rejects_elastic(self, dataset):
        with pytest.raises(ConfigError, match="fixed-rank"):
            mpi_lloyd(
                dataset, K, n_machines=2, seed=3, criteria=CRIT,
                membership=MembershipPlan.from_schedule([]),
            )


# -- CLI help is generated from the parsers' own key lists -------------


class TestCliHelp:
    def _help(self, capsys, *argv):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([*argv, "--help"])
        return capsys.readouterr().out

    def test_knord_help_names_every_spec_key(self, capsys):
        from repro.elastic.autoscaler import AUTOSCALER_KEYS

        text = self._help(capsys, "knord")
        for key in (*FAULT_SPEC_KEYS, *RETRY_POLICY_KEYS,
                    *MEMBERSHIP_SPEC_KEYS, *AUTOSCALER_KEYS):
            assert key in text, f"help omits spec key {key!r}"
        assert "--tenants" in text and "--elastic-plan" in text

    def test_single_machine_help_has_elastic_plan(self, capsys):
        for cmd in ("knori", "knors"):
            text = self._help(capsys, cmd)
            assert "--elastic-plan" in text
            assert "--elastic-seed" in text


# -- 20-plan chaos soak ------------------------------------------------


@pytest.mark.chaos
class TestElasticChaosSoak:
    """Seeded membership specs over knord: every plan either lands on
    the bit-identical clustering or aborts with a typed KnorError."""

    MASTER_SEED = 77
    N_PLANS = 20

    def test_soak(self, dataset):
        clean = knord(dataset, K, n_machines=4, seed=3, criteria=CRIT)
        aborted = 0
        for i in range(self.N_PLANS):
            rng = np.random.default_rng([self.MASTER_SEED, i])
            spec = MembershipSpec(
                join_rate=float(rng.uniform(0.0, 0.3)),
                leave_rate=float(rng.uniform(0.0, 0.3)),
                preempt_rate=float(rng.uniform(0.0, 0.3)),
                preempt_notice=int(rng.integers(0, 3)),
                max_joins=int(rng.integers(1, 4)),
                max_leaves=int(rng.integers(1, 3)),
                max_preempts=int(rng.integers(1, 3)),
                max_machines=8,
            )
            strict = bool(rng.integers(0, 2))
            policy = (
                parse_retry_policy("node_failure=abort") if strict
                else None
            )
            try:
                rec = RecordingObserver()
                result = knord(
                    dataset, K, n_machines=4, seed=3, criteria=CRIT,
                    membership=MembershipPlan(spec, seed=i),
                    retry_policy=policy, observers=(rec,),
                )
            except KnorError:
                aborted += 1
                continue
            np.testing.assert_array_equal(
                clean.centroids, result.centroids,
                err_msg=f"plan {i} changed the clustering",
            )
            np.testing.assert_array_equal(
                clean.assignment, result.assignment
            )
            if i % 5 == 0:
                rec2 = RecordingObserver()
                knord(
                    dataset, K, n_machines=4, seed=3, criteria=CRIT,
                    membership=MembershipPlan(spec, seed=i),
                    retry_policy=policy, observers=(rec2,),
                )
                assert trace_tuples(rec) == trace_tuples(rec2), (
                    f"plan {i}'s elastic trace is not deterministic"
                )
        # With these rates a good fraction of plans must actually churn.
        assert aborted < self.N_PLANS
