"""Baselines: serial strategies, naive parallel, frameworks, MPI,
mini-batch."""

import numpy as np
import pytest

from repro import ConvergenceCriteria, knord, knori, lloyd
from repro.baselines import (
    FRAMEWORKS,
    framework_kmeans,
    gemm_kmeans,
    iterative_kmeans,
    minibatch_kmeans,
    mpi_lloyd,
    naive_parallel_lloyd,
    time_serial_iteration,
)
from repro.baselines.gemm import SERIAL_STRATEGIES
from repro.core import init_centroids
from repro.errors import ConfigError, DatasetError

CRIT = ConvergenceCriteria(max_iters=20)


class TestSerialStrategies:
    def test_both_match_lloyd(self, overlapping):
        c0 = init_centroids(overlapping, 6, "random", seed=1)
        ref = lloyd(overlapping, 6, init=c0)
        it = iterative_kmeans(overlapping, 6, init=c0)
        ge = gemm_kmeans(overlapping, 6, init=c0)
        np.testing.assert_array_equal(it.assignment, ref.assignment)
        np.testing.assert_array_equal(ge.assignment, ref.assignment)

    def test_wall_clock_recorded(self, overlapping):
        res = iterative_kmeans(overlapping, 4, seed=0, criteria=CRIT)
        assert res.params["time_kind"] == "wall_clock"
        assert all(r.sim_ns > 0 for r in res.records)

    def test_time_serial_iteration_positive(self, overlapping):
        t_it = time_serial_iteration(overlapping, 5, "iterative")
        t_ge = time_serial_iteration(overlapping, 5, "gemm")
        assert t_it > 0 and t_ge > 0

    def test_unknown_strategy(self, overlapping):
        with pytest.raises(Exception):
            time_serial_iteration(overlapping, 5, "quantum")

    def test_unknown_strategy_typed_and_validated_first(self):
        """Satellite regression: the strategy check runs before any
        work -- with k too large to even initialize centroids, a bad
        strategy must still fail as DatasetError, never as the
        downstream init error."""
        tiny = np.zeros((2, 2))
        with pytest.raises(DatasetError, match="unknown strategy"):
            time_serial_iteration(tiny, 100, "quantum")

    def test_known_strategies_exported(self):
        assert SERIAL_STRATEGIES == ("iterative", "gemm")

    def test_gemm_hoists_row_norms(self, overlapping):
        """The hoisted x_sq path gives the same assignment stream as
        lloyd (norms are iteration-invariant and per-row exact)."""
        c0 = init_centroids(overlapping, 5, "random", seed=3)
        ge = gemm_kmeans(overlapping, 5, init=c0, criteria=CRIT)
        ref = lloyd(overlapping, 5, init=c0, criteria=CRIT)
        np.testing.assert_array_equal(ge.assignment, ref.assignment)
        assert ge.iterations == ref.iterations


class TestNaiveParallel:
    def test_matches_lloyd_numerics(self, overlapping):
        c0 = init_centroids(overlapping, 6, "random", seed=1)
        ref = lloyd(overlapping, 6, init=c0)
        res = naive_parallel_lloyd(overlapping, 6, init=c0)
        np.testing.assert_array_equal(res.assignment, ref.assignment)

    def test_slower_than_pll(self, friendster_small):
        naive = naive_parallel_lloyd(
            friendster_small, 8, seed=1, criteria=CRIT, n_threads=48
        )
        pll = knori(friendster_small, 8, pruning=None, seed=1,
                    criteria=CRIT, n_threads=48)
        assert naive.sim_seconds > pll.sim_seconds

    def test_lock_penalty_worsens_with_threads_over_k(self,
                                                      friendster_small):
        """The paper: interference worsens as T grows relative to k."""
        crit = ConvergenceCriteria(max_iters=5)
        t8 = naive_parallel_lloyd(friendster_small, 4, seed=1,
                                  criteria=crit, n_threads=8)
        t48 = naive_parallel_lloyd(friendster_small, 4, seed=1,
                                   criteria=crit, n_threads=48)
        # Per-row phase-II cost grows with contention, eating the
        # parallel speedup: 6x threads buys far less than 6x.
        assert t8.sim_seconds / t48.sim_seconds < 4.0


class TestFrameworks:
    def test_numerics_match_lloyd(self, overlapping):
        c0 = init_centroids(overlapping, 5, "random", seed=2)
        ref = lloyd(overlapping, 5, init=c0)
        for name in FRAMEWORKS:
            res = framework_kmeans(overlapping, 5, name, init=c0)
            np.testing.assert_array_equal(res.assignment, ref.assignment)

    def test_order_of_magnitude_gap(self, friendster_small):
        kn = knori(friendster_small, 8, pruning=None, seed=1,
                   criteria=CRIT)
        ml = framework_kmeans(friendster_small, 8, "mllib", seed=1,
                              criteria=CRIT)
        ratio = ml.sim_seconds / kn.sim_seconds
        assert ratio > 5.0  # "no less than an order of magnitude" at scale

    def test_turi_slowest(self, friendster_small):
        times = {
            name: framework_kmeans(
                friendster_small, 8, name, seed=1, criteria=CRIT
            ).sim_seconds
            for name in FRAMEWORKS
        }
        assert times["turi"] > times["mllib"] > times["h2o"]

    def test_memory_multipliers(self, overlapping):
        data = overlapping.size * 8
        ml = framework_kmeans(overlapping, 5, "mllib", seed=0,
                              criteria=CRIT)
        assert ml.memory_breakdown["framework_resident"] == int(8.0 * data)

    def test_distributed_mode_charges_network(self, overlapping):
        res = framework_kmeans(
            overlapping, 5, "mllib", n_machines=4, seed=0, criteria=CRIT
        )
        assert res.algorithm == "MLlib-EC2"
        assert all(r.network_bytes > 0 for r in res.records)

    def test_unknown_framework(self, overlapping):
        with pytest.raises(ConfigError):
            framework_kmeans(overlapping, 5, "sklearn")


class TestMpiPure:
    def test_matches_knord_numerics(self, overlapping):
        c0 = init_centroids(overlapping, 6, "random", seed=1)
        kd = knord(overlapping, 6, n_machines=2, init=c0)
        mp = mpi_lloyd(overlapping, 6, n_machines=2,
                       ranks_per_machine=4, init=c0)
        np.testing.assert_array_equal(mp.assignment, kd.assignment)
        assert mp.algorithm == "MPI"

    def test_knord_faster_at_scale(self):
        from repro.data import rand_multivariate

        x = rand_multivariate(100_000, 16, seed=3)
        crit = ConvergenceCriteria(max_iters=5)
        kd = knord(x, 8, n_machines=3, pruning=None, seed=1,
                   criteria=crit)
        mp = mpi_lloyd(x, 8, n_machines=3, pruning=None, seed=1,
                       criteria=crit)
        ratio = mp.sim_seconds / kd.sim_seconds
        assert ratio > 1.1  # paper: 20-50% knord advantage

    def test_pruning_variants(self, overlapping):
        crit = ConvergenceCriteria(max_iters=5)
        a = mpi_lloyd(overlapping, 4, n_machines=2, ranks_per_machine=4,
                      seed=0, criteria=crit)
        b = mpi_lloyd(overlapping, 4, n_machines=2, ranks_per_machine=4,
                      pruning=None, seed=0, criteria=crit)
        assert a.algorithm == "MPI"
        assert b.algorithm == "MPI-"
        assert a.total_dist_computations <= b.total_dist_computations

    def test_elkan_rejected(self, overlapping):
        with pytest.raises(ConfigError):
            mpi_lloyd(overlapping, 4, pruning="elkan",
                      ranks_per_machine=2)


class TestMinibatch:
    def test_runs_and_approximates(self, blobs):
        exact = lloyd(blobs, 4, init="kmeans++", seed=0)
        mb = minibatch_kmeans(blobs, 4, batch_size=256, n_steps=50,
                              init="kmeans++", seed=0)
        # Approximate but not wildly off on easy data.
        assert mb.inertia < 3.0 * exact.inertia

    def test_fewer_computations_than_exact(self, overlapping):
        mb = minibatch_kmeans(overlapping, 5, batch_size=100, n_steps=10)
        assert mb.total_dist_computations == 10 * 100 * 5

    def test_validation(self, blobs):
        with pytest.raises(ConfigError):
            minibatch_kmeans(blobs, 3, batch_size=0)
        with pytest.raises(ConfigError):
            minibatch_kmeans(blobs, 3, n_steps=0)
