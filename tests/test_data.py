"""Datasets: generators, registry, and the on-disk matrix format."""

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    MatrixFile,
    friendster_like,
    king_like,
    load_dataset,
    rand_multivariate,
    rand_univariate,
    read_matrix,
    write_matrix,
)
from repro.data.friendster import rmat_edges
from repro.errors import DatasetError


class TestSynthetic:
    def test_rm_shape_and_determinism(self):
        a = rand_multivariate(500, 16, seed=1)
        b = rand_multivariate(500, 16, seed=1)
        assert a.shape == (500, 16)
        np.testing.assert_array_equal(a, b)
        c = rand_multivariate(500, 16, seed=2)
        assert not np.array_equal(a, c)

    def test_rm_has_cluster_structure(self):
        x = rand_multivariate(2000, 8, n_components=4, spread=10.0, seed=0)
        # Spread-10 means vs scale-1 noise: total variance far exceeds
        # within-component variance.
        assert x.var() > 10.0

    def test_ru_uniform_range(self):
        x = rand_univariate(1000, 4, seed=0)
        assert x.min() >= 0.0
        assert x.max() < 1.0
        assert abs(x.mean() - 0.5) < 0.05

    def test_validation(self):
        with pytest.raises(DatasetError):
            rand_multivariate(0, 4)
        with pytest.raises(DatasetError):
            rand_univariate(10, 0)
        with pytest.raises(DatasetError):
            rand_multivariate(10, 4, n_components=0)


class TestFriendster:
    def test_rmat_power_law_degrees(self):
        edges = rmat_edges(12, 16, seed=0)
        deg = np.bincount(edges.ravel())
        deg = deg[deg > 0]
        # Heavy tail: max degree far above the mean.
        assert deg.max() > 20 * deg.mean()

    def test_rmat_validation(self):
        with pytest.raises(DatasetError):
            rmat_edges(0, 8)
        with pytest.raises(DatasetError):
            rmat_edges(10, 8, a=0.9, b=0.2, c=0.2)

    def test_embedding_shape_and_cache(self, friendster_small):
        assert friendster_small.shape == (4096, 8)
        again = friendster_like(4096, 8)
        np.testing.assert_array_equal(friendster_small, again)

    def test_truncation(self):
        x = friendster_like(3000, 4)
        assert x.shape == (3000, 4)

    def test_king_differs_from_friendster(self):
        a = friendster_like(2048, 8)
        b = king_like(2048, 8)
        assert not np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(DatasetError):
            friendster_like(4, 8)
        with pytest.raises(DatasetError):
            friendster_like(1024, 0)


class TestRegistry:
    def test_table2_entries_present(self):
        for name in (
            "friendster-8", "friendster-32", "rm-856m", "rm-1b", "ru-2b",
        ):
            assert name in DATASETS

    def test_paper_dimensions_preserved(self):
        assert DATASETS["friendster-8"].d == 8
        assert DATASETS["friendster-32"].d == 32
        assert DATASETS["rm-856m"].d == 16
        assert DATASETS["rm-1b"].d == 32
        assert DATASETS["ru-2b"].d == 64

    def test_load_scaled(self):
        x = load_dataset("rm-856m", n=512)
        assert x.shape == (512, 16)

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            load_dataset("imagenet")

    def test_too_small_n(self):
        with pytest.raises(DatasetError):
            load_dataset("ru-2b", n=4)


class TestMatrixFile:
    def test_roundtrip(self, tmp_path):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 7))
        path = write_matrix(tmp_path / "m.knor", x)
        back = read_matrix(path)
        np.testing.assert_array_equal(back, x)

    def test_float32_roundtrip(self, tmp_path):
        x = np.ones((10, 3), dtype=np.float32)
        path = write_matrix(tmp_path / "m32.knor", x)
        mf = MatrixFile(path)
        assert mf.dtype == np.float32
        np.testing.assert_array_equal(mf.read_rows(None), x)

    def test_row_access(self, tmp_path):
        x = np.arange(60, dtype=np.float64).reshape(20, 3)
        path = write_matrix(tmp_path / "rows.knor", x)
        with MatrixFile(path) as mf:
            got = mf.read_rows(np.array([0, 5, 19]))
            np.testing.assert_array_equal(got, x[[0, 5, 19]])
            assert mf.row_bytes == 24
            assert mf.byte_range_of_row(5) == (120, 144)

    def test_row_out_of_range(self, tmp_path):
        path = write_matrix(tmp_path / "m.knor", np.zeros((5, 2)))
        mf = MatrixFile(path)
        with pytest.raises(DatasetError):
            mf.byte_range_of_row(5)

    def test_bad_magic(self, tmp_path):
        p = tmp_path / "bad.knor"
        p.write_bytes(b"NOPE" + b"\0" * 100)
        with pytest.raises(DatasetError):
            MatrixFile(p)

    def test_truncated_file(self, tmp_path):
        x = np.zeros((100, 8))
        path = write_matrix(tmp_path / "t.knor", x)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(DatasetError):
            MatrixFile(path)

    def test_truncated_header(self, tmp_path):
        p = tmp_path / "h.knor"
        p.write_bytes(b"KN")
        with pytest.raises(DatasetError):
            MatrixFile(p)

    def test_unsupported_dtype(self, tmp_path):
        with pytest.raises(DatasetError):
            write_matrix(tmp_path / "i.knor", np.zeros((3, 3), dtype=int))

    def test_non_2d_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            write_matrix(tmp_path / "v.knor", np.zeros(5))
