"""The serving plane's correctness/latency contract.

Four pinned properties:

* **Streaming == batch.** ``MiniBatchMM`` on any backend is
  bit-identical to the standalone ``minibatch_kmeans`` baseline, and
  the vectorized ``minibatch_update`` is bit-identical to the frozen
  legacy per-row loop (same per-bucket summation order).
* **Serve == batch.** With no ingest traffic, serve-path assignments
  equal a batch ``nearest_centroid`` over the same rows -- across
  seeds, dtypes, and the k=1 / d=1 edges.
* **Latency is a pure function of the arrival seed.** Same seed =>
  byte-identical JSON rollup (p50/p99/p999 included); the percentile
  estimator is nearest-rank, no interpolation.
* **Caches shape time, never answers.** Hot rows hit the RowCache
  (visible via ``repro.metrics.row_cache_occupancy``), cold queries
  charge SSD simulated time, and cache-on vs cache-off results are
  identical.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConvergenceCriteria
from repro.baselines.minibatch import minibatch_kmeans, minibatch_update
from repro.core.distance import nearest_centroid
from repro.errors import ConfigError, DatasetError
from repro.metrics import (
    latency_percentiles,
    latency_summary,
    row_cache_occupancy,
)
from repro.perf import legacy
from repro.runtime import (
    RecordingObserver,
    run_mm_distributed,
    run_mm_inmemory,
    run_mm_sem,
)
from repro.serve import MiniBatchMM, ServePlane
from repro.simhw import ArrivalProcess, OpenLoopBatcher

K = 6
SEED = 3


@pytest.fixture(scope="module")
def served(blobs):
    """A fitted model over the shared blobs dataset, serving-ready."""
    x = np.ascontiguousarray(blobs)
    algo = MiniBatchMM(x, 4, batch_size=256, n_steps=12, seed=SEED)
    fit = run_mm_inmemory(algo)
    return x, fit, algo


class TestMinibatchUpdate:
    """Satellite: the vectorized Sculley fold vs the frozen loop."""

    @pytest.mark.parametrize("seed", range(6))
    def test_bit_identical_to_legacy(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(1, 9))
        d = int(rng.integers(1, 6))
        m = int(rng.integers(1, 400))
        batch = rng.normal(size=(m, d))
        assign = rng.integers(0, k, size=m).astype(np.int32)
        centroids = rng.normal(size=(k, d))
        counts = rng.integers(0, 7, size=k).astype(np.int64)
        c_new, n_new = centroids.copy(), counts.copy()
        c_old, n_old = centroids.copy(), counts.copy()
        minibatch_update(c_new, n_new, batch, assign)
        legacy.minibatch_update(c_old, n_old, batch, assign)
        np.testing.assert_array_equal(c_new, c_old)
        np.testing.assert_array_equal(n_new, n_old)

    def test_empty_batch_is_noop(self):
        c = np.ones((3, 2))
        n = np.zeros(3, dtype=np.int64)
        minibatch_update(
            c, n, np.empty((0, 2)), np.empty(0, dtype=np.int64)
        )
        np.testing.assert_array_equal(c, np.ones((3, 2)))
        assert n.sum() == 0

    def test_single_center_takes_whole_batch(self):
        """k=1: every row folds into the one centroid, in order."""
        rng = np.random.default_rng(0)
        batch = rng.normal(size=(50, 3))
        c_new = np.zeros((1, 3))
        c_old = np.zeros((1, 3))
        n_new = np.zeros(1, dtype=np.int64)
        n_old = np.zeros(1, dtype=np.int64)
        assign = np.zeros(50, dtype=np.int64)
        minibatch_update(c_new, n_new, batch, assign)
        legacy.minibatch_update(c_old, n_old, batch, assign)
        np.testing.assert_array_equal(c_new, c_old)
        assert n_new[0] == 50


class TestMiniBatchMM:
    """The streaming driver vs its baseline, across backends."""

    def test_matches_baseline_bit_identical(self, blobs):
        ref = minibatch_kmeans(
            blobs, K, batch_size=200, n_steps=10, seed=SEED
        )
        res = run_mm_inmemory(
            MiniBatchMM(blobs, K, batch_size=200, n_steps=10,
                        seed=SEED)
        )
        np.testing.assert_array_equal(res.centroids, ref.centroids)
        np.testing.assert_array_equal(res.assignment, ref.assignment)
        assert res.inertia == ref.inertia
        assert res.iterations == ref.iterations == 10
        assert not res.converged

    def test_bit_identical_across_backends(self, blobs):
        def build():
            return MiniBatchMM(
                blobs, K, batch_size=200, n_steps=8, seed=SEED
            )

        ri = run_mm_inmemory(build())
        rs = run_mm_sem(build())
        rd = run_mm_distributed(build(), n_machines=4)
        for other in (rs, rd):
            np.testing.assert_array_equal(
                ri.centroids, other.centroids
            )
            np.testing.assert_array_equal(
                ri.assignment, other.assignment
            )
            assert other.iterations == ri.iterations
        assert rs.records[0].bytes_read > 0

    def test_sem_fetches_only_the_batch(self, blobs):
        """The streaming I/O shape: each step requests at most the
        sampled batch, not the dataset."""
        res = run_mm_sem(
            MiniBatchMM(blobs, K, batch_size=64, n_steps=6, seed=SEED),
            row_cache_bytes=0, page_cache_bytes=0,
        )
        row_bytes = blobs.shape[1] * 8
        for r in res.records:
            assert 0 < r.rows_active <= 64
            assert 0 < r.bytes_requested <= 64 * row_bytes

    def test_checkpoint_resume_bit_identical(self, blobs, tmp_path):
        """Acceptance: v4 checkpoint restore (RNG state included)
        resumes the sample stream mid-sequence, bit-identically."""
        def build(n_steps):
            return MiniBatchMM(
                blobs, K, batch_size=200, n_steps=n_steps, seed=SEED
            )

        full = run_mm_sem(build(12))
        ck = tmp_path / "ck"
        run_mm_sem(build(6), checkpoint_dir=ck, checkpoint_interval=3)
        resumed = run_mm_sem(
            build(12), checkpoint_dir=ck, checkpoint_interval=3,
            resume=True,
        )
        np.testing.assert_array_equal(
            full.centroids, resumed.centroids
        )
        np.testing.assert_array_equal(
            full.assignment, resumed.assignment
        )
        assert full.inertia == resumed.inertia

    def test_criteria_budget_matches_n_steps(self, blobs):
        """The generic CLI path (criteria=...) and the explicit
        n_steps spelling produce the same run."""
        a = run_mm_inmemory(
            MiniBatchMM(blobs, K, batch_size=200, n_steps=9, seed=SEED)
        )
        b = run_mm_inmemory(
            MiniBatchMM(
                blobs, K, batch_size=200, seed=SEED,
                criteria=ConvergenceCriteria(max_iters=9),
            )
        )
        np.testing.assert_array_equal(a.centroids, b.centroids)
        assert a.iterations == b.iterations == 9

    def test_reset_restores_the_sample_stream(self, blobs):
        algo = MiniBatchMM(
            blobs, K, batch_size=100, n_steps=5, seed=SEED
        )
        first = run_mm_inmemory(algo)
        algo.reset()
        second = run_mm_inmemory(algo)
        np.testing.assert_array_equal(
            first.centroids, second.centroids
        )

    def test_rejects_bad_config(self, blobs):
        with pytest.raises(DatasetError):
            MiniBatchMM(np.zeros(5), 2)
        with pytest.raises(DatasetError):
            MiniBatchMM(blobs[:3], 5)
        with pytest.raises(ConfigError):
            MiniBatchMM(blobs, K, batch_size=0)
        with pytest.raises(ConfigError):
            MiniBatchMM(blobs, K, n_steps=0)


class TestArrivalProcess:
    def test_same_seed_same_trace(self):
        a = ArrivalProcess(n_arrivals=500, seed=7).generate(100)
        b = ArrivalProcess(n_arrivals=500, seed=7).generate(100)
        np.testing.assert_array_equal(a.time_ns, b.time_ns)
        np.testing.assert_array_equal(a.row, b.row)
        np.testing.assert_array_equal(a.is_ingest, b.is_ingest)

    def test_ingest_fraction_leaves_times_and_rows_alone(self):
        """Flipping query traffic to mixed traffic must not perturb
        when arrivals land or which rows they touch."""
        q = ArrivalProcess(n_arrivals=500, seed=7).generate(100)
        m = ArrivalProcess(
            n_arrivals=500, seed=7, ingest_fraction=0.4
        ).generate(100)
        np.testing.assert_array_equal(q.time_ns, m.time_ns)
        np.testing.assert_array_equal(q.row, m.row)
        assert not q.is_ingest.any()
        assert 0 < m.is_ingest.sum() < 500

    def test_skew_concentrates_on_low_rows(self):
        flat = ArrivalProcess(
            n_arrivals=4000, seed=1, skew=1.0
        ).generate(1000)
        hot = ArrivalProcess(
            n_arrivals=4000, seed=1, skew=4.0
        ).generate(1000)
        assert hot.row.mean() < flat.row.mean()
        assert np.unique(hot.row).size < np.unique(flat.row).size

    def test_rows_in_range(self):
        t = ArrivalProcess(n_arrivals=2000, seed=2).generate(7)
        assert t.row.min() >= 0 and t.row.max() < 7

    def test_validation(self):
        with pytest.raises(ConfigError):
            ArrivalProcess(n_arrivals=0)
        with pytest.raises(ConfigError):
            ArrivalProcess(n_arrivals=10, rate_qps=0)
        with pytest.raises(ConfigError):
            ArrivalProcess(n_arrivals=10, ingest_fraction=1.5)
        with pytest.raises(ConfigError):
            ArrivalProcess(n_arrivals=10, skew=0.0)


class TestOpenLoopBatcher:
    def test_single_arrival_latency(self):
        b = OpenLoopBatcher(
            np.array([100.0]), max_batch=8, window_ns=50.0
        )
        lo, hi, dispatch = b.next_batch()
        assert (lo, hi) == (0, 1)
        assert dispatch == 150.0
        done = b.complete(25.0)
        assert done == 175.0
        assert b.latency_ns[0] == 75.0  # window + service
        assert b.next_batch() is None

    def test_window_coalesces_concurrent_arrivals(self):
        times = np.array([0.0, 10.0, 20.0, 500.0])
        b = OpenLoopBatcher(times, max_batch=8, window_ns=50.0)
        lo, hi, _ = b.next_batch()
        assert (lo, hi) == (0, 3)  # 500 is past the window
        b.complete(5.0)
        lo, hi, _ = b.next_batch()
        assert (lo, hi) == (3, 4)

    def test_max_batch_caps_a_burst(self):
        times = np.zeros(10)
        b = OpenLoopBatcher(times, max_batch=4, window_ns=100.0)
        sizes = []
        while (batch := b.next_batch()) is not None:
            sizes.append(batch[1] - batch[0])
            b.complete(1.0)
        assert sizes == [4, 4, 2]

    def test_queueing_delay_carries_forward(self):
        """A slow batch delays the next arrival's start (open loop:
        the arrivals keep coming regardless)."""
        times = np.array([0.0, 10.0])
        b = OpenLoopBatcher(times, max_batch=1, window_ns=0.0)
        b.next_batch()
        b.complete(1000.0)  # finishes at t=1000
        _, _, dispatch = b.next_batch()
        assert dispatch == 1000.0  # not 10.0
        b.complete(10.0)
        assert b.latency_ns[1] == 1000.0

    def test_protocol_misuse_raises(self):
        b = OpenLoopBatcher(np.array([0.0]))
        with pytest.raises(ConfigError):
            b.complete(1.0)
        b.next_batch()
        with pytest.raises(ConfigError):
            b.next_batch()

    def test_validation(self):
        with pytest.raises(ConfigError):
            OpenLoopBatcher(np.array([2.0, 1.0]))
        with pytest.raises(ConfigError):
            OpenLoopBatcher(np.empty(0))
        with pytest.raises(ConfigError):
            OpenLoopBatcher(np.array([0.0]), max_batch=0)


class TestLatencyPercentiles:
    def test_nearest_rank_known_values(self):
        lat = np.arange(1, 1001, dtype=np.float64)
        p = latency_percentiles(lat)
        assert p == {"p50": 500.0, "p99": 990.0, "p999": 999.0}

    def test_every_value_is_observed(self):
        rng = np.random.default_rng(0)
        lat = rng.exponential(size=137)
        p = latency_percentiles(lat)
        assert set(p) == {"p50", "p99", "p999"}
        assert all(v in lat for v in p.values())

    def test_summary_shape(self):
        s = latency_summary(np.array([1.0, 2.0, 3.0]))
        assert s["n"] == 3
        assert s["mean_ns"] == 2.0
        assert s["max_ns"] == 3.0
        assert s["p999"] == 3.0

    def test_rejects_empty_and_bad_quantiles(self):
        with pytest.raises(ConfigError):
            latency_percentiles(np.empty(0))
        with pytest.raises(ConfigError):
            latency_percentiles(np.array([1.0]), quantiles=(0.0,))


class TestServeMatchesBatch:
    """Property sweep: the serve path is just nearest_centroid."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize(
        "k,d", [(1, 3), (5, 1), (7, 4)],
        ids=["k1", "d1", "k7d4"],
    )
    def test_assignments_equal_batch_path(self, seed, k, d):
        rng = np.random.default_rng(seed)
        x = np.ascontiguousarray(rng.normal(size=(300, d)))
        centroids = rng.normal(size=(k, d))
        plane = ServePlane(x, centroids)
        res = plane.serve(ArrivalProcess(
            n_arrivals=1200, rate_qps=300_000.0, seed=seed,
        ))
        batch_assign, _ = nearest_centroid(x, centroids)
        np.testing.assert_array_equal(
            res.assignments, batch_assign[res.rows]
        )
        assert res.n_ingested == 0
        assert res.n_queries == 1200

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_dtype_insensitive(self, dtype):
        """Both paths promote to float64; float32 input agrees."""
        rng = np.random.default_rng(5)
        x64 = rng.normal(size=(200, 3))
        x = np.ascontiguousarray(x64.astype(dtype))
        centroids = rng.normal(size=(4, 3))
        res = ServePlane(x, centroids).serve(
            ArrivalProcess(n_arrivals=600, rate_qps=300_000.0, seed=9)
        )
        expect, _ = nearest_centroid(
            np.asarray(x, dtype=np.float64), centroids
        )
        np.testing.assert_array_equal(
            res.assignments, expect[res.rows]
        )

    def test_ingest_continues_the_sculley_schedule(self, served):
        """Serving a mixed stream folds ingests with the same update
        the training driver uses: replaying the ingest arrivals
        through minibatch_update reproduces the served centroids."""
        x, fit, algo = served
        proc = ArrivalProcess(
            n_arrivals=800, rate_qps=300_000.0, seed=4,
            ingest_fraction=0.5,
        )
        plane = ServePlane(
            x, fit.centroids, counts=algo.counts.copy()
        )
        res = plane.serve(proc)
        assert res.n_ingested > 0

        # Replay: same batches, same fold, by hand.
        trace = proc.generate(x.shape[0])
        batcher = OpenLoopBatcher(
            trace.time_ns, max_batch=256, window_ns=50_000.0
        )
        centroids = fit.centroids.copy()
        counts = algo.counts.copy()
        while (b := batcher.next_batch()) is not None:
            lo, hi, _ = b
            rows = trace.row[lo:hi]
            ing = trace.is_ingest[lo:hi]
            assign, _ = nearest_centroid(x[rows], centroids)
            if ing.any():
                folded = centroids.copy()
                minibatch_update(
                    folded, counts, x[rows[ing]], assign[ing]
                )
                centroids = folded
            batcher.complete(0.0)
        np.testing.assert_array_equal(res.centroids, centroids)
        np.testing.assert_array_equal(res.counts, counts)


class TestLatencyDeterminism:
    """p50/p99/p999 are a pure function of the arrival seed."""

    def test_run_twice_identical_json(self, served):
        x, fit, _ = served
        proc = ArrivalProcess(
            n_arrivals=1500, rate_qps=200_000.0, seed=21, skew=2.5,
        )
        r1 = ServePlane(x, fit.centroids).serve(proc)
        r2 = ServePlane(x, fit.centroids).serve(proc)
        assert r1.to_dict() == r2.to_dict()
        np.testing.assert_array_equal(r1.latency_ns, r2.latency_ns)

    def test_percentiles_are_simulated_time(self, served):
        x, fit, _ = served
        res = ServePlane(x, fit.centroids).serve(
            ArrivalProcess(n_arrivals=1000, rate_qps=200_000.0, seed=1)
        )
        p = res.percentiles
        assert 0 < p["p50"] <= p["p99"] <= p["p999"]
        assert res.sim_seconds > 0

    def test_observer_sees_query_and_ingest_events(self, served):
        x, fit, algo = served
        rec = RecordingObserver()
        plane = ServePlane(
            x, fit.centroids, counts=algo.counts.copy(),
            observers=(rec,),
        )
        res = plane.serve(ArrivalProcess(
            n_arrivals=600, rate_qps=200_000.0, seed=2,
            ingest_fraction=0.3,
        ))
        names = rec.names()
        assert "query" in names and "ingest" in names
        queries = [e for e in rec.events if e.name == "query"]
        assert sum(e.payload["queries"] for e in queries) == (
            res.n_queries
        )
        ingests = [e for e in rec.events if e.name == "ingest"]
        assert sum(e.payload["rows"] for e in ingests) == (
            res.n_ingested
        )


class TestCacheBehavior:
    """Satellite: caches shape simulated time, never answers."""

    def _hot_proc(self, seed=13):
        # skew=6 hammers a handful of head rows.
        return ArrivalProcess(
            n_arrivals=2000, rate_qps=300_000.0, seed=seed, skew=6.0,
        )

    def test_hot_rows_hit_row_cache(self, served):
        x, fit, _ = served
        plane = ServePlane(
            x, fit.centroids, row_cache_bytes=len(x) * x.shape[1],
        )
        res = plane.serve(self._hot_proc())
        assert res.row_cache_hits > 0
        occ = row_cache_occupancy(plane.row_cache)
        assert sum(occ["occupancy"]) > 0

    def test_cold_queries_charge_ssd_time(self, served):
        x, fit, _ = served
        cold = ServePlane(
            x, fit.centroids, row_cache_bytes=0, page_cache_bytes=0,
        )
        res = cold.serve(self._hot_proc())
        assert res.row_cache_hits == 0
        assert res.pages_from_ssd > 0
        assert res.io_service_ns > 0

    def test_cache_on_off_identical_answers(self, served):
        x, fit, _ = served
        proc = self._hot_proc()
        warm = ServePlane(x, fit.centroids).serve(proc)
        cold = ServePlane(
            x, fit.centroids, row_cache_bytes=0, page_cache_bytes=0,
        ).serve(proc)
        np.testing.assert_array_equal(
            warm.assignments, cold.assignments
        )
        np.testing.assert_array_equal(warm.rows, cold.rows)
        # ... and the cold plane pays for it in simulated time.
        assert cold.io_service_ns >= warm.io_service_ns


class TestServeValidation:
    def test_rejects_shape_mismatch(self, served):
        x, fit, _ = served
        with pytest.raises(DatasetError):
            ServePlane(x, fit.centroids[:, :2])
        with pytest.raises(ConfigError):
            ServePlane(x, fit.centroids, counts=np.zeros(3))
        with pytest.raises(ConfigError):
            ServePlane(x, fit.centroids, max_batch=0)

    def test_rejects_out_of_range_rows(self, served):
        from repro.simhw import ArrivalTrace

        x, fit, _ = served
        plane = ServePlane(x, fit.centroids)
        bad = ArrivalTrace(
            time_ns=np.array([0.0]),
            row=np.array([len(x) + 5]),
            is_ingest=np.array([False]),
        )
        with pytest.raises(DatasetError):
            plane.serve(bad)
