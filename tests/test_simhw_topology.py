"""NUMA topology: thread placement and shape arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError
from repro.simhw.topology import (
    BindPolicy,
    FOUR_SOCKET_TOPOLOGY,
    NumaTopology,
)


def test_paper_machine_shape():
    assert FOUR_SOCKET_TOPOLOGY.physical_cores == 48
    assert FOUR_SOCKET_TOPOLOGY.hardware_threads == 96
    assert FOUR_SOCKET_TOPOLOGY.n_nodes == 4


def test_even_thread_distribution():
    topo = NumaTopology(4, 12)
    nodes = [topo.node_of_thread(t, 8) for t in range(8)]
    assert nodes == [0, 0, 1, 1, 2, 2, 3, 3]


def test_uneven_thread_distribution():
    topo = NumaTopology(4, 12)
    nodes = [topo.node_of_thread(t, 6) for t in range(6)]
    # 6 threads on 4 nodes: first two nodes carry 2 each.
    assert nodes == [0, 0, 1, 1, 2, 3]


def test_fewer_threads_than_nodes():
    topo = NumaTopology(4, 12)
    assert [topo.node_of_thread(t, 2) for t in range(2)] == [0, 1]


def test_threads_on_node_inverse():
    topo = NumaTopology(4, 12)
    for n_threads in (1, 3, 7, 16, 48):
        seen = []
        for node in range(4):
            seen.extend(topo.threads_on_node(node, n_threads))
        assert sorted(seen) == list(range(n_threads))


def test_node_out_of_range():
    topo = NumaTopology(2, 4)
    with pytest.raises(TopologyError):
        topo.threads_on_node(2, 4)
    with pytest.raises(TopologyError):
        topo.node_of_thread(4, 4)


def test_invalid_topologies():
    for kwargs in (
        dict(n_nodes=0, cores_per_node=1),
        dict(n_nodes=1, cores_per_node=0),
        dict(n_nodes=1, cores_per_node=1, smt=0),
    ):
        with pytest.raises(TopologyError):
            NumaTopology(**kwargs)


def test_oversubscription():
    topo = NumaTopology(4, 12)
    assert topo.oversubscription(24) == 1.0
    assert topo.oversubscription(48) == 1.0
    assert topo.oversubscription(96) == pytest.approx(2.0)


def test_bind_policy_enum_values():
    assert BindPolicy.NUMA_BIND.value == "numa_bind"
    assert BindPolicy.OBLIVIOUS.value == "oblivious"


@settings(max_examples=60, deadline=None)
@given(
    n_nodes=st.integers(1, 8),
    cores=st.integers(1, 16),
    n_threads=st.integers(1, 64),
)
def test_placement_is_balanced(n_nodes, cores, n_threads):
    """Every node carries floor(T/N) or ceil(T/N) threads."""
    topo = NumaTopology(n_nodes, cores)
    counts = [
        len(topo.threads_on_node(node, n_threads))
        for node in range(n_nodes)
    ]
    assert sum(counts) == n_threads
    assert max(counts) - min(counts) <= 1
