"""Golden-value conformance: optimized kernels vs frozen legacy kernels.

The PR 3 perf rework (workspace layer, flat-index accumulation, engine
hot-loop) promises **bit-identical** results -- not merely allclose.
Every test here compares the shipped kernels against the verbatim
pre-change copies in :mod:`repro.perf.legacy` with ``np.array_equal``,
across seeds, dtypes, ragged block boundaries and the degenerate
``d=1`` / ``k=1`` shapes.
"""

import numpy as np
import pytest

from repro.core.centroids import (
    AccumScratch,
    PartialCentroids,
    add_block,
    funnel_merge,
    move_rows,
)
from repro.core.distance import (
    euclidean,
    half_min_inter_centroid,
    nearest_centroid,
    rows_to_centroids,
)
from repro.core.mti import mti_init, mti_iteration
from repro.core.workspace import DistanceWorkspace
from repro.perf import legacy


def blobs(n, d, k, seed, dtype=np.float64):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=6.0, size=(k, d))
    x = centers[rng.integers(k, size=n)] + rng.normal(size=(n, d))
    c0 = x[rng.choice(n, size=k, replace=False)].copy()
    return x.astype(dtype), c0.astype(dtype)


SHAPES = [(257, 5, 7), (1000, 12, 10), (64, 1, 4), (100, 3, 1), (9, 2, 9)]


# -- distance kernels ------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("n,d,k", SHAPES)
def test_euclidean_matches_legacy(n, d, k, seed, dtype):
    x, c = blobs(n, d, k, seed, dtype)
    assert np.array_equal(legacy.euclidean(x, c), euclidean(x, c))


@pytest.mark.parametrize("seed", [0, 3])
@pytest.mark.parametrize("n,d,k", SHAPES)
def test_euclidean_with_cached_norms_matches_legacy(n, d, k, seed):
    x, c = blobs(n, d, k, seed)
    c64 = np.asarray(c, dtype=np.float64)
    c_sq = np.einsum("ij,ij->i", c64, c64)
    out = np.empty((n, k))
    got = euclidean(x, c, c_sq=c_sq, out=out)
    assert got is out
    assert np.array_equal(legacy.euclidean(x, c), got)


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("n,d,k", SHAPES)
def test_rows_to_centroids_matches_legacy(n, d, k, seed):
    x, c = blobs(n, d, k, seed)
    rng = np.random.default_rng(seed + 10)
    idx = rng.integers(k, size=n).astype(np.int32)
    c64 = np.asarray(c, dtype=np.float64)
    c_sq = np.einsum("ij,ij->i", c64, c64)
    ref = legacy.rows_to_centroids(x, c, idx)
    assert np.array_equal(ref, rows_to_centroids(x, c, idx))
    assert np.array_equal(ref, rows_to_centroids(x, c, idx, c_sq=c_sq))


@pytest.mark.parametrize("k", [1, 2, 5, 64])
def test_half_min_matches_legacy(k):
    _, c = blobs(4 * k + 8, 6, k, seed=5)
    cc = legacy.pairwise_centroid_distances(c)
    assert np.array_equal(
        legacy.half_min_inter_centroid(cc), half_min_inter_centroid(cc)
    )
    ws = DistanceWorkspace(k, 6)
    ws.ensure(np.asarray(c, dtype=np.float64))
    assert np.array_equal(legacy.half_min_inter_centroid(cc), ws.half_min())


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("n,d,k", SHAPES)
@pytest.mark.parametrize("block_rows", [4, 33, 65536])
def test_nearest_centroid_ragged_blocks_matches_legacy(
    n, d, k, seed, block_rows
):
    """Small ``block_rows`` forces ragged final blocks (n % block != 0)
    exactly as huge datasets do against the real 65536-row block."""
    x, c = blobs(n, d, k, seed)
    ref_a, ref_m = legacy.nearest_centroid(x, c, block_rows=block_rows)
    got_a, got_m = nearest_centroid(x, c, block_rows=block_rows)
    assert np.array_equal(ref_a, got_a)
    assert np.array_equal(ref_m, got_m)
    ws = DistanceWorkspace(k, d, block_rows=block_rows)
    ws_a, ws_m = nearest_centroid(x, c, block_rows=block_rows, workspace=ws)
    assert np.array_equal(ref_a, ws_a)
    assert np.array_equal(ref_m, ws_m)


# -- accumulation ----------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("n,d,k", SHAPES)
def test_add_block_matches_legacy(n, d, k, seed, dtype):
    x, _ = blobs(n, d, k, seed, dtype)
    rng = np.random.default_rng(seed)
    assign = rng.integers(k, size=n).astype(np.int32)
    s_ref = np.zeros((k, d))
    c_ref = np.zeros(k, dtype=np.int64)
    legacy.add_block(s_ref, c_ref, np.asarray(x, dtype=np.float64), assign)
    for scratch in (None, AccumScratch()):
        s = np.zeros((k, d))
        c = np.zeros(k, dtype=np.int64)
        add_block(s, c, np.asarray(x, dtype=np.float64), assign,
                  scratch=scratch)
        assert np.array_equal(s_ref, s)
        assert np.array_equal(c_ref, c)


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("n,d,k", SHAPES)
def test_move_rows_matches_legacy(n, d, k, seed):
    x, _ = blobs(n, d, k, seed)
    x = np.asarray(x, dtype=np.float64)
    rng = np.random.default_rng(seed + 7)
    frm = rng.integers(k, size=n).astype(np.int32)
    to = rng.integers(k, size=n).astype(np.int32)
    s0 = rng.normal(size=(k, d))
    c0 = rng.integers(0, n, size=k).astype(np.int64)

    s_ref, c_ref = s0.copy(), c0.copy()
    legacy.move_rows(s_ref, c_ref, x, frm, to)
    for scratch in (None, AccumScratch()):
        s, c = s0.copy(), c0.copy()
        move_rows(s, c, x, frm, to, scratch=scratch)
        assert np.array_equal(s_ref, s)
        assert np.array_equal(c_ref, c)


def test_scratch_reuse_across_shrinking_and_growing_calls():
    """A shared AccumScratch must not leak state between calls of
    different (n, d) shapes -- exactly the MTI changed-rows pattern."""
    scratch = AccumScratch()
    rng = np.random.default_rng(0)
    for n, d, k in [(100, 8, 5), (7, 3, 5), (250, 12, 9), (1, 1, 1)]:
        x = rng.normal(size=(n, d))
        assign = rng.integers(k, size=n).astype(np.int32)
        s_ref = np.zeros((k, d))
        c_ref = np.zeros(k, dtype=np.int64)
        legacy.add_block(s_ref, c_ref, x, assign)
        s = np.zeros((k, d))
        c = np.zeros(k, dtype=np.int64)
        add_block(s, c, x, assign, scratch=scratch)
        assert np.array_equal(s_ref, s)
        assert np.array_equal(c_ref, c)


# -- funnel merge (S2 regression) ------------------------------------


@pytest.mark.parametrize("n_partials", [1, 2, 3, 5, 8])
def test_funnel_merge_does_not_mutate_inputs(n_partials):
    rng = np.random.default_rng(n_partials)
    partials = []
    for _ in range(n_partials):
        p = PartialCentroids.zeros(4, 3)
        p.accumulate(
            rng.normal(size=(20, 3)),
            rng.integers(4, size=20).astype(np.int32),
        )
        partials.append(p)
    snapshots = [(p.sums.copy(), p.counts.copy()) for p in partials]

    merged = funnel_merge(partials)

    for p, (s, c) in zip(partials, snapshots):
        assert np.array_equal(p.sums, s)
        assert np.array_equal(p.counts, c)
    # The merged result is a fresh structure, never aliasing an input.
    for p in partials:
        assert merged.sums is not p.sums
        assert merged.counts is not p.counts
    # Re-merging the same inputs reproduces the same values.
    again = funnel_merge(partials)
    assert np.array_equal(merged.sums, again.sums)
    assert np.array_equal(merged.counts, again.counts)


def test_funnel_merge_values_match_inplace_tree():
    """Same tree shape/order as the historical in-place reduction."""
    rng = np.random.default_rng(3)
    partials = []
    for _ in range(5):
        p = PartialCentroids.zeros(6, 4)
        p.accumulate(
            rng.normal(size=(50, 4)),
            rng.integers(6, size=50).astype(np.int32),
        )
        partials.append(p)

    # Historical behavior: merge neighbour pairs in place, level by
    # level, odd structure carried.
    level = [p.copy() for p in partials]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            level[i].merge_from(level[i + 1])
            nxt.append(level[i])
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    ref = level[0]

    merged = funnel_merge(partials)
    assert np.array_equal(ref.sums, merged.sums)
    assert np.array_equal(ref.counts, merged.counts)


# -- MTI pipeline ----------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("n,d,k", [(3000, 12, 8), (500, 1, 5), (777, 3, 1)])
def test_mti_multi_iteration_state_matches_legacy(n, d, k, seed):
    """Eight iterations of MTI: identical assignments, bounds, sums,
    counts, centroids and pruning counters at every step."""
    x, c0 = blobs(n, d, k, seed)
    x = np.asarray(x, dtype=np.float64)
    c0 = np.asarray(c0, dtype=np.float64)

    ws = DistanceWorkspace(k, d)
    cen_l = c0.copy()
    cen_n = c0.copy()
    state_l, res_l = legacy.mti_init(x, cen_l)
    state_n, res_n = mti_init(x, cen_n, workspace=ws)

    for it in range(8):
        assert np.array_equal(state_l.assignment, state_n.assignment), it
        assert np.array_equal(state_l.ub, state_n.ub), it
        assert np.array_equal(state_l.sums, state_n.sums), it
        assert np.array_equal(state_l.counts, state_n.counts), it
        assert np.array_equal(res_l.new_centroids, res_n.new_centroids), it
        assert res_l.n_changed == res_n.n_changed, it
        assert np.array_equal(res_l.dist_per_row, res_n.dist_per_row), it
        assert np.array_equal(res_l.needs_data, res_n.needs_data), it
        assert res_l.clause1_rows == res_n.clause1_rows, it
        assert res_l.clause2_pruned == res_n.clause2_pruned, it
        assert res_l.clause3_pruned == res_n.clause3_pruned, it
        assert res_l.computed == res_n.computed, it
        prev_l, cen_l = cen_l, res_l.new_centroids
        prev_n, cen_n = cen_n, res_n.new_centroids
        res_l = legacy.mti_iteration(x, cen_l, prev_l, state_l)
        res_n = mti_iteration(x, cen_n, prev_n, state_n, workspace=ws)


def test_workspace_reuse_across_centroid_updates():
    """One workspace carried across iterations (the driver pattern)
    must track centroid changes: stale caches would alter results."""
    x, c0 = blobs(400, 6, 5, seed=9)
    x = np.asarray(x, dtype=np.float64)
    ws = DistanceWorkspace(5, 6)
    c = np.asarray(c0, dtype=np.float64)
    for _ in range(4):
        ref_a, ref_m = legacy.nearest_centroid(x, c)
        got_a, got_m = nearest_centroid(x, c, workspace=ws)
        assert np.array_equal(ref_a, got_a)
        assert np.array_equal(ref_m, got_m)
        # Next iteration's centroids: a fresh array, as the library
        # produces (the workspace caches by array identity).
        sums = np.zeros((5, 6))
        counts = np.zeros(5, dtype=np.int64)
        add_block(sums, counts, x, got_a, scratch=ws.accum)
        p = PartialCentroids(sums=sums, counts=counts)
        c = p.finalize(c)


def test_workspace_rejects_wrong_shape():
    from repro.errors import DatasetError

    ws = DistanceWorkspace(4, 3)
    with pytest.raises(DatasetError):
        ws.ensure(np.zeros((5, 3)))
