"""SimThread counters, spawn placement, and the error hierarchy."""

import pytest

import repro.errors as errors
from repro.simhw.thread import SimThread, ThreadCounters, spawn_threads
from repro.simhw.topology import BindPolicy, NumaTopology


class TestThreadCounters:
    def test_merge(self):
        a = ThreadCounters(tasks_run=2, rows_processed=10,
                           dist_computations=100, bytes_local=64,
                           lock_wait_ns=5.0)
        b = ThreadCounters(tasks_run=1, rows_processed=5,
                           bytes_remote=32, steals_local_node=1,
                           queue_probes=3, lock_wait_ns=2.5)
        m = a.merged_with(b)
        assert m.tasks_run == 3
        assert m.rows_processed == 15
        assert m.dist_computations == 100
        assert m.bytes_local == 64
        assert m.bytes_remote == 32
        assert m.steals_local_node == 1
        assert m.queue_probes == 3
        assert m.lock_wait_ns == pytest.approx(7.5)
        # Originals untouched.
        assert a.tasks_run == 2 and b.tasks_run == 1

    def test_advance_rejects_negative(self):
        th = SimThread(thread_id=0, node=0)
        th.advance(5.0)
        assert th.clock_ns == 5.0
        with pytest.raises(ValueError):
            th.advance(-1.0)


class TestSpawn:
    def test_bound_follows_figure1(self):
        topo = NumaTopology(4, 2)
        threads = spawn_threads(topo, 8, BindPolicy.NUMA_BIND)
        assert [t.node for t in threads] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_core_bind_same_layout(self):
        topo = NumaTopology(2, 4)
        a = spawn_threads(topo, 4, BindPolicy.NUMA_BIND)
        b = spawn_threads(topo, 4, BindPolicy.CORE_BIND)
        assert [t.node for t in a] == [t.node for t in b]

    def test_oblivious_round_robin(self):
        topo = NumaTopology(3, 4)
        threads = spawn_threads(topo, 5, BindPolicy.OBLIVIOUS)
        assert [t.node for t in threads] == [0, 1, 2, 0, 1]


class TestErrorHierarchy:
    def test_all_derive_from_knor_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if (
                isinstance(obj, type)
                and issubclass(obj, Exception)
                and obj is not errors.KnorError
                and obj.__module__ == "repro.errors"
            ):
                assert issubclass(obj, errors.KnorError), name

    def test_config_errors_are_value_errors(self):
        assert issubclass(errors.ConfigError, ValueError)
        assert issubclass(errors.TopologyError, errors.ConfigError)
        assert issubclass(errors.DatasetError, ValueError)

    def test_catchable_as_base(self):
        with pytest.raises(errors.KnorError):
            raise errors.SchedulerError("boom")
