"""End-to-end guarantees of the memory-manager plane.

Two invariants, checked across every backend:

1. **Bit-identity** -- ``--mem`` must never change a number. numpy,
   arena, and budget (even while actively spilling) produce identical
   centroids, assignments, and inertia; only simulated time and the
   memory counters differ.

2. **Steady-state allocation freedom** -- under the arena manager, the
   hot iteration loops stop allocating backing memory after the first
   iteration: 8 iterations hit the OS exactly as often as 2.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ConvergenceCriteria
from repro.drivers.knord import knord
from repro.drivers.knori import knori
from repro.drivers.knors import knors
from repro.mem import (
    ArenaManager,
    BudgetedManager,
    DEFAULT_MANAGER,
    NumpyManager,
    current_manager,
)

MANAGERS = ["numpy", "arena", "budget"]


def _mk(spec):
    """A fresh manager instance per run (never share across runs)."""
    if spec == "budget":
        # Just above the largest single block (256 KiB) so every
        # allocation fits but the working set forces real spills.
        return BudgetedManager(288 * 1024)
    return ArenaManager() if spec == "arena" else NumpyManager()


def _same(a, b):
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.assignment, b.assignment)
    assert a.inertia == b.inertia


class TestBitIdentityKnori:
    @pytest.mark.parametrize("pruning", ["mti", "elkan", None])
    def test_all_managers(self, overlapping, pruning):
        crit = ConvergenceCriteria(max_iters=6)
        base = knori(overlapping, 10, pruning=pruning, seed=1,
                     criteria=crit)
        for spec in ("arena", "budget"):
            m = _mk(spec)
            got = knori(overlapping, 10, pruning=pruning, seed=1,
                        criteria=crit, mem=m)
            _same(base, got)
            if spec == "budget":
                assert m.counters().spill_count > 0, (
                    "budget run must actually exercise spill"
                )

    @pytest.mark.parametrize("kernel", ["blocked", "gemm"])
    def test_kernels(self, overlapping, kernel):
        crit = ConvergenceCriteria(max_iters=6)
        base = knori(overlapping, 10, pruning=None, seed=1,
                     criteria=crit, kernel=kernel)
        got = knori(overlapping, 10, pruning=None, seed=1,
                    criteria=crit, kernel=kernel, mem=_mk("arena"))
        _same(base, got)

    def test_seeds_and_dtype_robustness(self, blobs):
        crit = ConvergenceCriteria(max_iters=5)
        x32 = blobs.astype(np.float32).astype(np.float64)
        for seed in (0, 7):
            base = knori(x32, 4, seed=seed, criteria=crit)
            got = knori(x32, 4, seed=seed, criteria=crit,
                        mem=_mk("arena"))
            _same(base, got)


class TestBitIdentityKnors:
    def test_all_managers(self, matrix_path):
        crit = ConvergenceCriteria(max_iters=5)
        base = knors(matrix_path, 10, seed=1, criteria=crit)
        for spec in ("arena", "budget"):
            got = knors(matrix_path, 10, seed=1, criteria=crit,
                        mem=_mk(spec))
            _same(base, got)
            # Simulated I/O accounting is manager-independent too.
            assert got.total_bytes_read == base.total_bytes_read

    def test_under_faults(self, matrix_path):
        from repro.faults import (
            FaultPlan,
            parse_fault_spec,
            parse_retry_policy,
        )

        crit = ConvergenceCriteria(max_iters=5)

        def run(mem):
            return knors(
                matrix_path, 10, seed=1, criteria=crit,
                faults=FaultPlan(
                    parse_fault_spec("ssd_error=0.05"), seed=3
                ),
                retry_policy=parse_retry_policy("retries=3"),
                mem=mem,
            )

        base = run(None)
        for spec in ("arena", "budget"):
            _same(base, run(_mk(spec)))


class TestBitIdentityDistributed:
    def test_knord(self, overlapping):
        crit = ConvergenceCriteria(max_iters=5)
        base = knord(overlapping, 10, n_machines=2, seed=1,
                     criteria=crit)
        for spec in ("arena", "budget"):
            got = knord(overlapping, 10, n_machines=2, seed=1,
                        criteria=crit, mem=_mk(spec))
            _same(base, got)

    def test_mpi_lloyd(self, blobs):
        from repro.baselines.mpi_pure import mpi_lloyd

        crit = ConvergenceCriteria(max_iters=4)
        base = mpi_lloyd(blobs, 4, n_machines=2, ranks_per_machine=4,
                         seed=1, criteria=crit)
        got = mpi_lloyd(blobs, 4, n_machines=2, ranks_per_machine=4,
                        seed=1, criteria=crit, mem=_mk("arena"))
        _same(base, got)


class TestBitIdentityMMAndServe:
    @pytest.mark.parametrize("algo", ["kmeans", "minibatch"])
    def test_mm_inmemory(self, blobs, algo):
        from repro.extensions import run_algorithm

        kwargs = {"seed": 2}
        if algo == "minibatch":
            kwargs["batch_size"] = 128
        else:
            kwargs["criteria"] = ConvergenceCriteria(max_iters=5)
        base = run_algorithm("kmeans" if algo == "kmeans" else algo,
                             blobs, 4, algorithm_kwargs=dict(kwargs))
        got = run_algorithm("kmeans" if algo == "kmeans" else algo,
                            blobs, 4, algorithm_kwargs=dict(kwargs),
                            mem=_mk("arena"))
        np.testing.assert_array_equal(base.centroids, got.centroids)
        assert base.inertia == got.inertia

    def test_serve_plane(self, blobs):
        from repro.serve import ServePlane
        from repro.simhw import ArrivalProcess

        rng = np.random.default_rng(0)
        c0 = blobs[rng.choice(len(blobs), 4, replace=False)]

        def run(mem):
            plane = ServePlane(blobs, c0.copy(),
                               max_batch=64, mem=mem)
            return plane.serve(ArrivalProcess(
                n_arrivals=2000, rate_qps=20_000.0, seed=5,
                ingest_fraction=0.1,
            ))

        base = run(None)
        for spec in ("arena", "budget"):
            got = run(_mk(spec))
            np.testing.assert_array_equal(
                base.assignments, got.assignments
            )
            np.testing.assert_array_equal(
                base.centroids, got.centroids
            )
            np.testing.assert_array_equal(
                base.latency_ns, got.latency_ns
            )


class TestSteadyStateAllocations:
    """Satellite 3: zero new arena backing allocations after the
    first iteration of every hot loop."""

    @pytest.mark.parametrize("pruning", [None, "mti", "elkan"])
    def test_knori_hot_loop(self, overlapping, pruning):
        def backing(iters):
            m = ArenaManager()
            knori(overlapping, 10, pruning=pruning, seed=1,
                  criteria=ConvergenceCriteria(max_iters=iters),
                  mem=m)
            return m.counters().backing_allocs

        assert backing(8) == backing(2), (
            f"knori[{pruning}] allocates backing memory after "
            f"iteration 1"
        )

    def test_knors_fetch_loop(self, matrix_path):
        # pruning=None fetches every row each iteration, so the fetch
        # batches repeat and the cache arrays stabilize immediately.
        def backing(iters):
            m = ArenaManager()
            knors(matrix_path, 10, pruning=None, seed=1,
                  criteria=ConvergenceCriteria(max_iters=iters),
                  mem=m)
            return m.counters().backing_allocs

        assert backing(8) == backing(2), (
            "knors fetch loop allocates backing memory after "
            "iteration 1"
        )

    def test_knori_holds_not_churns(self, overlapping):
        # knori's workspace allocates once and keeps its buffers: no
        # frees mid-run, so live == peak and nothing recycles.
        m = ArenaManager()
        knori(overlapping, 10, seed=1,
              criteria=ConvergenceCriteria(max_iters=8), mem=m)
        c = m.counters()
        assert c.n_frees == 0
        assert c.live_bytes == c.peak_bytes

    def test_knord_partials_recycle(self, overlapping):
        # knord allocates per-iteration partials and allreduce staging
        # then frees them; from iteration 2 on they come from the pool.
        m = ArenaManager()
        knord(overlapping, 10, n_machines=2, seed=1,
              criteria=ConvergenceCriteria(max_iters=8), mem=m)
        c = m.counters()
        assert c.n_allocs > c.backing_allocs
        assert c.reuse_rate > 0.3


def test_stack_clean_after_suite():
    assert current_manager() is DEFAULT_MANAGER
