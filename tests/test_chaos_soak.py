"""Chaos soak as a pytest suite (``pytest -m chaos``).

Drives the same plan generator as ``benchmarks/chaos_soak.py`` and
asserts its two invariants plan-by-plan, so a failure names the exact
seed that produced it. CI runs this with ``-p no:randomly``; every
plan is derived from ``default_rng([master_seed, plan_index])`` so the
suite is deterministic regardless of ordering.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

import chaos_soak  # noqa: E402

from repro.errors import KnorError  # noqa: E402

pytestmark = pytest.mark.chaos

MASTER_SEED = 0
N_PLANS = 50  # acceptance floor: >= 50 seeded plans


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    """Dataset, centroids, matrix file, and fault-free ground truths."""
    workdir = tmp_path_factory.mktemp("chaos")
    dataset, centroids = chaos_soak.make_dataset(MASTER_SEED)
    path = str(
        chaos_soak.write_matrix(workdir / "chaos.knor", dataset)
    )
    truth = {
        "knors": chaos_soak.knors(
            path, chaos_soak.K, init=centroids, seed=3,
            **chaos_soak.KNORS_KW,
        ),
        "knord": chaos_soak.knord(
            dataset, chaos_soak.K, init=centroids, seed=3,
            n_machines=chaos_soak.N_MACHINES,
        ),
    }
    return dict(
        dataset=dataset, centroids=centroids, path=path,
        workdir=workdir, truth=truth,
    )


@pytest.mark.parametrize("plan_index", range(N_PLANS))
def test_chaos_plan(world, plan_index):
    """One randomized plan: bit-identical completion or typed abort."""
    record, result = chaos_soak.run_plan(
        plan_index, MASTER_SEED, world["dataset"], world["centroids"],
        world["path"], world["workdir"],
    )
    assert record["outcome"] != "untyped-error", record["error"]
    if record["outcome"] == "aborted":
        # The typed-error invariant: run_plan only classifies
        # KnorError subclasses as 'aborted'.
        assert record["error"]
        return
    truth = world["truth"][record["backend"]]
    np.testing.assert_array_equal(result.centroids, truth.centroids)
    np.testing.assert_array_equal(result.assignment, truth.assignment)
    assert result.iterations == truth.iterations
    c = record["counters"]
    assert c["detection_recall"] == 1.0, (
        f"missed corruption: {c['corruptions_detected']}"
        f"/{c['corruptions_injected']}"
    )


def test_soak_report_shape(tmp_path):
    """The JSON artifact the CI job uploads has the pinned schema."""
    report = chaos_soak.soak(6, MASTER_SEED, str(tmp_path))
    assert report["n_plans"] == 6
    assert report["completed"] + report["aborted"] == 6
    assert report["violations"] == []
    assert len(report["plans"]) == 6
    for p in report["plans"]:
        assert p["backend"] in ("knors", "knord")
        assert "detection_recall" in p["counters"]


def test_soak_is_deterministic(tmp_path):
    """Same master seed => byte-identical report (minus tmp paths)."""
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    a = chaos_soak.soak(8, 123, str(tmp_path / "a"))
    b = chaos_soak.soak(8, 123, str(tmp_path / "b"))
    assert a["plans"] == b["plans"]


def test_unrecoverable_plans_abort_typed(tmp_path):
    """Force repair failure on a corrupting plan: typed abort only."""
    dataset, centroids = chaos_soak.make_dataset(7)
    path = str(chaos_soak.write_matrix(tmp_path / "m.knor", dataset))
    plan = chaos_soak.FaultPlan(
        chaos_soak.FaultSpec(
            corruption_page_rate=0.5, corruption_repair_fail_rate=1.0
        ),
        seed=1,
    )
    with pytest.raises(KnorError):
        chaos_soak.knors(
            path, chaos_soak.K, init=centroids, seed=3, faults=plan,
            **chaos_soak.KNORS_KW,
        )
