"""Full Elkan TI: exactness, bound invariants, and MTI comparison."""

import numpy as np
import pytest

from repro.core import (
    ConvergenceCriteria,
    elkan_init,
    elkan_iteration,
    init_centroids,
    lloyd,
    mti_init,
    mti_iteration,
)
from repro.core.distance import euclidean
from repro.errors import DatasetError


def run_elkan(x, c0, max_iters=100):
    state, res = elkan_init(x, c0)
    prev, cur = c0, res.new_centroids
    computed = res.computed
    results = [res]
    for _ in range(max_iters - 1):
        r = elkan_iteration(x, cur, prev, state)
        computed += r.computed
        results.append(r)
        prev, cur = cur, r.new_centroids
        if r.n_changed == 0:
            break
    return state, cur, computed, results


@pytest.mark.parametrize("k", [1, 3, 10])
def test_elkan_matches_lloyd_exactly(overlapping, k):
    c0 = init_centroids(overlapping, k, "kmeans++", seed=1)
    ref = lloyd(
        overlapping, k, init=c0, criteria=ConvergenceCriteria(max_iters=100)
    )
    state, centroids, _, results = run_elkan(overlapping, c0)
    np.testing.assert_array_equal(state.assignment, ref.assignment)
    np.testing.assert_allclose(centroids, ref.centroids, atol=1e-8)
    assert len(results) == ref.iterations


def test_elkan_prunes_at_least_as_much_as_mti(overlapping, friendster_small):
    """Elkan's O(nk) lower bounds buy extra pruning over MTI.

    That surplus is precisely what the paper trades away for O(n)
    memory (Section 4).
    """
    for data, k in ((overlapping, 10), (friendster_small, 8)):
        c0 = init_centroids(data, k, "random", seed=3)
        _, _, elkan_computed, _ = run_elkan(data, c0)
        state, res = mti_init(data, c0)
        prev, cur = c0, res.new_centroids
        mti_computed = res.computed
        for _ in range(99):
            r = mti_iteration(data, cur, prev, state)
            mti_computed += r.computed
            prev, cur = cur, r.new_centroids
            if r.n_changed == 0:
                break
        assert elkan_computed <= mti_computed


def test_lower_bounds_are_lower_bounds(overlapping):
    c0 = init_centroids(overlapping, 6, "random", seed=4)
    state, res = elkan_init(overlapping, c0)
    prev, cur = c0, res.new_centroids
    for _ in range(6):
        r = elkan_iteration(overlapping, cur, prev, state)
        true = euclidean(overlapping, cur)
        assert (state.lb <= true + 1e-9).all()
        prev, cur = cur, r.new_centroids
        if r.n_changed == 0:
            break


def test_upper_bounds_are_upper_bounds(overlapping):
    c0 = init_centroids(overlapping, 6, "random", seed=4)
    state, res = elkan_init(overlapping, c0)
    prev, cur = c0, res.new_centroids
    for _ in range(6):
        r = elkan_iteration(overlapping, cur, prev, state)
        true = euclidean(overlapping, cur)[
            np.arange(overlapping.shape[0]), state.assignment
        ]
        assert (state.ub >= true - 1e-9).all()
        prev, cur = cur, r.new_centroids
        if r.n_changed == 0:
            break


def test_lb_matrix_shape_is_nk(overlapping):
    c0 = init_centroids(overlapping, 5, "random", seed=0)
    state, _ = elkan_init(overlapping, c0)
    assert state.lb.shape == (overlapping.shape[0], 5)


def test_state_row_mismatch_raises(overlapping):
    c0 = init_centroids(overlapping, 3, "random", seed=0)
    state, res = elkan_init(overlapping, c0)
    with pytest.raises(DatasetError):
        elkan_iteration(overlapping[:5], res.new_centroids, c0, state)


def test_counts_conserved(overlapping):
    c0 = init_centroids(overlapping, 7, "random", seed=9)
    state, res = elkan_init(overlapping, c0)
    prev, cur = c0, res.new_centroids
    for _ in range(5):
        r = elkan_iteration(overlapping, cur, prev, state)
        assert state.counts.sum() == overlapping.shape[0]
        assert (state.counts >= 0).all()
        prev, cur = cur, r.new_centroids
        if r.n_changed == 0:
            break
