"""Kernel strategy equivalence: ``blocked`` vs ``gemm``.

The acceptance contract for the GEMM-formulated fast path:

* **Identical assignments, everywhere.** The gemm argmin runs over
  ``q = -2 X C^T + |c|^2`` -- ``|x|^2`` is constant per row and sqrt is
  monotone, so the winner never changes. Pinned per-kernel-call across
  seeds, magnitude scales, the k=1 / d=1 edges, ragged blocks and
  duplicate-centroid ties, and end-to-end through every driver,
  backend and plane.
* **ULP-bounded distances.** gemm adds ``|x|^2`` after ``|c|^2``
  where blocked adds it before; that single reassociation perturbs
  the squared distance by at most :data:`GEMM_ULP_BOUND` ulps of the
  ``|x|^2 + |c|^2`` magnitude (plus the winner-side clamp+sqrt
  rounding, two ulps of the squared distance itself).
* **``blocked`` stays the bit-identical reference**: byte-equal to
  the frozen pre-workspace legacy kernel, so selecting the default
  strategy changes nothing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConvergenceCriteria, knord, knori, lloyd
from repro.core.distance import (
    GEMM_ULP_BOUND,
    KERNEL_STRATEGIES,
    check_kernel,
    nearest_centroid,
    row_norms,
)
from repro.core.workspace import X_SQ_CACHE_SLOTS, DistanceWorkspace
from repro.drivers import knors
from repro.errors import ConfigError
from repro.perf import legacy
from repro.runtime.mm import (
    KmeansMM,
    run_mm_distributed,
    run_mm_inmemory,
    run_mm_sem,
)
from repro.serve import MiniBatchMM, ServePlane
from repro.simhw import ArrivalProcess

CRIT = ConvergenceCriteria(max_iters=25)


def _both(x, c, **kwargs):
    """One assignment pass per strategy over identical inputs."""
    ab, db = nearest_centroid(x, c, kernel="blocked", **kwargs)
    ag, dg = nearest_centroid(x, c, kernel="gemm", **kwargs)
    return ab, db, ag, dg


def _assert_ulp_equivalent(x, c, ab, db, ag, dg):
    """The pinned contract: same winners, squared distances within
    the documented reassociation bound."""
    np.testing.assert_array_equal(ab, ag)
    x_sq = row_norms(np.asarray(x, dtype=np.float64))
    c_sq = row_norms(np.asarray(c, dtype=np.float64))
    tol = GEMM_ULP_BOUND * np.spacing(x_sq + c_sq[ab]) + 2 * np.spacing(
        db**2
    )
    assert np.all(np.abs(db**2 - dg**2) <= tol)


class TestKernelValidation:
    """The ``kernel`` argument is typed-checked at every entry."""

    def test_strategies_tuple(self):
        assert KERNEL_STRATEGIES == ("blocked", "gemm")

    @pytest.mark.parametrize("kernel", KERNEL_STRATEGIES)
    def test_check_kernel_passthrough(self, kernel):
        assert check_kernel(kernel) == kernel

    def test_check_kernel_rejects(self):
        with pytest.raises(ConfigError, match="kernel"):
            check_kernel("simd")

    def test_workspace_rejects(self):
        with pytest.raises(ConfigError):
            DistanceWorkspace(3, 2, kernel="bogus")

    def test_nearest_centroid_rejects(self):
        x = np.zeros((4, 2))
        with pytest.raises(ConfigError):
            nearest_centroid(x, x[:2], kernel="bogus")

    def test_none_defers_to_workspace(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 4))
        c = rng.normal(size=(5, 4))
        ws = DistanceWorkspace(5, 4, kernel="gemm")
        a_ws, d_ws = nearest_centroid(x, c, workspace=ws)
        a_explicit, d_explicit = nearest_centroid(x, c, kernel="gemm")
        np.testing.assert_array_equal(a_ws, a_explicit)
        np.testing.assert_array_equal(d_ws, d_explicit)


class TestUlpEquivalence:
    """Kernel-call level: identical argmin, bounded distance delta."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_scales(self, seed):
        rng = np.random.default_rng(seed)
        scale = 10.0 ** float(rng.integers(-3, 4))
        x = rng.normal(scale=scale, size=(1500, 13))
        c = rng.normal(scale=scale, size=(37, 13))
        _assert_ulp_equivalent(x, c, *_both(x, c))

    def test_k_equals_one(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(300, 6))
        c = rng.normal(size=(1, 6))
        ab, db, ag, dg = _both(x, c)
        assert np.all(ab == 0)
        _assert_ulp_equivalent(x, c, ab, db, ag, dg)

    def test_d_equals_one(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(400, 1))
        c = rng.normal(size=(7, 1))
        _assert_ulp_equivalent(x, c, *_both(x, c))

    def test_float32_origin_data(self):
        """Data quantized to float32 then widened: coarse values with
        exact float64 representations still agree."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(500, 8)).astype(np.float32).astype(np.float64)
        c = rng.normal(size=(9, 8)).astype(np.float32).astype(np.float64)
        _assert_ulp_equivalent(x, c, *_both(x, c))

    def test_ragged_final_block(self):
        """block_rows that does not divide n: the short tail block
        goes through the same per-block path."""
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1000, 5))
        c = rng.normal(size=(6, 5))
        ab, db, ag, dg = _both(x, c, block_rows=96)  # 1000 = 10*96 + 40
        _assert_ulp_equivalent(x, c, ab, db, ag, dg)
        # Blocking never changes answers within a strategy either.
        a_full, d_full = nearest_centroid(x, c, kernel="gemm")
        np.testing.assert_array_equal(ag, a_full)
        np.testing.assert_array_equal(dg, d_full)

    def test_duplicate_centroid_ties(self):
        """Exact ties (duplicated centroids) produce bitwise-equal
        candidate columns under both strategies, so argmin's
        lowest-index rule picks the same winner."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=(600, 4))
        base = rng.normal(size=(4, 4))
        c = np.vstack([base, base[::-1]])  # every centroid twice
        ab, db, ag, dg = _both(x, c)
        np.testing.assert_array_equal(ab, ag)
        assert ab.max() < 4  # ties broke toward the first copy
        _assert_ulp_equivalent(x, c, ab, db, ag, dg)

    def test_rows_on_centroids(self):
        """Near-cancellation (rows sitting on centroids) stays within
        the bound: the expanded form leaves only ulp-level residual,
        and the winner-side clamp keeps it non-negative."""
        rng = np.random.default_rng(6)
        c = rng.normal(size=(5, 3))
        x = np.repeat(c, 20, axis=0)
        ab, db, ag, dg = _both(x, c)
        _assert_ulp_equivalent(x, c, ab, db, ag, dg)
        assert np.all(dg < 1e-6) and np.all(dg >= 0.0)
        assert np.all(db < 1e-6) and np.all(db >= 0.0)

    def test_workspace_matches_workspace_free(self):
        """The cached neg2ct / |x|^2 operands are bit-identical to the
        inline ones, so the two gemm paths agree to the last bit."""
        rng = np.random.default_rng(7)
        x = rng.normal(size=(800, 9))
        c = rng.normal(size=(11, 9))
        ws = DistanceWorkspace(11, 9, kernel="gemm")
        a_ws, d_ws = nearest_centroid(x, c, workspace=ws)
        a_free, d_free = nearest_centroid(x, c, kernel="gemm")
        np.testing.assert_array_equal(a_ws, a_free)
        np.testing.assert_array_equal(d_ws, d_free)


class TestBlockedStaysReference:
    """Selecting ``blocked`` (or nothing) changes no bits."""

    @pytest.mark.parametrize("seed", range(4))
    def test_bit_identical_to_legacy(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(700, 6))
        c = rng.normal(size=(8, 6))
        a_now, d_now = nearest_centroid(x, c, kernel="blocked")
        a_old, d_old = legacy.nearest_centroid(x, c)
        np.testing.assert_array_equal(a_now, a_old)
        np.testing.assert_array_equal(d_now, d_old)

    def test_default_is_blocked(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=(200, 3))
        c = rng.normal(size=(4, 3))
        a_default, d_default = nearest_centroid(x, c)
        a_blocked, d_blocked = nearest_centroid(x, c, kernel="blocked")
        np.testing.assert_array_equal(a_default, a_blocked)
        np.testing.assert_array_equal(d_default, d_blocked)
        assert DistanceWorkspace(4, 3).kernel == "blocked"


class TestWorkspaceGemmCaches:
    """The gemm-side workspace caches: |x|^2 per array, (-2 C)^T per
    centroid set."""

    def test_x_sq_identity_hit(self):
        ws = DistanceWorkspace(3, 5, kernel="gemm")
        x = np.random.default_rng(0).normal(size=(50, 5))
        first = ws.x_sq(x)
        assert ws.x_sq(x) is first
        np.testing.assert_array_equal(first, row_norms(x))

    def test_x_sq_fifo_eviction(self):
        ws = DistanceWorkspace(3, 5, kernel="gemm")
        rng = np.random.default_rng(1)
        arrays = [rng.normal(size=(10, 5)) for _ in range(X_SQ_CACHE_SLOTS + 1)]
        norms = [ws.x_sq(a) for a in arrays]
        # Oldest entry evicted: a fresh call recomputes (new object).
        assert ws.x_sq(arrays[0]) is not norms[0]
        # Newest entries still cached.
        assert ws.x_sq(arrays[-1]) is norms[-1]

    def test_neg2ct_cached_and_invalidated(self):
        rng = np.random.default_rng(2)
        c1 = rng.normal(size=(4, 6))
        c2 = rng.normal(size=(4, 6))
        ws = DistanceWorkspace(4, 6, kernel="gemm")
        ws.ensure(c1)
        op = ws.neg2ct
        assert op.shape == (6, 4)
        np.testing.assert_array_equal(op, (c1 * -2.0).T)
        assert ws.neg2ct is op  # cached per centroid set
        ws.ensure(c2)
        np.testing.assert_array_equal(ws.neg2ct, (c2 * -2.0).T)


def _same_run(rb, rg):
    """Two RunResults that must agree on everything but kernel label."""
    np.testing.assert_array_equal(rb.assignment, rg.assignment)
    assert rb.iterations == rg.iterations
    assert rb.converged == rg.converged
    np.testing.assert_allclose(rb.centroids, rg.centroids, rtol=1e-12)


class TestEndToEnd:
    """gemm == blocked through every driver, backend and plane."""

    @pytest.mark.parametrize("pruning", ["mti", None])
    def test_knori(self, overlapping, pruning):
        rb = knori(overlapping, 6, pruning=pruning, seed=1, criteria=CRIT)
        rg = knori(overlapping, 6, pruning=pruning, seed=1, criteria=CRIT,
                   kernel="gemm")
        _same_run(rb, rg)
        assert rb.params["kernel"] == "blocked"
        assert rg.params["kernel"] == "gemm"

    def test_lloyd(self, overlapping):
        rb = lloyd(overlapping, 5, seed=2, criteria=CRIT)
        rg = lloyd(overlapping, 5, seed=2, criteria=CRIT, kernel="gemm")
        np.testing.assert_array_equal(rb.assignment, rg.assignment)
        assert rb.iterations == rg.iterations

    def test_knors(self, matrix_path):
        rb = knors(matrix_path, 4, seed=1, criteria=CRIT)
        rg = knors(matrix_path, 4, seed=1, criteria=CRIT, kernel="gemm")
        _same_run(rb, rg)
        # The I/O plane is kernel-blind: same bytes either way.
        assert rb.params["kernel"] == "blocked"
        assert rg.params["kernel"] == "gemm"

    def test_knord(self, overlapping):
        rb = knord(overlapping, 6, n_machines=4, seed=1, criteria=CRIT)
        rg = knord(overlapping, 6, n_machines=4, seed=1, criteria=CRIT,
                   kernel="gemm")
        _same_run(rb, rg)
        assert rg.params["kernel"] == "gemm"

    @pytest.mark.parametrize("runner", [
        run_mm_inmemory,
        run_mm_sem,
        lambda a: run_mm_distributed(a, n_machines=4),
    ], ids=["inmemory", "sem", "distributed"])
    def test_mm_kmeans(self, overlapping, runner):
        rb = runner(KmeansMM(overlapping, 6, seed=1, criteria=CRIT))
        rg = runner(KmeansMM(overlapping, 6, seed=1, criteria=CRIT,
                             kernel="gemm"))
        _same_run(rb, rg)
        assert rg.params["kernel"] == "gemm"

    def test_minibatch_mm(self, blobs):
        x = np.ascontiguousarray(blobs)
        rb = run_mm_inmemory(
            MiniBatchMM(x, 4, batch_size=128, n_steps=10, seed=3)
        )
        rg = run_mm_inmemory(
            MiniBatchMM(x, 4, batch_size=128, n_steps=10, seed=3,
                        kernel="gemm")
        )
        np.testing.assert_array_equal(rb.assignment, rg.assignment)
        np.testing.assert_allclose(rb.centroids, rg.centroids, rtol=1e-12)

    def test_serve_plane(self, blobs):
        x = np.ascontiguousarray(blobs)
        centroids = x[:4].copy()
        arrivals = ArrivalProcess(n_arrivals=300, seed=9)

        def run(kernel):
            plane = ServePlane(x, centroids, kernel=kernel)
            return plane.serve(arrivals)

        rb, rg = run("blocked"), run("gemm")
        np.testing.assert_array_equal(rb.assignments, rg.assignments)
        np.testing.assert_array_equal(rb.latency_ns, rg.latency_ns)
        assert rg.params["kernel"] == "gemm"
