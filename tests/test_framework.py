"""The generalized framework: contract checks and adapter fidelity."""

import numpy as np
import pytest

from repro import ConvergenceCriteria, knori, knors, lloyd
from repro.core import init_centroids
from repro.errors import ConfigError
from repro.framework import (
    GmmAlgorithm,
    KmeansAlgorithm,
    RowAlgorithm,
    RowWork,
    run_numa,
    run_sem,
)
from repro.simhw import BindPolicy


class TestKmeansAdapter:
    def test_matches_builtin_knori(self, overlapping):
        c0 = init_centroids(overlapping, 6, "random", seed=2)
        builtin = knori(overlapping, 6, init=c0)
        algo = KmeansAlgorithm(6, init=c0)
        res = run_numa(algo, overlapping, reduction_k=6)
        np.testing.assert_array_equal(
            algo.assignment, builtin.assignment
        )
        np.testing.assert_allclose(
            algo.centroids, builtin.centroids, atol=1e-10
        )
        assert res.converged
        assert res.iterations == builtin.iterations
        # Identical work content -> identical simulated time.
        assert res.sim_seconds == pytest.approx(
            builtin.sim_seconds, rel=1e-9
        )

    def test_matches_builtin_knors(self, matrix_path, overlapping):
        c0 = init_centroids(overlapping, 5, "random", seed=1)
        data_bytes = overlapping.size * 8
        builtin = knors(
            matrix_path, 5, init=c0,
            row_cache_bytes=data_bytes // 32,
            page_cache_bytes=data_bytes // 16,
        )
        algo = KmeansAlgorithm(5, init=c0)
        res = run_sem(
            algo, matrix_path, reduction_k=5,
            row_cache_bytes=data_bytes // 32,
            page_cache_bytes=data_bytes // 16,
        )
        np.testing.assert_array_equal(
            algo.assignment, builtin.assignment
        )
        assert res.sim_seconds == pytest.approx(
            builtin.sim_seconds, rel=1e-9
        )
        assert (
            sum(r.bytes_read for r in res.records)
            == builtin.total_bytes_read
        )

    def test_pruning_modes(self, overlapping):
        c0 = init_centroids(overlapping, 5, "random", seed=3)
        ref = lloyd(overlapping, 5, init=c0)
        for pruning in ("mti", "elkan", None):
            algo = KmeansAlgorithm(5, pruning=pruning, init=c0)
            run_numa(algo, overlapping, reduction_k=5)
            np.testing.assert_array_equal(
                algo.assignment, ref.assignment
            )

    def test_protocol_conformance(self):
        assert isinstance(KmeansAlgorithm(3), RowAlgorithm)
        assert isinstance(GmmAlgorithm(3), RowAlgorithm)


class TestGmmAdapter:
    def test_gmm_on_substrate(self, blobs):
        algo = GmmAlgorithm(4, seed=1)
        res = run_numa(algo, blobs, reduction_k=4, max_iters=60)
        assert res.converged
        # Log-likelihood monotone.
        ll = np.array(algo.ll_history)
        assert (np.diff(ll) >= -1e-9).all()
        # Hard labels recover the blobs (up to permutation): check
        # cluster sizes.
        sizes = np.sort(np.bincount(algo.assignment, minlength=4))
        np.testing.assert_array_equal(sizes, [250, 250, 250, 250])
        # Substrate charged k gaussian evals per row per iteration.
        n = blobs.shape[0]
        assert res.records[0].dist_computations == n * 4

    def test_gmm_sem(self, matrix_path, overlapping):
        algo = GmmAlgorithm(3, seed=0)
        res = run_sem(algo, matrix_path, max_iters=15, reduction_k=3)
        assert res.iterations >= 2
        # EM has no pruning: every iteration requests all rows (modulo
        # row-cache hits).
        n = overlapping.shape[0]
        for rec in res.records:
            assert rec.rows_active == n


class TestContract:
    def test_bad_work_shapes_rejected(self, blobs):
        class Broken:
            def begin(self, x):
                pass

            def iteration(self, x):
                return RowWork(
                    compute_units=np.zeros(3),
                    needs_data=np.ones(x.shape[0], dtype=bool),
                )

            def converged(self):
                return False

        with pytest.raises(ConfigError):
            run_numa(Broken(), blobs, max_iters=2)

    def test_max_iters_respected(self, blobs):
        class Never:
            def begin(self, x):
                pass

            def iteration(self, x):
                n = x.shape[0]
                return RowWork(
                    compute_units=np.ones(n, dtype=np.int64),
                    needs_data=np.ones(n, dtype=bool),
                )

            def converged(self):
                return False

        res = run_numa(Never(), blobs, max_iters=3)
        assert res.iterations == 3
        assert not res.converged

    def test_custom_sparse_algorithm_prices_skips(self, blobs):
        """A custom algorithm that skips most rows pays less."""

        class Sparse:
            def __init__(self, frac):
                self.frac = frac
                self.calls = 0

            def begin(self, x):
                pass

            def iteration(self, x):
                self.calls += 1
                n = x.shape[0]
                needs = np.zeros(n, dtype=bool)
                needs[: int(self.frac * n)] = True
                units = np.where(needs, 10, 0).astype(np.int64)
                return RowWork(
                    compute_units=units, needs_data=needs
                )

            def converged(self):
                return self.calls >= 4

        dense = run_numa(Sparse(1.0), blobs)
        sparse = run_numa(Sparse(0.1), blobs)
        assert sparse.sim_seconds < dense.sim_seconds

    def test_oblivious_policy_available(self, blobs):
        algo = KmeansAlgorithm(3, seed=0)
        res = run_numa(
            algo, blobs, bind_policy=BindPolicy.OBLIVIOUS,
            reduction_k=3,
        )
        assert res.iterations >= 1
