"""Unit tests for centroid initialization."""

import numpy as np
import pytest

from repro.core.distance import euclidean
from repro.core.init import (
    init_centroids,
    kmeans_parallel,
    kmeanspp,
    random_partition,
    random_sample,
)
from repro.errors import ConvergenceError, DatasetError


@pytest.fixture()
def data():
    rng = np.random.default_rng(0)
    return rng.normal(size=(300, 4))


@pytest.mark.parametrize(
    "method",
    ["random", "forgy", "random_partition", "kmeans++", "kmeans||"],
)
def test_shapes_and_determinism(data, method):
    c1 = init_centroids(data, 7, method, seed=3)
    c2 = init_centroids(data, 7, method, seed=3)
    assert c1.shape == (7, 4)
    np.testing.assert_array_equal(c1, c2)


@pytest.mark.parametrize("method", ["random", "kmeans++", "kmeans||"])
def test_different_seeds_differ(data, method):
    c1 = init_centroids(data, 5, method, seed=1)
    c2 = init_centroids(data, 5, method, seed=2)
    assert not np.array_equal(c1, c2)


def test_random_sample_returns_data_points(data):
    c = init_centroids(data, 6, "random", seed=0)
    # Every centroid must be an actual row of the data.
    d = euclidean(c, data)
    assert np.allclose(d.min(axis=1), 0.0, atol=1e-6)


def test_random_sample_distinct_points(data):
    c = init_centroids(data, 50, "random", seed=0)
    assert np.unique(c, axis=0).shape[0] == 50


def test_kmeanspp_spreads_centroids(data):
    """k-means++ seeds should be farther apart than uniform ones."""
    rng_runs = []
    pp_runs = []
    for seed in range(5):
        cr = init_centroids(data, 8, "random", seed=seed)
        cp = init_centroids(data, 8, "kmeans++", seed=seed)
        off = ~np.eye(8, dtype=bool)
        rng_runs.append(euclidean(cr, cr)[off].min())
        pp_runs.append(euclidean(cp, cp)[off].min())
    assert np.mean(pp_runs) > np.mean(rng_runs)


def test_kmeanspp_duplicate_points_fallback():
    x = np.zeros((20, 3))
    c = kmeanspp(x, 4, np.random.default_rng(0))
    assert c.shape == (4, 3)
    np.testing.assert_array_equal(c, 0.0)


def test_random_partition_every_cluster_nonempty(data):
    c = random_partition(data, 12, np.random.default_rng(5))
    assert np.isfinite(c).all()
    assert c.shape == (12, 4)


def test_kmeans_parallel_covers_space(data):
    c = kmeans_parallel(data, 10, np.random.default_rng(1))
    assert c.shape == (10, 4)
    # Every point should have a reasonably close seed.
    assert euclidean(data, c).min(axis=1).max() < 5.0


def test_k_exceeds_n_raises():
    with pytest.raises(ConvergenceError):
        init_centroids(np.zeros((3, 2)), 4, "random")


def test_k_zero_raises():
    with pytest.raises(ConvergenceError):
        init_centroids(np.zeros((3, 2)), 0, "random")


def test_unknown_method_raises(data):
    with pytest.raises(ConvergenceError):
        init_centroids(data, 3, "definitely-not-a-method")


def test_non_2d_raises():
    with pytest.raises(DatasetError):
        init_centroids(np.zeros(10), 2, "random")


def test_generator_seed_accepted(data):
    gen = np.random.default_rng(9)
    c = init_centroids(data, 3, "random", seed=gen)
    assert c.shape == (3, 4)


def test_k_equals_n():
    x = np.arange(12, dtype=float).reshape(4, 3)
    c = random_sample(x, 4, np.random.default_rng(0))
    np.testing.assert_array_equal(np.sort(c, axis=0), np.sort(x, axis=0))
