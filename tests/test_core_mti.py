"""MTI pruning: exactness, safety, and pruning effectiveness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConvergenceCriteria,
    init_centroids,
    lloyd,
    mti_init,
    mti_iteration,
)
from repro.core.distance import euclidean
from repro.errors import DatasetError


def run_mti(x, c0, max_iters=100):
    """Drive MTI to convergence; return (state, centroids, stats)."""
    state, res = mti_init(x, c0)
    prev, cur = c0, res.new_centroids
    computed = res.computed
    results = [res]
    for _ in range(max_iters - 1):
        r = mti_iteration(x, cur, prev, state)
        computed += r.computed
        results.append(r)
        prev, cur = cur, r.new_centroids
        if r.n_changed == 0:
            break
    return state, cur, computed, results


@pytest.mark.parametrize("k", [1, 2, 5, 10])
def test_mti_matches_lloyd_exactly(overlapping, k):
    c0 = init_centroids(overlapping, k, "kmeans++", seed=1)
    ref = lloyd(
        overlapping, k, init=c0, criteria=ConvergenceCriteria(max_iters=100)
    )
    state, centroids, _, results = run_mti(overlapping, c0)
    np.testing.assert_array_equal(state.assignment, ref.assignment)
    np.testing.assert_allclose(centroids, ref.centroids, atol=1e-8)
    assert len(results) == ref.iterations


def test_mti_prunes_on_clustered_data(friendster_small):
    c0 = init_centroids(friendster_small, 8, "random", seed=2)
    ref = lloyd(friendster_small, 8, init=c0)
    _, _, computed, _ = run_mti(friendster_small, c0)
    full = ref.iterations * friendster_small.shape[0] * 8
    assert computed < 0.7 * full  # substantial pruning on natural clusters


def test_clause1_rows_grow_on_clustered_data(friendster_small):
    c0 = init_centroids(friendster_small, 8, "random", seed=2)
    _, _, _, results = run_mti(friendster_small, c0)
    fracs = [
        r.clause1_rows / friendster_small.shape[0] for r in results[1:]
    ]
    if len(fracs) >= 3:
        # Strongly rooted clusters: late iterations skip more rows than
        # early ones (the Figure 7 premise).
        assert fracs[-1] >= fracs[0]
        assert fracs[-1] > 0.5


def test_clause1_rows_need_no_data(overlapping):
    c0 = init_centroids(overlapping, 6, "random", seed=0)
    state, res = mti_init(overlapping, c0)
    r = mti_iteration(overlapping, res.new_centroids, c0, state)
    # needs_data is exactly the complement of clause-1 skips.
    assert int((~r.needs_data).sum()) == r.clause1_rows
    # Skipped rows performed zero distance computations.
    assert (r.dist_per_row[~r.needs_data] == 0).all()


def test_dist_per_row_sums_to_computed(overlapping):
    c0 = init_centroids(overlapping, 6, "random", seed=3)
    state, res = mti_init(overlapping, c0)
    prev, cur = c0, res.new_centroids
    for _ in range(5):
        r = mti_iteration(overlapping, cur, prev, state)
        assert int(r.dist_per_row.sum()) == r.computed
        prev, cur = cur, r.new_centroids
        if r.n_changed == 0:
            break


def test_pruning_safety(overlapping):
    """No pruned computation could have changed an assignment.

    After each MTI iteration, the claimed assignment must equal the
    brute-force nearest centroid under the *same* centroids.
    """
    c0 = init_centroids(overlapping, 7, "random", seed=5)
    state, res = mti_init(overlapping, c0)
    prev, cur = c0, res.new_centroids
    for _ in range(8):
        r = mti_iteration(overlapping, cur, prev, state)
        full = euclidean(overlapping, cur)
        best = full[np.arange(overlapping.shape[0]), state.assignment]
        # The assigned centroid achieves the true minimum distance
        # (ties allowed -- compare values, not indices).
        np.testing.assert_allclose(best, full.min(axis=1), atol=1e-9)
        prev, cur = cur, r.new_centroids
        if r.n_changed == 0:
            break


def test_upper_bounds_are_upper_bounds(overlapping):
    c0 = init_centroids(overlapping, 5, "random", seed=6)
    state, res = mti_init(overlapping, c0)
    prev, cur = c0, res.new_centroids
    for _ in range(6):
        r = mti_iteration(overlapping, cur, prev, state)
        true_dist = euclidean(overlapping, cur)[
            np.arange(overlapping.shape[0]), state.assignment
        ]
        assert (state.ub >= true_dist - 1e-9).all()
        prev, cur = cur, r.new_centroids
        if r.n_changed == 0:
            break


def test_incremental_sums_match_recompute(overlapping):
    c0 = init_centroids(overlapping, 6, "random", seed=7)
    state, res = mti_init(overlapping, c0)
    prev, cur = c0, res.new_centroids
    for _ in range(6):
        r = mti_iteration(overlapping, cur, prev, state)
        k = cur.shape[0]
        for c in range(k):
            members = overlapping[state.assignment == c]
            np.testing.assert_allclose(
                state.sums[c], members.sum(axis=0), atol=1e-6
            )
            assert state.counts[c] == members.shape[0]
        prev, cur = cur, r.new_centroids
        if r.n_changed == 0:
            break


def test_state_row_mismatch_raises(overlapping):
    c0 = init_centroids(overlapping, 3, "random", seed=0)
    state, res = mti_init(overlapping, c0)
    with pytest.raises(DatasetError):
        mti_iteration(overlapping[:10], res.new_centroids, c0, state)


def test_k_equals_one_trivially_converges(overlapping):
    c0 = init_centroids(overlapping, 1, "random", seed=0)
    state, _, computed, results = run_mti(overlapping, c0)
    assert (state.assignment == 0).all()
    # After the init pass, clause 1 skips every row.
    assert results[-1].clause1_rows == overlapping.shape[0]


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(10, 80),
    k=st.integers(1, 6),
    d=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_mti_objective_matches_lloyd_random_instances(n, k, d, seed):
    """On arbitrary random instances MTI reaches the same objective.

    (Assignments may differ only on exact ties; the objective and the
    per-point assigned distances must match.)
    """
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    k = min(k, n)
    c0 = init_centroids(x, k, "random", seed=seed)
    ref = lloyd(x, k, init=c0, criteria=ConvergenceCriteria(max_iters=60))
    state, centroids, _, _ = run_mti(x, c0, max_iters=60)
    ref_d = euclidean(x, ref.centroids)[
        np.arange(n), ref.assignment
    ]
    mti_d = euclidean(x, centroids)[np.arange(n), state.assignment]
    np.testing.assert_allclose(
        (mti_d**2).sum(), (ref_d**2).sum(), rtol=1e-7, atol=1e-9
    )
