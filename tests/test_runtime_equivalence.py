"""Cross-driver equivalence: knori, knors and knord run the *same*
numerics through different runtime backends, so their clustering
outputs and exact counters must agree.

This is the acceptance suite for the unified ``repro.runtime`` layer:
whatever the substrate (in-memory machine, SEM I/O stack, distributed
cluster), the exact plane -- assignments, centroids, distance
computations, pruning clause counters -- is substrate-invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import knord, knori, knors
from repro.core import ConvergenceCriteria

K = 10
SEED = 3


def _records_by_iteration(result):
    return {r.iteration: r for r in result.records}


@pytest.fixture(scope="module", params=["mti", None],
                ids=["mti", "unpruned"])
def trio(request, overlapping):
    """One (knori, knors, knord) trio per pruning mode."""
    pruning = request.param
    crit = ConvergenceCriteria(max_iters=25)
    ri = knori(overlapping, K, pruning=pruning, seed=SEED, criteria=crit)
    rs = knors(overlapping, K, pruning=pruning, seed=SEED, criteria=crit)
    rd = knord(
        overlapping, K, pruning=pruning, seed=SEED, criteria=crit,
        n_machines=4,
    )
    return pruning, ri, rs, rd


def test_same_iteration_count(trio):
    _, ri, rs, rd = trio
    assert ri.iterations == rs.iterations == rd.iterations
    assert ri.converged == rs.converged == rd.converged


def test_identical_assignments(trio):
    _, ri, rs, rd = trio
    np.testing.assert_array_equal(ri.assignment, rs.assignment)
    np.testing.assert_array_equal(ri.assignment, rd.assignment)


def test_centroids_agree_to_1e10(trio):
    _, ri, rs, rd = trio
    # knori and knors share one whole-data numerics loop: bit-identical.
    np.testing.assert_array_equal(ri.centroids, rs.centroids)
    # knord reduces per-shard partial sums in a tree, so float
    # summation order differs -- but only at rounding level.
    np.testing.assert_allclose(rd.centroids, ri.centroids,
                               rtol=0, atol=1e-10)


def test_identical_dist_computations(trio):
    _, ri, rs, rd = trio
    for res in (rs, rd):
        other = _records_by_iteration(res)
        for rec in ri.records:
            assert other[rec.iteration].dist_computations == \
                rec.dist_computations


def test_identical_clause_counters(trio):
    pruning, ri, rs, rd = trio
    for res in (rs, rd):
        other = _records_by_iteration(res)
        for rec in ri.records:
            o = other[rec.iteration]
            assert o.clause1_rows == rec.clause1_rows
            assert o.clause2_pruned == rec.clause2_pruned
            assert o.clause3_pruned == rec.clause3_pruned
            assert o.n_changed == rec.n_changed
    if pruning == "mti":
        assert any(r.clause1_rows > 0 for r in rd.records)


def test_inertia_agrees(trio):
    _, ri, rs, rd = trio
    assert rs.inertia == pytest.approx(ri.inertia, rel=1e-12)
    assert rd.inertia == pytest.approx(ri.inertia, rel=1e-9)


def test_substrate_counters_are_substrate_specific(trio):
    """The hardware plane still differs: knors reports I/O, knord
    reports network traffic, knori reports neither."""
    _, ri, rs, rd = trio
    assert all(r.bytes_read == 0 and r.network_bytes == 0
               for r in ri.records)
    assert rs.records[0].bytes_read > 0
    assert all(r.network_bytes > 0 and r.allreduce_ns > 0
               for r in rd.records)


def test_knors_from_file_matches_in_memory(matrix_path, overlapping):
    """The on-disk memmap path yields the same numerics as the array."""
    crit = ConvergenceCriteria(max_iters=10)
    ra = knors(overlapping, K, pruning="mti", seed=SEED, criteria=crit)
    rf = knors(matrix_path, K, pruning="mti", seed=SEED, criteria=crit)
    np.testing.assert_array_equal(ra.assignment, rf.assignment)
    np.testing.assert_array_equal(ra.centroids, rf.centroids)
