"""Property-based fault tests: seeded-random plans over many seeds.

The invariant under test: with *recoverable-only* faults enabled (no
abort-mode node failures, retry budgets never exhausted), every run

* terminates,
* performs exactly the fault-free run's number of iterations (replayed
  iterations overwrite their crashed records),
* lands on bit-identical final centroids and assignment,

and the fault trace is a pure function of the fault seed. A seeded
loop over a fixed seed set keeps the suite deterministic in CI while
still sweeping a meaningful slice of the plan space.
"""

import numpy as np
import pytest

from repro import FaultPlan, FaultSpec, knord, knors
from repro.core import init_centroids
from repro.data import write_matrix
from repro.runtime import RecordingObserver

pytestmark = pytest.mark.faults

SEEDS = range(10)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(23)
    centers = rng.normal(scale=2.5, size=(5, 4))
    x = np.vstack(
        [rng.normal(loc=c, scale=1.5, size=(120, 4)) for c in centers]
    )
    rng.shuffle(x)
    return x


@pytest.fixture(scope="module")
def dataset_path(tmp_path_factory, dataset):
    path = tmp_path_factory.mktemp("faultprop") / "data.knor"
    write_matrix(path, dataset)
    return path


@pytest.fixture(scope="module")
def centroids0(dataset):
    return init_centroids(dataset, 5, "random", seed=7)


class TestKnorsRecoverableFaults:
    #: Recoverable-only: retries cannot exhaust (retry failures off),
    #: crash count is capped, no node/net sites in a SEM run.
    SPEC = FaultSpec(
        ssd_error_rate=0.15,
        ssd_slow_rate=0.15,
        worker_crash_rate=0.1,
        max_worker_crashes=2,
    )

    @pytest.fixture(scope="class")
    def baseline(self, dataset_path, centroids0):
        return knors(
            dataset_path, 5, init=centroids0, seed=7,
            row_cache_bytes=0, page_cache_bytes=0,
        )

    def _faulty(self, dataset_path, centroids0, fault_seed):
        rec = RecordingObserver()
        res = knors(
            dataset_path, 5, init=centroids0, seed=7,
            faults=FaultPlan(self.SPEC, seed=fault_seed),
            observers=(rec,), row_cache_bytes=0, page_cache_bytes=0,
        )
        return res, rec.fault_events()

    @pytest.mark.parametrize("fault_seed", SEEDS)
    def test_recoverable_faults_preserve_results(
        self, dataset_path, centroids0, baseline, fault_seed
    ):
        res, _ = self._faulty(dataset_path, centroids0, fault_seed)
        assert res.iterations == baseline.iterations
        assert res.converged == baseline.converged
        np.testing.assert_array_equal(res.centroids, baseline.centroids)
        np.testing.assert_array_equal(
            res.assignment, baseline.assignment
        )
        # Record stream stays continuous: one record per index.
        assert [r.iteration for r in res.records] == list(
            range(baseline.iterations)
        )

    @pytest.mark.parametrize("fault_seed", SEEDS)
    def test_trace_is_pure_function_of_seed(
        self, dataset_path, centroids0, fault_seed
    ):
        _, trace_a = self._faulty(dataset_path, centroids0, fault_seed)
        _, trace_b = self._faulty(dataset_path, centroids0, fault_seed)
        assert trace_a == trace_b

    def test_faults_actually_fire_across_seed_set(
        self, dataset_path, centroids0
    ):
        """Guard against vacuous passes: the sweep must inject."""
        fired = sum(
            len(self._faulty(dataset_path, centroids0, s)[1])
            for s in SEEDS
        )
        assert fired > 0


class TestKnordRecoverableFaults:
    SPEC = FaultSpec(
        worker_crash_rate=0.1,
        max_worker_crashes=2,
        node_failure_rate=0.1,
        max_node_failures=1,
        msg_drop_rate=0.1,
        max_msg_drops=4,
    )

    @pytest.fixture(scope="class")
    def baseline(self, dataset, centroids0):
        return knord(dataset, 5, init=centroids0, seed=7, n_machines=4)

    @pytest.mark.parametrize("fault_seed", SEEDS)
    def test_recoverable_faults_preserve_results(
        self, dataset, centroids0, baseline, fault_seed
    ):
        rec = RecordingObserver()
        res = knord(
            dataset, 5, init=centroids0, seed=7, n_machines=4,
            faults=FaultPlan(self.SPEC, seed=fault_seed),
            observers=(rec,),
        )
        assert res.iterations == baseline.iterations
        np.testing.assert_array_equal(res.centroids, baseline.centroids)
        np.testing.assert_array_equal(
            res.assignment, baseline.assignment
        )
