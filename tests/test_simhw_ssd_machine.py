"""SSD array model and SimMachine construction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, IoSubsystemError
from repro.simhw import (
    BindPolicy,
    EC2_I3_16XLARGE,
    FOUR_SOCKET_XEON,
    SimMachine,
    SsdArray,
)
from repro.simhw.ssd import I3_NVME_ARRAY, OCZ_INTREPID_ARRAY


class TestSsdArray:
    def test_aggregate_figures(self):
        assert OCZ_INTREPID_ARRAY.array_bw == pytest.approx(24 * 450e6)
        assert OCZ_INTREPID_ARRAY.array_iops == pytest.approx(24 * 60e3)

    def test_large_sequential_read_bandwidth_bound(self):
        # One merged request covering many pages: bandwidth-limited.
        r = OCZ_INTREPID_ARRAY.read(1, 100_000)
        bw_ns = 100_000 * 4096 / OCZ_INTREPID_ARRAY.array_bw * 1e9
        assert r.service_ns == pytest.approx(bw_ns)

    def test_many_small_reads_iops_bound(self):
        r = OCZ_INTREPID_ARRAY.read(1_000_000, 1_000_000)
        iops_ns = 1_000_000 / OCZ_INTREPID_ARRAY.array_iops * 1e9
        assert r.service_ns == pytest.approx(iops_ns)

    def test_bytes_read_counts_pages(self):
        r = OCZ_INTREPID_ARRAY.read(10, 50)
        assert r.bytes_read == 50 * 4096

    def test_requests_cannot_exceed_pages(self):
        with pytest.raises(IoSubsystemError):
            OCZ_INTREPID_ARRAY.read(10, 5)

    def test_negative_rejected(self):
        with pytest.raises(IoSubsystemError):
            OCZ_INTREPID_ARRAY.read(-1, 5)

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            SsdArray(n_devices=0)
        with pytest.raises(ConfigError):
            SsdArray(page_bytes=100)
        with pytest.raises(ConfigError):
            SsdArray(per_device_bw=0)

    def test_nvme_faster_than_sata(self):
        sata = OCZ_INTREPID_ARRAY.read(100, 10_000)
        nvme = I3_NVME_ARRAY.read(100, 10_000)
        assert nvme.service_ns < sata.service_ns

    @settings(max_examples=40, deadline=None)
    @given(
        reqs=st.integers(0, 1000),
        extra=st.integers(0, 1000),
    )
    def test_service_monotone_in_pages(self, reqs, extra):
        base = OCZ_INTREPID_ARRAY.read(reqs, reqs)
        more = OCZ_INTREPID_ARRAY.read(reqs, reqs + extra)
        assert more.service_ns >= base.service_ns


class TestSimMachine:
    def test_defaults_to_physical_cores(self):
        m = SimMachine.build(FOUR_SOCKET_XEON)
        assert m.n_threads == 48
        assert len(m.threads) == 48

    def test_thread_nodes_spread(self):
        m = SimMachine.build(FOUR_SOCKET_XEON, n_threads=8)
        assert {t.node for t in m.threads} == {0, 1, 2, 3}

    def test_oblivious_round_robin(self):
        m = SimMachine.build(
            FOUR_SOCKET_XEON, n_threads=8,
            bind_policy=BindPolicy.OBLIVIOUS,
        )
        assert [t.node for t in m.threads] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_node_of_row_block(self):
        m = SimMachine.build(FOUR_SOCKET_XEON, n_threads=8)
        assert m.node_of_row_block(0.0) == 0
        assert m.node_of_row_block(0.99) == 3
        mo = SimMachine.build(
            FOUR_SOCKET_XEON, n_threads=8,
            bind_policy=BindPolicy.OBLIVIOUS,
        )
        assert mo.node_of_row_block(0.99) == 0

    def test_invalid_thread_counts(self):
        with pytest.raises(ConfigError):
            SimMachine.build(FOUR_SOCKET_XEON, n_threads=0)
        with pytest.raises(ConfigError):
            SimMachine.build(FOUR_SOCKET_XEON, n_threads=10_000)

    def test_i3_topology(self):
        m = SimMachine.build(EC2_I3_16XLARGE)
        assert m.topology.physical_cores == 32
        assert m.topology.n_nodes == 2
