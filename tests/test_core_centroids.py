"""Unit tests for per-thread centroid accumulation and funnel merge."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.centroids import (
    PartialCentroids,
    cluster_sums,
    funnel_merge,
)
from repro.errors import DatasetError


def test_accumulate_matches_groupby():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(100, 3))
    assign = rng.integers(0, 5, size=100).astype(np.int32)
    p = cluster_sums(x, assign, 5)
    for c in range(5):
        np.testing.assert_allclose(
            p.sums[c], x[assign == c].sum(axis=0), atol=1e-9
        )
        assert p.counts[c] == (assign == c).sum()


def test_finalize_means_and_empty_clusters():
    x = np.array([[1.0, 1.0], [3.0, 3.0]])
    assign = np.array([0, 0], dtype=np.int32)
    p = cluster_sums(x, assign, 3)
    prev = np.array([[9.0, 9.0], [7.0, 7.0], [5.0, 5.0]])
    out = p.finalize(prev)
    np.testing.assert_allclose(out[0], [2.0, 2.0])
    # Empty clusters keep their previous centroid -- no NaNs.
    np.testing.assert_allclose(out[1], [7.0, 7.0])
    np.testing.assert_allclose(out[2], [5.0, 5.0])
    assert np.isfinite(out).all()


def test_merge_from_adds():
    a = PartialCentroids.zeros(2, 2)
    b = PartialCentroids.zeros(2, 2)
    a.sums[0] = [1.0, 2.0]
    a.counts[0] = 1
    b.sums[0] = [3.0, 4.0]
    b.counts[0] = 2
    a.merge_from(b)
    np.testing.assert_allclose(a.sums[0], [4.0, 6.0])
    assert a.counts[0] == 3


def test_merge_shape_mismatch_raises():
    with pytest.raises(DatasetError):
        PartialCentroids.zeros(2, 2).merge_from(PartialCentroids.zeros(3, 2))


def test_funnel_merge_empty_raises():
    with pytest.raises(DatasetError):
        funnel_merge([])


@settings(max_examples=40, deadline=None)
@given(
    n_parts=st.integers(1, 9),
    k=st.integers(1, 5),
    seed=st.integers(0, 500),
)
def test_funnel_merge_equals_global_sum(n_parts, k, seed):
    """The reduction tree must equal a single global accumulation."""
    rng = np.random.default_rng(seed)
    n, d = 64, 3
    x = rng.normal(size=(n, d))
    assign = rng.integers(0, k, size=n).astype(np.int32)
    bounds = np.linspace(0, n, n_parts + 1, dtype=int)
    partials = []
    for i in range(n_parts):
        p = PartialCentroids.zeros(k, d)
        lo, hi = bounds[i], bounds[i + 1]
        if hi > lo:
            p.accumulate(x[lo:hi], assign[lo:hi])
        partials.append(p)
    merged = funnel_merge(partials)
    reference = cluster_sums(x, assign, k)
    np.testing.assert_allclose(merged.sums, reference.sums, atol=1e-9)
    np.testing.assert_array_equal(merged.counts, reference.counts)


def test_accumulate_length_mismatch_raises():
    p = PartialCentroids.zeros(2, 2)
    with pytest.raises(DatasetError):
        p.accumulate(np.zeros((3, 2)), np.zeros(4, dtype=np.int32))


def test_funnel_merge_single_partial_identity():
    p = PartialCentroids.zeros(2, 2)
    p.sums[1] = [5.0, 5.0]
    out = funnel_merge([p])
    np.testing.assert_allclose(out.sums[1], [5.0, 5.0])
