"""The MM algorithm plane: cross-backend bit-identity and legacy pins.

The clusterNOR generalization's acceptance contract, in three parts:

* every registered MM algorithm yields **bit-identical** models,
  assignments and iteration counts across the InMemory / Sem /
  Distributed backends for the same seed;
* each MM port replays its standalone extension loop **operation for
  operation** (pinned against :func:`gmm_em`,
  :func:`spherical_kmeans`, :func:`semisupervised_kmeanspp`,
  :func:`yinyang_kmeans`, and classic ``knori`` for k-means);
* the satellite edges ride along: the yinyang k<10 single-group clamp
  and empty-group drop both stay exact vs plain Lloyd's, and GMM input
  hygiene raises the loader's typed errors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConvergenceCriteria, knori, lloyd
from repro.core.init import init_centroids
from repro.errors import (
    ConfigError,
    ConvergenceError,
    CorruptionError,
    DatasetError,
    IoSubsystemError,
)
from repro.extensions import (
    MM_ALGORITHMS,
    gmm_em,
    make_mm_algorithm,
    run_algorithm,
    semisupervised_kmeanspp,
    spherical_kmeans,
    yinyang_init,
    yinyang_kmeans,
)
from repro.extensions.gmm import GmmMM
from repro.runtime.mm import (
    KmeansMM,
    run_mm_distributed,
    run_mm_inmemory,
    run_mm_sem,
)

K = 6
SEED = 3
CRIT = ConvergenceCriteria(max_iters=30)


@pytest.fixture(scope="module")
def mmdata():
    """Six moderately-separated clusters in 5-D."""
    rng = np.random.default_rng(17)
    centers = rng.normal(scale=4.0, size=(K, 5))
    x = np.vstack(
        [rng.normal(loc=c, scale=1.2, size=(150, 5)) for c in centers]
    )
    rng.shuffle(x)
    return x


@pytest.fixture(scope="module")
def mmlabels(mmdata):
    """Sparse labels over mmdata for the semisupervised port."""
    n = mmdata.shape[0]
    labels = np.full(n, -1)
    labels[::40] = np.arange(n)[::40] % K
    return labels


def _algo_kwargs(name):
    if name == "gmm":
        return {"seed": SEED, "max_iters": 30}
    return {"seed": SEED, "criteria": CRIT}


def _trio(name, x, labels=None):
    """One run of algorithm ``name`` per backend, fresh instances."""
    def build():
        return make_mm_algorithm(
            name, x, K, labels=labels, **_algo_kwargs(name)
        )

    ri = run_mm_inmemory(build())
    rs = run_mm_sem(build())
    rd = run_mm_distributed(build(), n_machines=4)
    return ri, rs, rd


class TestCrossBackendIdentity:
    """Same seed => bit-identical model on every substrate."""

    @pytest.mark.parametrize("name", sorted(MM_ALGORITHMS))
    def test_bit_identical_across_backends(
        self, mmdata, mmlabels, name
    ):
        labels = mmlabels if name == "semisupervised" else None
        ri, rs, rd = _trio(name, mmdata, labels)
        for other in (rs, rd):
            np.testing.assert_array_equal(ri.centroids, other.centroids)
            np.testing.assert_array_equal(
                ri.assignment, other.assignment
            )
            assert other.iterations == ri.iterations
            assert other.converged == ri.converged
            assert other.inertia == ri.inertia

    @pytest.mark.parametrize("name", sorted(MM_ALGORITHMS))
    def test_substrate_counters_differ(self, mmdata, mmlabels, name):
        """The hardware plane stays substrate-specific: SEM reads
        bytes, distributed moves network traffic, in-memory neither."""
        labels = mmlabels if name == "semisupervised" else None
        ri, rs, rd = _trio(name, mmdata, labels)
        assert all(
            r.bytes_read == 0 and r.network_bytes == 0
            for r in ri.records
        )
        assert rs.records[0].bytes_read > 0
        assert all(
            r.network_bytes > 0 and r.allreduce_ns > 0
            for r in rd.records
        )


class TestKmeansPort:
    def test_mti_matches_classic_knori(self, mmdata):
        ref = knori(mmdata, K, pruning="mti", seed=SEED, criteria=CRIT)
        res = run_mm_inmemory(
            KmeansMM(mmdata, K, pruning="mti", seed=SEED, criteria=CRIT)
        )
        np.testing.assert_array_equal(res.centroids, ref.centroids)
        np.testing.assert_array_equal(res.assignment, ref.assignment)
        assert res.iterations == ref.iterations
        assert res.inertia == ref.inertia

    def test_unpruned_matches_knori_assignments(self, mmdata):
        """Unpruned partial sums are partition-order sensitive, so
        centroids agree to rounding; assignments stay identical."""
        ref = knori(mmdata, K, pruning=None, seed=SEED, criteria=CRIT)
        res = run_mm_inmemory(
            KmeansMM(mmdata, K, pruning=None, seed=SEED, criteria=CRIT)
        )
        np.testing.assert_array_equal(res.assignment, ref.assignment)
        np.testing.assert_allclose(
            res.centroids, ref.centroids, rtol=0, atol=1e-10
        )
        assert res.iterations == ref.iterations

    def test_rejects_bad_shapes(self, mmdata):
        with pytest.raises(DatasetError):
            KmeansMM(np.zeros(7), 2)
        with pytest.raises(DatasetError):
            KmeansMM(mmdata[:3], 5)


class TestGmmPort:
    def test_matches_standalone_em(self, mmdata):
        ref = gmm_em(mmdata, K, seed=SEED, max_iters=30)
        res = run_mm_inmemory(
            GmmMM(mmdata, K, seed=SEED, max_iters=30)
        )
        np.testing.assert_array_equal(res.centroids, ref.means)
        np.testing.assert_array_equal(res.assignment, ref.assignment)
        assert res.iterations == ref.iterations
        assert res.converged == ref.converged
        assert res.params["log_likelihood"] == ref.log_likelihood

    def test_model_attributes_match(self, mmdata):
        ref = gmm_em(mmdata, K, seed=SEED, max_iters=10)
        alg = GmmMM(mmdata, K, seed=SEED, max_iters=10)
        run_mm_inmemory(alg)
        np.testing.assert_array_equal(alg.variances, ref.variances)
        np.testing.assert_array_equal(alg.weights, ref.weights)
        np.testing.assert_array_equal(alg.resp, ref.responsibilities)
        assert alg.ll_history == ref.ll_history


class TestGmmHygiene:
    """Satellite: GMM rejects bad input with the loader's typed
    errors, and the ConvergenceError path stays typed too."""

    @pytest.mark.parametrize("ctor", [gmm_em, GmmMM])
    def test_nan_rows_rejected_naming_rows(self, mmdata, ctor):
        x = mmdata.copy()
        x[5, 0] = np.nan
        x[11, 2] = np.inf
        with pytest.raises(DatasetError, match=r"rows \[5, 11\]"):
            ctor(x, 3)

    @pytest.mark.parametrize("ctor", [gmm_em, GmmMM])
    def test_many_bad_rows_truncated(self, mmdata, ctor):
        x = mmdata.copy()
        x[:10, 0] = np.nan
        with pytest.raises(DatasetError, match=r"\(\+2 more\)"):
            ctor(x, 3)

    @pytest.mark.parametrize("ctor", [gmm_em, GmmMM])
    def test_k_exceeding_n_is_dataset_error(self, mmdata, ctor):
        with pytest.raises(DatasetError):
            ctor(mmdata[:4], 5)

    @pytest.mark.parametrize("ctor", [gmm_em, GmmMM])
    def test_convergence_error_path(self, mmdata, ctor):
        with pytest.raises(ConvergenceError):
            ctor(mmdata, 0)
        with pytest.raises(ConvergenceError):
            ctor(mmdata, 2, max_iters=0)


class TestSphericalPort:
    def test_matches_standalone(self, mmdata):
        ref = spherical_kmeans(mmdata, K, seed=SEED, criteria=CRIT)
        res = run_mm_inmemory(
            make_mm_algorithm(
                "spherical", mmdata, K, seed=SEED, criteria=CRIT
            )
        )
        np.testing.assert_array_equal(res.centroids, ref.centroids)
        np.testing.assert_array_equal(res.assignment, ref.assignment)
        assert res.iterations == ref.iterations
        assert res.inertia == ref.inertia

    def test_rejects_zero_vectors(self):
        x = np.vstack([np.eye(3), np.zeros((1, 3))])
        with pytest.raises(DatasetError):
            make_mm_algorithm("spherical", x, 2)


class TestSemisupervisedPort:
    def test_matches_standalone(self, mmdata, mmlabels):
        ref = semisupervised_kmeanspp(
            mmdata, K, mmlabels, seed=SEED, criteria=CRIT
        )
        res = run_mm_inmemory(
            make_mm_algorithm(
                "semisupervised", mmdata, K, labels=mmlabels,
                seed=SEED, criteria=CRIT,
            )
        )
        np.testing.assert_array_equal(res.centroids, ref.centroids)
        np.testing.assert_array_equal(res.assignment, ref.assignment)
        assert res.iterations == ref.iterations
        assert res.inertia == ref.inertia

    def test_labels_anchor(self, mmdata, mmlabels):
        res = run_mm_inmemory(
            make_mm_algorithm(
                "semisupervised", mmdata, K, labels=mmlabels,
                seed=SEED, criteria=CRIT,
            )
        )
        anchored = mmlabels >= 0
        np.testing.assert_array_equal(
            res.assignment[anchored], mmlabels[anchored]
        )


class TestYinyangPort:
    def test_matches_standalone(self, mmdata):
        ref = yinyang_kmeans(mmdata, K, t=2, seed=SEED, criteria=CRIT)
        res = run_mm_inmemory(
            make_mm_algorithm(
                "yinyang", mmdata, K, t=2, seed=SEED, criteria=CRIT
            )
        )
        np.testing.assert_array_equal(res.centroids, ref.centroids)
        np.testing.assert_array_equal(res.assignment, ref.assignment)
        assert res.iterations == ref.iterations
        assert res.inertia == ref.inertia
        assert res.params["t"] == ref.params["t"] == 2

    def test_pruning_counters_survive_the_port(self, mmdata):
        ref = yinyang_kmeans(mmdata, K, t=2, seed=SEED, criteria=CRIT)
        res = run_mm_inmemory(
            make_mm_algorithm(
                "yinyang", mmdata, K, t=2, seed=SEED, criteria=CRIT
            )
        )
        ref_by_it = {r.iteration: r for r in ref.records}
        for rec in res.records:
            assert (
                rec.dist_computations
                == ref_by_it[rec.iteration].dist_computations
            )
        assert any(r.clause1_rows > 0 for r in res.records)

    def test_sem_io_tracks_pruning(self, mmdata):
        """Globally-filtered rows issue no SSD requests: later SEM
        iterations read fewer bytes than the full first pass."""
        res = run_mm_sem(
            make_mm_algorithm(
                "yinyang", mmdata, K, t=2, seed=SEED, criteria=CRIT
            ),
            row_cache_bytes=0,
        )
        reads = [r.bytes_read for r in res.records]
        assert reads[0] > 0
        assert min(reads[1:]) < reads[0]


class TestYinyangEdges:
    """Satellite: the k<10 single-group clamp and the empty-group
    drop both preserve exactness vs plain Lloyd's."""

    def test_small_k_clamps_to_one_group(self, overlapping):
        c0 = init_centroids(overlapping, 5, "random", seed=2)
        crit = ConvergenceCriteria(max_iters=100)
        ref = lloyd(overlapping, 5, init=c0, criteria=crit)
        res = yinyang_kmeans(overlapping, 5, init=c0, criteria=crit)
        assert res.params["t"] == 1  # t = max(1, 5 // 10)
        np.testing.assert_array_equal(res.assignment, ref.assignment)
        np.testing.assert_allclose(
            res.centroids, ref.centroids, atol=1e-8
        )
        assert res.iterations == ref.iterations

    def test_empty_groups_dropped_stays_exact(self, overlapping):
        """Coincident far-away centroids collapse the centroid
        grouping (empty groups are dropped), and -- because those
        centroids never win a point -- the run stays exact vs
        Lloyd's."""
        near = init_centroids(overlapping, 10, "random", seed=2)
        far = np.full((4, overlapping.shape[1]), 1e3)
        c0 = np.vstack([near, far])  # k=14, only 11 distinct rows
        crit = ConvergenceCriteria(max_iters=100)

        state, _ = yinyang_init(overlapping, c0, t=13, seed=0)
        assert state.t < 13  # empty groups were dropped

        ref = lloyd(overlapping, 14, init=c0, criteria=crit)
        res = yinyang_kmeans(
            overlapping, 14, t=13, init=c0, criteria=crit
        )
        assert res.params["t"] == state.t
        np.testing.assert_array_equal(res.assignment, ref.assignment)
        np.testing.assert_allclose(
            res.centroids, ref.centroids, atol=1e-8
        )
        assert res.iterations == ref.iterations


class TestRegistry:
    def test_unknown_algorithm(self, mmdata):
        with pytest.raises(ConfigError):
            make_mm_algorithm("spectral", mmdata, 3)

    def test_semisupervised_requires_labels(self, mmdata):
        with pytest.raises(ConfigError):
            make_mm_algorithm("semisupervised", mmdata, 3)

    def test_labels_rejected_elsewhere(self, mmdata, mmlabels):
        with pytest.raises(ConfigError):
            make_mm_algorithm("gmm", mmdata, 3, labels=mmlabels)

    def test_unknown_backend(self, mmdata):
        with pytest.raises(ConfigError):
            run_algorithm("gmm", mmdata, 3, backend="quantum")

    def test_run_algorithm_dispatch(self, mmdata):
        res = run_algorithm(
            "spherical", mmdata, K, backend="distributed",
            algorithm_kwargs={"seed": SEED, "criteria": CRIT},
            n_machines=3,
        )
        ref = spherical_kmeans(mmdata, K, seed=SEED, criteria=CRIT)
        np.testing.assert_array_equal(res.centroids, ref.centroids)
        assert res.params["backend"] == "distributed"


class TestMMCheckpointFormat:
    """The generic v4 on-disk format under the v3 durability
    protocol."""

    def _state(self):
        from repro.sem.checkpoint import MMCheckpointState

        return MMCheckpointState(
            iteration=4,
            algorithm="gmm",
            arrays={
                "means": np.arange(6.0).reshape(2, 3),
                "weights": np.array([0.25, 0.75]),
            },
            scalars={"tol": 1e-6},
            n_changed=11,
            params={"k": 2},
        )

    def test_roundtrip(self, tmp_path):
        from repro.sem.checkpoint import (
            load_mm_checkpoint,
            save_mm_checkpoint,
        )

        save_mm_checkpoint(tmp_path, self._state())
        ckpt = load_mm_checkpoint(tmp_path)
        assert ckpt.iteration == 4
        assert ckpt.algorithm == "gmm"
        assert ckpt.scalars == {"tol": 1e-6}
        np.testing.assert_array_equal(
            ckpt.arrays["means"], np.arange(6.0).reshape(2, 3)
        )

    def test_corruption_detected(self, tmp_path):
        from repro.sem.checkpoint import (
            corrupt_checkpoint,
            load_mm_checkpoint,
            save_mm_checkpoint,
        )

        save_mm_checkpoint(tmp_path, self._state())
        corrupt_checkpoint(tmp_path)
        with pytest.raises(CorruptionError):
            load_mm_checkpoint(tmp_path)

    def test_version_mutual_rejection(self, tmp_path, mmdata):
        """v3 loaders refuse v4 files and vice versa, by name."""
        from repro.drivers.common import NumericsLoop, resolve_init
        from repro.sem.checkpoint import (
            CheckpointState,
            load_checkpoint,
            load_mm_checkpoint,
            save_checkpoint,
            save_mm_checkpoint,
        )

        save_mm_checkpoint(tmp_path / "v4", self._state())
        with pytest.raises(IoSubsystemError, match="load_mm_checkpoint"):
            load_checkpoint(tmp_path / "v4")

        loop = NumericsLoop(
            mmdata, resolve_init(mmdata, 3, "random", 0), "mti"
        )
        loop.step()
        snap = loop.export_state()
        save_checkpoint(
            tmp_path / "v3",
            CheckpointState(
                iteration=1,
                centroids=snap["centroids"],
                prev_centroids=snap["prev_centroids"],
                assignment=snap["assignment"],
                ub=snap["ub"],
                sums=snap["sums"],
                counts=snap["counts"],
                n_changed=3,
                params={},
            ),
        )
        with pytest.raises(IoSubsystemError, match="load_checkpoint"):
            load_mm_checkpoint(tmp_path / "v3")

    def test_rejects_bad_array_names(self, tmp_path):
        from repro.sem.checkpoint import (
            MMCheckpointState,
            save_mm_checkpoint,
        )

        bad = MMCheckpointState(
            iteration=0, algorithm="x",
            arrays={"a/b": np.zeros(2)}, scalars={}, n_changed=0,
            params={},
        )
        with pytest.raises(IoSubsystemError):
            save_mm_checkpoint(tmp_path, bad)
        empty = MMCheckpointState(
            iteration=0, algorithm="x", arrays={}, scalars={},
            n_changed=0, params={},
        )
        with pytest.raises(IoSubsystemError):
            save_mm_checkpoint(tmp_path, empty)


class TestSemResume:
    def test_gmm_resume_from_checkpoint(self, mmdata, tmp_path):
        """Kill a SEM GMM run mid-way (iteration cap), resume from its
        checkpoint: the completed run is bit-identical to an
        uninterrupted one."""
        full = run_mm_sem(
            GmmMM(mmdata, K, seed=SEED, max_iters=12),
        )
        run_mm_sem(
            GmmMM(mmdata, K, seed=SEED, max_iters=6),
            checkpoint_dir=tmp_path / "ck", checkpoint_interval=3,
        )
        resumed = run_mm_sem(
            GmmMM(mmdata, K, seed=SEED, max_iters=12),
            checkpoint_dir=tmp_path / "ck", checkpoint_interval=3,
            resume=True,
        )
        np.testing.assert_array_equal(
            resumed.centroids, full.centroids
        )
        np.testing.assert_array_equal(
            resumed.assignment, full.assignment
        )
        assert resumed.iterations < full.iterations

    def test_algorithm_mismatch_rejected(self, mmdata, tmp_path):
        run_mm_sem(
            GmmMM(mmdata, K, seed=SEED, max_iters=4),
            checkpoint_dir=tmp_path / "ck", checkpoint_interval=2,
        )
        with pytest.raises(IoSubsystemError, match="gmm"):
            run_mm_sem(
                make_mm_algorithm(
                    "spherical", mmdata, K, seed=SEED, criteria=CRIT
                ),
                checkpoint_dir=tmp_path / "ck", resume=True,
            )
