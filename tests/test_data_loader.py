"""CSV/NPY import and the convert CLI path."""

import numpy as np
import pytest

from repro.cli import main
from repro.data import convert_to_knor, load_csv, load_npy, read_matrix
from repro.errors import DatasetError


@pytest.fixture()
def csv_file(tmp_path):
    p = tmp_path / "m.csv"
    p.write_text("1.0,2.0,3.0\n4.0,5.0,6.0\n7.5,8.5,9.5\n")
    return p


@pytest.fixture()
def npy_file(tmp_path):
    p = tmp_path / "m.npy"
    np.save(p, np.arange(12, dtype=np.float32).reshape(4, 3))
    return p


class TestLoadCsv:
    def test_basic(self, csv_file):
        x = load_csv(csv_file)
        assert x.shape == (3, 3)
        assert x.dtype == np.float64
        assert x[2, 2] == 9.5

    def test_header_skip(self, tmp_path):
        p = tmp_path / "h.csv"
        p.write_text("a,b\n1,2\n3,4\n")
        x = load_csv(p, skip_header=1)
        assert x.shape == (2, 2)

    def test_other_delimiter(self, tmp_path):
        p = tmp_path / "t.tsv"
        p.write_text("1\t2\n3\t4\n")
        x = load_csv(p, delimiter="\t")
        assert x.shape == (2, 2)

    def test_single_column(self, tmp_path):
        p = tmp_path / "one.csv"
        p.write_text("1\n2\n3\n")
        assert load_csv(p).shape == (3, 1)

    def test_non_numeric_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("1,2\n3,oops\n")
        with pytest.raises(DatasetError):
            load_csv(p)

    def test_ragged_rejected(self, tmp_path):
        p = tmp_path / "ragged.csv"
        p.write_text("1,2,3\n4,5\n")
        with pytest.raises(DatasetError):
            load_csv(p)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_csv(tmp_path / "nope.csv")


class TestLoadNpy:
    def test_basic(self, npy_file):
        x = load_npy(npy_file)
        assert x.shape == (4, 3)
        assert x.dtype == np.float64

    def test_wrong_ndim(self, tmp_path):
        p = tmp_path / "v.npy"
        np.save(p, np.arange(5))
        with pytest.raises(DatasetError):
            load_npy(p)

    def test_non_numeric(self, tmp_path):
        p = tmp_path / "s.npy"
        np.save(p, np.array([["a", "b"]]))
        with pytest.raises(DatasetError):
            load_npy(p)


class TestConvert:
    def test_csv_roundtrip(self, csv_file, tmp_path):
        out = tmp_path / "m.knor"
        convert_to_knor(csv_file, out)
        np.testing.assert_array_equal(
            read_matrix(out), load_csv(csv_file)
        )

    def test_npy_roundtrip(self, npy_file, tmp_path):
        out = tmp_path / "m.knor"
        convert_to_knor(npy_file, out)
        assert read_matrix(out).shape == (4, 3)

    def test_unknown_format(self, csv_file, tmp_path):
        with pytest.raises(DatasetError):
            convert_to_knor(csv_file, tmp_path / "x.knor", fmt="hdf5")

    def test_cli_convert_then_cluster(self, csv_file, tmp_path, capsys):
        out = tmp_path / "m.knor"
        assert main(["convert", str(csv_file), "-o", str(out)]) == 0
        assert "n=3 d=3" in capsys.readouterr().out
        assert main([
            "knori", str(out), "-k", "2", "--max-iters", "5",
        ]) == 0


class TestNonFiniteRejection:
    """NaN/inf cells poison every distance they touch; the loaders
    refuse them by default and name the offending rows."""

    @pytest.fixture()
    def dirty_npy(self, tmp_path):
        x = np.arange(12, dtype=np.float64).reshape(4, 3)
        x[1, 2] = np.nan
        x[3, 0] = np.inf
        p = tmp_path / "dirty.npy"
        np.save(p, x)
        return p

    def test_npy_rejected_naming_rows(self, dirty_npy):
        with pytest.raises(DatasetError, match=r"\[1, 3\]"):
            load_npy(dirty_npy)

    def test_npy_allow_nonfinite_escape(self, dirty_npy):
        x = load_npy(dirty_npy, allow_nonfinite=True)
        assert np.isnan(x[1, 2])
        assert np.isinf(x[3, 0])

    def test_csv_rejected(self, tmp_path):
        p = tmp_path / "dirty.csv"
        p.write_text("1.0,2.0\nnan,4.0\n5.0,inf\n")
        with pytest.raises(DatasetError, match="NaN/inf"):
            load_csv(p)

    def test_csv_allow_nonfinite_escape(self, tmp_path):
        p = tmp_path / "dirty.csv"
        p.write_text("1.0,2.0\nnan,4.0\n")
        x = load_csv(p, allow_nonfinite=True)
        assert np.isnan(x[1, 0])

    def test_error_caps_row_listing(self, tmp_path):
        x = np.full((20, 2), np.nan)
        p = tmp_path / "allbad.npy"
        np.save(p, x)
        with pytest.raises(DatasetError, match=r"\+12 more"):
            load_npy(p)

    def test_convert_passes_flag_through(self, dirty_npy, tmp_path):
        out = tmp_path / "dirty.knor"
        with pytest.raises(DatasetError):
            convert_to_knor(dirty_npy, out)
        convert_to_knor(dirty_npy, out, allow_nonfinite=True)
        assert np.isnan(read_matrix(out)[1, 2])

    def test_cli_flag(self, dirty_npy, tmp_path):
        out = tmp_path / "dirty.knor"
        assert main(["convert", str(dirty_npy), "-o", str(out)]) == 2
        assert main([
            "convert", str(dirty_npy), "-o", str(out),
            "--allow-nonfinite",
        ]) == 0


class TestKTooLarge:
    """k > n is a dataset-shape mistake, not a numerics fault: every
    driver raises the same typed error before touching simulated
    hardware."""

    def test_drivers_reject_k_gt_n(self, tmp_path):
        from repro import knord, knori, knors
        from repro.data import write_matrix

        x = np.arange(10, dtype=np.float64).reshape(5, 2)
        with pytest.raises(DatasetError, match="k=7"):
            knori(x, 7)
        with pytest.raises(DatasetError, match="k=7"):
            knord(x, 7, n_machines=2)
        path = write_matrix(tmp_path / "m.knor", x)
        with pytest.raises(DatasetError, match="k=7"):
            knors(str(path), 7)
