"""Crash matrix for the serving plane.

Extends the MM crash-matrix pattern to the two serving paths:

* **Ingest** -- ``MiniBatchMM`` is SGD with a live RNG stream, the
  hardest state to recover: a worker crash mid-ingest must land on the
  bit-identical trajectory whether recovery replays from scratch or
  restores a v4 checkpoint (whose manifest carries the PCG64 state).
* **Query** -- an in-flight query batch hit by SSD read errors or
  CRC-detected corruption (page or cached row) must re-fetch clean
  bytes and answer every query identically to the fault-free run;
  faults may only cost simulated time.

Run with ``pytest -m faults``.
"""

import numpy as np
import pytest

from repro import FaultPlan
from repro.faults import FaultEvent
from repro.runtime import (
    RecordingObserver,
    run_mm_inmemory,
    run_mm_sem,
)
from repro.serve import MiniBatchMM, ServePlane
from repro.simhw import ArrivalProcess

pytestmark = pytest.mark.faults

K = 5
SEED = 3
N_STEPS = 12
CRASH_ITERATIONS = (0, 2, 5)
KW = dict(row_cache_bytes=0, page_cache_bytes=0)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(23)
    centers = rng.normal(scale=3.0, size=(K, 4))
    x = np.vstack(
        [rng.normal(loc=c, scale=1.4, size=(160, 4)) for c in centers]
    )
    rng.shuffle(x)
    return np.ascontiguousarray(x)


def ingest(dataset):
    """A fresh streaming driver -- MM algorithms carry state."""
    return MiniBatchMM(
        dataset, K, batch_size=128, n_steps=N_STEPS, seed=SEED
    )


def assert_matches(baseline, faulty, events):
    np.testing.assert_array_equal(baseline.centroids, faulty.centroids)
    np.testing.assert_array_equal(
        baseline.assignment, faulty.assignment
    )
    assert faulty.iterations == baseline.iterations
    assert faulty.inertia == baseline.inertia
    assert any(ev.name == "fault" for ev in events)
    assert any(ev.name == "recovery" for ev in events)


class TestIngestInMemory:
    @pytest.fixture(scope="class")
    def baseline(self, dataset):
        return run_mm_inmemory(ingest(dataset))

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    def test_worker_crash_mid_ingest(self, dataset, baseline, crash_it):
        """The crash discards a partially-applied sample stream;
        recovery resets RNG + counts + centroids together."""
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="worker", iteration=crash_it,
                        kind="crash")]
        )
        rec = RecordingObserver()
        faulty = run_mm_inmemory(
            ingest(dataset), faults=plan, observers=(rec,)
        )
        assert_matches(baseline, faulty, rec.fault_events())


class TestIngestSem:
    @pytest.fixture(scope="class")
    def baseline(self, dataset):
        return run_mm_sem(ingest(dataset), **KW)

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    @pytest.mark.parametrize("checkpointed", [False, True])
    def test_worker_crash_mid_ingest(
        self, dataset, baseline, tmp_path, crash_it, checkpointed
    ):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="worker", iteration=crash_it,
                        kind="crash")]
        )
        rec = RecordingObserver()
        kw = dict(KW)
        if checkpointed:
            kw.update(checkpoint_dir=tmp_path / "ck",
                      checkpoint_interval=2)
        faulty = run_mm_sem(
            ingest(dataset), faults=plan, observers=(rec,), **kw
        )
        assert_matches(baseline, faulty, rec.fault_events())
        if checkpointed and crash_it >= 2:
            # The v4 checkpoint (PCG64 state included) was restored
            # instead of replaying the sample stream from step 0.
            recoveries = [
                e for e in rec.fault_events()
                if e.name == "recovery"
                and e.payload["site"] == "worker"
            ]
            assert recoveries[0].payload["detail"]["resume_at"] > 0

    @pytest.mark.parametrize("kind", ["read_error", "slow"])
    def test_ssd_fault_during_ingest(self, dataset, baseline, kind):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="ssd", iteration=2, kind=kind)]
        )
        rec = RecordingObserver()
        faulty = run_mm_sem(
            ingest(dataset), faults=plan, observers=(rec,), **KW
        )
        assert_matches(baseline, faulty, rec.fault_events())
        base_ns = {r.iteration: r.sim_ns for r in baseline.records}
        faulty_ns = {r.iteration: r.sim_ns for r in faulty.records}
        assert faulty_ns[2] >= base_ns[2]

    @pytest.mark.parametrize(
        "crash_point",
        ["arrays-written", "manifest-tmp-written", "committed-no-gc"],
    )
    def test_mid_checkpoint_crash(
        self, dataset, baseline, tmp_path, crash_point
    ):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="checkpoint", iteration=3,
                        kind=crash_point)]
        )
        rec = RecordingObserver()
        faulty = run_mm_sem(
            ingest(dataset), faults=plan, observers=(rec,),
            checkpoint_dir=tmp_path / "ck", checkpoint_interval=2,
            **KW,
        )
        assert_matches(baseline, faulty, rec.fault_events())

    def test_checkpoint_corruption(self, dataset, baseline, tmp_path):
        """A corrupt checkpoint must CRC-fail, be quarantined, and
        recovery replays the sample stream from scratch."""
        plan = FaultPlan.from_schedule([
            FaultEvent(site="corruption", iteration=3,
                       kind="checkpoint"),
            FaultEvent(site="worker", iteration=4, kind="crash"),
        ])
        rec = RecordingObserver()
        faulty = run_mm_sem(
            ingest(dataset), faults=plan, observers=(rec,),
            checkpoint_dir=tmp_path / "ck", checkpoint_interval=2,
            **KW,
        )
        assert_matches(baseline, faulty, rec.fault_events())
        quarantined = [
            e for e in rec.fault_events() if e.name == "quarantine"
        ]
        assert any(
            e.payload["where"] == "checkpoint" for e in quarantined
        )


class TestQueryPath:
    """Faults hitting in-flight query batches (the batch index plays
    the iteration's role at every existing fault site)."""

    TRAFFIC = dict(
        n_arrivals=1500, rate_qps=300_000.0, seed=17, skew=6.0,
    )

    @pytest.fixture(scope="class")
    def fitted(self, dataset):
        fit = run_mm_inmemory(ingest(dataset))
        return dataset, fit.centroids

    @pytest.fixture(scope="class")
    def fault_free(self, fitted):
        x, centroids = fitted
        return ServePlane(x, centroids).serve(
            ArrivalProcess(**self.TRAFFIC)
        )

    def _serve_with(self, fitted, plan, **plane_kw):
        x, centroids = fitted
        rec = RecordingObserver()
        res = ServePlane(
            x, centroids, faults=plan, observers=(rec,), **plane_kw
        ).serve(ArrivalProcess(**self.TRAFFIC))
        return res, rec

    def test_ssd_read_error_in_flight(self, fitted, fault_free):
        """A failed read under a query batch retries and answers."""
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="ssd", iteration=0, kind="read_error")]
        )
        res, rec = self._serve_with(fitted, plan)
        np.testing.assert_array_equal(
            res.assignments, fault_free.assignments
        )
        events = rec.fault_events()
        assert any(e.name == "fault" for e in events)
        assert any(e.name == "retry" for e in events)
        assert res.io_service_ns >= fault_free.io_service_ns

    def test_page_corruption_in_flight(self, fitted, fault_free):
        """CRC catches a corrupt SSD page under a cold query batch;
        the clean re-read answers identically."""
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="corruption", iteration=0, kind="page")]
        )
        res, rec = self._serve_with(fitted, plan)
        np.testing.assert_array_equal(
            res.assignments, fault_free.assignments
        )
        events = rec.fault_events()
        assert any(e.name == "corruption" for e in events)
        assert any(e.name == "recovery" for e in events)

    def test_cached_row_corruption_in_flight(self, fitted):
        """A corrupt row-cache line under a hot query batch is
        quarantined and rerouted through SSD; answers unchanged."""
        from repro.runtime import RunObserver

        class _IoProbe(RunObserver):
            def __init__(self):
                self.hit_batches = []

            def on_io(self, iteration, io):
                if io.row_cache_hits > 0:
                    self.hit_batches.append(iteration)

        x, centroids = fitted
        # Warm run to find a batch index with row-cache hits.
        probe = _IoProbe()
        warm = ServePlane(x, centroids, observers=(probe,)).serve(
            ArrivalProcess(**self.TRAFFIC)
        )
        assert warm.row_cache_hits > 0
        assert probe.hit_batches, "traffic never hit the cache"
        victim = probe.hit_batches[0]

        plan = FaultPlan.from_schedule(
            [FaultEvent(site="corruption", iteration=victim,
                        kind="cache")]
        )
        res, rec = self._serve_with(fitted, plan)
        np.testing.assert_array_equal(
            res.assignments, warm.assignments
        )
        events = rec.fault_events()
        assert any(e.name == "corruption" for e in events)
        assert any(e.name == "quarantine" for e in events)
        assert any(e.name == "recovery" for e in events)

    def test_fault_trace_is_reproducible(self, fitted):
        """Same fault plan + same arrival seed => identical fault
        event stream and identical latency JSON."""
        plan_events = [
            FaultEvent(site="ssd", iteration=0, kind="read_error")
        ]
        res1, rec1 = self._serve_with(
            fitted, FaultPlan.from_schedule(plan_events)
        )
        res2, rec2 = self._serve_with(
            fitted, FaultPlan.from_schedule(plan_events)
        )
        assert rec1.fault_events() == rec2.fault_events()
        assert res1.to_dict() == res2.to_dict()
