"""knord driver: distributed runs on the simulated cluster."""

import numpy as np
import pytest

from repro import ConvergenceCriteria, knord, knori
from repro.core import init_centroids
from repro.errors import ConfigError, DatasetError

CRIT = ConvergenceCriteria(max_iters=30)


def test_matches_single_machine(overlapping):
    c0 = init_centroids(overlapping, 8, "random", seed=3)
    single = knori(overlapping, 8, init=c0)
    for p in (1, 2, 4, 7):
        dist = knord(overlapping, 8, n_machines=p, init=c0)
        np.testing.assert_array_equal(dist.assignment, single.assignment)
        np.testing.assert_allclose(
            dist.centroids, single.centroids, atol=1e-8
        )
        assert dist.iterations == single.iterations


def test_unpruned_matches_too(overlapping):
    c0 = init_centroids(overlapping, 6, "random", seed=1)
    a = knord(overlapping, 6, n_machines=3, pruning=None, init=c0)
    b = knord(overlapping, 6, n_machines=3, pruning="mti", init=c0)
    np.testing.assert_array_equal(a.assignment, b.assignment)
    assert a.algorithm == "knord-"
    assert b.algorithm == "knord"


def test_speedup_with_machines():
    """Distributed wins once per-machine compute outweighs the
    allreduce latency -- so test at a compute-heavy size."""
    from repro.data import rand_multivariate

    x = rand_multivariate(200_000, 16, seed=9)
    crit = ConvergenceCriteria(max_iters=6)
    t1 = knord(x, 8, n_machines=1, pruning=None, seed=1, criteria=crit)
    t4 = knord(x, 8, n_machines=4, pruning=None, seed=1, criteria=crit)
    assert t4.sim_seconds < t1.sim_seconds


def test_latency_bound_at_tiny_scale(friendster_small):
    """At tiny n the collective dominates and more machines do NOT
    help -- the cost model must show that, not hide it."""
    t1 = knord(friendster_small, 8, n_machines=1, pruning=None,
               seed=1, criteria=CRIT)
    t4 = knord(friendster_small, 8, n_machines=4, pruning=None,
               seed=1, criteria=CRIT)
    assert t4.sim_seconds > t1.sim_seconds


def test_allreduce_charged(overlapping):
    res = knord(overlapping, 5, n_machines=4, seed=0, criteria=CRIT)
    for rec in res.records:
        assert rec.allreduce_ns > 0
        assert rec.network_bytes > 0
    single = knord(overlapping, 5, n_machines=1, seed=0, criteria=CRIT)
    for rec in single.records:
        assert rec.allreduce_ns == 0.0


def test_mti_prunes_distributed(friendster_small):
    m = knord(friendster_small, 8, n_machines=4, seed=2, criteria=CRIT)
    n = knord(friendster_small, 8, n_machines=4, pruning=None, seed=2,
              criteria=CRIT)
    assert m.total_dist_computations < n.total_dist_computations
    assert m.sim_seconds < n.sim_seconds


def test_memory_is_per_machine(overlapping):
    one = knord(overlapping, 5, n_machines=1, seed=0, criteria=CRIT)
    four = knord(overlapping, 5, n_machines=4, seed=0, criteria=CRIT)
    assert four.params["memory_scope"] == "per_machine"
    # A quarter of the rows -> roughly a quarter of the data bytes.
    assert four.memory_breakdown["data"] == pytest.approx(
        one.memory_breakdown["data"] / 4, rel=0.05
    )


def test_elkan_rejected(overlapping):
    with pytest.raises(ConfigError):
        knord(overlapping, 5, pruning="elkan")


def test_too_many_machines(overlapping):
    with pytest.raises(DatasetError):
        knord(overlapping[:3], 2, n_machines=5)


def test_uneven_shards_handled(overlapping):
    # 3000 rows over 7 machines: shard sizes differ.
    res = knord(overlapping, 5, n_machines=7, seed=0, criteria=CRIT)
    assert res.assignment.shape[0] == overlapping.shape[0]
    assert res.converged


def test_threads_per_machine_override(overlapping):
    res = knord(
        overlapping, 5, n_machines=2, threads_per_machine=4, seed=0,
        criteria=CRIT,
    )
    assert res.params["threads_per_machine"] == 4
