"""The SEM perf rework must be a pure speedup: the batch-LRU page
cache, vectorized SAFS fetch path and vectorized row-cache refresh are
compared against the frozen pre-change implementations in
``repro.perf.legacy``, and the async I/O pipeline against ``--sync-io``
accounting -- every counter bit-identical, only simulated time moves."""

from __future__ import annotations

import numpy as np
import pytest

import repro.sem.safs as safs_mod
from repro import knors
from repro.core import ConvergenceCriteria
from repro.faults import FaultPlan, FaultSpec
from repro.perf.legacy import (
    LegacyPageCache,
    LegacyRowCache,
    LegacySafs,
)
from repro.sem import PageCache, RowCache, Safs
from repro.simhw.ssd import OCZ_INTREPID_ARRAY


def _cache_state(cache):
    return (cache.hits, cache.misses, len(cache),
            cache.pages_lru_order())


def _drive_pair(legacy, batch, streams):
    """Run identical page streams through both caches, checking state
    after every batch (not just at the end)."""
    for pages in streams:
        miss = [p for p in pages.tolist() if not legacy.lookup(p)]
        for p in miss:
            legacy.admit(p)
        hit = batch.lookup_batch(pages)
        batch.admit_batch(pages[~hit])
        assert _cache_state(legacy) == _cache_state(batch)


class TestPageCacheEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("capacity_pages", [1, 7, 64, 500])
    def test_random_streams(self, seed, capacity_pages):
        rng = np.random.default_rng(seed)
        streams = [
            np.unique(rng.integers(0, 800, size=rng.integers(1, 400)))
            for _ in range(12)
        ]
        _drive_pair(
            LegacyPageCache(capacity_pages * 4096, 4096),
            PageCache(capacity_pages * 4096, 4096),
            streams,
        )

    def test_interleaved_single_ops(self):
        """Per-page lookup/admit (the scalar wrappers) match too."""
        rng = np.random.default_rng(9)
        legacy = LegacyPageCache(5 * 4096, 4096)
        batch = PageCache(5 * 4096, 4096)
        for _ in range(600):
            p = int(rng.integers(0, 20))
            if rng.random() < 0.5:
                assert legacy.lookup(p) == batch.lookup(p)
            else:
                legacy.admit(p)
                batch.admit(p)
            assert _cache_state(legacy) == _cache_state(batch)

    def test_duplicate_pages_in_one_admit(self):
        """Within one batch the *last* occurrence sets recency, exactly
        like admitting the pages one by one."""
        legacy = LegacyPageCache(3 * 4096, 4096)
        batch = PageCache(3 * 4096, 4096)
        pages = [1, 2, 1, 3, 2, 1]
        for p in pages:
            legacy.admit(p)
        batch.admit_batch(np.array(pages, dtype=np.int64))
        assert _cache_state(legacy) == _cache_state(batch)


def _batch_tuple(b):
    return (b.rows_requested, b.bytes_requested, b.pages_needed,
            b.page_cache_hits, b.pages_from_ssd, b.merged_requests,
            b.bytes_read, b.service_ns, b.io_retries, b.fault_delay_ns)


class TestSafsEquivalence:
    ROW_BYTES = [8, 64, 512, 3000, 4096, 5000]

    @pytest.mark.parametrize("row_bytes", ROW_BYTES)
    def test_fetch_rows_counters(self, row_bytes):
        rng = np.random.default_rng(17)
        n_rows = 20_000
        legacy = LegacySafs(OCZ_INTREPID_ARRAY,
                            page_cache_bytes=256 * 4096)
        new = Safs(OCZ_INTREPID_ARRAY, page_cache_bytes=256 * 4096)
        for it in range(4):
            rows = np.unique(rng.integers(0, n_rows, size=3_000))
            a = legacy.fetch_rows(rows, row_bytes, iteration=it)
            b = new.fetch_rows(rows, row_bytes, iteration=it)
            assert _batch_tuple(a) == _batch_tuple(b)
            # No queue attached: async service collapses to sync.
            assert b.service_async_ns == b.service_ns

    @pytest.mark.parametrize("row_bytes", ROW_BYTES)
    def test_pages_of_rows(self, row_bytes):
        rng = np.random.default_rng(23)
        legacy = LegacySafs(OCZ_INTREPID_ARRAY, page_cache_bytes=0)
        new = Safs(OCZ_INTREPID_ARRAY, page_cache_bytes=0)
        rows = np.unique(rng.integers(0, 50_000, size=2_000))
        np.testing.assert_array_equal(
            legacy.pages_of_rows(rows, row_bytes),
            new.pages_of_rows(rows, row_bytes),
        )

    def test_pages_of_rows_chunked_expansion(self, monkeypatch):
        """Page-spanning rows through a tiny chunk budget: the chunked
        walk must agree with the legacy full-matrix expansion."""
        monkeypatch.setattr(safs_mod, "_EXPAND_CELLS", 16)
        legacy = LegacySafs(OCZ_INTREPID_ARRAY, page_cache_bytes=0)
        new = Safs(OCZ_INTREPID_ARRAY, page_cache_bytes=0)
        rng = np.random.default_rng(5)
        for row_bytes in (4096, 5000, 9000, 20_000):
            rows = np.unique(rng.integers(0, 500, size=120))
            np.testing.assert_array_equal(
                legacy.pages_of_rows(rows, row_bytes),
                new.pages_of_rows(rows, row_bytes),
            )

    def test_merge_requests_sorted_contract(self):
        rng = np.random.default_rng(3)
        pages = np.unique(rng.integers(0, 10_000, size=4_000))
        assert Safs.merge_requests(pages) == \
            LegacySafs.merge_requests(pages)

    @pytest.mark.parametrize("fault_seed", [0, 3, 11])
    def test_fetch_rows_with_faults(self, fault_seed):
        spec = FaultSpec(ssd_error_rate=0.4, ssd_slow_rate=0.4)
        rng = np.random.default_rng(31)

        def run(cls):
            safs = cls(OCZ_INTREPID_ARRAY,
                       page_cache_bytes=64 * 4096,
                       faults=FaultPlan(spec, seed=fault_seed))
            rng_local = np.random.default_rng(31)
            return [
                _batch_tuple(safs.fetch_rows(
                    np.unique(rng_local.integers(0, 8_000, size=1_500)),
                    512, iteration=it,
                ))
                for it in range(6)
            ]

        assert run(LegacySafs) == run(Safs)


class TestRowCacheEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n_parts", [1, 4, 16])
    def test_refresh_matches_legacy(self, seed, n_parts):
        # Capacity divisible by partitions: the remainder fix is a
        # no-op, so legacy and vectorized admit identical row sets.
        n_rows, cap_rows = 50_000, 8 * n_parts * 100
        rng = np.random.default_rng(seed)
        legacy = LegacyRowCache(cap_rows * 8, 8, n_rows,
                                n_partitions=n_parts)
        new = RowCache(cap_rows * 8, 8, n_rows, n_partitions=n_parts)
        it = legacy.update_interval
        for _ in range(4):
            active = np.unique(rng.integers(0, n_rows, size=20_000))
            assert legacy.refresh(it, active) == new.refresh(it, active)
            np.testing.assert_array_equal(legacy._cached, new._cached)
            assert legacy._next_refresh == new._next_refresh
            it = new._next_refresh

    def test_empty_partitions(self):
        """More partitions than rows: searchsorted on repeated bounds
        must still land every row in the right partition."""
        legacy = LegacyRowCache(10 * 8, 8, 6, n_partitions=10)
        new = RowCache(10 * 8, 8, 6, n_partitions=10)
        active = np.arange(6)
        assert legacy.refresh(5, active) == new.refresh(5, active)
        np.testing.assert_array_equal(legacy._cached, new._cached)


def _io_digest(res):
    return [
        (r.cache_hits, r.cache_misses, r.io_requests,
         r.bytes_requested, r.bytes_read, r.rows_active)
        for r in res.records
    ]


class TestAsyncSyncConformance:
    """The tentpole invariant: identical numerics and counters across
    I/O modes; only simulated time moves, and only downward."""

    def _pair(self, x, **kw):
        crit = ConvergenceCriteria(max_iters=10)
        sync = knors(x, 4, seed=0, criteria=crit, io_mode="sync", **kw)
        asyn = knors(x, 4, seed=0, criteria=crit, io_mode="async", **kw)
        return sync, asyn

    def _assert_identical(self, sync, asyn):
        np.testing.assert_array_equal(sync.assignment, asyn.assignment)
        np.testing.assert_array_equal(sync.centroids, asyn.centroids)
        assert sync.iterations == asyn.iterations
        assert sync.converged == asyn.converged
        assert _io_digest(sync) == _io_digest(asyn)

    def test_clean_run(self, blobs):
        sync, asyn = self._pair(blobs)
        self._assert_identical(sync, asyn)
        assert asyn.sim_seconds <= sync.sim_seconds

    @pytest.mark.parametrize("pruning", [None, "mti"])
    def test_pruning_modes(self, blobs, pruning):
        sync, asyn = self._pair(blobs, pruning=pruning)
        self._assert_identical(sync, asyn)
        assert asyn.sim_seconds <= sync.sim_seconds

    def test_async_strictly_faster_when_io_bound(self):
        """On an I/O-heavy configuration the pipeline must actually
        hide service time, not just tie (the Figure 6-7 claim)."""
        rng = np.random.default_rng(4)
        centers = rng.normal(scale=8.0, size=(8, 16))
        x = centers[rng.integers(8, size=8_000)] \
            + rng.normal(size=(8_000, 16))
        crit = ConvergenceCriteria(max_iters=8)
        init = x[rng.choice(8_000, size=8, replace=False)].copy()
        sync = knors(x, 8, init=init, criteria=crit, io_mode="sync")
        asyn = knors(x, 8, init=init, criteria=crit, io_mode="async")
        self._assert_identical(sync, asyn)
        assert asyn.sim_seconds < sync.sim_seconds

    @pytest.mark.parametrize("fault_seed", [1, 7])
    def test_fault_runs_stay_identical(self, blobs, fault_seed):
        """Fault delay is computed from the sync service time, so
        injected faults cannot desynchronize the two modes."""
        spec = FaultSpec(ssd_error_rate=0.2, ssd_slow_rate=0.2)
        sync, asyn = self._pair(
            blobs, faults=FaultPlan(spec, seed=fault_seed)
        )
        self._assert_identical(sync, asyn)
        assert asyn.sim_seconds <= sync.sim_seconds

    def test_queue_depth_one_matches_sync_time(self, blobs):
        """A depth-1 queue amortizes nothing; with no amortization and
        a cold prefetcher the first iteration's wall matches sync."""
        crit = ConvergenceCriteria(max_iters=3)
        sync = knors(blobs, 4, seed=0, criteria=crit, io_mode="sync")
        asyn = knors(blobs, 4, seed=0, criteria=crit, io_mode="async",
                     io_queue_depth=1)
        assert asyn.records[0].sim_ns == sync.records[0].sim_ns
