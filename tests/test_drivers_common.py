"""Driver plumbing: NumericsLoop, scheduler lookup, init resolution."""

import numpy as np
import pytest

from repro.core import init_centroids
from repro.drivers.common import (
    NumericsLoop,
    check_pruning,
    make_scheduler,
    resolve_init,
)
from repro.errors import ConfigError
from repro.sched import FifoScheduler, NumaAwareScheduler, StaticScheduler


class TestLookups:
    def test_make_scheduler(self):
        assert isinstance(make_scheduler("numa_aware"), NumaAwareScheduler)
        assert isinstance(make_scheduler("fifo"), FifoScheduler)
        assert isinstance(make_scheduler("static"), StaticScheduler)
        with pytest.raises(ConfigError):
            make_scheduler("work_first")

    def test_check_pruning(self):
        assert check_pruning("mti") == "mti"
        assert check_pruning(None) is None
        with pytest.raises(ConfigError):
            check_pruning("yinyang")

    def test_resolve_init_array_and_name(self, overlapping):
        c = resolve_init(overlapping, 4, "kmeans++", 1)
        assert c.shape == (4, 8)
        same = resolve_init(overlapping, 4, c, 0)
        np.testing.assert_array_equal(same, c)
        assert same is not c  # defensive copy
        with pytest.raises(ConfigError):
            resolve_init(overlapping, 4, np.zeros((3, 8)), 0)


class TestNumericsLoop:
    def test_step_sequence_matches_direct_mti(self, overlapping):
        from repro.core import mti_init, mti_iteration

        c0 = init_centroids(overlapping, 5, "random", seed=1)
        loop = NumericsLoop(overlapping, c0, "mti")
        state, res = mti_init(overlapping, c0)
        out0 = loop.step()
        np.testing.assert_allclose(
            out0.new_centroids, res.new_centroids
        )
        prev, cur = c0, res.new_centroids
        for _ in range(4):
            r = mti_iteration(overlapping, cur, prev, state)
            out = loop.step()
            assert out.n_changed == r.n_changed
            np.testing.assert_allclose(
                out.new_centroids, r.new_centroids
            )
            prev, cur = cur, r.new_centroids
            if r.n_changed == 0:
                break

    def test_export_restore_roundtrip_mti(self, overlapping):
        c0 = init_centroids(overlapping, 5, "random", seed=2)
        a = NumericsLoop(overlapping, c0, "mti")
        for _ in range(3):
            a.step()
        snap = a.export_state()

        b = NumericsLoop(overlapping, c0, "mti")
        b.restore_state(snap)
        # Continue both; they must stay in lockstep.
        for _ in range(5):
            ra = a.step()
            rb = b.step()
            assert ra.n_changed == rb.n_changed
            np.testing.assert_array_equal(a.assignment, b.assignment)
            if ra.n_changed == 0:
                break

    def test_export_restore_roundtrip_unpruned(self, overlapping):
        c0 = init_centroids(overlapping, 4, "random", seed=3)
        a = NumericsLoop(overlapping, c0, None)
        for _ in range(2):
            a.step()
        snap = a.export_state()
        b = NumericsLoop(overlapping, c0, None)
        b.restore_state(snap)
        ra, rb = a.step(), b.step()
        assert ra.n_changed == rb.n_changed
        np.testing.assert_allclose(
            ra.new_centroids, rb.new_centroids
        )

    def test_elkan_checkpoint_rejected(self, overlapping):
        c0 = init_centroids(overlapping, 4, "random", seed=0)
        loop = NumericsLoop(overlapping, c0, "elkan")
        loop.step()
        with pytest.raises(ConfigError):
            loop.export_state()

    def test_restore_mti_without_bounds_rejected(self, overlapping):
        c0 = init_centroids(overlapping, 4, "random", seed=0)
        loop = NumericsLoop(overlapping, c0, "mti")
        with pytest.raises(ConfigError):
            loop.restore_state(
                {
                    "iteration": 2,
                    "centroids": c0,
                    "prev_centroids": c0,
                    "assignment": np.zeros(
                        overlapping.shape[0], dtype=np.int32
                    ),
                    "ub": None,
                }
            )

    def test_snapshot_is_deep_copy(self, overlapping):
        c0 = init_centroids(overlapping, 4, "random", seed=4)
        loop = NumericsLoop(overlapping, c0, "mti")
        loop.step()
        snap = loop.export_state()
        loop.step()  # mutate the live state
        # Snapshot unaffected by subsequent stepping.
        assert snap["iteration"] == 1
        fresh = NumericsLoop(overlapping, c0, "mti")
        fresh.restore_state(snap)
        assert fresh.iteration == 1
