"""End-to-end integration: the three modules agree on real datasets,
SEM runs touch real files, and the headline performance relationships
from the paper's evaluation hold at reproduction scale."""

import numpy as np
import pytest

from repro import ConvergenceCriteria, knord, knori, knors, lloyd
from repro.core import init_centroids
from repro.data import friendster_like, load_dataset, write_matrix


@pytest.fixture(scope="module")
def fr8():
    return friendster_like(16384, 8)


def test_all_modules_identical_results(fr8, tmp_path):
    """knori == knors == knord == serial Lloyd, bit-for-bit on
    assignments."""
    k = 10
    c0 = init_centroids(fr8, k, "random", seed=11)
    ref = lloyd(fr8, k, init=c0)
    im = knori(fr8, k, init=c0)
    path = write_matrix(tmp_path / "fr8.knor", fr8)
    sem = knors(path, k, init=c0)
    dist = knord(fr8, k, n_machines=4, init=c0)
    for res in (im, sem, dist):
        np.testing.assert_array_equal(res.assignment, ref.assignment)
        np.testing.assert_allclose(res.centroids, ref.centroids,
                                   atol=1e-7)
        assert res.converged == ref.converged


def test_headline_performance_relationships(fr8):
    """The evaluation's qualitative claims, all in one place."""
    crit = ConvergenceCriteria(max_iters=20)
    im_mti = knori(fr8, 10, seed=7, criteria=crit)
    im_none = knori(fr8, 10, pruning=None, seed=7, criteria=crit)
    im_elkan = knori(fr8, 10, pruning="elkan", seed=7, criteria=crit)

    # MTI speeds up k-means by a few factors (Fig 8).
    assert im_mti.sim_seconds < im_none.sim_seconds
    # Elkan prunes more computation than MTI (Section 4's trade-off)...
    assert (
        im_elkan.total_dist_computations
        <= im_mti.total_dist_computations
    )
    # ...but MTI uses far less memory than Elkan's O(nk) bounds.
    assert im_mti.peak_memory_bytes < im_elkan.peak_memory_bytes


def test_sem_within_small_factor_of_in_memory(fr8, tmp_path):
    """Section 8.8: knors runs within a small constant factor of
    knori when I/O is maskable."""
    crit = ConvergenceCriteria(max_iters=15)
    path = write_matrix(tmp_path / "fr8.knor", fr8)
    im = knori(fr8, 10, seed=3, criteria=crit)
    sem = knors(path, 10, seed=3, criteria=crit)
    assert sem.sim_seconds < 10 * im.sim_seconds


def test_ru_worst_case_prunes_less_than_friendster(fr8):
    """Uniform random data prunes worse than natural clusters
    (Section 8.8's premise)."""
    ru = load_dataset("ru-2b", n=16384)
    crit = ConvergenceCriteria(max_iters=12)
    nat = knori(fr8, 10, seed=5, criteria=crit)
    uni = knori(ru, 10, seed=5, criteria=crit)

    def prune_frac(res):
        n, k = res.params["n"], res.params["k"]
        full = n * k * res.iterations
        return 1.0 - res.total_dist_computations / full

    assert prune_frac(nat) > prune_frac(uni)


def test_datasets_registry_end_to_end():
    for name in ("rm-856m", "rm-1b", "ru-2b"):
        x = load_dataset(name, n=2048)
        res = knori(x, 5, seed=0, criteria=ConvergenceCriteria(max_iters=8))
        assert res.iterations >= 1
        assert np.isfinite(res.inertia)


def test_degenerate_inputs_handled():
    rng = np.random.default_rng(0)
    # d = 1
    x1 = rng.normal(size=(500, 1))
    assert knori(x1, 3, seed=0).converged
    # Constant data: all points identical.
    xc = np.ones((100, 4))
    res = knori(xc, 2, seed=0)
    assert np.isfinite(res.centroids).all()
    # k = n.
    xs = rng.normal(size=(8, 2)) * 100
    res = knori(xs, 8, seed=0)
    assert res.inertia == pytest.approx(0.0, abs=1e-9)


def test_reproducibility_across_runs(fr8):
    a = knori(fr8, 10, seed=42)
    b = knori(fr8, 10, seed=42)
    np.testing.assert_array_equal(a.assignment, b.assignment)
    assert a.sim_seconds == b.sim_seconds  # deterministic cost model
    for ra, rb in zip(a.records, b.records):
        assert ra.sim_ns == rb.sim_ns
