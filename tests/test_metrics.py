"""Metrics: result records, Table 1 formulas, table rendering."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.metrics import (
    IterationRecord,
    ROUTINE_MEMORY_FORMULAS,
    RunResult,
    render_series,
    render_table,
    table1_bytes,
)
from repro.metrics.memory import elkan_ti_bytes, knori_bytes, knors_bytes


def make_result(sim_ns_list):
    return RunResult(
        algorithm="test",
        centroids=np.zeros((2, 2)),
        assignment=np.array([0, 1, 0], dtype=np.int32),
        iterations=len(sim_ns_list),
        converged=True,
        inertia=1.0,
        records=[
            IterationRecord(
                iteration=i, sim_ns=ns, n_changed=0,
                dist_computations=10, bytes_read=100,
                bytes_requested=50,
            )
            for i, ns in enumerate(sim_ns_list)
        ],
        memory_breakdown={"data": 1000, "bounds": 24},
    )


class TestRunResult:
    def test_time_aggregation(self):
        r = make_result([1e9, 2e9, 3e9])
        assert r.sim_seconds == pytest.approx(6.0)
        assert r.sim_seconds_per_iter == pytest.approx(2.0)

    def test_empty_records(self):
        r = make_result([])
        assert r.sim_seconds == 0.0
        assert r.sim_seconds_per_iter == 0.0

    def test_memory_and_io_totals(self):
        r = make_result([1e9, 1e9])
        assert r.peak_memory_bytes == 1024
        assert r.total_bytes_read == 200
        assert r.total_bytes_requested == 100
        assert r.total_dist_computations == 20

    def test_cluster_sizes(self):
        r = make_result([1e9])
        np.testing.assert_array_equal(r.cluster_sizes, [2, 1])

    def test_summary_contains_key_facts(self):
        s = make_result([1e9]).summary()
        assert "test" in s
        assert "converged" in s


class TestTable1:
    N, D, K, T = 1_000_000, 32, 10, 48

    def test_ordering_matches_paper(self):
        """Table 1's qualitative ordering at realistic parameters:
        knors-- < knors < knori- < knori << elkan."""
        semm = table1_bytes("knors--", self.N, self.D, self.K, self.T)
        sem = knors_bytes(self.N, self.D, self.K, self.T)
        imm = table1_bytes("knori-", self.N, self.D, self.K, self.T)
        im = knori_bytes(self.N, self.D, self.K, self.T)
        elkan = elkan_ti_bytes(self.N, self.D, self.K, self.T)
        assert semm < sem < imm < im < elkan

    def test_mti_increment_is_small(self):
        """MTI adds O(n + k^2): under 5% of the data size here --
        the paper's 'negligible amounts' claim (Fig 8c)."""
        imm = table1_bytes("knori-", self.N, self.D, self.K, self.T)
        im = table1_bytes("knori", self.N, self.D, self.K, self.T)
        data = self.N * self.D * 8
        assert (im - imm) / data < 0.05

    def test_mti_bytes_per_point_in_paper_range(self):
        """Paper: the O(n) term adds 6-10 bytes per data point."""
        imm = table1_bytes("knori-", self.N, self.D, self.K, self.T)
        im = table1_bytes("knori", self.N, self.D, self.K, self.T)
        per_point = (im - imm) / self.N
        assert 6 <= per_point <= 10

    def test_elkan_blows_up_with_k(self):
        e10 = elkan_ti_bytes(self.N, self.D, 10, self.T)
        e100 = elkan_ti_bytes(self.N, self.D, 100, self.T)
        # The lower-bound matrix grows by n * 90 extra float64s --
        # the O(nk) term that makes TI unusable at billion scale.
        lb_growth = self.N * 90 * 8
        assert e100 - e10 == pytest.approx(lb_growth, rel=0.05)

    def test_sem_data_term_independent_of_d(self):
        a = table1_bytes("knors--", self.N, 8, self.K, self.T)
        b = table1_bytes("knors--", self.N, 512, self.K, self.T)
        # Only the (T+1)kd centroid copies grow with d; there is no
        # O(nd) data term in SEM.
        assert b - a == (self.T + 1) * self.K * (512 - 8) * 8

    def test_all_registered_formulas_positive(self):
        for name in ROUTINE_MEMORY_FORMULAS:
            assert table1_bytes(name, 100, 4, 3, 2) > 0

    def test_unknown_routine(self):
        with pytest.raises(ConfigError):
            table1_bytes("knorz", 10, 2, 2, 1)

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            table1_bytes("knori", 0, 2, 2, 1)


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(
            ["name", "value"],
            [["knori", 1.5], ["knors", 0.25]],
            title="demo",
        )
        lines = out.splitlines()
        assert lines[0] == "demo"
        assert "knori" in out and "0.250" in out
        # All data lines equally wide.
        widths = {len(l) for l in lines[2:]}
        assert len(widths) == 1

    def test_render_table_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out

    def test_render_series(self):
        out = render_series(
            "T",
            {"aware": {1: 1.0, 2: 2.0}, "oblivious": {1: 0.5}},
        )
        assert "aware" in out and "oblivious" in out
        assert "nan" in out  # missing point shows explicitly

    def test_large_and_small_floats(self):
        out = render_table(["x"], [[1e9], [1e-9], [0.0]])
        assert "1e+09" in out and "1e-09" in out and "0" in out
