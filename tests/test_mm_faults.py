"""Crash matrix for the MM algorithm plane (GMM as the probe).

The acceptance bar for the clusterNOR generalization: a ported
algorithm must inherit the whole resilience stack, not just the happy
path. Every cell injects a scheduled fault into a GMM run and asserts
the recovered run is bit-identical to the fault-free one -- same
means, same responsibilities argmax, same iteration count -- with a
well-ordered fault/recovery event stream.

Run with ``pytest -m faults``.
"""

import numpy as np
import pytest

from repro import FaultPlan, RetryPolicy
from repro.errors import NodeFailureError
from repro.extensions.gmm import GmmMM
from repro.faults import FaultEvent
from repro.runtime import (
    RecordingObserver,
    run_mm_distributed,
    run_mm_inmemory,
    run_mm_sem,
)

pytestmark = pytest.mark.faults

K = 6
SEED = 3
MAX_ITERS = 12
CRASH_ITERATIONS = (0, 2, 5)
KW = dict(row_cache_bytes=0, page_cache_bytes=0)


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(11)
    centers = rng.normal(scale=2.5, size=(K, 5))
    x = np.vstack(
        [rng.normal(loc=c, scale=1.6, size=(150, 5)) for c in centers]
    )
    rng.shuffle(x)
    return x


def gmm(dataset):
    """A fresh algorithm instance -- MM algorithms carry state."""
    return GmmMM(dataset, K, seed=SEED, max_iters=MAX_ITERS)


def assert_matches(baseline, faulty, events):
    np.testing.assert_array_equal(baseline.centroids, faulty.centroids)
    np.testing.assert_array_equal(
        baseline.assignment, faulty.assignment
    )
    assert faulty.iterations == baseline.iterations
    assert faulty.converged == baseline.converged
    assert faulty.inertia == baseline.inertia
    assert any(ev.name == "fault" for ev in events)
    assert any(ev.name == "recovery" for ev in events)


class TestInMemory:
    @pytest.fixture(scope="class")
    def baseline(self, dataset):
        return run_mm_inmemory(gmm(dataset))

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    def test_worker_crash(self, dataset, baseline, crash_it):
        assert baseline.iterations > max(CRASH_ITERATIONS)
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="worker", iteration=crash_it, kind="crash")]
        )
        rec = RecordingObserver()
        faulty = run_mm_inmemory(
            gmm(dataset), faults=plan, observers=(rec,)
        )
        assert_matches(baseline, faulty, rec.fault_events())


class TestSem:
    @pytest.fixture(scope="class")
    def baseline(self, dataset):
        return run_mm_sem(gmm(dataset), **KW)

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    @pytest.mark.parametrize("checkpointed", [False, True])
    def test_worker_crash(
        self, dataset, baseline, tmp_path, crash_it, checkpointed
    ):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="worker", iteration=crash_it, kind="crash")]
        )
        rec = RecordingObserver()
        kw = dict(KW)
        if checkpointed:
            kw.update(checkpoint_dir=tmp_path / "ck",
                      checkpoint_interval=2)
        faulty = run_mm_sem(
            gmm(dataset), faults=plan, observers=(rec,), **kw
        )
        assert_matches(baseline, faulty, rec.fault_events())
        if checkpointed and crash_it >= 2:
            # Recovery restored the v4 checkpoint instead of replaying
            # from scratch.
            recoveries = [
                e for e in rec.fault_events()
                if e.name == "recovery" and e.payload["site"] == "worker"
            ]
            assert recoveries[0].payload["detail"]["resume_at"] > 0

    @pytest.mark.parametrize("kind", ["read_error", "slow"])
    def test_ssd_fault(self, dataset, baseline, kind):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="ssd", iteration=2, kind=kind)]
        )
        rec = RecordingObserver()
        faulty = run_mm_sem(
            gmm(dataset), faults=plan, observers=(rec,), **KW
        )
        assert_matches(baseline, faulty, rec.fault_events())
        base_ns = {r.iteration: r.sim_ns for r in baseline.records}
        faulty_ns = {r.iteration: r.sim_ns for r in faulty.records}
        assert faulty_ns[2] >= base_ns[2]

    @pytest.mark.parametrize(
        "crash_point",
        ["arrays-written", "manifest-tmp-written", "committed-no-gc"],
    )
    def test_mid_checkpoint_crash(
        self, dataset, baseline, tmp_path, crash_point
    ):
        """Kill save_mm_checkpoint at each protocol stage; the run
        still recovers onto the bit-identical trajectory."""
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="checkpoint", iteration=3,
                        kind=crash_point)]
        )
        rec = RecordingObserver()
        faulty = run_mm_sem(
            gmm(dataset), faults=plan, observers=(rec,),
            checkpoint_dir=tmp_path / "ck", checkpoint_interval=2,
            **KW,
        )
        assert_matches(baseline, faulty, rec.fault_events())

    def test_checkpoint_corruption(self, dataset, baseline, tmp_path):
        """Corrupt the saved v4 checkpoint, then crash: recovery must
        CRC-fail the load, quarantine it, and replay from scratch."""
        plan = FaultPlan.from_schedule([
            FaultEvent(site="corruption", iteration=3,
                       kind="checkpoint"),
            FaultEvent(site="worker", iteration=4, kind="crash"),
        ])
        rec = RecordingObserver()
        faulty = run_mm_sem(
            gmm(dataset), faults=plan, observers=(rec,),
            checkpoint_dir=tmp_path / "ck", checkpoint_interval=2,
            **KW,
        )
        assert_matches(baseline, faulty, rec.fault_events())
        quarantined = [
            e for e in rec.fault_events() if e.name == "quarantine"
        ]
        assert any(
            e.payload["where"] == "checkpoint" for e in quarantined
        )


class TestDistributed:
    N_MACHINES = 4

    @pytest.fixture(scope="class")
    def baseline(self, dataset):
        return run_mm_distributed(
            gmm(dataset), n_machines=self.N_MACHINES
        )

    @pytest.mark.parametrize("crash_it", CRASH_ITERATIONS)
    def test_node_failure_degraded(self, dataset, baseline, crash_it):
        """Losing a machine reshards its work onto survivors; the
        surviving fleet is slower but the GMM model is unchanged."""
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="node", iteration=crash_it, kind="fail",
                        machine=1)]
        )
        rec = RecordingObserver()
        faulty = run_mm_distributed(
            gmm(dataset), n_machines=self.N_MACHINES, faults=plan,
            observers=(rec,),
        )
        assert_matches(baseline, faulty, rec.fault_events())
        base_ns = {r.iteration: r.sim_ns for r in baseline.records}
        faulty_ns = {r.iteration: r.sim_ns for r in faulty.records}
        assert faulty_ns[crash_it] > base_ns[crash_it]

    def test_node_failure_abort(self, dataset):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="node", iteration=1, kind="fail")]
        )
        with pytest.raises(NodeFailureError):
            run_mm_distributed(
                gmm(dataset), n_machines=self.N_MACHINES, faults=plan,
                retry_policy=RetryPolicy(node_failure_mode="abort"),
            )

    def test_dropped_allreduce(self, dataset, baseline):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="net", iteration=2, kind="drop")]
        )
        rec = RecordingObserver()
        faulty = run_mm_distributed(
            gmm(dataset), n_machines=self.N_MACHINES, faults=plan,
            observers=(rec,),
        )
        assert_matches(baseline, faulty, rec.fault_events())
        base = {r.iteration: r.allreduce_ns for r in baseline.records}
        fl = {r.iteration: r.allreduce_ns for r in faulty.records}
        assert fl[2] > base[2]
