"""Distributed substrate: network model, collectives, cluster builder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist import Cluster, NetworkModel, SimComm, TEN_GBE
from repro.errors import CommunicatorError, ConfigError


class TestNetworkModel:
    def test_message_cost(self):
        net = NetworkModel(latency_ns=1000, bandwidth=1e9)
        assert net.message_ns(0) == 1000
        assert net.message_ns(1_000_000) == pytest.approx(1000 + 1e6)

    def test_validation(self):
        with pytest.raises(ConfigError):
            NetworkModel(latency_ns=-1)
        with pytest.raises(ConfigError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ConfigError):
            TEN_GBE.message_ns(-5)


class TestSimComm:
    def test_allreduce_sums_exactly(self):
        comm = SimComm(4)
        parts = [np.full((3, 2), float(i)) for i in range(4)]
        res = comm.allreduce_sum(parts)
        np.testing.assert_allclose(res.value, np.full((3, 2), 6.0))
        assert res.sim_ns > 0
        assert res.bytes_on_wire == 48 * 3

    def test_allreduce_single_rank_free(self):
        comm = SimComm(1)
        res = comm.allreduce_sum([np.ones((2, 2))])
        assert res.sim_ns == 0.0
        np.testing.assert_array_equal(res.value, np.ones((2, 2)))

    def test_allreduce_contribution_count_checked(self):
        comm = SimComm(3)
        with pytest.raises(CommunicatorError):
            comm.allreduce_sum([np.ones(2)] * 2)

    def test_allreduce_shape_mismatch(self):
        comm = SimComm(2)
        with pytest.raises(CommunicatorError):
            comm.allreduce_sum([np.ones(2), np.ones(3)])

    def test_allreduce_does_not_mutate_inputs(self):
        comm = SimComm(2)
        a = np.ones(4)
        b = np.ones(4)
        comm.allreduce_sum([a, b])
        np.testing.assert_array_equal(a, np.ones(4))

    def test_ring_beats_tree_for_large_buffers(self):
        comm = SimComm(16)
        big = 64 * 1024 * 1024
        assert comm._ring_ns(big) < comm._tree_ns(big)
        assert comm.allreduce_ns(big) == comm._ring_ns(big)

    def test_tree_beats_ring_for_tiny_buffers(self):
        comm = SimComm(16)
        assert comm._tree_ns(8) < comm._ring_ns(8)

    def test_gather_serializes_at_root(self):
        comm = SimComm(8)
        one = TEN_GBE.message_ns(1000)
        assert comm.gather_ns(1000) == pytest.approx(7 * one)

    def test_collective_costs_grow_with_ranks(self):
        sizes = [SimComm(p).allreduce_ns(80_000) for p in (2, 4, 16, 64)]
        assert sizes == sorted(sizes)

    def test_invalid_rank_count(self):
        with pytest.raises(CommunicatorError):
            SimComm(0)

    @settings(max_examples=30, deadline=None)
    @given(
        p=st.integers(2, 16),
        shape=st.tuples(st.integers(1, 5), st.integers(1, 5)),
        seed=st.integers(0, 100),
    )
    def test_allreduce_matches_numpy_sum(self, p, shape, seed):
        rng = np.random.default_rng(seed)
        parts = [rng.normal(size=shape) for _ in range(p)]
        res = SimComm(p).allreduce_sum(parts)
        np.testing.assert_allclose(
            res.value, np.sum(parts, axis=0), atol=1e-9
        )


class TestCluster:
    def test_build_defaults(self):
        c = Cluster.build(3)
        assert c.n_machines == 3
        assert c.comm.n_ranks == 3
        # c4.8xlarge: 18 physical cores per machine.
        assert all(m.n_threads == 18 for m in c.machines)
        assert c.total_threads == 54

    def test_thread_override(self):
        c = Cluster.build(2, threads_per_machine=4)
        assert c.total_threads == 8

    def test_invalid_size(self):
        with pytest.raises(ConfigError):
            Cluster.build(0)
