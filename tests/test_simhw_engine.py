"""Event-driven iteration engine: dispatch, accounting, and invariants."""

import pytest

from repro.errors import SchedulerError
from repro.sched import NumaAwareScheduler, StaticScheduler
from repro.simhw import (
    BindPolicy,
    FOUR_SOCKET_XEON,
    IterationEngine,
    TaskWork,
)
from repro.simhw.thread import spawn_threads


def make_tasks(n_tasks, n_dist=100, home_nodes=None):
    return [
        TaskWork(
            task_id=i,
            n_rows=10,
            n_dist=n_dist,
            data_bytes=640,
            state_bytes=120,
            home_node=home_nodes[i] if home_nodes else i % 4,
        )
        for i in range(n_tasks)
    ]


def run(n_threads, tasks, policy=BindPolicy.NUMA_BIND, sched=None,
        record=False):
    engine = IterationEngine(
        FOUR_SOCKET_XEON, bind_policy=policy, record_executions=record
    )
    threads = spawn_threads(FOUR_SOCKET_XEON.topology, n_threads, policy)
    return engine.run(
        sched or StaticScheduler(), tasks, threads, d=8, k=10
    )


def test_all_tasks_executed_once():
    trace = run(4, make_tasks(16))
    assert trace.total_rows == 160
    assert trace.total_dist == 1600


def test_trace_totals_reset_between_runs():
    engine = IterationEngine(FOUR_SOCKET_XEON)
    threads = spawn_threads(FOUR_SOCKET_XEON.topology, 4,
                            BindPolicy.NUMA_BIND)
    sched = StaticScheduler()
    t1 = engine.run(sched, make_tasks(8), threads, d=8, k=10)
    t2 = engine.run(sched, make_tasks(8), threads, d=8, k=10)
    assert t1.total_rows == t2.total_rows == 80


def test_more_threads_faster_span():
    tasks = make_tasks(64)
    t1 = run(1, tasks)
    t8 = run(8, tasks)
    assert t8.span_ns < t1.span_ns
    # Near-linear at uniform work.
    assert t1.span_ns / t8.span_ns > 5.0


def test_skewed_work_creates_skewed_span():
    """Static scheduling of skewed tasks leaves threads idle."""
    tasks = make_tasks(16)
    # Make the first quarter of tasks 50x heavier.
    heavy = [
        TaskWork(t.task_id, t.n_rows, t.n_dist * (50 if i < 4 else 1),
                 t.data_bytes, t.state_bytes, t.home_node)
        for i, t in enumerate(tasks)
    ]
    static = run(4, heavy, sched=StaticScheduler())
    stealing = run(4, heavy, sched=NumaAwareScheduler())
    assert stealing.span_ns < static.span_ns
    assert static.busy_fraction < 0.8
    assert stealing.busy_fraction > static.busy_fraction


def test_oblivious_slower_than_bound():
    tasks = make_tasks(64)
    aware = run(16, tasks)
    oblivious_tasks = [
        TaskWork(t.task_id, t.n_rows, t.n_dist, t.data_bytes,
                 t.state_bytes, 0)
        for t in tasks
    ]
    oblivious = run(16, oblivious_tasks, policy=BindPolicy.OBLIVIOUS)
    assert oblivious.total_ns > aware.total_ns


def test_remote_bytes_accounted():
    # All tasks on node 0, threads on all nodes -> most bytes remote.
    tasks = make_tasks(16, home_nodes=[0] * 16)
    trace = run(8, tasks, sched=NumaAwareScheduler())
    assert trace.total_bytes_remote > 0


def test_local_bytes_when_partitioned():
    trace = run(8, make_tasks(16))
    assert trace.total_bytes_local > 0


def test_barrier_and_reduction_charged():
    trace = run(8, make_tasks(8))
    assert trace.barrier_ns > 0
    assert trace.reduction_ns > 0
    assert trace.total_ns == pytest.approx(
        trace.span_ns + trace.barrier_ns + trace.reduction_ns
    )


def test_no_reduction_when_disabled():
    engine = IterationEngine(FOUR_SOCKET_XEON)
    threads = spawn_threads(FOUR_SOCKET_XEON.topology, 4,
                            BindPolicy.NUMA_BIND)
    trace = engine.run(
        StaticScheduler(), make_tasks(8), threads, d=8, k=10,
        reduction=False,
    )
    assert trace.reduction_ns == 0.0


def test_execution_records():
    trace = run(2, make_tasks(6), record=True)
    assert len(trace.executions) == 6
    for ex in trace.executions:
        assert ex.end_ns >= ex.start_ns
        assert ex.compute_ns > 0


def test_empty_threads_rejected():
    engine = IterationEngine(FOUR_SOCKET_XEON)
    with pytest.raises(SchedulerError):
        engine.run(StaticScheduler(), make_tasks(4), [], d=8, k=10)


def test_deterministic_traces():
    t1 = run(8, make_tasks(32), sched=NumaAwareScheduler())
    t2 = run(8, make_tasks(32), sched=NumaAwareScheduler())
    assert t1.total_ns == t2.total_ns
    assert t1.thread_clocks_ns == t2.thread_clocks_ns


def test_single_thread_executes_serially():
    trace = run(1, make_tasks(10))
    assert trace.busy_fraction == pytest.approx(1.0)
    assert trace.barrier_ns == 0.0


def test_remote_task_loses_prefetch_overlap():
    """A stolen/remote block cannot overlap memory with compute: its
    task time is the sum, a local one's is the max."""
    cm = FOUR_SOCKET_XEON
    engine = IterationEngine(cm)
    threads = spawn_threads(cm.topology, 4, BindPolicy.NUMA_BIND)
    # One fat task; home node either local to thread 0 or remote.
    local = [TaskWork(0, 100, 5000, 1 << 16, 0, threads[0].node)]
    remote_node = (threads[0].node + 1) % cm.topology.n_nodes
    remote = [TaskWork(0, 100, 5000, 1 << 16, 0, remote_node)]
    sched = StaticScheduler()
    t_local = engine.run(sched, local, threads[:1], d=8, k=10)
    t_remote = engine.run(sched, remote, threads[:1], d=8, k=10)
    compute = cm.dist_comp_ns(8, 5000) + cm.rows_overhead_ns(100)
    mem_local = cm.mem_stream_ns(1 << 16, remote=False, streams_on_bank=1)
    # Local: overlapped -> span is max(compute, mem).
    assert t_local.span_ns == pytest.approx(max(compute, mem_local))
    # Remote: additive and with remote charges -> strictly larger.
    assert t_remote.span_ns > t_local.span_ns
    assert t_remote.span_ns > compute


# -- optimized loop vs reference loop conformance -------------------


def _trace_key(trace):
    """Everything observable about a trace, for exact comparison."""
    from dataclasses import asdict

    return (
        trace.thread_clocks_ns,
        trace.span_ns,
        trace.barrier_ns,
        trace.reduction_ns,
        trace.total_ns,
        trace.total_rows,
        trace.total_dist,
        trace.total_bytes_local,
        trace.total_bytes_remote,
        trace.total_steals,
        [asdict(e) for e in trace.executions],
    )


def _mixed_tasks(n_tasks, n_nodes):
    """Non-uniform work so steals, remote streams and ties all occur."""
    return [
        TaskWork(
            task_id=i,
            n_rows=10 + (i % 7),
            n_dist=100 + 13 * i,
            data_bytes=640 + 64 * i,
            state_bytes=120,
            home_node=i % n_nodes,
        )
        for i in range(n_tasks)
    ]


@pytest.mark.parametrize("policy", [BindPolicy.NUMA_BIND,
                                    BindPolicy.OBLIVIOUS])
@pytest.mark.parametrize("sched_cls", [StaticScheduler,
                                       NumaAwareScheduler])
@pytest.mark.parametrize("n_threads", [1, 3, 8])
def test_run_matches_reference(policy, sched_cls, n_threads):
    """The optimized event loop is bit-identical to the kept-verbatim
    reference loop: same event order, same simulated charges, same
    counters -- across bind policies, schedulers and thread counts."""
    cm = FOUR_SOCKET_XEON
    tasks = _mixed_tasks(23, cm.topology.n_nodes)
    engine = IterationEngine(
        cm, bind_policy=policy, record_executions=True
    )
    threads = spawn_threads(cm.topology, n_threads, policy)
    t_new = engine.run(sched_cls(), tasks, threads, d=8, k=10)
    threads = spawn_threads(cm.topology, n_threads, policy)
    t_ref = engine.run_reference(sched_cls(), tasks, threads, d=8, k=10)
    assert _trace_key(t_new) == _trace_key(t_ref)


def test_run_matches_reference_fifo_shared_queue():
    """FIFO's single shared queue exercises the contended-lock pricing
    and the end-of-phase single-runnable-thread drain."""
    from repro.sched import FifoScheduler

    cm = FOUR_SOCKET_XEON
    tasks = _mixed_tasks(40, cm.topology.n_nodes)
    engine = IterationEngine(cm, record_executions=True)
    threads = spawn_threads(cm.topology, 6, BindPolicy.NUMA_BIND)
    t_new = engine.run(FifoScheduler(), tasks, threads, d=12, k=7)
    threads = spawn_threads(cm.topology, 6, BindPolicy.NUMA_BIND)
    t_ref = engine.run_reference(
        FifoScheduler(), tasks, threads, d=12, k=7
    )
    assert _trace_key(t_new) == _trace_key(t_ref)


def test_run_matches_reference_single_bank():
    """All data on one bank (the Figure 4 oblivious regime): every
    thread streams remotely except the bank's own node."""
    cm = FOUR_SOCKET_XEON
    tasks = _mixed_tasks(16, 1)  # everything homed on node 0
    engine = IterationEngine(
        cm, bind_policy=BindPolicy.OBLIVIOUS, record_executions=True
    )
    threads = spawn_threads(cm.topology, 8, BindPolicy.OBLIVIOUS)
    t_new = engine.run(StaticScheduler(), tasks, threads, d=8, k=10)
    threads = spawn_threads(cm.topology, 8, BindPolicy.OBLIVIOUS)
    t_ref = engine.run_reference(
        StaticScheduler(), tasks, threads, d=8, k=10
    )
    assert _trace_key(t_new) == _trace_key(t_ref)


def test_run_reference_rejects_double_dispatch():
    class DoubleScheduler(StaticScheduler):
        def next_task(self, thread):
            decision = super().next_task(thread)
            if decision is not None:
                self._replay = decision
            elif getattr(self, "_replay", None) is not None:
                decision, self._replay = self._replay, None
            return decision

    cm = FOUR_SOCKET_XEON
    engine = IterationEngine(cm)
    threads = spawn_threads(cm.topology, 1, BindPolicy.NUMA_BIND)
    with pytest.raises(SchedulerError):
        engine.run(DoubleScheduler(), make_tasks(3), threads, d=8, k=10)
    with pytest.raises(SchedulerError):
        engine.run_reference(
            DoubleScheduler(), make_tasks(3), threads, d=8, k=10
        )
