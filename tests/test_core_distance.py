"""Unit tests for the Euclidean distance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.distance import (
    euclidean,
    half_min_inter_centroid,
    nearest_centroid,
    pairwise_centroid_distances,
    rows_to_centroids,
)
from repro.errors import DatasetError


def test_euclidean_matches_naive():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(50, 7))
    c = rng.normal(size=(5, 7))
    got = euclidean(x, c)
    want = np.sqrt(((x[:, None, :] - c[None, :, :]) ** 2).sum(axis=2))
    np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-10)


def test_euclidean_identical_points_zero():
    x = np.ones((3, 4))
    assert euclidean(x, x.copy()).min() == pytest.approx(0.0, abs=1e-12)


def test_euclidean_shape_and_dtype():
    d = euclidean(np.zeros((4, 2)), np.ones((3, 2)))
    assert d.shape == (4, 3)
    assert d.dtype == np.float64


def test_euclidean_dimension_mismatch():
    with pytest.raises(DatasetError):
        euclidean(np.zeros((4, 2)), np.zeros((3, 5)))


def test_euclidean_rejects_1d():
    with pytest.raises(DatasetError):
        euclidean(np.zeros(4), np.zeros((3, 4)))


def test_euclidean_never_negative_under_cancellation():
    # Large magnitudes with tiny differences stress the expanded form.
    x = np.full((2, 3), 1e8)
    c = x + 1e-8
    assert (euclidean(x, c) >= 0).all()


def test_pairwise_centroid_distances_symmetric_zero_diag():
    rng = np.random.default_rng(1)
    c = rng.normal(size=(6, 3))
    cc = pairwise_centroid_distances(c)
    np.testing.assert_allclose(cc, cc.T, atol=1e-12)
    # Expanded-form cancellation: the diagonal is ~sqrt(eps), not 0.
    np.testing.assert_allclose(np.diag(cc), 0.0, atol=1e-6)


def test_half_min_inter_centroid_values():
    c = np.array([[0.0], [1.0], [10.0]])
    s = half_min_inter_centroid(pairwise_centroid_distances(c))
    np.testing.assert_allclose(s, [0.5, 0.5, 4.5])


def test_half_min_single_centroid_is_inf():
    s = half_min_inter_centroid(pairwise_centroid_distances(np.zeros((1, 3))))
    assert np.isinf(s[0])


def test_nearest_centroid_matches_argmin():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(200, 5))
    c = rng.normal(size=(9, 5))
    assign, mind = nearest_centroid(x, c)
    full = euclidean(x, c)
    np.testing.assert_array_equal(assign, np.argmin(full, axis=1))
    np.testing.assert_allclose(mind, full.min(axis=1), atol=1e-12)


def test_nearest_centroid_blocking_invariant():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(100, 4))
    c = rng.normal(size=(3, 4))
    a1, d1 = nearest_centroid(x, c, block_rows=7)
    a2, d2 = nearest_centroid(x, c, block_rows=100000)
    np.testing.assert_array_equal(a1, a2)
    np.testing.assert_allclose(d1, d2, atol=0)


def test_nearest_centroid_tie_breaks_low_index():
    x = np.array([[0.0, 0.0]])
    c = np.array([[1.0, 0.0], [-1.0, 0.0]])  # equidistant
    assign, _ = nearest_centroid(x, c)
    assert assign[0] == 0


def test_rows_to_centroids_matches_euclidean():
    rng = np.random.default_rng(4)
    x = rng.normal(size=(80, 6))
    c = rng.normal(size=(4, 6))
    idx = rng.integers(0, 4, size=80)
    got = rows_to_centroids(x, c, idx)
    want = euclidean(x, c)[np.arange(80), idx]
    np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    x=hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 20), st.integers(1, 6)),
        elements=st.floats(-100, 100),
    ),
)
def test_euclidean_nonnegative_and_self_zero(x):
    d = euclidean(x, x)
    assert (d >= 0).all()
    # Self-distance along the diagonal is ~0 (expanded form, ulp noise).
    assert np.allclose(np.diag(d), 0.0, atol=1e-5)


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(2, 30),
    k=st.integers(1, 8),
    d=st.integers(1, 5),
    seed=st.integers(0, 1000),
)
def test_triangle_inequality_holds(n, k, d, seed):
    """d(x, c1) <= d(x, c2) + d(c1, c2) -- the bound MTI relies on."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, d))
    c = rng.normal(size=(k, d))
    dx = euclidean(x, c)
    cc = pairwise_centroid_distances(c)
    for i in range(k):
        for j in range(k):
            assert (dx[:, i] <= dx[:, j] + cc[i, j] + 1e-9).all()
