"""Clustering quality metrics: known values and invariances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import lloyd
from repro.errors import DatasetError
from repro.metrics import (
    adjusted_rand_index,
    davies_bouldin_index,
    normalized_mutual_info,
    silhouette_score,
)
from repro.metrics.quality import contingency


class TestContingency:
    def test_simple_table(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([1, 1, 0, 1])
        t = contingency(a, b)
        np.testing.assert_array_equal(t, [[0, 2], [1, 1]])

    def test_shape_mismatch(self):
        with pytest.raises(DatasetError):
            contingency(np.zeros(3), np.zeros(4))


class TestAri:
    def test_perfect_agreement(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(a, a) == pytest.approx(1.0)
        # Label permutation does not matter.
        b = np.array([2, 2, 0, 0, 1, 1])
        assert adjusted_rand_index(a, b) == pytest.approx(1.0)

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, 2000)
        b = rng.integers(0, 5, 2000)
        assert abs(adjusted_rand_index(a, b)) < 0.05

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, 100)
        b = rng.integers(0, 4, 100)
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    def test_single_cluster_vs_itself(self):
        a = np.zeros(10, dtype=int)
        assert adjusted_rand_index(a, a) == 1.0

    def test_too_few_points(self):
        with pytest.raises(DatasetError):
            adjusted_rand_index(np.array([0]), np.array([0]))


class TestNmi:
    def test_perfect(self):
        a = np.array([0, 0, 1, 1])
        assert normalized_mutual_info(a, a) == pytest.approx(1.0)
        assert normalized_mutual_info(a, 1 - a) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 4, 5000)
        b = rng.integers(0, 4, 5000)
        assert normalized_mutual_info(a, b) < 0.01

    def test_bounds(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 3, 200)
        b = rng.integers(0, 6, 200)
        v = normalized_mutual_info(a, b)
        assert 0.0 <= v <= 1.0


class TestSilhouette:
    def test_separated_blobs_near_one(self, blobs):
        res = lloyd(blobs, 4, init="kmeans++", seed=0)
        s = silhouette_score(blobs, res.assignment, sample=None)
        assert s > 0.8

    def test_bad_labels_score_lower(self, blobs):
        res = lloyd(blobs, 4, init="kmeans++", seed=0)
        good = silhouette_score(blobs, res.assignment)
        rng = np.random.default_rng(0)
        bad = silhouette_score(
            blobs, rng.integers(0, 4, blobs.shape[0])
        )
        assert good > bad
        assert abs(bad) < 0.2

    def test_sampling_close_to_exact(self, blobs):
        res = lloyd(blobs, 4, init="kmeans++", seed=0)
        exact = silhouette_score(blobs, res.assignment, sample=None)
        sampled = silhouette_score(
            blobs, res.assignment, sample=200, seed=1
        )
        assert sampled == pytest.approx(exact, abs=0.05)

    def test_single_cluster_rejected(self, blobs):
        with pytest.raises(DatasetError):
            silhouette_score(blobs, np.zeros(blobs.shape[0], dtype=int))


class TestDaviesBouldin:
    def test_separated_better_than_random(self, blobs):
        res = lloyd(blobs, 4, init="kmeans++", seed=0)
        good = davies_bouldin_index(blobs, res.assignment)
        rng = np.random.default_rng(0)
        bad = davies_bouldin_index(
            blobs, rng.integers(0, 4, blobs.shape[0])
        )
        assert 0 <= good < bad

    def test_single_cluster_rejected(self, blobs):
        with pytest.raises(DatasetError):
            davies_bouldin_index(
                blobs, np.zeros(blobs.shape[0], dtype=int)
            )


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 100),
    ka=st.integers(1, 5),
    kb=st.integers(1, 5),
    seed=st.integers(0, 1000),
)
def test_ari_nmi_bounds_hold(n, ka, kb, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, ka, n)
    b = rng.integers(0, kb, n)
    ari = adjusted_rand_index(a, b)
    nmi = normalized_mutual_info(a, b)
    assert -1.0 <= ari <= 1.0
    assert 0.0 <= nmi <= 1.0
    assert adjusted_rand_index(a, a) == pytest.approx(1.0)
