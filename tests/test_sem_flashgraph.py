"""RowEngine: the per-iteration SEM I/O plan."""

import numpy as np
import pytest

from repro.sem import RowCache, RowEngine, Safs
from repro.simhw.ssd import OCZ_INTREPID_ARRAY


def make_engine(n_rows=10_000, row_bytes=64, rc_rows=None, pc_pages=32):
    safs = Safs(OCZ_INTREPID_ARRAY, page_cache_bytes=pc_pages * 4096)
    rc = (
        RowCache(rc_rows * row_bytes, row_bytes, n_rows, update_interval=5)
        if rc_rows
        else None
    )
    return RowEngine(safs, row_bytes, n_rows, row_cache=rc)


def test_full_scan_reads_everything():
    eng = make_engine(pc_pages=0)
    needs = np.ones(10_000, dtype=bool)
    stats = eng.run_iteration(0, needs)
    assert stats.rows_needed == 10_000
    assert stats.bytes_requested == 10_000 * 64
    # 64 rows/page -> ~157 pages, merged into one sequential request.
    assert stats.merged_requests == 1
    assert stats.bytes_read == stats.pages_needed * 4096


def test_clause1_rows_skip_io():
    eng = make_engine(pc_pages=0)
    needs = np.zeros(10_000, dtype=bool)
    needs[:100] = True
    stats = eng.run_iteration(0, needs)
    assert stats.rows_needed == 100
    assert stats.bytes_requested == 100 * 64


def test_row_cache_cuts_requests_after_refresh():
    eng = make_engine(rc_rows=5000, pc_pages=0)
    needs = np.zeros(10_000, dtype=bool)
    needs[:4000] = True
    # Iterations 0..4; refresh happens at iteration 5's scheduled point.
    for it in range(5):
        stats = eng.run_iteration(it, needs)
        assert stats.row_cache_hits == 0
    stats5 = eng.run_iteration(5, needs)
    assert stats5.rc_refreshed
    assert stats5.rc_admitted == 4000
    stats6 = eng.run_iteration(6, needs)
    assert stats6.row_cache_hits == 4000
    assert stats6.rows_requested == 0
    assert stats6.bytes_read == 0
    assert stats6.service_ns == 0.0


def test_stale_cache_misses_new_actives():
    eng = make_engine(rc_rows=5000, pc_pages=0)
    first = np.zeros(10_000, dtype=bool)
    first[:2000] = True
    for it in range(6):
        eng.run_iteration(it, first)
    # Activation pattern shifts: half the active rows are new.
    shifted = np.zeros(10_000, dtype=bool)
    shifted[1000:3000] = True
    stats = eng.run_iteration(6, shifted)
    assert stats.row_cache_hits == 1000
    assert stats.rows_requested == 1000


def test_no_row_cache_everything_requested():
    eng = make_engine(rc_rows=None, pc_pages=0)
    needs = np.ones(1000, dtype=bool)
    s0 = eng.run_iteration(0, needs)
    s1 = eng.run_iteration(1, needs)
    assert s0.rows_requested == s1.rows_requested == 1000
    assert s0.row_cache_hits == s1.row_cache_hits == 0


def test_page_cache_serves_repeat_iterations():
    # Page cache big enough for the whole (tiny) dataset.
    eng = make_engine(n_rows=1000, pc_pages=64)
    needs = np.ones(1000, dtype=bool)
    s0 = eng.run_iteration(0, needs)
    s1 = eng.run_iteration(1, needs)
    assert s0.pages_from_ssd > 0
    assert s1.pages_from_ssd == 0
    assert s1.bytes_read == 0


def test_service_time_positive_for_real_io():
    eng = make_engine(pc_pages=0)
    stats = eng.run_iteration(0, np.ones(10_000, dtype=bool))
    assert stats.service_ns > 0
