"""Memory manager: placement maps and peak accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, ConfigError
from repro.simhw.memory import AllocPolicy, MemoryManager
from repro.simhw.topology import NumaTopology

TOPO = NumaTopology(4, 12)


@pytest.fixture()
def mem():
    return MemoryManager(TOPO)


def test_partitioned_placement_even(mem):
    a = mem.alloc("data", 4000, AllocPolicy.PARTITIONED)
    assert a.placement == {0: 1000, 1: 1000, 2: 1000, 3: 1000}
    assert a.node_of_offset(0) == 0
    assert a.node_of_offset(3999) == 3
    assert a.node_of_fraction(0.6) == 2


def test_oblivious_placement_single_bank(mem):
    a = mem.alloc("data", 4000, AllocPolicy.OBLIVIOUS)
    assert a.placement == {0: 4000}
    assert a.node_of_offset(3999) == 0


def test_numa_bind_placement(mem):
    a = mem.alloc("local", 100, AllocPolicy.NUMA_BIND, home_node=2)
    assert a.placement == {2: 100}
    assert a.node_of_offset(50) == 2


def test_numa_bind_requires_node(mem):
    with pytest.raises(AllocationError):
        mem.alloc("x", 10, AllocPolicy.NUMA_BIND)
    with pytest.raises(AllocationError):
        mem.alloc("x", 10, AllocPolicy.NUMA_BIND, home_node=9)


def test_home_node_rejected_otherwise(mem):
    with pytest.raises(ConfigError):
        mem.alloc("x", 10, AllocPolicy.PARTITIONED, home_node=0)


def test_interleave_round_robin(mem):
    a = mem.alloc("x", 4096 * 8, AllocPolicy.INTERLEAVE)
    assert a.node_of_offset(0) == 0
    assert a.node_of_offset(4096) == 1
    assert a.node_of_offset(4096 * 5) == 1  # page 5 mod 4


def test_offset_out_of_range(mem):
    a = mem.alloc("x", 10, AllocPolicy.OBLIVIOUS)
    with pytest.raises(AllocationError):
        a.node_of_offset(10)
    with pytest.raises(AllocationError):
        a.node_of_fraction(1.0)


def test_negative_alloc_rejected(mem):
    with pytest.raises(AllocationError):
        mem.alloc("x", -1, AllocPolicy.OBLIVIOUS)


def test_peak_and_component_accounting(mem):
    a = mem.alloc("a", 100, AllocPolicy.OBLIVIOUS, component="data")
    mem.alloc("b", 50, AllocPolicy.OBLIVIOUS, component="bounds")
    assert mem.current_bytes == 150
    assert mem.peak_bytes == 150
    mem.free(a)
    assert mem.current_bytes == 50
    assert mem.peak_bytes == 150  # high-water mark persists
    assert mem.component_peak("data") == 100
    assert mem.component_peak("bounds") == 50
    assert mem.component_peak("absent") == 0
    mem.alloc("c", 30, AllocPolicy.OBLIVIOUS, component="data")
    assert mem.component_peak("data") == 100  # not exceeded again


def test_double_free_raises(mem):
    a = mem.alloc("a", 10, AllocPolicy.OBLIVIOUS)
    mem.free(a)
    with pytest.raises(AllocationError):
        mem.free(a)


def test_bank_residency(mem):
    mem.alloc("a", 4000, AllocPolicy.PARTITIONED)
    mem.alloc("b", 100, AllocPolicy.NUMA_BIND, home_node=1)
    res = mem.bank_residency()
    assert res[0] == 1000
    assert res[1] == 1100
    assert sum(res.values()) == 4100


def test_live_allocations_ordered(mem):
    mem.alloc("a", 1, AllocPolicy.OBLIVIOUS)
    mem.alloc("b", 1, AllocPolicy.OBLIVIOUS)
    names = [a.name for a in mem.live_allocations()]
    assert names == ["a", "b"]


@settings(max_examples=50, deadline=None)
@given(
    nbytes=st.integers(1, 1 << 20),
    policy=st.sampled_from(
        [AllocPolicy.PARTITIONED, AllocPolicy.INTERLEAVE,
         AllocPolicy.OBLIVIOUS]
    ),
)
def test_placement_conserves_bytes(nbytes, policy):
    mem = MemoryManager(TOPO)
    a = mem.alloc("x", nbytes, policy)
    assert sum(a.placement.values()) == nbytes


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(0, 1000), min_size=1, max_size=20),
)
def test_peak_is_max_prefix_sum(sizes):
    mem = MemoryManager(TOPO)
    for i, s in enumerate(sizes):
        mem.alloc(f"a{i}", s, AllocPolicy.OBLIVIOUS)
    assert mem.peak_bytes == sum(sizes)
    assert mem.current_bytes == sum(sizes)
