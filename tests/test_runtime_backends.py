"""Unit tests for the repro.runtime layer itself: backend protocol
conformance, observer event ordering, per-row state accounting, and
the IterationLoop's configuration contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro import knord, knori, knors
from repro.baselines import mpi_lloyd
from repro.core import ConvergenceCriteria
from repro.errors import ConfigError
from repro.framework import GmmAlgorithm, run_sem
from repro.runtime import (
    DistributedBackend,
    ExecutionBackend,
    InMemoryBackend,
    IterationLoop,
    KmeansSource,
    NumericsSource,
    PureMpiBackend,
    RecordingObserver,
    RowAlgorithmSource,
    SemBackend,
    chain_observers,
    state_bytes_per_row,
)


@pytest.fixture(scope="module")
def small(blobs):
    return blobs


# -- protocol conformance ------------------------------------------------


def test_backend_instances_satisfy_protocol(small, monkeypatch):
    """Instances (not classes) pass the runtime_checkable check."""
    seen = []
    orig = IterationLoop.run

    def spy(self):
        seen.append(self.backend)
        return orig(self)

    monkeypatch.setattr(IterationLoop, "run", spy)
    crit = ConvergenceCriteria(max_iters=2)
    knori(small, 4, seed=0, criteria=crit)
    knors(small, 4, seed=0, criteria=crit)
    knord(small, 4, seed=0, criteria=crit, n_machines=2)
    mpi_lloyd(small, 4, seed=0, criteria=crit, n_machines=1,
              ranks_per_machine=2)
    assert len(seen) == 4
    types = {type(b) for b in seen}
    assert types == {InMemoryBackend, SemBackend, DistributedBackend,
                     PureMpiBackend}
    for backend in seen:
        assert isinstance(backend, ExecutionBackend)


def test_sources_satisfy_protocol(small):
    loop_stub = type("L", (), {"pruning": None})()
    assert isinstance(KmeansSource(loop_stub, 4), NumericsSource)
    algo_stub = type("A", (), {})()
    assert isinstance(RowAlgorithmSource(algo_stub, small),
                      NumericsSource)


# -- per-row state accounting (the Elkan fix) ----------------------------


def test_state_bytes_per_row_rates():
    assert state_bytes_per_row(None, 10) == 4
    assert state_bytes_per_row("mti", 10) == 12
    # Elkan touches its k-wide lower-bound row + ub + assignment slot.
    assert state_bytes_per_row("elkan", 10) == 11 * 8 + 4
    assert state_bytes_per_row("elkan", 1) == 2 * 8 + 4
    with pytest.raises(ValueError):
        state_bytes_per_row("bogus", 10)


def test_elkan_charged_more_state_traffic_than_mti(small):
    """Elkan's O(nk) bound matrix must show up in simulated time: with
    identical data and k, an Elkan iteration moves more state bytes per
    active row than MTI, so its memory charge cannot be below MTI's at
    equal distance counts."""
    assert state_bytes_per_row("elkan", 8) > state_bytes_per_row("mti", 8)


# -- observer event ordering ---------------------------------------------


def test_inmemory_event_order(small):
    rec = RecordingObserver()
    res = knori(small, 4, seed=0,
                criteria=ConvergenceCriteria(max_iters=3),
                observers=[rec])
    names = rec.names()
    assert names[0] == "run_start"
    assert names[-1] == "run_end"
    per_iter = names[1:-1]
    assert len(per_iter) == 3 * res.iterations
    for i in range(res.iterations):
        assert per_iter[3 * i: 3 * i + 3] == [
            "iteration_start", "task_trace", "iteration_end",
        ]


def test_sem_event_order_with_checkpoint(small, tmp_path):
    rec = RecordingObserver()
    res = knors(small, 4, seed=0,
                criteria=ConvergenceCriteria(max_iters=4),
                checkpoint_dir=tmp_path, checkpoint_interval=2,
                observers=[rec])
    names = rec.names()
    assert names[0] == "run_start"
    assert names[-1] == "run_end"
    # io precedes the compute trace inside every iteration.
    seq = [n for n in names if n in ("io", "task_trace")]
    assert seq == ["io", "task_trace"] * res.iterations
    # checkpoint events fire after the records they snapshot.
    ck = [e for e in rec.events if e.name == "checkpoint"]
    assert [e.iteration for e in ck] == [
        it for it in range(res.iterations) if (it + 1) % 2 == 0
    ]


@pytest.mark.parametrize("io_mode", ["sync", "async"])
def test_sem_io_event_order(small, io_mode):
    """Every SEM iteration brackets its I/O: issue -> io -> compute
    trace -> complete, in both I/O modes."""
    rec = RecordingObserver()
    res = knors(small, 4, seed=0, io_mode=io_mode,
                criteria=ConvergenceCriteria(max_iters=4),
                observers=[rec])
    names = rec.names()
    assert names[0] == "run_start"
    assert names[-1] == "run_end"
    per_iter = names[1:-1]
    stride = 6
    assert len(per_iter) == stride * res.iterations
    for i in range(res.iterations):
        assert per_iter[stride * i: stride * (i + 1)] == [
            "iteration_start", "io_issue", "io", "task_trace",
            "io_complete", "iteration_end",
        ]


def test_sem_io_complete_accounting(small):
    """Sync mode hides nothing; async mode conserves service time
    (hidden + blocked == service) and only prefetches once the row
    cache has been populated by its first refresh."""
    sync_rec, async_rec = RecordingObserver(), RecordingObserver()
    crit = ConvergenceCriteria(max_iters=8)
    knors(small, 4, seed=0, io_mode="sync", criteria=crit,
          observers=[sync_rec])
    # No page cache for the async run, so every iteration keeps
    # issuing real reads for the prefetcher to hide.
    knors(small, 4, seed=0, io_mode="async", criteria=crit,
          page_cache_bytes=0, observers=[async_rec])

    for e in (e for e in sync_rec.events if e.name == "io_complete"):
        assert e.payload["hidden_ns"] == 0.0
        assert e.payload["blocked_ns"] == e.payload["service_ns"]
    for e in (e for e in sync_rec.events if e.name == "io_issue"):
        assert e.payload["prefetched"] is False

    for e in (e for e in async_rec.events if e.name == "io_complete"):
        assert e.payload["hidden_ns"] + e.payload["blocked_ns"] == \
            pytest.approx(e.payload["service_ns"])
    issues = [e for e in async_rec.events if e.name == "io_issue"]
    # The row cache refreshes at iteration 5; before that the
    # prefetcher has no active set and cannot issue early.
    assert all(not e.payload["prefetched"]
               for e in issues if e.iteration <= 5)
    assert any(e.payload["prefetched"]
               for e in issues if e.iteration > 5)


def test_distributed_event_order(small):
    rec = RecordingObserver()
    res = knord(small, 4, seed=0, n_machines=3,
                criteria=ConvergenceCriteria(max_iters=3),
                observers=[rec])
    names = rec.names()
    per_iter = names[1:-1]
    stride = 3 + 3  # start + 3 machine traces + collective + end
    assert len(per_iter) == stride * res.iterations
    for i in range(res.iterations):
        chunk = per_iter[stride * i: stride * (i + 1)]
        assert chunk == [
            "iteration_start", "task_trace", "task_trace", "task_trace",
            "collective", "iteration_end",
        ]
    traces = [e for e in rec.events if e.name == "task_trace"
              and e.iteration == 0]
    assert [e.payload["machine_index"] for e in traces] == [0, 1, 2]


def test_framework_sem_emits_io_events(small, tmp_path):
    from repro.data import write_matrix

    path = tmp_path / "blobs.knor"
    write_matrix(path, small)
    rec = RecordingObserver()
    run_sem(GmmAlgorithm(3, seed=0), path, max_iters=3,
            observers=[rec])
    assert "io" in rec.names()
    assert rec.names()[0] == "run_start"
    assert rec.names()[-1] == "run_end"


def test_chain_observers_fans_out(small):
    a, b = RecordingObserver(), RecordingObserver()
    knori(small, 4, seed=0, criteria=ConvergenceCriteria(max_iters=2),
          observers=[a, b])
    assert a.names() == b.names()
    assert a.names()[0] == "run_start"


def test_chain_observers_collapse():
    only = RecordingObserver()
    assert chain_observers([only]) is only
    none = chain_observers([])
    none.on_run_start(1, 1)  # no-op base observer


# -- IterationLoop configuration contract --------------------------------


class _NullBackend:
    n_rows = 1

    def run_iteration(self, iteration, observer):
        raise AssertionError("should not run")

    def after_record(self, iteration, outcome, observer):
        pass


def test_loop_requires_exactly_one_stopping_rule():
    with pytest.raises(ConfigError):
        IterationLoop(_NullBackend())
    with pytest.raises(ConfigError):
        IterationLoop(
            _NullBackend(),
            criteria=ConvergenceCriteria(),
            should_stop=lambda out: True,
        )


def test_loop_should_stop_requires_max_iters():
    with pytest.raises(ConfigError):
        IterationLoop(_NullBackend(), should_stop=lambda out: True)


def test_observers_cannot_change_results(small):
    """The trace plane is passive: observing a run leaves every exact
    output and simulated cost unchanged."""
    crit = ConvergenceCriteria(max_iters=5)
    plain = knori(small, 4, seed=1, criteria=crit)
    observed = knori(small, 4, seed=1, criteria=crit,
                     observers=[RecordingObserver()])
    np.testing.assert_array_equal(plain.assignment, observed.assignment)
    np.testing.assert_array_equal(plain.centroids, observed.centroids)
    assert [r.sim_ns for r in plain.records] == \
        [r.sim_ns for r in observed.records]
