"""CLI: generate, inspect, and cluster via the repro-kmeans entry."""

import numpy as np
import pytest

from repro.cli import main
from repro.data import write_matrix


@pytest.fixture()
def small_matrix(tmp_path, overlapping):
    path = tmp_path / "data.knor"
    write_matrix(path, overlapping)
    return path


def test_gen_and_info(tmp_path, capsys):
    out = tmp_path / "rm.knor"
    assert main(["gen", "--dataset", "rm-856m", "--n", "256",
                 "-o", str(out)]) == 0
    assert out.exists()
    assert main(["info", str(out)]) == 0
    text = capsys.readouterr().out
    assert "n=256" in text and "d=16" in text


def test_knori_runs_and_saves(small_matrix, tmp_path, capsys):
    out = tmp_path / "result.npz"
    rc = main([
        "knori", str(small_matrix), "-k", "5", "--seed", "1",
        "--max-iters", "20", "--out", str(out),
    ])
    assert rc == 0
    assert "knori:" in capsys.readouterr().out
    data = np.load(out)
    assert data["centroids"].shape == (5, 8)
    assert data["assignment"].shape[0] == 3000


def test_knori_pruning_none(small_matrix, capsys):
    assert main([
        "knori", str(small_matrix), "-k", "3", "--pruning", "none",
        "--max-iters", "10",
    ]) == 0
    assert "knori-" in capsys.readouterr().out


def test_knors_reports_io(small_matrix, capsys):
    assert main([
        "knors", str(small_matrix), "-k", "4", "--max-iters", "10",
    ]) == 0
    out = capsys.readouterr().out
    assert "knors" in out
    assert "read" in out


def test_knors_checkpoint_resume(small_matrix, tmp_path, capsys):
    ckpt = tmp_path / "ckpt"
    assert main([
        "knors", str(small_matrix), "-k", "4", "--max-iters", "4",
        "--checkpoint-dir", str(ckpt), "--checkpoint-interval", "2",
    ]) == 0
    from repro.sem.checkpoint import has_checkpoint

    assert has_checkpoint(ckpt)
    assert main([
        "knors", str(small_matrix), "-k", "4", "--max-iters", "50",
        "--checkpoint-dir", str(ckpt), "--resume",
    ]) == 0


def test_quality_and_json_flags(small_matrix, tmp_path, capsys):
    j = tmp_path / "run.json"
    rc = main([
        "knori", str(small_matrix), "-k", "5", "--quality",
        "--json", str(j), "--max-iters", "15",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "silhouette=" in out and "davies-bouldin=" in out
    import json as _json

    data = _json.loads(j.read_text())
    assert data["params"]["k"] == 5
    assert len(data["records"]) == data["iterations"]


def test_knord(small_matrix, capsys):
    assert main([
        "knord", str(small_matrix), "-k", "4", "--machines", "3",
        "--max-iters", "10",
    ]) == 0
    assert "knord" in capsys.readouterr().out


def test_knord_rejects_elkan(small_matrix, capsys):
    rc = main([
        "knord", str(small_matrix), "-k", "4", "--pruning", "elkan",
    ])
    assert rc == 2
    assert "error" in capsys.readouterr().err


def test_missing_file_is_graceful(capsys):
    assert main(["info", "/nonexistent/x.knor"]) == 2


def test_bad_dataset_name_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["gen", "--dataset", "mnist", "-o",
              str(tmp_path / "x.knor")])


def test_kernel_gemm_matches_blocked(small_matrix, tmp_path):
    runs = {}
    for kernel in ("blocked", "gemm"):
        out = tmp_path / f"{kernel}.npz"
        assert main([
            "knori", str(small_matrix), "-k", "5", "--seed", "1",
            "--max-iters", "15", "--kernel", kernel, "--out", str(out),
        ]) == 0
        runs[kernel] = np.load(out)
    np.testing.assert_array_equal(
        runs["blocked"]["assignment"], runs["gemm"]["assignment"]
    )


def test_kernel_accepted_everywhere(small_matrix, capsys):
    assert main([
        "knors", str(small_matrix), "-k", "4", "--max-iters", "6",
        "--kernel", "gemm",
    ]) == 0
    assert main([
        "knord", str(small_matrix), "-k", "4", "--max-iters", "6",
        "--kernel", "gemm",
    ]) == 0
    assert main([
        "knori", str(small_matrix), "-k", "4", "--max-iters", "6",
        "--algorithm", "minibatch", "--kernel", "gemm",
    ]) == 0
    capsys.readouterr()


def test_kernel_rejected_for_mm_only_algorithms(small_matrix, capsys):
    rc = main([
        "knori", str(small_matrix), "-k", "4", "--max-iters", "5",
        "--algorithm", "gmm", "--kernel", "gemm",
    ])
    assert rc == 2
    assert "kernel" in capsys.readouterr().err


def test_knord_allreduce_rect(small_matrix, capsys):
    assert main([
        "knord", str(small_matrix), "-k", "4", "--max-iters", "6",
        "--allreduce", "rect",
    ]) == 0
    assert "knord" in capsys.readouterr().out


def test_serve_kernel_flag(small_matrix, capsys):
    assert main([
        "serve", str(small_matrix), "-k", "4", "--train-steps", "5",
        "--queries", "400", "--kernel", "gemm",
    ]) == 0
    capsys.readouterr()
