"""Cost model: calibration anchors and monotonicity properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.simhw import FOUR_SOCKET_XEON, EC2_C4_8XLARGE


def test_table3_calibration_anchor():
    """1-thread knori- on Friendster-8 should cost ~7.49 s/iter.

    n=66M, d=8, k=10: compute cost alone must land within 10% of the
    paper's measured serial iteration time.
    """
    cm = FOUR_SOCKET_XEON
    n, d, k = 66_000_000, 8, 10
    sim_s = (cm.dist_comp_ns(d, n * k) + cm.rows_overhead_ns(n)) / 1e9
    assert sim_s == pytest.approx(7.49, rel=0.10)


def test_dist_comp_scales_linearly():
    cm = FOUR_SOCKET_XEON
    assert cm.dist_comp_ns(8, 200) == pytest.approx(
        2 * cm.dist_comp_ns(8, 100)
    )
    assert cm.dist_comp_ns(16, 100) > cm.dist_comp_ns(8, 100)


def test_dist_comp_invalid_d():
    with pytest.raises(ConfigError):
        FOUR_SOCKET_XEON.dist_comp_ns(0, 10)


def test_smt_mult_identity_below_cores():
    cm = FOUR_SOCKET_XEON
    for t in (1, 24, 48):
        assert cm.smt_compute_mult(t) == 1.0


def test_smt_mult_penalizes_oversubscription():
    cm = FOUR_SOCKET_XEON
    assert cm.smt_compute_mult(64) > 1.0
    assert cm.smt_compute_mult(96) > cm.smt_compute_mult(64)
    # But SMT still yields net speedup: 64 threads at mult m do more
    # work per unit time than 48 at mult 1 iff 64/m > 48.
    assert 64 / cm.smt_compute_mult(64) > 48


def test_migration_mult_grows_with_threads():
    cm = FOUR_SOCKET_XEON
    assert cm.migration_compute_mult(1) == 1.0
    assert cm.migration_compute_mult(64) > cm.migration_compute_mult(4)


def test_remote_stream_slower_than_local():
    cm = FOUR_SOCKET_XEON
    local = cm.mem_stream_ns(1 << 20, remote=False, streams_on_bank=4)
    remote = cm.mem_stream_ns(
        1 << 20, remote=True, streams_on_bank=4, remote_streams_on_bank=3
    )
    assert remote > local


def test_bank_saturation_monotone():
    cm = FOUR_SOCKET_XEON
    t_prev = 0.0
    for streams in (1, 4, 16, 64):
        t = cm.mem_stream_ns(1 << 20, remote=False, streams_on_bank=streams)
        assert t >= t_prev
        t_prev = t


def test_zero_bytes_free():
    assert FOUR_SOCKET_XEON.mem_stream_ns(
        0, remote=True, streams_on_bank=8
    ) == 0.0


def test_task_time_overlap_semantics():
    cm = FOUR_SOCKET_XEON
    assert cm.task_time_ns(100.0, 60.0, overlap=True) == 100.0
    assert cm.task_time_ns(100.0, 60.0, overlap=False) == 160.0


def test_lock_wait_grows_with_contention():
    cm = FOUR_SOCKET_XEON
    assert cm.lock_wait_ns(1) == cm.lock_ns
    assert cm.lock_wait_ns(8) > cm.lock_wait_ns(2)


def test_barrier_single_thread_free():
    assert FOUR_SOCKET_XEON.barrier_ns(1) == 0.0
    assert FOUR_SOCKET_XEON.barrier_ns(64) > FOUR_SOCKET_XEON.barrier_ns(2)


def test_reduction_grows_logarithmically():
    cm = FOUR_SOCKET_XEON
    r2 = cm.reduction_ns(10, 8, 2)
    r64 = cm.reduction_ns(10, 8, 64)
    assert 0 < r2 < r64
    assert cm.reduction_ns(10, 8, 1) == 0.0


def test_with_topology_swaps_shape():
    cm = FOUR_SOCKET_XEON.with_topology(EC2_C4_8XLARGE.topology)
    assert cm.topology.physical_cores == 18
    assert cm.dist_base_ns == FOUR_SOCKET_XEON.dist_base_ns


@settings(max_examples=50, deadline=None)
@given(
    nbytes=st.integers(1, 1 << 24),
    streams=st.integers(1, 128),
    rstreams=st.integers(0, 128),
)
def test_mem_stream_never_cheaper_remote(nbytes, streams, rstreams):
    """A remote access is never cheaper than the same access local."""
    cm = FOUR_SOCKET_XEON
    local = cm.mem_stream_ns(nbytes, remote=False, streams_on_bank=streams)
    remote = cm.mem_stream_ns(
        nbytes,
        remote=True,
        streams_on_bank=streams,
        remote_streams_on_bank=rstreams,
    )
    assert remote >= local
