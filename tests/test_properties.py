"""Cross-cutting property-based tests (hypothesis).

These exercise invariants that span modules: pruning safety across
random problem instances, conservation laws of the counters, monotone
cost responses, I/O geometry consistency, and the equivalence of all
public drivers on arbitrary inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConvergenceCriteria, knord, knori, lloyd
from repro.core import init_centroids
from repro.core.distance import euclidean
from repro.core.mti import mti_init, mti_iteration
from repro.data import write_matrix
from repro.sem import RowCache, Safs
from repro.simhw import FOUR_SOCKET_XEON
from repro.simhw.ssd import OCZ_INTREPID_ARRAY


def gaussian_instance(n, k, d, seed):
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=3.0, size=(max(k, 2), d))
    comp = rng.integers(0, max(k, 2), size=n)
    return centers[comp] + rng.normal(scale=1.0, size=(n, d))


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(20, 150),
    k=st.integers(2, 8),
    d=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_drivers_agree_with_lloyd_objective(n, k, d, seed):
    """knori (all pruning modes) and knord reach Lloyd's objective on
    arbitrary Gaussian instances (assignments may differ only on exact
    ties, so compare assigned distances)."""
    x = gaussian_instance(n, k, d, seed)
    k = min(k, n)
    c0 = init_centroids(x, k, "random", seed=seed)
    crit = ConvergenceCriteria(max_iters=50)
    ref = lloyd(x, k, init=c0, criteria=crit)
    ref_obj = ref.inertia
    for run in (
        knori(x, k, init=c0, criteria=crit, n_threads=4),
        knori(x, k, pruning="elkan", init=c0, criteria=crit,
              n_threads=4),
        knori(x, k, pruning=None, init=c0, criteria=crit, n_threads=4),
        knord(x, k, n_machines=min(3, n), init=c0, criteria=crit),
    ):
        assert run.inertia == pytest.approx(ref_obj, rel=1e-6, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(20, 200),
    k=st.integers(2, 10),
    seed=st.integers(0, 10_000),
)
def test_mti_counters_conserve(n, k, seed):
    """dist_per_row sums to computed; clause1 + needs_data covers n;
    cluster counts always sum to n."""
    x = gaussian_instance(n, k, 4, seed)
    k = min(k, n)
    c0 = init_centroids(x, k, "random", seed=seed)
    state, res = mti_init(x, c0)
    prev, cur = c0, res.new_centroids
    for _ in range(8):
        r = mti_iteration(x, cur, prev, state)
        assert int(r.dist_per_row.sum()) == r.computed
        assert r.clause1_rows + int(r.needs_data.sum()) == n
        assert state.counts.sum() == n
        assert (state.counts >= 0).all()
        prev, cur = cur, r.new_centroids
        if r.n_changed == 0:
            break


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(20, 150),
    k=st.integers(2, 8),
    seed=st.integers(0, 10_000),
)
def test_objective_never_increases(n, k, seed):
    """The k-means objective is non-increasing for the MTI driver."""
    x = gaussian_instance(n, k, 3, seed)
    k = min(k, n)
    c0 = init_centroids(x, k, "random", seed=seed)
    state, res = mti_init(x, c0)
    prev, cur = c0, res.new_centroids
    last = np.inf
    for _ in range(12):
        d = euclidean(x, cur)[np.arange(n), state.assignment]
        obj = float((d**2).sum())
        assert obj <= last * (1 + 1e-12) + 1e-9
        last = obj
        r = mti_iteration(x, cur, prev, state)
        prev, cur = cur, r.new_centroids
        if r.n_changed == 0:
            break


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(st.integers(0, 5000), min_size=0, max_size=100,
                  unique=True),
    row_bytes=st.sampled_from([16, 64, 200, 512]),
    cache_pages=st.integers(0, 64),
)
def test_safs_accounting_consistent(rows, row_bytes, cache_pages):
    """bytes_requested = rows * row_bytes; hits + ssd pages = pages
    needed; requests never exceed pages from SSD."""
    safs = Safs(
        OCZ_INTREPID_ARRAY, page_cache_bytes=cache_pages * 4096
    )
    arr = np.array(sorted(rows), dtype=np.int64)
    batch = safs.fetch_rows(arr, row_bytes)
    assert batch.bytes_requested == arr.size * row_bytes
    assert (
        batch.page_cache_hits + batch.pages_from_ssd
        == batch.pages_needed
    )
    assert batch.merged_requests <= batch.pages_from_ssd or (
        batch.pages_from_ssd == 0 and batch.merged_requests == 0
    )
    assert batch.bytes_read == batch.pages_from_ssd * 4096


@settings(max_examples=25, deadline=None)
@given(
    capacity_rows=st.integers(0, 100),
    n_rows=st.integers(1, 500),
    n_parts=st.integers(1, 8),
    interval=st.integers(1, 10),
    n_iters=st.integers(1, 60),
    seed=st.integers(0, 100),
)
def test_row_cache_schedule_and_capacity(
    capacity_rows, n_rows, n_parts, interval, n_iters, seed
):
    """Refresh points follow the doubling schedule; capacity is never
    exceeded; hit counts never exceed lookups."""
    rng = np.random.default_rng(seed)
    rc = RowCache(
        capacity_rows * 64, 64, n_rows,
        n_partitions=n_parts, update_interval=interval,
    )
    expected_refreshes = []
    nxt, gap = interval, interval
    while nxt < n_iters:
        expected_refreshes.append(nxt)
        gap *= 2
        nxt += gap
    seen = []
    for it in range(n_iters):
        active = np.unique(rng.integers(0, n_rows, size=20))
        rc.lookup(active)
        if rc.should_refresh(it):
            rc.refresh(it, active)
            seen.append(it)
        assert rc.cached_rows <= max(0, capacity_rows)
    assert seen == expected_refreshes
    assert rc.hits + rc.misses > 0


@settings(max_examples=30, deadline=None)
@given(
    d=st.integers(1, 128),
    n_dist_a=st.integers(0, 10_000),
    n_dist_b=st.integers(0, 10_000),
)
def test_cost_model_superadditive_compute(d, n_dist_a, n_dist_b):
    """Compute charges are additive and nonnegative."""
    cm = FOUR_SOCKET_XEON
    a = cm.dist_comp_ns(d, n_dist_a)
    b = cm.dist_comp_ns(d, n_dist_b)
    both = cm.dist_comp_ns(d, n_dist_a + n_dist_b)
    assert a >= 0 and b >= 0
    assert both == pytest.approx(a + b, rel=1e-12)


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(30, 120),
    k=st.integers(2, 6),
    seed=st.integers(0, 1000),
)
def test_knors_matches_knori_on_disk(n, k, seed, tmp_path_factory):
    """Round-tripping through the on-disk format and the SEM stack
    never changes the clustering."""
    from repro import knors

    x = gaussian_instance(n, k, 3, seed)
    k = min(k, n)
    c0 = init_centroids(x, k, "random", seed=seed)
    td = tmp_path_factory.mktemp("prop")
    path = write_matrix(td / f"m{seed}.knor", x)
    crit = ConvergenceCriteria(max_iters=40)
    a = knori(x, k, init=c0, criteria=crit)
    b = knors(path, k, init=c0, criteria=crit)
    np.testing.assert_array_equal(a.assignment, b.assignment)
    np.testing.assert_allclose(a.centroids, b.centroids, atol=1e-10)
