"""Empty-cluster policies: drop (historical), reseed, error.

``drop`` keeps the vanished cluster's previous centroid -- the
behaviour every existing numerics test pins. ``reseed`` teleports the
centroid to the farthest point (knor-style, deterministic) and only
composes with the unpruned algorithm. ``error`` aborts with
:class:`EmptyClusterError` the moment a cluster loses all members.
"""

import numpy as np
import pytest

from repro import knord, knori, knors
from repro.core import (
    EMPTY_CLUSTER_POLICIES,
    check_empty_cluster_policy,
    full_iteration,
    lloyd,
    reseed_empty_clusters,
)
from repro.errors import ConfigError, EmptyClusterError, FaultError


def forced_empty_setup():
    """Data plus centroids where cluster 2 captures no points."""
    rng = np.random.default_rng(5)
    x = np.vstack([
        rng.normal(loc=(-4.0, 0.0), scale=0.3, size=(20, 2)),
        rng.normal(loc=(4.0, 0.0), scale=0.3, size=(20, 2)),
    ])
    centroids = np.array([
        [-4.0, 0.0],
        [4.0, 0.0],
        [1e6, 1e6],  # nobody's nearest centroid, ever
    ])
    return x, centroids


class TestPolicyValidation:
    def test_known_policies_pass_through(self):
        for p in EMPTY_CLUSTER_POLICIES:
            assert check_empty_cluster_policy(p) == p

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            check_empty_cluster_policy("panic")


class TestReseedUnit:
    def test_reseeds_from_farthest_point(self):
        x, centroids = forced_empty_setup()
        assign = np.where(x[:, 0] < 0, 0, 1).astype(np.int64)
        mindist = np.linalg.norm(x - centroids[assign], axis=1)
        counts = np.bincount(assign, minlength=3)
        out, new_assign, md, cnt, reseeded = reseed_empty_clusters(
            x, centroids, assign, mindist, counts
        )
        assert reseeded == [2]
        far = int(np.argmax(mindist))
        assert np.array_equal(out[2], x[far])
        assert new_assign[far] == 2
        assert md[far] == 0.0
        assert cnt.sum() == counts.sum()
        assert cnt[2] == 1

    def test_ties_break_to_lowest_index(self):
        x = np.array([[0.0], [2.0], [2.0]])
        centroids = np.array([[0.0], [50.0]])
        assign = np.zeros(3, dtype=np.int64)
        mindist = np.abs(x[:, 0] - 0.0)
        counts = np.array([3, 0])
        out, new_assign, _, _, reseeded = reseed_empty_clusters(
            x, centroids, assign, mindist, counts
        )
        assert reseeded == [1]
        assert new_assign.tolist() == [0, 1, 0]  # row 1, not row 2

    def test_each_point_used_once(self):
        # Two empty clusters, one distant point: the second reseed
        # must pick the *next* farthest point, not reuse the first.
        x = np.array([[0.0], [1.0], [10.0], [9.0]])
        centroids = np.array([[0.0], [70.0], [80.0]])
        assign = np.zeros(4, dtype=np.int64)
        mindist = np.abs(x[:, 0] - 0.0)
        counts = np.array([4, 0, 0])
        out, new_assign, _, cnt, reseeded = reseed_empty_clusters(
            x, centroids, assign, mindist, counts
        )
        assert reseeded == [1, 2]
        assert out[1, 0] == 10.0
        assert out[2, 0] == 9.0
        assert cnt.tolist() == [2, 1, 1]

    def test_inputs_untouched(self):
        x, centroids = forced_empty_setup()
        assign = np.where(x[:, 0] < 0, 0, 1).astype(np.int64)
        mindist = np.linalg.norm(x - centroids[assign], axis=1)
        counts = np.bincount(assign, minlength=3)
        snap = (
            centroids.copy(), assign.copy(),
            mindist.copy(), counts.copy(),
        )
        reseed_empty_clusters(x, centroids, assign, mindist, counts)
        assert np.array_equal(centroids, snap[0])
        assert np.array_equal(assign, snap[1])
        assert np.array_equal(mindist, snap[2])
        assert np.array_equal(counts, snap[3])


class TestFullIterationPolicies:
    def test_drop_keeps_previous_centroid(self):
        x, centroids = forced_empty_setup()
        r = full_iteration(x, centroids)  # default drop
        assert np.array_equal(r.new_centroids[2], centroids[2])
        assert r.reseeded == ()

    def test_error_raises_naming_cluster(self):
        x, centroids = forced_empty_setup()
        with pytest.raises(EmptyClusterError, match="2"):
            full_iteration(x, centroids, empty_cluster="error")

    def test_reseed_revives_cluster(self):
        x, centroids = forced_empty_setup()
        r = full_iteration(x, centroids, empty_cluster="reseed")
        assert r.reseeded == (2,)
        assert (np.bincount(r.assignment, minlength=3) > 0).all()
        assert not np.array_equal(r.new_centroids[2], centroids[2])

    def test_invalid_policy_rejected(self):
        x, centroids = forced_empty_setup()
        with pytest.raises(ConfigError):
            full_iteration(x, centroids, empty_cluster="panic")


class TestLloydPolicies:
    def test_drop_matches_default(self):
        x, centroids = forced_empty_setup()
        a = lloyd(x, 3, init=centroids)
        b = lloyd(x, 3, init=centroids, empty_cluster="drop")
        assert np.array_equal(a.centroids, b.centroids)
        assert np.array_equal(a.assignment, b.assignment)

    def test_error_raises(self):
        x, centroids = forced_empty_setup()
        with pytest.raises(EmptyClusterError):
            lloyd(x, 3, init=centroids, empty_cluster="error")

    def test_reseed_ends_with_k_nonempty_clusters(self):
        x, centroids = forced_empty_setup()
        r = lloyd(x, 3, init=centroids, empty_cluster="reseed")
        assert (np.bincount(r.assignment, minlength=3) > 0).all()
        assert r.converged


class TestDriverPolicies:
    def _xc(self):
        return forced_empty_setup()

    def test_knori_error_policy_raises(self):
        x, centroids = self._xc()
        with pytest.raises(EmptyClusterError):
            knori(
                x, 3, init=centroids, pruning=None,
                empty_cluster="error",
            )

    def test_knori_reseed_unpruned_identical_to_lloyd_membership(self):
        x, centroids = self._xc()
        r = knori(
            x, 3, init=centroids, pruning=None,
            empty_cluster="reseed",
        )
        assert (np.bincount(r.assignment, minlength=3) > 0).all()

    def test_knori_reseed_refused_with_pruning(self):
        x, centroids = self._xc()
        with pytest.raises(ConfigError):
            knori(x, 3, init=centroids, pruning="mti",
                  empty_cluster="reseed")

    def test_knori_pruned_error_policy_raises(self):
        x, centroids = self._xc()
        with pytest.raises(EmptyClusterError):
            knori(x, 3, init=centroids, pruning="mti",
                  empty_cluster="error")

    def test_knors_error_policy_raises(self, tmp_path):
        from repro.data import write_matrix

        x, centroids = self._xc()
        path = str(write_matrix(tmp_path / "m.knor", x))
        with pytest.raises(EmptyClusterError):
            knors(path, 3, init=centroids, pruning=None,
                  empty_cluster="error")

    def test_knord_reseed_refused(self):
        x, centroids = self._xc()
        with pytest.raises(ConfigError):
            knord(x, 3, init=centroids, n_machines=2,
                  empty_cluster="reseed")

    def test_knord_error_policy_raises_on_global_count(self):
        x, centroids = self._xc()
        with pytest.raises(EmptyClusterError):
            knord(x, 3, init=centroids, pruning=None, n_machines=2,
                  empty_cluster="error")

    def test_knord_drop_tolerates_local_zeros(self):
        # Shards legitimately have locally-empty clusters (the data
        # is contiguously sharded); drop must not confuse local with
        # global emptiness.
        rng = np.random.default_rng(7)
        x = np.vstack([
            rng.normal(loc=(-4.0, 0.0), scale=0.3, size=(30, 2)),
            rng.normal(loc=(4.0, 0.0), scale=0.3, size=(30, 2)),
        ])
        r = knord(x, 2, init="random", seed=1, n_machines=2,
                  empty_cluster="error")
        assert (np.bincount(r.assignment, minlength=2) > 0).all()

    def test_empty_cluster_error_is_not_a_fault(self):
        # The typed hierarchy: EmptyClusterError signals wrong k, not
        # an injected fault -- it must not be caught by fault handling.
        assert not issubclass(EmptyClusterError, FaultError)
