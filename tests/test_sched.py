"""Schedulers: completeness, steal ordering, and priority invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SchedulerError
from repro.sched import (
    FifoScheduler,
    NumaAwareScheduler,
    StaticScheduler,
    build_task_blocks,
    owner_of_task,
)
from repro.sched.blocks import auto_task_rows
from repro.simhw import FOUR_SOCKET_XEON, SimMachine, TaskWork
from repro.simhw.thread import spawn_threads
from repro.simhw.topology import BindPolicy


def make_tasks(n, home=None):
    return [
        TaskWork(i, 10, 100, 640, 120, home if home is not None else i % 4)
        for i in range(n)
    ]


def make_threads(t):
    return spawn_threads(
        FOUR_SOCKET_XEON.topology, t, BindPolicy.NUMA_BIND
    )


def drain(sched, tasks, threads, order=None):
    """Round-robin drain; returns {thread_id: [task_ids]}."""
    sched.assign(tasks, threads)
    got = {th.thread_id: [] for th in threads}
    active = list(threads) if order is None else [threads[i] for i in order]
    while active:
        still = []
        for th in active:
            dec = sched.next_task(th)
            if dec is not None:
                got[th.thread_id].append(dec.task.task_id)
                still.append(th)
        active = still
    return got


@pytest.mark.parametrize(
    "sched_cls", [StaticScheduler, FifoScheduler, NumaAwareScheduler]
)
def test_every_task_dispatched_exactly_once(sched_cls):
    tasks = make_tasks(37)
    threads = make_threads(5)
    got = drain(sched_cls(), tasks, threads)
    all_ids = sorted(i for ids in got.values() for i in ids)
    assert all_ids == list(range(37))


def test_owner_of_task_block_structure():
    owners = [owner_of_task(i, 16, 4) for i in range(16)]
    assert owners == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4


def test_owner_of_task_validation():
    with pytest.raises(SchedulerError):
        owner_of_task(0, 0, 4)
    with pytest.raises(SchedulerError):
        owner_of_task(16, 16, 4)


def test_static_never_steals():
    tasks = make_tasks(16)
    threads = make_threads(4)
    sched = StaticScheduler()
    sched.assign(tasks, threads)
    # Exhaust thread 0's own queue; it must then get None even though
    # other queues still hold work.
    while (dec := sched.next_task(threads[0])) is not None:
        assert not dec.was_steal
    assert sum(sched.queue_lengths()) == 12


def test_static_no_lock_probes():
    tasks = make_tasks(8)
    threads = make_threads(4)
    sched = StaticScheduler()
    sched.assign(tasks, threads)
    dec = sched.next_task(threads[0])
    assert dec.probe_contenders == ()


def test_fifo_steals_from_any_node():
    tasks = make_tasks(16)
    threads = make_threads(4)
    sched = FifoScheduler()
    sched.assign(tasks, threads)
    # Drain thread 3's own queue, then steal: FIFO scans in id order
    # from tid+1, so the first steal victim is thread 0 (remote node).
    for _ in range(4):
        sched.next_task(threads[3])
    dec = sched.next_task(threads[3])
    assert dec.was_steal
    assert dec.stolen_from_node == threads[0].node
    assert dec.stolen_from_node != threads[3].node


def test_numa_aware_steals_local_node_first():
    threads = make_threads(8)  # 2 threads per node
    tasks = make_tasks(32)
    sched = NumaAwareScheduler()
    sched.assign(tasks, threads)
    # Thread 0 and 1 share node 0. Drain thread 0's own queue.
    while sched.queue_lengths()[0] > 0:
        sched.next_task(threads[0])
    dec = sched.next_task(threads[0])
    assert dec.was_steal
    assert dec.stolen_from_node == threads[0].node  # local-node victim


def test_numa_aware_falls_back_to_remote():
    threads = make_threads(8)
    tasks = make_tasks(32)
    sched = NumaAwareScheduler()
    sched.assign(tasks, threads)
    # Empty both node-0 queues entirely.
    for tid in (0, 1):
        while sched.queue_lengths()[tid] > 0:
            sched.next_task(threads[tid])
    dec = sched.next_task(threads[0])
    assert dec.was_steal
    assert dec.stolen_from_node != threads[0].node
    # The probe list shows it scanned its local partitions first.
    assert len(dec.probe_contenders) > 2


def test_numa_aware_steals_from_back():
    threads = make_threads(2)
    tasks = make_tasks(8)
    sched = NumaAwareScheduler()
    sched.assign(tasks, threads)
    # Thread 1 owns tasks 4..7; drain thread 0 then steal: the steal
    # takes the *back* of the victim queue (task 7), not the front.
    for _ in range(4):
        sched.next_task(threads[0])
    dec = sched.next_task(threads[0])
    assert dec.task.task_id == 7


def test_fifo_steals_from_front():
    threads = make_threads(2)
    tasks = make_tasks(8)
    sched = FifoScheduler()
    sched.assign(tasks, threads)
    for _ in range(4):
        sched.next_task(threads[0])
    dec = sched.next_task(threads[0])
    assert dec.task.task_id == 4


def test_assign_requires_threads():
    with pytest.raises(SchedulerError):
        NumaAwareScheduler().assign(make_tasks(4), [])


@settings(max_examples=30, deadline=None)
@given(
    n_tasks=st.integers(1, 60),
    n_threads=st.integers(1, 16),
    drain_order_seed=st.integers(0, 100),
)
def test_completeness_under_any_drain_order(
    n_tasks, n_threads, drain_order_seed
):
    rng = np.random.default_rng(drain_order_seed)
    tasks = make_tasks(n_tasks)
    threads = make_threads(n_threads)
    order = rng.permutation(n_threads).tolist()
    for cls in (StaticScheduler, FifoScheduler, NumaAwareScheduler):
        got = drain(cls(), tasks, threads, order=order)
        ids = sorted(i for ids in got.values() for i in ids)
        assert ids == list(range(n_tasks))


class TestBuildTaskBlocks:
    def test_block_aggregation(self):
        machine = SimMachine.build(FOUR_SOCKET_XEON, n_threads=4)
        n = 1000
        dist = np.arange(n, dtype=np.int64) % 7
        needs = np.arange(n) % 3 == 0
        tasks = build_task_blocks(
            n, 8, machine, dist_per_row=dist, needs_data=needs,
            task_rows=128,
        )
        assert len(tasks) == 8
        assert sum(t.n_rows for t in tasks) == n
        assert sum(t.n_dist for t in tasks) == int(dist.sum())
        assert sum(t.data_bytes for t in tasks) == int(needs.sum()) * 64

    def test_home_nodes_partitioned(self):
        machine = SimMachine.build(FOUR_SOCKET_XEON, n_threads=8)
        tasks = build_task_blocks(
            800, 8, machine,
            dist_per_row=np.full(800, 5), task_rows=100,
        )
        assert [t.home_node for t in tasks] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_validation(self):
        machine = SimMachine.build(FOUR_SOCKET_XEON, n_threads=2)
        with pytest.raises(SchedulerError):
            build_task_blocks(0, 8, machine, dist_per_row=np.zeros(0))
        with pytest.raises(SchedulerError):
            build_task_blocks(10, 8, machine, dist_per_row=None)
        with pytest.raises(SchedulerError):
            build_task_blocks(
                10, 8, machine, dist_per_row=np.zeros(5)
            )
        with pytest.raises(SchedulerError):
            build_task_blocks(
                10, 8, machine, dist_per_row=np.zeros(10),
                needs_data=np.ones(3, dtype=bool),
            )

    def test_auto_task_rows_bounds(self):
        assert auto_task_rows(1_000_000_000, 48) == 8192
        assert auto_task_rows(1000, 48) == 64
        assert 64 <= auto_task_rows(65536, 48) <= 8192
        with pytest.raises(SchedulerError):
            auto_task_rows(0, 4)
