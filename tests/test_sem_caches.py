"""Page cache, SAFS request handling, and the partitioned row cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IoSubsystemError
from repro.sem import PageCache, RowCache, Safs
from repro.simhw.ssd import OCZ_INTREPID_ARRAY


class TestPageCache:
    def test_lru_eviction(self):
        pc = PageCache(capacity_bytes=3 * 4096, page_bytes=4096)
        for p in (1, 2, 3):
            assert not pc.lookup(p)
            pc.admit(p)
        pc.lookup(1)  # refresh page 1
        pc.admit(4)  # evicts 2 (LRU)
        assert pc.contains(1)
        assert not pc.contains(2)
        assert pc.contains(3)
        assert pc.contains(4)

    def test_capacity_zero_admits_nothing(self):
        pc = PageCache(0, 4096)
        pc.admit(1)
        assert len(pc) == 0
        assert not pc.lookup(1)

    def test_hit_miss_counters(self):
        pc = PageCache(10 * 4096, 4096)
        pc.lookup(5)
        pc.admit(5)
        pc.lookup(5)
        assert pc.hits == 1
        assert pc.misses == 1

    def test_clear(self):
        pc = PageCache(10 * 4096, 4096)
        pc.admit(1)
        pc.clear()
        assert len(pc) == 0

    def test_invalid_params(self):
        with pytest.raises(IoSubsystemError):
            PageCache(100, 0)
        with pytest.raises(IoSubsystemError):
            PageCache(-1, 4096)

    def test_readmit_is_noop(self):
        pc = PageCache(2 * 4096, 4096)
        pc.admit(1)
        pc.admit(1)
        assert len(pc) == 1

    def test_capacity_zero_batch_ops(self):
        pc = PageCache(0, 4096)
        pages = np.array([1, 2, 3], dtype=np.int64)
        pc.admit_batch(pages)
        assert len(pc) == 0
        np.testing.assert_array_equal(
            pc.lookup_batch(pages), [False, False, False]
        )
        assert pc.misses == 3
        assert pc.pages_lru_order() == []

    def test_exact_eviction_order_interleaved(self):
        """pages_lru_order tracks recency through mixed batch lookups
        and admissions, and eviction takes exactly the LRU tail."""
        pc = PageCache(4 * 4096, 4096)
        pc.admit_batch(np.array([10, 20, 30, 40]))
        assert pc.pages_lru_order() == [10, 20, 30, 40]
        # A batch hit restamps the hit pages, in argument order.
        pc.lookup_batch(np.array([30, 10]))
        assert pc.pages_lru_order() == [20, 40, 30, 10]
        # Admitting two new pages evicts the two least recent (20, 40).
        pc.admit_batch(np.array([50, 60]))
        assert pc.pages_lru_order() == [30, 10, 50, 60]
        assert not pc.contains(20)
        assert not pc.contains(40)
        # Re-admitting a resident page only refreshes it.
        pc.admit_batch(np.array([30]))
        assert pc.pages_lru_order() == [10, 50, 60, 30]


class TestSafs:
    def make(self, cache_pages=16):
        return Safs(
            OCZ_INTREPID_ARRAY, page_cache_bytes=cache_pages * 4096
        )

    def test_pages_of_rows_geometry(self):
        safs = self.make()
        # 64-byte rows: 64 rows per 4K page.
        pages = safs.pages_of_rows(np.array([0, 1, 63]), 64)
        np.testing.assert_array_equal(pages, [0])
        pages = safs.pages_of_rows(np.array([0, 64, 128]), 64)
        np.testing.assert_array_equal(pages, [0, 1, 2])

    def test_row_spanning_two_pages(self):
        safs = self.make()
        # 3000-byte rows: row 1 spans pages 0..1.
        pages = safs.pages_of_rows(np.array([1]), 3000)
        np.testing.assert_array_equal(pages, [0, 1])

    def test_empty_request(self):
        safs = self.make()
        batch = safs.fetch_rows(np.array([], dtype=np.int64), 64)
        assert batch.bytes_read == 0
        assert batch.service_ns == 0.0

    def test_merge_requests_runs(self):
        assert Safs.merge_requests(np.array([1, 2, 3, 7, 8, 20])) == 3
        assert Safs.merge_requests(np.array([], dtype=np.int64)) == 0
        assert Safs.merge_requests(np.array([5])) == 1

    def test_fragmentation_amplifies_reads(self):
        """Sparse row requests read far more bytes than requested --
        the Figure 6 req-vs-read gap."""
        safs = self.make(cache_pages=0)
        # Every 64th row of 64-byte rows: one row per page.
        rows = np.arange(0, 64 * 100, 64)
        batch = safs.fetch_rows(rows, 64)
        assert batch.bytes_requested == 100 * 64
        assert batch.bytes_read == 100 * 4096
        assert batch.bytes_read / batch.bytes_requested == 64.0

    def test_page_cache_absorbs_repeat_reads(self):
        safs = self.make(cache_pages=200)
        rows = np.arange(0, 1000)
        first = safs.fetch_rows(rows, 64)
        second = safs.fetch_rows(rows, 64)
        assert first.pages_from_ssd > 0
        assert second.pages_from_ssd == 0
        assert second.page_cache_hits == second.pages_needed

    def test_invalid_row_bytes(self):
        safs = self.make()
        with pytest.raises(IoSubsystemError):
            safs.pages_of_rows(np.array([0]), 0)

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.lists(st.integers(0, 10_000), min_size=1, max_size=200),
        row_bytes=st.sampled_from([8, 64, 256, 512]),
    )
    def test_pages_cover_all_rows(self, rows, row_bytes):
        safs = self.make()
        arr = np.array(sorted(set(rows)), dtype=np.int64)
        pages = set(safs.pages_of_rows(arr, row_bytes).tolist())
        for r in arr:
            first = r * row_bytes // 4096
            last = (r * row_bytes + row_bytes - 1) // 4096
            assert first in pages and last in pages


class TestRowCache:
    def test_refresh_schedule_doubles(self):
        rc = RowCache(1 << 20, 64, 10_000, update_interval=5)
        scheduled = [i for i in range(200) if rc.should_refresh(i)]
        assert scheduled == [5]
        rc.refresh(5, np.arange(100))
        assert rc.should_refresh(15)  # 5 + 10
        rc.refresh(15, np.arange(100))
        assert rc.should_refresh(35)  # 15 + 20

    def test_refresh_out_of_schedule_raises(self):
        rc = RowCache(1 << 20, 64, 1000)
        with pytest.raises(IoSubsystemError):
            rc.refresh(3, np.arange(10))

    def test_lookup_hits_after_refresh(self):
        rc = RowCache(1 << 20, 64, 1000)
        active = np.arange(0, 500)
        rc.refresh(5, active)
        mask = rc.lookup(np.array([0, 100, 499, 500, 999]))
        np.testing.assert_array_equal(
            mask, [True, True, True, False, False]
        )
        assert rc.hits == 3
        assert rc.misses == 2

    def test_capacity_respected_per_partition(self):
        # Capacity for 8 rows, 4 partitions -> 2 rows per partition.
        rc = RowCache(8 * 64, 64, 400, n_partitions=4)
        admitted = rc.refresh(5, np.arange(400))
        assert admitted == 8
        assert rc.cached_rows == 8
        # Each partition admitted its first 2 rows.
        assert rc.lookup(np.array([0]))[0]
        assert rc.lookup(np.array([100]))[0]
        assert not rc.lookup(np.array([50]))[0]

    def test_refresh_flushes_old_contents(self):
        rc = RowCache(1 << 20, 64, 1000)
        rc.refresh(5, np.arange(0, 100))
        rc.refresh(15, np.arange(500, 600))
        assert not rc.lookup(np.array([0]))[0]
        assert rc.lookup(np.array([550]))[0]

    def test_zero_capacity(self):
        rc = RowCache(0, 64, 100)
        rc.refresh(5, np.arange(100))
        assert rc.cached_rows == 0

    def test_clear_resets_schedule(self):
        rc = RowCache(1 << 20, 64, 100, update_interval=5)
        rc.refresh(5, np.arange(10))
        rc.clear()
        assert rc.should_refresh(5)
        assert rc.cached_rows == 0

    def test_invalid_params(self):
        for kwargs in (
            dict(row_bytes=0),
            dict(n_rows=0),
            dict(n_partitions=0),
            dict(update_interval=0),
        ):
            full = dict(
                capacity_bytes=100, row_bytes=8, n_rows=10,
                n_partitions=1, update_interval=5,
            )
            full.update(kwargs)
            with pytest.raises(IoSubsystemError):
                RowCache(
                    full["capacity_bytes"], full["row_bytes"],
                    full["n_rows"],
                    n_partitions=full["n_partitions"],
                    update_interval=full["update_interval"],
                )

    def test_quota_remainder_distributed(self):
        """capacity % partitions is not dropped: 10 rows over 4
        partitions gives quotas 3, 3, 2, 2."""
        rc = RowCache(10 * 64, 64, 400, n_partitions=4)
        np.testing.assert_array_equal(
            rc.partition_quotas(), [3, 3, 2, 2]
        )
        admitted = rc.refresh(5, np.arange(400))
        assert admitted == 10
        assert rc.cached_rows == 10

    def test_partition_occupancy(self):
        rc = RowCache(8 * 64, 64, 400, n_partitions=4)
        # Activity only in partitions 0 ([0,100)) and 2 ([200,300)).
        rc.refresh(5, np.array([0, 1, 2, 250]))
        np.testing.assert_array_equal(
            rc.partition_occupancy(), [2, 0, 1, 0]
        )
        assert rc.partition_occupancy().sum() == rc.cached_rows

    def test_occupancy_metrics_export(self):
        from repro.metrics import (
            render_cache_occupancy,
            row_cache_occupancy,
        )

        rc = RowCache(8 * 64, 64, 400, n_partitions=4)
        rc.refresh(5, np.array([0, 1, 250]))
        snap = row_cache_occupancy(rc)
        assert snap["partitions"] == 4
        assert snap["occupancy"] == [2, 0, 1, 0]
        assert snap["total_rows"] == 3
        assert snap["skew"] == pytest.approx(2 / 0.75)
        table = render_cache_occupancy(rc, title="rc")
        assert "partition" in table and "quota" in table

    def test_fast_forward_matches_executed_schedule(self):
        """Skipping refreshes via fast_forward lands on the same next
        scheduled iteration as actually executing them."""
        for upto in (5, 15, 35, 36, 74, 75, 200):
            executed = RowCache(1 << 20, 64, 1000, update_interval=5)
            it = executed.update_interval
            while it <= upto:
                executed.refresh(it, np.arange(10))
                it = executed._next_refresh
            skipped = RowCache(1 << 20, 64, 1000, update_interval=5)
            skipped.fast_forward(upto)
            assert skipped._next_refresh == executed._next_refresh
            assert skipped._gap == executed._gap

    def test_populated_flag(self):
        rc = RowCache(1 << 20, 64, 1000)
        assert not rc.populated
        rc.refresh(5, np.arange(10))
        assert rc.populated
        rc.clear()
        assert not rc.populated

    @settings(max_examples=30, deadline=None)
    @given(
        capacity_rows=st.integers(0, 200),
        n_parts=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    def test_never_exceeds_capacity(self, capacity_rows, n_parts, seed):
        rng = np.random.default_rng(seed)
        rc = RowCache(
            capacity_rows * 64, 64, 1000, n_partitions=n_parts
        )
        active = np.unique(rng.integers(0, 1000, size=300))
        rc.refresh(5, active)
        assert rc.cached_rows <= capacity_rows
        assert rc.cached_bytes <= capacity_rows * 64
