"""knors driver: SEM runs against real on-disk files."""

import numpy as np
import pytest

from repro import ConvergenceCriteria, knori, knors
from repro.core import init_centroids
from repro.data import MatrixFile
from repro.simhw.ssd import I3_NVME_ARRAY

CRIT = ConvergenceCriteria(max_iters=30)


def test_sem_matches_in_memory(matrix_path, overlapping):
    c0 = init_centroids(overlapping, 8, "random", seed=3)
    im = knori(overlapping, 8, init=c0)
    sem = knors(matrix_path, 8, init=c0)
    np.testing.assert_array_equal(sem.assignment, im.assignment)
    np.testing.assert_allclose(sem.centroids, im.centroids, atol=1e-9)


def test_accepts_path_matrixfile_and_array(matrix_path, overlapping):
    c0 = init_centroids(overlapping, 4, "random", seed=0)
    by_path = knors(matrix_path, 4, init=c0, criteria=CRIT)
    by_file = knors(MatrixFile(matrix_path), 4, init=c0, criteria=CRIT)
    by_array = knors(overlapping, 4, init=c0, criteria=CRIT)
    np.testing.assert_array_equal(by_path.assignment, by_file.assignment)
    np.testing.assert_array_equal(by_path.assignment, by_array.assignment)


def test_sem_memory_far_below_in_memory(matrix_path, overlapping):
    im = knori(overlapping, 6, seed=1, criteria=CRIT)
    # Cache budgets proportional to the data (the paper's ratios); the
    # default page-cache floor of 64 pages would swamp a 190 KB toy set.
    data_bytes = overlapping.size * 8
    sem = knors(
        matrix_path, 6, seed=1, criteria=CRIT,
        page_cache_bytes=data_bytes // 16,
        row_cache_bytes=data_bytes // 32,
    )
    assert "data" not in sem.memory_breakdown
    assert sem.peak_memory_bytes < im.peak_memory_bytes


def test_mti_clause1_elides_io(matrix_path):
    res = knors(matrix_path, 6, pruning="mti", seed=1, criteria=CRIT)
    if res.iterations > 3:
        first = res.records[1]
        last = res.records[-1]
        # As clusters root themselves, fewer rows request I/O.
        assert last.rows_active <= first.rows_active


def test_row_cache_reduces_reads(matrix_path):
    crit = ConvergenceCriteria(max_iters=12)
    with_rc = knors(matrix_path, 8, pruning=None, seed=2, criteria=crit)
    without = knors(
        matrix_path, 8, pruning=None, row_cache_bytes=0, seed=2,
        criteria=crit,
    )
    assert with_rc.total_bytes_read <= without.total_bytes_read
    assert sum(r.cache_hits for r in with_rc.records) > 0
    assert sum(r.cache_hits for r in without.records) == 0


def test_bytes_read_at_least_requested_rows(matrix_path):
    """Page granularity: you always read at least what you asked for
    (modulo cache hits), usually more (fragmentation)."""
    res = knors(
        matrix_path, 6, pruning=None, row_cache_bytes=0,
        page_cache_bytes=0, seed=0, criteria=CRIT,
    )
    assert res.total_bytes_read >= res.total_bytes_requested


def test_algorithm_names(matrix_path):
    crit = ConvergenceCriteria(max_iters=3)
    assert knors(matrix_path, 3, criteria=crit).algorithm == "knors"
    assert (
        knors(matrix_path, 3, pruning=None, criteria=crit).algorithm
        == "knors-"
    )
    assert (
        knors(
            matrix_path, 3, pruning=None, row_cache_bytes=0, criteria=crit
        ).algorithm
        == "knors--"
    )


def test_io_overlap_semantics(matrix_path):
    """Iteration time is max(compute, io) + sync, so it is never less
    than the I/O service alone would require."""
    res = knors(
        matrix_path, 6, pruning=None, row_cache_bytes=0,
        page_cache_bytes=0, seed=0, criteria=CRIT,
    )
    assert res.sim_seconds > 0
    for rec in res.records:
        assert rec.sim_ns > 0


def test_nvme_array_not_slower(matrix_path):
    sata = knors(matrix_path, 6, pruning=None, row_cache_bytes=0,
                 page_cache_bytes=0, seed=0, criteria=CRIT)
    nvme = knors(matrix_path, 6, pruning=None, row_cache_bytes=0,
                 page_cache_bytes=0, seed=0, criteria=CRIT,
                 ssd=I3_NVME_ARRAY)
    assert nvme.sim_seconds <= sata.sim_seconds


def test_cache_update_interval_recorded(matrix_path):
    res = knors(
        matrix_path, 4, cache_update_interval=3,
        criteria=ConvergenceCriteria(max_iters=4),
    )
    assert res.params["cache_update_interval"] == 3


def test_row_cache_defaults_scale_with_data(matrix_path, overlapping):
    res = knors(matrix_path, 4, criteria=ConvergenceCriteria(max_iters=2))
    data_bytes = overlapping.shape[0] * overlapping.shape[1] * 8
    assert res.params["row_cache_bytes"] == data_bytes // 32
    assert res.params["page_cache_bytes"] >= data_bytes // 16
