"""SEM checkpointing: save/load, crash recovery, atomicity."""

import json

import numpy as np
import pytest

from repro import ConvergenceCriteria, knors
from repro.core import init_centroids
from repro.errors import IoSubsystemError
from repro.sem.checkpoint import (
    CheckpointState,
    has_checkpoint,
    load_checkpoint,
    save_checkpoint,
)


def make_state(it=3):
    rng = np.random.default_rng(0)
    return CheckpointState(
        iteration=it,
        centroids=rng.normal(size=(4, 3)),
        prev_centroids=rng.normal(size=(4, 3)),
        assignment=rng.integers(0, 4, 100).astype(np.int32),
        ub=rng.random(100),
        sums=rng.normal(size=(4, 3)),
        counts=rng.integers(1, 50, 4).astype(np.int64),
        n_changed=17,
        params={"n": 100, "d": 3, "k": 4, "pruning": "mti"},
    )


class TestCheckpointFiles:
    def test_roundtrip(self, tmp_path):
        state = make_state()
        save_checkpoint(tmp_path, state)
        assert has_checkpoint(tmp_path)
        back = load_checkpoint(tmp_path)
        assert back.iteration == 3
        assert back.n_changed == 17
        np.testing.assert_array_equal(back.centroids, state.centroids)
        np.testing.assert_array_equal(back.assignment, state.assignment)
        np.testing.assert_array_equal(back.ub, state.ub)
        assert back.params["pruning"] == "mti"

    def test_unpruned_state_has_no_bounds(self, tmp_path):
        state = make_state()
        state.ub = None
        state.sums = None
        state.counts = None
        save_checkpoint(tmp_path, state)
        back = load_checkpoint(tmp_path)
        assert back.ub is None and back.sums is None

    def test_overwrite_keeps_latest(self, tmp_path):
        save_checkpoint(tmp_path, make_state(it=3))
        save_checkpoint(tmp_path, make_state(it=7))
        assert load_checkpoint(tmp_path).iteration == 7

    def test_missing_raises(self, tmp_path):
        assert not has_checkpoint(tmp_path)
        with pytest.raises(IoSubsystemError):
            load_checkpoint(tmp_path)

    def test_corrupt_manifest_raises(self, tmp_path):
        save_checkpoint(tmp_path, make_state())
        (tmp_path / "checkpoint.json").write_text("{not json")
        with pytest.raises(IoSubsystemError):
            load_checkpoint(tmp_path)

    def test_wrong_version_raises(self, tmp_path):
        save_checkpoint(tmp_path, make_state())
        m = json.loads((tmp_path / "checkpoint.json").read_text())
        m["format_version"] = 99
        (tmp_path / "checkpoint.json").write_text(json.dumps(m))
        with pytest.raises(IoSubsystemError):
            load_checkpoint(tmp_path)

    def test_no_tmp_files_left(self, tmp_path):
        save_checkpoint(tmp_path, make_state())
        assert not list(tmp_path.glob("*.tmp"))

    def test_roundtrip_preserves_dtypes_and_shapes(self, tmp_path):
        state = make_state()
        save_checkpoint(tmp_path, state)
        back = load_checkpoint(tmp_path)
        for name in ("centroids", "prev_centroids", "assignment",
                     "ub", "sums", "counts"):
            want = getattr(state, name)
            got = getattr(back, name)
            assert got.dtype == want.dtype, name
            assert got.shape == want.shape, name

    def test_no_ub_but_sums_roundtrip(self, tmp_path):
        """Pruning state without bounds (the v1 format conflated
        has_ub with has_sums and silently dropped this case)."""
        state = make_state()
        state.ub = None
        save_checkpoint(tmp_path, state)
        back = load_checkpoint(tmp_path)
        assert back.ub is None
        np.testing.assert_array_equal(back.sums, state.sums)
        np.testing.assert_array_equal(back.counts, state.counts)
        assert back.counts.dtype == state.counts.dtype

    def test_ub_without_sums_roundtrip(self, tmp_path):
        state = make_state()
        state.sums = None
        state.counts = None
        save_checkpoint(tmp_path, state)
        back = load_checkpoint(tmp_path)
        np.testing.assert_array_equal(back.ub, state.ub)
        assert back.sums is None and back.counts is None

    @pytest.mark.parametrize("drop", ["sums", "counts"])
    def test_sums_counts_must_travel_together(self, tmp_path, drop):
        state = make_state()
        setattr(state, drop, None)
        with pytest.raises(IoSubsystemError):
            save_checkpoint(tmp_path, state)

    def test_v1_checkpoint_still_loads(self, tmp_path):
        """Back-compat: the single-npz version-1 layout."""
        state = make_state()
        np.savez(
            tmp_path / "checkpoint.npz",
            centroids=state.centroids,
            prev_centroids=state.prev_centroids,
            assignment=state.assignment,
            ub=state.ub,
            sums=state.sums,
            counts=state.counts,
        )
        (tmp_path / "checkpoint.json").write_text(json.dumps({
            "format_version": 1,
            "iteration": state.iteration,
            "n_changed": state.n_changed,
            "has_pruning_state": True,
            "params": state.params,
        }))
        assert has_checkpoint(tmp_path)
        back = load_checkpoint(tmp_path)
        assert back.iteration == state.iteration
        np.testing.assert_array_equal(back.ub, state.ub)
        np.testing.assert_array_equal(back.sums, state.sums)

    def test_old_arrays_collected_after_save(self, tmp_path):
        save_checkpoint(tmp_path, make_state(it=3))
        save_checkpoint(tmp_path, make_state(it=7))
        npz = list(tmp_path.glob("checkpoint-*.npz"))
        assert len(npz) == 1


class TestMidSaveCrashes:
    """A crash at any stage of the save protocol must leave a
    loadable checkpoint directory (satellite of the fault layer; the
    crash points are driven by FaultPlan in the integration tests and
    exercised directly here)."""

    @pytest.mark.parametrize(
        "crash_point", ["arrays-written", "manifest-tmp-written"]
    )
    def test_pre_commit_crash_keeps_previous(self, tmp_path, crash_point):
        from repro.errors import WorkerCrashError

        save_checkpoint(tmp_path, make_state(it=3))
        with pytest.raises(WorkerCrashError):
            save_checkpoint(
                tmp_path, make_state(it=7), crash_point=crash_point
            )
        assert has_checkpoint(tmp_path)
        back = load_checkpoint(tmp_path)
        assert back.iteration == 3
        np.testing.assert_array_equal(
            back.centroids, make_state(it=3).centroids
        )

    def test_post_commit_crash_keeps_new(self, tmp_path):
        from repro.errors import WorkerCrashError

        save_checkpoint(tmp_path, make_state(it=3))
        with pytest.raises(WorkerCrashError):
            save_checkpoint(
                tmp_path, make_state(it=7),
                crash_point="committed-no-gc",
            )
        assert load_checkpoint(tmp_path).iteration == 7

    def test_crash_on_first_save_leaves_no_checkpoint(self, tmp_path):
        from repro.errors import WorkerCrashError

        with pytest.raises(WorkerCrashError):
            save_checkpoint(
                tmp_path, make_state(it=3),
                crash_point="arrays-written",
            )
        assert not has_checkpoint(tmp_path)
        with pytest.raises(IoSubsystemError):
            load_checkpoint(tmp_path)

    def test_next_save_collects_crash_leftovers(self, tmp_path):
        from repro.errors import WorkerCrashError

        save_checkpoint(tmp_path, make_state(it=3))
        with pytest.raises(WorkerCrashError):
            save_checkpoint(
                tmp_path, make_state(it=5),
                crash_point="arrays-written",
            )
        save_checkpoint(tmp_path, make_state(it=7))
        assert load_checkpoint(tmp_path).iteration == 7
        assert len(list(tmp_path.glob("checkpoint-*.npz"))) == 1
        assert not list(tmp_path.glob("*.tmp"))


class TestKnorsRecovery:
    @pytest.mark.parametrize("pruning", ["mti", None])
    def test_crash_and_resume_matches_uninterrupted(
        self, matrix_path, overlapping, tmp_path, pruning
    ):
        """Kill the run at iteration 4, resume, and land on the exact
        same final clustering as an uninterrupted run."""
        c0 = init_centroids(overlapping, 6, "random", seed=3)
        ckpt = tmp_path / "ckpt"
        full = knors(matrix_path, 6, init=c0, pruning=pruning)

        # "Crash": cap at 4 iterations, checkpointing every 2.
        knors(
            matrix_path, 6, init=c0, pruning=pruning,
            checkpoint_dir=ckpt, checkpoint_interval=2,
            criteria=ConvergenceCriteria(max_iters=4),
        )
        assert has_checkpoint(ckpt)
        assert load_checkpoint(ckpt).iteration == 4

        resumed = knors(
            matrix_path, 6, init=c0, pruning=pruning,
            checkpoint_dir=ckpt, checkpoint_interval=2, resume=True,
        )
        np.testing.assert_array_equal(
            resumed.assignment, full.assignment
        )
        np.testing.assert_allclose(
            resumed.centroids, full.centroids, atol=1e-9
        )
        # The resumed run only performed the remaining iterations.
        assert resumed.iterations == full.iterations - 4

    def test_resume_without_checkpoint_starts_fresh(
        self, matrix_path, overlapping, tmp_path
    ):
        c0 = init_centroids(overlapping, 4, "random", seed=1)
        res = knors(
            matrix_path, 4, init=c0,
            checkpoint_dir=tmp_path / "empty", resume=True,
            criteria=ConvergenceCriteria(max_iters=5),
        )
        assert res.iterations == 5 or res.converged

    def test_checkpoint_written_at_interval(
        self, matrix_path, overlapping, tmp_path
    ):
        c0 = init_centroids(overlapping, 4, "random", seed=1)
        ckpt = tmp_path / "c"
        knors(
            matrix_path, 4, init=c0, checkpoint_dir=ckpt,
            checkpoint_interval=3,
            criteria=ConvergenceCriteria(max_iters=7),
        )
        state = load_checkpoint(ckpt)
        assert state.iteration in (3, 6)
