"""SEM checkpointing: save/load, crash recovery, atomicity."""

import json

import numpy as np
import pytest

from repro import ConvergenceCriteria, knors
from repro.core import init_centroids
from repro.errors import IoSubsystemError
from repro.sem.checkpoint import (
    CheckpointState,
    has_checkpoint,
    load_checkpoint,
    save_checkpoint,
)


def make_state(it=3):
    rng = np.random.default_rng(0)
    return CheckpointState(
        iteration=it,
        centroids=rng.normal(size=(4, 3)),
        prev_centroids=rng.normal(size=(4, 3)),
        assignment=rng.integers(0, 4, 100).astype(np.int32),
        ub=rng.random(100),
        sums=rng.normal(size=(4, 3)),
        counts=rng.integers(1, 50, 4).astype(np.int64),
        n_changed=17,
        params={"n": 100, "d": 3, "k": 4, "pruning": "mti"},
    )


class TestCheckpointFiles:
    def test_roundtrip(self, tmp_path):
        state = make_state()
        save_checkpoint(tmp_path, state)
        assert has_checkpoint(tmp_path)
        back = load_checkpoint(tmp_path)
        assert back.iteration == 3
        assert back.n_changed == 17
        np.testing.assert_array_equal(back.centroids, state.centroids)
        np.testing.assert_array_equal(back.assignment, state.assignment)
        np.testing.assert_array_equal(back.ub, state.ub)
        assert back.params["pruning"] == "mti"

    def test_unpruned_state_has_no_bounds(self, tmp_path):
        state = make_state()
        state.ub = None
        state.sums = None
        state.counts = None
        save_checkpoint(tmp_path, state)
        back = load_checkpoint(tmp_path)
        assert back.ub is None and back.sums is None

    def test_overwrite_keeps_latest(self, tmp_path):
        save_checkpoint(tmp_path, make_state(it=3))
        save_checkpoint(tmp_path, make_state(it=7))
        assert load_checkpoint(tmp_path).iteration == 7

    def test_missing_raises(self, tmp_path):
        assert not has_checkpoint(tmp_path)
        with pytest.raises(IoSubsystemError):
            load_checkpoint(tmp_path)

    def test_corrupt_manifest_raises(self, tmp_path):
        save_checkpoint(tmp_path, make_state())
        (tmp_path / "checkpoint.json").write_text("{not json")
        with pytest.raises(IoSubsystemError):
            load_checkpoint(tmp_path)

    def test_wrong_version_raises(self, tmp_path):
        save_checkpoint(tmp_path, make_state())
        m = json.loads((tmp_path / "checkpoint.json").read_text())
        m["format_version"] = 99
        (tmp_path / "checkpoint.json").write_text(json.dumps(m))
        with pytest.raises(IoSubsystemError):
            load_checkpoint(tmp_path)

    def test_no_tmp_files_left(self, tmp_path):
        save_checkpoint(tmp_path, make_state())
        assert not list(tmp_path.glob("*.tmp"))


class TestKnorsRecovery:
    @pytest.mark.parametrize("pruning", ["mti", None])
    def test_crash_and_resume_matches_uninterrupted(
        self, matrix_path, overlapping, tmp_path, pruning
    ):
        """Kill the run at iteration 4, resume, and land on the exact
        same final clustering as an uninterrupted run."""
        c0 = init_centroids(overlapping, 6, "random", seed=3)
        ckpt = tmp_path / "ckpt"
        full = knors(matrix_path, 6, init=c0, pruning=pruning)

        # "Crash": cap at 4 iterations, checkpointing every 2.
        knors(
            matrix_path, 6, init=c0, pruning=pruning,
            checkpoint_dir=ckpt, checkpoint_interval=2,
            criteria=ConvergenceCriteria(max_iters=4),
        )
        assert has_checkpoint(ckpt)
        assert load_checkpoint(ckpt).iteration == 4

        resumed = knors(
            matrix_path, 6, init=c0, pruning=pruning,
            checkpoint_dir=ckpt, checkpoint_interval=2, resume=True,
        )
        np.testing.assert_array_equal(
            resumed.assignment, full.assignment
        )
        np.testing.assert_allclose(
            resumed.centroids, full.centroids, atol=1e-9
        )
        # The resumed run only performed the remaining iterations.
        assert resumed.iterations == full.iterations - 4

    def test_resume_without_checkpoint_starts_fresh(
        self, matrix_path, overlapping, tmp_path
    ):
        c0 = init_centroids(overlapping, 4, "random", seed=1)
        res = knors(
            matrix_path, 4, init=c0,
            checkpoint_dir=tmp_path / "empty", resume=True,
            criteria=ConvergenceCriteria(max_iters=5),
        )
        assert res.iterations == 5 or res.converged

    def test_checkpoint_written_at_interval(
        self, matrix_path, overlapping, tmp_path
    ):
        c0 = init_centroids(overlapping, 4, "random", seed=1)
        ckpt = tmp_path / "c"
        knors(
            matrix_path, 4, init=c0, checkpoint_dir=ckpt,
            checkpoint_interval=3,
            criteria=ConvergenceCriteria(max_iters=7),
        )
        state = load_checkpoint(ckpt)
        assert state.iteration in (3, 6)
