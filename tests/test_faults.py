"""Unit tests for the deterministic fault-injection layer.

Covers the :mod:`repro.faults` vocabulary (specs, policies, plans,
schedules), the CLI spec parsers, the SAFS retry path, and the
dropped-allreduce charging -- everything below the crash-matrix
integration tests.
"""

import numpy as np
import pytest

from repro.errors import ConfigError, RetryExhaustedError
from repro.faults import (
    DEFAULT_RETRY_POLICY,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    faulty_collective_ns,
    parse_fault_spec,
    parse_retry_policy,
)
from repro.runtime import RecordingObserver
from repro.sem import Safs
from repro.simhw.ssd import OCZ_INTREPID_ARRAY


class TestFaultSpec:
    def test_defaults_disabled(self):
        assert not FaultSpec().any_enabled

    def test_any_enabled(self):
        assert FaultSpec(worker_crash_rate=0.1).any_enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ssd_error_rate": -0.1},
            {"worker_crash_rate": 1.5},
            {"ssd_error_rate": 0.7, "ssd_slow_rate": 0.7},
            {"ssd_slow_factor": 0.5},
            {"max_worker_crashes": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            FaultSpec(**kwargs)


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        p = RetryPolicy(backoff_ns=100.0, backoff_multiplier=3.0)
        assert p.backoff(1) == 100.0
        assert p.backoff(2) == 300.0
        assert p.backoff(3) == 900.0

    def test_backoff_zero_attempts_is_exactly_zero(self):
        # attempt=0 means "no retry happened": the charge must be an
        # exact 0.0, not backoff_ns / multiplier, so exhaustion
        # accounting is identical across sites that count from 0 or 1.
        assert RetryPolicy().backoff(0) == 0.0
        assert RetryPolicy(
            backoff_ns=100.0, backoff_multiplier=3.0
        ).backoff(0) == 0.0

    def test_backoff_negative_attempt_rejected(self):
        with pytest.raises(ConfigError):
            RetryPolicy().backoff(-1)

    def test_schedule_is_pinned(self):
        # The exhaustion schedule is part of the determinism contract:
        # every backend charges exactly these delays, in this order.
        assert DEFAULT_RETRY_POLICY.schedule() == (2e6, 4e6, 8e6)
        p = RetryPolicy(backoff_ns=100.0, backoff_multiplier=3.0)
        assert p.schedule() == (100.0, 300.0, 900.0)
        assert p.schedule(1) == (100.0,)
        assert sum(p.schedule()) == 1300.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": 0},
            {"backoff_ns": -1.0},
            {"backoff_multiplier": 0.5},
            {"node_failure_mode": "panic"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)


class TestFaultEvent:
    def test_bad_site(self):
        with pytest.raises(ConfigError):
            FaultEvent(site="gpu", iteration=0, kind="crash")

    @pytest.mark.parametrize(
        "site,kind",
        [
            ("worker", "fail"),      # worker only knows 'crash'
            ("node", "failure"),     # node only knows 'fail'
            ("checkpoint", "crash"),  # must be a named crash point
            ("ssd", "drop"),
        ],
    )
    def test_bad_kind(self, site, kind):
        with pytest.raises(ConfigError):
            FaultEvent(site=site, iteration=0, kind=kind)

    def test_bad_times(self):
        with pytest.raises(ConfigError):
            FaultEvent(site="worker", iteration=0, kind="crash", times=0)


class TestFaultPlanDeterminism:
    def _trace(self, seed):
        plan = FaultPlan(
            FaultSpec(
                ssd_error_rate=0.2,
                ssd_slow_rate=0.2,
                worker_crash_rate=0.2,
                msg_drop_rate=0.2,
                node_failure_rate=0.2,
            ),
            seed=seed,
        )
        out = []
        for it in range(30):
            out.append(plan.ssd_fault(it))
            out.append(plan.worker_crash(it))
            out.append(plan.drop_message(it))
            out.append(plan.node_failure(it, [0, 1, 2, 3]))
        return out

    def test_same_seed_same_trace(self):
        assert self._trace(17) == self._trace(17)

    def test_different_seed_different_trace(self):
        assert self._trace(17) != self._trace(18)

    def test_sites_are_independent_streams(self):
        """Draining one site's stream must not shift another's."""
        a = FaultPlan(FaultSpec(worker_crash_rate=0.3), seed=5)
        b = FaultPlan(
            FaultSpec(worker_crash_rate=0.3, ssd_error_rate=0.3), seed=5
        )
        for it in range(50):
            b.ssd_fault(it)  # extra draws on the ssd stream only
        crashes_a = [a.worker_crash(it) for it in range(20)]
        crashes_b = [b.worker_crash(it) for it in range(20)]
        assert crashes_a == crashes_b

    def test_caps_bound_recoverable_faults(self):
        plan = FaultPlan(
            FaultSpec(worker_crash_rate=1.0, max_worker_crashes=2), seed=0
        )
        fired = sum(plan.worker_crash(it) for it in range(10))
        assert fired == 2

    def test_msg_drop_cap(self):
        plan = FaultPlan(
            FaultSpec(msg_drop_rate=1.0, max_msg_drops=3), seed=0
        )
        fired = sum(plan.drop_message(it) for it in range(10))
        assert fired == 3


class TestFaultSchedule:
    def test_scheduled_event_is_one_shot(self):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="worker", iteration=2, kind="crash")]
        )
        assert not plan.worker_crash(1)
        assert plan.worker_crash(2)
        # Replaying iteration 2 after recovery must not re-crash.
        assert not plan.worker_crash(2)

    def test_times_repeats_event(self):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="ssd", iteration=0, kind="read_error",
                        times=2)]
        )
        assert plan.ssd_fault(0) == "read_error"
        assert plan.ssd_retry_fails(0)  # second firing fails the retry
        assert not plan.ssd_retry_fails(0)

    def test_node_event_targets_machine(self):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="node", iteration=1, kind="fail", machine=2)]
        )
        assert plan.node_failure(0, [0, 1, 2]) is None
        assert plan.node_failure(1, [0, 1, 2]) == 2

    def test_checkpoint_crash_is_schedule_only(self):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="checkpoint", iteration=4,
                        kind="arrays-written")]
        )
        assert plan.checkpoint_crash(3) is None
        assert plan.checkpoint_crash(4) == "arrays-written"
        assert plan.checkpoint_crash(4) is None

    def test_plans_do_not_share_schedule_state(self):
        events = [FaultEvent(site="worker", iteration=0, kind="crash")]
        a = FaultPlan.from_schedule(events)
        b = FaultPlan.from_schedule(events)
        assert a.worker_crash(0)
        assert b.worker_crash(0)  # a's consumption must not drain b


class TestSpecParsing:
    def test_parse_fault_spec(self):
        spec = parse_fault_spec(
            "ssd_error=0.1, worker_crash=0.05, max_worker_crashes=5,"
            "node_fail=0.02, msg_drop=0.3, max_msg_drops=2"
        )
        assert spec.ssd_error_rate == 0.1
        assert spec.worker_crash_rate == 0.05
        assert spec.max_worker_crashes == 5
        assert spec.node_failure_rate == 0.02
        assert spec.msg_drop_rate == 0.3
        assert spec.max_msg_drops == 2

    def test_parse_fault_spec_rejects_unknown_key(self):
        with pytest.raises(ConfigError):
            parse_fault_spec("cosmic_ray=0.1")

    def test_parse_fault_spec_rejects_malformed(self):
        with pytest.raises(ConfigError):
            parse_fault_spec("ssd_error")

    def test_parse_retry_policy(self):
        p = parse_retry_policy(
            "retries=5,backoff_ms=4,multiplier=1.5,timeout_ms=20,"
            "node_failure=abort"
        )
        assert p.max_retries == 5
        assert p.backoff_ns == 4e6
        assert p.backoff_multiplier == 1.5
        assert p.timeout_ns == 20e6
        assert p.node_failure_mode == "abort"

    def test_parse_retry_policy_rejects_unknown_key(self):
        with pytest.raises(ConfigError):
            parse_retry_policy("patience=high")


class TestSafsRetries:
    ROWS = np.arange(64)
    ROW_BYTES = 256

    def _fetch(self, faults=None, policy=None, observer=None):
        safs = Safs(
            OCZ_INTREPID_ARRAY, page_cache_bytes=0,
            faults=faults, retry_policy=policy,
        )
        return safs.fetch_rows(
            self.ROWS, self.ROW_BYTES, iteration=0, observer=observer
        )

    def test_read_error_charges_backoff_and_reread(self):
        clean = self._fetch()
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="ssd", iteration=0, kind="read_error")]
        )
        rec = RecordingObserver()
        faulty = self._fetch(faults=plan, observer=rec)
        assert faulty.io_retries == 1
        expected_delay = (
            DEFAULT_RETRY_POLICY.backoff(1) + clean.service_ns
        )
        assert faulty.fault_delay_ns == pytest.approx(expected_delay)
        assert faulty.service_ns == pytest.approx(
            clean.service_ns + expected_delay
        )
        names = [e.name for e in rec.fault_events()]
        assert names == ["fault", "retry", "recovery"]

    def test_slow_page_multiplies_service_time(self):
        clean = self._fetch()
        plan = FaultPlan(FaultSpec(ssd_slow_rate=1.0, ssd_slow_factor=3.0))
        faulty = self._fetch(faults=plan)
        assert faulty.io_retries == 0
        assert faulty.service_ns == pytest.approx(3.0 * clean.service_ns)

    def test_retry_budget_exhaustion_raises(self):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="ssd", iteration=0, kind="read_error",
                        times=4)]
        )
        with pytest.raises(RetryExhaustedError):
            self._fetch(faults=plan, policy=RetryPolicy(max_retries=2))

    def test_no_faults_no_overhead(self):
        clean = self._fetch()
        planned = self._fetch(faults=FaultPlan(FaultSpec(), seed=0))
        assert planned.service_ns == clean.service_ns
        assert planned.io_retries == 0


class TestFaultyCollective:
    def test_no_plan_passthrough(self):
        obs = RecordingObserver()
        assert faulty_collective_ns(
            None, DEFAULT_RETRY_POLICY, 0, 123.0, obs
        ) == 123.0
        assert obs.fault_events() == []

    def test_drop_charges_timeout_plus_retransmit(self):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="net", iteration=0, kind="drop")]
        )
        policy = RetryPolicy(timeout_ns=1000.0)
        obs = RecordingObserver()
        total = faulty_collective_ns(plan, policy, 0, 500.0, obs)
        assert total == pytest.approx(500.0 + 1000.0 + 500.0)
        assert [e.name for e in obs.fault_events()] == [
            "fault", "retry", "recovery"
        ]

    def test_drop_budget_exhaustion_raises(self):
        plan = FaultPlan.from_schedule(
            [FaultEvent(site="net", iteration=0, kind="drop", times=5)]
        )
        with pytest.raises(RetryExhaustedError):
            faulty_collective_ns(
                plan, RetryPolicy(max_retries=2), 0, 500.0,
                RecordingObserver(),
            )
