"""Resilience layer: integrity primitives, straggler detection, and
the end-to-end corruption / degraded-mode guarantees.

The contract under test is the tentpole's: injected corruption is
*always detected* (CRC32 catches every single-byte flip), repaired
runs are bit-identical to fault-free ones, unrecoverable corruption
aborts with a typed error, stragglers are flagged and work moves to
healthy workers -- and a fault plan with nothing to inject adds zero
simulated-time drift.
"""

import numpy as np
import pytest

from repro import knord, knori, knors
from repro.core import init_centroids
from repro.data import write_matrix
from repro.errors import ConfigError, CorruptionError
from repro.faults import FaultEvent, FaultPlan, FaultSpec
from repro.metrics import ResilienceObserver
from repro.resilience import (
    PageIntegrity,
    StragglerDetector,
    array_crc32,
    crc32_bytes,
    flip_byte,
)
from repro.resilience.integrity import page_token, row_token
from repro.runtime import RecordingObserver
from repro.sem.checkpoint import (
    CheckpointState,
    corrupt_checkpoint,
    discard_checkpoint,
    has_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.simhw import AsyncIoTimeline


# ---------------------------------------------------------------------------
# Shared workload


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(11)
    centers = rng.normal(scale=2.5, size=(6, 5))
    x = np.vstack(
        [rng.normal(loc=c, scale=1.6, size=(150, 5)) for c in centers]
    )
    rng.shuffle(x)
    return x


@pytest.fixture(scope="module")
def dataset_path(dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("resilience") / "matrix.knor"
    return str(write_matrix(path, dataset))


@pytest.fixture(scope="module")
def centroids0(dataset):
    return init_centroids(dataset, 6, "random", seed=3)


SEM_KW = dict(row_cache_bytes=1 << 20, page_cache_bytes=1 << 20)


def run_pair(run_fn, plan):
    """Run fault-free and faulted; return (base, faulted, rec, res)."""
    base = run_fn(None, ())
    rec, res = RecordingObserver(), ResilienceObserver()
    faulted = run_fn(plan, (rec, res))
    return base, faulted, rec, res


def assert_identical(base, faulted):
    assert np.array_equal(faulted.assignment, base.assignment)
    assert np.array_equal(faulted.centroids, base.centroids)
    assert faulted.iterations == base.iterations
    assert faulted.inertia == base.inertia


# ---------------------------------------------------------------------------
# CRC primitives


class TestCrcPrimitives:
    def test_crc_is_deterministic(self):
        blob = b"knor pages never lie"
        assert crc32_bytes(blob) == crc32_bytes(blob)

    def test_every_single_byte_flip_is_detected(self):
        blob = bytes(range(64))
        want = crc32_bytes(blob)
        for off in range(64):
            assert crc32_bytes(flip_byte(blob, off)) != want

    def test_flip_byte_changes_exactly_one_byte(self):
        blob = bytes(range(16))
        flipped = flip_byte(blob, 5)
        diff = [i for i in range(16) if blob[i] != flipped[i]]
        assert diff == [5]
        assert flipped[5] == blob[5] ^ 0xFF

    def test_flip_byte_wraps_offset(self):
        blob = bytes(8)
        assert flip_byte(blob, 13) == flip_byte(blob, 5)

    def test_array_crc_tracks_contents(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        b = a.copy()
        assert array_crc32(a) == array_crc32(b)
        b[1, 2] += 1e-9
        assert array_crc32(a) != array_crc32(b)

    def test_array_crc_ignores_layout(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert array_crc32(a) == array_crc32(
            np.asfortranarray(a)
        )

    def test_tokens_are_distinct(self):
        toks = {page_token(p) for p in range(256)}
        toks |= {row_token(r) for r in range(256)}
        assert len(toks) == 512


class TestPageIntegrity:
    def test_clean_batch_verifies(self):
        pi = PageIntegrity()
        assert pi.verify_pages(np.arange(10)) is True
        assert pi.pages_verified == 10
        assert pi.corruptions_detected == 0

    def test_corrupt_page_always_detected(self):
        pi = PageIntegrity()
        pages = np.arange(20)
        for victim in pages.tolist():
            assert pi.verify_pages(pages, corrupt_page=victim) is False
        assert pi.corruptions_detected == 20

    def test_corrupt_row_always_detected(self):
        pi = PageIntegrity()
        assert pi.verify_row(7, corrupted=False) is True
        assert pi.verify_row(7, corrupted=True) is False
        assert pi.rows_verified == 2
        assert pi.corruptions_detected == 1


# ---------------------------------------------------------------------------
# Straggler detector (pure unit)


class TestStragglerDetector:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_workers": 0},
            {"n_workers": 4, "alpha": 0.0},
            {"n_workers": 4, "alpha": 1.5},
            {"n_workers": 4, "threshold": 1.0},
            {"n_workers": 4, "warmup": -1},
            {"n_workers": 4, "mode": "psychic"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            StragglerDetector(**kwargs)

    def test_uniform_times_never_flag(self):
        det = StragglerDetector(4)
        for _ in range(10):
            assert det.observe([100.0, 100.0, 100.0, 100.0]) == []
        assert det.flagged == set()

    def test_flags_persistently_slow_worker(self):
        det = StragglerDetector(4)
        flagged_at = None
        for rnd in range(8):
            fresh = det.observe([100.0, 100.0, 420.0, 100.0])
            if fresh:
                flagged_at = rnd
                assert fresh == [2]
                break
        assert flagged_at is not None
        assert det.flagged == {2}

    def test_warmup_suppresses_flags(self):
        det = StragglerDetector(3, warmup=5)
        for _ in range(5):
            assert det.observe([1.0, 1.0, 50.0]) == []
        assert det.observe([1.0, 1.0, 50.0]) == [2]

    def test_flagged_stay_flagged(self):
        det = StragglerDetector(3, warmup=0)
        while not det.flagged:
            det.observe([1.0, 1.0, 50.0])
        # Back to healthy speed: no *fresh* flag, set unchanged.
        for _ in range(5):
            assert det.observe([1.0, 1.0, 1.0]) == []
        assert det.flagged == {2}

    def test_needs_two_healthy_workers(self):
        det = StragglerDetector(2, warmup=0)
        det.flagged.add(0)
        assert det.observe([1.0, 99.0]) == []

    def test_zero_sample_is_no_observation(self):
        det = StragglerDetector(3, warmup=0, mode="self")
        det.observe([10.0, 10.0, 10.0])
        # Worker 2 idles for a while: its EWMA must not decay toward
        # zero and later misread a normal round as a 2x jump.
        for _ in range(6):
            det.observe([10.0, 10.0, 0.0])
        assert det.ewma[2] == 10.0
        assert det.observe([10.0, 10.0, 10.0]) == []

    def test_self_mode_ignores_cluster_skew(self):
        # Worker 2 is legitimately 10x slower (remote NUMA bank):
        # self-relative detection must not flag steady-state skew...
        det = StragglerDetector(3, mode="self")
        for _ in range(6):
            assert det.observe([10.0, 10.0, 100.0]) == []
        # ...but must flag the same worker drifting above its own
        # demonstrated speed.
        for _ in range(8):
            if det.observe([10.0, 10.0, 400.0]):
                break
        assert det.flagged == {2}

    def test_cluster_mode_flags_relative_to_median(self):
        det = StragglerDetector(4, mode="cluster")
        for _ in range(4):
            det.observe([100.0, 100.0, 100.0, 300.0])
        assert det.flagged == {3}

    def test_reset_forgets_history(self):
        det = StragglerDetector(3, warmup=0)
        while not det.flagged:
            det.observe([1.0, 1.0, 50.0])
        det.reset()
        assert det.flagged == set()
        assert det.rounds == 0
        assert np.all(det.ewma == 0.0)
        assert np.all(np.isinf(det.best))


# ---------------------------------------------------------------------------
# Async I/O ledger reset (crash recovery restarts the pipeline cold)


class TestAsyncIoTimelineReset:
    def test_reset_clears_banked_credit(self):
        tl = AsyncIoTimeline()
        tl.credit_ns = 5000.0
        hidden = tl.plan(3000.0, prefetchable=True)
        assert hidden.hidden_ns == 3000.0
        tl.reset()
        assert tl.credit_ns == 0.0
        cold = tl.plan(3000.0, prefetchable=True)
        assert cold.hidden_ns == 0.0
        assert cold.blocked_ns == 3000.0


# ---------------------------------------------------------------------------
# Corruption recall matrix: every site, always detected, bit-identical


@pytest.mark.faults
class TestCorruptionRecall:
    def test_ssd_page_corruption(self, dataset_path, centroids0):
        def run(plan, obs):
            return knors(
                dataset_path, 6, init=centroids0, seed=3,
                faults=plan, observers=obs, **SEM_KW,
            )

        plan = FaultPlan(FaultSpec(corruption_page_rate=0.3), seed=5)
        base, faulted, rec, res = run_pair(run, plan)
        assert_identical(base, faulted)
        assert res.counters.corruptions_injected >= 1
        assert res.counters.detection_recall == 1.0
        assert res.counters.detected_by_where["ssd-page"] >= 1
        assert res.counters.quarantines >= 1
        assert faulted.sim_seconds > base.sim_seconds

    def test_dram_cache_corruption(self, dataset_path, centroids0):
        def run(plan, obs):
            return knors(
                dataset_path, 6, init=centroids0, seed=3,
                faults=plan, observers=obs, **SEM_KW,
            )

        plan = FaultPlan(FaultSpec(corruption_cache_rate=0.5), seed=7)
        base, faulted, rec, res = run_pair(run, plan)
        assert_identical(base, faulted)
        assert res.counters.corruptions_injected >= 1
        assert res.counters.detection_recall == 1.0
        assert res.counters.detected_by_where["cache-line"] >= 1
        # The repair re-read is charged as ordinary I/O; under async
        # overlap it may hide entirely, so time is only monotone.
        assert faulted.sim_seconds >= base.sim_seconds

    def test_allreduce_payload_corruption(self, dataset, centroids0):
        def run(plan, obs):
            return knord(
                dataset, 6, init=centroids0, seed=3, n_machines=4,
                faults=plan, observers=obs,
            )

        plan = FaultPlan(FaultSpec(corruption_msg_rate=0.3), seed=9)
        base, faulted, rec, res = run_pair(run, plan)
        assert_identical(base, faulted)
        assert res.counters.corruptions_injected >= 1
        assert res.counters.detection_recall == 1.0
        assert faulted.sim_seconds > base.sim_seconds

    def test_checkpoint_corruption_quarantined(
        self, dataset_path, centroids0, tmp_path
    ):
        def run(plan, obs):
            ck = tmp_path / ("faulted" if plan else "clean")
            return knors(
                dataset_path, 6, init=centroids0, seed=3,
                checkpoint_dir=str(ck), checkpoint_interval=2,
                faults=plan, observers=obs,
            )

        # Corrupt the iteration-3 checkpoint, then crash at 4: the
        # recovery load must CRC-fail, quarantine the checkpoint, and
        # fall back to a from-scratch replay -- same numbers.
        plan = FaultPlan(FaultSpec(), schedule=[
            FaultEvent(site="corruption", iteration=3, kind="checkpoint"),
            FaultEvent(site="worker", iteration=4, kind="crash"),
        ])
        base, faulted, rec, res = run_pair(run, plan)
        assert_identical(base, faulted)
        assert res.counters.detection_recall == 1.0
        assert res.counters.detected_by_where["checkpoint"] >= 1
        quarantines = [
            e for e in rec.fault_events() if e.name == "quarantine"
        ]
        assert any(
            e.payload["where"] == "checkpoint" for e in quarantines
        )

    def test_counters_are_deterministic(self, dataset_path, centroids0):
        def one():
            plan = FaultPlan(
                FaultSpec(
                    corruption_page_rate=0.3,
                    corruption_cache_rate=0.3,
                ),
                seed=21,
            )
            rec, res = RecordingObserver(), ResilienceObserver()
            knors(
                dataset_path, 6, init=centroids0, seed=3,
                faults=plan, observers=(rec, res), **SEM_KW,
            )
            trace = [
                (e.name, e.iteration) for e in rec.fault_events()
            ]
            return res.counters, trace

        c1, t1 = one()
        c2, t2 = one()
        assert t1 == t2
        assert c1.corruptions_injected == c2.corruptions_injected
        assert c1.corruptions_detected == c2.corruptions_detected
        assert c1.quarantines == c2.quarantines
        assert dict(c1.detected_by_where) == dict(c2.detected_by_where)


@pytest.mark.faults
class TestUnrecoverableCorruption:
    def test_page_repair_exhaustion_aborts(
        self, dataset_path, centroids0
    ):
        plan = FaultPlan(
            FaultSpec(
                corruption_page_rate=0.5,
                corruption_repair_fail_rate=1.0,
            ),
            seed=5,
        )
        with pytest.raises(CorruptionError):
            knors(
                dataset_path, 6, init=centroids0, seed=3,
                faults=plan, **SEM_KW,
            )

    def test_message_retransmit_exhaustion_aborts(
        self, dataset, centroids0
    ):
        plan = FaultPlan(
            FaultSpec(
                corruption_msg_rate=0.5,
                corruption_repair_fail_rate=1.0,
            ),
            seed=9,
        )
        with pytest.raises(CorruptionError):
            knord(
                dataset, 6, init=centroids0, seed=3, n_machines=4,
                faults=plan,
            )


# ---------------------------------------------------------------------------
# Degraded mode end to end


@pytest.mark.faults
class TestStragglerEndToEnd:
    def test_knori_thread_straggler(self, dataset, centroids0):
        def run(plan, obs):
            return knori(
                dataset, 6, init=centroids0, seed=3,
                faults=plan, observers=obs,
            )

        plan = FaultPlan(FaultSpec(), schedule=[
            FaultEvent(
                site="straggler", iteration=1, kind="slow", machine=2
            ),
        ])
        base, faulted, rec, res = run_pair(run, plan)
        assert_identical(base, faulted)
        assert faulted.sim_seconds > base.sim_seconds
        assert res.counters.stragglers_detected == 1
        assert res.counters.rebalances >= 1
        flags = [
            e for e in rec.fault_events() if e.name == "straggler"
        ]
        assert [e.payload["worker"] for e in flags] == [2]
        assert all(e.payload["scope"] == "thread" for e in flags)

    def test_knord_machine_straggler_resharded(
        self, dataset, centroids0
    ):
        def run(plan, obs):
            return knord(
                dataset, 6, init=centroids0, seed=3, n_machines=4,
                faults=plan, observers=obs,
            )

        plan = FaultPlan(
            FaultSpec(straggler_factor=8.0),
            schedule=[
                FaultEvent(
                    site="straggler", iteration=1, kind="slow",
                    machine=1,
                ),
            ],
        )
        base, faulted, rec, res = run_pair(run, plan)
        assert_identical(base, faulted)
        assert faulted.sim_seconds > base.sim_seconds
        assert res.counters.stragglers_detected == 1
        assert res.counters.rebalances == 1
        reb = [
            e for e in rec.fault_events() if e.name == "rebalance"
        ][0]
        assert reb.payload["scope"] == "machine"
        moves = reb.payload["detail"]["moves"]
        # Shard 1 moved off the slow machine 1, onto a healthy one.
        assert [(s, src) for s, src, _ in moves] == [(1, 1)]
        assert all(dst != 1 for _, _, dst in moves)

    def test_detection_is_passive(self, dataset, centroids0):
        # A plan with the straggler site armed but never firing must
        # not perturb time or results (the detector only watches).
        base = knori(dataset, 6, init=centroids0, seed=3)
        plan = FaultPlan(FaultSpec(straggler_rate=1e-12), seed=3)
        rec = RecordingObserver()
        watched = knori(
            dataset, 6, init=centroids0, seed=3,
            faults=plan, observers=(rec,),
        )
        assert_identical(base, watched)
        assert watched.sim_seconds == base.sim_seconds
        assert rec.fault_events() == []


# ---------------------------------------------------------------------------
# Zero-drift guard: an armed-but-empty plan changes nothing


@pytest.mark.faults
class TestFaultFreeEquivalence:
    def test_knori_zero_rate_plan_is_bit_identical(
        self, dataset, centroids0
    ):
        base = knori(dataset, 6, init=centroids0, seed=3)
        rec = RecordingObserver()
        armed = knori(
            dataset, 6, init=centroids0, seed=3,
            faults=FaultPlan(FaultSpec(), seed=0), observers=(rec,),
        )
        assert_identical(base, armed)
        assert [r.sim_ns for r in armed.records] == [
            r.sim_ns for r in base.records
        ]
        assert rec.fault_events() == []

    def test_knors_zero_rate_plan_is_bit_identical(
        self, dataset_path, centroids0
    ):
        base = knors(
            dataset_path, 6, init=centroids0, seed=3, **SEM_KW
        )
        rec = RecordingObserver()
        armed = knors(
            dataset_path, 6, init=centroids0, seed=3,
            faults=FaultPlan(FaultSpec(), seed=0), observers=(rec,),
            **SEM_KW,
        )
        assert_identical(base, armed)
        assert [r.sim_ns for r in armed.records] == [
            r.sim_ns for r in base.records
        ]
        assert rec.fault_events() == []

    def test_knord_zero_rate_plan_is_bit_identical(
        self, dataset, centroids0
    ):
        base = knord(dataset, 6, init=centroids0, seed=3, n_machines=4)
        rec = RecordingObserver()
        armed = knord(
            dataset, 6, init=centroids0, seed=3, n_machines=4,
            faults=FaultPlan(FaultSpec(), seed=0), observers=(rec,),
        )
        assert_identical(base, armed)
        assert [r.sim_ns for r in armed.records] == [
            r.sim_ns for r in base.records
        ]
        assert rec.fault_events() == []


# ---------------------------------------------------------------------------
# Checkpoint format v3: file + per-array CRCs


class TestCheckpointV3:
    def _state(self):
        rng = np.random.default_rng(0)
        return CheckpointState(
            iteration=4,
            centroids=rng.normal(size=(3, 2)),
            prev_centroids=rng.normal(size=(3, 2)),
            assignment=rng.integers(0, 3, size=20),
            ub=None,
            sums=None,
            counts=None,
            n_changed=5,
            params={"n": 20, "d": 2, "k": 3, "pruning": None},
        )

    def test_roundtrip_carries_crcs(self, tmp_path):
        save_checkpoint(tmp_path, self._state())
        loaded = load_checkpoint(tmp_path)
        assert loaded.iteration == 4
        import json

        manifest = json.loads(
            (tmp_path / "checkpoint.json").read_text()
        )
        assert manifest["format_version"] == 3
        assert isinstance(manifest["file_crc32"], int)
        assert set(manifest["array_crc32"]) >= {
            "centroids", "prev_centroids", "assignment",
        }

    def test_corrupt_checkpoint_fails_crc_on_load(self, tmp_path):
        save_checkpoint(tmp_path, self._state())
        offset = corrupt_checkpoint(tmp_path)
        assert offset >= 0
        with pytest.raises(CorruptionError):
            load_checkpoint(tmp_path)

    def test_discard_checkpoint_removes_state(self, tmp_path):
        save_checkpoint(tmp_path, self._state())
        assert has_checkpoint(tmp_path)
        removed = discard_checkpoint(tmp_path)
        assert removed >= 2
        assert not has_checkpoint(tmp_path)
