"""Extensions: spherical k-means, semi-supervised k-means++, Yinyang."""

import numpy as np
import pytest

from repro import ConvergenceCriteria, lloyd
from repro.core import init_centroids
from repro.core.distance import euclidean
from repro.errors import ConvergenceError, DatasetError
from repro.extensions import (
    semisupervised_kmeanspp,
    spherical_kmeans,
    yinyang_init,
    yinyang_iteration,
    yinyang_kmeans,
)


@pytest.fixture(scope="module")
def directions():
    """Three tight direction bundles on the unit sphere."""
    rng = np.random.default_rng(3)
    axes = np.array(
        [[1.0, 0, 0, 0], [0, 1.0, 0, 0], [0, 0, 1.0, 0]]
    )
    x = np.vstack(
        [a + rng.normal(scale=0.05, size=(200, 4)) for a in axes]
    )
    # Random magnitudes: spherical k-means must ignore them.
    x *= rng.uniform(0.5, 20.0, size=(600, 1))
    rng.shuffle(x)
    return x


class TestSpherical:
    def test_recovers_direction_bundles(self, directions):
        res = spherical_kmeans(directions, 3, seed=0)
        assert res.converged
        assert sorted(res.cluster_sizes.tolist()) == [200, 200, 200]

    def test_centroids_unit_norm(self, directions):
        res = spherical_kmeans(directions, 3, seed=0)
        norms = np.linalg.norm(res.centroids, axis=1)
        np.testing.assert_allclose(norms, 1.0, atol=1e-9)

    def test_scale_invariance(self, directions):
        a = spherical_kmeans(directions, 3, seed=1)
        b = spherical_kmeans(directions * 100.0, 3, seed=1)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_objective_decreases(self, directions):
        res = spherical_kmeans(directions, 5, seed=2)
        # inertia = -total cosine similarity; per-iteration similarity
        # is non-decreasing, so final inertia <= -n * min_similarity.
        assert res.inertia < 0

    def test_zero_vector_rejected(self):
        x = np.vstack([np.ones((5, 3)), np.zeros((1, 3))])
        with pytest.raises(DatasetError):
            spherical_kmeans(x, 2)

    def test_k_validation(self, directions):
        with pytest.raises(ConvergenceError):
            spherical_kmeans(directions, 0)


class TestSemiSupervised:
    def test_labels_anchor_points(self, blobs):
        n = blobs.shape[0]
        labels = np.full(n, -1)
        # Label 20 points per true blob (rows are shuffled; use
        # proximity to blob means to assign true classes).
        means = np.array(
            [[0.0, 0, 0], [10.0, 0, 0], [0, 10.0, 0], [10, 10, 10.0]]
        )
        true = np.argmin(euclidean(blobs, means), axis=1)
        for c in range(4):
            idx = np.nonzero(true == c)[0][:20]
            labels[idx] = c
        res = semisupervised_kmeanspp(blobs, 4, labels, seed=0)
        assert res.converged
        # Anchored points keep their labels.
        anchored = labels >= 0
        np.testing.assert_array_equal(
            res.assignment[anchored], labels[anchored]
        )
        # With anchors, cluster c recovers blob c (label-aligned).
        agreement = (res.assignment == true).mean()
        assert agreement > 0.95

    def test_partial_seeding_fills_rest(self, blobs):
        labels = np.full(blobs.shape[0], -1)
        labels[0] = 0  # single labeled point, clusters 1..3 unseeded
        res = semisupervised_kmeanspp(blobs, 4, labels, seed=1)
        assert res.params["n_labeled"] == 1
        assert len(np.unique(res.assignment)) == 4

    def test_requires_some_labels(self, blobs):
        with pytest.raises(ConvergenceError):
            semisupervised_kmeanspp(
                blobs, 4, np.full(blobs.shape[0], -1)
            )

    def test_label_validation(self, blobs):
        bad = np.full(blobs.shape[0], -1)
        bad[0] = 7
        with pytest.raises(DatasetError):
            semisupervised_kmeanspp(blobs, 4, bad)
        with pytest.raises(DatasetError):
            semisupervised_kmeanspp(blobs, 4, np.zeros(3))


class TestYinyang:
    @pytest.mark.parametrize("k,t", [(5, 1), (10, 2), (20, None)])
    def test_matches_lloyd_exactly(self, overlapping, k, t):
        c0 = init_centroids(overlapping, k, "random", seed=2)
        ref = lloyd(
            overlapping, k, init=c0,
            criteria=ConvergenceCriteria(max_iters=100),
        )
        res = yinyang_kmeans(overlapping, k, t=t, init=c0)
        np.testing.assert_array_equal(res.assignment, ref.assignment)
        np.testing.assert_allclose(
            res.centroids, ref.centroids, atol=1e-8
        )
        assert res.iterations == ref.iterations

    def test_prunes_computation(self, overlapping):
        c0 = init_centroids(overlapping, 20, "random", seed=1)
        ref = lloyd(overlapping, 20, init=c0)
        res = yinyang_kmeans(overlapping, 20, init=c0)
        full = ref.iterations * overlapping.shape[0] * 20
        assert res.total_dist_computations < 0.6 * full

    def test_memory_is_nt(self, overlapping):
        res = yinyang_kmeans(overlapping, 20, t=2, seed=0)
        n = overlapping.shape[0]
        assert res.memory_breakdown["yinyang_bounds"] == n * 2 * 8 + n * 8

    def test_lb_are_lower_bounds(self, overlapping):
        c0 = init_centroids(overlapping, 10, "random", seed=3)
        state, res = yinyang_init(overlapping, c0, seed=3)
        prev, cur = c0, res.new_centroids
        for _ in range(6):
            r = yinyang_iteration(overlapping, cur, prev, state)
            dist = euclidean(overlapping, cur)
            for gi, members in enumerate(state.groups):
                other = dist[:, members].copy()
                own_in_group = (
                    state.group_of[state.assignment] == gi
                )
                # Exclude the assigned centroid's column where it
                # belongs to this group.
                for pos, c in enumerate(members):
                    mask = state.assignment == c
                    other[mask, pos] = np.inf
                gmin = other.min(axis=1)
                ok = state.lb[:, gi] <= gmin + 1e-9
                assert ok.all()
            prev, cur = cur, r.new_centroids
            if r.n_changed == 0:
                break

    def test_pruning_between_mti_and_elkan(self, overlapping):
        """The related-work ordering on Gaussian-mixture data:
        Elkan <= Yinyang <= MTI on computation, memory inverse."""
        from repro import knori

        k = 20
        c0 = init_centroids(overlapping, k, "random", seed=5)
        crit = ConvergenceCriteria(max_iters=100)
        mti = knori(overlapping, k, init=c0, criteria=crit)
        elkan = knori(
            overlapping, k, pruning="elkan", init=c0, criteria=crit
        )
        yy = yinyang_kmeans(overlapping, k, init=c0, criteria=crit)
        assert (
            elkan.total_dist_computations
            <= yy.total_dist_computations
        )
        assert (
            yy.total_dist_computations <= mti.total_dist_computations
        )

    def test_group_coupling_weakness_on_spectral_data(
        self, friendster_small
    ):
        """On outlier-heavy spectral embeddings a single fast-moving
        centroid poisons its whole group's bound (Yinyang decays per
        GROUP max motion), so MTI -- whose clause 1 compares against
        fresh centroid separations -- can out-prune it. An honest
        divergence from the 'Yinyang always wins' intuition, kept
        under test."""
        from repro import knori

        k = 20
        c0 = init_centroids(friendster_small, k, "random", seed=1)
        crit = ConvergenceCriteria(max_iters=40)
        mti = knori(friendster_small, k, init=c0, criteria=crit)
        yy = yinyang_kmeans(friendster_small, k, init=c0, criteria=crit)
        assert (
            mti.total_dist_computations < yy.total_dist_computations
        )
        # Both remain exact regardless.
        ref = lloyd(friendster_small, k, init=c0, criteria=crit)
        np.testing.assert_array_equal(yy.assignment, ref.assignment)

    def test_invalid_t(self, overlapping):
        c0 = init_centroids(overlapping, 5, "random", seed=0)
        with pytest.raises(DatasetError):
            yinyang_init(overlapping, c0, t=9)
