"""Export helpers: JSON and CSV round trips."""

import json

import numpy as np
import pytest

from repro import ConvergenceCriteria, knori
from repro.errors import ConfigError
from repro.metrics import (
    read_records_csv,
    result_to_dict,
    write_json,
    write_records_csv,
)


@pytest.fixture(scope="module")
def run(overlapping):
    return knori(
        overlapping, 5, seed=0,
        criteria=ConvergenceCriteria(max_iters=10),
    )


def test_result_to_dict_fields(run):
    d = result_to_dict(run)
    assert d["algorithm"] == "knori"
    assert d["iterations"] == run.iterations
    assert len(d["records"]) == run.iterations
    assert len(d["centroids"]) == 5
    assert "assignment" not in d
    d2 = result_to_dict(run, include_assignment=True)
    assert len(d2["assignment"]) == run.params["n"]


def test_json_roundtrip(run, tmp_path):
    path = write_json(tmp_path / "run.json", run)
    back = json.loads(path.read_text())
    assert back["inertia"] == pytest.approx(run.inertia)
    assert back["params"]["k"] == 5
    np.testing.assert_allclose(
        np.array(back["centroids"]), run.centroids
    )


def test_csv_roundtrip(run, tmp_path):
    path = write_records_csv(tmp_path / "records.csv", run)
    back = read_records_csv(path)
    assert len(back) == len(run.records)
    for a, b in zip(back, run.records):
        assert a.iteration == b.iteration
        assert a.sim_ns == pytest.approx(b.sim_ns)
        assert a.dist_computations == b.dist_computations
        assert a.busy_fraction == pytest.approx(b.busy_fraction)


def test_csv_bad_header_rejected(tmp_path):
    p = tmp_path / "bad.csv"
    p.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(ConfigError):
        read_records_csv(p)


def test_json_is_pure_json(run, tmp_path):
    """No numpy scalars sneak into the JSON output."""
    path = write_json(
        tmp_path / "r.json", run, include_assignment=True
    )
    json.loads(path.read_text())  # raises on non-JSON values
