"""knori driver: clustering correctness plus simulated-performance shape."""

import numpy as np
import pytest

from repro import ConvergenceCriteria, knori, lloyd
from repro.core import init_centroids
from repro.errors import ConfigError, DatasetError
from repro.simhw import BindPolicy

CRIT = ConvergenceCriteria(max_iters=30)


def test_clusters_blobs_correctly(blobs):
    res = knori(blobs, 4, seed=0, init="kmeans++")
    assert res.converged
    assert sorted(res.cluster_sizes.tolist()) == [250] * 4


def test_matches_serial_lloyd(overlapping):
    c0 = init_centroids(overlapping, 8, "random", seed=3)
    ref = lloyd(overlapping, 8, init=c0)
    for pruning in ("mti", "elkan", None):
        res = knori(overlapping, 8, pruning=pruning, init=c0, seed=3)
        np.testing.assert_array_equal(res.assignment, ref.assignment)
        np.testing.assert_allclose(res.centroids, ref.centroids, atol=1e-7)
        assert res.iterations == ref.iterations
        assert res.inertia == pytest.approx(ref.inertia, rel=1e-9)


def test_pruning_invariant_to_hardware(overlapping):
    """Simulated machine shape must never change the math."""
    c0 = init_centroids(overlapping, 6, "random", seed=1)
    a = knori(overlapping, 6, init=c0, n_threads=1)
    b = knori(overlapping, 6, init=c0, n_threads=48,
              bind_policy=BindPolicy.OBLIVIOUS, scheduler="fifo")
    np.testing.assert_array_equal(a.assignment, b.assignment)
    np.testing.assert_allclose(a.centroids, b.centroids, atol=1e-9)


def test_mti_reduces_computation_and_time(friendster_small):
    m = knori(friendster_small, 8, pruning="mti", seed=2, criteria=CRIT)
    n = knori(friendster_small, 8, pruning=None, seed=2, criteria=CRIT)
    assert m.total_dist_computations < n.total_dist_computations
    assert m.sim_seconds < n.sim_seconds


def test_speedup_with_threads(friendster_small):
    t1 = knori(friendster_small, 8, pruning=None, n_threads=1,
               seed=1, criteria=CRIT)
    t16 = knori(friendster_small, 8, pruning=None, n_threads=16,
                seed=1, criteria=CRIT)
    speedup = t1.sim_seconds / t16.sim_seconds
    assert 8.0 < speedup <= 16.0


def test_numa_oblivious_slower(friendster_small):
    aware = knori(friendster_small, 8, pruning=None, n_threads=16,
                  seed=1, criteria=CRIT)
    obl = knori(friendster_small, 8, pruning=None, n_threads=16,
                seed=1, criteria=CRIT,
                bind_policy=BindPolicy.OBLIVIOUS)
    assert obl.sim_seconds > 1.5 * aware.sim_seconds


def test_memory_breakdown_components(overlapping):
    res = knori(overlapping, 5, seed=0)
    mb = res.memory_breakdown
    n, d, k, t = (
        overlapping.shape[0], overlapping.shape[1], 5, res.params["T"]
    )
    assert mb["data"] == n * d * 8
    assert mb["assignment"] == n * 4
    assert mb["per_thread_centroids"] == t * (k * d * 8 + k * 8)
    assert mb["mti_bounds"] == n * 8 + (k * (k + 1) // 2) * 8


def test_elkan_memory_includes_lb_matrix(overlapping):
    res = knori(overlapping, 5, pruning="elkan", seed=0)
    n, k = overlapping.shape[0], 5
    assert res.memory_breakdown["ti_lower_bound_matrix"] == n * k * 8


def test_mti_memory_increment_small(overlapping):
    m = knori(overlapping, 5, pruning="mti", seed=0)
    n = knori(overlapping, 5, pruning=None, seed=0)
    e = knori(overlapping, 5, pruning="elkan", seed=0)
    assert n.peak_memory_bytes < m.peak_memory_bytes < e.peak_memory_bytes


def test_iteration_records_complete(overlapping):
    res = knori(overlapping, 6, seed=1, criteria=CRIT)
    assert len(res.records) == res.iterations
    for i, rec in enumerate(res.records):
        assert rec.iteration == i
        assert rec.sim_ns > 0
    assert res.records[0].dist_computations == overlapping.shape[0] * 6
    assert res.records[-1].n_changed == 0  # converged


def test_max_iters_cap(overlapping):
    res = knori(
        overlapping, 10, seed=0, criteria=ConvergenceCriteria(max_iters=2)
    )
    assert res.iterations == 2
    assert not res.converged


@pytest.mark.parametrize("scheduler", ["numa_aware", "fifo", "static"])
def test_all_schedulers_work(overlapping, scheduler):
    res = knori(overlapping, 5, scheduler=scheduler, seed=0, criteria=CRIT)
    assert res.iterations >= 1
    assert res.converged


def test_invalid_scheduler(overlapping):
    with pytest.raises(ConfigError):
        knori(overlapping, 5, scheduler="round_robin")


def test_invalid_pruning(overlapping):
    with pytest.raises(ConfigError):
        knori(overlapping, 5, pruning="yinyang")


def test_1d_data_rejected():
    with pytest.raises(DatasetError):
        knori(np.zeros(10), 2)


def test_params_recorded(overlapping):
    res = knori(overlapping, 5, seed=0, n_threads=7)
    assert res.params["k"] == 5
    assert res.params["T"] == 7
    assert res.params["pruning"] == "mti"
    assert res.algorithm == "knori"
    none = knori(overlapping, 5, pruning=None, seed=0)
    assert none.algorithm == "knori-"
