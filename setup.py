"""Legacy setup shim.

The primary metadata lives in ``pyproject.toml``. This shim exists so
editable installs work in offline environments whose setuptools
predates PEP 660 wheel-less editable support
(``python setup.py develop`` or ``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
