"""Real serial k-means strategies for Table 3.

Table 3 compares knori's single-thread iteration time against MATLAB,
BLAS (both GEMM-formulated), R, Scikit-learn and MLpack (iterative).
The two *strategies* are what matters:

* **iterative/blocked** -- walk the data in cache-sized row blocks,
  computing distances block-by-block and keeping only running state
  (knori's approach, also R/sklearn/MLpack's inner loop);
* **GEMM** -- materialize the full n-by-k cross-product ``-2 X C^T``
  in one BLAS call and post-process (MATLAB's formulation), which
  costs an extra O(nk) intermediate and the memory traffic to fill it.

Both run here for real and are wall-clock timed at reproduction scale;
the Table 3 bench reports those times next to the paper's numbers and
the cost model's paper-scale extrapolation.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.centroids import cluster_sums
from repro.core.convergence import ConvergenceCriteria
from repro.core.distance import (
    BLOCK_ROWS,
    euclidean,
    nearest_centroid,
    row_norms,
)
from repro.core.init import init_centroids
from repro.errors import DatasetError
from repro.metrics import IterationRecord, RunResult

#: Strategies :func:`time_serial_iteration` accepts.
SERIAL_STRATEGIES = ("iterative", "gemm")


def _gemm_assign(
    x: np.ndarray,
    c: np.ndarray,
    *,
    x_sq: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One-shot GEMM assignment: full (n, k) distance matrix at once.

    ``x_sq`` lets callers hoist the data row norms out of the loop --
    they are iteration-invariant, unlike the centroid norms.
    """
    dist = euclidean(x, c, x_sq=x_sq)  # whole matrix, no blocking
    assign = np.argmin(dist, axis=1).astype(np.int32)
    return assign, dist[np.arange(x.shape[0]), assign]


def _run(
    x: np.ndarray,
    k: int,
    assign_fn,
    algorithm: str,
    init: str | np.ndarray,
    seed: int,
    criteria: ConvergenceCriteria | None,
) -> RunResult:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    crit = criteria or ConvergenceCriteria()
    if isinstance(init, np.ndarray):
        centroids = np.array(init, dtype=np.float64, copy=True)
    else:
        centroids = init_centroids(x, k, init, seed=seed)
    assign = np.full(x.shape[0], -1, dtype=np.int32)
    records = []
    converged = False
    mindist = np.zeros(x.shape[0])
    for it in range(crit.max_iters):
        t0 = time.perf_counter()
        new_assign, mindist = assign_fn(x, centroids)
        n_changed = int(np.count_nonzero(new_assign != assign))
        assign = new_assign
        partial = cluster_sums(x, assign, k)
        prev = centroids
        centroids = partial.finalize(prev)
        wall_ns = (time.perf_counter() - t0) * 1e9
        records.append(
            IterationRecord(
                iteration=it,
                sim_ns=wall_ns,  # genuinely measured; see params flag
                n_changed=n_changed,
                dist_computations=x.shape[0] * k,
            )
        )
        motion = np.sqrt(((centroids - prev) ** 2).sum(axis=1))
        if crit.converged(x.shape[0], n_changed, motion):
            converged = True
            break
    return RunResult(
        algorithm=algorithm,
        centroids=centroids,
        assignment=assign,
        iterations=len(records),
        converged=converged,
        inertia=float((mindist**2).sum()),
        records=records,
        params={
            "n": x.shape[0],
            "d": x.shape[1],
            "k": k,
            "time_kind": "wall_clock",
        },
    )


def iterative_kmeans(
    x: np.ndarray,
    k: int,
    *,
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
    block_rows: int = BLOCK_ROWS,
) -> RunResult:
    """Serial iterative/blocked Lloyd's, wall-clock timed."""

    def assign_fn(xx: np.ndarray, cc: np.ndarray):
        return nearest_centroid(xx, cc, block_rows=block_rows)

    return _run(x, k, assign_fn, "serial-iterative", init, seed, criteria)


def gemm_kmeans(
    x: np.ndarray,
    k: int,
    *,
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
) -> RunResult:
    """Serial GEMM-formulated Lloyd's, wall-clock timed.

    The data row norms are computed once and reused every iteration
    (the same hoist the ``"gemm"`` kernel strategy's workspace cache
    performs); distances are unchanged because ``|x|^2`` is
    per-row-independent and identical across calls.
    """
    cache: dict[int, np.ndarray] = {}

    def assign_fn(xx: np.ndarray, cc: np.ndarray):
        x_sq = cache.get(id(xx))
        if x_sq is None:
            x_sq = row_norms(xx)
            cache.clear()
            cache[id(xx)] = x_sq
        return _gemm_assign(xx, cc, x_sq=x_sq)

    return _run(x, k, assign_fn, "serial-gemm", init, seed, criteria)


def time_serial_iteration(
    x: np.ndarray,
    k: int,
    strategy: str = "iterative",
    *,
    repeats: int = 3,
    seed: int = 0,
) -> float:
    """Median wall-clock seconds for one assignment+update iteration.

    The Table 3 measurement: fixed centroids, full distance
    computations ("for fairness all implementations perform all
    distance computations").
    """
    if strategy not in SERIAL_STRATEGIES:
        raise DatasetError(f"unknown strategy {strategy!r}")
    x = np.asarray(x, dtype=np.float64)
    centroids = init_centroids(x, k, "random", seed=seed)
    if strategy == "gemm":
        # Hoisted out of the timed loop: real GEMM deployments compute
        # the data norms once, so the measurement should too.
        x_sq = row_norms(x)

        def fn(xx, cc):
            return _gemm_assign(xx, cc, x_sq=x_sq)
    else:
        def fn(xx, cc):
            return nearest_centroid(xx, cc)
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        assign, _ = fn(x, centroids)
        cluster_sums(x, assign, k)
        times.append(time.perf_counter() - t0)
    return float(np.median(times))
