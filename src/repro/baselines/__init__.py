"""Baselines and comparators.

Everything the paper measures knor *against*:

* :mod:`repro.baselines.gemm` -- real, wall-clock-timed serial k-means
  strategies (iterative blocked vs. GEMM-trick), the Table 3 row
  generators.
* :mod:`repro.baselines.naive_parallel` -- the naive parallel Lloyd's
  with a shared, locked phase-II centroid structure that Section 3
  motivates ||Lloyd's against.
* :mod:`repro.baselines.frameworks` -- cost-model comparators for
  MLlib, H2O and Turi (single machine and EC2), running the identical
  unpruned ||Lloyd's numerics with each framework's architectural
  overheads (JVM/serialization multipliers, shuffle/driver collection,
  no pruning, no NUMA placement).
* :mod:`repro.baselines.mpi_pure` -- the paper's own pure-MPI
  ||Lloyd's (one single-threaded rank per core, no NUMA binding), the
  Figure 12 baseline.
* :mod:`repro.baselines.minibatch` -- mini-batch k-means (Sculley /
  Sophia-ML style), the approximate competitor discussed in Related
  Work and a Section 9 extension target.
"""

from repro.baselines.gemm import (
    gemm_kmeans,
    iterative_kmeans,
    time_serial_iteration,
)
from repro.baselines.naive_parallel import naive_parallel_lloyd
from repro.baselines.frameworks import (
    FRAMEWORKS,
    FrameworkSpec,
    framework_kmeans,
)
from repro.baselines.mpi_pure import mpi_lloyd
from repro.baselines.minibatch import minibatch_kmeans

__all__ = [
    "gemm_kmeans",
    "iterative_kmeans",
    "time_serial_iteration",
    "naive_parallel_lloyd",
    "FRAMEWORKS",
    "FrameworkSpec",
    "framework_kmeans",
    "mpi_lloyd",
    "minibatch_kmeans",
]
