"""Naive parallel Lloyd's: the shared-phase-II baseline (Section 3).

The design ||Lloyd's replaces: Phase I parallelizes cleanly, but Phase
II accumulates into ONE shared next-iteration centroid structure, so
every point's update takes the lock of its nearest centroid. With T
threads hammering k locks, the expected contention per update is
``(T - 1) / k`` other threads -- "as n gets larger with respect to k
this interference worsens". There is also a second global barrier
between the phases.

Numerics are identical to ||Lloyd's (it is the same math, summed in a
different order); only the simulated cost differs. This module exists
for the ablation bench that quantifies what Algorithm 1 buys.
"""

from __future__ import annotations

import numpy as np

from repro.core import ConvergenceCriteria
from repro.core.centroids import cluster_sums
from repro.core.distance import nearest_centroid, rows_to_centroids
from repro.drivers.common import default_criteria, resolve_init
from repro.errors import DatasetError
from repro.metrics import IterationRecord, RunResult
from repro.simhw import BindPolicy, CostModel, FOUR_SOCKET_XEON, SimMachine


def naive_parallel_lloyd(
    x: np.ndarray,
    k: int,
    *,
    cost_model: CostModel = FOUR_SOCKET_XEON,
    n_threads: int | None = None,
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
) -> RunResult:
    """Two-phase parallel Lloyd's with a locked shared centroid update."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    n, d = x.shape
    crit = default_criteria(criteria)
    machine = SimMachine.build(
        cost_model, n_threads=n_threads, bind_policy=BindPolicy.NUMA_BIND
    )
    t = machine.n_threads
    cm = machine.cost_model

    centroids = resolve_init(x, k, init, seed)
    assign = np.full(n, -1, dtype=np.int32)
    records: list[IterationRecord] = []
    converged = False
    mindist = np.zeros(n)

    rows_per_thread = -(-n // t)
    smt = cm.smt_compute_mult(t)

    for it in range(crit.max_iters):
        new_assign, mindist = nearest_centroid(x, centroids)
        n_changed = int(np.count_nonzero(new_assign != assign))
        assign = new_assign
        partial = cluster_sums(x, assign, k)
        prev = centroids
        centroids = partial.finalize(prev)

        # Phase I: embarrassingly parallel distance computations.
        phase1 = (
            cm.dist_comp_ns(d, rows_per_thread * k)
            + cm.rows_overhead_ns(rows_per_thread)
        ) * smt
        # Phase II: every row takes its centroid's lock on the shared
        # structure, contending with ~ (T-1)/k peers, then adds d
        # elements.
        contenders = 1 + (t - 1) / k
        lock = cm.lock_ns + cm.lock_contention_ns * (contenders - 1)
        phase2 = rows_per_thread * (lock + d * cm.merge_elem_ns) * smt
        # Two global barriers instead of ||Lloyd's one.
        sim_ns = phase1 + phase2 + 2 * cm.barrier_ns(t)

        records.append(
            IterationRecord(
                iteration=it,
                sim_ns=sim_ns,
                n_changed=n_changed,
                dist_computations=n * k,
            )
        )
        motion = np.sqrt(((centroids - prev) ** 2).sum(axis=1))
        if crit.converged(n, n_changed, motion):
            converged = True
            break

    dist = rows_to_centroids(x, centroids, assign)
    return RunResult(
        algorithm="naive-parallel-lloyd",
        centroids=centroids,
        assignment=assign,
        iterations=len(records),
        converged=converged,
        inertia=float((dist**2).sum()),
        records=records,
        params={"n": n, "d": d, "k": k, "T": t},
    )
