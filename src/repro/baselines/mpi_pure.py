"""Pure-MPI ||Lloyd's: the paper's own distributed baseline (MPI / MPI-).

Section 8.9 compares knord against "a pure MPI distributed
implementation of our ||Lloyd's algorithm" -- one single-threaded rank
per physical core, optional MTI, and **no NUMA optimizations**: ranks
are placed by the OS, their pages land wherever first touch put them,
and there is no within-machine work stealing (static per-rank
partitions). knord outperforms it by 20-50% (Figure 12), which is the
NUMA dividend in isolation, since the numerics are identical.

Here the numerics run exactly as knord's -- the same
:class:`~repro.runtime.ShardedKmeans` fleet, one shard per rank --
while the cost side differs (:class:`~repro.runtime.PureMpiBackend`):

* per-rank compute pays a NUMA penalty factor (unpinned ranks make
  remote accesses when migrated);
* the allreduce spans ``machines x ranks_per_machine`` participants
  instead of knord's one-per-machine, so collective latency grows.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core import ConvergenceCriteria
from repro.core.distance import rows_to_centroids
from repro.dist import NetworkModel, SimComm, TEN_GBE
from repro.drivers.common import (
    check_pruning,
    default_criteria,
    resolve_init,
    resolve_memory_manager,
)
from repro.errors import ConfigError, DatasetError
from repro.mem import MemoryManager, use_manager
from repro.metrics import RunResult
from repro.runtime import (
    IterationLoop,
    PureMpiBackend,
    RunObserver,
    ShardedKmeans,
)
from repro.simhw import CostModel, EC2_C4_8XLARGE

#: Compute penalty of unpinned, OS-placed MPI ranks relative to knord's
#: bound threads (calibrated to Figure 12's 20-50% knord advantage).
MPI_NUMA_PENALTY = 1.35


def mpi_lloyd(
    x: np.ndarray,
    k: int,
    *,
    n_machines: int = 4,
    ranks_per_machine: int | None = None,
    pruning: str | None = "mti",
    cost_model: CostModel = EC2_C4_8XLARGE,
    network: NetworkModel = TEN_GBE,
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
    observers: Sequence[RunObserver] = (),
    faults: "FaultPlan | None" = None,
    retry_policy: "RetryPolicy | None" = None,
    kernel: str = "blocked",
    allreduce: str = "tree",
    membership: Any = None,
    autoscaler: Any = None,
    mem: str | MemoryManager | None = None,
    mem_budget_bytes: int | None = None,
) -> RunResult:
    """Pure-MPI ||Lloyd's (``pruning=None`` gives the paper's MPI-).

    ``kernel`` selects the per-rank distance kernel strategy exactly
    as in :func:`repro.drivers.knori`. ``allreduce`` must stay
    ``"tree"``: the rectangular schedule needs a one-rank-per-machine
    grid, which the flat one-rank-per-core space does not have.
    ``mem``/``mem_budget_bytes`` select the memory manager for the
    per-rank workspaces and allreduce staging, as in
    :func:`repro.drivers.knori`; results are bit-identical across
    managers.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    pruning = check_pruning(pruning)
    if pruning == "elkan":
        raise ConfigError("mpi_lloyd supports pruning='mti' or None")
    crit = default_criteria(criteria)
    n, d = x.shape
    rpm = ranks_per_machine or cost_model.topology.physical_cores
    n_ranks = n_machines * rpm
    if n < n_ranks:
        raise DatasetError(f"n={n} rows cannot shard over {n_ranks} ranks")
    comm = SimComm(n_ranks, network)

    centroids0 = resolve_init(x, k, init, seed)
    manager = resolve_memory_manager(mem, mem_budget_bytes, observers)
    with use_manager(manager):
        sharded = ShardedKmeans(
            x, centroids0, pruning, n_ranks, k,
            kernel=kernel, allreduce=allreduce,
        )
        backend = PureMpiBackend(
            comm,
            sharded,
            dist_col_ns=cost_model.dist_base_ns
            + cost_model.dist_per_dim_ns * d,
            row_overhead_ns=cost_model.row_overhead_ns,
            numa_penalty=MPI_NUMA_PENALTY,
            faults=faults,
            retry_policy=retry_policy,
            membership=membership,
            autoscaler=autoscaler,
        )
        result = IterationLoop(
            backend, criteria=crit, observers=observers, faults=faults
        ).run()

    assignment = sharded.assignment
    dist = rows_to_centroids(x, sharded.centroids, assignment)
    return result.as_run_result(
        algorithm="MPI" if pruning == "mti" else "MPI-",
        centroids=sharded.centroids,
        assignment=assignment,
        inertia=float((dist**2).sum()),
        params={
            "n": n,
            "d": d,
            "k": k,
            "n_machines": n_machines,
            "ranks_per_machine": rpm,
            "pruning": pruning,
            "kernel": sharded.kernel,
        },
    )
