"""Pure-MPI ||Lloyd's: the paper's own distributed baseline (MPI / MPI-).

Section 8.9 compares knord against "a pure MPI distributed
implementation of our ||Lloyd's algorithm" -- one single-threaded rank
per physical core, optional MTI, and **no NUMA optimizations**: ranks
are placed by the OS, their pages land wherever first touch put them,
and there is no within-machine work stealing (static per-rank
partitions). knord outperforms it by 20-50% (Figure 12), which is the
NUMA dividend in isolation, since the numerics are identical.

Here the numerics run exactly as knord's, while the cost side differs:

* per-rank compute pays a NUMA penalty factor (unpinned ranks make
  remote accesses when migrated);
* the allreduce spans ``machines x ranks_per_machine`` participants
  instead of knord's one-per-machine, so collective latency grows.
"""

from __future__ import annotations

import numpy as np

from repro.core import ConvergenceCriteria
from repro.core.centroids import cluster_sums
from repro.core.distance import nearest_centroid, rows_to_centroids
from repro.core.mti import MtiState, mti_init, mti_iteration
from repro.dist import NetworkModel, SimComm, TEN_GBE
from repro.drivers.common import check_pruning, default_criteria, resolve_init
from repro.errors import ConfigError, DatasetError
from repro.metrics import IterationRecord, RunResult
from repro.simhw import CostModel, EC2_C4_8XLARGE

_F64 = 8

#: Compute penalty of unpinned, OS-placed MPI ranks relative to knord's
#: bound threads (calibrated to Figure 12's 20-50% knord advantage).
MPI_NUMA_PENALTY = 1.35


def mpi_lloyd(
    x: np.ndarray,
    k: int,
    *,
    n_machines: int = 4,
    ranks_per_machine: int | None = None,
    pruning: str | None = "mti",
    cost_model: CostModel = EC2_C4_8XLARGE,
    network: NetworkModel = TEN_GBE,
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
) -> RunResult:
    """Pure-MPI ||Lloyd's (``pruning=None`` gives the paper's MPI-)."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    pruning = check_pruning(pruning)
    if pruning == "elkan":
        raise ConfigError("mpi_lloyd supports pruning='mti' or None")
    crit = default_criteria(criteria)
    n, d = x.shape
    rpm = ranks_per_machine or cost_model.topology.physical_cores
    n_ranks = n_machines * rpm
    if n < n_ranks:
        raise DatasetError(f"n={n} rows cannot shard over {n_ranks} ranks")
    comm = SimComm(n_ranks, network)

    bounds = np.linspace(0, n, n_ranks + 1, dtype=np.int64)
    shards = [x[bounds[i] : bounds[i + 1]] for i in range(n_ranks)]
    states: list[MtiState | None] = [None] * n_ranks
    prev_assign: list[np.ndarray | None] = [None] * n_ranks

    centroids = resolve_init(x, k, init, seed)
    prev_centroids = centroids.copy()
    records: list[IterationRecord] = []
    converged = False
    dist_col_ns = cost_model.dist_base_ns + cost_model.dist_per_dim_ns * d

    for it in range(crit.max_iters):
        shard_sums = []
        shard_counts = []
        changed_total = 0
        rank_ns = []
        dist_total = 0
        motion = None
        for ri in range(n_ranks):
            shard = shards[ri]
            sn = shard.shape[0]
            if pruning == "mti":
                if it == 0:
                    states[ri], res = mti_init(shard, centroids)
                    n_dist = res.computed
                    changed = res.n_changed
                else:
                    res = mti_iteration(
                        shard, centroids, prev_centroids, states[ri]
                    )
                    n_dist = res.computed
                    changed = res.n_changed
                    motion = res.motion
                shard_sums.append(states[ri].sums)
                shard_counts.append(states[ri].counts.astype(np.float64))
            else:
                assign, _ = nearest_centroid(shard, centroids)
                changed = (
                    sn
                    if prev_assign[ri] is None
                    else int(np.count_nonzero(assign != prev_assign[ri]))
                )
                prev_assign[ri] = assign
                partial = cluster_sums(shard, assign, k)
                shard_sums.append(partial.sums)
                shard_counts.append(partial.counts.astype(np.float64))
                n_dist = sn * k
            # Single-threaded rank, unpinned: NUMA penalty, no SMT.
            rank_ns.append(
                (
                    n_dist * dist_col_ns
                    + sn * cost_model.row_overhead_ns
                )
                * MPI_NUMA_PENALTY
            )
            changed_total += changed
            dist_total += n_dist

        red_sums = comm.allreduce_sum(shard_sums)
        red_counts = comm.allreduce_sum(shard_counts)
        allreduce_ns = comm.allreduce_ns(
            red_sums.value.nbytes + red_counts.value.nbytes + 8
        )
        counts = red_counts.value
        new_centroids = centroids.copy()
        nonzero = counts > 0
        new_centroids[nonzero] = (
            red_sums.value[nonzero] / counts[nonzero, None]
        )

        records.append(
            IterationRecord(
                iteration=it,
                sim_ns=max(rank_ns) + allreduce_ns,
                n_changed=changed_total,
                dist_computations=dist_total,
                network_bytes=red_sums.bytes_on_wire
                + red_counts.bytes_on_wire,
                allreduce_ns=allreduce_ns,
            )
        )
        prev_centroids = centroids
        centroids = new_centroids
        if crit.converged(n, changed_total, motion):
            converged = True
            break

    if pruning == "mti":
        assignment = np.concatenate([s.assignment for s in states])
    else:
        assignment = np.concatenate(prev_assign)
    dist = rows_to_centroids(x, centroids, assignment)
    return RunResult(
        algorithm="MPI" if pruning == "mti" else "MPI-",
        centroids=centroids,
        assignment=assignment,
        iterations=len(records),
        converged=converged,
        inertia=float((dist**2).sum()),
        records=records,
        params={
            "n": n,
            "d": d,
            "k": k,
            "n_machines": n_machines,
            "ranks_per_machine": rpm,
            "pruning": pruning,
        },
    )
