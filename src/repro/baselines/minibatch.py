"""Mini-batch k-means (Sculley, WWW 2010 -- "Sophia-ML" in the paper).

The Related Work section positions mini-batch k-means as the
approximate competitor: it samples a batch per step and applies
per-center learning-rate updates, trading cluster quality for speed.
The paper deliberately avoids approximations; we implement the
algorithm anyway so the quality-vs-speed trade-off the paper alludes to
can be measured (see the ablation bench), and as the first entry of the
Section 9 algorithm-suite extension.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import nearest_centroid, rows_to_centroids
from repro.core.init import init_centroids
from repro.errors import ConfigError, DatasetError
from repro.metrics import IterationRecord, RunResult


def minibatch_kmeans(
    x: np.ndarray,
    k: int,
    *,
    batch_size: int = 1024,
    n_steps: int = 100,
    init: str | np.ndarray = "random",
    seed: int = 0,
) -> RunResult:
    """Cluster with mini-batch SGD updates.

    Per step: sample ``batch_size`` rows, assign them to their nearest
    centroid, and move each chosen centroid toward the batch members
    with a per-center learning rate ``1 / count_seen`` (Sculley's
    algorithm 1).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    if batch_size < 1:
        raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
    if n_steps < 1:
        raise ConfigError(f"n_steps must be >= 1, got {n_steps}")
    n, d = x.shape
    rng = np.random.default_rng(seed)
    if isinstance(init, np.ndarray):
        centroids = np.array(init, dtype=np.float64, copy=True)
    else:
        centroids = init_centroids(x, k, init, seed=seed)
    counts = np.zeros(k, dtype=np.int64)

    records = []
    for step in range(n_steps):
        batch_idx = rng.integers(0, n, size=min(batch_size, n))
        batch = x[batch_idx]
        assign, _ = nearest_centroid(batch, centroids)
        # Per-center gradient step with learning rate 1/seen.
        for c in np.unique(assign):
            members = batch[assign == c]
            for row in members:
                counts[c] += 1
                eta = 1.0 / counts[c]
                centroids[c] = (1.0 - eta) * centroids[c] + eta * row
        records.append(
            IterationRecord(
                iteration=step,
                sim_ns=0.0,  # approximate method; not on a timing figure
                n_changed=int(batch.shape[0]),
                dist_computations=int(batch.shape[0]) * k,
            )
        )

    final_assign, _ = nearest_centroid(x, centroids)
    dist = rows_to_centroids(x, centroids, final_assign)
    return RunResult(
        algorithm="minibatch-kmeans",
        centroids=centroids,
        assignment=final_assign,
        iterations=n_steps,
        converged=False,  # SGD-style: runs for the step budget
        inertia=float((dist**2).sum()),
        records=records,
        params={
            "n": n,
            "d": d,
            "k": k,
            "batch_size": batch_size,
            "n_steps": n_steps,
        },
    )
