"""Mini-batch k-means (Sculley, WWW 2010 -- "Sophia-ML" in the paper).

The Related Work section positions mini-batch k-means as the
approximate competitor: it samples a batch per step and applies
per-center learning-rate updates, trading cluster quality for speed.
The paper deliberately avoids approximations; we implement the
algorithm anyway so the quality-vs-speed trade-off the paper alludes to
can be measured (see the ablation bench), and as the first entry of the
Section 9 algorithm-suite extension.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import nearest_centroid, rows_to_centroids
from repro.core.init import init_centroids
from repro.errors import ConfigError, DatasetError
from repro.metrics import IterationRecord, RunResult


def minibatch_update(
    centroids: np.ndarray,
    counts: np.ndarray,
    batch: np.ndarray,
    assign: np.ndarray,
) -> None:
    """Fold one assigned batch into ``centroids`` in place with
    Sculley's per-center learning rates (``eta = 1 / count_seen``).

    Bit-identical to the reference per-row loop (frozen as
    :func:`repro.perf.legacy.minibatch_update`): the recurrence is
    order-dependent *within* a center but centers never interact, so
    pass ``r`` applies every center's ``r``-th batch member
    simultaneously. A stable argsort keeps each center's members in
    batch order, and the flat bincount/rank-within-group indexing is
    the same idiom as the PR 3 accumulation kernels. The Python-level
    loop shrinks from ``len(batch)`` iterations to the largest
    per-center member count (roughly ``batch/k`` on balanced data).
    """
    k = counts.shape[0]
    assign = np.asarray(assign, dtype=np.int64)
    if assign.size == 0:
        return
    order = np.argsort(assign, kind="stable")
    grouped = assign[order]
    sizes = np.bincount(grouped, minlength=k)
    starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    rank = np.arange(assign.size, dtype=np.int64) - starts[grouped]
    for r in range(int(sizes.max())):
        sel = rank == r
        centers = grouped[sel]
        rows = batch[order[sel]]
        counts[centers] += 1
        eta = 1.0 / counts[centers]
        centroids[centers] = (
            (1.0 - eta)[:, None] * centroids[centers]
            + eta[:, None] * rows
        )


def minibatch_kmeans(
    x: np.ndarray,
    k: int,
    *,
    batch_size: int = 1024,
    n_steps: int = 100,
    init: str | np.ndarray = "random",
    seed: int = 0,
) -> RunResult:
    """Cluster with mini-batch SGD updates.

    Per step: sample ``batch_size`` rows, assign them to their nearest
    centroid, and move each chosen centroid toward the batch members
    with a per-center learning rate ``1 / count_seen`` (Sculley's
    algorithm 1).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    if batch_size < 1:
        raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
    if n_steps < 1:
        raise ConfigError(f"n_steps must be >= 1, got {n_steps}")
    n, d = x.shape
    rng = np.random.default_rng(seed)
    if isinstance(init, np.ndarray):
        centroids = np.array(init, dtype=np.float64, copy=True)
    else:
        centroids = init_centroids(x, k, init, seed=seed)
    counts = np.zeros(k, dtype=np.int64)

    records = []
    for step in range(n_steps):
        batch_idx = rng.integers(0, n, size=min(batch_size, n))
        batch = x[batch_idx]
        assign, _ = nearest_centroid(batch, centroids)
        minibatch_update(centroids, counts, batch, assign)
        records.append(
            IterationRecord(
                iteration=step,
                sim_ns=0.0,  # approximate method; not on a timing figure
                n_changed=int(batch.shape[0]),
                dist_computations=int(batch.shape[0]) * k,
            )
        )

    final_assign, _ = nearest_centroid(x, centroids)
    dist = rows_to_centroids(x, centroids, final_assign)
    return RunResult(
        algorithm="minibatch-kmeans",
        centroids=centroids,
        assignment=final_assign,
        iterations=n_steps,
        converged=False,  # SGD-style: runs for the step budget
        inertia=float((dist**2).sum()),
        records=records,
        params={
            "n": n,
            "d": d,
            "k": k,
            "batch_size": batch_size,
            "n_steps": n_steps,
        },
    )
