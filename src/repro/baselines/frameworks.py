"""Cost-model comparators for MLlib, H2O and Turi.

The paper benchmarks knor against three commercial/OSS frameworks. We
obviously cannot run Spark, H2O or Turi here; what the comparison needs
is each framework's *architectural overhead profile* running the
identical algorithm (the paper stresses that knori- / knors-- are
"algorithmically identical to k-means within MLlib, Turi and H2O").

Each :class:`FrameworkSpec` therefore runs the same exact unpruned
||Lloyd's numerics and charges:

* ``compute_mult`` -- JVM/managed-runtime + abstraction penalty on the
  distance kernel (RDD iterators, boxing, no NUMA placement);
* ``per_point_ns`` -- per-row serialization/deserialization and
  record-object overhead per iteration;
* ``fixed_iter_ns`` -- per-iteration job/stage scheduling;
* ``dispatch_ns_per_task`` -- centralized driver dispatch per partition
  (distributed mode); partial results are *gathered at a driver* and
  re-broadcast, not allreduced -- the master-bottleneck design the
  paper blames for their scaling;
* ``memory_mult`` -- resident-set multiplier over the raw data bytes
  (JVM object headers, caching layers, MLlib's block-manager copies).

The knobs are calibrated once, against the paper's own reported gaps
(knori- ~10x faster in memory; knord >= 5x faster than MLlib-EC2;
Turi often 100x+ slower than knori), and then *held fixed* across every
experiment -- the benches do not re-tune them per figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import ConvergenceCriteria
from repro.core.centroids import cluster_sums
from repro.core.distance import nearest_centroid, rows_to_centroids
from repro.dist import NetworkModel, SimComm, TEN_GBE
from repro.drivers.common import default_criteria, resolve_init
from repro.errors import ConfigError, DatasetError
from repro.metrics import IterationRecord, RunResult
from repro.simhw import CostModel, EC2_C4_8XLARGE, FOUR_SOCKET_XEON

_F64 = 8


@dataclass(frozen=True)
class FrameworkSpec:
    """Overhead profile of one competitor framework."""

    name: str
    compute_mult: float
    per_point_ns: float
    fixed_iter_ns: float
    dispatch_ns_per_task: float
    memory_mult: float
    #: Extra resident bytes independent of data (runtime heap floor).
    base_memory_bytes: int = 512 * 1024 * 1024


FRAMEWORKS: dict[str, FrameworkSpec] = {
    "mllib": FrameworkSpec(
        name="MLlib",
        compute_mult=6.0,
        per_point_ns=400.0,
        fixed_iter_ns=1e5,
        dispatch_ns_per_task=1.0e4,
        memory_mult=8.0,
    ),
    "h2o": FrameworkSpec(
        name="H2O",
        compute_mult=4.5,
        per_point_ns=250.0,
        fixed_iter_ns=8e4,
        dispatch_ns_per_task=0.7e4,
        memory_mult=4.0,
    ),
    "turi": FrameworkSpec(
        name="Turi",
        compute_mult=20.0,
        per_point_ns=1500.0,
        fixed_iter_ns=2e5,
        dispatch_ns_per_task=2.0e4,
        memory_mult=6.0,
    ),
}


def framework_kmeans(
    x: np.ndarray,
    k: int,
    framework: str | FrameworkSpec,
    *,
    n_machines: int = 1,
    cost_model: CostModel | None = None,
    threads_per_machine: int | None = None,
    network: NetworkModel = TEN_GBE,
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
) -> RunResult:
    """Run the framework comparator on (optionally distributed) data.

    Numerics are the real unpruned Lloyd's; timing follows the
    framework's overhead profile. ``n_machines > 1`` engages the
    gather-at-driver communication pattern (MLlib-EC2 of Figures
    11-13).
    """
    if isinstance(framework, str):
        if framework not in FRAMEWORKS:
            raise ConfigError(
                f"unknown framework {framework!r}; choose from "
                f"{sorted(FRAMEWORKS)}"
            )
        spec = FRAMEWORKS[framework]
    else:
        spec = framework
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    n, d = x.shape
    crit = default_criteria(criteria)
    if cost_model is None:
        cost_model = (
            FOUR_SOCKET_XEON if n_machines == 1 else EC2_C4_8XLARGE
        )
    t = threads_per_machine or cost_model.topology.physical_cores
    comm = SimComm(max(1, n_machines), network)

    centroids = resolve_init(x, k, init, seed)
    assign = np.full(n, -1, dtype=np.int32)
    records: list[IterationRecord] = []
    converged = False
    shard_rows = -(-n // max(1, n_machines))
    rows_per_thread = -(-shard_rows // t)
    n_partitions = max(1, n_machines) * t
    dist_col_ns = cost_model.dist_base_ns + cost_model.dist_per_dim_ns * d
    result_bytes = (k * d + k) * _F64

    for it in range(crit.max_iters):
        new_assign, _ = nearest_centroid(x, centroids)
        n_changed = int(np.count_nonzero(new_assign != assign))
        assign = new_assign
        partial = cluster_sums(x, assign, k)
        prev = centroids
        centroids = partial.finalize(prev)

        compute_ns = rows_per_thread * (
            k * dist_col_ns * spec.compute_mult + spec.per_point_ns
        )
        dispatch_ns = n_partitions * spec.dispatch_ns_per_task
        if n_machines > 1:
            # Partial sums from every partition funnel into the driver,
            # then updated centroids broadcast back out.
            comm_ns = (
                comm.gather_ns(result_bytes * t)
                + comm.bcast_ns(k * d * _F64)
            )
            network_bytes = result_bytes * n_partitions
        else:
            comm_ns = 0.0
            network_bytes = 0
        sim_ns = compute_ns + dispatch_ns + comm_ns + spec.fixed_iter_ns

        records.append(
            IterationRecord(
                iteration=it,
                sim_ns=sim_ns,
                n_changed=n_changed,
                dist_computations=n * k,
                network_bytes=network_bytes,
                allreduce_ns=comm_ns,
            )
        )
        motion = np.sqrt(((centroids - prev) ** 2).sum(axis=1))
        if crit.converged(n, n_changed, motion):
            converged = True
            break

    dist = rows_to_centroids(x, centroids, assign)
    data_bytes = n * d * _F64
    name = spec.name + ("-EC2" if n_machines > 1 else "")
    return RunResult(
        algorithm=name,
        centroids=centroids,
        assignment=assign,
        iterations=len(records),
        converged=converged,
        inertia=float((dist**2).sum()),
        records=records,
        memory_breakdown={
            "framework_resident": int(
                data_bytes * spec.memory_mult / max(1, n_machines)
            ),
            "runtime_floor": spec.base_memory_bytes,
        },
        params={
            "n": n,
            "d": d,
            "k": k,
            "n_machines": n_machines,
            "threads_per_machine": t,
            "framework": spec.name,
            "memory_scope": "per_machine",
        },
    )
