"""NUMA machine topology descriptions.

A topology is the static shape of a machine: how many NUMA nodes, how
many physical cores per node, and how many hardware threads each core
exposes through simultaneous multithreading (SMT). The paper's single
node test machine is a four-socket Xeon E7-4860 (4 NUMA nodes x 12
cores, 2-way SMT => 96 hardware threads, 48 physical cores); its cloud
machines are dual-socket c4.8xlarge (18 physical cores) and i3.16xlarge
(32 physical cores) instances.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TopologyError


class BindPolicy(enum.Enum):
    """How worker threads are placed on the machine.

    ``NUMA_BIND``
        The paper's scheme (Section 5.2, Figure 1): each thread is bound
        to one NUMA node, threads are spread evenly over nodes, and each
        thread's data partition is allocated on its node.

    ``OBLIVIOUS``
        The NUMA-oblivious baseline of Figure 4: the OS places threads
        with no affinity, so every thread's accesses hit whichever bank
        holds the (single, contiguous) allocation, mostly remotely.

    ``CORE_BIND``
        Bind each thread to one specific core. The paper rejects this as
        "too restrictive to the OS scheduler" when threads exceed
        physical cores; we model that with an oversubscription penalty.
    """

    NUMA_BIND = "numa_bind"
    OBLIVIOUS = "oblivious"
    CORE_BIND = "core_bind"


@dataclass(frozen=True)
class NumaTopology:
    """Static shape of one shared-memory machine.

    Parameters
    ----------
    n_nodes:
        Number of NUMA nodes (sockets with a local memory bank).
    cores_per_node:
        Physical cores attached to each node's local bus.
    smt:
        Hardware threads per physical core (1 = no hyperthreading).

    Examples
    --------
    >>> topo = NumaTopology(n_nodes=4, cores_per_node=12, smt=2)
    >>> topo.physical_cores
    48
    >>> topo.hardware_threads
    96
    >>> topo.node_of_thread(0, n_threads=8)
    0
    >>> topo.node_of_thread(7, n_threads=8)
    3
    """

    n_nodes: int
    cores_per_node: int
    smt: int = 1

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise TopologyError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if self.cores_per_node < 1:
            raise TopologyError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        if self.smt < 1:
            raise TopologyError(f"smt must be >= 1, got {self.smt}")

    @property
    def physical_cores(self) -> int:
        """Total physical cores in the machine (``P`` in the paper)."""
        return self.n_nodes * self.cores_per_node

    @property
    def hardware_threads(self) -> int:
        """Total schedulable hardware threads (physical cores x SMT)."""
        return self.physical_cores * self.smt

    def node_of_thread(self, thread_id: int, n_threads: int) -> int:
        """NUMA node a bound thread lives on under the paper's layout.

        Figure 1 assigns ``beta = T / N`` consecutive thread ids to each
        node. When ``T`` does not divide evenly, the remainder threads
        are spread over the first nodes, matching a block distribution.
        """
        if not 0 <= thread_id < n_threads:
            raise TopologyError(
                f"thread_id {thread_id} out of range for T={n_threads}"
            )
        base = n_threads // self.n_nodes
        extra = n_threads % self.n_nodes
        # First `extra` nodes carry (base + 1) threads each.
        boundary = extra * (base + 1)
        if thread_id < boundary:
            return thread_id // (base + 1)
        if base == 0:
            # More nodes than threads: every thread landed in the
            # `extra` region above; anything else is unreachable.
            raise TopologyError(
                f"thread_id {thread_id} unplaceable with T={n_threads}"
            )
        return extra + (thread_id - boundary) // base

    def threads_on_node(self, node: int, n_threads: int) -> list[int]:
        """Inverse of :meth:`node_of_thread` for one node."""
        if not 0 <= node < self.n_nodes:
            raise TopologyError(f"node {node} out of range (N={self.n_nodes})")
        return [
            t for t in range(n_threads)
            if self.node_of_thread(t, n_threads) == node
        ]

    def oversubscription(self, n_threads: int) -> float:
        """Ratio of requested threads to physical cores, floored at 1.

        Above 1.0, extra parallelism comes only from SMT, which the
        cost model discounts (Figure 4 shows speedup flattening past 48
        threads on the 48-core machine).
        """
        return max(1.0, n_threads / self.physical_cores)


#: The paper's single-node evaluation machine (Section 8.1).
FOUR_SOCKET_TOPOLOGY = NumaTopology(n_nodes=4, cores_per_node=12, smt=2)

#: Amazon EC2 c4.8xlarge: 18 physical cores on 2 sockets (Section 8.2).
C4_8XLARGE_TOPOLOGY = NumaTopology(n_nodes=2, cores_per_node=9, smt=2)

#: Amazon EC2 i3.16xlarge: 32 physical cores on 2 sockets (Section 8.9.1).
I3_16XLARGE_TOPOLOGY = NumaTopology(n_nodes=2, cores_per_node=16, smt=2)
