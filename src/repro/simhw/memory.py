"""Simulated NUMA memory manager.

Tracks *where* every logical allocation lives (which NUMA bank holds
which byte range) and *how much* simulated memory each component of the
algorithm consumes. The placement map is what makes a memory access
local or remote in the cost model; the accounting is what reproduces
Table 1 and the memory panels of Figures 8c and 9c.

The manager does not hold real data -- algorithms keep their NumPy
arrays; this class records the allocation metadata the real
implementation would have passed to ``numa_alloc_onnode`` / ``malloc``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import AllocationError, ConfigError
from repro.simhw.topology import NumaTopology


class AllocPolicy(enum.Enum):
    """Placement policy for one allocation.

    ``PARTITIONED``
        The paper's scheme (Figure 1): the allocation is split into N
        equal contiguous slabs, one per NUMA node, so each bound
        thread's slice is node-local.

    ``NUMA_BIND``
        The whole allocation on one named node (used for per-thread
        private structures: local centroids, bound arrays).

    ``INTERLEAVE``
        Pages round-robin across nodes (``numactl --interleave``).

    ``OBLIVIOUS``
        What ``malloc`` + first-touch from a single initializing thread
        gives you: one contiguous chunk in a single bank (node 0). This
        is the Figure 4 baseline.
    """

    PARTITIONED = "partitioned"
    NUMA_BIND = "numa_bind"
    INTERLEAVE = "interleave"
    OBLIVIOUS = "oblivious"


@dataclass(frozen=True)
class Allocation:
    """Metadata for one simulated allocation.

    ``placement`` maps node id -> bytes resident on that node. For
    PARTITIONED/OBLIVIOUS allocations ``slab_of(offset)`` answers which
    node holds a given byte offset, which the engine uses to classify
    each task's accesses as local or remote.
    """

    alloc_id: int
    name: str
    component: str
    nbytes: int
    policy: AllocPolicy
    n_nodes: int
    home_node: int | None = None

    @property
    def placement(self) -> dict[int, int]:
        if self.policy is AllocPolicy.OBLIVIOUS:
            return {0: self.nbytes}
        if self.policy is AllocPolicy.NUMA_BIND:
            assert self.home_node is not None
            return {self.home_node: self.nbytes}
        # PARTITIONED and INTERLEAVE both spread evenly; they differ in
        # slab geometry, not in totals.
        base = self.nbytes // self.n_nodes
        rem = self.nbytes % self.n_nodes
        return {
            node: base + (1 if node < rem else 0)
            for node in range(self.n_nodes)
            if base + (1 if node < rem else 0) > 0
        }

    def node_of_offset(self, offset: int) -> int:
        """NUMA node holding byte ``offset`` of this allocation."""
        if not 0 <= offset < max(self.nbytes, 1):
            raise AllocationError(
                f"offset {offset} out of range for {self.name} "
                f"({self.nbytes} bytes)"
            )
        if self.policy is AllocPolicy.OBLIVIOUS:
            return 0
        if self.policy is AllocPolicy.NUMA_BIND:
            assert self.home_node is not None
            return self.home_node
        if self.policy is AllocPolicy.PARTITIONED:
            slab = -(-self.nbytes // self.n_nodes)  # ceil division
            return min(offset // slab, self.n_nodes - 1)
        # INTERLEAVE: 4 KiB pages round-robin.
        page = offset // 4096
        return page % self.n_nodes

    def node_of_fraction(self, frac: float) -> int:
        """Node holding the byte at relative position ``frac`` in [0,1)."""
        if not 0.0 <= frac < 1.0:
            raise AllocationError(f"fraction {frac} outside [0, 1)")
        return self.node_of_offset(int(frac * self.nbytes))


class MemoryManager:
    """Allocation registry with per-component peak accounting.

    Components are free-form strings ("data", "centroids",
    "per_thread_centroids", "mti_bounds", "elkan_lower_bounds",
    "row_cache", "page_cache", ...) so benchmarks can break peak memory
    down the way Table 1 does.
    """

    def __init__(self, topology: NumaTopology) -> None:
        self.topology = topology
        self._allocs: dict[int, Allocation] = {}
        self._next_id = 0
        self._current_bytes = 0
        self._peak_bytes = 0
        self._component_current: dict[str, int] = {}
        self._component_peak: dict[str, int] = {}

    # -- allocation lifecycle -------------------------------------

    def alloc(
        self,
        name: str,
        nbytes: int,
        policy: AllocPolicy,
        *,
        component: str = "misc",
        home_node: int | None = None,
    ) -> Allocation:
        """Register a simulated allocation and return its metadata."""
        if nbytes < 0:
            raise AllocationError(f"negative allocation size {nbytes}")
        if policy is AllocPolicy.NUMA_BIND:
            if home_node is None:
                raise AllocationError("NUMA_BIND requires home_node")
            if not 0 <= home_node < self.topology.n_nodes:
                raise AllocationError(
                    f"home_node {home_node} out of range "
                    f"(N={self.topology.n_nodes})"
                )
        elif home_node is not None:
            raise ConfigError("home_node only valid with NUMA_BIND")
        alloc = Allocation(
            alloc_id=self._next_id,
            name=name,
            component=component,
            nbytes=nbytes,
            policy=policy,
            n_nodes=self.topology.n_nodes,
            home_node=home_node,
        )
        self._next_id += 1
        self._allocs[alloc.alloc_id] = alloc
        self._current_bytes += nbytes
        self._peak_bytes = max(self._peak_bytes, self._current_bytes)
        cur = self._component_current.get(component, 0) + nbytes
        self._component_current[component] = cur
        self._component_peak[component] = max(
            self._component_peak.get(component, 0), cur
        )
        return alloc

    def free(self, alloc: Allocation) -> None:
        """Release a simulated allocation."""
        if alloc.alloc_id not in self._allocs:
            raise AllocationError(f"double free of allocation {alloc.name!r}")
        del self._allocs[alloc.alloc_id]
        self._current_bytes -= alloc.nbytes
        self._component_current[alloc.component] -= alloc.nbytes

    # -- accounting ------------------------------------------------

    @property
    def current_bytes(self) -> int:
        """Bytes currently registered."""
        return self._current_bytes

    @property
    def peak_bytes(self) -> int:
        """High-water mark over the manager's lifetime."""
        return self._peak_bytes

    def component_peak(self, component: str) -> int:
        """Peak bytes ever simultaneously live for one component."""
        return self._component_peak.get(component, 0)

    def component_breakdown(self) -> dict[str, int]:
        """Peak bytes per component (copy)."""
        return dict(self._component_peak)

    def live_allocations(self) -> list[Allocation]:
        """Currently registered allocations, in id order."""
        return [self._allocs[a] for a in sorted(self._allocs)]

    def bank_residency(self) -> dict[int, int]:
        """Bytes currently resident per NUMA node."""
        residency: dict[int, int] = {n: 0 for n in range(self.topology.n_nodes)}
        for alloc in self._allocs.values():
            for node, nbytes in alloc.placement.items():
                residency[node] += nbytes
        return residency
