"""SSD array model for the semi-external-memory substrate.

The paper's single-node machine drives 24 OCZ Intrepid 3000 SSDs behind
three HBAs; the cloud knors machine (i3.16xlarge) has 8 NVMe devices.
For k-means the array behaves like one logical device with an aggregate
bandwidth ceiling and an aggregate IOPS ceiling; SAFS stripes requests
across devices, so a read batch is limited by whichever ceiling it hits
first. The minimum transfer unit is one filesystem page (4 KB in every
experiment, Section 8.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, IoSubsystemError

_NS_PER_S = 1e9


@dataclass(frozen=True)
class SsdReadResult:
    """Outcome of one read batch submitted to the array.

    ``retries`` and ``fault_delay_ns`` are zero on a clean batch; an
    injected read error or slow-page spike (see :mod:`repro.faults`)
    surfaces here after the retry policy resolved it, with the extra
    simulated time folded into ``service_ns``.
    """

    n_requests: int
    pages_read: int
    bytes_read: int
    service_ns: float
    retries: int = 0
    fault_delay_ns: float = 0.0

    def delayed(self, extra_ns: float, retries: int) -> "SsdReadResult":
        """This batch with fault-recovery time charged on top."""
        if extra_ns < 0:
            raise IoSubsystemError(
                f"negative fault delay {extra_ns}"
            )
        return SsdReadResult(
            n_requests=self.n_requests,
            pages_read=self.pages_read,
            bytes_read=self.bytes_read,
            service_ns=self.service_ns + extra_ns,
            retries=self.retries + retries,
            fault_delay_ns=self.fault_delay_ns + extra_ns,
        )


@dataclass(frozen=True)
class AsyncIoQueue:
    """Async request-queue configuration for one SSD array.

    SAFS submits reads asynchronously and keeps per-device queues full;
    the paper's arrays expose many independent channels (one per SSD),
    and NCQ/NVMe queue depth lets each channel overlap requests. The
    queue model turns both knobs into one *effective parallelism*
    factor that amortizes per-request service cost (the IOPS-limited
    term); bandwidth is a physical ceiling and never amortizes.

    Parameters
    ----------
    queue_depth:
        Outstanding requests one channel may overlap (NCQ depth 32 for
        the SATA Intrepids; NVMe queues are deeper but knors never
        benefits past the IOPS ceiling).
    channels:
        Independent device channels; ``None`` means one per device in
        the array the queue is applied to.
    """

    queue_depth: int = 32
    channels: int | None = None

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ConfigError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.channels is not None and self.channels < 1:
            raise ConfigError(
                f"channels must be >= 1, got {self.channels}"
            )


@dataclass(frozen=True)
class SsdArray:
    """Aggregate model of a striped SSD array.

    Parameters
    ----------
    n_devices:
        Devices in the array.
    per_device_bw:
        Sequential read bandwidth of one device, bytes/second.
    per_device_iops:
        4K random-read IOPS of one device.
    page_bytes:
        Filesystem page size -- the minimum read unit (Section 6.2.1
        discusses why knors keeps this at 4 KB).
    """

    n_devices: int = 24
    per_device_bw: float = 450e6
    per_device_iops: float = 60e3
    page_bytes: int = 4096

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ConfigError(f"n_devices must be >= 1, got {self.n_devices}")
        if self.page_bytes < 512:
            raise ConfigError(
                f"page_bytes must be >= 512, got {self.page_bytes}"
            )
        if self.per_device_bw <= 0 or self.per_device_iops <= 0:
            raise ConfigError("device bandwidth and IOPS must be positive")

    @property
    def array_bw(self) -> float:
        """Aggregate sequential bandwidth, bytes/second."""
        return self.n_devices * self.per_device_bw

    @property
    def array_iops(self) -> float:
        """Aggregate 4K IOPS."""
        return self.n_devices * self.per_device_iops

    def read(self, n_requests: int, total_pages: int) -> SsdReadResult:
        """Service one batch of page reads.

        ``n_requests`` is the number of (merged) I/O requests SAFS
        issued; ``total_pages`` the pages they cover. Service time is
        the larger of the bandwidth-limited and IOPS-limited times --
        asynchronous submission keeps the device queues full, so the
        batch pipelines against whichever ceiling binds.
        """
        if n_requests < 0 or total_pages < 0:
            raise IoSubsystemError("negative read batch")
        if n_requests > total_pages:
            raise IoSubsystemError(
                f"{n_requests} requests cannot cover only "
                f"{total_pages} pages"
            )
        nbytes = total_pages * self.page_bytes
        bw_ns = nbytes / self.array_bw * _NS_PER_S
        iops_ns = n_requests / self.array_iops * _NS_PER_S
        return SsdReadResult(
            n_requests=n_requests,
            pages_read=total_pages,
            bytes_read=nbytes,
            service_ns=max(bw_ns, iops_ns),
        )

    def queue_parallelism(self, n_requests: int, queue: AsyncIoQueue) -> int:
        """Effective overlap factor for a batch under an async queue.

        With ``c`` channels each holding up to ``queue_depth``
        outstanding requests, a batch of ``n`` requests spreads
        ``ceil(n / c)`` deep per channel; the channel overlaps at most
        ``queue_depth`` of those. The batch therefore pipelines
        ``min(queue_depth, ceil(n / c))``-wide -- small batches cannot
        fill the queues and gain nothing (factor 1 == sync).
        """
        if n_requests <= 0:
            return 1
        channels = queue.channels or self.n_devices
        per_channel = -(-n_requests // channels)  # ceil division
        return max(1, min(queue.queue_depth, per_channel))

    def read_async(
        self, n_requests: int, total_pages: int, queue: AsyncIoQueue
    ) -> SsdReadResult:
        """Service one batch submitted through an async request queue.

        Identical geometry to :meth:`read` -- same requests, pages and
        bytes -- but the IOPS-limited term is amortized by the queue's
        effective parallelism. Service time is never larger than the
        sync path's, and equals it when the batch is too small to fill
        the queues or when bandwidth binds.
        """
        sync = self.read(n_requests, total_pages)
        q_eff = self.queue_parallelism(n_requests, queue)
        bw_ns = sync.bytes_read / self.array_bw * _NS_PER_S
        iops_ns = n_requests / self.array_iops * _NS_PER_S / q_eff
        return SsdReadResult(
            n_requests=sync.n_requests,
            pages_read=sync.pages_read,
            bytes_read=sync.bytes_read,
            service_ns=max(bw_ns, iops_ns),
        )


#: The paper's 24-SSD OCZ Intrepid 3000 array (Section 8.1).
OCZ_INTREPID_ARRAY = SsdArray(
    n_devices=24, per_device_bw=450e6, per_device_iops=60e3
)

#: i3.16xlarge instance storage: 8 NVMe devices (Section 8.9.1).
I3_NVME_ARRAY = SsdArray(
    n_devices=8, per_device_bw=1.9e9, per_device_iops=200e3
)
