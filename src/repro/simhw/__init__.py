"""Simulated NUMA hardware substrate.

The paper's optimizations (thread binding, NUMA-local allocation,
partitioned scheduling) manipulate *where* data lives and *who* touches
it. This package models exactly that: a machine is a set of NUMA nodes,
each with cores and a memory bank; a deterministic cost model charges
simulated nanoseconds for compute, local/remote DRAM traffic, queue
locks, barriers and SSD reads; an event-driven engine replays the task
trace a scheduler produces and reports per-thread simulated clocks.

Simulated time is always labelled ``sim`` in public APIs; nothing here
measures wall-clock time.
"""

from repro.simhw.topology import NumaTopology, BindPolicy
from repro.simhw.costmodel import (
    CostModel,
    FOUR_SOCKET_XEON,
    EC2_C4_8XLARGE,
    EC2_I3_16XLARGE,
    EC2_C4_8XLARGE_USD_HOUR,
    EC2_I3_16XLARGE_USD_HOUR,
    SPOT_DISCOUNT,
    run_cost_usd,
)
from repro.simhw.memory import (
    AllocPolicy,
    Allocation,
    MemoryManager,
)
from repro.simhw.thread import SimThread
from repro.simhw.engine import (
    AsyncIoTimeline,
    IoPlacement,
    IterationEngine,
    IterationTrace,
    ProvisionRequest,
    ProvisionTimeline,
    ScheduleDecision,
    TaskExecution,
    TaskWork,
)
from repro.simhw.machine import SimMachine
from repro.simhw.serving import (
    ArrivalProcess,
    ArrivalTrace,
    OpenLoopBatcher,
)
from repro.simhw.ssd import AsyncIoQueue, SsdArray, SsdReadResult

__all__ = [
    "NumaTopology",
    "BindPolicy",
    "CostModel",
    "FOUR_SOCKET_XEON",
    "EC2_C4_8XLARGE",
    "EC2_I3_16XLARGE",
    "EC2_C4_8XLARGE_USD_HOUR",
    "EC2_I3_16XLARGE_USD_HOUR",
    "SPOT_DISCOUNT",
    "run_cost_usd",
    "AllocPolicy",
    "Allocation",
    "MemoryManager",
    "SimThread",
    "SimMachine",
    "AsyncIoTimeline",
    "IoPlacement",
    "IterationEngine",
    "IterationTrace",
    "ProvisionRequest",
    "ProvisionTimeline",
    "ScheduleDecision",
    "TaskExecution",
    "TaskWork",
    "AsyncIoQueue",
    "SsdArray",
    "SsdReadResult",
    "ArrivalProcess",
    "ArrivalTrace",
    "OpenLoopBatcher",
]
