"""One simulated shared-memory machine.

Bundles the static pieces (topology, cost model, optional SSD array)
with the per-run pieces (memory manager, worker threads, execution
engine) behind a single object the drivers instantiate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simhw.costmodel import CostModel, FOUR_SOCKET_XEON
from repro.simhw.engine import IterationEngine
from repro.simhw.memory import MemoryManager
from repro.simhw.ssd import SsdArray
from repro.simhw.thread import SimThread, spawn_threads
from repro.simhw.topology import BindPolicy, NumaTopology


@dataclass
class SimMachine:
    """A simulated NUMA machine ready to run worker threads.

    Examples
    --------
    >>> from repro.simhw import FOUR_SOCKET_XEON, BindPolicy
    >>> m = SimMachine.build(FOUR_SOCKET_XEON, n_threads=8)
    >>> len(m.threads)
    8
    >>> {t.node for t in m.threads}
    {0, 1, 2, 3}
    """

    cost_model: CostModel
    n_threads: int
    bind_policy: BindPolicy
    memory: MemoryManager
    threads: list[SimThread]
    engine: IterationEngine
    ssd: SsdArray | None = None

    @property
    def topology(self) -> NumaTopology:
        return self.cost_model.topology

    @classmethod
    def build(
        cls,
        cost_model: CostModel = FOUR_SOCKET_XEON,
        *,
        n_threads: int | None = None,
        bind_policy: BindPolicy = BindPolicy.NUMA_BIND,
        ssd: SsdArray | None = None,
        record_executions: bool = False,
    ) -> "SimMachine":
        """Construct a machine with ``n_threads`` workers.

        ``n_threads`` defaults to the machine's physical core count,
        the configuration the paper benchmarks most.
        """
        topo = cost_model.topology
        if n_threads is None:
            n_threads = topo.physical_cores
        if n_threads < 1:
            raise ConfigError(f"n_threads must be >= 1, got {n_threads}")
        if n_threads > topo.hardware_threads * 4:
            raise ConfigError(
                f"{n_threads} threads grossly oversubscribes "
                f"{topo.hardware_threads} hardware threads"
            )
        return cls(
            cost_model=cost_model,
            n_threads=n_threads,
            bind_policy=bind_policy,
            memory=MemoryManager(topo),
            threads=spawn_threads(topo, n_threads, bind_policy),
            engine=IterationEngine(
                cost_model,
                bind_policy=bind_policy,
                record_executions=record_executions,
            ),
            ssd=ssd,
        )

    def node_of_row_block(self, block_frac: float) -> int:
        """NUMA node holding a row block at relative dataset position.

        Figure 1's layout: thread ``t`` owns rows ``[t*alpha,
        (t+1)*alpha)`` and its partition is allocated on *its* node --
        so a block's home bank is its owning thread's node (at T=1,
        everything is local to the one thread). Under an oblivious
        layout everything sits on node 0. Drivers use this to stamp
        ``TaskWork.home_node``.
        """
        if self.bind_policy is BindPolicy.OBLIVIOUS:
            return 0
        owner = min(int(block_frac * self.n_threads), self.n_threads - 1)
        return self.threads[owner].node
