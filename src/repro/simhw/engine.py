"""Event-driven execution engine for one parallel super-phase.

The engine replays, in simulated time, exactly what the paper's worker
threads do inside one iteration of ||Lloyd's: repeatedly pull a task
from the scheduler, stream the task's rows from whichever bank holds
them, run the (possibly pruned) distance computations, and accumulate
into thread-local centroids. It then charges the single global barrier
and the funnel reduction that ends the iteration.

The *work content* of each task (rows touched, distance computations
after pruning, bytes needed) is computed by the real algorithm before
the engine runs; the engine decides only *when* and *where* the work
happens and what it costs. That split keeps numerics exact while timing
stays a deterministic model.

Event order: the thread with the smallest private clock acts next.
Ties break on thread id, so traces are fully reproducible.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import SchedulerError
from repro.simhw.costmodel import CostModel
from repro.simhw.thread import SimThread, ThreadCounters
from repro.simhw.topology import BindPolicy


@dataclass(frozen=True)
class TaskWork:
    """Exact work content of one task, produced by the algorithm.

    Attributes
    ----------
    task_id:
        Dense index of the task (block of contiguous rows).
    n_rows:
        Rows in the block.
    n_dist:
        Point-centroid distance computations actually performed for the
        block this iteration (after pruning).
    data_bytes:
        Row data that must be streamed from memory for the block.
    state_bytes:
        Per-row algorithm state touched (assignments, bounds).
    home_node:
        NUMA node whose bank holds the block's slice of the dataset.
    """

    task_id: int
    n_rows: int
    n_dist: int
    data_bytes: int
    state_bytes: int
    home_node: int


class TaskScheduler(Protocol):
    """What the engine needs from a scheduler (see :mod:`repro.sched`)."""

    def assign(
        self, tasks: list[TaskWork], threads: list[SimThread]
    ) -> None:  # pragma: no cover - protocol
        """Load a fresh iteration's tasks."""
        ...

    def next_task(
        self, thread: SimThread
    ) -> "ScheduleDecision | None":  # pragma: no cover - protocol
        """Hand ``thread`` its next task, or None when drained."""
        ...


@dataclass(frozen=True)
class ScheduleDecision:
    """One scheduler response: a task plus the locking it cost.

    ``probe_contenders`` lists, for each queue partition the thread
    probed while searching, how many threads contend on that
    partition's lock. ``stolen_from_node`` is the NUMA node of the
    queue the task was finally taken from (for steal accounting).
    """

    task: TaskWork
    probe_contenders: tuple[int, ...] = (1,)
    stolen_from_node: int | None = None
    was_steal: bool = False


@dataclass
class TaskExecution:
    """Trace record: one task run on one thread."""

    task_id: int
    thread_id: int
    start_ns: float
    end_ns: float
    compute_ns: float
    mem_ns: float
    lock_ns: float
    remote: bool


@dataclass
class IterationTrace:
    """Everything the engine learned about one super-phase."""

    thread_clocks_ns: list[float]
    span_ns: float
    barrier_ns: float
    reduction_ns: float
    total_ns: float
    executions: list[TaskExecution] = field(default_factory=list)
    #: Exact totals summed over threads.
    total_rows: int = 0
    total_dist: int = 0
    total_bytes_local: int = 0
    total_bytes_remote: int = 0
    total_steals: int = 0

    @property
    def busy_fraction(self) -> float:
        """Mean thread utilization before the barrier (1.0 = no skew)."""
        if self.span_ns <= 0 or not self.thread_clocks_ns:
            return 1.0
        return sum(self.thread_clocks_ns) / (
            self.span_ns * len(self.thread_clocks_ns)
        )


class IterationEngine:
    """Replays one super-phase of ||Lloyd's in simulated time."""

    def __init__(
        self,
        cost_model: CostModel,
        *,
        bind_policy: BindPolicy = BindPolicy.NUMA_BIND,
        record_executions: bool = False,
    ) -> None:
        self.cost = cost_model
        self.bind_policy = bind_policy
        self.record_executions = record_executions

    # -- bank concurrency estimate ---------------------------------

    def _bank_streams(
        self, tasks: list[TaskWork], threads: list[SimThread]
    ) -> dict[int, tuple[int, int]]:
        """Estimate (total, remote) concurrent streams per bank.

        Static approximation: every thread whose assigned data lives on
        a bank counts as one stream there; threads on other nodes count
        as remote streams. Under OBLIVIOUS everything sits on node 0 so
        all T threads pile onto one bank -- exactly the saturation
        Figure 4 attributes to NUMA-oblivious allocation.
        """
        banks = {task.home_node for task in tasks}
        streams: dict[int, tuple[int, int]] = {}
        if len(banks) <= 1:
            # All data in one bank (OBLIVIOUS / NUMA_BIND-to-one-node):
            # every thread must stream from it.
            for bank in banks:
                remote = sum(1 for th in threads if th.node != bank)
                streams[bank] = (max(1, len(threads)), remote)
            return streams
        # Partitioned data: each bank is served mostly by the threads
        # bound to its node (steals are the exception, not the steady
        # state, so they do not change the concurrency estimate).
        for bank in banks:
            local = sum(1 for th in threads if th.node == bank)
            streams[bank] = (max(1, local), 0)
        return streams

    # -- main loop ---------------------------------------------------

    def run(
        self,
        scheduler: TaskScheduler,
        tasks: list[TaskWork],
        threads: list[SimThread],
        *,
        d: int,
        k: int,
        reduction: bool = True,
    ) -> IterationTrace:
        """Execute one super-phase and return its trace.

        ``d``/``k`` size the centroid merge at the end; set
        ``reduction=False`` for phases that do not merge (e.g. an
        assignment-only pass).

        This is the optimized event loop: per-task cost-model calls are
        folded into per-iteration constants and per-node bandwidth
        tables, distinct lock-probe patterns are priced once, and the
        event heap is bypassed while only one thread remains runnable.
        Event order and every simulated charge are bit-identical to
        :meth:`run_reference` (conformance-tested on recorded traces).
        """
        if not threads:
            raise SchedulerError("engine needs at least one thread")
        for th in threads:
            th.clock_ns = 0.0
            th.counters = ThreadCounters()
        scheduler.assign(tasks, threads)
        bank_streams = self._bank_streams(tasks, threads)
        n_threads = len(threads)
        overlap = self.bind_policy is not BindPolicy.OBLIVIOUS
        cost = self.cost
        smt_mult = cost.smt_compute_mult(n_threads)
        migration_mult = (
            cost.migration_compute_mult(n_threads)
            if self.bind_policy is BindPolicy.OBLIVIOUS
            else 1.0
        )

        # -- per-iteration cost tables --------------------------------
        # One distance column (dist_comp_ns is linear in n_dist) and
        # one row of bookkeeping; the (a + b) * smt * mig evaluation
        # order below matches the CostModel call chain exactly.
        col_ns = cost.dist_comp_ns(d, 1)
        row_ns = cost.row_overhead_ns
        # Effective (local, remote) bandwidth per bank: the min() chain
        # of CostModel.mem_stream_ns evaluated once per bank instead of
        # once per task.
        line_bytes = cost.cache_line_bytes
        line_lat = cost.remote_line_latency_ns
        mem_table: dict[int, tuple[float, float]] = {}
        for bank, (streams_t, streams_r) in bank_streams.items():
            bw_local = min(
                cost.per_core_bw, cost.bank_bw / max(1, streams_t)
            )
            bw_remote = min(
                bw_local, cost.interconnect_bw / max(1, streams_r)
            )
            mem_table[bank] = (bw_local, bw_remote)
        default_bw_local = min(cost.per_core_bw, cost.bank_bw)
        default_mem = (
            default_bw_local,
            min(default_bw_local, cost.interconnect_bw),
        )
        # Distinct probe patterns are few (schedulers emit a handful of
        # tuple shapes); price each once.
        lock_table: dict[tuple[int, ...], float] = {}

        executions: list[TaskExecution] = []
        record_executions = self.record_executions
        seen_tasks: set[int] = set()
        next_task = scheduler.next_task

        def execute(thread: SimThread, decision: ScheduleDecision) -> None:
            task = decision.task
            if task.task_id in seen_tasks:
                raise SchedulerError(
                    f"task {task.task_id} dispatched twice"
                )
            seen_tasks.add(task.task_id)

            probes = decision.probe_contenders
            lock_ns = lock_table.get(probes)
            if lock_ns is None:
                lock_ns = sum(cost.lock_wait_ns(c) for c in probes)
                lock_table[probes] = lock_ns
            c = thread.counters
            c.queue_probes += len(probes)
            c.lock_wait_ns += lock_ns
            if decision.was_steal:
                if decision.stolen_from_node == thread.node:
                    c.steals_local_node += 1
                else:
                    c.steals_remote_node += 1

            compute_ns = (
                task.n_dist * col_ns + task.n_rows * row_ns
            ) * smt_mult * migration_mult
            remote = task.home_node != thread.node
            nbytes = task.data_bytes + task.state_bytes
            if nbytes <= 0:
                mem_ns = 0.0
            else:
                bw_local, bw_remote = mem_table.get(
                    task.home_node, default_mem
                )
                if remote:
                    n_lines = math.ceil(nbytes / line_bytes)
                    mem_ns = (
                        nbytes / bw_remote * 1e9
                        + 0.3 * n_lines * line_lat
                    )
                else:
                    mem_ns = nbytes / bw_local * 1e9
            # A remote block cannot ride the local-bank prefetch
            # pipeline: remote accesses serialize against compute, so
            # stolen-remote tasks (and everything under the oblivious
            # policy) lose the overlap.
            if overlap and not remote:
                task_ns = (
                    compute_ns if compute_ns > mem_ns else mem_ns
                )
            else:
                task_ns = compute_ns + mem_ns
            start = thread.clock_ns
            # Straggler plane: an injected slowdown stretches this
            # thread's execution. Guarded so the fault-free arithmetic
            # is untouched (bit-identical clean runs).
            sf = thread.slow_factor
            if sf != 1.0:
                thread.clock_ns = start + (lock_ns + task_ns) * sf
            else:
                thread.clock_ns = start + (lock_ns + task_ns)

            c.tasks_run += 1
            c.rows_processed += task.n_rows
            c.dist_computations += task.n_dist
            if remote:
                c.bytes_remote += nbytes
            else:
                c.bytes_local += nbytes

            if record_executions:
                executions.append(
                    TaskExecution(
                        task_id=task.task_id,
                        thread_id=thread.thread_id,
                        start_ns=start,
                        end_ns=thread.clock_ns,
                        compute_ns=compute_ns,
                        mem_ns=mem_ns,
                        lock_ns=lock_ns,
                        remote=remote,
                    )
                )

        # -- event loop -----------------------------------------------
        # Each runnable thread holds exactly one heap entry; drained
        # threads are simply not re-pushed, so no stale entries exist.
        heap: list[tuple[float, int]] = [
            (th.clock_ns, th.thread_id) for th in threads
        ]
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappush = heapq.heappush
        n_active = n_threads
        while n_active:
            if n_active == 1:
                # One runnable thread: every remaining event is its
                # next task, so the heap ordering is vacuous -- drain
                # the scheduler directly without push/pop churn.
                thread = threads[heap[0][1]]
                while (decision := next_task(thread)) is not None:
                    execute(thread, decision)
                break
            _, tid = heappop(heap)
            thread = threads[tid]
            decision = next_task(thread)
            if decision is None:
                n_active -= 1
                continue
            execute(thread, decision)
            heappush(heap, (thread.clock_ns, tid))

        if len(seen_tasks) != len(tasks):
            raise SchedulerError(
                f"scheduler drained with {len(seen_tasks)}/{len(tasks)} "
                "tasks dispatched"
            )

        span = max(th.clock_ns for th in threads)
        barrier = self.cost.barrier_ns(n_threads)
        red = (
            self.cost.reduction_ns(k, d, n_threads) if reduction else 0.0
        )
        totals = [th.counters for th in threads]
        return IterationTrace(
            thread_clocks_ns=[th.clock_ns for th in threads],
            span_ns=span,
            barrier_ns=barrier,
            reduction_ns=red,
            total_ns=span + barrier + red,
            executions=executions,
            total_rows=sum(c.rows_processed for c in totals),
            total_dist=sum(c.dist_computations for c in totals),
            total_bytes_local=sum(c.bytes_local for c in totals),
            total_bytes_remote=sum(c.bytes_remote for c in totals),
            total_steals=sum(
                c.steals_local_node + c.steals_remote_node for c in totals
            ),
        )

    # -- reference loop ----------------------------------------------

    def run_reference(
        self,
        scheduler: TaskScheduler,
        tasks: list[TaskWork],
        threads: list[SimThread],
        *,
        d: int,
        k: int,
        reduction: bool = True,
    ) -> IterationTrace:
        """The original, straight-line event loop, kept verbatim.

        Calls the cost model per task and runs every event through the
        heap. :meth:`run` must produce bit-identical traces; the
        conformance tests and the wall-clock benchmark both replay
        through this method as the "before" baseline.
        """
        if not threads:
            raise SchedulerError("engine needs at least one thread")
        for th in threads:
            th.clock_ns = 0.0
            th.counters = ThreadCounters()
        scheduler.assign(tasks, threads)
        bank_streams = self._bank_streams(tasks, threads)
        n_threads = len(threads)
        overlap = self.bind_policy is not BindPolicy.OBLIVIOUS
        smt_mult = self.cost.smt_compute_mult(n_threads)
        migration_mult = (
            self.cost.migration_compute_mult(n_threads)
            if self.bind_policy is BindPolicy.OBLIVIOUS
            else 1.0
        )

        executions: list[TaskExecution] = []
        seen_tasks: set[int] = set()
        heap: list[tuple[float, int]] = [
            (th.clock_ns, th.thread_id) for th in threads
        ]
        heapq.heapify(heap)
        done: set[int] = set()

        while heap:
            clock, tid = heapq.heappop(heap)
            if tid in done:
                continue
            thread = threads[tid]
            decision = scheduler.next_task(thread)
            if decision is None:
                done.add(tid)
                continue
            task = decision.task
            if task.task_id in seen_tasks:
                raise SchedulerError(
                    f"task {task.task_id} dispatched twice"
                )
            seen_tasks.add(task.task_id)

            lock_ns = sum(
                self.cost.lock_wait_ns(c) for c in decision.probe_contenders
            )
            thread.counters.queue_probes += len(decision.probe_contenders)
            thread.counters.lock_wait_ns += lock_ns
            if decision.was_steal:
                if decision.stolen_from_node == thread.node:
                    thread.counters.steals_local_node += 1
                else:
                    thread.counters.steals_remote_node += 1

            compute_ns = (
                self.cost.dist_comp_ns(d, task.n_dist)
                + self.cost.rows_overhead_ns(task.n_rows)
            ) * smt_mult * migration_mult
            remote = task.home_node != thread.node
            total_streams, remote_streams = bank_streams.get(
                task.home_node, (1, 0)
            )
            nbytes = task.data_bytes + task.state_bytes
            mem_ns = self.cost.mem_stream_ns(
                nbytes,
                remote=remote,
                streams_on_bank=total_streams,
                remote_streams_on_bank=remote_streams,
            )
            # A remote block cannot ride the local-bank prefetch
            # pipeline: remote accesses serialize against compute, so
            # stolen-remote tasks (and everything under the oblivious
            # policy) lose the overlap.
            task_ns = self.cost.task_time_ns(
                compute_ns, mem_ns, overlap=overlap and not remote
            )
            start = thread.clock_ns
            # Same straggler stretch as the fast path (conformance).
            if thread.slow_factor != 1.0:
                thread.advance((lock_ns + task_ns) * thread.slow_factor)
            else:
                thread.advance(lock_ns + task_ns)

            c = thread.counters
            c.tasks_run += 1
            c.rows_processed += task.n_rows
            c.dist_computations += task.n_dist
            if remote:
                c.bytes_remote += nbytes
            else:
                c.bytes_local += nbytes

            if self.record_executions:
                executions.append(
                    TaskExecution(
                        task_id=task.task_id,
                        thread_id=tid,
                        start_ns=start,
                        end_ns=thread.clock_ns,
                        compute_ns=compute_ns,
                        mem_ns=mem_ns,
                        lock_ns=lock_ns,
                        remote=remote,
                    )
                )
            heapq.heappush(heap, (thread.clock_ns, tid))

        if len(seen_tasks) != len(tasks):
            raise SchedulerError(
                f"scheduler drained with {len(seen_tasks)}/{len(tasks)} "
                "tasks dispatched"
            )

        span = max(th.clock_ns for th in threads)
        barrier = self.cost.barrier_ns(n_threads)
        red = (
            self.cost.reduction_ns(k, d, n_threads) if reduction else 0.0
        )
        totals = [th.counters for th in threads]
        return IterationTrace(
            thread_clocks_ns=[th.clock_ns for th in threads],
            span_ns=span,
            barrier_ns=barrier,
            reduction_ns=red,
            total_ns=span + barrier + red,
            executions=executions,
            total_rows=sum(c.rows_processed for c in totals),
            total_dist=sum(c.dist_computations for c in totals),
            total_bytes_local=sum(c.bytes_local for c in totals),
            total_bytes_remote=sum(c.bytes_remote for c in totals),
            total_steals=sum(
                c.steals_local_node + c.steals_remote_node for c in totals
            ),
        )


@dataclass(frozen=True)
class IoPlacement:
    """Where one iteration's I/O service time lands relative to compute.

    ``hidden_ns`` was absorbed by the prefetcher ahead of the compute
    front (issued early against banked overlap credit); ``blocked_ns``
    is what compute must still wait behind. ``hidden + blocked`` always
    equals the batch's async service time, so the I/O *work* charged is
    never altered -- only its overlap with compute.
    """

    service_ns: float
    hidden_ns: float
    blocked_ns: float
    prefetched: bool


class AsyncIoTimeline:
    """Cross-iteration overlap ledger for the async I/O pipeline.

    The row-cache refresh tells the prefetcher which rows are *active*;
    from then on the engine knows iteration ``i+1``'s fetch set before
    iteration ``i``'s compute finishes, so SAFS can issue those reads
    under the running compute. The ledger models that without moving
    any real state: each iteration banks *credit* equal to the compute
    time its I/O did not consume (``wall - blocked``), and the next
    prefetchable batch may hide up to that much service time.

    Iteration 0 (and every iteration until the row cache has been
    populated once) has no known-ahead active set, so nothing hides and
    the accounting degenerates to the sync formula
    ``max(span, service) + barrier + reduction``.

    The ledger is pure timing plane: it never touches cache contents or
    hit/miss counters, so numerics and I/O tallies stay bit-identical
    to ``--sync-io`` by construction.
    """

    def __init__(self) -> None:
        self.credit_ns = 0.0
        self.hidden_total_ns = 0.0
        self.blocked_total_ns = 0.0

    def reset(self) -> None:
        """Forget banked credit (crash recovery restarts the pipeline
        cold, matching the caches)."""
        self.credit_ns = 0.0

    def plan(self, service_ns: float, *, prefetchable: bool) -> IoPlacement:
        """Split a batch's service time into hidden and blocked parts."""
        if service_ns < 0:
            raise SchedulerError(f"negative service time {service_ns}")
        hidden = min(service_ns, self.credit_ns) if prefetchable else 0.0
        return IoPlacement(
            service_ns=service_ns,
            hidden_ns=hidden,
            blocked_ns=service_ns - hidden,
            prefetched=hidden > 0.0,
        )

    def commit(
        self,
        placement: IoPlacement,
        span_ns: float,
        barrier_ns: float,
        reduction_ns: float,
    ) -> float:
        """Account one iteration; returns its simulated wall time.

        Compute waits only behind the blocked remainder; the wall time
        the iteration still spends computing (``wall - blocked``) is
        banked as prefetch credit for the next iteration's reads.
        """
        wall = max(span_ns, placement.blocked_ns) + barrier_ns + reduction_ns
        self.credit_ns = wall - placement.blocked_ns
        self.hidden_total_ns += placement.hidden_ns
        self.blocked_total_ns += placement.blocked_ns
        return wall


@dataclass
class ProvisionRequest:
    """One outstanding capacity request on the provisioning timeline."""

    requested_at_ns: float
    ready_at_ns: float
    count: int


class ProvisionTimeline:
    """Request→grant latency ledger for elastic capacity.

    Cloud capacity is not instant: a machine requested at simulated
    time ``T`` boots, joins the placement group and becomes usable
    only at ``T + provision_ns``. This timeline models that honestly
    on the simulated clock the iteration records already carry --
    callers ``advance()`` it by each iteration's wall time, ``request``
    capacity against the current clock, and ``take_ready()`` machines
    whose provisioning latency has fully elapsed.

    Pure timing plane, fully deterministic: no randomness, no real
    clock, so an autoscaler's grant schedule is a pure function of the
    iteration times that drove it.
    """

    def __init__(self, provision_ns: float) -> None:
        if provision_ns < 0:
            raise SchedulerError(
                f"provision_ns must be >= 0, got {provision_ns}"
            )
        self.provision_ns = provision_ns
        self.now_ns = 0.0
        self.pending: list[ProvisionRequest] = []
        self.granted = 0

    def advance(self, delta_ns: float) -> None:
        """Move the simulated clock forward (one iteration's wall)."""
        if delta_ns < 0:
            raise SchedulerError(f"negative time advance {delta_ns}")
        self.now_ns += delta_ns

    def request(self, count: int = 1) -> ProvisionRequest:
        """Ask for ``count`` machines; they ready at now + latency."""
        if count < 1:
            raise SchedulerError(f"count must be >= 1, got {count}")
        req = ProvisionRequest(
            requested_at_ns=self.now_ns,
            ready_at_ns=self.now_ns + self.provision_ns,
            count=count,
        )
        self.pending.append(req)
        return req

    @property
    def outstanding(self) -> int:
        """Machines requested but not yet granted."""
        return sum(r.count for r in self.pending)

    def take_ready(self) -> int:
        """Grant every request whose latency has elapsed; returns the
        machine count granted now (requests are consumed in order)."""
        ready = [r for r in self.pending if r.ready_at_ns <= self.now_ns]
        if not ready:
            return 0
        self.pending = [
            r for r in self.pending if r.ready_at_ns > self.now_ns
        ]
        count = sum(r.count for r in ready)
        self.granted += count
        return count
