"""Deterministic cost model for the simulated NUMA machine.

All charges are expressed in simulated nanoseconds. The constants are
calibrated against the paper's own anchors:

* Table 3 -- knori- at one thread takes 7.49 s/iteration on the
  Friendster-8 dataset (n = 66M, d = 8, k = 10). That is ~11.3 ns per
  point-centroid distance column, which pins ``dist_base_ns`` +
  8 x ``dist_per_dim_ns``.
* Figure 4 -- the NUMA-oblivious routine is ~6x slower at 64 threads.
  That pins the single-bank bandwidth ceiling, the interconnect share,
  the remote cache-line latency and the thread-migration penalty.
* Section 5 -- naive Lloyd's phase II is "plagued with substantial
  locking overhead"; the centroid-lock wait term reproduces it.

The model is intentionally simple and auditable: every term is a
closed-form function of exact algorithm outputs (bytes touched, distance
computations performed, queue probes, lock acquisitions), so two runs of
the same algorithm always cost the same.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.errors import ConfigError
from repro.simhw.topology import (
    NumaTopology,
    FOUR_SOCKET_TOPOLOGY,
    C4_8XLARGE_TOPOLOGY,
    I3_16XLARGE_TOPOLOGY,
)

_GB = 1e9  # bytes
_NS_PER_S = 1e9


@dataclass(frozen=True)
class CostModel:
    """Charge schedule for one machine type.

    Bandwidth figures are bytes/second; latency figures nanoseconds.
    ``topology`` travels with the model because several charges depend
    on core counts and node counts.
    """

    topology: NumaTopology

    # --- compute ------------------------------------------------------
    #: Fixed cost of one point-centroid distance evaluation (loop
    #: overhead, bound checks).
    dist_base_ns: float = 2.5
    #: Incremental cost per dimension of one distance evaluation
    #: (subtract, multiply, accumulate).
    dist_per_dim_ns: float = 1.1
    #: Per-row bookkeeping (assignment compare/store, bound update).
    row_overhead_ns: float = 4.0
    #: Fraction of full-rate throughput one SMT sibling adds beyond the
    #: physical core count (Figure 4: modest gains from 48->64 threads).
    smt_yield: float = 0.35

    # --- memory -------------------------------------------------------
    #: Peak streaming bandwidth one core can draw by itself.
    per_core_bw: float = 8.0 * _GB
    #: Aggregate bandwidth of one NUMA node's local bank.
    bank_bw: float = 25.0 * _GB
    #: Aggregate bandwidth of the cross-socket interconnect serving
    #: remote readers of a single bank.
    interconnect_bw: float = 8.0 * _GB
    #: Extra latency per remote cache line (pointer-chase component that
    #: prefetching cannot hide).
    remote_line_latency_ns: float = 90.0
    cache_line_bytes: int = 64
    #: Under NUMA_BIND the paper's sequential layout lets hardware
    #: prefetch overlap memory with compute (task time = max of the
    #: two); oblivious placement loses the overlap (time = sum).
    #: Multiplier on compute for OS thread migration / cache thrash at
    #: high thread counts under the oblivious policy, applied as
    #: ``1 + penalty * (1 - 1/T)``.
    oblivious_migration_penalty: float = 2.2

    # --- synchronization ---------------------------------------------
    #: Uncontended lock acquire+release.
    lock_ns: float = 80.0
    #: Additional expected wait per extra contender on the same lock.
    lock_contention_ns: float = 120.0
    #: Cost of one global barrier entry per thread, times log2(T).
    barrier_base_ns: float = 2000.0
    #: Per-element cost of merging per-thread centroid structures in
    #: the funnel reduction (read + add + write one float64).
    merge_elem_ns: float = 1.5

    # --- derived helpers ---------------------------------------------

    def dist_comp_ns(self, d: int, n_dist: float) -> float:
        """Cost of ``n_dist`` point-centroid distance evaluations in d dims."""
        if d < 1:
            raise ConfigError(f"d must be >= 1, got {d}")
        return float(n_dist) * (self.dist_base_ns + self.dist_per_dim_ns * d)

    def rows_overhead_ns(self, n_rows: float) -> float:
        """Per-row fixed bookkeeping for ``n_rows`` rows."""
        return float(n_rows) * self.row_overhead_ns

    def smt_compute_mult(self, n_threads: int) -> float:
        """Per-thread compute slowdown when oversubscribing cores.

        Up to the physical core count threads run at full rate. Beyond
        it, SMT siblings add ``smt_yield`` of a core each, and past the
        hardware thread count capacity stops growing entirely.
        """
        topo = self.topology
        p = topo.physical_cores
        if n_threads <= p:
            return 1.0
        smt_slots = p * (topo.smt - 1)
        effective = p + self.smt_yield * min(n_threads - p, smt_slots)
        return n_threads / effective

    def migration_compute_mult(self, n_threads: int) -> float:
        """Compute penalty for the NUMA-oblivious policy (Fig 4).

        Ramps from ~1 at low thread counts (little for the OS to get
        wrong) toward ``1 + penalty`` as migrations and cache thrash
        compound, keeping the oblivious curve linear-with-lower-
        constant rather than regressing at T=2.
        """
        if n_threads <= 2:
            return 1.0
        ramp = (n_threads - 2) / (n_threads + 6)
        return 1.0 + self.oblivious_migration_penalty * ramp

    def mem_stream_ns(
        self,
        nbytes: float,
        *,
        remote: bool,
        streams_on_bank: int,
        remote_streams_on_bank: int = 0,
    ) -> float:
        """Time for one thread to stream ``nbytes`` from one bank.

        ``streams_on_bank`` is how many threads concurrently draw from
        the same bank (they share ``bank_bw``); remote readers
        additionally share ``interconnect_bw`` and pay a per-line
        latency that prefetching cannot hide.
        """
        if nbytes <= 0:
            return 0.0
        streams = max(1, streams_on_bank)
        bw = min(self.per_core_bw, self.bank_bw / streams)
        extra = 0.0
        if remote:
            rstreams = max(1, remote_streams_on_bank)
            bw = min(bw, self.interconnect_bw / rstreams)
            n_lines = math.ceil(nbytes / self.cache_line_bytes)
            # Prefetch depth hides most line latency on a stream; charge
            # a residual per line.
            extra = 0.3 * n_lines * self.remote_line_latency_ns
        return nbytes / bw * _NS_PER_S + extra

    def task_time_ns(
        self, compute_ns: float, mem_ns: float, *, overlap: bool
    ) -> float:
        """Combine compute and memory time for one task.

        Sequential NUMA-local streams overlap with compute (hardware
        prefetch keeps the pipeline fed); oblivious placement does not.
        """
        if overlap:
            return max(compute_ns, mem_ns)
        return compute_ns + mem_ns

    def lock_wait_ns(self, contenders: int) -> float:
        """Expected cost of one lock acquisition with ``contenders``
        threads hammering the same lock (1 = uncontended)."""
        c = max(1, contenders)
        return self.lock_ns + self.lock_contention_ns * (c - 1)

    def barrier_ns(self, n_threads: int) -> float:
        """One global barrier across ``n_threads`` threads."""
        if n_threads <= 1:
            return 0.0
        return self.barrier_base_ns * math.log2(n_threads)

    def reduction_ns(self, k: int, d: int, n_threads: int) -> float:
        """Parallel funnel merge of T per-thread centroid structures.

        Each of ceil(log2 T) levels merges k*d sums plus k counts; the
        merges within a level run in parallel, so a level costs one
        structure merge.
        """
        if n_threads <= 1:
            return 0.0
        levels = math.ceil(math.log2(n_threads))
        elems = k * d + k
        return levels * elems * self.merge_elem_ns + self.barrier_ns(n_threads)

    def with_topology(self, topology: NumaTopology) -> "CostModel":
        """Copy of this model attached to a different machine shape."""
        return replace(self, topology=topology)


#: Calibrated model of the paper's 4-socket Xeon E7-4860 machine.
FOUR_SOCKET_XEON = CostModel(topology=FOUR_SOCKET_TOPOLOGY)

#: Calibrated model of an EC2 c4.8xlarge node (E5-2666 v3, 2 sockets).
#: Newer cores: slightly faster distance kernel, higher bank bandwidth.
EC2_C4_8XLARGE = CostModel(
    topology=C4_8XLARGE_TOPOLOGY,
    dist_base_ns=2.2,
    dist_per_dim_ns=1.0,
    per_core_bw=10.0 * _GB,
    bank_bw=30.0 * _GB,
    interconnect_bw=12.0 * _GB,
)

#: Calibrated model of an EC2 i3.16xlarge node (knors in the cloud).
EC2_I3_16XLARGE = CostModel(
    topology=I3_16XLARGE_TOPOLOGY,
    dist_base_ns=2.2,
    dist_per_dim_ns=1.0,
    per_core_bw=10.0 * _GB,
    bank_bw=34.0 * _GB,
    interconnect_bw=14.0 * _GB,
)


# -- dollar pricing (the cost-vs-SLO benchmarks) -------------------------

#: On-demand US-East hourly prices (USD) for the paper-era instance
#: types, and the typical spot-market discount the elastic benchmarks
#: assume. Prices feed :func:`run_cost_usd`; they shape *dollars only*,
#: never simulated time or numerics.
EC2_C4_8XLARGE_USD_HOUR = 1.591
EC2_I3_16XLARGE_USD_HOUR = 4.992
SPOT_DISCOUNT = 0.30  # spot price as a fraction of on-demand


def run_cost_usd(
    sim_seconds: float,
    n_machines: float,
    *,
    usd_per_hour: float = EC2_C4_8XLARGE_USD_HOUR,
    spot: bool = False,
) -> float:
    """Dollar cost of ``n_machines`` running for ``sim_seconds``.

    ``n_machines`` may be a fractional machine-count average (elastic
    runs integrate machines-alive over iterations). Per-second
    granularity, as modern EC2 bills.
    """
    if sim_seconds < 0 or n_machines < 0:
        raise ConfigError("sim_seconds and n_machines must be >= 0")
    rate = usd_per_hour * (SPOT_DISCOUNT if spot else 1.0)
    return sim_seconds / 3600.0 * n_machines * rate
