"""Open-loop serving traffic for the simulated hardware plane.

Two pieces the serving plane (:mod:`repro.serve.query`) builds on:

* :class:`ArrivalProcess` -- a seeded description of user traffic. It
  generates a deterministic :class:`ArrivalTrace`: Poisson arrival
  times (exponential inter-arrival gaps at ``rate_qps``), a skewed
  popularity distribution over data rows (``u ** skew`` concentrates
  mass on low row indices -- the "hot rows" the caches should absorb),
  and an ingest/query split. Everything is drawn from one
  ``default_rng(seed)``, so the trace -- and therefore every latency
  percentile downstream -- is a pure function of the process
  parameters.

* :class:`OpenLoopBatcher` -- the open-loop service discipline.
  Arrivals keep coming whether or not the server keeps up (the
  load-testing convention that exposes queueing delay, unlike closed
  loops where slow servers throttle their own offered load). The
  server takes the oldest pending arrival, holds the batch open for
  ``window_ns`` of simulated time to coalesce concurrent arrivals (up
  to ``max_batch``), dispatches, and reports back each batch's service
  time; the batcher accrues per-arrival latency = completion − arrival
  and the shared clock ``t_free`` carries queueing delay forward.

Both are pure simulation-side objects: no numerics, only time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class ArrivalProcess:
    """Seeded open-loop traffic description (see module docstring)."""

    n_arrivals: int
    rate_qps: float = 50_000.0
    seed: int = 0
    skew: float = 3.0
    ingest_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_arrivals < 1:
            raise ConfigError(
                f"n_arrivals must be >= 1, got {self.n_arrivals}"
            )
        if self.rate_qps <= 0:
            raise ConfigError(
                f"rate_qps must be > 0, got {self.rate_qps}"
            )
        if self.skew <= 0:
            raise ConfigError(f"skew must be > 0, got {self.skew}")
        if not 0.0 <= self.ingest_fraction <= 1.0:
            raise ConfigError(
                "ingest_fraction must be in [0, 1], got "
                f"{self.ingest_fraction}"
            )

    def generate(self, n_rows: int) -> ArrivalTrace:
        """Materialize the trace against a dataset of ``n_rows``.

        Draw order (times, rows, ingest flags) is fixed so the same
        seed yields identical times and rows regardless of
        ``ingest_fraction``.
        """
        if n_rows < 1:
            raise ConfigError(f"n_rows must be >= 1, got {n_rows}")
        rng = np.random.default_rng(self.seed)
        gaps = rng.exponential(
            1e9 / self.rate_qps, size=self.n_arrivals
        )
        time_ns = np.cumsum(gaps)
        u = rng.random(self.n_arrivals)
        row = np.minimum(
            (u**self.skew * n_rows).astype(np.int64), n_rows - 1
        )
        is_ingest = rng.random(self.n_arrivals) < self.ingest_fraction
        return ArrivalTrace(
            time_ns=time_ns, row=row, is_ingest=is_ingest
        )


@dataclass(frozen=True)
class ArrivalTrace:
    """A materialized arrival stream: when, which row, query/ingest."""

    time_ns: np.ndarray
    row: np.ndarray
    is_ingest: np.ndarray

    @property
    def n_arrivals(self) -> int:
        return int(self.time_ns.shape[0])


class OpenLoopBatcher:
    """Groups open-loop arrivals into dispatch batches on a shared
    simulated clock (see module docstring).

    Drive it with the two-call protocol::

        while (b := batcher.next_batch()) is not None:
            lo, hi, dispatch_ns = b
            batcher.complete(service_ns_for(lo, hi))

    ``latency_ns[i]`` is then arrival ``i``'s queueing + batching +
    service latency, and ``sim_end_ns`` the clock when the last batch
    drained.
    """

    def __init__(
        self,
        time_ns: np.ndarray,
        *,
        max_batch: int = 256,
        window_ns: float = 50_000.0,
    ) -> None:
        time_ns = np.asarray(time_ns, dtype=np.float64)
        if time_ns.ndim != 1 or time_ns.size == 0:
            raise ConfigError(
                "time_ns must be a non-empty 1-D array"
            )
        if np.any(np.diff(time_ns) < 0):
            raise ConfigError("arrival times must be non-decreasing")
        if max_batch < 1:
            raise ConfigError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        if window_ns < 0:
            raise ConfigError(
                f"window_ns must be >= 0, got {window_ns}"
            )
        self.time_ns = time_ns
        self.max_batch = max_batch
        self.window_ns = float(window_ns)
        self.latency_ns = np.zeros(time_ns.size, dtype=np.float64)
        self.batches: list[tuple[int, int]] = []
        self.sim_end_ns = 0.0
        self._i = 0
        self._t_free = 0.0
        self._pending: tuple[int, int] | None = None
        self._dispatch_ns = 0.0

    def next_batch(self) -> tuple[int, int, float] | None:
        """The next dispatch batch ``(lo, hi, dispatch_ns)`` covering
        arrivals ``lo:hi``, or None when the stream is drained."""
        if self._pending is not None:
            raise ConfigError(
                "next_batch called with a batch in flight; call "
                "complete(service_ns) first"
            )
        if self._i >= self.time_ns.size:
            return None
        lo = self._i
        opened = max(self._t_free, float(self.time_ns[lo]))
        dispatch = opened + self.window_ns
        hi = int(
            np.searchsorted(self.time_ns, dispatch, side="right")
        )
        hi = min(hi, lo + self.max_batch)
        self._pending = (lo, hi)
        self._dispatch_ns = dispatch
        return lo, hi, dispatch

    def complete(self, service_ns: float) -> float:
        """Finish the in-flight batch; returns its completion time."""
        if self._pending is None:
            raise ConfigError(
                "complete called with no batch in flight"
            )
        lo, hi = self._pending
        done = self._dispatch_ns + float(service_ns)
        self.latency_ns[lo:hi] = done - self.time_ns[lo:hi]
        self.batches.append((lo, hi))
        self._t_free = done
        self.sim_end_ns = done
        self._i = hi
        self._pending = None
        return done
