"""Simulated worker threads.

A :class:`SimThread` is the simulation stand-in for one pthread worker.
It carries the thread's NUMA placement (decided by the bind policy), a
private simulated clock, and exact work counters. The engine advances
clocks; algorithms never touch them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simhw.topology import BindPolicy, NumaTopology


@dataclass
class ThreadCounters:
    """Exact per-thread tallies accumulated across an iteration."""

    tasks_run: int = 0
    rows_processed: int = 0
    dist_computations: int = 0
    bytes_local: int = 0
    bytes_remote: int = 0
    steals_local_node: int = 0
    steals_remote_node: int = 0
    queue_probes: int = 0
    lock_wait_ns: float = 0.0

    def merged_with(self, other: "ThreadCounters") -> "ThreadCounters":
        """Element-wise sum of two counter sets."""
        return ThreadCounters(
            tasks_run=self.tasks_run + other.tasks_run,
            rows_processed=self.rows_processed + other.rows_processed,
            dist_computations=self.dist_computations + other.dist_computations,
            bytes_local=self.bytes_local + other.bytes_local,
            bytes_remote=self.bytes_remote + other.bytes_remote,
            steals_local_node=self.steals_local_node + other.steals_local_node,
            steals_remote_node=(
                self.steals_remote_node + other.steals_remote_node
            ),
            queue_probes=self.queue_probes + other.queue_probes,
            lock_wait_ns=self.lock_wait_ns + other.lock_wait_ns,
        )


@dataclass
class SimThread:
    """One simulated worker thread.

    ``node`` is the NUMA node whose memory bank is local to this
    thread. Under ``NUMA_BIND`` it follows the paper's Figure 1 layout;
    under ``OBLIVIOUS`` the OS scattered the thread somewhere -- we
    model that as a deterministic round-robin placement, which is
    *favourable* to the oblivious baseline (a real OS does worse).
    """

    thread_id: int
    node: int
    clock_ns: float = 0.0
    counters: ThreadCounters = field(default_factory=ThreadCounters)
    #: Execution-time multiplier; != 1.0 only while an injected
    #: straggler fault is active (a throttled core, a sick SSD behind
    #: this worker). Scales task + lock time in the engine; never
    #: touched on the fault-free path, so clean runs stay
    #: bit-identical.
    slow_factor: float = 1.0

    def advance(self, ns: float) -> None:
        """Move this thread's private clock forward."""
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative {ns} ns")
        self.clock_ns += ns


def spawn_threads(
    topology: NumaTopology, n_threads: int, policy: BindPolicy
) -> list[SimThread]:
    """Create the iteration's worker threads with their placements.

    NUMA_BIND and CORE_BIND use the paper's block layout (Figure 1);
    OBLIVIOUS places threads round-robin over nodes, modeling an OS
    scheduler with no affinity information.
    """
    threads = []
    for tid in range(n_threads):
        if policy is BindPolicy.OBLIVIOUS:
            node = tid % topology.n_nodes
        else:
            node = topology.node_of_thread(tid, n_threads)
        threads.append(SimThread(thread_id=tid, node=node))
    return threads
