"""Yinyang k-means (Ding et al., ICML 2015) -- the O(nt) competitor.

Related Work positions Yinyang between the two pruning designs this
library ships: it keeps one lower bound per *group* of centroids
(t groups, t = k/10 is "generally optimal"), so memory is O(nt) --
more than MTI's O(n), far less than Elkan's O(nk) -- and its group
filter prunes more than MTI's clause 2/3 while maintaining fewer
bounds than Elkan. The paper's criticism stands for both Yinyang and
Elkan: the bound matrix still grows with n asymptotically.

Exactness contract: like MTI and Elkan, assignments equal unpruned
Lloyd's bit-for-bit (ties aside), enforced by the test suite.

Implementation notes
--------------------
* Centroids are grouped once at initialization by a small Lloyd run
  over the centroids themselves (the standard formulation).
* Per iteration: the **global filter** skips a point when its loosened
  upper bound stays below every group lower bound; the **group
  filter** then evaluates only the groups whose lower bound dipped
  under the (tightened) upper bound.
* ``lb[i, g]`` lower-bounds the distance from point i to every
  centroid of group g *except* i's assigned centroid, maintained via
  min/second-min bookkeeping when a group is evaluated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.convergence import ConvergenceCriteria
from repro.core.distance import euclidean, rows_to_centroids
from repro.core.init import init_centroids
from repro.core.lloyd import lloyd
from repro.errors import DatasetError
from repro.metrics import IterationRecord, RunResult


@dataclass
class YinyangState:
    """Persistent O(nt) pruning state."""

    assignment: np.ndarray  # (n,) int32
    ub: np.ndarray  # (n,)
    lb: np.ndarray  # (n, t) group lower bounds
    group_of: np.ndarray  # (k,) centroid -> group
    groups: list[np.ndarray]  # group -> centroid ids
    sums: np.ndarray  # (k, d)
    counts: np.ndarray  # (k,)

    @property
    def n(self) -> int:
        return self.assignment.shape[0]

    @property
    def t(self) -> int:
        return self.lb.shape[1]


@dataclass
class YinyangIterationResult:
    """Outcome and pruning statistics of one Yinyang iteration."""
    new_centroids: np.ndarray
    n_changed: int
    dist_per_row: np.ndarray
    motion: np.ndarray
    global_filtered: int = 0
    computed: int = 0


def _group_centroids(centroids: np.ndarray, t: int, seed: int) -> np.ndarray:
    """Cluster the centroids into t groups (standard Yinyang setup)."""
    k = centroids.shape[0]
    if t >= k:
        return np.arange(k)
    res = lloyd(
        centroids, t, init="kmeans++", seed=seed,
        criteria=ConvergenceCriteria(max_iters=5),
    )
    return res.assignment.astype(np.int64)


def yinyang_init(
    x: np.ndarray, centroids: np.ndarray, *, t: int | None = None,
    seed: int = 0,
) -> tuple[YinyangState, YinyangIterationResult]:
    """Iteration 0: full pass seeding assignments and group bounds."""
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    k, d = centroids.shape
    if t is None:
        t = max(1, k // 10)
    if not 1 <= t <= k:
        raise DatasetError(f"t={t} must be in [1, k={k}]")

    group_of = _group_centroids(centroids, t, seed)
    groups = [np.nonzero(group_of == g)[0] for g in range(t)]
    # Drop empty groups (possible when centroid-clustering collapses).
    groups = [g for g in groups if g.size]
    t = len(groups)
    group_of = np.empty(k, dtype=np.int64)
    for gi, members in enumerate(groups):
        group_of[members] = gi

    dist = euclidean(x, centroids)
    assign = np.argmin(dist, axis=1).astype(np.int32)
    ub = dist[np.arange(n), assign].copy()
    masked = dist.copy()
    masked[np.arange(n), assign] = np.inf
    lb = np.empty((n, t))
    for gi, members in enumerate(groups):
        lb[:, gi] = masked[:, members].min(axis=1)

    sums = np.zeros((k, d))
    for dim in range(d):
        sums[:, dim] = np.bincount(assign, weights=x[:, dim], minlength=k)
    counts = np.bincount(assign, minlength=k).astype(np.int64)
    state = YinyangState(
        assignment=assign, ub=ub, lb=lb, group_of=group_of,
        groups=groups, sums=sums, counts=counts,
    )
    new_centroids = centroids.copy()
    nz = counts > 0
    new_centroids[nz] = sums[nz] / counts[nz, None]
    return state, YinyangIterationResult(
        new_centroids=new_centroids,
        n_changed=n,
        dist_per_row=np.full(n, k, dtype=np.int32),
        motion=np.zeros(k),
        computed=n * k,
    )


def yinyang_iteration(
    x: np.ndarray,
    centroids: np.ndarray,
    prev_centroids: np.ndarray,
    state: YinyangState,
) -> YinyangIterationResult:
    """One Yinyang-pruned iteration; mutates ``state`` in place."""
    x = np.asarray(x, dtype=np.float64)
    n, d = x.shape
    k = centroids.shape[0]
    if state.n != n:
        raise DatasetError(f"state tracks {state.n} rows, data has {n}")
    t = state.t

    motion = rows_to_centroids(centroids, prev_centroids, np.arange(k))
    group_motion = np.array(
        [motion[members].max() for members in state.groups]
    )
    state.ub += motion[state.assignment]
    state.lb -= group_motion[None, :]

    assign = state.assignment
    old_assign = assign.copy()
    dist_per_row = np.zeros(n, dtype=np.int32)

    lb_min = state.lb.min(axis=1)
    maybe = np.nonzero(state.ub > lb_min)[0]
    computed = 0
    if maybe.size:
        # Tighten and re-apply the global filter.
        tight = rows_to_centroids(x[maybe], centroids, assign[maybe])
        computed += int(maybe.size)
        dist_per_row[maybe] += 1
        state.ub[maybe] = tight
        still = maybe[tight > lb_min[maybe]]

        if still.size:
            m = still.size
            xs = x[still]
            bs = assign[still].copy()
            ubs = state.ub[still].copy()
            lbs = state.lb[still]  # copy (fancy indexing)
            need = lbs < ubs[:, None]  # group filter

            best = bs.copy()
            bestdist = ubs.copy()
            min1 = np.full((m, t), np.inf)
            arg1 = np.full((m, t), -1, dtype=np.int64)
            min2 = np.full((m, t), np.inf)

            for gi, members in enumerate(state.groups):
                rows = np.nonzero(need[:, gi])[0]
                if rows.size == 0:
                    continue
                dmat = euclidean(xs[rows], centroids[members])
                computed += dmat.size
                dist_per_row[still[rows]] += members.size
                order = np.argsort(dmat, axis=1)
                m1 = dmat[np.arange(rows.size), order[:, 0]]
                min1[rows, gi] = m1
                arg1[rows, gi] = members[order[:, 0]]
                if members.size > 1:
                    min2[rows, gi] = dmat[
                        np.arange(rows.size), order[:, 1]
                    ]
                improve = m1 < bestdist[rows]
                best[rows[improve]] = members[
                    order[improve, 0]
                ].astype(np.int32)
                bestdist[rows[improve]] = m1[improve]

            # Refresh evaluated groups' lower bounds, excluding the
            # (possibly new) assigned centroid.
            for gi in range(t):
                rows = np.nonzero(need[:, gi])[0]
                if rows.size == 0:
                    continue
                exclude_best = arg1[rows, gi] == best[rows]
                lbs[rows, gi] = np.where(
                    exclude_best, min2[rows, gi], min1[rows, gi]
                )

            # A reassigned point's OLD centroid re-enters its group's
            # "others" set: that group's bound must drop to the old
            # assigned distance (the tightened ub) or it would overstate
            # the bound and the next group filter could wrongly skip a
            # move back (Ding et al.'s lb update rule).
            moved = np.nonzero(best != bs)[0]
            if moved.size:
                old_groups = state.group_of[bs[moved]]
                np.minimum.at(
                    lbs, (moved, old_groups), ubs[moved]
                )

            state.lb[still] = lbs
            state.ub[still] = bestdist
            assign[still] = best

    changed = np.nonzero(assign != old_assign)[0]
    n_changed = int(changed.size)
    if n_changed:
        xc = x[changed]
        frm = old_assign[changed]
        to = assign[changed]
        for dim in range(d):
            state.sums[:, dim] -= np.bincount(
                frm, weights=xc[:, dim], minlength=k
            )
            state.sums[:, dim] += np.bincount(
                to, weights=xc[:, dim], minlength=k
            )
        state.counts -= np.bincount(frm, minlength=k)
        state.counts += np.bincount(to, minlength=k)

    new_centroids = centroids.copy()
    nz = state.counts > 0
    new_centroids[nz] = state.sums[nz] / state.counts[nz, None]

    return YinyangIterationResult(
        new_centroids=new_centroids,
        n_changed=n_changed,
        dist_per_row=dist_per_row,
        motion=motion,
        global_filtered=int(n - maybe.size),
        computed=computed,
    )


def yinyang_kmeans(
    x: np.ndarray,
    k: int,
    *,
    t: int | None = None,
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
) -> RunResult:
    """Run Yinyang k-means to convergence (exact, O(nt) memory)."""
    x = np.asarray(x, dtype=np.float64)
    crit = criteria or ConvergenceCriteria()
    if isinstance(init, np.ndarray):
        c0 = np.array(init, dtype=np.float64, copy=True)
    else:
        c0 = init_centroids(x, k, init, seed=seed)
    state, res = yinyang_init(x, c0, t=t, seed=seed)
    prev, cur = c0, res.new_centroids
    records = [
        IterationRecord(
            iteration=0, sim_ns=0.0, n_changed=res.n_changed,
            dist_computations=res.computed,
        )
    ]
    converged = False
    for it in range(1, crit.max_iters):
        r = yinyang_iteration(x, cur, prev, state)
        records.append(
            IterationRecord(
                iteration=it, sim_ns=0.0, n_changed=r.n_changed,
                dist_computations=r.computed,
                clause1_rows=r.global_filtered,
            )
        )
        prev, cur = cur, r.new_centroids
        if crit.converged(x.shape[0], r.n_changed, r.motion):
            converged = True
            break

    dist = rows_to_centroids(x, cur, state.assignment)
    n_bytes = state.lb.nbytes + state.ub.nbytes
    return RunResult(
        algorithm="yinyang",
        centroids=cur,
        assignment=state.assignment.copy(),
        iterations=len(records),
        converged=converged,
        inertia=float((dist**2).sum()),
        records=records,
        memory_breakdown={"yinyang_bounds": n_bytes},
        params={
            "n": x.shape[0], "d": x.shape[1], "k": k, "t": state.t,
        },
    )


class YinyangMM:
    """Yinyang k-means as an MM algorithm.

    Iteration 0 is the seeding pass (:func:`yinyang_init`, every row
    touched); later iterations run the pruned
    :func:`yinyang_iteration`, whose ``dist_per_row`` feeds straight
    into the hardware plane -- and whose zero rows become real I/O
    savings on the SEM backend via ``needs_data``. The accumulator
    payload is the incrementally-maintained per-cluster sums/counts.
    Numerics replay :func:`yinyang_kmeans` exactly (bit-identical,
    including iteration counts).
    """

    name = "yinyang"

    def __init__(
        self,
        x: np.ndarray,
        k: int,
        *,
        t: int | None = None,
        init: str | np.ndarray = "random",
        seed: int = 0,
        criteria: ConvergenceCriteria | None = None,
    ) -> None:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DatasetError(f"x must be 2-D, got shape {x.shape}")
        if k > x.shape[0]:
            raise DatasetError(
                f"k={k} clusters cannot exceed the n={x.shape[0]} "
                "data rows"
            )
        self.x = x
        self.n_rows, self.d = x.shape
        self.k = k
        self.t_requested = t
        self.seed = seed
        self.crit = criteria or ConvergenceCriteria()
        self.max_iters = self.crit.max_iters
        if isinstance(init, np.ndarray):
            self._centroids0 = np.array(init, dtype=np.float64,
                                        copy=True)
        else:
            self._centroids0 = init_centroids(x, k, init, seed=seed)
        self.reduction_slots = k
        # Bounds matrix + ub + assignment; refined to the actual t
        # after iteration 0 (empty groups may collapse).
        t_est = t if t is not None else max(1, k // 10)
        self.state_bytes_per_row = 4 + 8 * (1 + t_est)
        self.reset()

    def reset(self) -> None:
        self.state: YinyangState | None = None
        self.prev = self._centroids0
        self.cur = self._centroids0.copy()
        self.iteration = 0
        self._last: YinyangIterationResult | None = None

    def majorize(self):
        from repro.runtime.mm import MMStep

        n = self.n_rows
        if self.state is None:
            self.state, r = yinyang_init(
                self.x, self.cur, t=self.t_requested, seed=self.seed,
            )
            self.state_bytes_per_row = 4 + 8 * (1 + self.state.t)
            needs_data = np.ones(n, dtype=bool)
        else:
            r = yinyang_iteration(
                self.x, self.cur, self.prev, self.state
            )
            needs_data = r.dist_per_row > 0
        self.prev, self.cur = self.cur, r.new_centroids
        self._last = r
        self.iteration += 1
        return MMStep(
            dist_per_row=r.dist_per_row,
            needs_data=needs_data,
            n_changed=r.n_changed,
            payload={
                "sums": self.state.sums.copy(),
                "counts": self.state.counts.astype(np.float64),
            },
            motion=r.motion,
            clause1_rows=r.global_filtered,
        )

    def minimize(self, payload: dict[str, np.ndarray]) -> None:
        """No-op: :func:`yinyang_iteration` installs the centroids
        from the same sums/counts (bit-identical divide)."""

    def converged(self) -> bool:
        # The seeding pass never converges (the legacy loop only
        # checks from the first pruned iteration onward).
        if self._last is None or self.iteration <= 1:
            return False
        return self.crit.converged(
            self.n_rows, self._last.n_changed, self._last.motion
        )

    def export_state(self) -> dict:
        if self.state is None:
            raise DatasetError(
                "yinyang state not initialized; nothing to export"
            )
        return {
            "iteration": self.iteration,
            "cur": self.cur,
            "prev": self.prev,
            "assignment": self.state.assignment,
            "ub": self.state.ub,
            "lb": self.state.lb,
            "group_of": self.state.group_of,
            "sums": self.state.sums,
            "counts": self.state.counts,
        }

    def restore_state(self, snap: dict) -> None:
        self.iteration = int(snap["iteration"])
        self.cur = np.array(snap["cur"], dtype=np.float64)
        self.prev = np.array(snap["prev"], dtype=np.float64)
        lb = np.array(snap["lb"], dtype=np.float64)
        group_of = np.array(snap["group_of"], dtype=np.int64)
        t = lb.shape[1]
        groups = [np.nonzero(group_of == g)[0] for g in range(t)]
        self.state = YinyangState(
            assignment=np.array(snap["assignment"], dtype=np.int32),
            ub=np.array(snap["ub"], dtype=np.float64),
            lb=lb,
            group_of=group_of,
            groups=groups,
            sums=np.array(snap["sums"], dtype=np.float64),
            counts=np.array(snap["counts"], dtype=np.int64),
        )
        self.state_bytes_per_row = 4 + 8 * (1 + t)
        self._last = None

    @property
    def model_array(self) -> np.ndarray:
        return self.cur

    def result(self, loop_result, *, memory_breakdown=None,
               extra_params=None):
        assert self.state is not None
        dist = rows_to_centroids(self.x, self.cur,
                                 self.state.assignment)
        breakdown = dict(memory_breakdown or {})
        breakdown["yinyang_bounds"] = (
            self.state.lb.nbytes + self.state.ub.nbytes
        )
        return loop_result.as_run_result(
            algorithm="mm-yinyang",
            centroids=self.cur,
            assignment=self.state.assignment.copy(),
            inertia=float((dist**2).sum()),
            memory_breakdown=breakdown,
            params={
                "n": self.n_rows, "d": self.d, "k": self.k,
                "t": self.state.t, "algorithm": self.name,
                **(extra_params or {}),
            },
        )
