"""The MM algorithm registry: names -> MM plane constructors.

This is the clusterNOR move made concrete: every algorithm here is an
:class:`~repro.runtime.mm.MMAlgorithm`, so the drivers, CLI and
benchmarks pick a *(algorithm, backend)* pair independently --
``run_algorithm("gmm", backend="sem", ...)`` gets SAFS, async I/O,
checkpoints, fault recovery and the observer bus without the GMM code
knowing any of it exists.

knn and agglomerative stay outside the frame deliberately: brute/
pruned kNN's per-row phase produces a *top-k merge*, not an additive
reduction (the MM contract), and agglomerative clustering is a
sequence of n-1 inherently serial merge decisions with no per-row
majorize phase at all. They keep their standalone entry points.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ConfigError
from repro.metrics import RunResult
from repro.runtime.mm import KmeansMM, MMAlgorithm, run_mm

from repro.extensions.gmm import GmmMM
from repro.extensions.semisupervised import SemisupervisedMM
from repro.extensions.spherical import SphericalMM
from repro.extensions.yinyang import YinyangMM
from repro.serve.ingest import MiniBatchMM

MM_ALGORITHMS: dict[str, type] = {
    "kmeans": KmeansMM,
    "gmm": GmmMM,
    "spherical": SphericalMM,
    "semisupervised": SemisupervisedMM,
    "yinyang": YinyangMM,
    "minibatch": MiniBatchMM,
}


def make_mm_algorithm(
    name: str,
    x: np.ndarray,
    k: int,
    *,
    labels: np.ndarray | None = None,
    **kwargs: Any,
) -> MMAlgorithm:
    """Construct a registered MM algorithm over ``(x, k)``.

    ``labels`` is required by (and only by) ``semisupervised``.
    Remaining kwargs go to the algorithm's constructor (``init``,
    ``seed``, ``criteria``, GMM's ``tol``/``var_floor``, yinyang's
    ``t``, ...).
    """
    if name not in MM_ALGORITHMS:
        raise ConfigError(
            f"unknown MM algorithm {name!r}; choose from "
            f"{sorted(MM_ALGORITHMS)}"
        )
    cls = MM_ALGORITHMS[name]
    if name == "semisupervised":
        if labels is None:
            raise ConfigError(
                "semisupervised requires labels (length-n ints in "
                "[0, k) or -1)"
            )
        return cls(x, k, labels, **kwargs)
    if labels is not None:
        raise ConfigError(
            f"{name!r} does not take labels (only semisupervised does)"
        )
    return cls(x, k, **kwargs)


def run_algorithm(
    name: str,
    x: np.ndarray,
    k: int,
    *,
    backend: str = "inmemory",
    labels: np.ndarray | None = None,
    algorithm_kwargs: dict | None = None,
    **backend_kwargs: Any,
) -> RunResult:
    """One-call dispatch: build the named algorithm, run it on the
    named backend (``inmemory`` | ``sem`` | ``distributed``).

    ``mem``/``mem_budget_bytes`` in the backend kwargs are resolved
    *before* construction so the algorithm's internal workspaces bind
    to the same manager the backend runs under.
    """
    from repro.drivers.common import resolve_memory_manager
    from repro.mem import use_manager

    manager = resolve_memory_manager(
        backend_kwargs.pop("mem", None),
        backend_kwargs.pop("mem_budget_bytes", None),
    )
    with use_manager(manager):
        algorithm = make_mm_algorithm(
            name, x, k, labels=labels, **(algorithm_kwargs or {})
        )
    return run_mm(algorithm, backend, mem=manager, **backend_kwargs)
