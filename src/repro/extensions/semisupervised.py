"""Semi-supervised k-means++ (Yoder & Priebe, 2016).

A Section 9 extension target. A subset of points carries class labels
in ``0..k-1``; unlabeled points carry ``-1``. Two changes to standard
k-means++/Lloyd's:

* **seeding** -- each labeled class seeds its cluster at the labeled
  mean; the remaining clusters (classes with no labels) are seeded by
  the usual D^2-weighted draw against the already-placed seeds;
* **iteration** -- labeled points keep their label's cluster, so they
  anchor the centroid they voted for; only unlabeled points move.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import ConvergenceCriteria
from repro.core.distance import euclidean, nearest_centroid
from repro.errors import ConvergenceError, DatasetError
from repro.metrics import IterationRecord, RunResult


def semisupervised_kmeanspp(
    x: np.ndarray,
    k: int,
    labels: np.ndarray,
    *,
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
) -> RunResult:
    """Seeded k-means with label anchoring.

    Parameters
    ----------
    labels:
        Length-n int array: a class in ``[0, k)`` for labeled points,
        ``-1`` for unlabeled ones. At least one point must be labeled;
        fully-labeled input degenerates to computing class means.
    """
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    if labels.shape != (x.shape[0],):
        raise DatasetError(
            f"labels shape {labels.shape} != ({x.shape[0]},)"
        )
    if labels.max(initial=-1) >= k:
        raise DatasetError("labels must lie in [0, k) or be -1")
    if not (labels >= 0).any():
        raise ConvergenceError(
            "semisupervised_kmeanspp needs at least one labeled point"
        )
    crit = criteria or ConvergenceCriteria()
    n, d = x.shape
    rng = np.random.default_rng(seed)

    # --- seeding ------------------------------------------------------
    centroids = np.zeros((k, d))
    seeded = np.zeros(k, dtype=bool)
    for c in range(k):
        members = x[labels == c]
        if members.shape[0]:
            centroids[c] = members.mean(axis=0)
            seeded[c] = True
    # D^2 draw for unseeded clusters against everything placed so far.
    placed = centroids[seeded]
    if placed.shape[0] == 0:  # unreachable given the check above
        raise ConvergenceError("no labeled seeds")
    d2 = euclidean(x, placed).min(axis=1) ** 2
    for c in np.nonzero(~seeded)[0]:
        total = d2.sum()
        idx = (
            int(rng.choice(n, p=d2 / total))
            if total > 0
            else int(rng.integers(0, n))
        )
        centroids[c] = x[idx]
        new_d = euclidean(x, x[idx : idx + 1])[:, 0] ** 2
        np.minimum(d2, new_d, out=d2)

    # --- anchored Lloyd's ---------------------------------------------
    anchored = labels >= 0
    assign = np.full(n, -1, dtype=np.int32)
    records: list[IterationRecord] = []
    converged = False
    mindist = np.zeros(n)
    for it in range(crit.max_iters):
        new_assign, mindist = nearest_centroid(x, centroids)
        new_assign[anchored] = labels[anchored]
        n_changed = int(np.count_nonzero(new_assign != assign))
        assign = new_assign
        prev = centroids
        sums = np.zeros((k, d))
        for dim in range(d):
            sums[:, dim] = np.bincount(
                assign, weights=x[:, dim], minlength=k
            )
        counts = np.bincount(assign, minlength=k)
        centroids = prev.copy()
        nz = counts > 0
        centroids[nz] = sums[nz] / counts[nz, None]
        records.append(
            IterationRecord(
                iteration=it, sim_ns=0.0, n_changed=n_changed,
                dist_computations=n * k,
            )
        )
        if crit.converged(n, n_changed):
            converged = True
            break

    return RunResult(
        algorithm="semisupervised-kmeans++",
        centroids=centroids,
        assignment=assign,
        iterations=len(records),
        converged=converged,
        inertia=float((mindist[~anchored] ** 2).sum()),
        records=records,
        params={
            "n": n, "d": d, "k": k,
            "n_labeled": int(anchored.sum()),
        },
    )
