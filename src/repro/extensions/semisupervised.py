"""Semi-supervised k-means++ (Yoder & Priebe, 2016).

A Section 9 extension target. A subset of points carries class labels
in ``0..k-1``; unlabeled points carry ``-1``. Two changes to standard
k-means++/Lloyd's:

* **seeding** -- each labeled class seeds its cluster at the labeled
  mean; the remaining clusters (classes with no labels) are seeded by
  the usual D^2-weighted draw against the already-placed seeds;
* **iteration** -- labeled points keep their label's cluster, so they
  anchor the centroid they voted for; only unlabeled points move.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import ConvergenceCriteria
from repro.core.distance import euclidean, nearest_centroid
from repro.errors import ConvergenceError, DatasetError
from repro.metrics import IterationRecord, RunResult


def _validate_labels(x: np.ndarray, k: int, labels: np.ndarray) -> None:
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    if labels.shape != (x.shape[0],):
        raise DatasetError(
            f"labels shape {labels.shape} != ({x.shape[0]},)"
        )
    if labels.max(initial=-1) >= k:
        raise DatasetError("labels must lie in [0, k) or be -1")
    if not (labels >= 0).any():
        raise ConvergenceError(
            "semisupervised_kmeanspp needs at least one labeled point"
        )


def _seed_centroids(
    x: np.ndarray, k: int, labels: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Labeled class means first, then D^2-weighted draws for the
    clusters no label covers."""
    n, d = x.shape
    centroids = np.zeros((k, d))
    seeded = np.zeros(k, dtype=bool)
    for c in range(k):
        members = x[labels == c]
        if members.shape[0]:
            centroids[c] = members.mean(axis=0)
            seeded[c] = True
    # D^2 draw for unseeded clusters against everything placed so far.
    placed = centroids[seeded]
    if placed.shape[0] == 0:  # unreachable given _validate_labels
        raise ConvergenceError("no labeled seeds")
    d2 = euclidean(x, placed).min(axis=1) ** 2
    for c in np.nonzero(~seeded)[0]:
        total = d2.sum()
        idx = (
            int(rng.choice(n, p=d2 / total))
            if total > 0
            else int(rng.integers(0, n))
        )
        centroids[c] = x[idx]
        new_d = euclidean(x, x[idx : idx + 1])[:, 0] ** 2
        np.minimum(d2, new_d, out=d2)
    return centroids


def semisupervised_kmeanspp(
    x: np.ndarray,
    k: int,
    labels: np.ndarray,
    *,
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
) -> RunResult:
    """Seeded k-means with label anchoring.

    Parameters
    ----------
    labels:
        Length-n int array: a class in ``[0, k)`` for labeled points,
        ``-1`` for unlabeled ones. At least one point must be labeled;
        fully-labeled input degenerates to computing class means.
    """
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    _validate_labels(x, k, labels)
    crit = criteria or ConvergenceCriteria()
    n, d = x.shape
    rng = np.random.default_rng(seed)
    centroids = _seed_centroids(x, k, labels, rng)

    # --- anchored Lloyd's ---------------------------------------------
    anchored = labels >= 0
    assign = np.full(n, -1, dtype=np.int32)
    records: list[IterationRecord] = []
    converged = False
    mindist = np.zeros(n)
    for it in range(crit.max_iters):
        new_assign, mindist = nearest_centroid(x, centroids)
        new_assign[anchored] = labels[anchored]
        n_changed = int(np.count_nonzero(new_assign != assign))
        assign = new_assign
        prev = centroids
        sums = np.zeros((k, d))
        for dim in range(d):
            sums[:, dim] = np.bincount(
                assign, weights=x[:, dim], minlength=k
            )
        counts = np.bincount(assign, minlength=k)
        centroids = prev.copy()
        nz = counts > 0
        centroids[nz] = sums[nz] / counts[nz, None]
        records.append(
            IterationRecord(
                iteration=it, sim_ns=0.0, n_changed=n_changed,
                dist_computations=n * k,
            )
        )
        if crit.converged(n, n_changed):
            converged = True
            break

    return RunResult(
        algorithm="semisupervised-kmeans++",
        centroids=centroids,
        assignment=assign,
        iterations=len(records),
        converged=converged,
        inertia=float((mindist[~anchored] ** 2).sum()),
        records=records,
        params={
            "n": n, "d": d, "k": k,
            "n_labeled": int(anchored.sum()),
        },
    )


class SemisupervisedMM:
    """Seeded, label-anchored k-means as an MM algorithm.

    *Majorize*: nearest-centroid assignment with anchored labels plus
    per-cluster sums/counts (the additive accumulator). *Minimize*:
    divide on the non-empty clusters. Replays
    :func:`semisupervised_kmeanspp` operation for operation
    (bit-identical, same ``seed``).
    """

    name = "semisupervised"

    def __init__(
        self,
        x: np.ndarray,
        k: int,
        labels: np.ndarray,
        *,
        seed: int = 0,
        criteria: ConvergenceCriteria | None = None,
    ) -> None:
        x = np.asarray(x, dtype=np.float64)
        labels = np.asarray(labels)
        _validate_labels(x, k, labels)
        self.x = x
        self.labels = labels
        self.n_rows, self.d = x.shape
        self.k = k
        self.crit = criteria or ConvergenceCriteria()
        self.max_iters = self.crit.max_iters
        self.anchored = labels >= 0
        rng = np.random.default_rng(seed)
        self._centroids0 = _seed_centroids(x, k, labels, rng)
        self.reduction_slots = k
        self.state_bytes_per_row = 12  # int32 assignment + f64 mindist
        self.reset()

    def reset(self) -> None:
        self.centroids = self._centroids0.copy()
        self.assignment = np.full(self.n_rows, -1, dtype=np.int32)
        self.mindist = np.zeros(self.n_rows)
        self.iteration = 0
        self._last_n_changed: int | None = None

    def majorize(self):
        from repro.runtime.mm import MMStep

        n, k, d = self.n_rows, self.k, self.d
        new_assign, self.mindist = nearest_centroid(
            self.x, self.centroids
        )
        new_assign[self.anchored] = self.labels[self.anchored]
        n_changed = int(
            np.count_nonzero(new_assign != self.assignment)
        )
        self.assignment = new_assign
        self._last_n_changed = n_changed
        sums = np.zeros((k, d))
        for dim in range(d):
            sums[:, dim] = np.bincount(
                self.assignment, weights=self.x[:, dim], minlength=k
            )
        counts = np.bincount(self.assignment, minlength=k)
        return MMStep(
            dist_per_row=np.full(n, k, dtype=np.int32),
            needs_data=np.ones(n, dtype=bool),
            n_changed=n_changed,
            payload={
                "sums": sums,
                "counts": counts.astype(np.float64),
            },
        )

    def minimize(self, payload: dict[str, np.ndarray]) -> None:
        sums, counts = payload["sums"], payload["counts"]
        centroids = self.centroids.copy()
        nz = counts > 0
        # Exact-integer f64 counts: the divide is bit-identical to the
        # legacy int64 divide.
        centroids[nz] = sums[nz] / counts[nz, None]
        self.centroids = centroids
        self.iteration += 1

    def converged(self) -> bool:
        if self._last_n_changed is None:
            return False
        return self.crit.converged(self.n_rows, self._last_n_changed)

    def export_state(self) -> dict:
        return {
            "iteration": self.iteration,
            "centroids": self.centroids,
            "assignment": self.assignment,
            "mindist": self.mindist,
        }

    def restore_state(self, snap: dict) -> None:
        self.iteration = int(snap["iteration"])
        self.centroids = np.array(snap["centroids"], dtype=np.float64)
        self.assignment = np.array(snap["assignment"], dtype=np.int32)
        self.mindist = np.array(snap["mindist"], dtype=np.float64)
        self._last_n_changed = None

    @property
    def model_array(self) -> np.ndarray:
        return self.centroids

    def result(self, loop_result, *, memory_breakdown=None,
               extra_params=None):
        return loop_result.as_run_result(
            algorithm="mm-semisupervised",
            centroids=self.centroids,
            assignment=self.assignment.copy(),
            inertia=float(
                (self.mindist[~self.anchored] ** 2).sum()
            ),
            memory_breakdown=memory_breakdown,
            params={
                "n": self.n_rows, "d": self.d, "k": self.k,
                "n_labeled": int(self.anchored.sum()),
                "algorithm": self.name,
                **(extra_params or {}),
            },
        )
