"""Spherical k-means: cosine-similarity clustering on the unit sphere.

The first Section 9 extension target (Hornik et al., JSS 2012). Rows
are L2-normalized; a point belongs to the centroid with the largest
dot product; centroids are the normalized means of their members.
Maximizing total cosine similarity is equivalent to Lloyd's on the
sphere, so the same super-phase structure (and a dot-product analogue
of per-thread accumulation) applies.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import ConvergenceCriteria
from repro.core.init import init_centroids
from repro.errors import ConvergenceError, DatasetError
from repro.metrics import IterationRecord, RunResult


def _normalize_rows(x: np.ndarray, name: str) -> np.ndarray:
    norms = np.sqrt(np.einsum("ij,ij->i", x, x))
    if np.any(norms == 0):
        raise DatasetError(
            f"{name} contains zero vectors; spherical k-means is "
            "undefined for them"
        )
    return x / norms[:, None]


def spherical_kmeans(
    x: np.ndarray,
    k: int,
    *,
    init: str | np.ndarray = "kmeans++",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
) -> RunResult:
    """Cluster directions: k-means under cosine similarity.

    Returns a :class:`RunResult` whose ``inertia`` field holds the
    *negative total cosine similarity* (so that, like Euclidean
    inertia, smaller is better and it is non-increasing).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    if k < 1 or k > x.shape[0]:
        raise ConvergenceError(f"k={k} invalid for n={x.shape[0]}")
    crit = criteria or ConvergenceCriteria()
    xn = _normalize_rows(x, "x")

    if isinstance(init, np.ndarray):
        centroids = _normalize_rows(
            np.array(init, dtype=np.float64, copy=True), "init"
        )
    else:
        centroids = _normalize_rows(
            init_centroids(xn, k, init, seed=seed), "init"
        )

    n = xn.shape[0]
    assign = np.full(n, -1, dtype=np.int32)
    records: list[IterationRecord] = []
    converged = False
    sims = np.zeros(n)

    for it in range(crit.max_iters):
        dots = xn @ centroids.T  # cosine similarity
        new_assign = np.argmax(dots, axis=1).astype(np.int32)
        sims = dots[np.arange(n), new_assign]
        n_changed = int(np.count_nonzero(new_assign != assign))
        assign = new_assign
        prev = centroids
        sums = np.zeros_like(centroids)
        for dim in range(xn.shape[1]):
            sums[:, dim] = np.bincount(
                assign, weights=xn[:, dim], minlength=k
            )
        norms = np.sqrt(np.einsum("ij,ij->i", sums, sums))
        centroids = prev.copy()
        nonzero = norms > 1e-12
        centroids[nonzero] = sums[nonzero] / norms[nonzero, None]
        records.append(
            IterationRecord(
                iteration=it,
                sim_ns=0.0,
                n_changed=n_changed,
                dist_computations=n * k,
            )
        )
        if crit.converged(n, n_changed):
            converged = True
            break

    return RunResult(
        algorithm="spherical-kmeans",
        centroids=centroids,
        assignment=assign,
        iterations=len(records),
        converged=converged,
        inertia=float(-sims.sum()),
        records=records,
        params={"n": n, "d": x.shape[1], "k": k, "metric": "cosine"},
    )
