"""Spherical k-means: cosine-similarity clustering on the unit sphere.

The first Section 9 extension target (Hornik et al., JSS 2012). Rows
are L2-normalized; a point belongs to the centroid with the largest
dot product; centroids are the normalized means of their members.
Maximizing total cosine similarity is equivalent to Lloyd's on the
sphere, so the same super-phase structure (and a dot-product analogue
of per-thread accumulation) applies.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import ConvergenceCriteria
from repro.core.init import init_centroids
from repro.errors import ConvergenceError, DatasetError
from repro.metrics import IterationRecord, RunResult


def _normalize_rows(x: np.ndarray, name: str) -> np.ndarray:
    norms = np.sqrt(np.einsum("ij,ij->i", x, x))
    if np.any(norms == 0):
        raise DatasetError(
            f"{name} contains zero vectors; spherical k-means is "
            "undefined for them"
        )
    return x / norms[:, None]


def spherical_kmeans(
    x: np.ndarray,
    k: int,
    *,
    init: str | np.ndarray = "kmeans++",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
) -> RunResult:
    """Cluster directions: k-means under cosine similarity.

    Returns a :class:`RunResult` whose ``inertia`` field holds the
    *negative total cosine similarity* (so that, like Euclidean
    inertia, smaller is better and it is non-increasing).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    if k < 1 or k > x.shape[0]:
        raise ConvergenceError(f"k={k} invalid for n={x.shape[0]}")
    crit = criteria or ConvergenceCriteria()
    xn = _normalize_rows(x, "x")

    if isinstance(init, np.ndarray):
        centroids = _normalize_rows(
            np.array(init, dtype=np.float64, copy=True), "init"
        )
    else:
        centroids = _normalize_rows(
            init_centroids(xn, k, init, seed=seed), "init"
        )

    n = xn.shape[0]
    assign = np.full(n, -1, dtype=np.int32)
    records: list[IterationRecord] = []
    converged = False
    sims = np.zeros(n)

    for it in range(crit.max_iters):
        dots = xn @ centroids.T  # cosine similarity
        new_assign = np.argmax(dots, axis=1).astype(np.int32)
        sims = dots[np.arange(n), new_assign]
        n_changed = int(np.count_nonzero(new_assign != assign))
        assign = new_assign
        prev = centroids
        sums = np.zeros_like(centroids)
        for dim in range(xn.shape[1]):
            sums[:, dim] = np.bincount(
                assign, weights=xn[:, dim], minlength=k
            )
        norms = np.sqrt(np.einsum("ij,ij->i", sums, sums))
        centroids = prev.copy()
        nonzero = norms > 1e-12
        centroids[nonzero] = sums[nonzero] / norms[nonzero, None]
        records.append(
            IterationRecord(
                iteration=it,
                sim_ns=0.0,
                n_changed=n_changed,
                dist_computations=n * k,
            )
        )
        if crit.converged(n, n_changed):
            converged = True
            break

    return RunResult(
        algorithm="spherical-kmeans",
        centroids=centroids,
        assignment=assign,
        iterations=len(records),
        converged=converged,
        inertia=float(-sims.sum()),
        records=records,
        params={"n": n, "d": x.shape[1], "k": k, "metric": "cosine"},
    )


class SphericalMM:
    """Spherical k-means as an MM algorithm.

    *Majorize*: dot-product assignment plus per-cluster direction sums
    (the additive accumulator). *Minimize*: renormalize the sums onto
    the unit sphere. Operation-for-operation the same numerics as
    :func:`spherical_kmeans`, so MM runs are bit-identical to the
    standalone loop.
    """

    name = "spherical"

    def __init__(
        self,
        x: np.ndarray,
        k: int,
        *,
        init: str | np.ndarray = "kmeans++",
        seed: int = 0,
        criteria: ConvergenceCriteria | None = None,
    ) -> None:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DatasetError(f"x must be 2-D, got shape {x.shape}")
        if k > x.shape[0]:
            raise DatasetError(
                f"k={k} clusters cannot exceed the n={x.shape[0]} "
                "data rows"
            )
        if k < 1:
            raise ConvergenceError(f"k={k} invalid for n={x.shape[0]}")
        self.crit = criteria or ConvergenceCriteria()
        self.max_iters = self.crit.max_iters
        self.xn = _normalize_rows(x, "x")
        self.n_rows, self.d = self.xn.shape
        self.k = k
        if isinstance(init, np.ndarray):
            self._centroids0 = _normalize_rows(
                np.array(init, dtype=np.float64, copy=True), "init"
            )
        else:
            self._centroids0 = _normalize_rows(
                init_centroids(self.xn, k, init, seed=seed), "init"
            )
        self.reduction_slots = k
        self.state_bytes_per_row = 12  # int32 assignment + f64 sim
        self.reset()

    def reset(self) -> None:
        self.centroids = self._centroids0.copy()
        self.assignment = np.full(self.n_rows, -1, dtype=np.int32)
        self.sims = np.zeros(self.n_rows)
        self.iteration = 0
        self._last_n_changed: int | None = None

    def majorize(self):
        from repro.runtime.mm import MMStep

        n, k = self.n_rows, self.k
        dots = self.xn @ self.centroids.T
        new_assign = np.argmax(dots, axis=1).astype(np.int32)
        self.sims = dots[np.arange(n), new_assign]
        n_changed = int(
            np.count_nonzero(new_assign != self.assignment)
        )
        self.assignment = new_assign
        self._last_n_changed = n_changed
        sums = np.zeros_like(self.centroids)
        for dim in range(self.d):
            sums[:, dim] = np.bincount(
                self.assignment, weights=self.xn[:, dim], minlength=k
            )
        return MMStep(
            dist_per_row=np.full(n, k, dtype=np.int32),
            needs_data=np.ones(n, dtype=bool),
            n_changed=n_changed,
            payload={"sums": sums},
        )

    def minimize(self, payload: dict[str, np.ndarray]) -> None:
        sums = payload["sums"]
        norms = np.sqrt(np.einsum("ij,ij->i", sums, sums))
        centroids = self.centroids.copy()
        nonzero = norms > 1e-12
        centroids[nonzero] = sums[nonzero] / norms[nonzero, None]
        self.centroids = centroids
        self.iteration += 1

    def converged(self) -> bool:
        if self._last_n_changed is None:
            return False
        return self.crit.converged(self.n_rows, self._last_n_changed)

    def export_state(self) -> dict:
        return {
            "iteration": self.iteration,
            "centroids": self.centroids,
            "assignment": self.assignment,
            "sims": self.sims,
        }

    def restore_state(self, snap: dict) -> None:
        self.iteration = int(snap["iteration"])
        self.centroids = np.array(snap["centroids"], dtype=np.float64)
        self.assignment = np.array(snap["assignment"], dtype=np.int32)
        self.sims = np.array(snap["sims"], dtype=np.float64)
        self._last_n_changed = None

    @property
    def model_array(self) -> np.ndarray:
        return self.centroids

    def result(self, loop_result, *, memory_breakdown=None,
               extra_params=None):
        return loop_result.as_run_result(
            algorithm="mm-spherical",
            centroids=self.centroids,
            assignment=self.assignment.copy(),
            inertia=float(-self.sims.sum()),
            memory_breakdown=memory_breakdown,
            params={
                "n": self.n_rows, "d": self.d, "k": self.k,
                "metric": "cosine", "algorithm": self.name,
                **(extra_params or {}),
            },
        )
