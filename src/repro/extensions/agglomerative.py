"""Agglomerative (hierarchical) clustering -- Section 9's list.

Classic bottom-up merging with selectable linkage, implemented with
the Lance-Williams update so all three linkages share one O(n^2)-memory
/ O(n^2 log n)-time engine (fine at the library's reproduction scale;
the paper's plan is to port exactly this kind of kernel onto the NUMA
substrate later).

Supported linkages: ``single``, ``complete``, ``average``, ``ward``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distance import euclidean
from repro.errors import ConvergenceError, DatasetError

_LINKAGES = ("single", "complete", "average", "ward")


@dataclass
class AgglomerativeResult:
    """Flat cut of the dendrogram plus the merge history."""

    assignment: np.ndarray  # (n,) int32 labels in [0, n_clusters)
    n_clusters: int
    #: (n - n_clusters, 3): [cluster_a, cluster_b, merge_distance] in
    #: merge order, with original point ids < n and internal nodes >= n.
    merges: np.ndarray
    linkage: str


def _lance_williams(
    linkage: str,
    d_ai: np.ndarray,
    d_bi: np.ndarray,
    d_ab: float,
    size_a: int,
    size_b: int,
    sizes: np.ndarray,
) -> np.ndarray:
    """Distance of the merged cluster (a u b) to every other cluster."""
    if linkage == "single":
        return np.minimum(d_ai, d_bi)
    if linkage == "complete":
        return np.maximum(d_ai, d_bi)
    if linkage == "average":
        tot = size_a + size_b
        return (size_a * d_ai + size_b * d_bi) / tot
    # Ward (on squared distances, inputs kept squared by the caller).
    tot = sizes + size_a + size_b
    return (
        (sizes + size_a) * d_ai
        + (sizes + size_b) * d_bi
        - sizes * d_ab
    ) / tot


def agglomerative(
    x: np.ndarray,
    n_clusters: int,
    *,
    linkage: str = "average",
) -> AgglomerativeResult:
    """Cluster bottom-up until ``n_clusters`` remain.

    Examples
    --------
    >>> import numpy as np
    >>> x = np.array([[0.0], [0.1], [5.0], [5.1]])
    >>> res = agglomerative(x, 2, linkage="single")
    >>> res.assignment[0] == res.assignment[1]
    True
    >>> res.assignment[0] != res.assignment[2]
    True
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    n = x.shape[0]
    if not 1 <= n_clusters <= n:
        raise ConvergenceError(
            f"n_clusters={n_clusters} invalid for n={n}"
        )
    if linkage not in _LINKAGES:
        raise ConvergenceError(
            f"linkage must be one of {_LINKAGES}, got {linkage!r}"
        )
    if n > 4000:
        raise DatasetError(
            "agglomerative clustering is O(n^2) memory; cap n at 4000"
        )

    dist = euclidean(x, x)
    if linkage == "ward":
        dist = dist**2
    np.fill_diagonal(dist, np.inf)

    active = np.ones(n, dtype=bool)
    sizes = np.ones(n, dtype=np.int64)
    # node id of the cluster currently living in each slot.
    node_of = np.arange(n, dtype=np.int64)
    next_node = n
    merges = []
    # members[slot] tracks original point ids for the final labeling.
    members: list[list[int]] = [[i] for i in range(n)]

    for _ in range(n - n_clusters):
        # Closest active pair.
        sub = np.where(
            active[:, None] & active[None, :], dist, np.inf
        )
        flat = np.argmin(sub)
        a, b = np.unravel_index(flat, sub.shape)
        if a > b:
            a, b = b, a
        d_ab = dist[a, b]

        other = active.copy()
        other[a] = other[b] = False
        idx = np.nonzero(other)[0]
        new_d = _lance_williams(
            linkage,
            dist[a, idx],
            dist[b, idx],
            d_ab,
            int(sizes[a]),
            int(sizes[b]),
            sizes[idx].astype(np.float64),
        )
        dist[a, idx] = new_d
        dist[idx, a] = new_d
        dist[a, a] = np.inf
        active[b] = False
        sizes[a] += sizes[b]
        members[a].extend(members[b])
        record_d = float(np.sqrt(d_ab)) if linkage == "ward" else float(
            d_ab
        )
        merges.append([node_of[a], node_of[b], record_d])
        node_of[a] = next_node
        next_node += 1

    labels = np.empty(n, dtype=np.int32)
    for label, slot in enumerate(np.nonzero(active)[0]):
        labels[members[slot]] = label
    return AgglomerativeResult(
        assignment=labels,
        n_clusters=n_clusters,
        merges=np.asarray(merges, dtype=np.float64).reshape(-1, 3),
        linkage=linkage,
    )
