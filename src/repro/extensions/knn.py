"""k-nearest-neighbor search (Section 9's "later phases" list).

Blocked brute-force kNN over the library's shared distance kernel,
plus a **triangle-inequality pruned** variant that reuses knor's MTI
machinery: queries are first assigned to a small set of pivots
(cluster centroids); a candidate block whose pivot-to-pivot distance
exceeds the query's current k-th distance plus both radii cannot
contain a closer neighbor and is skipped wholesale. The same
O(n)-state philosophy as MTI: no per-pair bound matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distance import euclidean
from repro.core.lloyd import lloyd
from repro.core.convergence import ConvergenceCriteria
from repro.errors import ConvergenceError, DatasetError


@dataclass
class KnnResult:
    """Neighbor indices/distances plus exact work accounting."""

    indices: np.ndarray  # (nq, k) int64, ascending by distance
    distances: np.ndarray  # (nq, k)
    dist_computations: int
    blocks_pruned: int = 0
    blocks_total: int = 0


def knn_brute(
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    block_rows: int = 8192,
) -> KnnResult:
    """Exact blocked brute-force kNN."""
    data = np.asarray(data, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    if data.ndim != 2 or queries.ndim != 2:
        raise DatasetError("data and queries must be 2-D")
    if data.shape[1] != queries.shape[1]:
        raise DatasetError("dimension mismatch between data and queries")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ConvergenceError(f"k={k} invalid for n={n}")

    nq = queries.shape[0]
    best_d = np.full((nq, k), np.inf)
    best_i = np.full((nq, k), -1, dtype=np.int64)
    computations = 0
    for start in range(0, n, block_rows):
        stop = min(start + block_rows, n)
        dist = euclidean(queries, data[start:stop])
        computations += dist.size
        merged_d = np.concatenate([best_d, dist], axis=1)
        merged_i = np.concatenate(
            [
                best_i,
                np.broadcast_to(
                    np.arange(start, stop), (nq, stop - start)
                ),
            ],
            axis=1,
        )
        sel = np.argpartition(merged_d, k - 1, axis=1)[:, :k]
        rows = np.arange(nq)[:, None]
        best_d = merged_d[rows, sel]
        best_i = merged_i[rows, sel]
    order = np.argsort(best_d, axis=1, kind="stable")
    rows = np.arange(nq)[:, None]
    return KnnResult(
        indices=best_i[rows, order],
        distances=best_d[rows, order],
        dist_computations=computations,
    )


def knn_pruned(
    data: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    n_pivots: int | None = None,
    seed: int = 0,
) -> KnnResult:
    """Exact kNN with triangle-inequality block pruning.

    Data is partitioned into pivot cells (a short k-means run); for a
    query q with current k-th best distance r, a cell with pivot p and
    radius rad can be skipped when ``d(q, p) - rad > r`` -- no point
    inside can beat the current neighbors (triangle inequality, the
    same bound family as MTI's clauses).
    """
    data = np.asarray(data, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    if data.ndim != 2 or queries.ndim != 2:
        raise DatasetError("data and queries must be 2-D")
    if data.shape[1] != queries.shape[1]:
        raise DatasetError("dimension mismatch between data and queries")
    n = data.shape[0]
    if not 1 <= k <= n:
        raise ConvergenceError(f"k={k} invalid for n={n}")
    if n_pivots is None:
        n_pivots = max(1, min(64, int(np.sqrt(n))))
    n_pivots = min(n_pivots, n)

    cells = lloyd(
        data, n_pivots, init="kmeans++", seed=seed,
        criteria=ConvergenceCriteria(max_iters=10),
    )
    pivots = cells.centroids
    member_lists = [
        np.nonzero(cells.assignment == c)[0] for c in range(n_pivots)
    ]
    radii = np.zeros(n_pivots)
    for c, members in enumerate(member_lists):
        if members.size:
            radii[c] = euclidean(
                data[members], pivots[c : c + 1]
            ).max()

    nq = queries.shape[0]
    q_to_pivot = euclidean(queries, pivots)  # (nq, P)
    computations = q_to_pivot.size
    # Visit cells nearest-first so the k-th distance tightens early.
    visit_order = np.argsort(q_to_pivot, axis=1)

    best_d = np.full((nq, k), np.inf)
    best_i = np.full((nq, k), -1, dtype=np.int64)
    blocks_pruned = 0
    blocks_total = 0
    for qi in range(nq):
        kth = np.inf
        for c in visit_order[qi]:
            members = member_lists[c]
            if members.size == 0:
                continue
            blocks_total += 1
            if q_to_pivot[qi, c] - radii[c] > kth:
                blocks_pruned += 1
                continue
            dist = euclidean(
                queries[qi : qi + 1], data[members]
            )[0]
            computations += dist.size
            merged_d = np.concatenate([best_d[qi], dist])
            merged_i = np.concatenate([best_i[qi], members])
            sel = np.argpartition(merged_d, k - 1)[:k]
            best_d[qi] = merged_d[sel]
            best_i[qi] = merged_i[sel]
            kth = best_d[qi].max()
    order = np.argsort(best_d, axis=1, kind="stable")
    rows = np.arange(nq)[:, None]
    return KnnResult(
        indices=best_i[rows, order],
        distances=best_d[rows, order],
        dist_computations=computations,
        blocks_pruned=blocks_pruned,
        blocks_total=blocks_total,
    )
