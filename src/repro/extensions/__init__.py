"""Section 9 extensions and related-work algorithms.

The paper's future-work list starts with "other variants of k-means
like spherical k-means, semi-supervised k-means++", built on the same
NUMA-optimized core; Related Work additionally analyses Yinyang
k-means (Ding et al., ICML 2015), the O(nt)-memory pruning competitor
between MTI's O(n) and Elkan's O(nk). All three are implemented here
on the library's shared kernels so they inherit the exact-numerics
guarantees:

* :func:`spherical_kmeans` -- cosine-similarity k-means on the unit
  sphere (document clustering's workhorse).
* :func:`semisupervised_kmeanspp` -- Yoder & Priebe's seeded
  k-means++: labeled points pin their clusters.
* :func:`yinyang_kmeans` / :class:`YinyangState` -- group-filtered
  triangle-inequality pruning; assignments match Lloyd's exactly, and
  the memory/pruning trade-off slots between MTI and Elkan (see the
  ablation bench).

The "later phases" targets are implemented too:

* :func:`gmm_em` -- diagonal-covariance Gaussian mixtures via EM.
* :func:`knn_brute` / :func:`knn_pruned` -- exact kNN, blocked and
  triangle-inequality block-pruned.
* :func:`agglomerative` -- hierarchical clustering with
  single/complete/average/ward linkage (Lance-Williams).

Each clustering variant above also ships as an MM plane port
(clusterNOR's generalization, see :mod:`repro.runtime.mm`):
:class:`GmmMM`, :class:`SphericalMM`, :class:`SemisupervisedMM` and
:class:`YinyangMM` are bit-identical re-expressions of the standalone
loops that inherit all three execution backends, faults/recovery,
checkpoints and the observer bus, joined by the serving plane's
streaming :class:`~repro.serve.MiniBatchMM`. :data:`MM_ALGORITHMS` /
:func:`make_mm_algorithm` / :func:`run_algorithm` dispatch by name
(kNN and agglomerative stay standalone -- their reductions are not
additive, see :mod:`repro.extensions.registry`).
"""

from repro.extensions.spherical import SphericalMM, spherical_kmeans
from repro.extensions.semisupervised import (
    SemisupervisedMM,
    semisupervised_kmeanspp,
)
from repro.extensions.yinyang import (
    YinyangMM,
    YinyangState,
    yinyang_init,
    yinyang_iteration,
    yinyang_kmeans,
)
from repro.extensions.gmm import GmmMM, GmmResult, gmm_em
from repro.extensions.knn import KnnResult, knn_brute, knn_pruned
from repro.extensions.agglomerative import (
    AgglomerativeResult,
    agglomerative,
)
from repro.extensions.registry import (
    MM_ALGORITHMS,
    make_mm_algorithm,
    run_algorithm,
)

__all__ = [
    "spherical_kmeans",
    "semisupervised_kmeanspp",
    "YinyangState",
    "yinyang_init",
    "yinyang_iteration",
    "yinyang_kmeans",
    "GmmResult",
    "gmm_em",
    "KnnResult",
    "knn_brute",
    "knn_pruned",
    "AgglomerativeResult",
    "agglomerative",
    "GmmMM",
    "SphericalMM",
    "SemisupervisedMM",
    "YinyangMM",
    "MM_ALGORITHMS",
    "make_mm_algorithm",
    "run_algorithm",
]
