"""Gaussian mixture models via EM (Section 9's "later phases" list).

Diagonal-covariance EM, the standard large-scale variant: like Lloyd's
it alternates a per-point phase (responsibilities) with a global
reduction (weighted sums), so it maps onto the same super-phase
structure knor generalizes to -- the per-thread accumulators simply
carry weighted sums and weighted squared sums instead of plain sums.

Numerics follow the usual log-space formulation for stability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.init import init_centroids
from repro.errors import ConvergenceError, DatasetError

_LOG_2PI = float(np.log(2.0 * np.pi))


@dataclass
class GmmResult:
    """Outcome of an EM run."""

    means: np.ndarray  # (k, d)
    variances: np.ndarray  # (k, d) diagonal covariances
    weights: np.ndarray  # (k,) mixing proportions
    responsibilities: np.ndarray  # (n, k)
    log_likelihood: float
    ll_history: list[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False

    @property
    def assignment(self) -> np.ndarray:
        """Hard labels: argmax responsibility."""
        return np.argmax(self.responsibilities, axis=1).astype(np.int32)


def _log_prob(
    x: np.ndarray, means: np.ndarray, variances: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Log of weighted component densities, (n, k)."""
    n, d = x.shape
    k = means.shape[0]
    out = np.empty((n, k))
    for c in range(k):
        var = variances[c]
        diff = x - means[c]
        quad = ((diff**2) / var).sum(axis=1)
        out[:, c] = (
            np.log(weights[c])
            - 0.5 * (d * _LOG_2PI + np.log(var).sum() + quad)
        )
    return out


def gmm_em(
    x: np.ndarray,
    k: int,
    *,
    init: str | np.ndarray = "kmeans++",
    seed: int = 0,
    max_iters: int = 100,
    tol: float = 1e-6,
    var_floor: float = 1e-6,
) -> GmmResult:
    """Fit a k-component diagonal GMM with EM.

    Parameters
    ----------
    init:
        Mean initialization (a :func:`init_centroids` method name or
        an explicit (k, d) array). Variances start at the global
        per-dimension variance; weights uniform.
    tol:
        Converged when the mean log-likelihood improves by less than
        this between iterations.
    var_floor:
        Lower bound on each variance (prevents collapse onto a point).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    n, d = x.shape
    if k < 1 or k > n:
        raise ConvergenceError(f"k={k} invalid for n={n}")
    if max_iters < 1:
        raise ConvergenceError("max_iters must be >= 1")

    if isinstance(init, np.ndarray):
        means = np.array(init, dtype=np.float64, copy=True)
        if means.shape != (k, d):
            raise DatasetError(
                f"init means shape {means.shape} != ({k}, {d})"
            )
    else:
        means = init_centroids(x, k, init, seed=seed)
    variances = np.tile(
        np.maximum(x.var(axis=0), var_floor), (k, 1)
    )
    weights = np.full(k, 1.0 / k)

    ll_history: list[float] = []
    resp = np.zeros((n, k))
    converged = False
    iterations = 0
    for _ in range(max_iters):
        iterations += 1
        # E-step in log space.
        logp = _log_prob(x, means, variances, weights)
        m = logp.max(axis=1, keepdims=True)
        log_norm = m[:, 0] + np.log(
            np.exp(logp - m).sum(axis=1)
        )
        resp = np.exp(logp - log_norm[:, None])
        ll = float(log_norm.mean())
        ll_history.append(ll)

        # M-step: weighted reductions (the super-phase analogue).
        nk = resp.sum(axis=0)  # (k,)
        nk = np.maximum(nk, 1e-12)
        means = (resp.T @ x) / nk[:, None]
        sq = resp.T @ (x**2)
        variances = np.maximum(
            sq / nk[:, None] - means**2, var_floor
        )
        weights = nk / n

        if len(ll_history) >= 2 and (
            ll_history[-1] - ll_history[-2] < tol
        ):
            converged = True
            break

    return GmmResult(
        means=means,
        variances=variances,
        weights=weights,
        responsibilities=resp,
        log_likelihood=ll_history[-1],
        ll_history=ll_history,
        iterations=iterations,
        converged=converged,
    )
