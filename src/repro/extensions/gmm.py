"""Gaussian mixture models via EM (Section 9's "later phases" list).

Diagonal-covariance EM, the standard large-scale variant: like Lloyd's
it alternates a per-point phase (responsibilities) with a global
reduction (weighted sums), so it maps onto the same super-phase
structure knor generalizes to -- the per-thread accumulators simply
carry weighted sums and weighted squared sums instead of plain sums.

Numerics follow the usual log-space formulation for stability.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.init import init_centroids
from repro.errors import ConvergenceError, DatasetError

_LOG_2PI = float(np.log(2.0 * np.pi))


def _check_rows_finite(x: np.ndarray) -> None:
    """Reject NaN/inf cells, naming the offending rows (the loader's
    contract: a non-finite cell poisons every density it touches)."""
    finite = np.isfinite(x).all(axis=1)
    if finite.all():
        return
    bad = np.nonzero(~finite)[0]
    shown = bad[:8].tolist()
    more = f" (+{bad.size - 8} more)" if bad.size > 8 else ""
    raise DatasetError(
        f"gmm: {bad.size} rows contain NaN/inf (rows {shown}{more}); "
        "clean the data before fitting"
    )


def _validate_gmm_inputs(x: np.ndarray, k: int, max_iters: int) -> None:
    n = x.shape[0]
    if k > n:
        raise DatasetError(
            f"k={k} components cannot exceed the n={n} data rows"
        )
    if k < 1:
        raise ConvergenceError(f"k={k} invalid for n={n}")
    if max_iters < 1:
        raise ConvergenceError("max_iters must be >= 1")
    _check_rows_finite(x)


@dataclass
class GmmResult:
    """Outcome of an EM run."""

    means: np.ndarray  # (k, d)
    variances: np.ndarray  # (k, d) diagonal covariances
    weights: np.ndarray  # (k,) mixing proportions
    responsibilities: np.ndarray  # (n, k)
    log_likelihood: float
    ll_history: list[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False

    @property
    def assignment(self) -> np.ndarray:
        """Hard labels: argmax responsibility."""
        return np.argmax(self.responsibilities, axis=1).astype(np.int32)


def _log_prob(
    x: np.ndarray, means: np.ndarray, variances: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Log of weighted component densities, (n, k)."""
    n, d = x.shape
    k = means.shape[0]
    out = np.empty((n, k))
    for c in range(k):
        var = variances[c]
        diff = x - means[c]
        quad = ((diff**2) / var).sum(axis=1)
        out[:, c] = (
            np.log(weights[c])
            - 0.5 * (d * _LOG_2PI + np.log(var).sum() + quad)
        )
    return out


def _init_model(
    x: np.ndarray,
    k: int,
    init: str | np.ndarray,
    seed: int,
    var_floor: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Initial (means, variances, weights), shared by both entry
    points."""
    n, d = x.shape
    if isinstance(init, np.ndarray):
        means = np.array(init, dtype=np.float64, copy=True)
        if means.shape != (k, d):
            raise DatasetError(
                f"init means shape {means.shape} != ({k}, {d})"
            )
    else:
        means = init_centroids(x, k, init, seed=seed)
    variances = np.tile(
        np.maximum(x.var(axis=0), var_floor), (k, 1)
    )
    weights = np.full(k, 1.0 / k)
    return means, variances, weights


def gmm_em(
    x: np.ndarray,
    k: int,
    *,
    init: str | np.ndarray = "kmeans++",
    seed: int = 0,
    max_iters: int = 100,
    tol: float = 1e-6,
    var_floor: float = 1e-6,
) -> GmmResult:
    """Fit a k-component diagonal GMM with EM.

    Parameters
    ----------
    init:
        Mean initialization (a :func:`init_centroids` method name or
        an explicit (k, d) array). Variances start at the global
        per-dimension variance; weights uniform.
    tol:
        Converged when the mean log-likelihood improves by less than
        this between iterations.
    var_floor:
        Lower bound on each variance (prevents collapse onto a point).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    n, d = x.shape
    _validate_gmm_inputs(x, k, max_iters)

    means, variances, weights = _init_model(
        x, k, init, seed, var_floor
    )

    ll_history: list[float] = []
    resp = np.zeros((n, k))
    converged = False
    iterations = 0
    for _ in range(max_iters):
        iterations += 1
        # E-step in log space.
        logp = _log_prob(x, means, variances, weights)
        m = logp.max(axis=1, keepdims=True)
        log_norm = m[:, 0] + np.log(
            np.exp(logp - m).sum(axis=1)
        )
        resp = np.exp(logp - log_norm[:, None])
        ll = float(log_norm.mean())
        ll_history.append(ll)

        # M-step: weighted reductions (the super-phase analogue).
        nk = resp.sum(axis=0)  # (k,)
        nk = np.maximum(nk, 1e-12)
        means = (resp.T @ x) / nk[:, None]
        sq = resp.T @ (x**2)
        variances = np.maximum(
            sq / nk[:, None] - means**2, var_floor
        )
        weights = nk / n

        if len(ll_history) >= 2 and (
            ll_history[-1] - ll_history[-2] < tol
        ):
            converged = True
            break

    return GmmResult(
        means=means,
        variances=variances,
        weights=weights,
        responsibilities=resp,
        log_likelihood=ll_history[-1],
        ll_history=ll_history,
        iterations=iterations,
        converged=converged,
    )


class GmmMM:
    """Diagonal-covariance EM as an MM algorithm.

    *Majorize* is the E-step plus the weighted reductions -- per-row
    responsibilities voting into additive accumulators ``nk`` (soft
    counts), ``wsum`` (weighted sums) and ``wsq`` (weighted squared
    sums). *Minimize* is the M-step closed form over the reduced
    accumulators. Numerics replay :func:`gmm_em` operation for
    operation, so the MM run is bit-identical to the standalone loop
    (pinned by the MM plane suite).
    """

    name = "gmm"

    def __init__(
        self,
        x: np.ndarray,
        k: int,
        *,
        init: str | np.ndarray = "kmeans++",
        seed: int = 0,
        max_iters: int = 100,
        tol: float = 1e-6,
        var_floor: float = 1e-6,
    ) -> None:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DatasetError(f"x must be 2-D, got shape {x.shape}")
        self.x = x
        self.n_rows, self.d = x.shape
        self.k = k
        _validate_gmm_inputs(x, k, max_iters)
        self.max_iters = max_iters
        self.tol = tol
        self.var_floor = var_floor
        self._model0 = _init_model(x, k, init, seed, var_floor)
        # nk rides as one extra slot beside the 2k d-length vectors.
        self.reduction_slots = 2 * k + 1
        self.state_bytes_per_row = 8 * k  # one responsibility row
        self.reset()

    def reset(self) -> None:
        means, variances, weights = self._model0
        self.means = means.copy()
        self.variances = variances.copy()
        self.weights = weights.copy()
        self.resp = np.zeros((self.n_rows, self.k))
        self.ll_history: list[float] = []
        self.iteration = 0
        self._assignment = np.full(self.n_rows, -1, dtype=np.int32)
        self._pending_ll: float | None = None

    def majorize(self):
        from repro.runtime.mm import MMStep

        n, k = self.n_rows, self.k
        logp = _log_prob(self.x, self.means, self.variances,
                         self.weights)
        m = logp.max(axis=1, keepdims=True)
        log_norm = m[:, 0] + np.log(np.exp(logp - m).sum(axis=1))
        self.resp = np.exp(logp - log_norm[:, None])
        self._pending_ll = float(log_norm.mean())

        new_assign = np.argmax(self.resp, axis=1).astype(np.int32)
        n_changed = int(np.count_nonzero(new_assign != self._assignment))
        self._assignment = new_assign
        return MMStep(
            dist_per_row=np.full(n, k, dtype=np.int32),
            needs_data=np.ones(n, dtype=bool),
            n_changed=n_changed,
            payload={
                "nk": self.resp.sum(axis=0),
                "wsum": self.resp.T @ self.x,
                "wsq": self.resp.T @ (self.x**2),
            },
        )

    def minimize(self, payload: dict[str, np.ndarray]) -> None:
        nk = np.maximum(payload["nk"], 1e-12)
        self.means = payload["wsum"] / nk[:, None]
        self.variances = np.maximum(
            payload["wsq"] / nk[:, None] - self.means**2,
            self.var_floor,
        )
        self.weights = nk / self.n_rows
        assert self._pending_ll is not None
        self.ll_history.append(self._pending_ll)
        self._pending_ll = None
        self.iteration += 1

    def converged(self) -> bool:
        return len(self.ll_history) >= 2 and (
            self.ll_history[-1] - self.ll_history[-2] < self.tol
        )

    def export_state(self) -> dict:
        return {
            "iteration": self.iteration,
            "means": self.means,
            "variances": self.variances,
            "weights": self.weights,
            "resp": self.resp,
            "assignment": self._assignment,
            "ll_history": np.asarray(self.ll_history, dtype=np.float64),
        }

    def restore_state(self, snap: dict) -> None:
        self.iteration = int(snap["iteration"])
        self.means = np.array(snap["means"], dtype=np.float64)
        self.variances = np.array(snap["variances"], dtype=np.float64)
        self.weights = np.array(snap["weights"], dtype=np.float64)
        self.resp = np.array(snap["resp"], dtype=np.float64)
        self._assignment = np.array(snap["assignment"], dtype=np.int32)
        self.ll_history = [float(v) for v in snap["ll_history"]]
        self._pending_ll = None

    @property
    def model_array(self) -> np.ndarray:
        return self.means

    def result(self, loop_result, *, memory_breakdown=None,
               extra_params=None):
        return loop_result.as_run_result(
            algorithm="mm-gmm",
            centroids=self.means,
            assignment=np.argmax(self.resp, axis=1).astype(np.int32),
            inertia=float(-self.ll_history[-1]),
            memory_breakdown=memory_breakdown,
            params={
                "n": self.n_rows, "d": self.d, "k": self.k,
                "algorithm": self.name, "tol": self.tol,
                "var_floor": self.var_floor,
                "log_likelihood": self.ll_history[-1],
                **(extra_params or {}),
            },
        )
