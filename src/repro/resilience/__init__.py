"""Cross-layer resilience: data integrity and degraded-mode handling.

knor's SEM and distributed engines page data through SSDs, DRAM
caches and network collectives -- exactly the layers where real
deployments corrupt data silently or stall on slow components. This
package supplies the two missing robustness primitives:

* :mod:`repro.resilience.integrity` -- CRC32 checksums computed at
  SAFS ingest time and verified on every fetch and cache admission,
  plus the byte-flip/verify helpers used for checkpoint arrays and
  in-flight allreduce payloads. Corruption injected by
  :mod:`repro.faults` is always *detected* (CRC32 catches every
  single-byte flip), then repaired by quarantine + re-read from a
  clean source, or aborted with
  :class:`~repro.errors.CorruptionError` -- never clustered on.
* :mod:`repro.resilience.degraded` -- per-worker iteration-time EWMA
  straggler detection with a configurable slowdown threshold. The
  in-memory/SEM engines surface flagged threads (the work-stealing
  scheduler re-partitions their queues onto healthy threads); knord
  re-shards work off a slow machine and keeps running at reduced
  capacity instead of waiting on it.

Both halves live outside the numerics plane: checksums and EWMAs can
change simulated time and control flow, never a clustering result.
When no fault plan is attached, neither adds any simulated-time or
numeric drift (guarded by an equivalence test).
"""

from repro.resilience.integrity import (
    PageIntegrity,
    array_crc32,
    crc32_bytes,
    flip_byte,
)
from repro.resilience.degraded import StragglerDetector

__all__ = [
    "PageIntegrity",
    "StragglerDetector",
    "array_crc32",
    "crc32_bytes",
    "flip_byte",
]
