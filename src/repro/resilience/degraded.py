"""Straggler detection: per-worker iteration-time EWMA.

A straggler is a worker (simulated thread or machine) that keeps
producing correct results but slower -- thermal throttling, a sick
SSD, a noisy neighbor. Crashes are easy to see; stragglers silently
stretch every barrier, so knor-scale deployments watch per-worker
iteration times and re-partition work away from the slow ones.

:class:`StragglerDetector` keeps an exponentially weighted moving
average of each worker's per-iteration time and flags a worker on
either of two criteria:

* **cluster-relative** -- its EWMA exceeds ``threshold`` times the
  median EWMA of the healthy workers (homogeneous fleets: a knord
  machine running hot against its identical peers);
* **self-relative** -- its EWMA exceeds ``threshold`` times the best
  EWMA it has itself ever posted (heterogeneous fleets: a
  NUMA-local thread is legitimately faster than a remote one, so
  the only fair baseline is the worker's own demonstrated speed --
  the thermal-throttling signature).

Detection is pure arithmetic over observed simulated times:
deterministic, observer-passive, and free of numeric side effects.
The *response* belongs to the caller: the in-memory/SEM backends let
the work-stealing scheduler drain a slow thread's queue and report
the resulting re-partition; knord moves shards off a flagged machine
and continues at reduced capacity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


class StragglerDetector:
    """Flag workers whose EWMA iteration time exceeds the median.

    Parameters
    ----------
    n_workers:
        Number of workers (threads or machines) observed per round.
    alpha:
        EWMA smoothing factor in (0, 1]; higher reacts faster.
    threshold:
        A worker is flagged when ``ewma > threshold * median(ewma)``.
        Must exceed 1; the default 2.0 ignores ordinary NUMA skew.
    warmup:
        Rounds observed before any flagging (the first EWMAs are raw
        samples and would misread ordinary imbalance as straggling).
    mode:
        Which criteria flag: ``"both"`` (default), ``"self"`` or
        ``"cluster"``. Heterogeneous fleets -- threads inside one
        NUMA machine, where a 4-row remainder block or a remote-bank
        thread legitimately posts a very different per-row time --
        should use ``"self"``: a worker is only ever compared against
        its own demonstrated speed.
    """

    def __init__(
        self,
        n_workers: int,
        *,
        alpha: float = 0.3,
        threshold: float = 2.0,
        warmup: int = 2,
        mode: str = "both",
    ) -> None:
        if n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
        if not 0.0 < alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {alpha}")
        if threshold <= 1.0:
            raise ConfigError(
                f"threshold must be > 1, got {threshold}"
            )
        if warmup < 0:
            raise ConfigError(f"warmup must be >= 0, got {warmup}")
        if mode not in ("both", "self", "cluster"):
            raise ConfigError(
                f"mode must be 'both', 'self' or 'cluster', got {mode!r}"
            )
        self.mode = mode
        self.n_workers = n_workers
        self.alpha = alpha
        self.threshold = threshold
        self.warmup = warmup
        self.ewma = np.zeros(n_workers)
        #: Lowest EWMA each worker has posted -- its demonstrated
        #: healthy speed, the self-relative baseline.
        self.best = np.full(n_workers, np.inf)
        self.rounds = 0
        self.flagged: set[int] = set()

    def observe(self, times_ns) -> list[int]:
        """Fold one round of per-worker times; return newly flagged ids.

        ``times_ns`` holds each worker's busy time for the iteration
        (simulated ns); workers that did no work this round report
        ``0`` and are left out of the baseline (an idle worker says
        nothing about how fast the busy ones are). Already-flagged
        workers stay flagged -- a straggler that recovers re-earns
        trust only through a caller reset -- and are excluded from the
        healthy median so one slow worker cannot drag the baseline up
        to meet itself.
        """
        times = np.asarray(times_ns, dtype=np.float64)
        if times.shape != (self.n_workers,):
            raise ConfigError(
                f"expected {self.n_workers} worker times, got "
                f"shape {times.shape}"
            )
        # A zero sample is "no observation" (idle worker), not
        # "infinitely fast": it must neither seed nor decay the EWMA.
        active = times > 0.0
        fresh_worker = active & (self.ewma == 0.0)
        tracked = active & ~fresh_worker
        self.ewma[fresh_worker] = times[fresh_worker]
        self.ewma[tracked] += self.alpha * (
            times[tracked] - self.ewma[tracked]
        )
        np.minimum(
            self.best,
            np.where(active, self.ewma, np.inf),
            out=self.best,
        )
        self.rounds += 1
        if self.rounds <= self.warmup:
            return []
        healthy = [
            w
            for w in range(self.n_workers)
            if w not in self.flagged and self.ewma[w] > 0.0
        ]
        if len(healthy) < 2:
            return []
        baseline = float(np.median(self.ewma[healthy]))
        if baseline <= 0.0:
            return []
        use_cluster = self.mode in ("both", "cluster")
        use_self = self.mode in ("both", "self")
        fresh = [
            w
            for w in healthy
            if (
                use_cluster
                and self.ewma[w] > self.threshold * baseline
            )
            or (
                use_self
                and np.isfinite(self.best[w])
                and self.ewma[w] > self.threshold * self.best[w]
            )
        ]
        self.flagged.update(fresh)
        return fresh

    def grow(self, n_workers: int) -> None:
        """Widen to ``n_workers`` (elastic scale-up): new workers start
        unobserved -- zero EWMA, infinite best -- and earn a baseline
        like any fresh worker. Shrinking history is never allowed;
        departed workers simply stop posting samples."""
        if n_workers < self.n_workers:
            raise ConfigError(
                f"cannot shrink detector from {self.n_workers} to "
                f"{n_workers} workers"
            )
        extra = n_workers - self.n_workers
        if extra == 0:
            return
        self.ewma = np.concatenate([self.ewma, np.zeros(extra)])
        self.best = np.concatenate([self.best, np.full(extra, np.inf)])
        self.n_workers = n_workers

    def reset(self) -> None:
        """Forget all history (e.g. after a crash-recovery restart)."""
        self.ewma[:] = 0.0
        self.best[:] = np.inf
        self.rounds = 0
        self.flagged.clear()
