"""CRC32 data-integrity layer.

Three storage tiers get checksummed:

* **SSD pages.** SAFS conceptually stamps a CRC32 per page at
  write/ingest time. In the simulation the page *contents* never
  move (the numerics plane reads the memmapped matrix directly), so
  a page is represented by a deterministic token derived from its
  index; the stored checksum is the CRC of that token, computed
  lazily -- equivalent to an ingest-time stamp because tokens are
  immutable. A corrupted device read returns the token with one byte
  flipped; verification recomputes the CRC over the returned bytes
  and compares. CRC32 detects every single-byte flip, so detection
  recall is 100% by construction *and* exercised with real CRC
  arithmetic on every verify.
* **Checkpoint arrays** (:mod:`repro.sem.checkpoint` format v3): real
  CRC32 over the actual array bytes and the on-disk arrays file,
  verified on load.
* **Allreduce payloads** (:func:`repro.faults.faulty_collective_ns`):
  real CRC32 over the reduced centroid bytes.

Checksum verification runs whenever a fault plan is attached; with
no plan attached there is nothing that could corrupt data, and the
checks are modeled as free so fault-free runs stay bit-identical in
both planes.
"""

from __future__ import annotations

import zlib

import numpy as np

#: Bytes of the deterministic token standing in for a page's content.
_TOKEN_BYTES = 16


def crc32_bytes(data: bytes) -> int:
    """CRC32 of a byte string (zlib polynomial, unsigned)."""
    return zlib.crc32(data) & 0xFFFFFFFF


def array_crc32(arr: np.ndarray) -> int:
    """CRC32 of an array's C-contiguous buffer."""
    return crc32_bytes(np.ascontiguousarray(arr).tobytes())


def flip_byte(data: bytes, offset: int) -> bytes:
    """Return a copy of ``data`` with one bit-complemented byte."""
    if not 0 <= offset < len(data):
        offset = offset % len(data)
    out = bytearray(data)
    out[offset] ^= 0xFF
    return bytes(out)


def page_token(page: int) -> bytes:
    """The deterministic byte token standing in for page ``page``."""
    return (int(page) * 0x9E3779B97F4A7C15 % (1 << 128)).to_bytes(
        _TOKEN_BYTES, "little"
    )


def row_token(row: int) -> bytes:
    """The deterministic byte token standing in for cached row ``row``."""
    return page_token(~int(row))


class PageIntegrity:
    """Per-page CRC32 verification with detection counters.

    One instance per :class:`~repro.sem.safs.Safs`; every fetched or
    admitted page passes through :meth:`verify_pages` when faults are
    enabled, and the counters feed the resilience metrics / the
    100%-recall corruption matrix.
    """

    def __init__(self) -> None:
        self.pages_verified = 0
        self.rows_verified = 0
        self.corruptions_detected = 0

    @staticmethod
    def expected_page_crc(page: int) -> int:
        return crc32_bytes(page_token(page))

    def verify_pages(
        self, pages: np.ndarray, corrupt_page: int | None = None
    ) -> bool:
        """CRC-verify a batch of page reads; return True if all clean.

        ``corrupt_page`` marks the page whose device read came back
        with a flipped byte (injected by the fault plan); its CRC
        mismatch is what the caller quarantines and repairs.
        """
        ok = True
        for page in np.asarray(pages).tolist():
            data = page_token(page)
            if corrupt_page is not None and page == corrupt_page:
                data = flip_byte(data, page % _TOKEN_BYTES)
            good = crc32_bytes(data) == self.expected_page_crc(page)
            self.pages_verified += 1
            if not good:
                self.corruptions_detected += 1
                ok = False
        return ok

    def verify_row(self, row: int, *, corrupted: bool) -> bool:
        """CRC-verify one DRAM-cached row; return True if clean."""
        data = row_token(row)
        if corrupted:
            data = flip_byte(data, row % _TOKEN_BYTES)
        good = crc32_bytes(data) == crc32_bytes(row_token(row))
        self.rows_verified += 1
        if not good:
            self.corruptions_detected += 1
        return good
