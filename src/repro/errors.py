"""Exception hierarchy for the knor reproduction library.

All library-raised exceptions derive from :class:`KnorError` so callers can
catch one base type. Subclasses mark which subsystem rejected the request.
"""

from __future__ import annotations


class KnorError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class ConfigError(KnorError, ValueError):
    """A configuration value is out of range or inconsistent."""


class TopologyError(ConfigError):
    """A NUMA topology description is invalid (e.g. zero nodes)."""


class AllocationError(KnorError):
    """The simulated memory manager could not satisfy a request."""


class MemoryBudgetError(AllocationError):
    """A :class:`~repro.mem.budget.BudgetedManager` could not satisfy
    an allocation within its byte cap: the request exceeds the whole
    budget, or nothing spillable remains. The manager refuses rather
    than silently growing past the cap."""


class SchedulerError(KnorError):
    """A task scheduler was driven outside its contract."""


class DatasetError(KnorError, ValueError):
    """A dataset is malformed (wrong shape, dtype, or on-disk header)."""


class ConvergenceError(KnorError):
    """An iterative routine failed to make progress (e.g. k > n)."""


class EmptyClusterError(ConvergenceError):
    """A cluster lost all members under ``empty_cluster="error"``."""


class CommunicatorError(KnorError):
    """Misuse of the simulated MPI communicator."""


class IoSubsystemError(KnorError):
    """The simulated SAFS/SSD layer was driven outside its contract."""


class FaultError(KnorError):
    """Base class for injected-fault outcomes (see :mod:`repro.faults`)."""


class WorkerCrashError(FaultError):
    """An injected worker crash: the process "died" between iterations
    (or mid-checkpoint). Recoverable when the backend can resume."""


class NodeFailureError(FaultError):
    """A distributed run lost a machine and could not (or was not
    allowed to) continue degraded."""


class RetryExhaustedError(FaultError):
    """A retried operation (SSD read, allreduce retransmit) kept
    failing past the :class:`~repro.faults.RetryPolicy` budget."""


class CorruptionError(FaultError):
    """Detected data corruption that could not be repaired.

    Raised when a CRC32 verification failed (SSD page, cached row,
    checkpoint array, or allreduce payload) and the quarantine +
    re-read repair loop exhausted its :class:`~repro.faults.RetryPolicy`
    budget -- or when no clean source exists to re-read from. The
    library aborts rather than cluster on garbage."""
