"""The generalized NUMA/SEM algorithm framework (Section 9's goal).

The paper's stated endgame: "provide a C++ interface upon which users
may implement custom algorithms and benefit from our NUMA and external
memory optimizations." This package is that interface, in Python: an
algorithm supplies exact per-iteration numerics plus per-row work
statistics (:class:`RowAlgorithm` / :class:`RowWork`), and the
framework runs it on the simulated NUMA machine (:func:`run_numa`) or
the semi-external stack (:func:`run_sem`) -- scheduling, binding,
caching and timing all inherited, no algorithm-specific driver code.

knor's own k-means is expressible as one adapter
(:class:`KmeansAlgorithm`); :class:`GmmAlgorithm` shows a non-k-means
EM algorithm riding the same substrate, which is precisely the claim
Section 9 makes about the design's generality.
"""

from repro.framework.base import (
    RowAlgorithm,
    RowWork,
    FrameworkResult,
    run_numa,
    run_sem,
)
from repro.framework.adapters import GmmAlgorithm, KmeansAlgorithm

__all__ = [
    "RowAlgorithm",
    "RowWork",
    "FrameworkResult",
    "run_numa",
    "run_sem",
    "KmeansAlgorithm",
    "GmmAlgorithm",
]
