"""RowAlgorithm adapters: knor's k-means and an EM GMM.

``KmeansAlgorithm`` re-expresses the library's own k-means (any
pruning mode) through the framework contract -- a fidelity check that
the generic drivers reproduce what the hand-written knori/knors
drivers do. ``GmmAlgorithm`` is the Section 9 payoff: a different
algorithm family (EM) inheriting the NUMA/SEM machinery with ~60 lines
of adapter.
"""

from __future__ import annotations

import numpy as np

from repro.core.init import init_centroids
from repro.drivers.common import NumericsLoop, check_pruning
from repro.errors import DatasetError
from repro.framework.base import RowWork
from repro.runtime import state_bytes_per_row

_LOG_2PI = float(np.log(2.0 * np.pi))


class KmeansAlgorithm:
    """k-means (Lloyd's / MTI / Elkan) as a framework row algorithm."""

    def __init__(
        self,
        k: int,
        *,
        pruning: str | None = "mti",
        init: str | np.ndarray = "random",
        seed: int = 0,
    ) -> None:
        self.k = k
        self.pruning = check_pruning(pruning)
        self.init = init
        self.seed = seed
        self._loop: NumericsLoop | None = None
        self._last_changed = -1

    def begin(self, x: np.ndarray) -> None:
        if isinstance(self.init, np.ndarray):
            c0 = np.array(self.init, dtype=np.float64, copy=True)
        else:
            c0 = init_centroids(
                np.asarray(x), self.k, self.init, seed=self.seed
            )
        self._loop = NumericsLoop(x, c0, self.pruning)

    def iteration(self, x: np.ndarray) -> RowWork:
        assert self._loop is not None, "begin() not called"
        num = self._loop.step()
        self._last_changed = num.n_changed
        return RowWork(
            compute_units=num.dist_per_row,
            needs_data=num.needs_data,
            n_changed=num.n_changed,
            # Pruning-mode-aware rate (Elkan's k-wide bound row counts).
            state_bytes_per_row=state_bytes_per_row(self.pruning, self.k),
        )

    def converged(self) -> bool:
        return self._last_changed == 0

    # -- results -----------------------------------------------------

    @property
    def centroids(self) -> np.ndarray:
        assert self._loop is not None
        return self._loop.centroids

    @property
    def assignment(self) -> np.ndarray:
        assert self._loop is not None
        return self._loop.assignment


class GmmAlgorithm:
    """Diagonal-covariance EM as a framework row algorithm.

    Per-row compute is k Gaussian density evaluations, each costing
    about one distance column of the same dimensionality (subtract,
    scale, accumulate per dim) -- so ``compute_units = k`` per row.
    Every row participates every iteration (EM has no pruning), which
    the substrate prices accordingly; a pruned EM variant would simply
    return a sparser ``needs_data``.
    """

    def __init__(
        self,
        k: int,
        *,
        seed: int = 0,
        tol: float = 1e-6,
        var_floor: float = 1e-6,
    ) -> None:
        self.k = k
        self.seed = seed
        self.tol = tol
        self.var_floor = var_floor
        self.means: np.ndarray | None = None
        self.variances: np.ndarray | None = None
        self.weights: np.ndarray | None = None
        self.ll_history: list[float] = []
        self._resp: np.ndarray | None = None

    def begin(self, x: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DatasetError(f"x must be 2-D, got {x.shape}")
        self.means = init_centroids(x, self.k, "kmeans++",
                                    seed=self.seed)
        self.variances = np.tile(
            np.maximum(x.var(axis=0), self.var_floor), (self.k, 1)
        )
        self.weights = np.full(self.k, 1.0 / self.k)
        self.ll_history = []

    def iteration(self, x: np.ndarray) -> RowWork:
        assert self.means is not None, "begin() not called"
        x = np.asarray(x, dtype=np.float64)
        n, d = x.shape
        logp = np.empty((n, self.k))
        for c in range(self.k):
            var = self.variances[c]
            diff = x - self.means[c]
            logp[:, c] = (
                np.log(self.weights[c])
                - 0.5
                * (
                    d * _LOG_2PI
                    + np.log(var).sum()
                    + ((diff**2) / var).sum(axis=1)
                )
            )
        m = logp.max(axis=1, keepdims=True)
        log_norm = m[:, 0] + np.log(np.exp(logp - m).sum(axis=1))
        resp = np.exp(logp - log_norm[:, None])
        self._resp = resp
        self.ll_history.append(float(log_norm.mean()))

        nk = np.maximum(resp.sum(axis=0), 1e-12)
        self.means = (resp.T @ x) / nk[:, None]
        self.variances = np.maximum(
            (resp.T @ (x**2)) / nk[:, None] - self.means**2,
            self.var_floor,
        )
        self.weights = nk / n

        return RowWork(
            compute_units=np.full(n, self.k, dtype=np.int64),
            needs_data=np.ones(n, dtype=bool),
            n_changed=n,
            state_bytes_per_row=self.k * 8,  # responsibilities row
        )

    def converged(self) -> bool:
        return (
            len(self.ll_history) >= 2
            and self.ll_history[-1] - self.ll_history[-2] < self.tol
        )

    @property
    def assignment(self) -> np.ndarray:
        assert self._resp is not None
        return np.argmax(self._resp, axis=1).astype(np.int32)
