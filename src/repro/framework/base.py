"""Framework core: the RowAlgorithm contract and the generic drivers.

An algorithm that wants knor's substrate implements three methods:

* ``begin(x)`` -- see the data once, allocate persistent state;
* ``iteration(x) -> RowWork`` -- run one exact super-phase over the
  data and report, per row, how much compute happened
  (``compute_units``, in point-centroid-distance-column equivalents)
  and whether the row's data was required (``needs_data`` -- rows the
  algorithm skipped wholesale cost no memory traffic, and in SEM mode
  no I/O request);
* ``converged() -> bool``.

Everything else -- task construction, NUMA placement, scheduling,
stealing, lock/barrier/reduction charges, the SAFS + row-cache stack --
is the framework's job, identical to what the built-in knori/knors
drivers do: both generic drivers wrap the algorithm in a
:class:`~repro.runtime.RowAlgorithmSource` and run the same
:class:`~repro.runtime.InMemoryBackend`/:class:`~repro.runtime.SemBackend`
through the shared :class:`~repro.runtime.IterationLoop`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.data.matrixfile import MatrixFile
from repro.drivers.common import make_scheduler
from repro.errors import DatasetError
from repro.metrics import IterationRecord
from repro.runtime import (
    InMemoryBackend,
    IterationLoop,
    RowAlgorithmSource,
    RunObserver,
    SemBackend,
    resolve_row_data,
)
from repro.sched.blocks import auto_task_rows
from repro.sem import RowCache, RowEngine, Safs
from repro.simhw import (
    AsyncIoQueue,
    BindPolicy,
    CostModel,
    FOUR_SOCKET_XEON,
    SimMachine,
)
from repro.simhw.ssd import OCZ_INTREPID_ARRAY, SsdArray


@dataclass
class RowWork:
    """One iteration's exact per-row work statistics."""

    #: Compute per row, in units of one point-centroid distance column
    #: of the data's dimensionality (the framework's compute currency).
    compute_units: np.ndarray
    #: Rows whose data had to be touched (False = skipped wholesale).
    needs_data: np.ndarray
    #: Observable progress measure (points that changed, parameters
    #: that moved...) -- recorded, not interpreted.
    n_changed: int = 0
    #: Per-row bytes of algorithm state touched alongside the data.
    state_bytes_per_row: int = 8


@runtime_checkable
class RowAlgorithm(Protocol):
    """What an algorithm supplies to run on the substrate."""

    def begin(self, x: np.ndarray) -> None:  # pragma: no cover
        ...

    def iteration(self, x: np.ndarray) -> RowWork:  # pragma: no cover
        ...

    def converged(self) -> bool:  # pragma: no cover
        ...


@dataclass
class FrameworkResult:
    """Timing/record envelope around a framework-run algorithm."""

    algorithm: Any  # the caller's object, with its own results inside
    records: list[IterationRecord] = field(default_factory=list)
    converged: bool = False

    @property
    def iterations(self) -> int:
        return len(self.records)

    @property
    def sim_seconds(self) -> float:
        return sum(r.sim_ns for r in self.records) / 1e9


def run_numa(
    algorithm: RowAlgorithm,
    x: np.ndarray,
    *,
    cost_model: CostModel = FOUR_SOCKET_XEON,
    n_threads: int | None = None,
    bind_policy: BindPolicy = BindPolicy.NUMA_BIND,
    scheduler: str = "numa_aware",
    max_iters: int = 100,
    reduction_k: int = 1,
    observers: Sequence[RunObserver] = (),
) -> FrameworkResult:
    """Run a row algorithm on the simulated NUMA machine.

    ``reduction_k`` sizes the end-of-iteration funnel reduction (the
    algorithm's shared-state merge, k*d elements); pass the number of
    per-row output slots your reduction carries.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    n, d = x.shape
    machine = SimMachine.build(
        cost_model, n_threads=n_threads, bind_policy=bind_policy
    )
    sched = make_scheduler(scheduler)
    task_rows = auto_task_rows(n, machine.n_threads)

    algorithm.begin(x)
    backend = InMemoryBackend(
        machine,
        sched,
        RowAlgorithmSource(algorithm, x),
        n_rows=n,
        d=d,
        reduction_k=reduction_k,
        task_rows=task_rows,
    )
    result = IterationLoop(
        backend,
        should_stop=lambda out: algorithm.converged(),
        max_iters=max_iters,
        observers=observers,
    ).run()
    return FrameworkResult(
        algorithm=algorithm,
        records=result.records,
        converged=result.converged,
    )


def run_sem(
    algorithm: RowAlgorithm,
    data: str | Path | MatrixFile | np.ndarray,
    *,
    cost_model: CostModel = FOUR_SOCKET_XEON,
    ssd: SsdArray = OCZ_INTREPID_ARRAY,
    n_threads: int | None = None,
    scheduler: str = "numa_aware",
    row_cache_bytes: int | None = None,
    page_cache_bytes: int | None = None,
    cache_update_interval: int = 5,
    io_mode: str = "async",
    io_queue_depth: int = 32,
    max_iters: int = 100,
    reduction_k: int = 1,
    observers: Sequence[RunObserver] = (),
) -> FrameworkResult:
    """Run a row algorithm semi-externally: rows stream through the
    SAFS + row-cache stack, clause-style skipped rows issue no I/O.

    ``io_mode`` defaults to ``"async"`` (matching the builtin knors
    driver): fetches ride the SSD request queue and service time
    overlaps compute. ``"sync"`` keeps the serialized accounting;
    numerics and cache counters are identical across modes."""
    x, n, d = resolve_row_data(data)

    row_bytes = d * 8
    data_bytes = n * row_bytes
    if row_cache_bytes is None:
        row_cache_bytes = data_bytes // 32
    if page_cache_bytes is None:
        page_cache_bytes = max(64 * ssd.page_bytes, data_bytes // 16)

    machine = SimMachine.build(
        cost_model, n_threads=n_threads, ssd=ssd
    )
    sched = make_scheduler(scheduler)
    io_queue = (
        AsyncIoQueue(queue_depth=io_queue_depth)
        if io_mode == "async"
        else None
    )
    safs = Safs(ssd, page_cache_bytes=page_cache_bytes, io_queue=io_queue)
    row_cache = (
        RowCache(
            row_cache_bytes, row_bytes, n,
            n_partitions=machine.n_threads,
            update_interval=cache_update_interval,
        )
        if row_cache_bytes > 0
        else None
    )
    io_engine = RowEngine(safs, row_bytes, n, row_cache=row_cache)
    task_rows = auto_task_rows(n, machine.n_threads)

    algorithm.begin(x)
    backend = SemBackend(
        machine,
        sched,
        RowAlgorithmSource(algorithm, x),
        io_engine,
        n_rows=n,
        d=d,
        reduction_k=reduction_k,
        task_rows=task_rows,
        io_mode=io_mode,
    )
    result = IterationLoop(
        backend,
        should_stop=lambda out: algorithm.converged(),
        max_iters=max_iters,
        observers=observers,
    ).run()
    return FrameworkResult(
        algorithm=algorithm,
        records=result.records,
        converged=result.converged,
    )
