"""Import external data into the knor binary layout.

A downstream user's data rarely starts life as a ``.knor`` file; these
helpers take the two formats ubiquitous in practice (delimited text
and NumPy ``.npy``) and convert them, validating shape and dtype on
the way. Conversion goes through :func:`repro.data.write_matrix`, so
everything downstream (knors, the CLI, SAFS geometry) sees one format.

Non-finite rows (NaN/inf) are rejected by default -- a NaN anywhere in
the matrix poisons every distance computation it touches and k-means
silently returns garbage. ``allow_nonfinite=True`` is the explicit
escape hatch for pipelines that sanitize downstream.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.data.matrixfile import write_matrix
from repro.errors import DatasetError


def _check_finite(x: np.ndarray, origin: str) -> None:
    """Reject NaN/inf cells, naming the offending rows."""
    finite = np.isfinite(x).all(axis=1)
    if finite.all():
        return
    bad = np.nonzero(~finite)[0]
    shown = bad[:8].tolist()
    more = f" (+{bad.size - 8} more)" if bad.size > 8 else ""
    raise DatasetError(
        f"{origin}: {bad.size} rows contain NaN/inf (rows "
        f"{shown}{more}); clean the data or pass allow_nonfinite=True "
        "to accept them"
    )


def load_csv(
    path: str | Path,
    *,
    delimiter: str = ",",
    skip_header: int = 0,
    allow_nonfinite: bool = False,
) -> np.ndarray:
    """Load a delimited text matrix as float64 rows.

    Raises :class:`DatasetError` on ragged rows or non-numeric cells
    rather than propagating numpy's looser behaviours. NaN/inf cells
    (genfromtxt's signature for both) are rejected unless
    ``allow_nonfinite`` is set.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"{path}: no such file")
    try:
        x = np.genfromtxt(
            path, delimiter=delimiter, skip_header=skip_header,
            dtype=np.float64,
        )
    except ValueError as exc:
        raise DatasetError(f"{path}: malformed text matrix: {exc}") from exc
    if x.ndim == 1:
        x = x.reshape(-1, 1) if x.size else x.reshape(0, 0)
    if x.ndim != 2 or x.size == 0:
        raise DatasetError(f"{path}: expected a non-empty 2-D matrix")
    if not allow_nonfinite:
        _check_finite(x, str(path))
    return np.ascontiguousarray(x)


def load_npy(
    path: str | Path, *, allow_nonfinite: bool = False
) -> np.ndarray:
    """Load a ``.npy`` matrix, coercing to float64 rows.

    NaN/inf rows are rejected with a :class:`DatasetError` naming the
    offending rows unless ``allow_nonfinite`` is set.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"{path}: no such file")
    try:
        x = np.load(path, allow_pickle=False)
    except ValueError as exc:
        raise DatasetError(f"{path}: not a loadable .npy: {exc}") from exc
    if x.ndim != 2:
        raise DatasetError(
            f"{path}: expected a 2-D array, got shape {x.shape}"
        )
    if not np.issubdtype(x.dtype, np.number):
        raise DatasetError(f"{path}: non-numeric dtype {x.dtype}")
    x = np.ascontiguousarray(x, dtype=np.float64)
    if not allow_nonfinite:
        _check_finite(x, str(path))
    return x


def convert_to_knor(
    src: str | Path,
    dst: str | Path,
    *,
    fmt: str | None = None,
    delimiter: str = ",",
    skip_header: int = 0,
    allow_nonfinite: bool = False,
) -> Path:
    """Convert a CSV/NPY matrix to the knor binary layout.

    ``fmt`` is inferred from the suffix when None (``.npy`` vs
    anything else = delimited text). ``allow_nonfinite`` passes
    NaN/inf rows through instead of rejecting them.
    """
    src = Path(src)
    if fmt is None:
        fmt = "npy" if src.suffix == ".npy" else "csv"
    if fmt == "npy":
        x = load_npy(src, allow_nonfinite=allow_nonfinite)
    elif fmt == "csv":
        x = load_csv(
            src, delimiter=delimiter, skip_header=skip_header,
            allow_nonfinite=allow_nonfinite,
        )
    else:
        raise DatasetError(f"unknown format {fmt!r}; use 'csv' or 'npy'")
    return write_matrix(dst, x)
