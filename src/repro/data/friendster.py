"""Friendster-like spectral embedding datasets.

The paper clusters the top-8 and top-32 eigenvectors of the Friendster
social graph (66M vertices). The property that matters for its
experiments is stated in Section 8: the graph "follows a power law
distribution of edges. As such, the resulting eigenvectors contain
natural clusters with well defined centroids, which makes MTI pruning
effective, because many data points fall into strongly rooted clusters
and do not change membership."

We reproduce that object at reduced scale: an R-MAT power-law graph
(Chakrabarti et al., the standard synthetic stand-in for social
networks) whose symmetric-normalized adjacency eigenvectors form the
embedding. R-MAT's recursive quadrant skew produces the heavy-tailed
degree distribution and the community structure that make the
embedding cluster naturally.

The "King" dataset of Figure 11b is not described in the paper text;
:func:`king_like` substitutes a denser, flatter-skew graph embedding
(documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import DatasetError


def rmat_edges(
    scale: int,
    edge_factor: int,
    *,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
) -> np.ndarray:
    """Generate R-MAT edges for a 2**scale vertex graph, vectorized.

    Each of ``edge_factor * 2**scale`` edges picks one quadrant per bit
    level with probabilities (a, b, c, d); the chosen bits assemble the
    endpoint ids. Returns an (m, 2) int64 array (may contain duplicate
    and self edges; callers deduplicate).
    """
    if scale < 1 or scale > 26:
        raise DatasetError(f"scale must be in [1, 26], got {scale}")
    d = 1.0 - (a + b + c)
    if d < 0 or min(a, b, c) < 0:
        raise DatasetError("R-MAT probabilities must be a valid simplex")
    rng = np.random.default_rng(seed)
    m = edge_factor * (1 << scale)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        # Quadrants in order (0,0)=a, (0,1)=b, (1,0)=c, (1,1)=d.
        src_bit = (r >= a + b).astype(np.int64)
        dst_bit = ((r >= a) & (r < a + b) | (r >= a + b + c)).astype(
            np.int64
        )
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    return np.stack([src, dst], axis=1)


def _spectral_embedding(
    n_vertices: int, edges: np.ndarray, d: int, seed: int
) -> np.ndarray:
    """Top-d eigenvectors of the symmetric-normalized adjacency."""
    src, dst = edges[:, 0], edges[:, 1]
    keep = src != dst
    src, dst = src[keep], dst[keep]
    ones = np.ones(src.shape[0])
    adj = sp.coo_matrix(
        (ones, (src, dst)), shape=(n_vertices, n_vertices)
    ).tocsr()
    adj = adj + adj.T
    adj.data[:] = 1.0  # simple graph
    deg = np.asarray(adj.sum(axis=1)).ravel()
    # Isolated vertices get a self-loop so normalization is defined;
    # they land at the origin of the embedding, like Friendster's
    # low-degree fringe.
    deg = np.maximum(deg, 1.0)
    inv_sqrt = sp.diags(1.0 / np.sqrt(deg))
    norm_adj = inv_sqrt @ adj @ inv_sqrt
    rng = np.random.default_rng(seed)
    v0 = rng.random(n_vertices)
    vals, vecs = spla.eigsh(norm_adj, k=d, which="LA", v0=v0)
    order = np.argsort(vals)[::-1]
    # Weight eigenvectors by their eigenvalues so leading structure
    # dominates, as in spectral clustering practice.
    emb = vecs[:, order] * np.abs(vals[order])[None, :]
    return np.ascontiguousarray(emb, dtype=np.float64)


@lru_cache(maxsize=8)
def _friendster_cached(
    scale: int, edge_factor: int, d: int, seed: int,
    a: float, b: float, c: float,
) -> np.ndarray:
    edges = rmat_edges(scale, edge_factor, a=a, b=b, c=c, seed=seed)
    return _spectral_embedding(1 << scale, edges, d, seed)


def friendster_like(
    n: int = 65536, d: int = 8, *, edge_factor: int = 12, seed: int = 1
) -> np.ndarray:
    """Scaled Friendster-style eigenvector dataset.

    ``n`` is rounded up to the next power of two for R-MAT, then
    truncated. The paper's Friendster-8 is this object at n = 66M,
    d = 8; Friendster-32 at d = 32.
    """
    if n < 16:
        raise DatasetError(f"n must be >= 16, got {n}")
    if d < 1 or d > 64:
        raise DatasetError(f"d must be in [1, 64], got {d}")
    scale = max(4, int(np.ceil(np.log2(n))))
    emb = _friendster_cached(scale, edge_factor, d, seed, 0.57, 0.19, 0.19)
    return emb[:n].copy()


def king_like(
    n: int = 65536, d: int = 32, *, edge_factor: int = 24, seed: int = 5
) -> np.ndarray:
    """Substitute for Figure 11b's undocumented "King" dataset.

    A denser, flatter-skew power-law graph embedding: still naturally
    clustered, but with a different cluster-size profile than the
    Friendster stand-in, so the distributed speedup experiment runs on
    two structurally distinct workloads, as in the paper.
    """
    if n < 16:
        raise DatasetError(f"n must be >= 16, got {n}")
    scale = max(4, int(np.ceil(np.log2(n))))
    emb = _friendster_cached(scale, edge_factor, d, seed, 0.45, 0.25, 0.2)
    return emb[:n].copy()
