"""Dataset registry mirroring Table 2 at reproduction scale.

Each entry names a paper dataset, records the paper's (n, d) and our
scaled default, and knows how to materialize the scaled version. Benches
ask for datasets by paper name so EXPERIMENTS.md can map one-to-one.

The scale factor defaults to ~1/1000 of the paper's n (Friendster) and
smaller for the billion-point sets -- chosen so the full benchmark
suite runs in minutes on one core while preserving cluster structure.
Callers can override ``n`` for larger runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.friendster import friendster_like, king_like
from repro.data.synthetic import rand_multivariate, rand_univariate
from repro.errors import DatasetError


@dataclass(frozen=True)
class DatasetSpec:
    """One Table 2 row plus its scaled stand-in."""

    name: str
    paper_n: int
    paper_d: int
    paper_size: str
    default_n: int
    d: int
    maker: Callable[[int, int], np.ndarray]
    description: str

    def load(self, n: int | None = None) -> np.ndarray:
        """Materialize the dataset at ``n`` rows (default: scaled n)."""
        rows = self.default_n if n is None else n
        if rows < 16:
            raise DatasetError(f"n must be >= 16, got {rows}")
        return self.maker(rows, self.d)


DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            name="friendster-8",
            paper_n=66_000_000,
            paper_d=8,
            paper_size="4GB",
            default_n=65_536,
            d=8,
            maker=lambda n, d: friendster_like(n, d),
            description="Friendster top-8 eigenvectors (scaled R-MAT "
            "spectral embedding)",
        ),
        DatasetSpec(
            name="friendster-32",
            paper_n=66_000_000,
            paper_d=32,
            paper_size="16GB",
            default_n=65_536,
            d=32,
            maker=lambda n, d: friendster_like(n, d),
            description="Friendster top-32 eigenvectors (scaled R-MAT "
            "spectral embedding)",
        ),
        DatasetSpec(
            name="king",
            paper_n=0,  # not documented in the paper text
            paper_d=32,
            paper_size="n/a",
            default_n=65_536,
            d=32,
            maker=lambda n, d: king_like(n, d),
            description="Stand-in for Figure 11b's 'King' dataset "
            "(denser power-law embedding)",
        ),
        DatasetSpec(
            name="rm-856m",
            paper_n=856_000_000,
            paper_d=16,
            paper_size="103GB",
            default_n=262_144,
            d=16,
            maker=lambda n, d: rand_multivariate(n, d, seed=856),
            description="Rand-Multivariate RM_856M (Gaussian mixture)",
        ),
        DatasetSpec(
            name="rm-1b",
            paper_n=1_100_000_000,
            paper_d=32,
            paper_size="251GB",
            default_n=262_144,
            d=32,
            maker=lambda n, d: rand_multivariate(n, d, seed=1100),
            description="Rand-Multivariate RM_1B (Gaussian mixture)",
        ),
        DatasetSpec(
            name="ru-2b",
            paper_n=2_100_000_000,
            paper_d=64,
            paper_size="1.1TB",
            default_n=262_144,
            d=64,
            maker=lambda n, d: rand_univariate(n, d, seed=2100),
            description="Rand-Univariate RU_2B (uniform, worst case "
            "for pruning)",
        ),
    ]
}


def load_dataset(name: str, n: int | None = None) -> np.ndarray:
    """Load a Table 2 dataset by paper name at reproduction scale."""
    if name not in DATASETS:
        raise DatasetError(
            f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
        )
    return DATASETS[name].load(n)
