"""Datasets: synthetic generators mirroring Table 2, scaled.

The paper evaluates on (Table 2):

* Friendster top-8 / top-32 eigenvectors -- spectral embeddings of a
  power-law social graph: real-world data with natural clusters, where
  MTI pruning and the row cache shine.
* RM_856M / RM_1B -- random multivariate (Gaussian mixture) data.
* RU_2B -- random univariate-per-dimension (uniform) data, the worst
  case for pruning.

We cannot ship the 66M-vertex Friendster graph, so
:func:`repro.data.friendster.friendster_like` builds the same *kind* of
object at reduced n: a synthetic power-law graph whose normalized
adjacency eigenvectors form the embedding. The RM/RU generators are
distribution-identical to the paper's, at whatever n the caller asks.
"""

from repro.data.synthetic import rand_multivariate, rand_univariate
from repro.data.friendster import friendster_like, king_like
from repro.data.registry import DATASETS, DatasetSpec, load_dataset
from repro.data.matrixfile import write_matrix, read_matrix, MatrixFile
from repro.data.loader import convert_to_knor, load_csv, load_npy

__all__ = [
    "convert_to_knor",
    "load_csv",
    "load_npy",
    "rand_multivariate",
    "rand_univariate",
    "friendster_like",
    "king_like",
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "write_matrix",
    "read_matrix",
    "MatrixFile",
]
