"""On-disk row-major matrix format (knor's binary layout).

knor consumes raw row-major binary matrices; knors reads them through
SAFS at page granularity. We use the same layout with a small
self-describing header so tests can round-trip files:

``KNOR`` magic (4 bytes) | version u32 | n u64 | d u64 | dtype code u32,
followed by ``n * d`` elements, row-major, no padding.

:class:`MatrixFile` exposes page-oriented row access through a memmap,
which is what the simulated SAFS layer sits on: a row request maps to
byte offsets, byte offsets to filesystem pages, and the *actual data*
comes back from the real file -- the semi-external code path touches
real storage, only its timing is modeled.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.errors import DatasetError

_MAGIC = b"KNOR"
_VERSION = 1
_DTYPES = {0: np.float64, 1: np.float32}
_DTYPE_CODES = {np.dtype(np.float64): 0, np.dtype(np.float32): 1}
_HEADER = struct.Struct("<4sIQQI")
HEADER_BYTES = _HEADER.size


def write_matrix(path: str | Path, x: np.ndarray) -> Path:
    """Write ``x`` (n, d) to ``path`` in knor binary layout."""
    x = np.asarray(x)
    if x.ndim != 2:
        raise DatasetError(f"matrix must be 2-D, got shape {x.shape}")
    dtype = np.dtype(x.dtype)
    if dtype not in _DTYPE_CODES:
        raise DatasetError(f"unsupported dtype {dtype}; use float32/64")
    path = Path(path)
    with open(path, "wb") as fh:
        fh.write(
            _HEADER.pack(
                _MAGIC, _VERSION, x.shape[0], x.shape[1],
                _DTYPE_CODES[dtype],
            )
        )
        fh.write(np.ascontiguousarray(x).tobytes())
    return path


def read_matrix(path: str | Path) -> np.ndarray:
    """Read a whole matrix into memory (for small files and tests)."""
    return MatrixFile(path).read_rows(None)


class MatrixFile:
    """Row-level access to an on-disk knor matrix via memmap."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as fh:
            header = fh.read(HEADER_BYTES)
        if len(header) < HEADER_BYTES:
            raise DatasetError(f"{self.path}: truncated header")
        magic, version, n, d, code = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise DatasetError(f"{self.path}: bad magic {magic!r}")
        if version != _VERSION:
            raise DatasetError(f"{self.path}: unsupported version {version}")
        if code not in _DTYPES:
            raise DatasetError(f"{self.path}: unknown dtype code {code}")
        self.n = int(n)
        self.d = int(d)
        self.dtype = np.dtype(_DTYPES[code])
        expected = HEADER_BYTES + self.n * self.d * self.dtype.itemsize
        actual = self.path.stat().st_size
        if actual < expected:
            raise DatasetError(
                f"{self.path}: file is {actual} bytes, need {expected}"
            )
        self._mm = np.memmap(
            self.path,
            dtype=self.dtype,
            mode="r",
            offset=HEADER_BYTES,
            shape=(self.n, self.d),
        )

    @property
    def row_bytes(self) -> int:
        return self.d * self.dtype.itemsize

    def byte_range_of_row(self, row: int) -> tuple[int, int]:
        """(start, stop) byte offsets of one row within the data region.

        This is what the SAFS layer maps to filesystem pages.
        """
        if not 0 <= row < self.n:
            raise DatasetError(f"row {row} out of range (n={self.n})")
        start = row * self.row_bytes
        return start, start + self.row_bytes

    def row_view(self) -> np.ndarray:
        """Zero-copy (n, d) array view over the on-disk data region.

        Row accesses through the view hit the file at page granularity
        via the memmap -- this is the supported way for SEM drivers to
        index rows without loading the matrix.
        """
        return np.asarray(self._mm)

    def read_rows(self, rows: np.ndarray | None) -> np.ndarray:
        """Fetch rows by index (``None`` = all) as float64 copies."""
        if rows is None:
            return np.asarray(self._mm, dtype=np.float64).copy()
        rows = np.asarray(rows)
        return np.asarray(self._mm[rows], dtype=np.float64)

    def close(self) -> None:
        # memmap closes with GC; explicit close releases the handle now.
        if hasattr(self._mm, "_mmap") and self._mm._mmap is not None:
            self._mm._mmap.close()
        del self._mm

    def __enter__(self) -> "MatrixFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
