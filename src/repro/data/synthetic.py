"""Random dataset generators (Table 2's RM and RU families).

``RM`` (Rand-Multivariate) draws each point from one of several
multivariate Gaussians -- data with *some* cluster structure, used for
the 100 GB+ scalability runs. ``RU`` (Rand-Univariate) draws every
coordinate i.i.d. uniform -- the stated worst case for k-means
convergence and for pruning, "because many data points tend to be near
several centroids" (Section 8.8).
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError


def rand_multivariate(
    n: int,
    d: int,
    *,
    n_components: int = 16,
    spread: float = 4.0,
    scale: float = 1.0,
    seed: int = 0,
) -> np.ndarray:
    """Gaussian-mixture data like the paper's RM_856M / RM_1B.

    Parameters
    ----------
    n, d:
        Points and dimensions.
    n_components:
        Latent mixture components (the paper does not publish theirs;
        16 gives moderate, non-degenerate structure).
    spread:
        Standard deviation of the component means around the origin --
        relative to the unit within-component scale, this sets how
        separable the latent clusters are.
    scale:
        Within-component standard deviation.
    """
    if n < 1 or d < 1:
        raise DatasetError(f"n and d must be >= 1 (got n={n}, d={d})")
    if n_components < 1:
        raise DatasetError("n_components must be >= 1")
    rng = np.random.default_rng(seed)
    means = rng.normal(scale=spread, size=(n_components, d))
    comp = rng.integers(0, n_components, size=n)
    return means[comp] + rng.normal(scale=scale, size=(n, d))


def rand_univariate(n: int, d: int, *, seed: int = 0) -> np.ndarray:
    """Uniform data like the paper's RU_2B: every coordinate iid U[0,1).

    No natural clusters at all -- pruning degrades gracefully and
    convergence is slow, which is exactly why the paper uses it for
    worst-case scalability runs.
    """
    if n < 1 or d < 1:
        raise DatasetError(f"n and d must be >= 1 (got n={n}, d={d})")
    rng = np.random.default_rng(seed)
    return rng.random((n, d))
