"""Cluster builder: N simulated machines plus a network."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.mpi import SimComm
from repro.dist.network import NetworkModel, TEN_GBE
from repro.errors import ConfigError
from repro.simhw import BindPolicy, CostModel, EC2_C4_8XLARGE, SimMachine


@dataclass
class Cluster:
    """``n_machines`` identical simulated NUMA nodes on one network.

    The paper's distributed runs use c4.8xlarge instances with at most
    18 worker threads/processes per machine (one per physical core).
    """

    machines: list[SimMachine]
    comm: SimComm
    network: NetworkModel = TEN_GBE
    #: Build parameters, kept so an elastic run can provision identical
    #: machines later (``None`` for hand-assembled clusters).
    cost_model: CostModel | None = None
    threads_per_machine: int | None = None
    bind_policy: BindPolicy | None = None

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    @property
    def total_threads(self) -> int:
        return sum(m.n_threads for m in self.machines)

    @classmethod
    def build(
        cls,
        n_machines: int,
        *,
        cost_model: CostModel = EC2_C4_8XLARGE,
        threads_per_machine: int | None = None,
        bind_policy: BindPolicy = BindPolicy.NUMA_BIND,
        network: NetworkModel = TEN_GBE,
    ) -> "Cluster":
        """Construct a homogeneous cluster.

        ``threads_per_machine`` defaults to the machine's physical
        cores (the paper's "no more than 18 independent processes per
        machine" rule).
        """
        if n_machines < 1:
            raise ConfigError(
                f"n_machines must be >= 1, got {n_machines}"
            )
        machines = [
            SimMachine.build(
                cost_model,
                n_threads=threads_per_machine,
                bind_policy=bind_policy,
            )
            for _ in range(n_machines)
        ]
        return cls(
            machines=machines,
            comm=SimComm(n_machines, network),
            network=network,
            cost_model=cost_model,
            threads_per_machine=threads_per_machine,
            bind_policy=bind_policy,
        )

    def add_machines(self, count: int) -> list[int]:
        """Provision ``count`` more machines identical to the originals.

        Returns the new machine indices. Only ``Cluster.build`` clusters
        remember their recipe; hand-assembled ones cannot grow.
        """
        if count < 1:
            raise ConfigError(f"count must be >= 1, got {count}")
        if self.cost_model is None or self.bind_policy is None:
            raise ConfigError(
                "cluster cannot grow: built without a stored recipe "
                "(use Cluster.build for elastic runs)"
            )
        start = len(self.machines)
        for _ in range(count):
            self.machines.append(
                SimMachine.build(
                    self.cost_model,
                    n_threads=self.threads_per_machine,
                    bind_policy=self.bind_policy,
                )
            )
        return list(range(start, len(self.machines)))
