"""Cluster builder: N simulated machines plus a network."""

from __future__ import annotations

from dataclasses import dataclass

from repro.dist.mpi import SimComm
from repro.dist.network import NetworkModel, TEN_GBE
from repro.errors import ConfigError
from repro.simhw import BindPolicy, CostModel, EC2_C4_8XLARGE, SimMachine


@dataclass
class Cluster:
    """``n_machines`` identical simulated NUMA nodes on one network.

    The paper's distributed runs use c4.8xlarge instances with at most
    18 worker threads/processes per machine (one per physical core).
    """

    machines: list[SimMachine]
    comm: SimComm
    network: NetworkModel = TEN_GBE

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    @property
    def total_threads(self) -> int:
        return sum(m.n_threads for m in self.machines)

    @classmethod
    def build(
        cls,
        n_machines: int,
        *,
        cost_model: CostModel = EC2_C4_8XLARGE,
        threads_per_machine: int | None = None,
        bind_policy: BindPolicy = BindPolicy.NUMA_BIND,
        network: NetworkModel = TEN_GBE,
    ) -> "Cluster":
        """Construct a homogeneous cluster.

        ``threads_per_machine`` defaults to the machine's physical
        cores (the paper's "no more than 18 independent processes per
        machine" rule).
        """
        if n_machines < 1:
            raise ConfigError(
                f"n_machines must be >= 1, got {n_machines}"
            )
        machines = [
            SimMachine.build(
                cost_model,
                n_threads=threads_per_machine,
                bind_policy=bind_policy,
            )
            for _ in range(n_machines)
        ]
        return cls(
            machines=machines,
            comm=SimComm(n_machines, network),
            network=network,
        )
