"""Cluster interconnect model.

The paper's EC2 cluster sits in one availability zone, subnet and
placement group on 10 Gigabit Ethernet (Section 8.2). The standard
alpha-beta model covers everything the experiments need: a message of
``b`` bytes costs ``alpha + b * beta`` where alpha is the per-message
latency and beta the inverse bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

_NS_PER_S = 1e9


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta point-to-point cost model."""

    #: Per-message latency, nanoseconds (kernel + NIC + switch).
    latency_ns: float = 40_000.0
    #: Link bandwidth, bytes/second.
    bandwidth: float = 1.25e9  # 10 GbE

    def __post_init__(self) -> None:
        if self.latency_ns < 0:
            raise ConfigError("latency_ns must be >= 0")
        if self.bandwidth <= 0:
            raise ConfigError("bandwidth must be > 0")

    def message_ns(self, nbytes: int) -> float:
        """Cost of one point-to-point message of ``nbytes``."""
        if nbytes < 0:
            raise ConfigError(f"negative message size {nbytes}")
        return self.latency_ns + nbytes / self.bandwidth * _NS_PER_S


#: EC2 placement-group 10 GbE (Section 8.2).
TEN_GBE = NetworkModel()
