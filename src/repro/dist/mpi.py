"""Simulated MPI communicator.

Collectives execute the *real* arithmetic over in-process per-rank
buffers (an allreduce really sums all rank contributions, in a
deterministic binary-tree order) while charging alpha-beta modeled
time. Two collective algorithms are modeled, and each call charges the
cheaper one, as a tuned MPI library would select:

* binomial tree reduce + broadcast: ``2 * ceil(log2 P)`` rounds of one
  full-buffer message;
* ring reduce-scatter + allgather: ``2 * (P - 1)`` rounds of a
  ``1/P``-sized message (bandwidth-optimal for large buffers).

Communication-avoiding mode
---------------------------

``mode="rect"`` selects a rectangular (1.5D) schedule instead: the
ranks are arranged on an ``r x c`` grid (``r = floor(sqrt(P))``) and
the reduction runs as recursive doubling down the columns followed by
recursive doubling along the rows, every message carrying the *full*
payload. That trades replicated partial traffic (more bytes on the
wire) for fewer rounds -- ``ceil(log2 r) + ceil(log2 c)`` versus the
tree's ``2 ceil(log2 P)`` or the ring's ``2 (P - 1)`` -- so it wins
when the alpha (latency) term dominates, i.e. small ``k * d`` payloads
on high-latency links, and loses to the ring once payloads grow
bandwidth-bound. The cost model charges the replication honestly:
``bytes_on_wire = nbytes * P * rounds`` under ``"rect"``.

The reduced *values* are computed by the same deterministic
binary-tree pairing under every mode; only the charged time and wire
bytes differ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.dist.network import NetworkModel, TEN_GBE
from repro.errors import CommunicatorError, ConfigError
from repro.mem import current_manager

#: Accepted allreduce schedules. ``"tree"`` is the legacy default
#: (best of binomial-tree and ring, as a tuned MPI would pick);
#: ``"rect"`` is the communication-avoiding rectangular schedule.
ALLREDUCE_MODES = ("tree", "rect")


def check_allreduce(mode: str) -> str:
    """Validate an ``allreduce`` argument and pass it through."""
    if mode not in ALLREDUCE_MODES:
        raise ConfigError(
            f"allreduce must be one of {ALLREDUCE_MODES}, got {mode!r}"
        )
    return mode


def rect_grid(p: int) -> tuple[int, int]:
    """The ``(r, c)`` process grid of the rectangular schedule.

    ``r = floor(sqrt(p))`` rows, ``c = ceil(p / r)`` columns -- the
    most-square grid that covers ``p`` ranks (the last column may be
    ragged; ragged ranks still pay the full round count).
    """
    if p < 1:
        raise CommunicatorError(f"grid needs p >= 1 ranks, got {p}")
    r = max(1, math.isqrt(p))
    c = math.ceil(p / r)
    return r, c


@dataclass
class CollectiveResult:
    """Value plus modeled time of one collective call."""

    value: np.ndarray
    sim_ns: float
    bytes_on_wire: int


class SimComm:
    """A communicator over ``n_ranks`` simulated processes."""

    def __init__(
        self, n_ranks: int, network: NetworkModel = TEN_GBE
    ) -> None:
        if n_ranks < 1:
            raise CommunicatorError(f"n_ranks must be >= 1, got {n_ranks}")
        self.n_ranks = n_ranks
        self.network = network

    # -- timing models ------------------------------------------------

    def _tree_ns(self, nbytes: int) -> float:
        rounds = math.ceil(math.log2(self.n_ranks))
        return 2 * rounds * self.network.message_ns(nbytes)

    def _ring_ns(self, nbytes: int) -> float:
        p = self.n_ranks
        chunk = math.ceil(nbytes / p)
        return 2 * (p - 1) * self.network.message_ns(chunk)

    def _rect_ns(self, nbytes: int) -> float:
        r, c = rect_grid(self.n_ranks)
        rounds = self._rect_rounds(r, c)
        return rounds * self.network.message_ns(nbytes)

    @staticmethod
    def _rect_rounds(r: int, c: int) -> int:
        rounds = 0
        if r > 1:
            rounds += math.ceil(math.log2(r))
        if c > 1:
            rounds += math.ceil(math.log2(c))
        return rounds

    def allreduce_ns(self, nbytes: int, mode: str = "tree") -> float:
        """Modeled time of an allreduce over ``nbytes`` per rank."""
        check_allreduce(mode)
        if self.n_ranks == 1:
            return 0.0
        if mode == "rect":
            return self._rect_ns(nbytes)
        return min(self._tree_ns(nbytes), self._ring_ns(nbytes))

    def bcast_ns(self, nbytes: int) -> float:
        """Modeled time of a broadcast from one rank."""
        if self.n_ranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(self.n_ranks))
        return rounds * self.network.message_ns(nbytes)

    def gather_ns(self, nbytes_per_rank: int) -> float:
        """Modeled time of gathering ``nbytes_per_rank`` to a root.

        Serialized arrivals at the root link -- this is the
        master-bottleneck pattern the MLlib comparator pays for.
        """
        if self.n_ranks == 1:
            return 0.0
        return sum(
            self.network.message_ns(nbytes_per_rank)
            for _ in range(self.n_ranks - 1)
        )

    # -- collectives with real arithmetic ------------------------------

    def allreduce_sum(
        self, contributions: list[np.ndarray], mode: str = "tree"
    ) -> CollectiveResult:
        """Sum one array per rank; every rank gets the total.

        The reduction tree is the deterministic binary pairing used by
        the in-node funnel merge, so distributed results match a
        single-machine run's summation order for P a power of two.
        ``mode`` selects the charged schedule (see module docstring);
        the summed value is identical under every mode.
        """
        check_allreduce(mode)
        if len(contributions) != self.n_ranks:
            raise CommunicatorError(
                f"expected {self.n_ranks} contributions, got "
                f"{len(contributions)}"
            )
        shapes = {a.shape for a in contributions}
        if len(shapes) != 1:
            raise CommunicatorError(
                f"contribution shapes differ: {sorted(map(str, shapes))}"
            )
        # Stage each rank's payload in a manager-owned buffer, then
        # reduce pairs in place into the left buffer of each pair --
        # the same deterministic pairing as before (a+b per pair, in
        # index order), so the floating-point totals are bit-identical,
        # but the staging blocks recycle through the pool every call
        # instead of 2P-1 fresh temporaries per allreduce.
        mem = current_manager()
        shape = contributions[0].shape
        level = []
        for a in contributions:
            buf = mem.alloc(shape, np.float64, tag="allreduce/stage")
            np.copyto(buf, a, casting="unsafe")
            level.append(buf)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                np.add(level[i], level[i + 1], out=level[i])
                mem.free(level[i + 1])
                nxt.append(level[i])
            if len(level) % 2 == 1:
                nxt.append(level[-1])
            level = nxt
        # The total escapes to every rank; hand back a plain array and
        # return the last staging buffer to the pool.
        total = np.array(level[0], copy=True)
        mem.free(level[0])
        nbytes = total.nbytes
        if mode == "rect" and self.n_ranks > 1:
            # Every rank forwards the full payload each round; the
            # replication is what buys the fewer rounds.
            rounds = self._rect_rounds(*rect_grid(self.n_ranks))
            wire = nbytes * self.n_ranks * rounds
        else:
            wire = nbytes * max(0, self.n_ranks - 1)
        return CollectiveResult(
            value=total,
            sim_ns=self.allreduce_ns(nbytes, mode=mode),
            bytes_on_wire=wire,
        )
