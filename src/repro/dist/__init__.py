"""Distributed substrate: simulated cluster, network, and collectives.

knord (Section 7) layers a decentralized MPI driver over the knori
in-memory engine: one driver process per machine, each spawning worker
threads that keep every NUMA optimization. The substrate here mirrors
that: a :class:`Cluster` of simulated NUMA machines joined by a
:class:`NetworkModel` (10 GbE with placement-group latency, Section
8.2), and a :class:`SimComm` whose collectives execute *real*
reductions over in-process rank buffers while charging modeled time.
"""

from repro.dist.network import NetworkModel, TEN_GBE
from repro.dist.mpi import SimComm
from repro.dist.cluster import Cluster

__all__ = ["NetworkModel", "TEN_GBE", "SimComm", "Cluster"]
