"""Distributed substrate: simulated cluster, network, and collectives.

knord (Section 7) layers a decentralized MPI driver over the knori
in-memory engine: one driver process per machine, each spawning worker
threads that keep every NUMA optimization. The substrate here mirrors
that: a :class:`Cluster` of simulated NUMA machines joined by a
:class:`NetworkModel` (10 GbE with placement-group latency, Section
8.2), and a :class:`SimComm` whose collectives execute *real*
reductions over in-process rank buffers while charging modeled time.
"""

from repro.dist.network import NetworkModel, TEN_GBE
from repro.dist.mpi import (
    ALLREDUCE_MODES,
    SimComm,
    check_allreduce,
    rect_grid,
)
from repro.dist.cluster import Cluster

__all__ = [
    "ALLREDUCE_MODES",
    "NetworkModel",
    "TEN_GBE",
    "SimComm",
    "Cluster",
    "check_allreduce",
    "rect_grid",
]
