"""Command-line interface: ``repro-kmeans``.

Mirrors the knor binaries' usage: generate datasets in the binary
matrix layout, inspect them, and run the three modules against them.

Examples
--------
Generate a scaled Friendster-8 and cluster it in memory::

    repro-kmeans gen --dataset friendster-8 --n 65536 -o fr8.knor
    repro-kmeans knori fr8.knor -k 10 --threads 48

Semi-external run with checkpointing::

    repro-kmeans knors fr8.knor -k 10 --checkpoint-dir ckpt/

Distributed run on a simulated 8-machine cluster::

    repro-kmeans knord fr8.knor -k 10 --machines 8
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro import ConvergenceCriteria, knord, knori, knors
from repro.data import (
    DATASETS,
    MatrixFile,
    load_dataset,
    write_matrix,
)
from repro.errors import KnorError
from repro.metrics import RunResult


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("matrix", help="input .knor matrix file")
    parser.add_argument("-k", type=int, required=True,
                        help="number of clusters")
    parser.add_argument(
        "--pruning", choices=["mti", "elkan", "none"], default="mti",
        help="pruning mode (default: mti; 'none' = the paper's "
        "minus variants)",
    )
    parser.add_argument("--init", default="random",
                        help="random|forgy|kmeans++|kmeans|| "
                        "(default: random)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--max-iters", type=int, default=100)
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write centroids/assignment to this .npz path",
    )
    parser.add_argument(
        "--quality", action="store_true",
        help="also report silhouette and Davies-Bouldin indices",
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help="write the full run record (timings, counters) as JSON",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="stream runtime trace events (iterations, I/O, "
        "collectives) to stderr",
    )
    parser.add_argument(
        "--empty-cluster", choices=["drop", "reseed", "error"],
        default="drop",
        help="policy when a cluster loses all members: keep the "
        "previous centroid (drop, default), reseed from the farthest "
        "point (unpruned only), or abort (error)",
    )
    # Key lists come from the parsers themselves so the help text can
    # never drift from what --faults/--retry-policy actually accept.
    from repro.elastic import MEMBERSHIP_SPEC_KEYS
    from repro.faults import FAULT_SPEC_KEYS, RETRY_POLICY_KEYS

    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject seeded faults, e.g. "
        "'ssd_error=0.1,worker_crash=0.05,corrupt_page=0.05' "
        f"(keys: {', '.join(FAULT_SPEC_KEYS)})",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="fault-stream seed; the same seed reproduces the same "
        "fault trace byte-for-byte (default: 0)",
    )
    parser.add_argument(
        "--retry-policy", default=None, metavar="SPEC",
        help="recovery tuning, e.g. "
        "'retries=5,backoff_ms=4,node_failure=abort' "
        f"(keys: {', '.join(RETRY_POLICY_KEYS)})",
    )
    parser.add_argument(
        "--elastic-plan", default=None, metavar="SPEC",
        help="seeded membership churn, e.g. "
        "'join=0.1,leave=0.05,preempt=0.1,preempt_notice=2' "
        f"(keys: {', '.join(MEMBERSHIP_SPEC_KEYS)}). knord honors "
        "every event; knori/knors are single-machine, so only "
        "preemptions apply (notice flushes a checkpoint when the "
        "backend has one). Results stay bit-identical to the fixed "
        "run",
    )
    parser.add_argument(
        "--elastic-seed", type=int, default=0,
        help="membership-stream seed; the same seed reproduces the "
        "same churn trace byte-for-byte (default: 0)",
    )
    parser.add_argument(
        "--algorithm",
        choices=["kmeans", "gmm", "spherical", "semisupervised",
                 "yinyang", "minibatch"],
        default="kmeans",
        help="MM algorithm to run on this backend (default: kmeans, "
        "which uses the classic driver path; anything else rides the "
        "MM plane and ignores --pruning/--empty-cluster)",
    )
    parser.add_argument(
        "--labels", type=Path, default=None, metavar="NPY",
        help="length-n .npy label array for --algorithm "
        "semisupervised (ints in [0, k), -1 = unlabeled)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=1024,
        help="rows sampled per step for --algorithm minibatch "
        "(default: 1024)",
    )
    parser.add_argument(
        "--kernel", choices=["blocked", "gemm"], default="blocked",
        help="distance kernel strategy: blocked (default, bit-exact "
        "reference) or gemm (norm-caching GEMM expansion; identical "
        "assignments, ULP-equivalent distances; kmeans and minibatch "
        "algorithms only)",
    )
    _add_mem_flags(parser)


def _add_mem_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--mem", choices=["numpy", "arena", "budget"], default="numpy",
        help="memory manager for workspace/cache/staging buffers: "
        "numpy (default behavior), arena (pooled reuse across "
        "iterations), or budget (hard byte cap with simulated-SSD "
        "spill; needs --mem-budget-mb). Results are bit-identical "
        "across managers",
    )
    parser.add_argument(
        "--mem-budget-mb", type=float, default=None, metavar="MB",
        help="byte cap for --mem budget, in MiB; exceeding it spills "
        "cold buffers to simulated SSD (charged simulated time) or "
        "fails with a MemoryBudgetError rather than growing silently",
    )


def _pruning(value: str) -> str | None:
    return None if value == "none" else value


def _observers(args: argparse.Namespace):
    """Trace observers for one run (empty without ``--trace``).

    Stashes the :class:`ResilienceObserver` on ``args`` so
    :func:`_print_resilience` can summarize the fault/elastic tallies
    after the run.
    """
    if not args.trace:
        return ()
    from repro.metrics import ResilienceObserver
    from repro.runtime import PrintObserver

    resilience = ResilienceObserver()
    args.resilience_observer = resilience
    return (PrintObserver(), resilience)


def _print_resilience(args: argparse.Namespace) -> None:
    """One ``[resilience]`` line on stderr under ``--trace``."""
    obs = getattr(args, "resilience_observer", None)
    if obs is None:
        return
    c = obs.counters
    line = (
        f"[resilience] faults={c.faults_injected} "
        f"recoveries={c.recoveries} retries={c.retries} "
        f"corruption_recall={c.detection_recall:.0%}"
    )
    if c.preempt_notices or c.scale_ups or c.scale_downs or c.reshards:
        line += (
            f" preempt_notices={c.preempt_notices} "
            f"scale_ups={c.scale_ups} scale_downs={c.scale_downs} "
            f"reshards={c.reshards}"
        )
    print(line, file=sys.stderr)


def _fault_plan(args: argparse.Namespace):
    """``(FaultPlan | None, RetryPolicy | None)`` from the CLI flags."""
    from repro.faults import (
        FaultPlan,
        parse_fault_spec,
        parse_retry_policy,
    )

    plan = (
        FaultPlan(parse_fault_spec(args.faults), seed=args.fault_seed)
        if args.faults is not None
        else None
    )
    policy = (
        parse_retry_policy(args.retry_policy)
        if args.retry_policy is not None
        else None
    )
    return plan, policy


def _elastic_plan(args: argparse.Namespace):
    """Fresh ``MembershipPlan | None`` from the CLI flags.

    Plans are stateful (scheduled events are consumed), so every run
    -- and every tenant -- gets its own instance.
    """
    if getattr(args, "elastic_plan", None) is None:
        return None
    from repro.elastic import MembershipPlan, parse_membership_spec

    return MembershipPlan(
        parse_membership_spec(args.elastic_plan), seed=args.elastic_seed
    )


def _autoscaler(args: argparse.Namespace):
    """Fresh ``Autoscaler | None`` from ``--autoscale``."""
    if getattr(args, "autoscale", None) is None:
        return None
    from repro.elastic import Autoscaler, parse_autoscaler

    return Autoscaler(parse_autoscaler(args.autoscale))


def _memory_manager(args: argparse.Namespace):
    """Build the manager selected by ``--mem`` (None = driver default).

    The CLI builds the instance itself (rather than passing the spec
    string through) so it can print the counters after the run.
    """
    from repro.mem import build_manager

    budget = (
        int(args.mem_budget_mb * 2**20)
        if args.mem_budget_mb is not None
        else None
    )
    if args.mem == "numpy" and budget is None:
        return None
    return build_manager(args.mem, budget_bytes=budget)


def _print_mem(manager) -> None:
    """One ``[mem]`` counters line on stderr (never in RunResult)."""
    if manager is None:
        return
    c = manager.counters()
    line = (
        f"[mem] {c.manager}: peak={c.peak_bytes / 1e6:.2f} MB "
        f"live={c.live_bytes / 1e6:.2f} MB allocs={c.n_allocs} "
        f"reuse={c.reuse_rate:.0%} backing={c.backing_allocs}"
    )
    if c.spill_count:
        line += (
            f" spills={c.spill_count} ({c.spill_bytes / 1e6:.1f} MB, "
            f"{c.spill_ns / 1e6:.2f} ms simulated)"
        )
    print(line, file=sys.stderr)


def _finish(
    result: RunResult,
    out: Path | None,
    *,
    quality_data: np.ndarray | None = None,
    json_path: Path | None = None,
) -> None:
    print(result.summary())
    sizes = result.cluster_sizes
    print(f"cluster sizes: min={sizes.min()} max={sizes.max()} "
          f"nonempty={int((sizes > 0).sum())}/{sizes.shape[0]}")
    if quality_data is not None:
        from repro.metrics import (
            davies_bouldin_index,
            silhouette_score,
        )

        sil = silhouette_score(quality_data, result.assignment)
        db = davies_bouldin_index(quality_data, result.assignment)
        print(f"quality: silhouette={sil:.3f} davies-bouldin={db:.3f}")
    if json_path is not None:
        from repro.metrics import write_json

        write_json(json_path, result)
        print(f"wrote {json_path}")
    if out is not None:
        np.savez(
            out,
            centroids=result.centroids,
            assignment=result.assignment,
            inertia=result.inertia,
        )
        print(f"wrote {out}")


def cmd_gen(args: argparse.Namespace) -> int:
    """Generate a registry dataset into a .knor file."""
    x = load_dataset(args.dataset, n=args.n)
    path = write_matrix(args.output, x)
    print(
        f"wrote {args.dataset} (n={x.shape[0]}, d={x.shape[1]}, "
        f"{path.stat().st_size / 1e6:.1f} MB) to {path}"
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Print a .knor file's header."""
    mf = MatrixFile(args.matrix)
    print(f"{args.matrix}: n={mf.n} d={mf.d} dtype={mf.dtype} "
          f"row_bytes={mf.row_bytes}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    """Convert a CSV/NPY matrix into the knor layout."""
    from repro.data import convert_to_knor

    path = convert_to_knor(
        args.src, args.output, fmt=args.format,
        delimiter=args.delimiter, skip_header=args.skip_header,
        allow_nonfinite=args.allow_nonfinite,
    )
    mf = MatrixFile(path)
    print(f"wrote {path}: n={mf.n} d={mf.d}")
    return 0


def _run_mm(args: argparse.Namespace, backend: str,
            **backend_kwargs) -> RunResult:
    """Route a non-kmeans ``--algorithm`` through the MM plane."""
    from repro.errors import ConfigError
    from repro.extensions import run_algorithm

    kernel = getattr(args, "kernel", "blocked")
    if kernel != "blocked" and args.algorithm != "minibatch":
        # Only the DistanceWorkspace-backed algorithms have a gemm
        # path; the rest would silently ignore the flag.
        raise ConfigError(
            f"--kernel={kernel} is supported for --algorithm kmeans "
            f"or minibatch, not {args.algorithm!r}"
        )
    x = MatrixFile(args.matrix).read_rows(None)
    labels = np.load(args.labels) if args.labels is not None else None
    algorithm_kwargs: dict = {"seed": args.seed}
    if args.algorithm == "minibatch":
        algorithm_kwargs["kernel"] = kernel
    if args.algorithm != "semisupervised":
        # Semisupervised seeding is label-driven; no init method.
        algorithm_kwargs["init"] = args.init
    if args.algorithm == "gmm":
        algorithm_kwargs["max_iters"] = args.max_iters
    else:
        algorithm_kwargs["criteria"] = ConvergenceCriteria(
            max_iters=args.max_iters
        )
    if args.algorithm == "minibatch":
        algorithm_kwargs["batch_size"] = args.batch_size
    return run_algorithm(
        args.algorithm, x, args.k,
        backend=backend,
        labels=labels,
        algorithm_kwargs=algorithm_kwargs,
        observers=_observers(args),
        **backend_kwargs,
    )


def cmd_knori(args: argparse.Namespace) -> int:
    """Run in-memory clustering on a .knor matrix."""
    plan, _ = _fault_plan(args)
    manager = _memory_manager(args)
    if args.algorithm != "kmeans":
        result = _run_mm(
            args, "inmemory",
            n_threads=args.threads, scheduler=args.scheduler,
            faults=plan,
            membership=_elastic_plan(args),
            mem=manager,
        )
        _finish(result, args.out, json_path=args.json)
        _print_mem(manager)
        _print_resilience(args)
        return 0
    x = MatrixFile(args.matrix).read_rows(None)
    result = knori(
        x, args.k,
        pruning=_pruning(args.pruning),
        n_threads=args.threads,
        scheduler=args.scheduler,
        init=args.init, seed=args.seed,
        criteria=ConvergenceCriteria(max_iters=args.max_iters),
        observers=_observers(args),
        faults=plan,
        membership=_elastic_plan(args),
        empty_cluster=args.empty_cluster,
        kernel=args.kernel,
        mem=manager,
    )
    _finish(result, args.out,
            quality_data=x if args.quality else None,
            json_path=args.json)
    _print_mem(manager)
    _print_resilience(args)
    return 0


def cmd_knors(args: argparse.Namespace) -> int:
    """Run semi-external clustering on a .knor matrix."""
    plan, policy = _fault_plan(args)
    manager = _memory_manager(args)
    if args.algorithm != "kmeans":
        result = _run_mm(
            args, "sem",
            row_cache_bytes=args.row_cache_bytes,
            page_cache_bytes=args.page_cache_bytes,
            cache_update_interval=args.cache_interval,
            io_mode=args.io_mode,
            io_queue_depth=args.io_queue_depth,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_interval=args.checkpoint_interval,
            resume=args.resume,
            faults=plan,
            retry_policy=policy,
            membership=_elastic_plan(args),
            mem=manager,
        )
        _finish(result, args.out, json_path=args.json)
        _print_mem(manager)
        _print_resilience(args)
        print(
            f"I/O: requested {result.total_bytes_requested / 1e6:.1f} "
            f"MB, read {result.total_bytes_read / 1e6:.1f} MB from SSD"
        )
        return 0
    result = knors(
        args.matrix, args.k,
        pruning=_pruning(args.pruning),
        row_cache_bytes=args.row_cache_bytes,
        page_cache_bytes=args.page_cache_bytes,
        cache_update_interval=args.cache_interval,
        io_mode=args.io_mode,
        io_queue_depth=args.io_queue_depth,
        init=args.init, seed=args.seed,
        criteria=ConvergenceCriteria(max_iters=args.max_iters),
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        resume=args.resume,
        observers=_observers(args),
        faults=plan,
        retry_policy=policy,
        membership=_elastic_plan(args),
        empty_cluster=args.empty_cluster,
        kernel=args.kernel,
        mem=manager,
    )
    qd = (
        MatrixFile(args.matrix).read_rows(None) if args.quality else None
    )
    _finish(result, args.out, quality_data=qd, json_path=args.json)
    _print_mem(manager)
    _print_resilience(args)
    print(
        f"I/O: requested {result.total_bytes_requested / 1e6:.1f} MB, "
        f"read {result.total_bytes_read / 1e6:.1f} MB from SSD"
    )
    return 0


def cmd_knord(args: argparse.Namespace) -> int:
    """Run distributed clustering on a .knor matrix."""
    plan, policy = _fault_plan(args)
    if args.tenants is not None:
        return _run_tenants(args, plan, policy)
    manager = _memory_manager(args)
    if args.algorithm != "kmeans":
        result = _run_mm(
            args, "distributed",
            n_machines=args.machines,
            allreduce=args.allreduce,
            faults=plan,
            retry_policy=policy,
            membership=_elastic_plan(args),
            autoscaler=_autoscaler(args),
            mem=manager,
        )
        _finish(result, args.out, json_path=args.json)
        _print_mem(manager)
        _print_resilience(args)
        return 0
    if args.pruning == "elkan":
        raise KnorError("knord supports --pruning mti|none")
    x = MatrixFile(args.matrix).read_rows(None)
    result = knord(
        x, args.k,
        n_machines=args.machines,
        pruning=_pruning(args.pruning),
        init=args.init, seed=args.seed,
        criteria=ConvergenceCriteria(max_iters=args.max_iters),
        observers=_observers(args),
        faults=plan,
        retry_policy=policy,
        membership=_elastic_plan(args),
        autoscaler=_autoscaler(args),
        empty_cluster=args.empty_cluster,
        kernel=args.kernel,
        allreduce=args.allreduce,
        mem=manager,
    )
    _finish(result, args.out,
            quality_data=x if args.quality else None,
            json_path=args.json)
    _print_mem(manager)
    _print_resilience(args)
    return 0


def _run_tenants(args: argparse.Namespace, plan, policy) -> int:
    """``knord --tenants``: fair-share several jobs over one cluster.

    Every tenant clusters the same matrix on its own time-slice of the
    simulated fleet; weights set the fair-share rate, ``@budget_mb``
    caps a tenant's resident bytes (overflow spills to simulated SSD).
    Fault and elastic plans are instantiated per tenant so each job
    sees the same deterministic trace it would see running alone.
    """
    from repro.drivers.knord import knord_loop
    from repro.elastic import FairShareScheduler, TenantJob, parse_tenants
    from repro.faults import FaultPlan, parse_fault_spec
    from repro.mem import build_manager, use_manager

    if args.algorithm != "kmeans":
        raise KnorError("--tenants supports --algorithm kmeans")
    if args.pruning == "elkan":
        raise KnorError("knord supports --pruning mti|none")
    specs = parse_tenants(args.tenants)
    x = MatrixFile(args.matrix).read_rows(None)
    jobs: list = []
    finalizers: dict = {}
    for spec in specs:
        tenant_mgr = (
            build_manager(
                "budget", budget_bytes=int(spec.budget_mb * 2**20)
            )
            if spec.budget_mb is not None
            else _memory_manager(args)
        )
        # Stateful per tenant: fault plans consume RNG streams and
        # membership plans consume scheduled events.
        tenant_plan = (
            FaultPlan(parse_fault_spec(args.faults), seed=args.fault_seed)
            if args.faults is not None
            else None
        )
        with use_manager(tenant_mgr):
            loop, finalize = knord_loop(
                x, args.k,
                n_machines=args.machines,
                pruning=_pruning(args.pruning),
                init=args.init, seed=args.seed,
                criteria=ConvergenceCriteria(max_iters=args.max_iters),
                observers=_observers(args),
                faults=tenant_plan,
                retry_policy=policy,
                membership=_elastic_plan(args),
                autoscaler=_autoscaler(args),
                empty_cluster=args.empty_cluster,
                kernel=args.kernel,
                allreduce=args.allreduce,
            )
        jobs.append(TenantJob(spec, loop, manager=tenant_mgr))
        finalizers[spec.name] = (finalize, tenant_mgr)
    scheduler = FairShareScheduler(jobs)
    outcomes = scheduler.run()
    code = 0
    for spec in specs:
        outcome = outcomes[spec.name]
        finalize, tenant_mgr = finalizers[spec.name]
        if outcome.error is not None:
            print(f"[{spec.name}] aborted: {outcome.error}",
                  file=sys.stderr)
            code = 2
            continue
        result = finalize(outcome.result)
        print(f"[{spec.name}] {result.summary()}")
        print(
            f"[{spec.name}] fair-share: weight={spec.weight:g} "
            f"boundaries={outcome.boundaries} "
            f"sim={outcome.sim_ns / 1e9:.4f}s"
        )
        _print_mem(tenant_mgr)
    _print_resilience(args)
    return code


def cmd_serve(args: argparse.Namespace) -> int:
    """Fit a streaming model, then serve assignment queries under
    seeded open-loop traffic and report latency percentiles."""
    import json as _json

    from repro.runtime import run_mm_inmemory
    from repro.serve import MiniBatchMM, ServePlane
    from repro.simhw import ArrivalProcess

    from repro.mem import use_manager

    plan, policy = _fault_plan(args)
    manager = _memory_manager(args)
    x = MatrixFile(args.matrix).read_rows(None)
    with use_manager(manager):
        # Construct under the manager so the training workspace binds
        # to it (run_mm_inmemory re-pushes it for the run itself).
        algorithm = MiniBatchMM(
            x, args.k,
            batch_size=args.batch_size,
            n_steps=args.train_steps,
            init=args.init,
            seed=args.seed,
            kernel=args.kernel,
        )
    fit = run_mm_inmemory(
        algorithm, observers=_observers(args), mem=manager
    )
    print(fit.summary())

    plane = ServePlane(
        x, fit.centroids,
        counts=algorithm.counts,
        row_cache_bytes=args.row_cache_bytes,
        page_cache_bytes=args.page_cache_bytes,
        max_batch=args.max_batch,
        batch_window_ns=args.batch_window_us * 1e3,
        observers=_observers(args),
        faults=plan,
        retry_policy=policy,
        kernel=args.kernel,
        mem=manager,
    )
    result = plane.serve(ArrivalProcess(
        n_arrivals=args.queries,
        rate_qps=args.qps,
        seed=args.arrival_seed,
        skew=args.skew,
        ingest_fraction=args.ingest_fraction,
    ))
    p = result.percentiles
    print(
        f"served {result.n_queries} queries + {result.n_ingested} "
        f"ingests in {result.n_batches} batches "
        f"({result.sim_seconds:.4f} simulated s)"
    )
    print(
        f"query latency: p50={p['p50'] / 1e6:.3f}ms "
        f"p99={p['p99'] / 1e6:.3f}ms p999={p['p999'] / 1e6:.3f}ms"
    )
    print(
        f"I/O: {result.row_cache_hits} row-cache hits, "
        f"{result.rows_requested} rows requested, "
        f"{result.bytes_read / 1e6:.1f} MB from SSD"
    )
    if args.json is not None:
        args.json.write_text(
            _json.dumps(result.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.json}")
    if args.out is not None:
        np.savez(
            args.out,
            centroids=result.centroids,
            assignments=result.assignments,
            rows=result.rows,
            latency_ns=result.latency_ns,
        )
        print(f"wrote {args.out}")
    _print_mem(manager)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the repro-kmeans argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-kmeans",
        description="knor-repro: NUMA-optimized k-means "
        "(in-memory / semi-external / distributed, simulated hardware)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("gen", help="generate a Table 2 dataset")
    gen.add_argument("--dataset", choices=sorted(DATASETS),
                     required=True)
    gen.add_argument("--n", type=int, default=None,
                     help="rows (default: registry's scaled default)")
    gen.add_argument("-o", "--output", type=Path, required=True)
    gen.set_defaults(func=cmd_gen)

    info = sub.add_parser("info", help="inspect a .knor matrix header")
    info.add_argument("matrix")
    info.set_defaults(func=cmd_info)

    conv = sub.add_parser(
        "convert", help="convert a CSV/NPY matrix to .knor"
    )
    conv.add_argument("src")
    conv.add_argument("-o", "--output", type=Path, required=True)
    conv.add_argument("--format", choices=["csv", "npy"], default=None,
                      help="inferred from suffix when omitted")
    conv.add_argument("--delimiter", default=",")
    conv.add_argument("--skip-header", type=int, default=0)
    conv.add_argument(
        "--allow-nonfinite", action="store_true",
        help="accept NaN/inf rows instead of rejecting the matrix",
    )
    conv.set_defaults(func=cmd_convert)

    im = sub.add_parser("knori", help="in-memory clustering")
    _add_common(im)
    im.add_argument("--threads", type=int, default=None)
    im.add_argument(
        "--scheduler", choices=["numa_aware", "fifo", "static"],
        default="numa_aware",
    )
    im.set_defaults(func=cmd_knori)

    sem = sub.add_parser("knors", help="semi-external-memory clustering")
    _add_common(sem)
    sem.add_argument("--row-cache-bytes", type=int, default=None)
    sem.add_argument("--page-cache-bytes", type=int, default=None)
    sem.add_argument("--cache-interval", type=int, default=5)
    sem.add_argument(
        "--sync-io", dest="io_mode", action="store_const",
        const="sync", default="async",
        help="serialized I/O accounting (max(span, service))",
    )
    sem.add_argument(
        "--async-io", dest="io_mode", action="store_const",
        const="async",
        help="async request queue + prefetcher (default)",
    )
    sem.add_argument(
        "--io-queue-depth", type=int, default=32,
        help="outstanding requests per SSD channel (async mode)",
    )
    sem.add_argument("--checkpoint-dir", type=Path, default=None)
    sem.add_argument("--checkpoint-interval", type=int, default=10)
    sem.add_argument("--resume", action="store_true")
    sem.set_defaults(func=cmd_knors)

    dist = sub.add_parser("knord", help="distributed clustering")
    _add_common(dist)
    dist.add_argument("--machines", type=int, default=4)
    dist.add_argument(
        "--allreduce", choices=["tree", "rect"], default="tree",
        help="collective schedule for the centroid reduction: tree "
        "(default, best of binomial-tree/ring) or rect "
        "(communication-avoiding rectangular schedule -- fewer, "
        "larger messages; wins when latency dominates). Results are "
        "bit-identical; only the modeled time/wire bytes differ",
    )
    from repro.elastic import AUTOSCALER_KEYS

    dist.add_argument(
        "--autoscale", default=None, metavar="SPEC",
        help="feedback autoscaler, e.g. "
        "'target_s=0.02,provision_s=30,max=8' "
        f"(keys: {', '.join(AUTOSCALER_KEYS)}). Watches the "
        "iteration-time EWMA, straggler flags and memory pressure; "
        "requested capacity joins only after provision_s simulated "
        "seconds. Results stay bit-identical to the fixed run",
    )
    dist.add_argument(
        "--tenants", default=None, metavar="SPEC",
        help="multi-tenant fair-share run: 'name=weight[@budget_mb]' "
        "pairs, e.g. 'prod=3,batch=1@512'. Each tenant clusters the "
        "matrix on its own time-slice; weights set the fair-share "
        "rate, @budget_mb caps resident bytes (overflow spills to "
        "simulated SSD)",
    )
    dist.set_defaults(func=cmd_knord)

    srv = sub.add_parser(
        "serve",
        help="streaming ingest + assignment queries under simulated "
        "open-loop user traffic",
    )
    srv.add_argument("matrix", help="input .knor matrix file")
    srv.add_argument("-k", type=int, required=True,
                     help="number of clusters")
    srv.add_argument("--init", default="random",
                     help="random|forgy|kmeans++|kmeans|| "
                     "(default: random)")
    srv.add_argument("--seed", type=int, default=0,
                     help="model seed (init + batch sampling)")
    srv.add_argument(
        "--train-steps", type=int, default=50,
        help="mini-batch steps to fit the model before serving",
    )
    srv.add_argument(
        "--batch-size", type=int, default=1024,
        help="rows per training mini-batch (default: 1024)",
    )
    srv.add_argument(
        "--kernel", choices=["blocked", "gemm"], default="blocked",
        help="distance kernel strategy for training and query "
        "assignment (see the batch commands)",
    )
    srv.add_argument(
        "--queries", type=int, default=100_000,
        help="arrivals in the traffic trace (default: 100000)",
    )
    srv.add_argument(
        "--qps", type=float, default=50_000.0,
        help="open-loop arrival rate, queries/simulated-second",
    )
    srv.add_argument(
        "--skew", type=float, default=3.0,
        help="row-popularity skew; higher concentrates traffic on "
        "hot rows (default: 3.0)",
    )
    srv.add_argument(
        "--ingest-fraction", type=float, default=0.0,
        help="fraction of arrivals that are streaming ingests folded "
        "into the centroids (default: 0 = query-only)",
    )
    srv.add_argument(
        "--arrival-seed", type=int, default=0,
        help="traffic seed; latency percentiles are a pure function "
        "of it (default: 0)",
    )
    srv.add_argument(
        "--max-batch", type=int, default=256,
        help="max concurrent queries per dispatch batch",
    )
    srv.add_argument(
        "--batch-window-us", type=float, default=50.0,
        help="batching window in simulated microseconds",
    )
    srv.add_argument("--row-cache-bytes", type=int, default=None)
    srv.add_argument("--page-cache-bytes", type=int, default=None)
    srv.add_argument(
        "--out", type=Path, default=None,
        help="write centroids/assignments/latencies to this .npz",
    )
    srv.add_argument(
        "--json", type=Path, default=None,
        help="write the latency/IO rollup as JSON",
    )
    srv.add_argument("--trace", action="store_true",
                     help="stream serve-plane events to stderr")
    srv.add_argument("--faults", default=None, metavar="SPEC",
                     help="seeded fault spec (see the batch commands)")
    srv.add_argument("--fault-seed", type=int, default=0)
    srv.add_argument("--retry-policy", default=None, metavar="SPEC")
    _add_mem_flags(srv)
    srv.set_defaults(func=cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KnorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
