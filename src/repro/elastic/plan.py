"""Deterministic cluster membership: the elastic plane of the simulation.

The fault plane (:mod:`repro.faults`) answers "a node died"; this
module generalizes it to "the node count changed". A
:class:`MembershipPlan` is the :class:`~repro.faults.FaultPlan`'s
sibling: a seeded, deterministic source of membership events fired at
iteration boundaries -- the only points where the paper's decentralized
protocol can re-negotiate who owns which shard.

Three event kinds:

===========  =====================================================
kind         membership change
===========  =====================================================
``join``     ``count`` machines are provisioned and adopted;
             shards re-shard *onto* the joiners (the inverse of the
             node-failure survivor path) and the collective's
             timing re-spans the new fleet
``leave``    planned scale-down: the victim drains its shards onto
             the survivors (charged network transfer time), then
             departs cleanly
``preempt``  spot-instance preemption. With ``notice > 0`` the
             victim gets a grace window of that many iterations to
             flush a checkpoint / drain its queue before the
             planned loss; ``notice == 0`` degrades to the existing
             node-failure path (abrupt loss, no drain)
===========  =====================================================

Construction mirrors the fault plan exactly:

* ``MembershipPlan(spec, seed=s)`` -- rate-driven. Every event kind
  owns an independent ``default_rng([seed, _STREAM_BASE + i])``
  stream (a namespace disjoint from the fault streams, so fault seed
  and plan seed compose without interference), making the full
  membership trace a pure function of ``(seed, spec, workload)``.
* ``MembershipPlan.from_schedule([...])`` -- explicit one-shot events
  for tests ("preempt machine 1 after iteration 3 with 2 iterations
  of notice"). Scheduled events are consumed when they fire.

Nothing on this plane can change a clustering result: membership moves
shard *ownership* (pure timing) and simulated time, never the
shard-ordered numerics or the allreduce arithmetic, which stays over
the fixed shard count forever. A zero-event plan leaves every code
path byte-identical to the fixed-cluster run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigError

#: Event kinds, in stream-index order (append-only: the order is part
#: of the meaning of a membership seed).
MEMBERSHIP_KINDS = ("join", "leave", "preempt")

#: RNG stream namespace base. Fault streams use ``[seed, 0..len(SITES))``;
#: membership streams start far above so the two planes never collide
#: even when sharing one seed.
_STREAM_BASE = 100


@dataclass
class MembershipEvent:
    """One membership change (the tests' explicit-event vocabulary).

    ``machine`` targets a ``leave``/``preempt`` (``None`` lets the
    plan pick deterministically); ``count`` sizes a ``join``;
    ``notice`` is a preemption's grace window in iterations (0 =
    abrupt spot kill, the node-failure path).
    """

    kind: str
    iteration: int
    machine: int | None = None
    count: int = 1
    notice: int = 0

    def __post_init__(self) -> None:
        if self.kind not in MEMBERSHIP_KINDS:
            raise ConfigError(
                f"unknown membership kind {self.kind!r}; choose from "
                f"{MEMBERSHIP_KINDS}"
            )
        if self.count < 1:
            raise ConfigError(f"count must be >= 1, got {self.count}")
        if self.notice < 0:
            raise ConfigError(f"notice must be >= 0, got {self.notice}")
        if self.kind != "join" and self.count != 1:
            raise ConfigError(
                f"{self.kind!r} events change one machine (count=1)"
            )


@dataclass(frozen=True)
class MembershipSpec:
    """Per-kind event rates and caps for a seeded plan.

    Rates are per iteration boundary. Caps bound the event count so
    any rate-driven plan terminates; ``min_machines``/``max_machines``
    clamp the fleet so churn cannot strand the run.
    """

    join_rate: float = 0.0
    leave_rate: float = 0.0
    preempt_rate: float = 0.0
    #: Grace window (iterations) granted by rate-driven preemptions.
    preempt_notice: int = 2
    max_joins: int = 4
    max_leaves: int = 2
    max_preempts: int = 2
    min_machines: int = 1
    max_machines: int = 16

    def __post_init__(self) -> None:
        for name in ("join_rate", "leave_rate", "preempt_rate"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {v}")
        for name in ("max_joins", "max_leaves", "max_preempts",
                     "preempt_notice"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.min_machines < 1:
            raise ConfigError(
                f"min_machines must be >= 1, got {self.min_machines}"
            )
        if self.max_machines < self.min_machines:
            raise ConfigError(
                "max_machines must be >= min_machines, got "
                f"{self.max_machines} < {self.min_machines}"
            )

    @property
    def any_enabled(self) -> bool:
        return any(
            getattr(self, f) > 0.0
            for f in ("join_rate", "leave_rate", "preempt_rate")
        )


class MembershipPlan:
    """Deterministic source of membership decisions for one run.

    Plans are stateful (consumed schedules, event caps): build a fresh
    plan per run, and wire each plan to exactly **one** consumer --
    the :class:`~repro.runtime.backends.DistributedBackend` polls
    :meth:`poll`; the single-machine backends' iteration loop polls
    :meth:`worker_preemption`. Double-wiring would double-draw the
    streams (the loop refuses a plan when the backend handles one).
    """

    def __init__(
        self,
        spec: MembershipSpec | None = None,
        *,
        seed: int = 0,
        schedule: list[MembershipEvent] | None = None,
    ) -> None:
        self.spec = spec if spec is not None else MembershipSpec()
        self.seed = seed
        self._schedule: list[MembershipEvent] = [
            replace(ev) for ev in (schedule or [])
        ]
        self._rng = {
            kind: np.random.default_rng([seed, _STREAM_BASE + i])
            for i, kind in enumerate(MEMBERSHIP_KINDS)
        }
        self.joins = 0
        self.leaves = 0
        self.preempts = 0

    @classmethod
    def from_schedule(
        cls, events: list[MembershipEvent]
    ) -> "MembershipPlan":
        """Explicit one-shot schedule (rates all zero)."""
        return cls(MembershipSpec(), schedule=events)

    @property
    def any_enabled(self) -> bool:
        """Can this plan ever fire an event? ``False`` guarantees the
        run takes the fixed-cluster code paths byte-identically."""
        return self.spec.any_enabled or bool(self._schedule)

    # -- schedule machinery -------------------------------------------

    def _take(
        self, kind: str, iteration: int
    ) -> MembershipEvent | None:
        """Consume one matching scheduled event, if any."""
        for i, ev in enumerate(self._schedule):
            if ev.kind != kind or ev.iteration != iteration:
                continue
            del self._schedule[i]
            return ev
        return None

    def _draw(self, kind: str) -> float:
        return float(self._rng[kind].random())

    def _count(self, ev: MembershipEvent) -> None:
        if ev.kind == "join":
            self.joins += 1
        elif ev.kind == "leave":
            self.leaves += 1
        else:
            self.preempts += 1

    # -- query sites ---------------------------------------------------

    def poll(
        self, iteration: int, alive: list[int]
    ) -> list[MembershipEvent]:
        """Membership changes at the start of ``iteration``.

        The distributed backend's query site: scheduled events first
        (in schedule order), then at most one rate-driven event per
        kind, drawn from that kind's stream. ``alive`` lists the
        currently live machine ids -- victims are drawn from it, and
        the fleet-size clamps are enforced here so a plan can never
        scale below ``min_machines`` or above ``max_machines``.
        """
        spec = self.spec
        events: list[MembershipEvent] = []
        n_alive = len(alive)
        for kind in MEMBERSHIP_KINDS:
            while True:
                ev = self._take(kind, iteration)
                if ev is None:
                    break
                if kind != "join" and (
                    n_alive <= 1
                    or (ev.machine is not None
                        and ev.machine not in alive)
                ):
                    continue  # victim already gone; event is moot
                if ev.machine is None and kind != "join":
                    ev = replace(ev, machine=alive[0])
                self._count(ev)
                events.append(ev)
                if kind == "join":
                    n_alive += ev.count
                else:
                    n_alive -= 1
        # Rate-driven: one boundary, at most one drawn event per kind.
        if (
            spec.join_rate > 0.0
            and self.joins < spec.max_joins
            and n_alive < spec.max_machines
            and self._draw("join") < spec.join_rate
        ):
            ev = MembershipEvent("join", iteration)
            self._count(ev)
            events.append(ev)
            n_alive += 1
        if (
            spec.leave_rate > 0.0
            and self.leaves < spec.max_leaves
            and n_alive > spec.min_machines
            and self._draw("leave") < spec.leave_rate
        ):
            idx = int(self._rng["leave"].integers(len(alive)))
            ev = MembershipEvent("leave", iteration, machine=alive[idx])
            self._count(ev)
            events.append(ev)
            n_alive -= 1
        if (
            spec.preempt_rate > 0.0
            and self.preempts < spec.max_preempts
            and n_alive > spec.min_machines
            and self._draw("preempt") < spec.preempt_rate
        ):
            idx = int(self._rng["preempt"].integers(len(alive)))
            ev = MembershipEvent(
                "preempt", iteration, machine=alive[idx],
                notice=spec.preempt_notice,
            )
            self._count(ev)
            events.append(ev)
        return events

    def worker_preemption(
        self, iteration: int
    ) -> MembershipEvent | None:
        """Spot preemption of the (single) worker machine, if any.

        The single-machine backends' query site: ``join``/``leave``
        are meaningless for one machine, so only the ``preempt``
        stream is consulted. With ``notice > 0`` the iteration loop
        flushes a checkpoint at the deadline before the planned loss;
        ``notice == 0`` degrades to the existing worker-crash path.
        """
        ev = self._take("preempt", iteration)
        if ev is not None:
            self._count(ev)
            return ev
        spec = self.spec
        if (
            spec.preempt_rate == 0.0
            or self.preempts >= spec.max_preempts
        ):
            return None
        if self._draw("preempt") < spec.preempt_rate:
            ev = MembershipEvent(
                "preempt", iteration, machine=0,
                notice=spec.preempt_notice,
            )
            self._count(ev)
            return ev
        return None


# -- CLI spec parsing ----------------------------------------------------

_MEMBERSHIP_KEYS = {
    "join": ("join_rate", float),
    "leave": ("leave_rate", float),
    "preempt": ("preempt_rate", float),
    "preempt_notice": ("preempt_notice", int),
    "max_joins": ("max_joins", int),
    "max_leaves": ("max_leaves", int),
    "max_preempts": ("max_preempts", int),
    "min_machines": ("min_machines", int),
    "max_machines": ("max_machines", int),
}

#: Public key list for generated CLI help and round-trip tests.
MEMBERSHIP_SPEC_KEYS = tuple(sorted(_MEMBERSHIP_KEYS))


def parse_membership_spec(text: str) -> MembershipSpec:
    """Parse the CLI's ``--elastic-plan`` spec, e.g.
    ``"preempt=0.05,preempt_notice=2,join=0.1,max_machines=8"``."""
    from repro.faults import _pairs

    kwargs: dict = {}
    for key, value in _pairs(text, "--elastic-plan"):
        if key not in _MEMBERSHIP_KEYS:
            raise ConfigError(
                f"unknown membership key {key!r}; choose from "
                f"{sorted(_MEMBERSHIP_KEYS)}"
            )
        name, conv = _MEMBERSHIP_KEYS[key]
        kwargs[name] = conv(value)
    return MembershipSpec(**kwargs)


def format_membership_spec(spec: MembershipSpec) -> str:
    """Render a spec back into ``--elastic-plan`` syntax (the inverse
    of :func:`parse_membership_spec`; round-trips exactly)."""
    parts = []
    for key in MEMBERSHIP_SPEC_KEYS:
        name, conv = _MEMBERSHIP_KEYS[key]
        value = getattr(spec, name)
        parts.append(f"{key}={value:g}" if conv is float
                     else f"{key}={value}")
    return ",".join(parts)
