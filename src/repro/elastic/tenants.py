"""Multi-tenant fair share: several jobs, one simulated cluster.

The scheduler runs each tenant's :class:`~repro.runtime.IterationLoop`
one iteration boundary at a time and always picks the tenant with the
lowest **virtual time** -- consumed simulated nanoseconds divided by
the tenant's weight, the classic weighted-fair-queueing rule. Ties
break on the tenant name, so the interleaving is a pure function of
the jobs' simulated costs and weights: no wall clocks, no racing.

Isolation is per tenant:

* **memory** -- each job may carry its own
  :class:`~repro.mem.BudgetedManager`; the scheduler enters it
  (``use_manager``) around every boundary it runs for that tenant, so
  one tenant spilling to simulated SSD never charges a neighbour's
  budget;
* **elastic events** -- each job's own observers receive that job's
  ``on_scale_up`` / ``on_scale_down`` / ``on_preempt_notice`` stream
  (the loop's observer chain is per tenant already);
* **failures** -- a tenant that aborts (typed error) is recorded and
  removed from the rotation; the others keep running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError, KnorError


@dataclass(frozen=True)
class TenantSpec:
    """One tenant as named on the CLI."""

    name: str
    weight: float = 1.0
    #: Per-tenant memory budget, MB (``None`` = unbudgeted).
    budget_mb: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: weight must be > 0, got "
                f"{self.weight}"
            )
        if self.budget_mb is not None and self.budget_mb <= 0:
            raise ConfigError(
                f"tenant {self.name!r}: budget_mb must be > 0, got "
                f"{self.budget_mb}"
            )


@dataclass
class TenantJob:
    """A tenant's runnable work: its loop plus its isolation context."""

    spec: TenantSpec
    #: An :class:`~repro.runtime.IterationLoop` (started by the
    #: scheduler; drive it only through the scheduler).
    loop: Any
    #: Optional per-tenant memory manager (e.g. a BudgetedManager).
    manager: Any = None

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass
class TenantOutcome:
    """What one tenant's job produced under the scheduler."""

    name: str
    result: Any = None          # LoopResult when the job completed
    error: str | None = None    # typed abort, when it did not
    sim_ns: float = 0.0         # simulated time consumed
    boundaries: int = 0         # iteration boundaries granted


class FairShareScheduler:
    """Deterministic weighted fair share over tenant jobs."""

    def __init__(self, jobs: list[TenantJob]) -> None:
        if not jobs:
            raise ConfigError("fair-share scheduler needs >= 1 tenant")
        names = [j.name for j in jobs]
        if len(set(names)) != len(names):
            raise ConfigError(f"duplicate tenant names: {sorted(names)}")
        self.jobs = list(jobs)
        #: The grant sequence, for tests: ``[(tenant, iteration), ...]``.
        self.grants: list[tuple[str, int]] = []

    def run(self) -> dict[str, TenantOutcome]:
        """Run every tenant to completion (or typed abort)."""
        from repro.mem import use_manager

        outcomes = {
            j.name: TenantOutcome(name=j.name) for j in self.jobs
        }
        virtual: dict[str, float] = {j.name: 0.0 for j in self.jobs}
        for job in self.jobs:
            with use_manager(job.manager):
                job.loop.start()
        active = list(self.jobs)
        while active:
            job = min(
                active, key=lambda j: (virtual[j.name], j.name)
            )
            out = outcomes[job.name]
            before = job.loop.consumed_sim_ns
            try:
                with use_manager(job.manager):
                    more = job.loop.step()
            except KnorError as exc:
                out.error = f"{type(exc).__name__}: {exc}"
                active.remove(job)
                continue
            if not more:
                with use_manager(job.manager):
                    out.result = job.loop.finish()
                active.remove(job)
                continue
            after = job.loop.consumed_sim_ns
            # A recovered boundary may rewind records; time never
            # rewinds. The 1ns floor guarantees rotation progress.
            charged = max(after - before, 1.0)
            out.sim_ns += charged
            out.boundaries += 1
            self.grants.append((job.name, out.boundaries))
            virtual[job.name] += charged / job.spec.weight
        return outcomes


# -- CLI spec parsing ----------------------------------------------------

def parse_tenants(text: str) -> list[TenantSpec]:
    """Parse the CLI's ``--tenants`` spec.

    Comma-separated ``name=weight`` entries, each with an optional
    ``@budget_mb`` suffix: ``"alice=2,bob=1@64"`` is two tenants where
    alice gets 2x the capacity and bob runs under a 64 MB budget.
    """
    specs: list[TenantSpec] = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(
                f"malformed --tenants entry {part!r} "
                "(expected name=weight[@budget_mb])"
            )
        name, rest = part.split("=", 1)
        budget_mb: float | None = None
        if "@" in rest:
            weight_s, budget_s = rest.split("@", 1)
            budget_mb = float(budget_s)
        else:
            weight_s = rest
        specs.append(
            TenantSpec(
                name=name.strip(),
                weight=float(weight_s),
                budget_mb=budget_mb,
            )
        )
    if not specs:
        raise ConfigError("--tenants named no tenants")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate tenant names: {sorted(names)}")
    return specs
