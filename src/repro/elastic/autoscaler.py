"""Autoscaler policy: capacity as a feedback loop over simulated time.

The autoscaler watches the three signals ROADMAP items 2 and 3 name:

* **per-iteration wall time** -- an EWMA of each iteration's
  ``sim_ns`` against a target watermark (the basic "we are too slow,
  buy machines" loop);
* **straggler pressure** -- machines the fault plane slowed and the
  EWMA detector flagged still occupy capacity; surviving fleet
  throughput sags even after their shards re-shard away;
* **memory pressure** -- :class:`~repro.mem.manager.MemoryCounters`
  resident-byte utilization against the budget and fresh spill
  activity (a machine spilling its working set to simulated SSD is a
  machine that needs a peer, not a bigger EWMA).

Requests are charged **honest simulated time**: capacity asked for at
simulated time ``T`` joins only at ``T + provision_s`` on the same
clock the iteration records advance
(:class:`~repro.simhw.engine.ProvisionTimeline`). Scale-down is
graceful -- the victim drains its shards like a planned ``leave``.

Everything here is deterministic: the decision log is a pure function
of the iteration times, straggler counts and memory counters that
drove it, which are themselves pure functions of the workload and the
fault/plan seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.simhw.engine import ProvisionTimeline


@dataclass(frozen=True)
class AutoscalerPolicy:
    """Scaling thresholds and pacing for one run."""

    #: Scale up when the iteration-time EWMA exceeds this (seconds).
    target_iter_s: float
    #: Scale down when the EWMA falls below this (seconds; ``None``
    #: disables scale-down).
    scale_down_iter_s: float | None = None
    #: EWMA smoothing factor in (0, 1].
    alpha: float = 0.3
    #: Request→grant provisioning latency, simulated seconds.
    provision_s: float = 60.0
    #: Iteration boundaries to wait between scaling decisions.
    cooldown_iters: int = 3
    min_machines: int = 1
    max_machines: int = 16
    #: Machines requested per scale-up decision.
    step: int = 1
    #: Budget utilization (live/budget) that triggers a scale-up.
    mem_utilization: float = 0.9
    #: Count flagged stragglers as a scale-up signal.
    straggler_signal: bool = True
    #: Boundaries observed before the first decision (raw early EWMAs
    #: would misread startup skew as load).
    warmup_iters: int = 2

    def __post_init__(self) -> None:
        if self.target_iter_s <= 0:
            raise ConfigError(
                f"target_iter_s must be > 0, got {self.target_iter_s}"
            )
        if (
            self.scale_down_iter_s is not None
            and not 0 < self.scale_down_iter_s < self.target_iter_s
        ):
            raise ConfigError(
                "scale_down_iter_s must sit in (0, target_iter_s), got "
                f"{self.scale_down_iter_s}"
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigError(f"alpha must be in (0, 1], got {self.alpha}")
        if self.provision_s < 0:
            raise ConfigError(
                f"provision_s must be >= 0, got {self.provision_s}"
            )
        if self.cooldown_iters < 0 or self.warmup_iters < 0:
            raise ConfigError("cooldown/warmup must be >= 0")
        if self.min_machines < 1:
            raise ConfigError(
                f"min_machines must be >= 1, got {self.min_machines}"
            )
        if self.max_machines < self.min_machines:
            raise ConfigError(
                "max_machines must be >= min_machines, got "
                f"{self.max_machines} < {self.min_machines}"
            )
        if self.step < 1:
            raise ConfigError(f"step must be >= 1, got {self.step}")
        if not 0.0 < self.mem_utilization <= 1.0:
            raise ConfigError(
                "mem_utilization must be in (0, 1], got "
                f"{self.mem_utilization}"
            )


class Autoscaler:
    """One run's scaling state machine over a provisioning timeline.

    The distributed backend drives it: :meth:`observe` after every
    iteration (advancing the simulated clock), then
    :meth:`take_grants` / :meth:`take_scale_down` at the next
    iteration boundary to learn what membership changes land now.
    """

    def __init__(self, policy: AutoscalerPolicy) -> None:
        self.policy = policy
        self.timeline = ProvisionTimeline(policy.provision_s * 1e9)
        self.ewma_s: float | None = None
        self._rounds = 0
        self._cooldown = 0
        self._last_spills = 0
        self._want_down = False
        #: Append-only decision log (tests pin its determinism).
        self.decisions: list[dict] = []

    def observe(
        self,
        iteration: int,
        sim_ns: float,
        *,
        n_machines: int,
        stragglers: int = 0,
        mem: "object | None" = None,
    ) -> None:
        """Fold one finished iteration into the scaling state."""
        pol = self.policy
        self.timeline.advance(sim_ns)
        it_s = sim_ns / 1e9
        self.ewma_s = (
            it_s if self.ewma_s is None
            else self.ewma_s + pol.alpha * (it_s - self.ewma_s)
        )
        self._rounds += 1
        signals = []
        if self.ewma_s > pol.target_iter_s:
            signals.append("iter-time")
        if stragglers and pol.straggler_signal:
            signals.append("straggler")
        if mem is not None:
            spills = getattr(mem, "spill_count", 0)
            if spills > self._last_spills:
                signals.append("mem-spill")
            self._last_spills = spills
            if getattr(mem, "budget_utilization", 0.0) >= pol.mem_utilization:
                signals.append("mem-resident")
        if self._rounds <= pol.warmup_iters:
            return
        if self._cooldown > 0:
            self._cooldown -= 1
            return
        provisioned = n_machines + self.timeline.outstanding
        if signals and provisioned < pol.max_machines:
            count = min(pol.step, pol.max_machines - provisioned)
            req = self.timeline.request(count)
            self._cooldown = pol.cooldown_iters
            self.decisions.append({
                "iteration": iteration, "action": "request",
                "count": count, "signals": signals,
                "ewma_s": self.ewma_s,
                "ready_at_s": req.ready_at_ns / 1e9,
            })
        elif (
            not signals
            and pol.scale_down_iter_s is not None
            and self.ewma_s < pol.scale_down_iter_s
            and n_machines > pol.min_machines
            and self.timeline.outstanding == 0
        ):
            self._want_down = True
            self._cooldown = pol.cooldown_iters
            self.decisions.append({
                "iteration": iteration, "action": "release",
                "count": 1, "signals": ["iter-time-low"],
                "ewma_s": self.ewma_s,
            })

    def take_grants(self) -> int:
        """Machines whose provisioning latency elapsed: join them now."""
        return self.timeline.take_ready()

    def take_scale_down(self) -> bool:
        """True once per granted scale-down decision (drain one)."""
        if not self._want_down:
            return False
        self._want_down = False
        return True


# -- CLI spec parsing ----------------------------------------------------

_AUTOSCALER_KEYS = {
    "target_s": ("target_iter_s", float),
    "down_s": ("scale_down_iter_s", float),
    "alpha": ("alpha", float),
    "provision_s": ("provision_s", float),
    "cooldown": ("cooldown_iters", int),
    "min": ("min_machines", int),
    "max": ("max_machines", int),
    "step": ("step", int),
    "mem_util": ("mem_utilization", float),
    "warmup": ("warmup_iters", int),
}

#: Public key list for generated CLI help.
AUTOSCALER_KEYS = tuple(sorted(_AUTOSCALER_KEYS))


def parse_autoscaler(text: str) -> AutoscalerPolicy:
    """Parse the CLI's ``--autoscale`` spec, e.g.
    ``"target_s=0.02,provision_s=30,max=8"``."""
    from repro.faults import _pairs

    kwargs: dict = {}
    for key, value in _pairs(text, "--autoscale"):
        if key not in _AUTOSCALER_KEYS:
            raise ConfigError(
                f"unknown autoscaler key {key!r}; choose from "
                f"{sorted(_AUTOSCALER_KEYS)}"
            )
        name, conv = _AUTOSCALER_KEYS[key]
        kwargs[name] = conv(value)
    if "target_iter_s" not in kwargs:
        raise ConfigError("--autoscale requires target_s=<seconds>")
    return AutoscalerPolicy(**kwargs)
