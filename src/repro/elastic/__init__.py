"""The elastic cluster plane: membership churn, spot preemption,
autoscaling and multi-tenant fair share.

Everything here follows the fault plane's two-plane invariant
(:mod:`repro.faults`): elastic events change **which simulated
machines run the shards and how long iterations take**, never the
clustering numerics. A run under a zero-event plan takes the exact
pre-elastic code paths; a run whose membership returns to the initial
fleet produces bit-identical clustering results to a fixed-cluster
run; and every elastic trace is a pure function of the plan seed (and
the fault seed it composes with -- the RNG stream namespaces are
disjoint).

Three pieces:

* :class:`MembershipPlan` -- a seeded, deterministic schedule of
  ``join`` / ``leave`` / ``preempt`` events at iteration boundaries
  (the sibling of :class:`~repro.faults.FaultPlan`). Preemption
  carries a notice window; zero notice degrades to the node-failure
  path.
* :class:`Autoscaler` -- a policy watching iteration-time EWMA,
  straggler pressure and memory-budget pressure, requesting capacity
  that arrives only after an honest simulated provisioning latency
  (:class:`~repro.simhw.ProvisionTimeline`).
* :class:`FairShareScheduler` -- several tenant jobs over one
  simulated cluster under deterministic weighted fair share with
  per-tenant memory budgets and observer streams.
"""

from repro.elastic.plan import (
    MEMBERSHIP_KINDS,
    MEMBERSHIP_SPEC_KEYS,
    MembershipEvent,
    MembershipPlan,
    MembershipSpec,
    format_membership_spec,
    parse_membership_spec,
)
from repro.elastic.autoscaler import (
    AUTOSCALER_KEYS,
    Autoscaler,
    AutoscalerPolicy,
    parse_autoscaler,
)
from repro.elastic.tenants import (
    FairShareScheduler,
    TenantJob,
    TenantOutcome,
    TenantSpec,
    parse_tenants,
)

__all__ = [
    "MEMBERSHIP_KINDS",
    "MEMBERSHIP_SPEC_KEYS",
    "MembershipEvent",
    "MembershipPlan",
    "MembershipSpec",
    "format_membership_spec",
    "parse_membership_spec",
    "AUTOSCALER_KEYS",
    "Autoscaler",
    "AutoscalerPolicy",
    "parse_autoscaler",
    "FairShareScheduler",
    "TenantJob",
    "TenantOutcome",
    "TenantSpec",
    "parse_tenants",
]
