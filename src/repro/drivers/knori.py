"""knori: the NUMA-optimized in-memory k-means module (Section 5).

Runs ||Lloyd's (Algorithm 1) with optional MTI pruning on one simulated
NUMA machine. Per iteration:

1. The exact numerics (assignment + pruning decisions + centroid
   update) are computed for the whole dataset.
2. The dataset's row blocks become tasks (8192 rows each, the paper's
   minimum task size), each stamped with its exact work content and
   the NUMA bank its rows live on.
3. The event-driven engine replays the iteration through the chosen
   scheduler over the machine's bound (or oblivious) threads, charging
   calibrated compute/memory/lock costs, followed by the single global
   barrier and the funnel reduction.

``knori(x, k, pruning=None)`` is the paper's knori-;
``bind_policy=BindPolicy.OBLIVIOUS`` is the Figure 4 baseline;
``scheduler="fifo" | "static"`` are the Figure 5 baselines.
"""

from __future__ import annotations

import numpy as np

from repro.core import ConvergenceCriteria
from repro.drivers.common import (
    NumericsLoop,
    check_pruning,
    default_criteria,
    make_scheduler,
    resolve_init,
)
from repro.errors import DatasetError
from repro.metrics import IterationRecord, RunResult
from repro.sched import build_task_blocks
from repro.sched.blocks import auto_task_rows
from repro.simhw import (
    AllocPolicy,
    BindPolicy,
    CostModel,
    FOUR_SOCKET_XEON,
    SimMachine,
)

_F64 = 8
_I32 = 4


def _register_memory(
    machine: SimMachine, n: int, d: int, k: int, pruning: str | None
) -> None:
    """Record the run's allocations for Table 1 accounting."""
    mem = machine.memory
    t = machine.n_threads
    data_policy = (
        AllocPolicy.OBLIVIOUS
        if machine.bind_policy is BindPolicy.OBLIVIOUS
        else AllocPolicy.PARTITIONED
    )
    mem.alloc("row_data", n * d * _F64, data_policy, component="data")
    mem.alloc(
        "assignment", n * _I32, data_policy, component="assignment"
    )
    mem.alloc(
        "global_centroids",
        k * d * _F64,
        AllocPolicy.INTERLEAVE,
        component="centroids",
    )
    # Per-thread centroid copies: sums (k*d) + counts (k) per thread,
    # each bound to the owning thread's node.
    for th in machine.threads:
        mem.alloc(
            f"thread{th.thread_id}_centroids",
            k * d * _F64 + k * _F64,
            AllocPolicy.NUMA_BIND,
            component="per_thread_centroids",
            home_node=th.node,
        )
    if pruning == "mti":
        mem.alloc(
            "mti_upper_bounds", n * _F64, data_policy,
            component="mti_bounds",
        )
        mem.alloc(
            "centroid_dist_matrix",
            (k * (k + 1) // 2) * _F64,
            AllocPolicy.INTERLEAVE,
            component="mti_bounds",
        )
    elif pruning == "elkan":
        mem.alloc(
            "elkan_upper_bounds", n * _F64, data_policy,
            component="ti_bounds",
        )
        mem.alloc(
            "elkan_lower_bounds", n * k * _F64, data_policy,
            component="ti_lower_bound_matrix",
        )
        mem.alloc(
            "centroid_dist_matrix",
            (k * (k + 1) // 2) * _F64,
            AllocPolicy.INTERLEAVE,
            component="ti_bounds",
        )


def knori(
    x: np.ndarray,
    k: int,
    *,
    pruning: str | None = "mti",
    cost_model: CostModel = FOUR_SOCKET_XEON,
    n_threads: int | None = None,
    bind_policy: BindPolicy = BindPolicy.NUMA_BIND,
    scheduler: str = "numa_aware",
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
    task_rows: int | None = None,
    machine: SimMachine | None = None,
) -> RunResult:
    """In-memory NUMA-optimized k-means on a simulated machine.

    Parameters
    ----------
    x:
        Data matrix (n, d), float64.
    k:
        Number of clusters.
    pruning:
        ``"mti"`` (the paper's knori), ``None`` (knori-), or
        ``"elkan"`` (full TI baseline, O(nk) memory).
    cost_model:
        Machine to simulate; defaults to the paper's 4-socket Xeon.
    n_threads:
        Worker threads ``T``; defaults to the machine's physical cores.
    bind_policy:
        ``NUMA_BIND`` (paper default) or ``OBLIVIOUS`` (Fig 4 baseline).
    scheduler:
        ``"numa_aware"`` (default), ``"fifo"``, or ``"static"``.
    init, seed:
        Initialization method/array and RNG seed.
    criteria:
        Stopping rules (default: exact convergence, <=100 iterations).
    task_rows:
        Rows per task block (paper minimum: 8192).
    machine:
        Pre-built :class:`SimMachine` (overrides ``cost_model``/
        ``n_threads``/``bind_policy``).

    Returns
    -------
    RunResult
        Exact clustering outputs plus per-iteration simulated timing,
        pruning statistics and the memory breakdown.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    n, d = x.shape
    pruning = check_pruning(pruning)
    crit = default_criteria(criteria)

    if machine is None:
        machine = SimMachine.build(
            cost_model, n_threads=n_threads, bind_policy=bind_policy
        )
    sched = make_scheduler(scheduler)
    if task_rows is None:
        task_rows = auto_task_rows(n, machine.n_threads)
    centroids0 = resolve_init(x, k, init, seed)
    _register_memory(machine, n, d, k, pruning)

    loop = NumericsLoop(
        x, centroids0, pruning, n_partitions=machine.n_threads
    )
    records: list[IterationRecord] = []
    converged = False
    state_bytes = 12 if pruning else 4  # ub (8B) + assign vs assign only

    for it in range(crit.max_iters):
        num = loop.step()
        tasks = build_task_blocks(
            n,
            d,
            machine,
            dist_per_row=num.dist_per_row,
            needs_data=num.needs_data,
            task_rows=task_rows,
            state_bytes_per_row=state_bytes,
        )
        trace = machine.engine.run(
            sched, tasks, machine.threads, d=d, k=k
        )
        records.append(
            IterationRecord(
                iteration=it,
                sim_ns=trace.total_ns,
                n_changed=num.n_changed,
                dist_computations=int(num.dist_per_row.sum()),
                clause1_rows=num.clause1_rows,
                clause2_pruned=num.clause2_pruned,
                clause3_pruned=num.clause3_pruned,
                busy_fraction=trace.busy_fraction,
                steals=trace.total_steals,
                rows_active=int(num.needs_data.sum()),
            )
        )
        if crit.converged(n, num.n_changed, num.motion):
            converged = True
            break

    algo = {"mti": "knori", "elkan": "knori[elkan]", None: "knori-"}[
        pruning
    ]
    return RunResult(
        algorithm=algo,
        centroids=loop.centroids,
        assignment=loop.assignment.copy(),
        iterations=len(records),
        converged=converged,
        inertia=loop.inertia(),
        records=records,
        memory_breakdown=machine.memory.component_breakdown(),
        params={
            "n": n,
            "d": d,
            "k": k,
            "T": machine.n_threads,
            "pruning": pruning,
            "bind_policy": machine.bind_policy.value,
            "scheduler": scheduler,
            "task_rows": task_rows,
        },
    )
