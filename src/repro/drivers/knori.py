"""knori: the NUMA-optimized in-memory k-means module (Section 5).

Runs ||Lloyd's (Algorithm 1) with optional MTI pruning on one simulated
NUMA machine. Per iteration:

1. The exact numerics (assignment + pruning decisions + centroid
   update) are computed for the whole dataset.
2. The dataset's row blocks become tasks (8192 rows each, the paper's
   minimum task size), each stamped with its exact work content and
   the NUMA bank its rows live on.
3. The event-driven engine replays the iteration through the chosen
   scheduler over the machine's bound (or oblivious) threads, charging
   calibrated compute/memory/lock costs, followed by the single global
   barrier and the funnel reduction.

``knori(x, k, pruning=None)`` is the paper's knori-;
``bind_policy=BindPolicy.OBLIVIOUS`` is the Figure 4 baseline;
``scheduler="fifo" | "static"`` are the Figure 5 baselines.

This driver is a parameter-translation shim over
:mod:`repro.runtime`: it builds the machine, numerics source and
:class:`~repro.runtime.InMemoryBackend`, then hands the iteration
skeleton to the shared :class:`~repro.runtime.IterationLoop`.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core import ConvergenceCriteria
from repro.drivers.common import (
    NumericsLoop,
    check_pruning,
    default_criteria,
    make_scheduler,
    resolve_init,
    resolve_memory_manager,
)
from repro.errors import DatasetError
from repro.mem import MemoryManager, use_manager
from repro.metrics import RunResult
from repro.runtime import (
    InMemoryBackend,
    IterationLoop,
    KmeansSource,
    RunObserver,
    register_inmemory_memory,
)
from repro.sched.blocks import auto_task_rows
from repro.simhw import (
    BindPolicy,
    CostModel,
    FOUR_SOCKET_XEON,
    SimMachine,
)


def knori(
    x: np.ndarray,
    k: int,
    *,
    pruning: str | None = "mti",
    cost_model: CostModel = FOUR_SOCKET_XEON,
    n_threads: int | None = None,
    bind_policy: BindPolicy = BindPolicy.NUMA_BIND,
    scheduler: str = "numa_aware",
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
    task_rows: int | None = None,
    machine: SimMachine | None = None,
    observers: Sequence[RunObserver] = (),
    faults: "FaultPlan | None" = None,
    membership: Any = None,
    empty_cluster: str = "drop",
    kernel: str = "blocked",
    mem: str | MemoryManager | None = None,
    mem_budget_bytes: int | None = None,
) -> RunResult:
    """In-memory NUMA-optimized k-means on a simulated machine.

    Parameters
    ----------
    x:
        Data matrix (n, d), float64.
    k:
        Number of clusters.
    pruning:
        ``"mti"`` (the paper's knori), ``None`` (knori-), or
        ``"elkan"`` (full TI baseline, O(nk) memory).
    cost_model:
        Machine to simulate; defaults to the paper's 4-socket Xeon.
    n_threads:
        Worker threads ``T``; defaults to the machine's physical cores.
    bind_policy:
        ``NUMA_BIND`` (paper default) or ``OBLIVIOUS`` (Fig 4 baseline).
    scheduler:
        ``"numa_aware"`` (default), ``"fifo"``, or ``"static"``.
    init, seed:
        Initialization method/array and RNG seed.
    criteria:
        Stopping rules (default: exact convergence, <=100 iterations).
    task_rows:
        Rows per task block (paper minimum: 8192).
    machine:
        Pre-built :class:`SimMachine` (overrides ``cost_model``/
        ``n_threads``/``bind_policy``).
    observers:
        :class:`~repro.runtime.RunObserver` hooks receiving the run's
        trace-event stream (iteration boundaries, task traces).
    faults:
        Optional :class:`~repro.faults.FaultPlan`. Worker crashes are
        answered by a deterministic from-scratch rerun (the paper
        offers no in-memory checkpointing); results stay bit-identical
        to a fault-free run. Straggler injections slow simulated
        threads and engage EWMA-based detection plus work rebalancing
        (simulated time only, numerics untouched).
    empty_cluster:
        Policy when a cluster loses all members: ``"drop"`` (keep the
        previous centroid, the default), ``"reseed"`` (revive from the
        farthest point; unpruned algorithm only), or ``"error"``.
    kernel:
        Distance kernel strategy: ``"blocked"`` (default, the bit-exact
        reference) or ``"gemm"`` (norm-caching GEMM expansion;
        identical assignments, ULP-equivalent distances -- see
        :mod:`repro.core.distance`).
    mem, mem_budget_bytes:
        Memory manager for the run's workspace and scratch buffers:
        ``"numpy"`` (default behavior), ``"arena"`` (pooled reuse),
        ``"budget"`` (hard byte cap with SSD spill;
        ``mem_budget_bytes`` required), or a prebuilt
        :class:`~repro.mem.MemoryManager`. Results are bit-identical
        across managers (see :mod:`repro.mem`).

    Returns
    -------
    RunResult
        Exact clustering outputs plus per-iteration simulated timing,
        pruning statistics and the memory breakdown.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    n, d = x.shape
    if k > n:
        raise DatasetError(
            f"k={k} clusters cannot exceed the n={n} data rows"
        )
    pruning = check_pruning(pruning)
    crit = default_criteria(criteria)

    if machine is None:
        machine = SimMachine.build(
            cost_model, n_threads=n_threads, bind_policy=bind_policy
        )
    sched = make_scheduler(scheduler)
    if task_rows is None:
        task_rows = auto_task_rows(n, machine.n_threads)
    centroids0 = resolve_init(x, k, init, seed)
    register_inmemory_memory(machine, n, d, k, pruning)

    manager = resolve_memory_manager(mem, mem_budget_bytes, observers)
    with use_manager(manager):
        loop = NumericsLoop(
            x, centroids0, pruning, n_partitions=machine.n_threads,
            empty_cluster=empty_cluster, kernel=kernel,
        )
        backend = InMemoryBackend(
            machine,
            sched,
            KmeansSource(loop, k),
            n_rows=n,
            d=d,
            reduction_k=k,
            task_rows=task_rows,
            faults=faults,
        )
        result = IterationLoop(
            backend, criteria=crit, observers=observers, faults=faults,
            membership=membership,
        ).run()

    algo = {"mti": "knori", "elkan": "knori[elkan]", None: "knori-"}[
        pruning
    ]
    return result.as_run_result(
        algorithm=algo,
        centroids=loop.centroids,
        assignment=loop.assignment.copy(),
        inertia=loop.inertia(),
        memory_breakdown=machine.memory.component_breakdown(),
        params={
            "n": n,
            "d": d,
            "k": k,
            "T": machine.n_threads,
            "pruning": pruning,
            "bind_policy": machine.bind_policy.value,
            "scheduler": scheduler,
            "task_rows": task_rows,
            "kernel": loop.kernel,
        },
    )
