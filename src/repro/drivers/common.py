"""Shared driver plumbing: scheduler lookup, pruning loops, accounting."""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core import (
    ConvergenceCriteria,
    elkan_init,
    elkan_iteration,
    full_iteration,
    init_centroids,
    mti_init,
    mti_iteration,
)
from repro.core.distance import rows_to_centroids
from repro.core.empty import check_empty_cluster_policy
from repro.core.workspace import DistanceWorkspace
from repro.errors import ConfigError, EmptyClusterError
from repro.sched import (
    FifoScheduler,
    NumaAwareScheduler,
    StaticScheduler,
)

SCHEDULERS = {
    "numa_aware": NumaAwareScheduler,
    "fifo": FifoScheduler,
    "static": StaticScheduler,
}

#: Accepted values for the ``pruning`` driver parameter.
PRUNING_MODES = ("mti", "elkan", None)


def make_scheduler(name: str):
    """Instantiate a scheduler by its Figure 5 name."""
    if name not in SCHEDULERS:
        raise ConfigError(
            f"unknown scheduler {name!r}; choose from {sorted(SCHEDULERS)}"
        )
    return SCHEDULERS[name]()


def check_pruning(pruning: str | None) -> str | None:
    """Validate a ``pruning`` argument and pass it through."""
    if pruning not in PRUNING_MODES:
        raise ConfigError(
            f"pruning must be one of {PRUNING_MODES}, got {pruning!r}"
        )
    return pruning


def resolve_memory_manager(
    mem,
    mem_budget_bytes,
    observers=(),
):
    """Resolve a driver's ``mem``/``mem_budget_bytes`` parameters.

    Returns a manager to push with :func:`repro.mem.use_manager`
    (``None`` when the driver should keep the ambient manager). The
    run's observers are attached so ``on_alloc``/``on_free``/
    ``on_spill`` events join the trace stream. A manager *instance*
    passed by the caller (e.g. the CLI, which prints the counters
    afterwards) is used as-is but still gains the observers.
    """
    from repro.mem import build_manager

    manager = build_manager(mem, budget_bytes=mem_budget_bytes)
    if manager is not None:
        for obs in observers:
            manager.attach_observer(obs)
    return manager


@dataclass
class IterationNumerics:
    """Uniform view over full/MTI/Elkan per-iteration outputs."""

    new_centroids: np.ndarray
    n_changed: int
    dist_per_row: np.ndarray
    needs_data: np.ndarray
    clause1_rows: int
    clause2_pruned: int
    clause3_pruned: int
    motion: np.ndarray | None


class NumericsLoop:
    """Stateful iterator over k-means iterations for one pruning mode.

    Hides the init/iterate asymmetry of the pruned algorithms so the
    drivers contain only hardware-related logic.
    """

    def __init__(
        self,
        x: np.ndarray,
        centroids0: np.ndarray,
        pruning: str | None,
        *,
        n_partitions: int = 1,
        empty_cluster: str = "drop",
        kernel: str = "blocked",
    ) -> None:
        self.x = x
        self.pruning = check_pruning(pruning)
        self.empty_cluster = check_empty_cluster_policy(empty_cluster)
        if empty_cluster == "reseed" and self.pruning is not None:
            raise ConfigError(
                "empty_cluster='reseed' teleports centroids, which "
                "invalidates the pruned algorithms' bound structures; "
                "use pruning=None or empty_cluster in ('drop', 'error')"
            )
        self.n_partitions = n_partitions
        self._centroids0 = np.array(
            centroids0, dtype=np.float64, copy=True
        )
        self.centroids = self._centroids0.copy()
        self.prev_centroids = self.centroids.copy()
        self._state = None
        self._assignment: np.ndarray | None = None
        self.iteration = 0
        # Per-iteration kernel cache (centroid norms, pairwise matrix,
        # block buffers); with kernel="blocked" a pure optimization
        # (bit-identical results), with kernel="gemm" ULP-equivalent
        # distances and identical assignments (see repro.core.distance).
        self._workspace = DistanceWorkspace(
            self._centroids0.shape[0], self._centroids0.shape[1],
            kernel=kernel,
        )
        self.kernel = self._workspace.kernel

    def reset(self) -> None:
        """Rewind to iteration 0 with the initial centroids.

        Crash recovery's from-scratch rerun (no checkpoint available):
        the numerics are deterministic, so a reset loop replays the
        exact same iteration sequence.
        """
        self.centroids = self._centroids0.copy()
        self.prev_centroids = self.centroids.copy()
        self._state = None
        self._assignment = None
        self.iteration = 0

    @property
    def assignment(self) -> np.ndarray:
        if self.pruning is None:
            assert self._assignment is not None
            return self._assignment
        assert self._state is not None
        return self._state.assignment

    def step(self) -> IterationNumerics:
        """Advance one iteration and return its exact outputs."""
        k = self.centroids.shape[0]
        n = self.x.shape[0]
        if self.pruning is None:
            res = full_iteration(
                self.x,
                self.centroids,
                self._assignment,
                n_partitions=self.n_partitions,
                workspace=self._workspace,
                empty_cluster=self.empty_cluster,
            )
            self._assignment = res.assignment
            out = IterationNumerics(
                new_centroids=res.new_centroids,
                n_changed=res.n_changed,
                dist_per_row=res.dist_per_row,
                needs_data=res.needs_data,
                clause1_rows=0,
                clause2_pruned=0,
                clause3_pruned=0,
                motion=None,
            )
        elif self.iteration == 0:
            init_fn = mti_init if self.pruning == "mti" else elkan_init
            self._state, res = init_fn(
                self.x, self.centroids, workspace=self._workspace
            )
            out = IterationNumerics(
                new_centroids=res.new_centroids,
                n_changed=res.n_changed,
                dist_per_row=res.dist_per_row,
                needs_data=res.needs_data,
                clause1_rows=0,
                clause2_pruned=0,
                clause3_pruned=0,
                motion=None,
            )
        else:
            iter_fn = (
                mti_iteration if self.pruning == "mti" else elkan_iteration
            )
            res = iter_fn(
                self.x, self.centroids, self.prev_centroids, self._state,
                workspace=self._workspace,
            )
            # MtiIterationResult and ElkanIterationResult share the
            # normalized clause field names; no per-type fallbacks.
            out = IterationNumerics(
                new_centroids=res.new_centroids,
                n_changed=res.n_changed,
                dist_per_row=res.dist_per_row,
                needs_data=res.needs_data,
                clause1_rows=res.clause1_rows,
                clause2_pruned=res.clause2_pruned,
                clause3_pruned=res.clause3_pruned,
                motion=res.motion,
            )
        if self.pruning is not None and self.empty_cluster == "error":
            counts = self._state.counts
            if not (counts > 0).all():
                empty = np.nonzero(counts == 0)[0]
                raise EmptyClusterError(
                    f"clusters {empty.tolist()} lost all members at "
                    f"iteration {self.iteration} (empty_cluster='error')"
                )
        self.prev_centroids = self.centroids
        self.centroids = out.new_centroids
        self.iteration += 1
        return out

    def partial_sums_counts(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-cluster (sums, counts) over this loop's rows.

        The distributed backend reduces these across shards; the
        pruned algorithms maintain them incrementally while the
        unpruned path recomputes from the assignment (both via
        ``bincount``, so a 1-shard reduction is bit-identical to the
        whole-data centroid update).
        """
        if self.pruning is not None:
            assert self._state is not None
            return self._state.sums, self._state.counts
        from repro.core.centroids import cluster_sums

        k = self.centroids.shape[0]
        partial = cluster_sums(
            self.x, self.assignment, k, scratch=self._workspace.accum
        )
        return partial.sums, partial.counts

    def inertia(self) -> float:
        """k-means objective at the current assignment/centroids."""
        dist = rows_to_centroids(self.x, self.centroids, self.assignment)
        return float((dist**2).sum())

    # -- checkpoint support (knors fault tolerance) ----------------

    def export_state(self) -> dict:
        """Snapshot of the loop's resumable state (mti / unpruned)."""
        if self.pruning == "elkan":
            raise ConfigError(
                "checkpointing is not offered for the Elkan baseline"
            )
        snap: dict = {
            "iteration": self.iteration,
            "centroids": self.centroids.copy(),
            "prev_centroids": self.prev_centroids.copy(),
        }
        if self.pruning == "mti" and self._state is not None:
            snap.update(
                assignment=self._state.assignment.copy(),
                ub=self._state.ub.copy(),
                sums=self._state.sums.copy(),
                counts=self._state.counts.copy(),
            )
        elif self._assignment is not None:
            snap["assignment"] = self._assignment.copy()
        return snap

    def restore_state(self, snap: dict) -> None:
        """Resume from an :meth:`export_state` snapshot."""
        from repro.core.mti import MtiState

        self.iteration = int(snap["iteration"])
        self.centroids = np.array(snap["centroids"], copy=True)
        self.prev_centroids = np.array(snap["prev_centroids"], copy=True)
        if self.pruning == "mti":
            if "ub" not in snap or snap["ub"] is None:
                raise ConfigError(
                    "snapshot has no pruning state but pruning='mti'"
                )
            self._state = MtiState(
                assignment=np.array(
                    snap["assignment"], dtype=np.int32, copy=True
                ),
                ub=np.array(snap["ub"], copy=True),
                sums=np.array(snap["sums"], copy=True),
                counts=np.array(
                    snap["counts"], dtype=np.int64, copy=True
                ),
            )
        elif self.pruning is None:
            self._assignment = np.array(
                snap["assignment"], dtype=np.int32, copy=True
            )


def resolve_init(
    x: np.ndarray,
    k: int,
    init: str | np.ndarray,
    seed: int,
) -> np.ndarray:
    """Initial centroids from a method name or an explicit array."""
    if isinstance(init, np.ndarray):
        c = np.array(init, dtype=np.float64, copy=True)
        if c.shape != (k, x.shape[1]):
            raise ConfigError(
                f"init centroids shape {c.shape} != ({k}, {x.shape[1]})"
            )
        return c
    return init_centroids(x, k, init, seed=seed)


def default_criteria(
    criteria: ConvergenceCriteria | None,
) -> ConvergenceCriteria:
    """The drivers' default stopping rules when none are given."""
    return criteria or ConvergenceCriteria()
