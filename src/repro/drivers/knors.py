"""knors: semi-external-memory k-means (Section 6).

Holds O(n) state in memory (assignments, MTI bounds, per-thread
centroids) while row data streams from a simulated SSD array through
the SAFS + row-cache stack. The data itself is real -- when given a
path, rows are fetched from the on-disk file through a memmap, so the
out-of-core code path actually touches storage; service times are
modeled.

I/O defaults to the asynchronous pipeline (FlashGraph's behavior):
reads go through the SSD request queue and the prefetcher hides
service time behind the previous iteration's compute once the row
cache knows the active set, which is why knors turns compute-bound
once per-iteration arithmetic outweighs the (cache-reduced) I/O
(Section 8.8). ``io_mode="sync"`` (CLI ``--sync-io``) preserves the
serialized ``max(compute span, I/O service)`` accounting; results and
I/O counters are bit-identical across modes.

Flag mapping to the paper's names:

* ``knors(path, k)`` -- knors (MTI + row cache).
* ``knors(path, k, pruning=None)`` -- knors- (no MTI, RC enabled).
* ``knors(path, k, pruning=None, row_cache_bytes=0)`` -- knors--.

This driver is a parameter-translation shim over
:mod:`repro.runtime`: it assembles the SAFS/row-cache I/O stack, a
:class:`~repro.runtime.SemBackend` with an optional
:class:`~repro.runtime.CheckpointHook`, and hands the iteration
skeleton to the shared :class:`~repro.runtime.IterationLoop`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.core import ConvergenceCriteria
from repro.data.matrixfile import MatrixFile
from repro.drivers.common import (
    NumericsLoop,
    check_pruning,
    default_criteria,
    make_scheduler,
    resolve_init,
    resolve_memory_manager,
)
from repro.mem import MemoryManager, use_manager
from repro.metrics import RunResult
from repro.runtime import (
    CheckpointHook,
    IterationLoop,
    KmeansSource,
    RunObserver,
    SemBackend,
    register_sem_memory,
    resolve_row_data,
)
from repro.sched.blocks import auto_task_rows
from repro.sem import RowCache, RowEngine, Safs
from repro.sem.checkpoint import has_checkpoint, load_checkpoint
from repro.simhw import (
    BindPolicy,
    CostModel,
    FOUR_SOCKET_XEON,
    SimMachine,
)
from repro.simhw.ssd import AsyncIoQueue, OCZ_INTREPID_ARRAY, SsdArray

_F64 = 8


def knors(
    data: np.ndarray | str | Path | MatrixFile,
    k: int,
    *,
    pruning: str | None = "mti",
    row_cache_bytes: int | None = None,
    page_cache_bytes: int | None = None,
    cache_update_interval: int = 5,
    io_mode: str = "async",
    io_queue_depth: int = 32,
    io_channels: int | None = None,
    ssd: SsdArray = OCZ_INTREPID_ARRAY,
    cost_model: CostModel = FOUR_SOCKET_XEON,
    n_threads: int | None = None,
    bind_policy: BindPolicy = BindPolicy.NUMA_BIND,
    scheduler: str = "numa_aware",
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
    task_rows: int | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_interval: int = 10,
    resume: bool = False,
    observers: Sequence[RunObserver] = (),
    faults: "FaultPlan | None" = None,
    retry_policy: "RetryPolicy | None" = None,
    membership: Any = None,
    empty_cluster: str = "drop",
    kernel: str = "blocked",
    mem: str | MemoryManager | None = None,
    mem_budget_bytes: int | None = None,
) -> RunResult:
    """Semi-external-memory k-means over an SSD-resident matrix.

    Parameters
    ----------
    data:
        Path to a knor binary matrix (preferred -- exercises the real
        on-disk path), an open :class:`MatrixFile`, or an in-memory
        array (I/O geometry is still modeled from the row layout).
    k, pruning, init, seed, criteria, scheduler, task_rows:
        As in :func:`repro.drivers.knori`.
    row_cache_bytes:
        Row cache budget; ``None`` defaults to 1/32 of the data size
        (the paper's 512 MB on the 16 GB Friendster-32), 0 disables.
    page_cache_bytes:
        SAFS page cache budget; ``None`` defaults to 1/16 of the data
        size (the paper's 1 GB on Friendster-32).
    cache_update_interval:
        ``I_cache`` -- first row-cache refresh iteration; the gap
        doubles after each refresh. Paper setting: 5.
    io_mode:
        ``"async"`` (default, the paper's FlashGraph behavior) issues
        row fetches through the SSD request queue and hides service
        time behind the previous iteration's compute once the row
        cache knows the active set; ``"sync"`` keeps the serialized
        ``max(span, service)`` accounting. Numerics and cache/request
        counters are bit-identical across modes.
    io_queue_depth, io_channels:
        Async queue geometry (outstanding requests per channel, and
        channel count -- ``None`` means one per SSD). Ignored in sync
        mode.
    ssd:
        SSD array model (default: the paper's 24-SSD chassis).
    checkpoint_dir, checkpoint_interval, resume:
        FlashGraph-style lightweight fault tolerance: persist the O(n)
        in-memory state every ``checkpoint_interval`` iterations to
        ``checkpoint_dir`` (atomic replace); ``resume=True`` continues
        from the newest checkpoint there. Disabled when
        ``checkpoint_dir`` is None, as in the paper's benchmarks.
    observers:
        :class:`~repro.runtime.RunObserver` hooks receiving the run's
        trace-event stream (iterations, I/O, task traces, checkpoints).
    faults, retry_policy:
        Optional :class:`~repro.faults.FaultPlan` and
        :class:`~repro.faults.RetryPolicy`. SSD read errors and slow
        pages are absorbed by the retry policy (charged simulated
        time); worker and mid-checkpoint crashes resume from the
        newest checkpoint (or rerun from scratch without one) with
        bit-identical results. Injected corruptions (SSD pages, row
        cache lines, checkpoints, allreduce payloads) are detected by
        CRC32 verification, quarantined and repaired from a clean
        source -- or abort with
        :class:`~repro.errors.CorruptionError` when repair exhausts
        the retry budget. Stragglers slow simulated threads and engage
        EWMA detection plus rebalancing (simulated time only).
    empty_cluster:
        Policy when a cluster loses all members: ``"drop"`` (keep the
        previous centroid, the default), ``"reseed"`` (revive from the
        farthest point; unpruned algorithm only), or ``"error"``.
    kernel:
        Distance kernel strategy (``"blocked"`` | ``"gemm"``, see
        :func:`repro.drivers.knori`). Clause-1 I/O elision is
        unaffected: both strategies produce identical assignments.
    mem, mem_budget_bytes:
        Memory manager for the workspace, cache index and checkpoint
        staging buffers (``"numpy"`` | ``"arena"`` | ``"budget"`` | a
        prebuilt manager; see :func:`repro.drivers.knori` and
        :mod:`repro.mem`). Results are bit-identical across managers.
    """
    x, n, d = resolve_row_data(data)
    if k > n:
        from repro.errors import DatasetError

        raise DatasetError(
            f"k={k} clusters cannot exceed the n={n} data rows"
        )
    pruning = check_pruning(pruning)
    crit = default_criteria(criteria)
    row_bytes = d * _F64
    data_bytes = n * row_bytes
    if row_cache_bytes is None:
        row_cache_bytes = data_bytes // 32
    if page_cache_bytes is None:
        page_cache_bytes = max(64 * ssd.page_bytes, data_bytes // 16)

    machine = SimMachine.build(
        cost_model, n_threads=n_threads, bind_policy=bind_policy, ssd=ssd
    )
    sched = make_scheduler(scheduler)
    t = machine.n_threads
    if task_rows is None:
        task_rows = auto_task_rows(n, t)

    manager = resolve_memory_manager(mem, mem_budget_bytes, observers)
    with use_manager(manager):
        io_queue = (
            AsyncIoQueue(queue_depth=io_queue_depth, channels=io_channels)
            if io_mode == "async"
            else None
        )
        safs = Safs(
            ssd,
            page_cache_bytes=page_cache_bytes,
            faults=faults,
            retry_policy=retry_policy,
            io_queue=io_queue,
        )
        row_cache = (
            RowCache(
                row_cache_bytes,
                row_bytes,
                n,
                n_partitions=t,
                update_interval=cache_update_interval,
            )
            if row_cache_bytes > 0
            else None
        )
        io_engine = RowEngine(safs, row_bytes, n, row_cache=row_cache)
        register_sem_memory(
            machine, n, d, k, pruning,
            row_cache_bytes=(
                row_cache_bytes if row_cache is not None else 0
            ),
            page_cache_bytes=page_cache_bytes,
        )

        centroids0 = resolve_init(np.asarray(x), k, init, seed)
        loop = NumericsLoop(
            x, centroids0, pruning, n_partitions=t,
            empty_cluster=empty_cluster, kernel=kernel,
        )

        start_it = 0
        if resume and checkpoint_dir is not None and has_checkpoint(
            checkpoint_dir
        ):
            ckpt = load_checkpoint(checkpoint_dir)
            loop.restore_state(
                {
                    "iteration": ckpt.iteration,
                    "centroids": ckpt.centroids,
                    "prev_centroids": ckpt.prev_centroids,
                    "assignment": ckpt.assignment,
                    "ub": ckpt.ub,
                    "sums": ckpt.sums,
                    "counts": ckpt.counts,
                }
            )
            start_it = ckpt.iteration
            if row_cache is not None:
                # The cache restarts cold; re-engage at the next
                # scheduled refresh after the resume point.
                row_cache.fast_forward(start_it - 1)

        checkpoint = (
            CheckpointHook(
                directory=checkpoint_dir,
                interval=checkpoint_interval,
                loop=loop,
                params={"n": n, "d": d, "k": k, "pruning": pruning},
                faults=faults,
            )
            if checkpoint_dir is not None
            else None
        )
        backend = SemBackend(
            machine,
            sched,
            KmeansSource(loop, k),
            io_engine,
            n_rows=n,
            d=d,
            reduction_k=k,
            task_rows=task_rows,
            checkpoint=checkpoint,
            io_mode=io_mode,
            faults=faults,
        )
        result = IterationLoop(
            backend,
            criteria=crit,
            observers=observers,
            start_iteration=start_it,
            faults=faults,
            membership=membership,
        ).run()

    if pruning == "mti":
        algo = "knors"
    elif row_cache is None:
        algo = "knors--"
    else:
        algo = "knors-"
    return result.as_run_result(
        algorithm=algo,
        centroids=loop.centroids,
        assignment=loop.assignment.copy(),
        inertia=loop.inertia(),
        memory_breakdown=machine.memory.component_breakdown(),
        params={
            "n": n,
            "d": d,
            "k": k,
            "T": t,
            "pruning": pruning,
            "row_cache_bytes": row_cache_bytes,
            "page_cache_bytes": page_cache_bytes,
            "cache_update_interval": cache_update_interval,
            "io_mode": io_mode,
            "io_queue_depth": io_queue_depth if io_mode == "async" else None,
            "io_channels": io_channels if io_mode == "async" else None,
            "scheduler": scheduler,
            "kernel": loop.kernel,
        },
    )
