"""knors: semi-external-memory k-means (Section 6).

Holds O(n) state in memory (assignments, MTI bounds, per-thread
centroids) while row data streams from a simulated SSD array through
the SAFS + row-cache stack. The data itself is real -- when given a
path, rows are fetched from the on-disk file through a memmap, so the
out-of-core code path actually touches storage; service times are
modeled.

Per iteration, wall time is ``max(compute span, I/O service)`` plus
barrier and reduction: FlashGraph overlaps asynchronous I/O with
computation, which is why knors turns compute-bound once per-iteration
arithmetic outweighs the (cache-reduced) I/O (Section 8.8).

Flag mapping to the paper's names:

* ``knors(path, k)`` -- knors (MTI + row cache).
* ``knors(path, k, pruning=None)`` -- knors- (no MTI, RC enabled).
* ``knors(path, k, pruning=None, row_cache_bytes=0)`` -- knors--.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core import ConvergenceCriteria
from repro.data.matrixfile import MatrixFile
from repro.drivers.common import (
    NumericsLoop,
    check_pruning,
    default_criteria,
    make_scheduler,
    resolve_init,
)
from repro.errors import DatasetError
from repro.metrics import IterationRecord, RunResult
from repro.sched import build_task_blocks
from repro.sched.blocks import auto_task_rows
from repro.sem import RowCache, RowEngine, Safs
from repro.sem.checkpoint import (
    CheckpointState,
    has_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.simhw import (
    AllocPolicy,
    BindPolicy,
    CostModel,
    FOUR_SOCKET_XEON,
    SimMachine,
)
from repro.simhw.ssd import OCZ_INTREPID_ARRAY, SsdArray

_F64 = 8
_I32 = 4


def _open_data(
    data: np.ndarray | str | Path | MatrixFile,
) -> tuple[np.ndarray, int, int]:
    """Resolve the data source to an indexable array plus (n, d).

    Paths resolve to a memmap-backed view, so row accesses during the
    run read from the real file at page granularity.
    """
    if isinstance(data, MatrixFile):
        return np.asarray(data._mm), data.n, data.d
    if isinstance(data, (str, Path)):
        mf = MatrixFile(data)
        return np.asarray(mf._mm), mf.n, mf.d
    x = np.asarray(data, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"data must be 2-D, got shape {x.shape}")
    return x, x.shape[0], x.shape[1]


def knors(
    data: np.ndarray | str | Path | MatrixFile,
    k: int,
    *,
    pruning: str | None = "mti",
    row_cache_bytes: int | None = None,
    page_cache_bytes: int | None = None,
    cache_update_interval: int = 5,
    ssd: SsdArray = OCZ_INTREPID_ARRAY,
    cost_model: CostModel = FOUR_SOCKET_XEON,
    n_threads: int | None = None,
    bind_policy: BindPolicy = BindPolicy.NUMA_BIND,
    scheduler: str = "numa_aware",
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
    task_rows: int | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_interval: int = 10,
    resume: bool = False,
) -> RunResult:
    """Semi-external-memory k-means over an SSD-resident matrix.

    Parameters
    ----------
    data:
        Path to a knor binary matrix (preferred -- exercises the real
        on-disk path), an open :class:`MatrixFile`, or an in-memory
        array (I/O geometry is still modeled from the row layout).
    k, pruning, init, seed, criteria, scheduler, task_rows:
        As in :func:`repro.drivers.knori`.
    row_cache_bytes:
        Row cache budget; ``None`` defaults to 1/32 of the data size
        (the paper's 512 MB on the 16 GB Friendster-32), 0 disables.
    page_cache_bytes:
        SAFS page cache budget; ``None`` defaults to 1/16 of the data
        size (the paper's 1 GB on Friendster-32).
    cache_update_interval:
        ``I_cache`` -- first row-cache refresh iteration; the gap
        doubles after each refresh. Paper setting: 5.
    ssd:
        SSD array model (default: the paper's 24-SSD chassis).
    checkpoint_dir, checkpoint_interval, resume:
        FlashGraph-style lightweight fault tolerance: persist the O(n)
        in-memory state every ``checkpoint_interval`` iterations to
        ``checkpoint_dir`` (atomic replace); ``resume=True`` continues
        from the newest checkpoint there. Disabled when
        ``checkpoint_dir`` is None, as in the paper's benchmarks.
    """
    x, n, d = _open_data(data)
    pruning = check_pruning(pruning)
    crit = default_criteria(criteria)
    row_bytes = d * _F64
    data_bytes = n * row_bytes
    if row_cache_bytes is None:
        row_cache_bytes = data_bytes // 32
    if page_cache_bytes is None:
        page_cache_bytes = max(64 * ssd.page_bytes, data_bytes // 16)

    machine = SimMachine.build(
        cost_model, n_threads=n_threads, bind_policy=bind_policy, ssd=ssd
    )
    sched = make_scheduler(scheduler)
    t = machine.n_threads
    if task_rows is None:
        task_rows = auto_task_rows(n, t)

    safs = Safs(ssd, page_cache_bytes=page_cache_bytes)
    row_cache = (
        RowCache(
            row_cache_bytes,
            row_bytes,
            n,
            n_partitions=t,
            update_interval=cache_update_interval,
        )
        if row_cache_bytes > 0
        else None
    )
    io_engine = RowEngine(safs, row_bytes, n, row_cache=row_cache)

    # -- memory accounting: note there is NO O(nd) row_data entry ----
    mem = machine.memory
    mem.alloc(
        "assignment", n * _I32, AllocPolicy.PARTITIONED,
        component="assignment",
    )
    mem.alloc(
        "global_centroids", k * d * _F64, AllocPolicy.INTERLEAVE,
        component="centroids",
    )
    for th in machine.threads:
        mem.alloc(
            f"thread{th.thread_id}_centroids",
            k * d * _F64 + k * _F64,
            AllocPolicy.NUMA_BIND,
            component="per_thread_centroids",
            home_node=th.node,
        )
    if pruning == "mti":
        mem.alloc(
            "mti_upper_bounds", n * _F64, AllocPolicy.PARTITIONED,
            component="mti_bounds",
        )
        mem.alloc(
            "centroid_dist_matrix", (k * (k + 1) // 2) * _F64,
            AllocPolicy.INTERLEAVE, component="mti_bounds",
        )
    if row_cache is not None:
        mem.alloc(
            "row_cache", row_cache_bytes, AllocPolicy.PARTITIONED,
            component="row_cache",
        )
    mem.alloc(
        "page_cache", page_cache_bytes, AllocPolicy.INTERLEAVE,
        component="page_cache",
    )

    centroids0 = resolve_init(np.asarray(x), k, init, seed)
    loop = NumericsLoop(x, centroids0, pruning, n_partitions=t)
    records: list[IterationRecord] = []
    converged = False
    state_bytes = 12 if pruning else 4

    start_it = 0
    if resume and checkpoint_dir is not None and has_checkpoint(
        checkpoint_dir
    ):
        ckpt = load_checkpoint(checkpoint_dir)
        loop.restore_state(
            {
                "iteration": ckpt.iteration,
                "centroids": ckpt.centroids,
                "prev_centroids": ckpt.prev_centroids,
                "assignment": ckpt.assignment,
                "ub": ckpt.ub,
                "sums": ckpt.sums,
                "counts": ckpt.counts,
            }
        )
        start_it = ckpt.iteration
        if row_cache is not None:
            # The cache restarts cold; re-engage at the next scheduled
            # refresh after the resume point.
            row_cache.fast_forward(start_it - 1)

    for it in range(start_it, crit.max_iters):
        num = loop.step()
        io = io_engine.run_iteration(it, num.needs_data)
        tasks = build_task_blocks(
            n,
            d,
            machine,
            dist_per_row=num.dist_per_row,
            needs_data=num.needs_data,
            task_rows=task_rows,
            state_bytes_per_row=state_bytes,
        )
        trace = machine.engine.run(
            sched, tasks, machine.threads, d=d, k=k
        )
        # Async I/O overlaps the compute span (Section 6): the longer
        # of the two dominates, then everyone meets at the barrier.
        sim_ns = (
            max(trace.span_ns, io.service_ns)
            + trace.barrier_ns
            + trace.reduction_ns
        )
        records.append(
            IterationRecord(
                iteration=it,
                sim_ns=sim_ns,
                n_changed=num.n_changed,
                dist_computations=int(num.dist_per_row.sum()),
                clause1_rows=num.clause1_rows,
                clause2_pruned=num.clause2_pruned,
                clause3_pruned=num.clause3_pruned,
                busy_fraction=trace.busy_fraction,
                steals=trace.total_steals,
                bytes_requested=io.bytes_requested,
                bytes_read=io.bytes_read,
                io_requests=io.merged_requests,
                cache_hits=io.row_cache_hits,
                cache_misses=io.rows_requested,
                rows_active=io.rows_needed,
            )
        )
        if checkpoint_dir is not None and (
            (it + 1) % checkpoint_interval == 0
        ):
            snap = loop.export_state()
            save_checkpoint(
                checkpoint_dir,
                CheckpointState(
                    iteration=snap["iteration"],
                    centroids=snap["centroids"],
                    prev_centroids=snap["prev_centroids"],
                    assignment=snap["assignment"],
                    ub=snap.get("ub"),
                    sums=snap.get("sums"),
                    counts=snap.get("counts"),
                    n_changed=num.n_changed,
                    params={"n": n, "d": d, "k": k, "pruning": pruning},
                ),
            )
        if crit.converged(n, num.n_changed, num.motion):
            converged = True
            break

    if pruning == "mti":
        algo = "knors"
    elif row_cache is None:
        algo = "knors--"
    else:
        algo = "knors-"
    return RunResult(
        algorithm=algo,
        centroids=loop.centroids,
        assignment=loop.assignment.copy(),
        iterations=len(records),
        converged=converged,
        inertia=loop.inertia(),
        records=records,
        memory_breakdown=mem.component_breakdown(),
        params={
            "n": n,
            "d": d,
            "k": k,
            "T": t,
            "pruning": pruning,
            "row_cache_bytes": row_cache_bytes,
            "page_cache_bytes": page_cache_bytes,
            "cache_update_interval": cache_update_interval,
            "scheduler": scheduler,
        },
    )
