"""Public drivers: knori (in-memory), knors (semi-external), knord
(distributed).

These are the library's main entry points, named after the paper's
modules. Each runs the exact k-means numerics and replays the parallel
execution on the simulated hardware substrate, returning a
:class:`repro.metrics.RunResult` whose clustering outputs are real and
whose timing is simulated.

Naming follows the paper's evaluation section:

* ``knori(x, k)`` -- in-memory, MTI pruning on (the paper's knori).
* ``knori(x, k, pruning=None)`` -- knori-.
* ``knors(path, k)`` -- semi-external memory with MTI + row cache.
* ``knors(path, k, pruning=None)`` -- knors-;
  ``knors(path, k, pruning=None, row_cache_bytes=0)`` -- knors--.
* ``knord(x, k, n_machines=...)`` -- distributed; ``pruning=None``
  gives knord-.
"""

from repro.drivers.knori import knori
from repro.drivers.knors import knors
from repro.drivers.knord import knord

__all__ = ["knori", "knors", "knord"]
