"""knord: distributed k-means over a simulated cluster (Section 7).

A decentralized driver per machine runs the full knori stack (NUMA
binding, partitioned scheduling, optional MTI) on its contiguous shard
of the rows; after each machine's local super-phase, the per-machine
centroid sums and counts meet in an allreduce and every driver
recomputes the same global centroids -- no master, matching the paper's
design. Load is *not* balanced across machines (Section 7 argues the
NUMA placement gains outweigh cross-machine skew), so an iteration
takes as long as its slowest machine plus the collective.

``knord(x, k, pruning=None)`` is the paper's knord-.

This driver is a parameter-translation shim over
:mod:`repro.runtime`: per-shard numerics live in a
:class:`~repro.runtime.ShardedKmeans` fleet of ``NumericsLoop``\\s, the
cluster replay and the allreduce in a
:class:`~repro.runtime.DistributedBackend`, and the iteration skeleton
in the shared :class:`~repro.runtime.IterationLoop`.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core import ConvergenceCriteria
from repro.core.distance import rows_to_centroids
from repro.dist import Cluster, NetworkModel, TEN_GBE
from repro.drivers.common import (
    check_pruning,
    default_criteria,
    make_scheduler,
    resolve_init,
    resolve_memory_manager,
)
from repro.errors import ConfigError, DatasetError
from repro.mem import MemoryManager, use_manager
from repro.metrics import RunResult
from repro.runtime import (
    DistributedBackend,
    IterationLoop,
    RunObserver,
    ShardedKmeans,
    register_distributed_memory,
    state_bytes_per_row,
)
from repro.simhw import BindPolicy, CostModel, EC2_C4_8XLARGE


def knord_loop(
    x: np.ndarray,
    k: int,
    *,
    n_machines: int = 4,
    pruning: str | None = "mti",
    cost_model: CostModel = EC2_C4_8XLARGE,
    threads_per_machine: int | None = None,
    bind_policy: BindPolicy = BindPolicy.NUMA_BIND,
    scheduler: str = "numa_aware",
    network: NetworkModel = TEN_GBE,
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
    task_rows: int | None = None,
    cluster: Cluster | None = None,
    observers: Sequence[RunObserver] = (),
    faults: "FaultPlan | None" = None,
    retry_policy: "RetryPolicy | None" = None,
    empty_cluster: str = "drop",
    kernel: str = "blocked",
    allreduce: str = "tree",
    membership: Any = None,
    autoscaler: Any = None,
):
    """Assemble a knord run without running it.

    Returns ``(loop, finalize)``: the un-started
    :class:`~repro.runtime.IterationLoop` plus a closure turning its
    :class:`~repro.runtime.LoopResult` into the driver's
    :class:`~repro.metrics.RunResult`. The multi-tenant fair-share
    scheduler (:class:`~repro.elastic.FairShareScheduler`) uses this to
    interleave several jobs' iterations; :func:`knord` is exactly
    ``loop.run()`` between the two. The caller owns the memory-manager
    context -- assemble under :func:`repro.mem.use_manager` when the
    job should account against a specific manager.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    pruning = check_pruning(pruning)
    if pruning == "elkan":
        raise ConfigError("knord supports pruning='mti' or None")
    if empty_cluster == "reseed":
        raise ConfigError(
            "knord supports empty_cluster='drop' or 'error'; reseeding "
            "needs a second collective to pick a global farthest point"
        )
    crit = default_criteria(criteria)
    n, d = x.shape
    if k > n:
        raise DatasetError(
            f"k={k} clusters cannot exceed the n={n} data rows"
        )

    if cluster is None:
        cluster = Cluster.build(
            n_machines,
            cost_model=cost_model,
            threads_per_machine=threads_per_machine,
            bind_policy=bind_policy,
            network=network,
        )
    p = cluster.n_machines
    if n < p:
        raise DatasetError(f"n={n} rows cannot shard over {p} machines")

    centroids0 = resolve_init(x, k, init, seed)
    sharded = ShardedKmeans(
        x, centroids0, pruning, p, k, empty_cluster=empty_cluster,
        kernel=kernel, allreduce=allreduce,
    )
    schedulers = [make_scheduler(scheduler) for _ in range(p)]
    # Per-machine memory accounting (machines are identical;
    # report machine 0, flagged per-machine in params).
    register_distributed_memory(
        cluster.machines, sharded.shard_rows(), d, k, pruning
    )

    backend = DistributedBackend(
        cluster,
        schedulers,
        sharded,
        d=d,
        k=k,
        task_rows=task_rows,
        state_bytes=state_bytes_per_row(pruning, k),
        faults=faults,
        retry_policy=retry_policy,
        membership=membership,
        autoscaler=autoscaler,
    )
    loop = IterationLoop(
        backend, criteria=crit, observers=observers, faults=faults
    )

    def finalize(result) -> RunResult:
        assignment = sharded.assignment
        dist = rows_to_centroids(x, sharded.centroids, assignment)
        return result.as_run_result(
            algorithm="knord" if pruning == "mti" else "knord-",
            centroids=sharded.centroids,
            assignment=assignment,
            inertia=float((dist**2).sum()),
            memory_breakdown=(
                cluster.machines[0].memory.component_breakdown()
            ),
            params={
                "n": n,
                "d": d,
                "k": k,
                "n_machines": p,
                "threads_per_machine": cluster.machines[0].n_threads,
                "pruning": pruning,
                "scheduler": scheduler,
                "memory_scope": "per_machine",
                "kernel": sharded.kernel,
                "allreduce": sharded.allreduce,
            },
        )

    return loop, finalize


def knord(
    x: np.ndarray,
    k: int,
    *,
    n_machines: int = 4,
    pruning: str | None = "mti",
    cost_model: CostModel = EC2_C4_8XLARGE,
    threads_per_machine: int | None = None,
    bind_policy: BindPolicy = BindPolicy.NUMA_BIND,
    scheduler: str = "numa_aware",
    network: NetworkModel = TEN_GBE,
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
    task_rows: int | None = None,
    cluster: Cluster | None = None,
    observers: Sequence[RunObserver] = (),
    faults: "FaultPlan | None" = None,
    retry_policy: "RetryPolicy | None" = None,
    empty_cluster: str = "drop",
    kernel: str = "blocked",
    allreduce: str = "tree",
    membership: Any = None,
    autoscaler: Any = None,
    mem: str | MemoryManager | None = None,
    mem_budget_bytes: int | None = None,
) -> RunResult:
    """Distributed NUMA-optimized k-means on a simulated cluster.

    Parameters
    ----------
    x, k, pruning, init, seed, criteria, scheduler, task_rows:
        As in :func:`repro.drivers.knori`. ``pruning="elkan"`` is not
        offered distributed (the paper's knord is MTI-or-nothing).
    n_machines:
        Cluster size; rows are split into contiguous equal shards.
    cost_model, threads_per_machine, bind_policy, network:
        Per-machine hardware and interconnect models (defaults: the
        paper's c4.8xlarge fleet on placement-group 10 GbE).
    cluster:
        Pre-built :class:`Cluster` (overrides the hardware params).
    observers:
        :class:`~repro.runtime.RunObserver` hooks receiving the run's
        trace-event stream (per-machine task traces, collectives).
    faults, retry_policy:
        Optional :class:`~repro.faults.FaultPlan` and
        :class:`~repro.faults.RetryPolicy`. Node failures either
        degrade (reshard onto survivors; bit-identical results) or
        abort per ``retry_policy.node_failure_mode``; dropped
        allreduce messages charge timeout + retransmission. Slow
        nodes (``straggler`` site) are flagged by per-machine EWMA
        and their shards re-shard onto healthy machines; corrupted
        allreduce payloads are CRC32-detected and retransmitted.
    empty_cluster:
        ``"drop"`` (keep the previous centroid, the default) or
        ``"error"`` (abort when a cluster's *global* count hits
        zero). ``"reseed"`` is not offered distributed -- it would
        need a second collective to agree on the farthest point.
    kernel:
        Per-shard distance kernel strategy (``"blocked"`` | ``"gemm"``,
        see :func:`repro.drivers.knori`).
    allreduce:
        Collective schedule for the centroid reduction: ``"tree"``
        (the default two-phase reduce+broadcast timing) or ``"rect"``
        (communication-avoiding rectangular/1.5D schedule -- fewer,
        larger messages; see :mod:`repro.dist.mpi`). Reduced values
        are bit-identical across schedules; only the charged network
        time and wire bytes differ.
    membership, autoscaler:
        Optional :class:`~repro.elastic.MembershipPlan` and
        :class:`~repro.elastic.Autoscaler` -- the elastic plane.
        Joins reshard onto the new machines, planned leaves and
        noticed preemptions drain their shards to survivors first
        (zero-notice preemption degrades to the node-failure path),
        and the autoscaler turns iteration-time / straggler / memory
        pressure into capacity requests that land only after the
        policy's simulated provisioning latency. Shard count never
        changes, so clustering results are bit-identical to the
        fixed-cluster run for zero-event plans and whenever the final
        membership equals the initial one.
    mem, mem_budget_bytes:
        Memory manager for the per-shard workspaces and the allreduce
        staging buffers (``"numpy"`` | ``"arena"`` | ``"budget"`` | a
        prebuilt manager; see :func:`repro.drivers.knori` and
        :mod:`repro.mem`). Results are bit-identical across managers.
    """
    manager = resolve_memory_manager(mem, mem_budget_bytes, observers)
    with use_manager(manager):
        loop, finalize = knord_loop(
            x, k,
            n_machines=n_machines,
            pruning=pruning,
            cost_model=cost_model,
            threads_per_machine=threads_per_machine,
            bind_policy=bind_policy,
            scheduler=scheduler,
            network=network,
            init=init,
            seed=seed,
            criteria=criteria,
            task_rows=task_rows,
            cluster=cluster,
            observers=observers,
            faults=faults,
            retry_policy=retry_policy,
            empty_cluster=empty_cluster,
            kernel=kernel,
            allreduce=allreduce,
            membership=membership,
            autoscaler=autoscaler,
        )
        result = loop.run()
    return finalize(result)
