"""knord: distributed k-means over a simulated cluster (Section 7).

A decentralized driver per machine runs the full knori stack (NUMA
binding, partitioned scheduling, optional MTI) on its contiguous shard
of the rows; after each machine's local super-phase, the per-machine
centroid sums and counts meet in an allreduce and every driver
recomputes the same global centroids -- no master, matching the paper's
design. Load is *not* balanced across machines (Section 7 argues the
NUMA placement gains outweigh cross-machine skew), so an iteration
takes as long as its slowest machine plus the collective.

``knord(x, k, pruning=None)`` is the paper's knord-.
"""

from __future__ import annotations

import numpy as np

from repro.core import ConvergenceCriteria
from repro.core.centroids import cluster_sums
from repro.core.distance import nearest_centroid, rows_to_centroids
from repro.core.mti import MtiState, mti_init, mti_iteration
from repro.dist import Cluster, NetworkModel, TEN_GBE
from repro.drivers.common import (
    check_pruning,
    default_criteria,
    make_scheduler,
    resolve_init,
)
from repro.errors import ConfigError, DatasetError
from repro.metrics import IterationRecord, RunResult
from repro.sched import build_task_blocks
from repro.sched.blocks import auto_task_rows
from repro.simhw import AllocPolicy, BindPolicy, CostModel, EC2_C4_8XLARGE

_F64 = 8
_I32 = 4


def _shard_bounds(n: int, p: int) -> np.ndarray:
    return np.linspace(0, n, p + 1, dtype=np.int64)


def knord(
    x: np.ndarray,
    k: int,
    *,
    n_machines: int = 4,
    pruning: str | None = "mti",
    cost_model: CostModel = EC2_C4_8XLARGE,
    threads_per_machine: int | None = None,
    bind_policy: BindPolicy = BindPolicy.NUMA_BIND,
    scheduler: str = "numa_aware",
    network: NetworkModel = TEN_GBE,
    init: str | np.ndarray = "random",
    seed: int = 0,
    criteria: ConvergenceCriteria | None = None,
    task_rows: int | None = None,
    cluster: Cluster | None = None,
) -> RunResult:
    """Distributed NUMA-optimized k-means on a simulated cluster.

    Parameters
    ----------
    x, k, pruning, init, seed, criteria, scheduler, task_rows:
        As in :func:`repro.drivers.knori`. ``pruning="elkan"`` is not
        offered distributed (the paper's knord is MTI-or-nothing).
    n_machines:
        Cluster size; rows are split into contiguous equal shards.
    cost_model, threads_per_machine, bind_policy, network:
        Per-machine hardware and interconnect models (defaults: the
        paper's c4.8xlarge fleet on placement-group 10 GbE).
    cluster:
        Pre-built :class:`Cluster` (overrides the hardware params).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise DatasetError(f"x must be 2-D, got shape {x.shape}")
    pruning = check_pruning(pruning)
    if pruning == "elkan":
        raise ConfigError("knord supports pruning='mti' or None")
    crit = default_criteria(criteria)
    n, d = x.shape

    if cluster is None:
        cluster = Cluster.build(
            n_machines,
            cost_model=cost_model,
            threads_per_machine=threads_per_machine,
            bind_policy=bind_policy,
            network=network,
        )
    p = cluster.n_machines
    if n < p:
        raise DatasetError(f"n={n} rows cannot shard over {p} machines")
    bounds = _shard_bounds(n, p)
    shards = [x[bounds[i] : bounds[i + 1]] for i in range(p)]
    schedulers = [make_scheduler(scheduler) for _ in range(p)]

    # Per-machine memory accounting (machines are identical; report
    # machine 0, flagged per-machine in params).
    for mi, machine in enumerate(cluster.machines):
        shard_n = int(bounds[mi + 1] - bounds[mi])
        mem = machine.memory
        data_policy = (
            AllocPolicy.OBLIVIOUS
            if machine.bind_policy is BindPolicy.OBLIVIOUS
            else AllocPolicy.PARTITIONED
        )
        mem.alloc("row_data", shard_n * d * _F64, data_policy,
                  component="data")
        mem.alloc("assignment", shard_n * _I32, data_policy,
                  component="assignment")
        mem.alloc("global_centroids", k * d * _F64,
                  AllocPolicy.INTERLEAVE, component="centroids")
        for th in machine.threads:
            mem.alloc(
                f"thread{th.thread_id}_centroids",
                k * d * _F64 + k * _F64,
                AllocPolicy.NUMA_BIND,
                component="per_thread_centroids",
                home_node=th.node,
            )
        if pruning == "mti":
            mem.alloc("mti_upper_bounds", shard_n * _F64, data_policy,
                      component="mti_bounds")
            mem.alloc("centroid_dist_matrix",
                      (k * (k + 1) // 2) * _F64,
                      AllocPolicy.INTERLEAVE, component="mti_bounds")

    centroids = resolve_init(x, k, init, seed)
    prev_centroids = centroids.copy()
    mti_states: list[MtiState | None] = [None] * p
    prev_assign: list[np.ndarray | None] = [None] * p
    records: list[IterationRecord] = []
    converged = False

    for it in range(crit.max_iters):
        shard_sums: list[np.ndarray] = []
        shard_counts: list[np.ndarray] = []
        shard_changed = 0
        machine_ns: list[float] = []
        dist_total = 0
        clause1_total = 0
        steals_total = 0
        busy: list[float] = []
        motion = None

        for mi in range(p):
            shard = shards[mi]
            sn = shard.shape[0]
            if pruning == "mti":
                if it == 0:
                    mti_states[mi], res = mti_init(shard, centroids)
                    dpr = res.dist_per_row
                    needs = res.needs_data
                    changed = res.n_changed
                    c1 = 0
                else:
                    res = mti_iteration(
                        shard, centroids, prev_centroids, mti_states[mi]
                    )
                    dpr = res.dist_per_row
                    needs = res.needs_data
                    changed = res.n_changed
                    c1 = res.clause1_rows
                    motion = res.motion
                state = mti_states[mi]
                shard_sums.append(state.sums)
                shard_counts.append(state.counts.astype(np.float64))
            else:
                assign, _ = nearest_centroid(shard, centroids)
                changed = (
                    sn
                    if prev_assign[mi] is None
                    else int(np.count_nonzero(assign != prev_assign[mi]))
                )
                prev_assign[mi] = assign
                partial = cluster_sums(shard, assign, k)
                shard_sums.append(partial.sums)
                shard_counts.append(partial.counts.astype(np.float64))
                dpr = np.full(sn, k, dtype=np.int32)
                needs = np.ones(sn, dtype=bool)
                c1 = 0

            machine = cluster.machines[mi]
            tasks = build_task_blocks(
                sn,
                d,
                machine,
                dist_per_row=dpr,
                needs_data=needs,
                task_rows=(
                    auto_task_rows(sn, machine.n_threads)
                    if task_rows is None
                    else min(task_rows, max(1, sn))
                ),
                state_bytes_per_row=12 if pruning else 4,
            )
            trace = machine.engine.run(
                schedulers[mi], tasks, machine.threads, d=d, k=k
            )
            machine_ns.append(trace.total_ns)
            dist_total += int(dpr.sum())
            clause1_total += c1
            steals_total += trace.total_steals
            busy.append(trace.busy_fraction)
            shard_changed += changed

        # Decentralized global update: allreduce sums and counts.
        red_sums = cluster.comm.allreduce_sum(shard_sums)
        red_counts = cluster.comm.allreduce_sum(shard_counts)
        allreduce_ns = cluster.comm.allreduce_ns(
            red_sums.value.nbytes + red_counts.value.nbytes + 8
        )
        counts = red_counts.value
        new_centroids = centroids.copy()
        nonzero = counts > 0
        new_centroids[nonzero] = (
            red_sums.value[nonzero] / counts[nonzero, None]
        )

        records.append(
            IterationRecord(
                iteration=it,
                sim_ns=max(machine_ns) + allreduce_ns,
                n_changed=shard_changed,
                dist_computations=dist_total,
                clause1_rows=clause1_total,
                busy_fraction=float(np.mean(busy)),
                steals=steals_total,
                network_bytes=red_sums.bytes_on_wire
                + red_counts.bytes_on_wire,
                allreduce_ns=allreduce_ns,
            )
        )

        prev_centroids = centroids
        centroids = new_centroids
        if crit.converged(n, shard_changed, motion):
            converged = True
            break

    if pruning == "mti":
        assignment = np.concatenate(
            [s.assignment for s in mti_states]
        )
    else:
        assignment = np.concatenate(prev_assign)

    dist = rows_to_centroids(x, centroids, assignment)
    return RunResult(
        algorithm="knord" if pruning == "mti" else "knord-",
        centroids=centroids,
        assignment=assignment,
        iterations=len(records),
        converged=converged,
        inertia=float((dist**2).sum()),
        records=records,
        memory_breakdown=cluster.machines[0].memory.component_breakdown(),
        params={
            "n": n,
            "d": d,
            "k": k,
            "n_machines": p,
            "threads_per_machine": cluster.machines[0].n_threads,
            "pruning": pruning,
            "scheduler": scheduler,
            "memory_scope": "per_machine",
        },
    )
