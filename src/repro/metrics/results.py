"""Run result records shared by every driver.

A driver (knori / knors / knord / baseline) produces one
:class:`RunResult` carrying the exact clustering outputs plus one
:class:`IterationRecord` per iteration with the quantities the paper's
figures plot. Simulated time is explicitly named ``sim_ns`` --
nothing in these records is wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class IterationRecord:
    """Exact per-iteration observables."""

    iteration: int
    sim_ns: float
    n_changed: int
    dist_computations: int
    #: Rows skipped wholesale by MTI clause 1 (0 when pruning is off).
    clause1_rows: int = 0
    clause2_pruned: int = 0
    clause3_pruned: int = 0
    #: Mean thread utilization before the barrier (1.0 = no skew).
    busy_fraction: float = 1.0
    steals: int = 0
    # --- SEM-only I/O observables (zero for in-memory runs) ---------
    bytes_requested: int = 0
    bytes_read: int = 0
    io_requests: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    rows_active: int = 0
    # --- distributed-only observables --------------------------------
    network_bytes: int = 0
    allreduce_ns: float = 0.0
    #: Machines alive when the iteration committed (0 = non-elastic
    #: backend; membership churn makes this vary across a run).
    machines_alive: int = 0


@dataclass
class RunResult:
    """Complete outcome of one k-means run on one (simulated) system."""

    algorithm: str
    centroids: np.ndarray
    assignment: np.ndarray
    iterations: int
    converged: bool
    inertia: float
    records: list[IterationRecord] = field(default_factory=list)
    #: Peak simulated memory, bytes, by component ("data", "centroids",
    #: "per_thread_centroids", "mti_bounds", "row_cache", ...).
    memory_breakdown: dict[str, int] = field(default_factory=dict)
    params: dict = field(default_factory=dict)

    @property
    def sim_seconds(self) -> float:
        """Total simulated run time, seconds."""
        return sum(r.sim_ns for r in self.records) / 1e9

    @property
    def sim_seconds_per_iter(self) -> float:
        """Mean simulated seconds per iteration."""
        if not self.records:
            return 0.0
        return self.sim_seconds / len(self.records)

    @property
    def peak_memory_bytes(self) -> int:
        """Sum of per-component peaks (components peak together in
        k-means: nothing is freed mid-run)."""
        return sum(self.memory_breakdown.values())

    @property
    def total_dist_computations(self) -> int:
        return sum(r.dist_computations for r in self.records)

    @property
    def total_bytes_read(self) -> int:
        return sum(r.bytes_read for r in self.records)

    @property
    def total_bytes_requested(self) -> int:
        return sum(r.bytes_requested for r in self.records)

    @property
    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(
            self.assignment, minlength=self.centroids.shape[0]
        )

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.algorithm}: {self.iterations} iters "
            f"({'converged' if self.converged else 'cap hit'}), "
            f"sim {self.sim_seconds:.4f}s "
            f"({self.sim_seconds_per_iter:.4f}s/iter), "
            f"inertia {self.inertia:.4g}, "
            f"peak mem {self.peak_memory_bytes / 1e6:.1f} MB"
        )
