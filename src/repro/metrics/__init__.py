"""Instrumentation: exact counters, memory accounting, result records.

Everything the evaluation section reports flows through this package:
per-iteration simulated time, distance-computation counts and pruning
breakdowns (Figures 5, 8), I/O bytes requested vs. read and cache hits
(Figures 6, 7), and peak memory by component (Table 1, Figures 8c, 9c).
"""

from repro.metrics.results import IterationRecord, RunResult
from repro.metrics.memory import (
    MemoryCounters,
    table1_bytes,
    ROUTINE_MEMORY_FORMULAS,
)
from repro.metrics.tables import (
    render_cache_occupancy,
    render_series,
    render_table,
    row_cache_occupancy,
)
from repro.metrics.export import (
    result_to_dict,
    write_json,
    write_records_csv,
    read_records_csv,
)
from repro.metrics.quality import (
    adjusted_rand_index,
    davies_bouldin_index,
    normalized_mutual_info,
    silhouette_score,
)
from repro.metrics.resilience import (
    ResilienceCounters,
    ResilienceObserver,
)
from repro.metrics.latency import (
    DEFAULT_QUANTILES,
    latency_percentiles,
    latency_summary,
)

__all__ = [
    "adjusted_rand_index",
    "davies_bouldin_index",
    "normalized_mutual_info",
    "silhouette_score",
    "result_to_dict",
    "write_json",
    "write_records_csv",
    "read_records_csv",
    "IterationRecord",
    "RunResult",
    "MemoryCounters",
    "table1_bytes",
    "ROUTINE_MEMORY_FORMULAS",
    "render_table",
    "render_series",
    "render_cache_occupancy",
    "row_cache_occupancy",
    "ResilienceCounters",
    "ResilienceObserver",
    "DEFAULT_QUANTILES",
    "latency_percentiles",
    "latency_summary",
]
