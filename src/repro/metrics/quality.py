"""Clustering quality metrics.

Downstream users of a k-means library need to *evaluate* clusterings,
not just produce them; these are the standard internal and external
indices, implemented on the library's own distance kernel:

* external (need ground truth): adjusted Rand index, normalized
  mutual information;
* internal: silhouette coefficient (optionally subsampled -- it is
  O(n^2)), Davies-Bouldin index.
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import euclidean
from repro.errors import DatasetError


def _check_labels(a: np.ndarray, b: np.ndarray | None = None):
    a = np.asarray(a)
    if a.ndim != 1:
        raise DatasetError(f"labels must be 1-D, got shape {a.shape}")
    if b is not None:
        b = np.asarray(b)
        if b.shape != a.shape:
            raise DatasetError(
                f"label arrays disagree: {a.shape} vs {b.shape}"
            )
        return a, b
    return a


def contingency(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Contingency table of two labelings, (|A|, |B|)."""
    a, b = _check_labels(a, b)
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    table = np.zeros((ai.max() + 1, bi.max() + 1), dtype=np.int64)
    np.add.at(table, (ai, bi), 1)
    return table


def adjusted_rand_index(a: np.ndarray, b: np.ndarray) -> float:
    """ARI: chance-corrected pair-counting agreement in [-1, 1]."""
    table = contingency(a, b)
    n = table.sum()
    if n < 2:
        raise DatasetError("ARI needs at least 2 points")
    sum_comb = (table * (table - 1) // 2).sum()
    rows = table.sum(axis=1)
    cols = table.sum(axis=0)
    comb_rows = (rows * (rows - 1) // 2).sum()
    comb_cols = (cols * (cols - 1) // 2).sum()
    total = n * (n - 1) // 2
    expected = comb_rows * comb_cols / total
    max_index = (comb_rows + comb_cols) / 2
    if max_index == expected:
        return 1.0  # both labelings trivial (all-one-cluster, etc.)
    return float((sum_comb - expected) / (max_index - expected))


def normalized_mutual_info(a: np.ndarray, b: np.ndarray) -> float:
    """NMI with arithmetic-mean normalization, in [0, 1]."""
    table = contingency(a, b).astype(np.float64)
    n = table.sum()
    pa = table.sum(axis=1) / n
    pb = table.sum(axis=0) / n
    pab = table / n
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = pab / np.outer(pa, pb)
        terms = np.where(pab > 0, pab * np.log(ratio), 0.0)
    mi = terms.sum()

    def entropy(p):
        p = p[p > 0]
        return float(-(p * np.log(p)).sum())

    ha, hb = entropy(pa), entropy(pb)
    if ha == 0 and hb == 0:
        return 1.0
    denom = (ha + hb) / 2
    if denom == 0:
        return 0.0
    return float(np.clip(mi / denom, 0.0, 1.0))


def silhouette_score(
    x: np.ndarray,
    labels: np.ndarray,
    *,
    sample: int | None = 2000,
    seed: int = 0,
) -> float:
    """Mean silhouette coefficient, in [-1, 1].

    ``sample`` caps the points scored (distances to *all* points are
    still exact); ``None`` scores everything (O(n^2)).
    """
    x = np.asarray(x, dtype=np.float64)
    labels = _check_labels(labels)
    if x.shape[0] != labels.shape[0]:
        raise DatasetError("x and labels length mismatch")
    uniq = np.unique(labels)
    if uniq.size < 2:
        raise DatasetError("silhouette needs at least 2 clusters")
    n = x.shape[0]
    idx = np.arange(n)
    if sample is not None and n > sample:
        idx = np.random.default_rng(seed).choice(
            n, size=sample, replace=False
        )
    dist = euclidean(x[idx], x)  # (m, n)
    scores = np.empty(idx.size)
    for pos, i in enumerate(idx):
        li = labels[i]
        row = dist[pos]
        same = labels == li
        n_same = same.sum()
        if n_same <= 1:
            scores[pos] = 0.0
            continue
        a = row[same].sum() / (n_same - 1)  # exclude self (distance 0)
        b = np.inf
        for lj in uniq:
            if lj == li:
                continue
            other = labels == lj
            b = min(b, row[other].mean())
        scores[pos] = (b - a) / max(a, b)
    return float(scores.mean())


def davies_bouldin_index(x: np.ndarray, labels: np.ndarray) -> float:
    """Davies-Bouldin: mean worst within/between spread ratio (lower
    is better, >= 0)."""
    x = np.asarray(x, dtype=np.float64)
    labels = _check_labels(labels)
    uniq = np.unique(labels)
    if uniq.size < 2:
        raise DatasetError("Davies-Bouldin needs at least 2 clusters")
    centroids = np.vstack(
        [x[labels == c].mean(axis=0) for c in uniq]
    )
    spreads = np.array(
        [
            euclidean(x[labels == c], centroids[i : i + 1]).mean()
            for i, c in enumerate(uniq)
        ]
    )
    cdist = euclidean(centroids, centroids)
    k = uniq.size
    worst = np.zeros(k)
    for i in range(k):
        ratios = [
            (spreads[i] + spreads[j]) / cdist[i, j]
            for j in range(k)
            if j != i and cdist[i, j] > 0
        ]
        worst[i] = max(ratios) if ratios else 0.0
    return float(worst.mean())
