"""Plain-text table rendering for the benchmark harness.

The benches print the same rows/series the paper's tables and figures
report; this module is the one formatter they share, so output stays
uniform and greppable (``column: value`` alignment, no external deps).
"""

from __future__ import annotations

from typing import Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)


def row_cache_occupancy(cache: object) -> dict:
    """Per-partition occupancy snapshot of a partitioned row cache.

    Takes anything with ``partition_occupancy()``/``partition_quotas()``
    (see :class:`repro.sem.rowcache.RowCache`). Returns occupancy and
    quota per partition plus a ``skew`` summary (max/mean fill) -- the
    Figure 7-style view of how unevenly active rows land on partitions.
    """
    occ = [int(v) for v in cache.partition_occupancy()]
    quotas = [int(v) for v in cache.partition_quotas()]
    total = sum(occ)
    mean = total / len(occ) if occ else 0.0
    return {
        "partitions": len(occ),
        "occupancy": occ,
        "quotas": quotas,
        "total_rows": total,
        "skew": (max(occ) / mean) if total else 0.0,
    }


def render_cache_occupancy(cache: object, *, title: str | None = None) -> str:
    """Render a row cache's per-partition fill as an aligned table."""
    snap = row_cache_occupancy(cache)
    rows = [
        [p, occ, quota, (occ / quota) if quota else 0.0]
        for p, (occ, quota) in enumerate(
            zip(snap["occupancy"], snap["quotas"])
        )
    ]
    return render_table(
        ["partition", "rows", "quota", "fill"], rows, title=title
    )


def render_series(
    x_name: str,
    series: dict[str, dict[object, float]],
    *,
    title: str | None = None,
) -> str:
    """Render {series_name: {x: y}} as one table with x as first column.

    The shape figures (speedup curves, per-iteration I/O) print through
    this: one row per x value, one column per series.
    """
    xs = sorted({x for ys in series.values() for x in ys})
    headers = [x_name, *series.keys()]
    rows = []
    for x in xs:
        rows.append(
            [x, *(series[name].get(x, float("nan")) for name in series)]
        )
    return render_table(headers, rows, title=title)
