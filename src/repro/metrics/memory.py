"""Memory accounting per Table 1.

Table 1 of the paper gives the asymptotic memory of every routine:

==================  =============================
Routine             Memory complexity
==================  =============================
Naive Lloyd's       O(nd + kd)
knors--, knors-     O(n + Tkd)
knors               O(2n + Tkd + k^2)
knori-, knord-      O(nd + Tkd)
knori, knord        O(nd + Tkd + n + k^2)
==================  =============================

:func:`table1_bytes` turns those formulas into concrete byte counts for
given (n, d, k, T) so tests can check the *measured* component
breakdown of a run against the *predicted* bound, and the Table 1 bench
can print both side by side.

Concrete sizes assume float64 elements (8 B), int32 assignments (4 B)
and float64 upper bounds (8 B) -- matching the paper's "6-10 bytes per
data point" for the O(n) MTI increment.
"""

from __future__ import annotations

from repro.errors import ConfigError

# The per-run measured counterpart of the predictions below lives with
# the managers themselves; re-exported here so callers find both the
# formula (predicted) and the rollup (measured) in one place.
from repro.mem.manager import MemoryCounters  # noqa: F401

F64 = 8
I32 = 4


def _common(n: int, d: int, k: int, t: int) -> None:
    if min(n, d, k, t) < 1:
        raise ConfigError(
            f"n, d, k, T must all be >= 1 (got {n}, {d}, {k}, {t})"
        )


def naive_lloyd_bytes(n: int, d: int, k: int, t: int = 1) -> int:
    """O(nd + kd): data plus one shared next-iteration centroid set."""
    _common(n, d, k, t)
    return n * d * F64 + 2 * k * d * F64 + n * I32


def knori_minus_bytes(n: int, d: int, k: int, t: int) -> int:
    """knori- / knord- per machine: O(nd + Tkd)."""
    _common(n, d, k, t)
    return n * d * F64 + (t + 1) * k * d * F64 + n * I32


def knori_bytes(n: int, d: int, k: int, t: int) -> int:
    """knori / knord per machine: O(nd + Tkd + n + k^2).

    The +n is the MTI upper bounds (8 B each); +k^2 the centroid
    distance matrix (triangular in the real system; we charge the
    triangle).
    """
    return (
        knori_minus_bytes(n, d, k, t)
        + n * F64
        + (k * (k + 1) // 2) * F64
    )


def knors_minus_minus_bytes(n: int, d: int, k: int, t: int) -> int:
    """knors-- / knors-: O(n + Tkd) -- row data stays on SSD."""
    _common(n, d, k, t)
    return n * I32 + (t + 1) * k * d * F64


def knors_bytes(
    n: int, d: int, k: int, t: int, row_cache_bytes: int = 0
) -> int:
    """knors: O(2n + Tkd + k^2) plus the user-sized row cache."""
    return (
        knors_minus_minus_bytes(n, d, k, t)
        + n * F64
        + (k * (k + 1) // 2) * F64
        + row_cache_bytes
    )


def elkan_ti_bytes(n: int, d: int, k: int, t: int) -> int:
    """Full Elkan TI: knori- plus the O(nk) lower-bound matrix.

    This is the scalability cliff MTI exists to avoid (Section 4).
    """
    return knori_minus_bytes(n, d, k, t) + n * k * F64 + n * F64


#: Routine name -> byte formula, for the Table 1 bench.
ROUTINE_MEMORY_FORMULAS = {
    "naive_lloyd": naive_lloyd_bytes,
    "knori-": knori_minus_bytes,
    "knori": knori_bytes,
    "knord-": knori_minus_bytes,
    "knord": knori_bytes,
    "knors--": knors_minus_minus_bytes,
    "knors-": knors_minus_minus_bytes,
    "knors": knors_bytes,
    "elkan_ti": elkan_ti_bytes,
}


def table1_bytes(
    routine: str, n: int, d: int, k: int, t: int, **kwargs: int
) -> int:
    """Predicted bytes for a routine at concrete (n, d, k, T)."""
    if routine not in ROUTINE_MEMORY_FORMULAS:
        raise ConfigError(
            f"unknown routine {routine!r}; choose from "
            f"{sorted(ROUTINE_MEMORY_FORMULAS)}"
        )
    return ROUTINE_MEMORY_FORMULAS[routine](n, d, k, t, **kwargs)
