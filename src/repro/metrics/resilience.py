"""Resilience counters: one observer that tallies the fault plane.

Attach a :class:`ResilienceObserver` to any driver run and read its
``counters`` afterwards -- the chaos soak and the corruption-recall
matrix use exactly these numbers to assert "every injected corruption
was detected" and "counters are deterministic for a fixed seed".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.runtime.observer import RunObserver


@dataclass
class ResilienceCounters:
    """Aggregated fault-plane tallies for one run."""

    faults_injected: int = 0
    corruptions_injected: int = 0
    corruptions_detected: int = 0
    quarantines: int = 0
    retries: int = 0
    retry_delay_ns: float = 0.0
    recoveries: int = 0
    stragglers_detected: int = 0
    rebalances: int = 0
    #: Elastic-plane tallies (membership churn; see
    #: :mod:`repro.elastic`). ``reshards`` counts every shard-ownership
    #: reassignment recovery -- node-failure survivors, straggler
    #: demotions, joins and drains alike.
    preempt_notices: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    reshards: int = 0
    #: Injection counts by ``(site, kind)``.
    by_site: dict = field(default_factory=dict)
    #: Detection counts by location (``ssd-page``, ``cache-line``,
    #: ``checkpoint``, ``net-payload``).
    detected_by_where: dict = field(default_factory=dict)

    @property
    def detection_recall(self) -> float:
        """Detected / injected corruption (1.0 when nothing injected)."""
        if self.corruptions_injected == 0:
            return 1.0
        return self.corruptions_detected / self.corruptions_injected

    def as_dict(self) -> dict:
        return {
            "faults_injected": self.faults_injected,
            "corruptions_injected": self.corruptions_injected,
            "corruptions_detected": self.corruptions_detected,
            "detection_recall": self.detection_recall,
            "quarantines": self.quarantines,
            "retries": self.retries,
            "retry_delay_ns": self.retry_delay_ns,
            "recoveries": self.recoveries,
            "stragglers_detected": self.stragglers_detected,
            "rebalances": self.rebalances,
            "preempt_notices": self.preempt_notices,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "reshards": self.reshards,
            "by_site": dict(self.by_site),
            "detected_by_where": dict(self.detected_by_where),
        }


class ResilienceObserver(RunObserver):
    """Counts fault-plane events into a :class:`ResilienceCounters`."""

    def __init__(self) -> None:
        self.counters = ResilienceCounters()

    def on_fault(self, iteration, site, kind, detail=None):
        c = self.counters
        c.faults_injected += 1
        key = f"{site}:{kind}"
        c.by_site[key] = c.by_site.get(key, 0) + 1
        if site == "corruption":
            c.corruptions_injected += 1

    def on_corruption(self, iteration, where, detail=None):
        c = self.counters
        c.corruptions_detected += 1
        c.detected_by_where[where] = c.detected_by_where.get(where, 0) + 1

    def on_quarantine(self, iteration, where, what, detail=None):
        self.counters.quarantines += 1

    def on_retry(self, iteration, site, attempt, delay_ns):
        self.counters.retries += 1
        self.counters.retry_delay_ns += delay_ns

    def on_recovery(self, iteration, site, action, detail=None):
        self.counters.recoveries += 1
        if "reshard" in action:
            self.counters.reshards += 1

    def on_straggler(self, iteration, scope, worker, detail=None):
        self.counters.stragglers_detected += 1

    def on_rebalance(self, iteration, scope, detail=None):
        self.counters.rebalances += 1

    def on_preempt_notice(self, iteration, machine, deadline, detail=None):
        self.counters.preempt_notices += 1

    def on_scale_up(self, iteration, machine, detail=None):
        self.counters.scale_ups += 1

    def on_scale_down(self, iteration, machine, detail=None):
        self.counters.scale_downs += 1
