"""Latency rollups for the serving plane: p50/p99/p999 and friends.

Percentiles use the **nearest-rank** order statistic (sort the sample,
take element ``ceil(q * n) - 1``) rather than interpolation: every
reported value is an actual observed latency, and the rollup is a pure
function of the sample multiset -- two runs that produce the same
latencies produce byte-identical JSON, which is what lets
``BENCH_serve.json`` be regression-gated without wall-clock noise.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigError

#: The serving plane's canonical tail-latency quantiles.
DEFAULT_QUANTILES = (0.50, 0.99, 0.999)


def _quantile_key(q: float) -> str:
    """0.5 -> 'p50', 0.99 -> 'p99', 0.999 -> 'p999'."""
    return "p" + f"{100 * q:g}".replace(".", "")


def latency_percentiles(
    latency_ns: np.ndarray,
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
) -> dict[str, float]:
    """Nearest-rank percentiles of a latency sample, in nanoseconds.

    Returns ``{"p50": ..., "p99": ..., "p999": ...}`` (keys derived
    from ``quantiles``). Deterministic: no interpolation, no RNG.
    """
    lat = np.sort(np.asarray(latency_ns, dtype=np.float64).ravel())
    if lat.size == 0:
        raise ConfigError(
            "latency_percentiles needs at least one sample"
        )
    out: dict[str, float] = {}
    for q in quantiles:
        if not 0.0 < q <= 1.0:
            raise ConfigError(
                f"quantiles must be in (0, 1], got {q}"
            )
        idx = max(0, math.ceil(q * lat.size) - 1)
        out[_quantile_key(q)] = float(lat[idx])
    return out


def latency_summary(latency_ns: np.ndarray) -> dict[str, float]:
    """Percentiles plus the scalar shape of the sample (count, mean,
    max) -- the serving bench's per-scenario rollup."""
    lat = np.asarray(latency_ns, dtype=np.float64).ravel()
    summary: dict[str, float] = {
        "n": int(lat.size),
        "mean_ns": float(lat.mean()) if lat.size else 0.0,
        "max_ns": float(lat.max()) if lat.size else 0.0,
    }
    summary.update(latency_percentiles(lat))
    return summary
